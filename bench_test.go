// Package repro's benchmark harness regenerates every table and figure
// of the paper's evaluation (run with `go test -bench=. -benchmem`):
//
//	BenchmarkTable2Registry              Table 2 (application registry)
//	BenchmarkFigure3Clustering           Figure 3 (PCA clustering diagrams)
//	BenchmarkTable3Compositions          Table 3 (class compositions)
//	BenchmarkFigure4Schedules            Figure 4 (ten-schedule throughput)
//	BenchmarkFigure5AppThroughput        Figure 5 (per-application throughput)
//	BenchmarkTable4ConcurrentVsSequential Table 4 (concurrent vs sequential)
//	BenchmarkClassificationCost*         Section 5.3 (per-sample cost)
//
// plus the ablation benches DESIGN.md calls out (PCA component count,
// k-NN neighbour count, expert vs automatic feature selection). The
// custom metrics report reproduction quality: "dominant-match" is the
// fraction of Table-3 rows whose dominant class matches the paper, and
// "margin-pct" is the SPN schedule's throughput margin.
package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/classify"
	"repro/internal/experiments"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/modelreg"
	"repro/internal/pca"
	"repro/internal/phase"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/testbed"
	"repro/internal/wal"
	"repro/internal/wire"
	"repro/internal/workload"
)

const benchSeed = experiments.DefaultSeed

// profiledRun caches one application's trace so ablation benches can
// re-classify without re-simulating.
type profiledRun struct {
	name    string
	trace   *metrics.Trace
	elapsed time.Duration
	paper   appclass.Class
}

var (
	cacheOnce     sync.Once
	cacheTraining []classify.TrainingRun
	cacheTests    []profiledRun
	cacheErr      error
)

// paperDominantClasses mirrors Table 3's dominant class per row.
var paperDominantClasses = map[string]appclass.Class{
	"SPECseis96_A": appclass.CPU, "SPECseis96_C": appclass.CPU,
	"CH3D": appclass.CPU, "SimpleScalar": appclass.CPU,
	"PostMark": appclass.IO, "Bonnie": appclass.IO,
	"SPECseis96_B": appclass.CPU, "Stream": appclass.IO,
	"PostMark_NFS": appclass.Net, "NetPIPE": appclass.Net,
	"Autobench": appclass.Net, "Sftp": appclass.Net,
	"VMD": appclass.IO, "XSpim": appclass.IO,
}

func loadRuns(b *testing.B) ([]classify.TrainingRun, []profiledRun) {
	b.Helper()
	cacheOnce.Do(func() {
		for _, e := range workload.TrainingSet() {
			res, err := testbed.ProfileEntry(e, benchSeed)
			if err != nil {
				cacheErr = err
				return
			}
			cacheTraining = append(cacheTraining, classify.TrainingRun{Class: e.Expected, Trace: res.Trace})
		}
		for _, e := range workload.TestSet() {
			res, err := testbed.ProfileEntry(e, benchSeed)
			if err != nil {
				cacheErr = err
				return
			}
			cacheTests = append(cacheTests, profiledRun{
				name: e.Name, trace: res.Trace, elapsed: res.Elapsed,
				paper: paperDominantClasses[e.Name],
			})
		}
	})
	if cacheErr != nil {
		b.Fatalf("profile runs: %v", cacheErr)
	}
	return cacheTraining, cacheTests
}

// dominantMatch trains a classifier with cfg and returns the fraction
// of test runs whose dominant class matches the paper's Table 3.
func dominantMatch(b *testing.B, cfg classify.Config) float64 {
	b.Helper()
	training, tests := loadRuns(b)
	cl, err := classify.Train(training, cfg)
	if err != nil {
		b.Fatalf("train: %v", err)
	}
	matched := 0
	for _, run := range tests {
		out, err := cl.ClassifyTrace(run.trace)
		if err != nil {
			b.Fatalf("classify %s: %v", run.name, err)
		}
		if out.Class == run.paper {
			matched++
		}
	}
	return float64(matched) / float64(len(tests))
}

func BenchmarkTable2Registry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2()
		if len(rows) != 19 {
			b.Fatalf("Table 2 rows = %d", len(rows))
		}
	}
}

func BenchmarkFigure3Clustering(b *testing.B) {
	training, _ := loadRuns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl, err := classify.Train(training, classify.Config{})
		if err != nil {
			b.Fatal(err)
		}
		pts, labels := cl.TrainingPoints()
		if pts.Rows() == 0 || len(labels) != pts.Rows() {
			b.Fatal("empty clustering diagram")
		}
	}
}

func BenchmarkTable3Compositions(b *testing.B) {
	training, tests := loadRuns(b)
	cl, err := classify.Train(training, classify.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var matched, total int
	for i := 0; i < b.N; i++ {
		matched, total = 0, 0
		for _, run := range tests {
			out, err := cl.ClassifyTrace(run.trace)
			if err != nil {
				b.Fatal(err)
			}
			total++
			if out.Class == run.paper {
				matched++
			}
		}
	}
	b.ReportMetric(float64(matched)/float64(total), "dominant-match")
}

func BenchmarkFigure4Schedules(b *testing.B) {
	var margin float64
	for i := 0; i < b.N; i++ {
		results, weighted, err := sched.RunAll(sched.Config{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		best := sched.Best(results)
		if best.Schedule != sched.SPN() {
			b.Fatalf("best schedule = %s, want SPN", best.Schedule)
		}
		margin = 100 * (best.SystemThroughput/weighted - 1)
	}
	b.ReportMetric(margin, "margin-pct")
}

func BenchmarkFigure5AppThroughput(b *testing.B) {
	results, _, err := sched.RunAll(sched.Config{Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var spnGain float64
	for i := 0; i < b.N; i++ {
		stats, err := sched.AppThroughputStats(results)
		if err != nil {
			b.Fatal(err)
		}
		spnGain = 0
		for _, k := range sched.Kinds() {
			spnGain += 100 * (stats[k].SPN/stats[k].Avg - 1) / 3
		}
	}
	b.ReportMetric(spnGain, "spn-gain-pct")
}

func BenchmarkTable4ConcurrentVsSequential(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := sched.ConcurrentVsSequential(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if res.ConcurrentMakespan >= res.SequentialTotal {
			b.Fatal("concurrent did not beat sequential")
		}
		speedup = 100 * res.Speedup()
	}
	b.ReportMetric(speedup, "speedup-pct")
}

// BenchmarkClassificationCostPerSample measures the Section 5.3 unit
// classification cost: one snapshot through the fused affine kernel
// (gathered mat-vec) and the integer-label 3-NN vote, with caller-owned
// scratch — the daemon's steady-state hot path, which must stay at
// 0 allocs/op (the paper's per-sample figure was ~15 ms on a 750 MHz
// Pentium III; see docs/performance.md for the staged-pipeline
// baseline this replaced).
func BenchmarkClassificationCostPerSample(b *testing.B) {
	training, tests := loadRuns(b)
	cl, err := classify.Train(training, classify.Config{})
	if err != nil {
		b.Fatal(err)
	}
	trace := tests[0].trace
	subset, err := cl.GatherIndices(trace.Schema())
	if err != nil {
		b.Fatal(err)
	}
	var s classify.Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := trace.At(i % trace.Len())
		if _, err := cl.ClassifySnapshotScratch(subset, snap.Values, &s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClassificationCostPerSampleConvenience measures the
// schema-based convenience path (per-call scratch), the cost a caller
// pays without holding a classify.Scratch.
func BenchmarkClassificationCostPerSampleConvenience(b *testing.B) {
	training, tests := loadRuns(b)
	cl, err := classify.Train(training, classify.Config{})
	if err != nil {
		b.Fatal(err)
	}
	trace := tests[0].trace
	schema := trace.Schema()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := trace.At(i % trace.Len())
		if _, err := cl.ClassifySnapshot(schema, snap.Values); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestBatch measures daemon-level ingest throughput: a batch
// of snapshots from many VMs posted to /v1/ingest, decoded, grouped by
// VM, and classified under one session-lock acquisition per VM. The
// snaps/s metric is whole-pipeline throughput including JSON
// encode/decode.
func BenchmarkIngestBatch(b *testing.B) {
	benchIngestBatch(b, nil, false, false)
}

// BenchmarkIngestBatchJournaled is the same pipeline with write-ahead
// journaling on (fsync=interval, the daemon default): every batch is
// appended to the journal before classification. The acceptance bar is
// staying within 25% of the unjournaled snaps/s.
func BenchmarkIngestBatchJournaled(b *testing.B) {
	j, err := wal.Open(wal.Config{
		Dir:      b.TempDir(),
		Fsync:    wal.FsyncInterval,
		MaxBytes: 64 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = j.Close() })
	benchIngestBatch(b, j, false, false)
}

// BenchmarkIngestBatchJournaledSegmented layers the phase-aware
// extension on the journaled pipeline: online segmentation and the
// open-set unknown test run on every snapshot (the daemon defaults).
// The acceptance bar is staying within 10% of the journaled snaps/s
// measured in the same run (see BENCH_baseline.json).
func BenchmarkIngestBatchJournaledSegmented(b *testing.B) {
	j, err := wal.Open(wal.Config{
		Dir:      b.TempDir(),
		Fsync:    wal.FsyncInterval,
		MaxBytes: 64 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = j.Close() })
	benchIngestBatch(b, j, true, false)
}

// BenchmarkIngestBatchJournaledSegmentedScrubbed adds the background
// storage scrubber to the full journaled+segmented pipeline,
// re-verifying one sealed segment per tick while ingest is hot. The
// 500ms cadence is still ~100x hotter than any sane production
// setting (-scrub-every of minutes): one tick streams an 8MiB segment
// for ~6ms of CPU (measured by an isolated A/B at a 100ms cadence),
// so expected steady-state overhead here is ~1.2% — the acceptance
// bar is <= 2%, and CI gates the same-run snaps/s ratio at a wider
// floor only to absorb shared-runner drift (see BENCH_baseline.json).
func BenchmarkIngestBatchJournaledSegmentedScrubbed(b *testing.B) {
	j, err := wal.Open(wal.Config{
		Dir:      b.TempDir(),
		Fsync:    wal.FsyncInterval,
		MaxBytes: 64 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = j.Close() })
	benchIngestBatch(b, j, true, true)
}

func benchIngestBatch(b *testing.B, journal *wal.Journal, segmented, scrubbed bool) {
	b.Helper()
	training, tests := loadRuns(b)
	cl, err := classify.Train(training, classify.Config{})
	if err != nil {
		b.Fatal(err)
	}
	schema := tests[0].trace.Schema()
	cfg := server.Config{Classifier: cl, Schema: schema, Journal: journal}
	if scrubbed {
		cfg.ScrubEvery = 500 * time.Millisecond
	}
	if !segmented {
		// Baseline pipelines measure ingest without the phase-aware
		// extension: segmentation and the open-set test disabled.
		cfg.SegmentWindow = -1
		cfg.UnknownSlack = -1
	}
	srv, err := server.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	srv.StartScrubber()
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})

	// Prebuild request bodies: 16 VMs interleaved, 8 snapshots each per
	// batch, values drawn from the profiled test traces.
	const vms, perVM = 16, 8
	type snapJSON struct {
		VM          string    `json:"vm"`
		TimeSeconds float64   `json:"time_s"`
		Values      []float64 `json:"values"`
	}
	var bodies [][]byte
	for batch := 0; batch < 4; batch++ {
		var snaps []snapJSON
		for j := 0; j < perVM; j++ {
			for v := 0; v < vms; v++ {
				trace := tests[(batch+v)%len(tests)].trace
				snap := trace.At((batch*perVM + j) % trace.Len())
				snaps = append(snaps, snapJSON{
					VM:          fmt.Sprintf("bench-vm-%02d", v),
					TimeSeconds: float64(batch*perVM+j) * 5,
					Values:      snap.Values,
				})
			}
		}
		body, err := json.Marshal(map[string]any{"snapshots": snaps})
		if err != nil {
			b.Fatal(err)
		}
		bodies = append(bodies, body)
	}

	h := srv.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(bodies[i%len(bodies)]))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("ingest: %d %s", w.Code, w.Body)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*vms*perVM)/b.Elapsed().Seconds(), "snaps/s")
}

// BenchmarkObserveWithSegmentation measures the streaming classifier's
// per-snapshot cost with the full phase-aware extension attached:
// fused-kernel classification, open-set distance test, and the
// change-point segmenter all run on every Observe. Steady state must
// stay allocation-free — the segmenter's ring reuses its entries, the
// history cap recycles its backing array, and phase splits amortize to
// zero — and CI gates on 0 allocs/op.
func BenchmarkObserveWithSegmentation(b *testing.B) {
	training, tests := loadRuns(b)
	cl, err := classify.Train(training, classify.Config{})
	if err != nil {
		b.Fatal(err)
	}
	trace := tests[0].trace
	online, err := classify.NewOnline(cl, trace.Schema())
	if err != nil {
		b.Fatal(err)
	}
	online.SetHistoryCap(512)
	online.EnableSegmentation(phaseDefaults())
	oset, err := cl.CalibrateOpenSet(classify.OpenSetConfig{})
	if err != nil {
		b.Fatal(err)
	}
	online.EnableOpenSet(oset)

	// Warm up past the transient allocations: fill the segmenter ring,
	// the history buffer, and the first phase accumulators.
	const cadence = 5 * time.Second
	at := time.Duration(0)
	feed := func(n int) {
		for i := 0; i < n; i++ {
			snap := trace.At(i % trace.Len())
			at += cadence
			if _, err := online.Observe(metrics.Snapshot{Time: at, Node: snap.Node, Values: snap.Values}); err != nil {
				b.Fatal(err)
			}
		}
	}
	feed(2 * trace.Len())

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := trace.At(i % trace.Len())
		at += cadence
		if _, err := online.Observe(metrics.Snapshot{Time: at, Node: snap.Node, Values: snap.Values}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if online.PhaseCount() == 0 {
		b.Fatal("segmenter never produced a phase")
	}
}

// phaseDefaults returns the daemon's default segmentation config.
func phaseDefaults() phase.Config { return phase.Config{} }

// BenchmarkJournalAppend measures the write-ahead journal's append path
// in isolation: an 8-snapshot batch encoded (length prefix + CRC32C +
// binary payload) and written to the active segment. With fsync=never
// the encode buffer is reused and the path must stay at 0 allocs/op
// (rotation and retention pruning amortize to zero); CI gates on it.
func BenchmarkJournalAppend(b *testing.B) {
	_, tests := loadRuns(b)
	trace := tests[0].trace
	snaps := make([]metrics.Snapshot, 8)
	for i := range snaps {
		snaps[i] = trace.At(i % trace.Len())
	}
	j, err := wal.Open(wal.Config{
		Dir:      b.TempDir(),
		Fsync:    wal.FsyncNever,
		MaxBytes: 64 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = j.Close() })
	// Warm the reused encode buffer so growth isn't charged to the loop.
	if _, err := j.AppendBatch("bench-vm", snaps); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := j.AppendBatch("bench-vm", snaps); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*len(snaps))/b.Elapsed().Seconds(), "snaps/s")
}

// BenchmarkClassificationCostTraining measures the train+PCA side of
// the Section 5.3 cost (the paper: 50 s for training plus
// classification of 8000 samples).
func BenchmarkClassificationCostTraining(b *testing.B) {
	training, _ := loadRuns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := classify.Train(training, classify.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: the paper fixes q = 2 principal components. Sweep q and
// report reproduction accuracy per setting.
func BenchmarkAblationPCAComponents(b *testing.B) {
	for _, q := range []int{1, 2, 3, 4, 8} {
		q := q
		name := fmt.Sprintf("components-%d", q)
		if q == 2 {
			name += "(paper)"
		}
		b.Run(name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc = dominantMatch(b, classify.Config{Components: q})
			}
			b.ReportMetric(acc, "dominant-match")
		})
	}
}

// Ablation: the paper fixes k = 3 neighbours. Sweep k.
func BenchmarkAblationKNN(b *testing.B) {
	for _, k := range []int{1, 3, 5, 7} {
		k := k
		b.Run(fmt.Sprintf("k-%d", k), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc = dominantMatch(b, classify.Config{K: k})
			}
			b.ReportMetric(acc, "dominant-match")
		})
	}
}

// Ablation: expert 8-metric preselection (Table 1) vs the full
// 33-metric schema vs the automated relevance/redundancy selector the
// paper leaves as future work.
func BenchmarkAblationExpertSelection(b *testing.B) {
	training, _ := loadRuns(b)

	// Build the automated selection once from pooled training data.
	var rows [][]float64
	for _, run := range training {
		m := run.Trace.Matrix()
		for i := 0; i < m.Rows(); i++ {
			rows = append(rows, m.Row(i))
		}
	}
	pooled, err := linalg.FromRows(rows)
	if err != nil {
		b.Fatalf("pool training rows: %v", err)
	}
	kept, err := pca.SelectFeatures(pooled, 8, 0.95)
	if err != nil {
		b.Fatalf("auto selection: %v", err)
	}
	names := training[0].Trace.Schema().Names()
	var autoNames []string
	for _, j := range kept {
		autoNames = append(autoNames, names[j])
	}

	cases := []struct {
		name    string
		metrics []string
	}{
		{"expert-8(paper)", metrics.ExpertNames()},
		{"all-33", metrics.DefaultNames()},
		{"auto-selected", autoNames},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc = dominantMatch(b, classify.Config{ExpertMetrics: c.metrics})
			}
			b.ReportMetric(acc, "dominant-match")
		})
	}
}

// dominantMatchOpts re-profiles training and test runs with custom
// testbed options and scores dominant-class reproduction, for the
// sampling-interval and transport-loss ablations.
func dominantMatchOpts(b *testing.B, opts testbed.Options) float64 {
	b.Helper()
	var training []classify.TrainingRun
	for _, e := range workload.TrainingSet() {
		res, err := testbed.ProfileEntryOpts(e, benchSeed, opts)
		if err != nil {
			b.Fatalf("profile %s: %v", e.Name, err)
		}
		training = append(training, classify.TrainingRun{Class: e.Expected, Trace: res.Trace})
	}
	cl, err := classify.Train(training, classify.Config{})
	if err != nil {
		b.Fatal(err)
	}
	matched, total := 0, 0
	for _, e := range workload.TestSet() {
		res, err := testbed.ProfileEntryOpts(e, benchSeed, opts)
		if err != nil {
			b.Fatalf("profile %s: %v", e.Name, err)
		}
		out, err := cl.ClassifyTrace(res.Trace)
		if err != nil {
			b.Fatal(err)
		}
		total++
		if out.Class == paperDominantClasses[e.Name] {
			matched++
		}
	}
	return float64(matched) / float64(total)
}

// Ablation: the paper samples every d = 5 seconds. Sweep the sampling
// interval.
func BenchmarkAblationSamplingInterval(b *testing.B) {
	for _, d := range []time.Duration{time.Second, 5 * time.Second, 15 * time.Second, 30 * time.Second} {
		d := d
		name := d.String()
		if d == 5*time.Second {
			name += "(paper)"
		}
		b.Run(name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc = dominantMatchOpts(b, testbed.Options{SampleInterval: d})
			}
			b.ReportMetric(acc, "dominant-match")
		})
	}
}

// Ablation: classification robustness under multicast packet loss, with
// the skip-incomplete performance filter. A complete snapshot needs all
// 33 announcements, so per-snapshot survival is (1-loss)^33: ~72% at 1%
// loss, ~18% at 5%; beyond ~8% loss short runs keep no complete
// snapshot at all — the protocol's cliff.
func BenchmarkAblationTransportLoss(b *testing.B) {
	for _, loss := range []float64{0, 0.01, 0.02, 0.05} {
		loss := loss
		b.Run(fmt.Sprintf("loss-%.0f%%", 100*loss), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc = dominantMatchOpts(b, testbed.Options{LossRate: loss})
			}
			b.ReportMetric(acc, "dominant-match")
		})
	}
}

// BenchmarkHotSwap measures a model promote against a daemon with live
// journaled sessions: each op is one full promote (open-set
// recalibration, journal restamp, session rebind, registry flip, and
// the post-swap checkpoint). The custom pause-ns/op metric is the
// quiesced swap window alone — the stretch ingest actually blocks —
// which BENCH_baseline.json pins and CI gates on staying under 50ms.
func BenchmarkHotSwap(b *testing.B) {
	training, tests := loadRuns(b)
	active, err := classify.Train(training, classify.Config{})
	if err != nil {
		b.Fatal(err)
	}
	// A second model over the same expert metrics (different k so the
	// compatibility hash differs).
	cand, err := classify.Train(training, classify.Config{K: 5})
	if err != nil {
		b.Fatal(err)
	}
	modelDir := b.TempDir()
	if err := modelreg.SaveFile(filepath.Join(modelDir, "cand.json"), cand); err != nil {
		b.Fatal(err)
	}
	j, err := wal.Open(wal.Config{Dir: b.TempDir(), Fsync: wal.FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = j.Close() })
	srv, err := server.New(server.Config{
		Classifier: active, Schema: tests[0].trace.Schema(),
		Journal: j, ModelDir: modelDir,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	h := srv.Handler()

	// 64 live sessions with some accumulated state: these are what the
	// quiesce has to rebind.
	const vms, perVM = 64, 8
	for v := 0; v < vms; v++ {
		trace := tests[v%len(tests)].trace
		var snaps []map[string]any
		for i := 0; i < perVM; i++ {
			snap := trace.At(i % trace.Len())
			snaps = append(snaps, map[string]any{
				"vm": fmt.Sprintf("swap-vm-%02d", v), "time_s": float64(i) * 5, "values": snap.Values,
			})
		}
		body, err := json.Marshal(map[string]any{"snapshots": snaps})
		if err != nil {
			b.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("ingest: %d %s", w.Code, w.Body)
		}
	}

	bootID := srv.ActiveModelID()
	req := httptest.NewRequest(http.MethodPost, "/v1/models", bytes.NewReader([]byte(`{"path":"cand.json"}`)))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusCreated {
		b.Fatalf("load candidate: %d %s", w.Code, w.Body)
	}
	var loaded struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &loaded); err != nil {
		b.Fatal(err)
	}

	// Ping-pong between the two registered models.
	ids := [2]string{loaded.ID, bootID}
	var totalPause time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pause, err := srv.Promote(ids[i%2])
		if err != nil {
			b.Fatal(err)
		}
		totalPause += pause
	}
	b.StopTimer()
	b.ReportMetric(float64(totalPause.Nanoseconds())/float64(b.N), "pause-ns/op")
}

// replayBody is a rewindable request body that costs nothing per
// request: a bytes.Reader with a no-op Close.
type replayBody struct{ bytes.Reader }

func (*replayBody) Close() error { return nil }

// benchRW is the cheapest possible ResponseWriter — it records the
// status and discards the body — so the allocations the benchmark
// reports belong to the ingest path, not the test harness.
type benchRW struct {
	hdr  http.Header
	code int
}

func (w *benchRW) Header() http.Header         { return w.hdr }
func (w *benchRW) WriteHeader(code int)        { w.code = code }
func (w *benchRW) Write(p []byte) (int, error) { return len(p), nil }

// binHandshake opens one binary-ingest stream over the handler and
// returns its stream ID.
func binHandshake(b *testing.B, h http.Handler, schema *metrics.Schema) uint64 {
	b.Helper()
	buf, start := wire.BeginFrame(nil)
	buf = wire.AppendHello(buf, wire.Hello{Version: wire.Version, Metrics: schema.Names()})
	buf = wire.EndFrame(buf, start)
	req := httptest.NewRequest(http.MethodPost, "/v1/ingest.bin", bytes.NewReader(buf))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatalf("binary handshake: %d %s", w.Code, w.Body)
	}
	payload, _, err := wire.NextFrame(w.Body.Bytes())
	if err != nil {
		b.Fatal(err)
	}
	ack, err := wire.ParseHelloAck(payload)
	if err != nil {
		b.Fatal(err)
	}
	return ack.StreamID
}

// binBenchBodies prebuilds framed binary batches with the same shape
// and values as the JSON bench bodies: 16 VMs x 8 snapshots per batch,
// values drawn from the profiled test traces, columns in schema order.
func binBenchBodies(b *testing.B, tests []profiledRun, schema *metrics.Schema, streamID uint64, vmPrefix string) [][]byte {
	b.Helper()
	const vms, perVM = 16, 8
	var bodies [][]byte
	for batch := 0; batch < 4; batch++ {
		groups := make([]wire.Group, vms)
		for v := 0; v < vms; v++ {
			g := wire.Group{VM: fmt.Sprintf("%s%02d", vmPrefix, v)}
			trace := tests[(batch+v)%len(tests)].trace
			for j := 0; j < perVM; j++ {
				snap := trace.At((batch*perVM + j) % trace.Len())
				g.Times = append(g.Times, float64(batch*perVM+j)*5)
				g.Rows = append(g.Rows, snap.Values)
			}
			groups[v] = g
		}
		buf, start := wire.BeginFrame(nil)
		buf, err := wire.AppendBatch(buf, streamID, schema.Len(), groups)
		if err != nil {
			b.Fatal(err)
		}
		bodies = append(bodies, wire.EndFrame(buf, start))
	}
	return bodies
}

// BenchmarkIngestBinary measures the binary columnar fast path
// end-to-end through the HTTP handler: framed batches decoded
// zero-copy out of a pooled body buffer, scattered through the
// negotiated column table, and classified. The acceptance bars are >= 5x
// BenchmarkIngestBatch's snaps/s and single-digit allocs/op, both
// CI-gated.
func BenchmarkIngestBinary(b *testing.B) {
	benchIngestBinary(b, nil, false)
}

// BenchmarkIngestBinaryJournaled layers write-ahead journaling
// (fsync=interval, the daemon default) on the binary path, with
// concurrent senders — the configuration the group-commit variant is
// judged against.
func BenchmarkIngestBinaryJournaled(b *testing.B) {
	j, err := wal.Open(wal.Config{
		Dir:      b.TempDir(),
		Fsync:    wal.FsyncInterval,
		MaxBytes: 64 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = j.Close() })
	benchIngestBinary(b, j, true)
}

// BenchmarkIngestBinaryJournaledGroupCommit runs the binary path with
// fsync=always under group commit: concurrent appends coalesce into
// shared fsyncs, so every acknowledged batch is on stable storage
// while throughput stays within 2x of fsync=interval (the CI gate,
// measured against BenchmarkIngestBinaryJournaled in the same run).
func BenchmarkIngestBinaryJournaledGroupCommit(b *testing.B) {
	j, err := wal.Open(wal.Config{
		Dir:         b.TempDir(),
		Fsync:       wal.FsyncAlways,
		GroupCommit: true,
		MaxBytes:    64 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = j.Close() })
	benchIngestBinary(b, j, true)
}

func benchIngestBinary(b *testing.B, journal *wal.Journal, parallel bool) {
	b.Helper()
	training, tests := loadRuns(b)
	cl, err := classify.Train(training, classify.Config{})
	if err != nil {
		b.Fatal(err)
	}
	schema := tests[0].trace.Schema()
	srv, err := server.New(server.Config{
		Classifier: cl, Schema: schema, Journal: journal,
		// Match the JSON baseline: segmentation and the open-set test off.
		SegmentWindow: -1, UnknownSlack: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	h := srv.Handler()
	const vms, perVM = 16, 8

	b.ReportAllocs()
	if !parallel {
		streamID := binHandshake(b, h, schema)
		bodies := binBenchBodies(b, tests, schema, streamID, "bench-vm-")
		readers := make([]*replayBody, len(bodies))
		reqs := make([]*http.Request, len(bodies))
		for i, body := range bodies {
			readers[i] = &replayBody{}
			req := httptest.NewRequest(http.MethodPost, "/v1/ingest.bin", nil)
			req.Body = readers[i]
			req.ContentLength = int64(len(body))
			reqs[i] = req
		}
		rw := &benchRW{hdr: make(http.Header)}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := i % len(bodies)
			readers[k].Reset(bodies[k])
			rw.code = 0
			h.ServeHTTP(rw, reqs[k])
			if rw.code != http.StatusOK {
				b.Fatalf("ingest.bin: %d", rw.code)
			}
		}
		b.StopTimer()
	} else {
		// Concurrent senders, each on its own stream with its own VMs —
		// the multi-writer shape group commit exists for. Parallelism is
		// raised so a single-core runner still drives overlapping appends.
		b.SetParallelism(8)
		var slot atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			s := slot.Add(1) - 1
			streamID := binHandshake(b, h, schema)
			bodies := binBenchBodies(b, tests, schema, streamID, fmt.Sprintf("bench-vm-%02d-", s))
			readers := make([]*replayBody, len(bodies))
			reqs := make([]*http.Request, len(bodies))
			for i, body := range bodies {
				readers[i] = &replayBody{}
				req := httptest.NewRequest(http.MethodPost, "/v1/ingest.bin", nil)
				req.Body = readers[i]
				req.ContentLength = int64(len(body))
				reqs[i] = req
			}
			rw := &benchRW{hdr: make(http.Header)}
			i := 0
			for pb.Next() {
				k := i % len(bodies)
				i++
				readers[k].Reset(bodies[k])
				rw.code = 0
				h.ServeHTTP(rw, reqs[k])
				if rw.code != http.StatusOK {
					b.Errorf("ingest.bin: %d", rw.code)
					return
				}
			}
		})
		b.StopTimer()
	}
	b.ReportMetric(float64(b.N*vms*perVM)/b.Elapsed().Seconds(), "snaps/s")
}
