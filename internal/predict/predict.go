// Package predict implements application run-time prediction from
// historical runs, the approach of Kapadia, Fortes & Brodley (HPDC'99)
// that the paper cites as the basis for choosing nearest-neighbour
// methods and positions its classifier as complementary to: "the
// application classification approach proposed in this paper is a good
// complement to related application run-time prediction approaches
// applied to resource scheduling" (Section 7).
//
// The predictor estimates a new run's execution time as the
// distance-weighted average of the k most similar historical runs,
// where similarity is measured in the space of the runs' class
// compositions (the classifier's output) — so classification feeds
// prediction exactly the way the paper envisions.
package predict

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/appclass"
	"repro/internal/appdb"
)

// featureOf embeds a class composition into a fixed-order vector.
func featureOf(comp map[appclass.Class]float64) []float64 {
	all := appclass.All()
	out := make([]float64, len(all))
	for i, c := range all {
		out[i] = comp[c]
	}
	return out
}

// Predictor estimates execution times from an application database.
type Predictor struct {
	k    int
	runs []appdb.Record
}

// New builds a predictor over the database's records. k must be
// positive; it is clamped to the record count at prediction time.
func New(db *appdb.DB, k int) (*Predictor, error) {
	if db == nil {
		return nil, fmt.Errorf("predict: nil database")
	}
	if k <= 0 {
		return nil, fmt.Errorf("predict: k must be positive, got %d", k)
	}
	var runs []appdb.Record
	for _, app := range db.Apps() {
		runs = append(runs, db.Runs(app)...)
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("predict: database has no records")
	}
	return &Predictor{k: k, runs: runs}, nil
}

// Len returns the number of historical runs available.
func (p *Predictor) Len() int { return len(p.runs) }

// Estimate is a prediction with its supporting evidence.
type Estimate struct {
	// Execution is the predicted run time.
	Execution time.Duration
	// Neighbors lists the historical runs the estimate is based on,
	// nearest first.
	Neighbors []appdb.Record
	// Spread is the standard deviation of the neighbours' execution
	// times — a confidence signal (small spread, trustworthy estimate).
	Spread time.Duration
}

// Predict estimates the execution time of a run with the given class
// composition using inverse-distance-weighted k-NN regression over the
// historical runs.
func (p *Predictor) Predict(comp map[appclass.Class]float64) (Estimate, error) {
	for c, f := range comp {
		if !appclass.Valid(c) {
			return Estimate{}, fmt.Errorf("predict: invalid class %q", c)
		}
		if f < 0 || f > 1 {
			return Estimate{}, fmt.Errorf("predict: composition fraction %v outside [0,1]", f)
		}
	}
	q := featureOf(comp)
	type scored struct {
		rec  appdb.Record
		dist float64
	}
	all := make([]scored, len(p.runs))
	for i, r := range p.runs {
		all[i] = scored{rec: r, dist: euclid(q, featureOf(r.Composition))}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].dist < all[j].dist })
	k := p.k
	if k > len(all) {
		k = len(all)
	}
	nearest := all[:k]

	// Inverse-distance weights with an exact-match fast path.
	const eps = 1e-9
	var weighted, weightSum float64
	for _, n := range nearest {
		w := 1 / (n.dist + eps)
		weighted += w * n.rec.ExecutionTime.Seconds()
		weightSum += w
	}
	mean := weighted / weightSum

	var varSum float64
	neighbors := make([]appdb.Record, k)
	for i, n := range nearest {
		neighbors[i] = n.rec
		d := n.rec.ExecutionTime.Seconds() - mean
		varSum += d * d
	}
	spread := 0.0
	if k > 1 {
		spread = math.Sqrt(varSum / float64(k-1))
	}
	return Estimate{
		Execution: time.Duration(mean * float64(time.Second)),
		Neighbors: neighbors,
		Spread:    time.Duration(spread * float64(time.Second)),
	}, nil
}

// PredictApp estimates a named application's next run time from its own
// history when it has one, falling back to whole-database similarity
// otherwise.
func (p *Predictor) PredictApp(db *appdb.DB, app string) (Estimate, error) {
	summary, err := db.Summarize(app)
	if err != nil {
		return Estimate{}, err
	}
	return p.Predict(summary.MeanComposition)
}

func euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
