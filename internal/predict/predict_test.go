package predict

import (
	"math"
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/appdb"
)

func record(app string, class appclass.Class, frac float64, exec time.Duration) appdb.Record {
	comp := map[appclass.Class]float64{class: frac}
	if frac < 1 {
		comp[appclass.Idle] = 1 - frac
	}
	return appdb.Record{App: app, Class: class, Composition: comp, ExecutionTime: exec}
}

func seededDB(t *testing.T) *appdb.DB {
	t.Helper()
	db := appdb.New()
	// CPU-heavy runs take ~600s; network runs ~200s.
	for i, exec := range []time.Duration{590 * time.Second, 600 * time.Second, 610 * time.Second} {
		if err := db.Put(record("cpuapp", appclass.CPU, 0.95-float64(i)*0.01, exec)); err != nil {
			t.Fatal(err)
		}
	}
	for i, exec := range []time.Duration{195 * time.Second, 200 * time.Second, 205 * time.Second} {
		if err := db.Put(record("netapp", appclass.Net, 0.93-float64(i)*0.01, exec)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestPredictUsesNearestRuns(t *testing.T) {
	p, err := New(seededDB(t), 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 6 {
		t.Fatalf("Len = %d", p.Len())
	}
	est, err := p.Predict(map[appclass.Class]float64{appclass.CPU: 0.94, appclass.Idle: 0.06})
	if err != nil {
		t.Fatal(err)
	}
	if est.Execution < 580*time.Second || est.Execution > 620*time.Second {
		t.Errorf("CPU-like estimate = %v, want ~600s", est.Execution)
	}
	if len(est.Neighbors) != 3 {
		t.Fatalf("neighbors = %d", len(est.Neighbors))
	}
	for _, n := range est.Neighbors {
		if n.Class != appclass.CPU {
			t.Errorf("neighbor from wrong cluster: %+v", n)
		}
	}
	est2, err := p.Predict(map[appclass.Class]float64{appclass.Net: 0.9, appclass.Idle: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if est2.Execution > 250*time.Second {
		t.Errorf("network-like estimate = %v, want ~200s", est2.Execution)
	}
}

func TestPredictSpread(t *testing.T) {
	p, err := New(seededDB(t), 3)
	if err != nil {
		t.Fatal(err)
	}
	est, err := p.Predict(map[appclass.Class]float64{appclass.CPU: 0.94, appclass.Idle: 0.06})
	if err != nil {
		t.Fatal(err)
	}
	// Neighbour executions are 590/600/610: spread ~10s.
	if est.Spread < 5*time.Second || est.Spread > 20*time.Second {
		t.Errorf("spread = %v, want ~10s", est.Spread)
	}
}

func TestPredictExactMatchDominates(t *testing.T) {
	db := appdb.New()
	if err := db.Put(record("a", appclass.IO, 1, 100*time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := db.Put(record("b", appclass.CPU, 1, 900*time.Second)); err != nil {
		t.Fatal(err)
	}
	p, err := New(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	est, err := p.Predict(map[appclass.Class]float64{appclass.IO: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Inverse-distance weighting: the exact match should dominate.
	if math.Abs(est.Execution.Seconds()-100) > 1 {
		t.Errorf("estimate = %v, want ~100s", est.Execution)
	}
}

func TestPredictApp(t *testing.T) {
	db := seededDB(t)
	p, err := New(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	est, err := p.PredictApp(db, "netapp")
	if err != nil {
		t.Fatal(err)
	}
	if est.Execution < 180*time.Second || est.Execution > 220*time.Second {
		t.Errorf("PredictApp(netapp) = %v", est.Execution)
	}
	if _, err := p.PredictApp(db, "ghost"); err == nil {
		t.Error("unknown app: want error")
	}
}

func TestPredictValidation(t *testing.T) {
	if _, err := New(nil, 3); err == nil {
		t.Error("nil db: want error")
	}
	if _, err := New(appdb.New(), 3); err == nil {
		t.Error("empty db: want error")
	}
	if _, err := New(seededDB(t), 0); err == nil {
		t.Error("k=0: want error")
	}
	p, err := New(seededDB(t), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict(map[appclass.Class]float64{"weird": 1}); err == nil {
		t.Error("invalid class: want error")
	}
	if _, err := p.Predict(map[appclass.Class]float64{appclass.CPU: 2}); err == nil {
		t.Error("fraction > 1: want error")
	}
}

func TestPredictKLargerThanData(t *testing.T) {
	db := appdb.New()
	if err := db.Put(record("only", appclass.CPU, 1, 300*time.Second)); err != nil {
		t.Fatal(err)
	}
	p, err := New(db, 10)
	if err != nil {
		t.Fatal(err)
	}
	est, err := p.Predict(map[appclass.Class]float64{appclass.CPU: 1})
	if err != nil {
		t.Fatal(err)
	}
	if est.Execution != 300*time.Second || est.Spread != 0 {
		t.Errorf("single-record estimate = %+v", est)
	}
}
