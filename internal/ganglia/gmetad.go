package ganglia

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"time"
)

// Gmetad aggregates the latest announcement of every (node, metric) pair
// seen on the bus, like the Ganglia meta-daemon polling its data
// sources. It can serve the cluster state as an XML document in a
// gmond-like wire format.
type Gmetad struct {
	cluster string
	state   map[string]map[string]Announcement // node -> metric -> latest
}

// NewGmetad creates an aggregator for the named cluster and subscribes
// it to the bus.
func NewGmetad(cluster string, bus *Bus) (*Gmetad, error) {
	g := &Gmetad{
		cluster: cluster,
		state:   make(map[string]map[string]Announcement),
	}
	if err := bus.Subscribe(ListenerFunc(g.onAnnounce)); err != nil {
		return nil, err
	}
	return g, nil
}

func (g *Gmetad) onAnnounce(a Announcement) {
	node, ok := g.state[a.Node]
	if !ok {
		node = make(map[string]Announcement)
		g.state[a.Node] = node
	}
	node[a.Metric] = a
}

// Nodes returns the names of all nodes seen, sorted.
func (g *Gmetad) Nodes() []string {
	out := make([]string, 0, len(g.state))
	for n := range g.state {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LastSeen returns the time of the newest announcement from a node.
func (g *Gmetad) LastSeen(node string) (time.Duration, error) {
	n, ok := g.state[node]
	if !ok {
		return 0, fmt.Errorf("ganglia: gmetad has no node %q", node)
	}
	var newest time.Duration
	for _, a := range n {
		if a.At > newest {
			newest = a.At
		}
	}
	return newest, nil
}

// AliveNodes partitions the known nodes into alive and dead: a node is
// dead when its newest announcement is older than ttl at time now (the
// gmond heartbeat-staleness rule).
func (g *Gmetad) AliveNodes(now, ttl time.Duration) (alive, dead []string) {
	for _, node := range g.Nodes() {
		last, err := g.LastSeen(node)
		if err != nil {
			continue
		}
		if now-last > ttl {
			dead = append(dead, node)
		} else {
			alive = append(alive, node)
		}
	}
	return alive, dead
}

// Latest returns the most recent value of a node's metric.
func (g *Gmetad) Latest(node, metric string) (float64, time.Duration, error) {
	n, ok := g.state[node]
	if !ok {
		return 0, 0, fmt.Errorf("ganglia: gmetad has no node %q", node)
	}
	a, ok := n[metric]
	if !ok {
		return 0, 0, fmt.Errorf("ganglia: gmetad has no metric %q for node %q", metric, node)
	}
	return a.Value, a.At, nil
}

// XML wire format, a simplified version of the gmond cluster dump.

type xmlMetric struct {
	XMLName xml.Name `xml:"METRIC"`
	Name    string   `xml:"NAME,attr"`
	Val     float64  `xml:"VAL,attr"`
	TN      float64  `xml:"TN,attr"` // seconds since the value was reported
}

type xmlHost struct {
	XMLName xml.Name    `xml:"HOST"`
	Name    string      `xml:"NAME,attr"`
	Metrics []xmlMetric `xml:"METRIC"`
}

type xmlCluster struct {
	XMLName xml.Name  `xml:"CLUSTER"`
	Name    string    `xml:"NAME,attr"`
	Hosts   []xmlHost `xml:"HOST"`
}

// WriteXML dumps the aggregated cluster state as XML. now anchors the
// TN (time since report) attributes.
func (g *Gmetad) WriteXML(w io.Writer, now time.Duration) error {
	doc := xmlCluster{Name: g.cluster}
	for _, node := range g.Nodes() {
		h := xmlHost{Name: node}
		names := make([]string, 0, len(g.state[node]))
		for m := range g.state[node] {
			names = append(names, m)
		}
		sort.Strings(names)
		for _, m := range names {
			a := g.state[node][m]
			h.Metrics = append(h.Metrics, xmlMetric{
				Name: m,
				Val:  a.Value,
				TN:   (now - a.At).Seconds(),
			})
		}
		doc.Hosts = append(doc.Hosts, h)
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("ganglia: encode cluster XML: %w", err)
	}
	return nil
}

// ParseXML reads a cluster dump produced by WriteXML, returning
// node -> metric -> value.
func ParseXML(r io.Reader) (map[string]map[string]float64, error) {
	var doc xmlCluster
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("ganglia: decode cluster XML: %w", err)
	}
	out := make(map[string]map[string]float64, len(doc.Hosts))
	for _, h := range doc.Hosts {
		m := make(map[string]float64, len(h.Metrics))
		for _, metric := range h.Metrics {
			m[metric.Name] = metric.Val
		}
		out[h.Name] = m
	}
	return out, nil
}
