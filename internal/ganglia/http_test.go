package ganglia

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func newServedGmetad(t *testing.T) (*Gmetad, *httptest.Server) {
	t.Helper()
	bus := NewBus()
	gm, err := NewGmetad("acis", bus)
	if err != nil {
		t.Fatal(err)
	}
	bus.Announce(Announcement{Node: "vm1", Metric: "cpu_user", Value: 42.5, At: 5 * time.Second})
	bus.Announce(Announcement{Node: "vm2", Metric: "cpu_user", Value: 7, At: 10 * time.Second})
	srv := httptest.NewServer(gm.Handler(func() time.Duration { return 15 * time.Second }))
	t.Cleanup(srv.Close)
	return gm, srv
}

func TestGmetadHTTPServesClusterState(t *testing.T) {
	_, srv := newServedGmetad(t)
	state, err := FetchClusterStateContext(context.Background(), srv.Client(), srv.URL)
	if err != nil {
		t.Fatalf("FetchClusterState: %v", err)
	}
	if state["vm1"]["cpu_user"] != 42.5 {
		t.Errorf("vm1 cpu_user = %v", state["vm1"]["cpu_user"])
	}
	if state["vm2"]["cpu_user"] != 7 {
		t.Errorf("vm2 cpu_user = %v", state["vm2"]["cpu_user"])
	}
}

func TestGmetadHTTPRejectsPost(t *testing.T) {
	_, srv := newServedGmetad(t)
	resp, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", resp.StatusCode)
	}
}

func TestFetchClusterStateNilClientHasTimeout(t *testing.T) {
	if defaultFetchClient.Timeout != DefaultFetchTimeout || defaultFetchClient.Timeout <= 0 {
		t.Errorf("default fetch client timeout = %v, want %v", defaultFetchClient.Timeout, DefaultFetchTimeout)
	}
	// A nil client must still reach a live gmetad through the default.
	_, srv := newServedGmetad(t)
	state, err := FetchClusterStateContext(context.Background(), nil, srv.URL)
	if err != nil {
		t.Fatalf("FetchClusterState(nil client): %v", err)
	}
	if state["vm1"]["cpu_user"] != 42.5 {
		t.Errorf("vm1 cpu_user = %v", state["vm1"]["cpu_user"])
	}
}

func TestFetchClusterStateErrors(t *testing.T) {
	if _, err := FetchClusterStateContext(context.Background(), nil, "http://127.0.0.1:1/nothing-here"); err == nil {
		t.Error("unreachable server: want error")
	}
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()
	if _, err := FetchClusterStateContext(context.Background(), bad.Client(), bad.URL); err == nil {
		t.Error("500 response: want error")
	}
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("not xml"))
	}))
	defer garbage.Close()
	if _, err := FetchClusterStateContext(context.Background(), garbage.Client(), garbage.URL); err == nil {
		t.Error("garbage body: want error")
	}
}
