// Package ganglia simulates the Ganglia distributed monitoring system
// the paper's profiler is built on: per-node gmond agents announce their
// metrics on a multicast channel using a listen/announce protocol, so
// every listener on the subnet receives the performance data of all
// nodes and must filter for the node it cares about — exactly the
// situation the paper's "performance filter" exists to handle. A gmetad
// aggregator maintains the latest state of the whole subnet and serves
// it as an XML dump.
package ganglia

import (
	"fmt"
	"math/rand"
	"time"
)

// Announcement is one metric value multicast by a gmond agent.
type Announcement struct {
	// Node is the announcing node (the VM name / the paper's VMIP).
	Node string
	// Metric is the canonical metric name.
	Metric string
	// Value is the metric value.
	Value float64
	// At is the simulated announcement time.
	At time.Duration
}

// Listener receives every announcement on the bus (multicast: no
// per-node addressing).
type Listener interface {
	OnAnnounce(a Announcement)
}

// ListenerFunc adapts a function to the Listener interface.
type ListenerFunc func(a Announcement)

// OnAnnounce implements Listener.
func (f ListenerFunc) OnAnnounce(a Announcement) { f(a) }

// Bus is the multicast channel of the listen/announce protocol. Delivery
// is synchronous and in subscription order, which keeps the simulation
// deterministic; the multicast property the paper relies on — every
// listener sees every node — is preserved. An optional loss model drops
// announcements the way the real UDP multicast transport does.
type Bus struct {
	listeners []Listener
	delivered int
	dropped   int
	lossRate  float64
	lossRNG   *rand.Rand
}

// NewBus creates an empty, lossless bus.
func NewBus() *Bus { return &Bus{} }

// SetLoss enables the loss model: each announcement is independently
// dropped with probability rate. Rate 0 disables loss.
func (b *Bus) SetLoss(rate float64, seed int64) error {
	if rate < 0 || rate >= 1 {
		return fmt.Errorf("ganglia: loss rate %v outside [0,1)", rate)
	}
	b.lossRate = rate
	if rate > 0 {
		b.lossRNG = rand.New(rand.NewSource(seed))
	} else {
		b.lossRNG = nil
	}
	return nil
}

// Subscribe registers a listener for all future announcements.
func (b *Bus) Subscribe(l Listener) error {
	if l == nil {
		return fmt.Errorf("ganglia: cannot subscribe nil listener")
	}
	b.listeners = append(b.listeners, l)
	return nil
}

// Announce multicasts a to every listener, subject to the loss model.
func (b *Bus) Announce(a Announcement) {
	if b.lossRNG != nil && b.lossRNG.Float64() < b.lossRate {
		b.dropped++
		return
	}
	b.delivered++
	for _, l := range b.listeners {
		l.OnAnnounce(a)
	}
}

// Delivered returns the number of announcements multicast so far.
func (b *Bus) Delivered() int { return b.delivered }

// Dropped returns the number of announcements lost to the loss model.
func (b *Bus) Dropped() int { return b.dropped }

// Listeners returns the number of subscribed listeners.
func (b *Bus) Listeners() int { return len(b.listeners) }
