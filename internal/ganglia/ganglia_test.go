package ganglia

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/simtime"
)

// fakeSource is a MetricSource with settable values.
type fakeSource struct {
	name   string
	values map[string]float64
}

func (f *fakeSource) Name() string { return f.name }
func (f *fakeSource) Sample() map[string]float64 {
	out := make(map[string]float64, len(f.values))
	for k, v := range f.values {
		out[k] = v
	}
	return out
}

func TestBusMulticastsToAllListeners(t *testing.T) {
	bus := NewBus()
	var got1, got2 []Announcement
	if err := bus.Subscribe(ListenerFunc(func(a Announcement) { got1 = append(got1, a) })); err != nil {
		t.Fatal(err)
	}
	if err := bus.Subscribe(ListenerFunc(func(a Announcement) { got2 = append(got2, a) })); err != nil {
		t.Fatal(err)
	}
	bus.Announce(Announcement{Node: "vm1", Metric: "cpu_user", Value: 42})
	if len(got1) != 1 || len(got2) != 1 {
		t.Fatalf("listeners got %d/%d announcements, want 1/1", len(got1), len(got2))
	}
	if got1[0].Value != 42 || got2[0].Node != "vm1" {
		t.Errorf("announcement content mismatch: %+v %+v", got1[0], got2[0])
	}
	if bus.Delivered() != 1 || bus.Listeners() != 2 {
		t.Errorf("Delivered=%d Listeners=%d", bus.Delivered(), bus.Listeners())
	}
}

func TestBusRejectsNilListener(t *testing.T) {
	if err := NewBus().Subscribe(nil); err == nil {
		t.Fatal("nil listener: want error")
	}
}

func TestGmondAnnouncesAllMetricsPeriodically(t *testing.T) {
	bus := NewBus()
	src := &fakeSource{name: "vm1", values: map[string]float64{"b": 2, "a": 1, "c": 3}}
	var got []Announcement
	_ = bus.Subscribe(ListenerFunc(func(a Announcement) { got = append(got, a) }))
	g, err := NewGmond(src, bus, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := simtime.NewEventQueue(simtime.NewClock())
	if err := g.Start(q); err != nil {
		t.Fatal(err)
	}
	if err := q.RunUntil(12 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Default 5s interval: announcements at 5s and 10s, 3 metrics each.
	if len(got) != 6 {
		t.Fatalf("got %d announcements, want 6", len(got))
	}
	// Sorted metric order within a round.
	if got[0].Metric != "a" || got[1].Metric != "b" || got[2].Metric != "c" {
		t.Errorf("metric order = %v %v %v, want a b c", got[0].Metric, got[1].Metric, got[2].Metric)
	}
	if got[0].At != 5*time.Second || got[3].At != 10*time.Second {
		t.Errorf("announce times = %v, %v", got[0].At, got[3].At)
	}
	if g.Sent() != 6 {
		t.Errorf("Sent = %d, want 6", g.Sent())
	}
}

func TestGmondStop(t *testing.T) {
	bus := NewBus()
	src := &fakeSource{name: "vm1", values: map[string]float64{"a": 1}}
	g, err := NewGmond(src, bus, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	q := simtime.NewEventQueue(simtime.NewClock())
	if err := g.Start(q); err != nil {
		t.Fatal(err)
	}
	if err := q.RunUntil(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	g.Stop()
	if err := q.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if g.Sent() != 3 {
		t.Errorf("Sent = %d after stop, want 3", g.Sent())
	}
}

func TestGmondValidation(t *testing.T) {
	bus := NewBus()
	src := &fakeSource{name: "vm1", values: nil}
	if _, err := NewGmond(nil, bus, 0); err == nil {
		t.Error("nil source: want error")
	}
	if _, err := NewGmond(src, nil, 0); err == nil {
		t.Error("nil bus: want error")
	}
	if _, err := NewGmond(src, bus, -time.Second); err == nil {
		t.Error("negative interval: want error")
	}
	g, err := NewGmond(src, bus, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	q := simtime.NewEventQueue(simtime.NewClock())
	if err := g.Start(q); err != nil {
		t.Fatal(err)
	}
	if err := g.Start(q); err == nil {
		t.Error("double start: want error")
	}
}

func TestGmetadAggregatesLatest(t *testing.T) {
	bus := NewBus()
	gm, err := NewGmetad("acis", bus)
	if err != nil {
		t.Fatal(err)
	}
	bus.Announce(Announcement{Node: "vm1", Metric: "cpu_user", Value: 10, At: time.Second})
	bus.Announce(Announcement{Node: "vm1", Metric: "cpu_user", Value: 20, At: 2 * time.Second})
	bus.Announce(Announcement{Node: "vm2", Metric: "cpu_user", Value: 5, At: 2 * time.Second})
	v, at, err := gm.Latest("vm1", "cpu_user")
	if err != nil {
		t.Fatal(err)
	}
	if v != 20 || at != 2*time.Second {
		t.Errorf("Latest = (%v,%v), want (20,2s)", v, at)
	}
	if nodes := gm.Nodes(); len(nodes) != 2 || nodes[0] != "vm1" {
		t.Errorf("Nodes = %v", nodes)
	}
	if _, _, err := gm.Latest("vmX", "cpu_user"); err == nil {
		t.Error("unknown node: want error")
	}
	if _, _, err := gm.Latest("vm1", "nope"); err == nil {
		t.Error("unknown metric: want error")
	}
}

func TestGmetadXMLRoundTrip(t *testing.T) {
	bus := NewBus()
	gm, err := NewGmetad("acis", bus)
	if err != nil {
		t.Fatal(err)
	}
	bus.Announce(Announcement{Node: "vm1", Metric: "cpu_user", Value: 33.5, At: 5 * time.Second})
	bus.Announce(Announcement{Node: "vm1", Metric: "bytes_in", Value: 1e6, At: 5 * time.Second})
	bus.Announce(Announcement{Node: "vm2", Metric: "cpu_user", Value: 1.5, At: 10 * time.Second})

	var buf bytes.Buffer
	if err := gm.WriteXML(&buf, 15*time.Second); err != nil {
		t.Fatalf("WriteXML: %v", err)
	}
	xml := buf.String()
	if !strings.Contains(xml, `CLUSTER`) || !strings.Contains(xml, `NAME="vm1"`) {
		t.Errorf("XML missing expected structure:\n%s", xml)
	}
	parsed, err := ParseXML(&buf)
	if err != nil {
		t.Fatalf("ParseXML: %v", err)
	}
	if parsed["vm1"]["cpu_user"] != 33.5 || parsed["vm2"]["cpu_user"] != 1.5 {
		t.Errorf("parsed = %v", parsed)
	}
}

func TestParseXMLRejectsGarbage(t *testing.T) {
	if _, err := ParseXML(strings.NewReader("not xml at all")); err == nil {
		t.Fatal("garbage input: want error")
	}
}

func TestGmetadFailureDetection(t *testing.T) {
	bus := NewBus()
	gm, err := NewGmetad("acis", bus)
	if err != nil {
		t.Fatal(err)
	}
	bus.Announce(Announcement{Node: "vm1", Metric: "heartbeat", Value: 1, At: 5 * time.Second})
	bus.Announce(Announcement{Node: "vm2", Metric: "heartbeat", Value: 1, At: 90 * time.Second})

	last, err := gm.LastSeen("vm1")
	if err != nil || last != 5*time.Second {
		t.Errorf("LastSeen(vm1) = (%v, %v)", last, err)
	}
	if _, err := gm.LastSeen("ghost"); err == nil {
		t.Error("LastSeen(ghost): want error")
	}

	// At t=100s with a 30s TTL, vm1 (last seen 5s) is dead, vm2 alive.
	alive, dead := gm.AliveNodes(100*time.Second, 30*time.Second)
	if len(alive) != 1 || alive[0] != "vm2" {
		t.Errorf("alive = %v", alive)
	}
	if len(dead) != 1 || dead[0] != "vm1" {
		t.Errorf("dead = %v", dead)
	}

	// A fresh announcement resurrects the node.
	bus.Announce(Announcement{Node: "vm1", Metric: "heartbeat", Value: 2, At: 95 * time.Second})
	alive, dead = gm.AliveNodes(100*time.Second, 30*time.Second)
	if len(alive) != 2 || len(dead) != 0 {
		t.Errorf("after resurrection: alive=%v dead=%v", alive, dead)
	}
}
