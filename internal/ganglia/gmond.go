package ganglia

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/simtime"
)

// MetricSource supplies a node's current metric values. The VM simulator
// implements it; the paper's real system read /proc and vmstat.
type MetricSource interface {
	// Name identifies the node.
	Name() string
	// Sample returns the current value of every monitored metric.
	Sample() map[string]float64
}

// Gmond is a per-node monitoring agent. At every announce interval it
// samples its node and multicasts one announcement per metric, just as
// gmond periodically announces its metric list. The paper extended
// gmond's default metric list with four vmstat metrics; here the metric
// list is whatever the source reports.
type Gmond struct {
	source   MetricSource
	bus      *Bus
	interval time.Duration
	stop     func()
	sent     int
}

// DefaultAnnounceInterval matches the paper's 5-second sampling period.
const DefaultAnnounceInterval = 5 * time.Second

// NewGmond creates an agent for source announcing on bus every interval
// (DefaultAnnounceInterval when zero).
func NewGmond(source MetricSource, bus *Bus, interval time.Duration) (*Gmond, error) {
	if source == nil || bus == nil {
		return nil, fmt.Errorf("ganglia: gmond needs a source and a bus")
	}
	if interval < 0 {
		return nil, fmt.Errorf("ganglia: negative announce interval %v", interval)
	}
	if interval == 0 {
		interval = DefaultAnnounceInterval
	}
	return &Gmond{source: source, bus: bus, interval: interval}, nil
}

// Start schedules the agent's periodic announcements on q.
func (g *Gmond) Start(q *simtime.EventQueue) error {
	if g.stop != nil {
		return fmt.Errorf("ganglia: gmond for %q already started", g.source.Name())
	}
	stop, err := q.Every(g.interval, g.announce)
	if err != nil {
		return fmt.Errorf("ganglia: start gmond for %q: %w", g.source.Name(), err)
	}
	g.stop = stop
	return nil
}

// Stop cancels future announcements.
func (g *Gmond) Stop() {
	if g.stop != nil {
		g.stop()
		g.stop = nil
	}
}

// Sent returns the number of announcements this agent has multicast.
func (g *Gmond) Sent() int { return g.sent }

// announce samples the node and multicasts every metric. Metrics are
// announced in sorted name order for determinism.
func (g *Gmond) announce(now time.Duration) {
	sample := g.source.Sample()
	names := make([]string, 0, len(sample))
	for name := range sample {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g.bus.Announce(Announcement{
			Node:   g.source.Name(),
			Metric: name,
			Value:  sample[name],
			At:     now,
		})
		g.sent++
	}
}
