package ganglia

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/simtime"
)

func replayTrace(t *testing.T, n int) *metrics.Trace {
	t.Helper()
	schema, err := metrics.NewSchema([]string{"m1", "m2"})
	if err != nil {
		t.Fatal(err)
	}
	tr := metrics.NewTrace(schema, "replayed-vm")
	for i := 0; i < n; i++ {
		err := tr.Append(metrics.Snapshot{
			Time: time.Duration(i*5) * time.Second, Node: "replayed-vm",
			Values: []float64{float64(i), float64(i * 2)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestReplaySourceServesSnapshotsInOrder(t *testing.T) {
	src, err := NewReplaySource(replayTrace(t, 3), false)
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != "replayed-vm" {
		t.Errorf("Name = %q", src.Name())
	}
	for i := 0; i < 3; i++ {
		s := src.Sample()
		if s["m1"] != float64(i) || s["m2"] != float64(i*2) {
			t.Errorf("sample %d = %v", i, s)
		}
	}
	// Past the end (no loop): the last snapshot repeats.
	for i := 0; i < 2; i++ {
		if s := src.Sample(); s["m1"] != 2 {
			t.Errorf("post-end sample = %v, want last snapshot", s)
		}
	}
}

func TestReplaySourceLoops(t *testing.T) {
	src, err := NewReplaySource(replayTrace(t, 2), true)
	if err != nil {
		t.Fatal(err)
	}
	got := []float64{
		src.Sample()["m1"], src.Sample()["m1"],
		src.Sample()["m1"], src.Sample()["m1"],
	}
	want := []float64{0, 1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("looped samples = %v, want %v", got, want)
		}
	}
}

func TestReplaySourceValidation(t *testing.T) {
	if _, err := NewReplaySource(nil, false); err == nil {
		t.Error("nil trace: want error")
	}
	schema, _ := metrics.NewSchema([]string{"a"})
	if _, err := NewReplaySource(metrics.NewTrace(schema, "x"), false); err == nil {
		t.Error("empty trace: want error")
	}
}

// TestReplayThroughLivePipeline: a recorded trace replayed through gmond
// and the bus reaches a gmetad aggregator with the right values.
func TestReplayThroughLivePipeline(t *testing.T) {
	src, err := NewReplaySource(replayTrace(t, 5), false)
	if err != nil {
		t.Fatal(err)
	}
	bus := NewBus()
	gm, err := NewGmetad("replay", bus)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewGmond(src, bus, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	q := simtime.NewEventQueue(simtime.NewClock())
	if err := agent.Start(q); err != nil {
		t.Fatal(err)
	}
	if err := q.RunUntil(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Three announce rounds -> the replay served snapshots 0,1,2; the
	// aggregator holds the latest.
	v, at, err := gm.Latest("replayed-vm", "m1")
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 || at != 15*time.Second {
		t.Errorf("latest = (%v, %v), want (2, 15s)", v, at)
	}
	if src.Position() != 3 {
		t.Errorf("replay position = %d, want 3", src.Position())
	}
}
