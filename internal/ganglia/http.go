package ganglia

import (
	"context"
	"fmt"
	"net/http"
	"time"
)

// Handler serves the aggregator's cluster state the way a real gmetad
// answers its interactive port: an XML dump of every host's latest
// metrics. The clock function supplies the current simulated time for
// the TN (seconds since reported) attributes.
func (g *Gmetad) Handler(clock func() time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "gmetad: only GET is supported", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/xml")
		if err := g.WriteXML(w, clock()); err != nil {
			// Headers are already gone; all we can do is report.
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// DefaultFetchTimeout bounds FetchClusterStateContext requests when the caller
// passes a nil client. http.DefaultClient has no timeout, so without
// this a hung gmetad would stall a poll loop forever.
const DefaultFetchTimeout = 10 * time.Second

var defaultFetchClient = &http.Client{Timeout: DefaultFetchTimeout}

// FetchClusterStateContext retrieves and parses a gmetad XML dump from
// url using the given HTTP client (nil for a default client with
// DefaultFetchTimeout), returning node -> metric -> value. The context
// bounds the whole fetch including the body read, so a shutdown (or a
// per-attempt deadline) cancels an in-flight poll instead of letting it
// outlive its caller.
func FetchClusterStateContext(ctx context.Context, client *http.Client, url string) (map[string]map[string]float64, error) {
	if client == nil {
		client = defaultFetchClient
	}
	if ctx == nil {
		ctx = context.Background()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("ganglia: fetch cluster state: %w", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("ganglia: fetch cluster state: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("ganglia: gmetad returned %s", resp.Status)
	}
	state, err := ParseXML(resp.Body)
	if err != nil {
		return nil, err
	}
	return state, nil
}
