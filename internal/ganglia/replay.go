package ganglia

import (
	"fmt"
	"sync"

	"repro/internal/metrics"
)

// ReplaySource adapts a recorded trace to the MetricSource interface, so
// traces captured earlier (or on real machines) can be fed through the
// live monitoring pipeline: a gmond agent samples the replay one
// snapshot per announce interval.
type ReplaySource struct {
	mu    sync.Mutex
	trace *metrics.Trace
	next  int
	loop  bool
}

// NewReplaySource wraps a non-empty trace. When loop is true the replay
// wraps around at the end; otherwise the final snapshot repeats (a
// finished machine keeps reporting its last state).
func NewReplaySource(trace *metrics.Trace, loop bool) (*ReplaySource, error) {
	if trace == nil || trace.Len() == 0 {
		return nil, fmt.Errorf("ganglia: replay needs a non-empty trace")
	}
	return &ReplaySource{trace: trace, loop: loop}, nil
}

// Name implements MetricSource.
func (r *ReplaySource) Name() string { return r.trace.Node() }

// Position returns the index of the next snapshot to be replayed.
func (r *ReplaySource) Position() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Sample implements MetricSource: each call serves the next snapshot.
func (r *ReplaySource) Sample() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := r.next
	if idx >= r.trace.Len() {
		if r.loop {
			idx = 0
			r.next = 0
		} else {
			idx = r.trace.Len() - 1
		}
	}
	snap := r.trace.At(idx)
	out := make(map[string]float64, r.trace.Schema().Len())
	for i, name := range r.trace.Schema().Names() {
		out[name] = snap.Values[i]
	}
	if r.next < r.trace.Len() || r.loop {
		r.next++
	}
	return out
}

var _ MetricSource = (*ReplaySource)(nil)
