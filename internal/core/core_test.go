package core

import (
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/classify"
	"repro/internal/costmodel"
	"repro/internal/workload"
)

func newService(t *testing.T) *Service {
	t.Helper()
	s, err := NewService(Options{Seed: 1})
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	return s
}

func TestServiceEndToEnd(t *testing.T) {
	s := newService(t)
	e, err := workload.Find("PostMark")
	if err != nil {
		t.Fatal(err)
	}
	report, err := s.ProfileAndClassify(e, 2)
	if err != nil {
		t.Fatalf("ProfileAndClassify: %v", err)
	}
	if report.Result.Class != appclass.IO {
		t.Errorf("PostMark class = %s, want io", report.Result.Class)
	}
	if report.Samples < 20 || report.Elapsed <= 0 {
		t.Errorf("report = %d samples, %v elapsed", report.Samples, report.Elapsed)
	}
	// The run must be in the database.
	rec, err := s.DB().Latest("PostMark")
	if err != nil {
		t.Fatalf("DB record: %v", err)
	}
	if rec.Class != appclass.IO || rec.Samples != report.Samples {
		t.Errorf("stored record = %+v", rec)
	}
}

func TestServiceQuote(t *testing.T) {
	s := newService(t)
	e, err := workload.Find("CH3D")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ProfileAndClassify(e, 2); err != nil {
		t.Fatal(err)
	}
	rates := costmodel.Rates{CPU: 10, Mem: 8, IO: 6, Net: 4, Idle: 1}
	q, err := s.Quote("CH3D", rates)
	if err != nil {
		t.Fatalf("Quote: %v", err)
	}
	// CH3D is ~100% CPU: unit cost near the CPU rate.
	if q.UnitCost < 9 || q.UnitCost > 10.5 {
		t.Errorf("CH3D unit cost = %v, want ~10 (pure CPU)", q.UnitCost)
	}
	if q.RunCost <= 0 {
		t.Errorf("run cost = %v", q.RunCost)
	}
	if _, err := s.Quote("ghost", rates); err == nil {
		t.Error("Quote for unknown app: want error")
	}
}

func TestNewServiceFromRunsValidation(t *testing.T) {
	if _, err := NewServiceFromRuns(nil, Options{}); err == nil {
		t.Error("no runs: want error")
	}
}

func TestServiceCustomConfig(t *testing.T) {
	s, err := NewService(Options{Seed: 1, Classifier: classify.Config{K: 1, Components: 2}})
	if err != nil {
		t.Fatalf("NewService(k=1): %v", err)
	}
	if s.Classifier().Config().K != 1 {
		t.Errorf("K = %d, want 1", s.Classifier().Config().K)
	}
}

func TestClassifyTraceStoresExecutionTime(t *testing.T) {
	s := newService(t)
	e, err := workload.Find("Sftp")
	if err != nil {
		t.Fatal(err)
	}
	report, err := s.ProfileAndClassify(e, 5)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.DB().Latest("Sftp")
	if err != nil {
		t.Fatal(err)
	}
	if rec.ExecutionTime != report.Elapsed || rec.ExecutionTime < time.Minute {
		t.Errorf("stored execution time %v, report %v", rec.ExecutionTime, report.Elapsed)
	}
}
