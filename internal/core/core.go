// Package core assembles the paper's complete application
// classification system (Figure 1): the performance profiler collects
// metric snapshots of an application's dedicated VM, the classification
// center (PCA + 3-NN) classifies each snapshot and votes the
// application class, and the application database stores class,
// composition and execution time of every historical run for use by
// cost models and class-aware schedulers.
package core

import (
	"fmt"
	"time"

	"repro/internal/appdb"
	"repro/internal/classify"
	"repro/internal/costmodel"
	"repro/internal/metrics"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// Options configures a Service.
type Options struct {
	// Seed drives all simulation randomness.
	Seed int64
	// Classifier configures the classification center; the zero value
	// is the paper's configuration (8 expert metrics, q = 2, k = 3).
	Classifier classify.Config
}

// Service is a trained application classifier with its application
// database.
type Service struct {
	opts       Options
	classifier *classify.Classifier
	db         *appdb.DB
}

// NewService profiles the five training applications of Section 4.2.3
// on the simulated testbed, trains the classification center on them,
// and returns a ready service.
func NewService(opts Options) (*Service, error) {
	var runs []classify.TrainingRun
	for _, e := range workload.TrainingSet() {
		res, err := testbed.ProfileEntry(e, opts.Seed)
		if err != nil {
			return nil, fmt.Errorf("core: profile training app %s: %w", e.Name, err)
		}
		runs = append(runs, classify.TrainingRun{Class: e.Expected, Trace: res.Trace})
	}
	return NewServiceFromRuns(runs, opts)
}

// NewServiceFromRuns trains a service from caller-provided labelled
// runs (e.g. traces loaded from disk).
func NewServiceFromRuns(runs []classify.TrainingRun, opts Options) (*Service, error) {
	cl, err := classify.Train(runs, opts.Classifier)
	if err != nil {
		return nil, fmt.Errorf("core: train: %w", err)
	}
	return NewServiceWithClassifier(cl, opts)
}

// NewServiceWithClassifier wraps an already-trained classifier (e.g.
// one restored with classify.Load) in a fresh service.
func NewServiceWithClassifier(cl *classify.Classifier, opts Options) (*Service, error) {
	if cl == nil {
		return nil, fmt.Errorf("core: nil classifier")
	}
	return &Service{opts: opts, classifier: cl, db: appdb.New()}, nil
}

// Classifier exposes the trained classification center.
func (s *Service) Classifier() *classify.Classifier { return s.classifier }

// DB exposes the application database.
func (s *Service) DB() *appdb.DB { return s.db }

// RunReport is the post-processed outcome of one profiled and
// classified application run (the record stored in the application
// database, plus the feature-space points for clustering diagrams).
type RunReport struct {
	App     string
	Result  *classify.Result
	Trace   *metrics.Trace
	Elapsed time.Duration
	Samples int
}

// ProfileAndClassify runs a registry entry end to end: profile the
// application in its VM, classify the trace, and store the
// post-processed record in the application database.
func (s *Service) ProfileAndClassify(e workload.Entry, seed int64) (*RunReport, error) {
	res, err := testbed.ProfileEntry(e, seed)
	if err != nil {
		return nil, fmt.Errorf("core: profile %s: %w", e.Name, err)
	}
	return s.ClassifyTrace(e.Name, res.Trace, res.Elapsed)
}

// ClassifyTrace classifies an already-collected trace and stores the
// record.
func (s *Service) ClassifyTrace(app string, trace *metrics.Trace, elapsed time.Duration) (*RunReport, error) {
	out, err := s.classifier.ClassifyTrace(trace)
	if err != nil {
		return nil, fmt.Errorf("core: classify %s: %w", app, err)
	}
	rec := appdb.Record{
		App:           app,
		Class:         out.Class,
		Composition:   out.Composition,
		ExecutionTime: elapsed,
		Samples:       trace.Len(),
	}
	if err := s.db.Put(rec); err != nil {
		return nil, fmt.Errorf("core: store %s: %w", app, err)
	}
	return &RunReport{
		App:     app,
		Result:  out,
		Trace:   trace,
		Elapsed: elapsed,
		Samples: trace.Len(),
	}, nil
}

// Quote prices an application from its historical runs using the
// Section 4.4 cost model.
func (s *Service) Quote(app string, rates costmodel.Rates) (costmodel.Quote, error) {
	summary, err := s.db.Summarize(app)
	if err != nil {
		return costmodel.Quote{}, err
	}
	return costmodel.QuoteRun(app, summary.MeanComposition, summary.MeanExecution, rates)
}
