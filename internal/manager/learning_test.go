package manager

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/core"
	"repro/internal/vmm"
	"repro/internal/workload"
)

func learningSite(t testing.TB) (*vmm.Cluster, []*vmm.Host) {
	t.Helper()
	cluster := vmm.NewCluster()
	var hosts []*vmm.Host
	for i := 0; i < 3; i++ {
		h := vmm.NewHost(vmm.HostConfig{
			Name: fmt.Sprintf("host%d", i),
			CPUs: 1.2, NetInKBps: 20000, NetOutKBps: 20000,
		})
		if err := cluster.AddHost(h); err != nil {
			t.Fatal(err)
		}
		hosts = append(hosts, h)
	}
	return cluster, hosts
}

func newLearning(t *testing.T) (*LearningManager, *vmm.Cluster) {
	t.Helper()
	svc, err := core.NewService(core.Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	cluster, hosts := learningSite(t)
	lm, err := NewLearning(cluster, Config{
		Hosts: hosts, CapacityPerHost: 2, Policy: ClassAwarePolicy{},
	}, svc)
	if err != nil {
		t.Fatal(err)
	}
	return lm, cluster
}

func TestNewLearningValidation(t *testing.T) {
	cluster, hosts := learningSite(t)
	if _, err := NewLearning(cluster, Config{Hosts: hosts, CapacityPerHost: 2, Policy: ClassAwarePolicy{}}, nil); err == nil {
		t.Error("nil service: want error")
	}
}

func TestLearningManagerLearnsClassFromFirstRun(t *testing.T) {
	lm, cluster := newLearning(t)
	if _, ok := lm.KnownClass("postmark"); ok {
		t.Fatal("class known before any run")
	}
	job, err := workload.NewPostMark(workload.PostMarkLocal, 0, workload.Config{Name: "pm-1", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lm.SubmitTyped(job, "postmark"); err != nil {
		t.Fatalf("SubmitTyped: %v", err)
	}
	if _, err := lm.SubmitTyped(nil, ""); err == nil {
		t.Error("empty application type: want error")
	}
	// Run until the job finishes and the tick after classifies it.
	for lm.Active() > 0 && cluster.Now() < time.Hour {
		if err := cluster.RunFor(time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	if lm.Learned("postmark") != 1 {
		t.Fatalf("Learned = %d, want 1", lm.Learned("postmark"))
	}
	class, ok := lm.KnownClass("postmark")
	if !ok {
		t.Fatal("class still unknown after a completed run")
	}
	if class != appclass.IO {
		t.Errorf("learned class = %s, want io", class)
	}
	// The database holds the run with its execution time.
	rec, err := lm.svc.DB().Latest("postmark")
	if err != nil {
		t.Fatal(err)
	}
	if rec.ExecutionTime < 2*time.Minute || rec.Samples < 10 {
		t.Errorf("stored record = %+v", rec)
	}
}

// TestLearningImprovesSecondWave is the end-to-end story of the paper's
// abstract: a first wave of unknown applications is placed blind; their
// runs are profiled and classified; the second wave of the same types is
// placed class-aware and finishes sooner.
func TestLearningImprovesSecondWave(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	lm, cluster := newLearning(t)
	types := []string{"seis", "postmark", "netpipe"}
	build := func(typ string, instance int) vmm.Job {
		name := fmt.Sprintf("%s-%d", typ, instance)
		seed := int64(instance)
		var j vmm.Job
		var err error
		switch typ {
		case "seis":
			j, err = workload.NewSPECseis(workload.SPECseisSmall, workload.Config{Name: name, Seed: seed})
		case "postmark":
			j, err = workload.NewPostMark(workload.PostMarkLocal, 0, workload.Config{Name: name, Seed: seed})
		default:
			j, err = workload.NewNetPIPE(0, workload.Config{Name: name, Seed: seed})
		}
		if err != nil {
			t.Fatal(err)
		}
		return j
	}

	runWave := func(wave int) time.Duration {
		start := len(lm.Completed())
		submitted := 0
		for submitted < 6 {
			typ := types[submitted%3]
			if _, err := lm.SubmitTyped(build(typ, wave*10+submitted), typ); err == nil {
				submitted++
			}
			if err := cluster.RunFor(time.Minute); err != nil {
				t.Fatal(err)
			}
		}
		for lm.Active() > 0 && cluster.Now() < 24*time.Hour {
			if err := cluster.RunFor(time.Minute); err != nil {
				t.Fatal(err)
			}
		}
		recs := lm.Completed()[start:]
		var sum time.Duration
		for _, r := range recs {
			sum += r.Turnaround
		}
		return sum / time.Duration(len(recs))
	}

	wave1 := runWave(1)
	// After wave 1, every type's class is known.
	for _, typ := range types {
		if _, ok := lm.KnownClass(typ); !ok {
			t.Fatalf("type %s not learned after wave 1", typ)
		}
	}
	wave2 := runWave(2)
	t.Logf("wave 1 (unknown classes): %v; wave 2 (learned classes): %v", wave1, wave2)
	if wave2 > wave1 {
		t.Errorf("learned-class wave slower: %v vs %v", wave2, wave1)
	}
	// Learned classes match ground truth.
	want := map[string]appclass.Class{"seis": appclass.CPU, "postmark": appclass.IO, "netpipe": appclass.Net}
	for typ, wantClass := range want {
		got, _ := lm.KnownClass(typ)
		if got != wantClass {
			t.Errorf("learned class of %s = %s, want %s", typ, got, wantClass)
		}
	}
}
