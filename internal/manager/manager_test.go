package manager

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/vmm"
)

// site builds a cluster with n homogeneous hosts.
func site(t testing.TB, n int) (*vmm.Cluster, []*vmm.Host) {
	t.Helper()
	cluster := vmm.NewCluster()
	var hosts []*vmm.Host
	for i := 0; i < n; i++ {
		h := vmm.NewHost(vmm.HostConfig{Name: fmt.Sprintf("host%d", i), CPUs: 2})
		if err := cluster.AddHost(h); err != nil {
			t.Fatal(err)
		}
		hosts = append(hosts, h)
	}
	return cluster, hosts
}

func TestManagerValidation(t *testing.T) {
	cluster, hosts := site(t, 2)
	if _, err := New(nil, Config{Hosts: hosts, CapacityPerHost: 2, Policy: ClassAwarePolicy{}}); err == nil {
		t.Error("nil cluster: want error")
	}
	if _, err := New(cluster, Config{CapacityPerHost: 2, Policy: ClassAwarePolicy{}}); err == nil {
		t.Error("no hosts: want error")
	}
	if _, err := New(cluster, Config{Hosts: hosts, Policy: ClassAwarePolicy{}}); err == nil {
		t.Error("zero capacity: want error")
	}
	if _, err := New(cluster, Config{Hosts: hosts, CapacityPerHost: 2}); err == nil {
		t.Error("nil policy: want error")
	}
}

func TestSubmitPlacesAndCompletes(t *testing.T) {
	cluster, hosts := site(t, 2)
	m, err := New(cluster, Config{Hosts: hosts, CapacityPerHost: 2, Policy: ClassAwarePolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	job, class, err := StreamJob(1, 5) // PostMark, io
	if err != nil {
		t.Fatal(err)
	}
	if class != appclass.IO {
		t.Fatalf("StreamJob(1) class = %s", class)
	}
	if _, err := m.Submit(job, class); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if m.Active() != 1 {
		t.Fatalf("Active = %d", m.Active())
	}
	if _, err := m.Submit(job, class); err == nil {
		t.Error("duplicate submit: want error")
	}
	if err := cluster.RunFor(20 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if m.Active() != 0 {
		t.Fatalf("job still active after 20 min")
	}
	recs := m.Completed()
	if len(recs) != 1 {
		t.Fatalf("completed = %d", len(recs))
	}
	r := recs[0]
	if r.Turnaround < 2*time.Minute || r.Turnaround > 15*time.Minute {
		t.Errorf("turnaround = %v", r.Turnaround)
	}
	// The VM was released.
	total := 0
	for _, h := range hosts {
		total += len(h.VMs())
	}
	if total != 0 {
		t.Errorf("%d VMs still placed after completion", total)
	}
	mean, err := m.MeanTurnaround()
	if err != nil || mean != r.Turnaround {
		t.Errorf("MeanTurnaround = (%v, %v)", mean, err)
	}
}

func TestSubmitRejectsWhenFull(t *testing.T) {
	cluster, hosts := site(t, 1)
	m, err := New(cluster, Config{Hosts: hosts, CapacityPerHost: 1, Policy: NewRandomPolicy(1)})
	if err != nil {
		t.Fatal(err)
	}
	j1, c1, err := StreamJob(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(j1, c1); err != nil {
		t.Fatal(err)
	}
	j2, c2, err := StreamJob(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(j2, c2); err == nil {
		t.Error("submit beyond capacity: want error")
	}
}

func TestClassAwarePolicySpreadsClasses(t *testing.T) {
	views := []HostView{
		{Name: "a", VMs: 2, Capacity: 3, ClassCounts: map[appclass.Class]int{appclass.CPU: 2}},
		{Name: "b", VMs: 2, Capacity: 3, ClassCounts: map[appclass.Class]int{appclass.IO: 2}},
	}
	idx, err := (ClassAwarePolicy{}).Choose(views, appclass.CPU)
	if err != nil {
		t.Fatal(err)
	}
	if views[idx].Name != "b" {
		t.Errorf("CPU job placed on %s, want the host without CPU jobs", views[idx].Name)
	}
	idx, err = (ClassAwarePolicy{}).Choose(views, appclass.IO)
	if err != nil {
		t.Fatal(err)
	}
	if views[idx].Name != "a" {
		t.Errorf("IO job placed on %s, want the host without IO jobs", views[idx].Name)
	}
	if _, err := (ClassAwarePolicy{}).Choose(nil, appclass.CPU); err == nil {
		t.Error("no hosts: want error")
	}
	if _, err := NewRandomPolicy(1).Choose(nil, appclass.CPU); err == nil {
		t.Error("random with no hosts: want error")
	}
}

// TestOnlineClassAwareBeatsRandom is the online version of the paper's
// scheduling result: over a stream of arriving jobs, class-aware
// placement yields lower mean turnaround than random placement.
func TestOnlineClassAwareBeatsRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	runStream := func(policy Policy) time.Duration {
		// Uniprocessor-class hosts with modest NICs: co-locating two
		// jobs of the same class on one host contends (CPU, disk, or
		// network) while mixed pairs coexist — the paper's testbed
		// economics at pairwise scale.
		cluster := vmm.NewCluster()
		var hosts []*vmm.Host
		for i := 0; i < 3; i++ {
			h := vmm.NewHost(vmm.HostConfig{
				Name: fmt.Sprintf("host%d", i),
				CPUs: 1.2, NetInKBps: 20000, NetOutKBps: 20000,
			})
			if err := cluster.AddHost(h); err != nil {
				t.Fatal(err)
			}
			hosts = append(hosts, h)
		}
		m, err := New(cluster, Config{Hosts: hosts, CapacityPerHost: 2, Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		const jobs = 12
		submitted := 0
		// Submit one job every simulated minute; retry when full.
		for submitted < jobs {
			job, class, err := StreamJob(submitted, int64(submitted))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Submit(job, class); err == nil {
				submitted++
			}
			if err := cluster.RunFor(time.Minute); err != nil {
				t.Fatal(err)
			}
		}
		// Drain.
		for m.Active() > 0 && cluster.Now() < 6*time.Hour {
			if err := cluster.RunFor(time.Minute); err != nil {
				t.Fatal(err)
			}
		}
		if m.Active() > 0 {
			t.Fatalf("%s: %d jobs never finished", policy.Name(), m.Active())
		}
		mean, err := m.MeanTurnaround()
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: mean turnaround %v over %d jobs", policy.Name(), mean, jobs)
		return mean
	}
	aware := runStream(ClassAwarePolicy{})
	// Average several random seeds for a fair expectation.
	var randomSum time.Duration
	const trials = 3
	for s := int64(0); s < trials; s++ {
		randomSum += runStream(NewRandomPolicy(s))
	}
	random := randomSum / trials
	if aware >= random {
		t.Errorf("class-aware mean turnaround %v not better than random %v", aware, random)
	}
}
