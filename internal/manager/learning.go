package manager

import (
	"fmt"
	"time"

	"repro/internal/appclass"
	"repro/internal/core"
	"repro/internal/ganglia"
	"repro/internal/metrics"
	"repro/internal/profiler"
	"repro/internal/vmm"
)

// LearningManager is the complete system of the paper's abstract run as
// a service: applications arrive identified only by a type name; an
// application with no history is placed by load alone and profiled
// through the live monitoring stack (gmond → multicast bus →
// performance filter) while it runs; on completion its trace is
// classified and recorded in the application database, so the *next*
// arrival of the same type is placed class-aware. "Application class
// information ... learned over historical runs ... used to assist
// multi-dimensional resource scheduling."
type LearningManager struct {
	*Manager
	svc     *core.Service
	cluster *vmm.Cluster
	bus     *ganglia.Bus
	prof    *profiler.Profiler
	// tracked maps an active job name to its profiling session.
	tracked map[string]*session
	// learned counts completed classifications per application type.
	learned map[string]int
}

// session is one job's live profiling state.
type session struct {
	appType   string
	vmName    string
	agent     *ganglia.Gmond
	submitted time.Duration
}

// NewLearning wraps a manager configuration with a trained
// classification service and a live monitoring stack.
func NewLearning(cluster *vmm.Cluster, cfg Config, svc *core.Service) (*LearningManager, error) {
	if svc == nil {
		return nil, fmt.Errorf("manager: nil classification service")
	}
	m, err := New(cluster, cfg)
	if err != nil {
		return nil, err
	}
	bus := ganglia.NewBus()
	prof, err := profiler.New(bus, metrics.DefaultSchema())
	if err != nil {
		return nil, err
	}
	lm := &LearningManager{
		Manager: m,
		svc:     svc,
		cluster: cluster,
		bus:     bus,
		prof:    prof,
		tracked: make(map[string]*session),
		learned: make(map[string]int),
	}
	cluster.Observe(lm.onLearnTick)
	return lm, nil
}

// KnownClass looks up the class the database has learned for an
// application type; ok is false for unseen types.
func (lm *LearningManager) KnownClass(appType string) (appclass.Class, bool) {
	summary, err := lm.svc.DB().Summarize(appType)
	if err != nil {
		return "", false
	}
	return summary.Class, true
}

// Learned returns how many runs of the type have been classified.
func (lm *LearningManager) Learned(appType string) int { return lm.learned[appType] }

// SubmitTyped places a job of the named application type: class-aware
// when the type has history, load-balanced otherwise. The job's VM is
// monitored by a gmond agent for the whole run.
func (lm *LearningManager) SubmitTyped(job vmm.Job, appType string) (Placement, error) {
	if appType == "" {
		return Placement{}, fmt.Errorf("manager: empty application type")
	}
	class, _ := lm.KnownClass(appType) // "" = unknown
	placement, err := lm.Submit(job, class)
	if err != nil {
		return Placement{}, err
	}
	agent, err := ganglia.NewGmond(placement.VM, lm.bus, ganglia.DefaultAnnounceInterval)
	if err != nil {
		return Placement{}, err
	}
	if err := agent.Start(lm.cluster.Queue()); err != nil {
		return Placement{}, err
	}
	lm.tracked[job.Name()] = &session{
		appType:   appType,
		vmName:    placement.VM.Name(),
		agent:     agent,
		submitted: lm.cluster.Now(),
	}
	return placement, nil
}

// onLearnTick classifies and records the runs that completed this tick.
func (lm *LearningManager) onLearnTick(now time.Duration) {
	for jobName, s := range lm.tracked {
		if _, stillActive := lm.active[jobName]; stillActive {
			continue // Manager.onTick has not released it yet
		}
		s.agent.Stop()
		delete(lm.tracked, jobName)
		// The first announcement lands one interval after submission.
		t0 := s.submitted + ganglia.DefaultAnnounceInterval
		trace, _, err := lm.prof.ExtractSkipIncomplete(s.vmName, t0, now)
		if err != nil {
			// A run shorter than one announce interval yields no
			// snapshots; nothing to learn from it.
			continue
		}
		if _, err := lm.svc.ClassifyTrace(s.appType, trace, now-s.submitted); err != nil {
			continue
		}
		lm.learned[s.appType]++
	}
}
