// Package manager implements the resource manager of the paper's
// Figure 1 — the component the performance profiler "interfaces with
// ... to receive data collection instructions" and the consumer of the
// application database's class knowledge. It runs a VMPlant-style
// grid site online: job requests arrive over time, each job gets a
// dedicated VM cloned onto a physical host chosen by a placement
// policy, and finished jobs release their VMs. Two policies are
// provided: class-oblivious random placement and the paper's
// class-aware placement, which avoids co-locating jobs of the same
// class on one host.
package manager

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/appclass"
	"repro/internal/vmm"
	"repro/internal/workload"
)

// HostView is the placement-relevant state of one host.
type HostView struct {
	// Name identifies the host.
	Name string
	// VMs is the number of VMs currently placed.
	VMs int
	// Capacity is the maximum number of VMs the host accepts.
	Capacity int
	// ClassCounts counts the running jobs per class.
	ClassCounts map[appclass.Class]int
}

// Free reports the remaining VM slots.
func (h HostView) Free() int { return h.Capacity - h.VMs }

// Policy chooses a host for a new job. It returns an index into views;
// every view passed in has at least one free slot.
type Policy interface {
	// Name labels the policy in reports.
	Name() string
	// Choose picks the host for a job of the given (possibly unknown)
	// class.
	Choose(views []HostView, class appclass.Class) (int, error)
}

// RandomPolicy places jobs uniformly at random — the class-oblivious
// baseline of Section 5.2.
type RandomPolicy struct {
	rng *rand.Rand
}

// NewRandomPolicy creates a seeded random policy.
func NewRandomPolicy(seed int64) *RandomPolicy {
	return &RandomPolicy{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Policy.
func (p *RandomPolicy) Name() string { return "random" }

// Choose implements Policy.
func (p *RandomPolicy) Choose(views []HostView, _ appclass.Class) (int, error) {
	if len(views) == 0 {
		return 0, fmt.Errorf("manager: no hosts with capacity")
	}
	return p.rng.Intn(len(views)), nil
}

// ClassAwarePolicy places each job on the host running the fewest jobs
// of the same class (ties broken by load, then by name), using the
// class knowledge the application classifier learned over historical
// runs.
type ClassAwarePolicy struct{}

// Name implements Policy.
func (ClassAwarePolicy) Name() string { return "class-aware" }

// Choose implements Policy.
func (ClassAwarePolicy) Choose(views []HostView, class appclass.Class) (int, error) {
	if len(views) == 0 {
		return 0, fmt.Errorf("manager: no hosts with capacity")
	}
	best := 0
	for i := 1; i < len(views); i++ {
		a, b := views[i], views[best]
		sameA, sameB := a.ClassCounts[class], b.ClassCounts[class]
		switch {
		case sameA != sameB:
			if sameA < sameB {
				best = i
			}
		case a.VMs != b.VMs:
			if a.VMs < b.VMs {
				best = i
			}
		case a.Name < b.Name:
			best = i
		}
	}
	return best, nil
}

// JobRecord is the outcome of one managed job.
type JobRecord struct {
	Job        string
	Class      appclass.Class
	Host       string
	Submitted  time.Duration
	Completed  time.Duration
	Turnaround time.Duration
}

// activeJob tracks a running job's placement.
type activeJob struct {
	job       vmm.Job
	class     appclass.Class
	host      *vmm.Host
	vmName    string
	submitted time.Duration
}

// Manager runs the grid site.
type Manager struct {
	cluster   *vmm.Cluster
	hosts     []*vmm.Host
	capacity  int
	policy    Policy
	vmMemKB   float64
	seq       int
	active    map[string]*activeJob
	completed []JobRecord
}

// Config configures a Manager.
type Config struct {
	// Hosts is the physical host pool (owned by Cluster).
	Hosts []*vmm.Host
	// CapacityPerHost bounds the VMs per host.
	CapacityPerHost int
	// Policy chooses placements.
	Policy Policy
	// VMMemKB sizes each cloned VM (default 256 MB).
	VMMemKB float64
}

// New creates a manager over an existing cluster whose hosts are given
// in cfg.
func New(cluster *vmm.Cluster, cfg Config) (*Manager, error) {
	if cluster == nil {
		return nil, fmt.Errorf("manager: nil cluster")
	}
	if len(cfg.Hosts) == 0 {
		return nil, fmt.Errorf("manager: no hosts")
	}
	if cfg.CapacityPerHost <= 0 {
		return nil, fmt.Errorf("manager: capacity must be positive, got %d", cfg.CapacityPerHost)
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("manager: nil policy")
	}
	if cfg.VMMemKB == 0 {
		cfg.VMMemKB = 256 * 1024
	}
	m := &Manager{
		cluster:  cluster,
		hosts:    cfg.Hosts,
		capacity: cfg.CapacityPerHost,
		policy:   cfg.Policy,
		vmMemKB:  cfg.VMMemKB,
		active:   make(map[string]*activeJob),
	}
	cluster.Observe(m.onTick)
	return m, nil
}

// views builds the placement state of hosts with free capacity.
func (m *Manager) views() ([]HostView, []*vmm.Host) {
	var views []HostView
	var hosts []*vmm.Host
	for _, h := range m.hosts {
		if len(h.VMs()) >= m.capacity {
			continue
		}
		v := HostView{
			Name:        h.Name(),
			VMs:         len(h.VMs()),
			Capacity:    m.capacity,
			ClassCounts: make(map[appclass.Class]int),
		}
		for _, a := range m.active {
			if a.host == h {
				v.ClassCounts[a.class]++
			}
		}
		views = append(views, v)
		hosts = append(hosts, h)
	}
	return views, hosts
}

// Placement describes where a submitted job landed.
type Placement struct {
	// VM is the dedicated VM cloned for the job.
	VM *vmm.VM
	// Host is the physical host the VM was placed on.
	Host string
}

// Submit places a job with its (classifier-learned) class on a host
// chosen by the policy, cloning a dedicated VM for it. An empty class
// means "unknown" (the application has no history yet); the class-aware
// policy then balances by load only. Submit fails when no host has
// capacity.
func (m *Manager) Submit(job vmm.Job, class appclass.Class) (Placement, error) {
	if job == nil {
		return Placement{}, fmt.Errorf("manager: nil job")
	}
	if _, dup := m.active[job.Name()]; dup {
		return Placement{}, fmt.Errorf("manager: job %q already active", job.Name())
	}
	views, hosts := m.views()
	if len(views) == 0 {
		return Placement{}, fmt.Errorf("manager: no hosts with free capacity for %q", job.Name())
	}
	idx, err := m.policy.Choose(views, class)
	if err != nil {
		return Placement{}, err
	}
	if idx < 0 || idx >= len(hosts) {
		return Placement{}, fmt.Errorf("manager: policy chose host %d of %d", idx, len(hosts))
	}
	host := hosts[idx]
	m.seq++
	vmName := fmt.Sprintf("mgr-vm-%d", m.seq)
	vm := vmm.NewVM(vmm.VMConfig{Name: vmName, MemKB: m.vmMemKB, VCPUs: 1, Seed: int64(m.seq)})
	vm.AddJob(job)
	if err := host.AddVM(vm); err != nil {
		return Placement{}, fmt.Errorf("manager: place %q: %w", job.Name(), err)
	}
	m.active[job.Name()] = &activeJob{
		job: job, class: class, host: host, vmName: vmName,
		submitted: m.cluster.Now(),
	}
	return Placement{VM: vm, Host: host.Name()}, nil
}

// onTick releases the VMs of finished jobs and records their outcomes.
func (m *Manager) onTick(now time.Duration) {
	for name, a := range m.active {
		if !a.job.Done() {
			continue
		}
		if err := a.host.RemoveVM(a.vmName); err == nil {
			m.completed = append(m.completed, JobRecord{
				Job: name, Class: a.class, Host: a.host.Name(),
				Submitted: a.submitted, Completed: now,
				Turnaround: now - a.submitted,
			})
			delete(m.active, name)
		}
	}
}

// Active returns the number of running jobs.
func (m *Manager) Active() int { return len(m.active) }

// Completed returns the finished jobs, oldest first.
func (m *Manager) Completed() []JobRecord {
	out := append([]JobRecord(nil), m.completed...)
	sort.Slice(out, func(i, j int) bool { return out[i].Completed < out[j].Completed })
	return out
}

// MeanTurnaround averages the completed jobs' turnaround times.
func (m *Manager) MeanTurnaround() (time.Duration, error) {
	if len(m.completed) == 0 {
		return 0, fmt.Errorf("manager: no completed jobs")
	}
	var sum time.Duration
	for _, r := range m.completed {
		sum += r.Turnaround
	}
	return sum / time.Duration(len(m.completed)), nil
}

// Workload helpers for the online experiment.

// StreamJob builds the i-th job of a repeating S, P, N arrival pattern,
// returning the job and the class the application database would report
// for it.
func StreamJob(i int, seed int64) (vmm.Job, appclass.Class, error) {
	name := fmt.Sprintf("job-%d", i)
	switch i % 3 {
	case 0:
		j, err := workload.NewSPECseis(workload.SPECseisSmall, workload.Config{Name: name, Seed: seed})
		return j, appclass.CPU, err
	case 1:
		j, err := workload.NewPostMark(workload.PostMarkLocal, 0, workload.Config{Name: name, Seed: seed})
		return j, appclass.IO, err
	default:
		j, err := workload.NewNetPIPE(0, workload.Config{Name: name, Seed: seed})
		return j, appclass.Net, err
	}
}
