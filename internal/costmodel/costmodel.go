// Package costmodel implements the paper's cost-based scheduling model
// (Section 4.4): the unit application execution time cost is the
// weighted average of per-resource unit costs, weighted by the
// application's class composition —
//
//	UnitApplicationCost = α·cpu% + β·mem% + γ·io% + δ·net% + ε·idle%
//
// where α…ε are prices the resource provider sets and the percentages
// are the classifier's composition output.
package costmodel

import (
	"fmt"
	"time"

	"repro/internal/appclass"
)

// Rates are the per-class unit costs set by a resource provider, in
// price units per unit of execution time.
type Rates struct {
	CPU  float64 // α: CPU capacity price
	Mem  float64 // β: memory capacity price
	IO   float64 // γ: I/O capacity price
	Net  float64 // δ: network capacity price
	Idle float64 // ε: held-but-idle capacity price
}

// Validate rejects negative prices.
func (r Rates) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"cpu", r.CPU}, {"mem", r.Mem}, {"io", r.IO}, {"net", r.Net}, {"idle", r.Idle},
	} {
		if p.v < 0 {
			return fmt.Errorf("costmodel: negative %s rate %v", p.name, p.v)
		}
	}
	return nil
}

// Rate returns the price for a class (zero for unknown classes).
func (r Rates) Rate(c appclass.Class) float64 { return r.rate(c) }

// rate returns the price for a class.
func (r Rates) rate(c appclass.Class) float64 {
	switch c {
	case appclass.CPU:
		return r.CPU
	case appclass.Mem:
		return r.Mem
	case appclass.IO:
		return r.IO
	case appclass.Net:
		return r.Net
	case appclass.Idle:
		return r.Idle
	default:
		return 0
	}
}

// UnitCost computes the unit application cost of a class composition.
// Composition fractions must be in [0,1] and sum to at most ~1 (a
// composition summing to less is allowed: unobserved classes price at
// zero).
func UnitCost(composition map[appclass.Class]float64, rates Rates) (float64, error) {
	if err := rates.Validate(); err != nil {
		return 0, err
	}
	var total, fracSum float64
	for c, f := range composition {
		if !appclass.Valid(c) {
			return 0, fmt.Errorf("costmodel: invalid class %q in composition", c)
		}
		if f < 0 || f > 1 {
			return 0, fmt.Errorf("costmodel: composition fraction %v for %s outside [0,1]", f, c)
		}
		total += f * rates.rate(c)
		fracSum += f
	}
	if fracSum > 1.01 {
		return 0, fmt.Errorf("costmodel: composition sums to %v > 1", fracSum)
	}
	return total, nil
}

// RunCost prices a whole run: unit cost times execution time in hours.
func RunCost(composition map[appclass.Class]float64, execution time.Duration, rates Rates) (float64, error) {
	if execution < 0 {
		return 0, fmt.Errorf("costmodel: negative execution time %v", execution)
	}
	unit, err := UnitCost(composition, rates)
	if err != nil {
		return 0, err
	}
	return unit * execution.Hours(), nil
}

// Quote describes a priced run, for reports.
type Quote struct {
	App       string
	UnitCost  float64
	RunCost   float64
	Execution time.Duration
}

// QuoteRun builds a Quote for an application run.
func QuoteRun(app string, composition map[appclass.Class]float64, execution time.Duration, rates Rates) (Quote, error) {
	unit, err := UnitCost(composition, rates)
	if err != nil {
		return Quote{}, err
	}
	total, err := RunCost(composition, execution, rates)
	if err != nil {
		return Quote{}, err
	}
	return Quote{App: app, UnitCost: unit, RunCost: total, Execution: execution}, nil
}
