package costmodel

import (
	"math"
	"testing"
	"time"

	"repro/internal/appclass"
)

var testRates = Rates{CPU: 10, Mem: 8, IO: 6, Net: 4, Idle: 1}

func TestUnitCostPureClasses(t *testing.T) {
	cases := []struct {
		class appclass.Class
		want  float64
	}{
		{appclass.CPU, 10}, {appclass.Mem, 8}, {appclass.IO, 6},
		{appclass.Net, 4}, {appclass.Idle, 1},
	}
	for _, c := range cases {
		got, err := UnitCost(map[appclass.Class]float64{c.class: 1}, testRates)
		if err != nil {
			t.Fatalf("UnitCost(%s): %v", c.class, err)
		}
		if got != c.want {
			t.Errorf("UnitCost(%s) = %v, want %v", c.class, got, c.want)
		}
	}
}

func TestUnitCostWeightedAverage(t *testing.T) {
	comp := map[appclass.Class]float64{
		appclass.CPU: 0.5, appclass.IO: 0.3, appclass.Idle: 0.2,
	}
	got, err := UnitCost(comp, testRates)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*10 + 0.3*6 + 0.2*1
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("UnitCost = %v, want %v", got, want)
	}
}

func TestUnitCostValidation(t *testing.T) {
	if _, err := UnitCost(map[appclass.Class]float64{"weird": 1}, testRates); err == nil {
		t.Error("invalid class: want error")
	}
	if _, err := UnitCost(map[appclass.Class]float64{appclass.CPU: 1.5}, testRates); err == nil {
		t.Error("fraction > 1: want error")
	}
	if _, err := UnitCost(map[appclass.Class]float64{appclass.CPU: -0.1}, testRates); err == nil {
		t.Error("negative fraction: want error")
	}
	if _, err := UnitCost(map[appclass.Class]float64{appclass.CPU: 0.8, appclass.IO: 0.8}, testRates); err == nil {
		t.Error("overfull composition: want error")
	}
	if _, err := UnitCost(nil, Rates{CPU: -1}); err == nil {
		t.Error("negative rate: want error")
	}
}

func TestUnitCostEmptyComposition(t *testing.T) {
	got, err := UnitCost(nil, testRates)
	if err != nil || got != 0 {
		t.Errorf("UnitCost(nil) = (%v,%v), want (0,nil)", got, err)
	}
}

func TestRunCost(t *testing.T) {
	comp := map[appclass.Class]float64{appclass.CPU: 1}
	got, err := RunCost(comp, 30*time.Minute, testRates)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-5) > 1e-12 { // 10/hour * 0.5h
		t.Errorf("RunCost = %v, want 5", got)
	}
	if _, err := RunCost(comp, -time.Second, testRates); err == nil {
		t.Error("negative execution: want error")
	}
}

func TestQuoteRun(t *testing.T) {
	comp := map[appclass.Class]float64{appclass.Net: 1}
	q, err := QuoteRun("Sftp", comp, time.Hour, testRates)
	if err != nil {
		t.Fatal(err)
	}
	if q.App != "Sftp" || q.UnitCost != 4 || math.Abs(q.RunCost-4) > 1e-12 {
		t.Errorf("Quote = %+v", q)
	}
	if _, err := QuoteRun("x", map[appclass.Class]float64{"bad": 1}, time.Hour, testRates); err == nil {
		t.Error("invalid composition: want error")
	}
}
