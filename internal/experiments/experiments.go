// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) from the simulated testbed: Table 2 (the
// training/testing application registry), Figure 3 (PCA clustering
// diagrams), Table 3 (class compositions), Figure 4 (system throughput
// of the ten schedules), Figure 5 (per-application throughput), Table 4
// (concurrent vs sequential execution), and the Section 5.3
// classification cost. Each experiment returns structured rows plus a
// text rendering.
package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/appclass"
	"repro/internal/core"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// DefaultSeed makes all experiment runs reproducible.
const DefaultSeed = 2006 // the paper's publication year

// NewTrainedService trains the classifier exactly as the evaluation
// does. Shared by several experiments.
func NewTrainedService(seed int64) (*core.Service, error) {
	return core.NewService(core.Options{Seed: seed})
}

// Table2Row is one application of the paper's Table 2.
type Table2Row struct {
	Name        string
	Description string
	Expected    appclass.Class
	Training    bool
}

// Table2 lists the training and testing applications.
func Table2() []Table2Row {
	var rows []Table2Row
	for _, e := range append(workload.TrainingSet(), workload.TestSet()...) {
		rows = append(rows, Table2Row{
			Name:        e.Name,
			Description: e.Description,
			Expected:    e.Expected,
			Training:    e.Training,
		})
	}
	return rows
}

// RenderTable2 writes Table 2 as text.
func RenderTable2(w io.Writer, rows []Table2Row) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Application\tExpected\tRole\tDescription")
	for _, r := range rows {
		role := "test"
		if r.Training {
			role = "train"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", r.Name, r.Expected.Display(), role, r.Description)
	}
	return tw.Flush()
}

// Table3Row is one application's class composition (a row of Table 3).
type Table3Row struct {
	App         string
	Samples     int
	Composition map[appclass.Class]float64
	Class       appclass.Class
	// PaperDominant is the class the paper reports as dominant, for the
	// reproduction check.
	PaperDominant appclass.Class
}

// paperDominant maps each Table 3 row to the paper's dominant class.
var paperDominant = map[string]appclass.Class{
	"SPECseis96_A": appclass.CPU,
	"SPECseis96_C": appclass.CPU,
	"CH3D":         appclass.CPU,
	"SimpleScalar": appclass.CPU,
	"PostMark":     appclass.IO,
	"Bonnie":       appclass.IO,
	"SPECseis96_B": appclass.CPU,
	"Stream":       appclass.IO,
	"PostMark_NFS": appclass.Net,
	"NetPIPE":      appclass.Net,
	"Autobench":    appclass.Net,
	"Sftp":         appclass.Net,
	"VMD":          appclass.IO,
	"XSpim":        appclass.IO,
}

// Table3 profiles and classifies every test application.
func Table3(svc *core.Service, seed int64) ([]Table3Row, error) {
	var rows []Table3Row
	for _, e := range workload.TestSet() {
		report, err := svc.ProfileAndClassify(e, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: table 3 row %s: %w", e.Name, err)
		}
		rows = append(rows, Table3Row{
			App:           e.Name,
			Samples:       report.Samples,
			Composition:   report.Result.Composition,
			Class:         report.Result.Class,
			PaperDominant: paperDominant[e.Name],
		})
	}
	return rows, nil
}

// RenderTable3 writes Table 3 as text with the paper's column order.
func RenderTable3(w io.Writer, rows []Table3Row) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Test Application\t# Samples\tIdle\tI/O\tCPU\tNetwork\tPaging\tClass\tPaper")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d", r.App, r.Samples)
		for _, c := range appclass.All() {
			f := r.Composition[c]
			if f == 0 {
				fmt.Fprint(tw, "\t-")
			} else {
				fmt.Fprintf(tw, "\t%.2f%%", 100*f)
			}
		}
		match := ""
		if r.Class != r.PaperDominant {
			match = " (!)"
		}
		fmt.Fprintf(tw, "\t%s\t%s%s\n", r.Class.Display(), r.PaperDominant.Display(), match)
	}
	return tw.Flush()
}

// Figure3Point is one snapshot in the 2-D principal-component space.
type Figure3Point struct {
	PC1, PC2 float64
	Class    appclass.Class
}

// Figure3Diagram is one panel of Figure 3.
type Figure3Diagram struct {
	Title  string
	Points []Figure3Point
}

// Figure3 produces the four clustering diagrams: (a) the training data,
// (b) SimpleScalar, (c) Autobench, (d) VMD.
func Figure3(svc *core.Service, seed int64) ([]Figure3Diagram, error) {
	var diagrams []Figure3Diagram

	pts, labels := svc.Classifier().TrainingPoints()
	train := Figure3Diagram{Title: "(a) Training data"}
	for i := 0; i < pts.Rows(); i++ {
		train.Points = append(train.Points, Figure3Point{
			PC1: pts.At(i, 0), PC2: pts.At(i, 1), Class: labels[i],
		})
	}
	diagrams = append(diagrams, train)

	for _, panel := range []struct {
		title string
		app   string
	}{
		{"(b) SimpleScalar", "SimpleScalar"},
		{"(c) Autobench", "Autobench"},
		{"(d) VMD", "VMD"},
	} {
		e, err := workload.Find(panel.app)
		if err != nil {
			return nil, err
		}
		res, err := testbed.ProfileEntry(e, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 3 %s: %w", panel.app, err)
		}
		out, err := svc.Classifier().ClassifyTrace(res.Trace)
		if err != nil {
			return nil, err
		}
		d := Figure3Diagram{Title: panel.title}
		for i := 0; i < out.Points.Rows(); i++ {
			d.Points = append(d.Points, Figure3Point{
				PC1: out.Points.At(i, 0), PC2: out.Points.At(i, 1), Class: out.Snapshots[i],
			})
		}
		diagrams = append(diagrams, d)
	}
	return diagrams, nil
}

// RenderFigure3 summarizes each diagram as per-class centroids and
// counts (a text stand-in for the scatter plots).
func RenderFigure3(w io.Writer, diagrams []Figure3Diagram) error {
	for _, d := range diagrams {
		fmt.Fprintf(w, "%s (%d snapshots)\n", d.Title, len(d.Points))
		type agg struct {
			n        int
			pc1, pc2 float64
		}
		byClass := map[appclass.Class]*agg{}
		for _, p := range d.Points {
			a := byClass[p.Class]
			if a == nil {
				a = &agg{}
				byClass[p.Class] = a
			}
			a.n++
			a.pc1 += p.PC1
			a.pc2 += p.PC2
		}
		tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  Class\tSnapshots\tCentroid PC1\tCentroid PC2")
		for _, c := range appclass.All() {
			a := byClass[c]
			if a == nil {
				continue
			}
			fmt.Fprintf(tw, "  %s\t%d\t%.2f\t%.2f\n",
				c.Display(), a.n, a.pc1/float64(a.n), a.pc2/float64(a.n))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// WriteFigure3CSV dumps one diagram's raw points for external plotting.
func WriteFigure3CSV(w io.Writer, d Figure3Diagram) error {
	if _, err := fmt.Fprintln(w, "pc1,pc2,class"); err != nil {
		return err
	}
	for _, p := range d.Points {
		if _, err := fmt.Fprintf(w, "%g,%g,%s\n", p.PC1, p.PC2, p.Class); err != nil {
			return err
		}
	}
	return nil
}
