package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/sched"
)

// Figure4Result is the full Figure 4 experiment: system throughput of
// every schedule plus the class-oblivious baseline.
type Figure4Result struct {
	// Results holds one entry per schedule, in Enumerate order.
	Results []*sched.Result
	// WeightedAverage is the expected system throughput of a random
	// class-oblivious scheduler.
	WeightedAverage float64
	// CPULoadOnly is the expected system throughput of a scheduler that
	// knows only each job's CPU demand — the baseline the paper argues
	// class knowledge improves on.
	CPULoadOnly float64
	// SPN is the class-aware schedule's result.
	SPN *sched.Result
	// MarginOverAverage is SPN's relative throughput gain over the
	// weighted average (the paper measured +22.11%).
	MarginOverAverage float64
}

// Figure4 runs all ten schedules.
func Figure4(seed int64) (*Figure4Result, error) {
	results, weighted, err := sched.RunAll(sched.Config{Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: figure 4: %w", err)
	}
	out := &Figure4Result{Results: results, WeightedAverage: weighted}
	spn := sched.SPN()
	for _, r := range results {
		if r.Schedule == spn {
			out.SPN = r
		}
	}
	if out.SPN == nil {
		return nil, fmt.Errorf("experiments: figure 4 results missing SPN")
	}
	out.MarginOverAverage = out.SPN.SystemThroughput/weighted - 1
	cpuOnly, err := sched.CPULoadOnlyExpectation(results)
	if err != nil {
		return nil, err
	}
	out.CPULoadOnly = cpuOnly
	return out, nil
}

// RenderFigure4 writes the schedule-throughput table.
func RenderFigure4(w io.Writer, f *Figure4Result) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "#\tSchedule\tSystem throughput (jobs/day)")
	for i, r := range f.Results {
		marker := ""
		if r == f.SPN {
			marker = "  <- class-aware choice"
		}
		fmt.Fprintf(tw, "%d\t%s\t%.0f%s\n", i+1, r.Schedule, r.SystemThroughput, marker)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "weighted average (random scheduler):      %.0f jobs/day\n", f.WeightedAverage)
	fmt.Fprintf(w, "CPU-load-only scheduler expectation:      %.0f jobs/day\n", f.CPULoadOnly)
	fmt.Fprintf(w, "class-aware (SPN) margin over random:     %+.2f%% (paper: +22.11%%)\n", 100*f.MarginOverAverage)
	fmt.Fprintf(w, "class-aware (SPN) margin over CPU-only:   %+.2f%%\n", 100*(f.SPN.SystemThroughput/f.CPULoadOnly-1))
	return nil
}

// Figure5Result is the per-application throughput comparison.
type Figure5Result struct {
	Stats map[sched.Kind]sched.KindStats
}

// Figure5 derives the per-application series from Figure 4's runs.
func Figure5(f *Figure4Result) (*Figure5Result, error) {
	stats, err := sched.AppThroughputStats(f.Results)
	if err != nil {
		return nil, fmt.Errorf("experiments: figure 5: %w", err)
	}
	return &Figure5Result{Stats: stats}, nil
}

// RenderFigure5 writes the MIN/MAX/AVG/SPN table.
func RenderFigure5(w io.Writer, f *Figure5Result) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Application\tMIN\tAVG\tMAX\tSPN\tSPN vs AVG")
	names := map[sched.Kind]string{
		sched.KindS: "SPECseis96 (S)",
		sched.KindP: "PostMark (P)",
		sched.KindN: "NetPIPE (N)",
	}
	for _, k := range sched.Kinds() {
		st := f.Stats[k]
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f\t%.0f\t%+.2f%%\n",
			names[k], st.Min, st.Avg, st.Max, st.SPN, 100*(st.SPN/st.Avg-1))
	}
	return tw.Flush()
}

// Table4 runs the concurrent-vs-sequential experiment.
func Table4(seed int64) (*sched.Table4Result, error) {
	res, err := sched.ConcurrentVsSequential(seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: table 4: %w", err)
	}
	return res, nil
}

// RenderTable4 writes the Table 4 comparison.
func RenderTable4(w io.Writer, r *sched.Table4Result) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Execution\tCH3D\tPostMark\tTime to finish both")
	fmt.Fprintf(tw, "Concurrent\t%.0f s\t%.0f s\t%.0f s\n",
		r.ConcurrentCH3D.Seconds(), r.ConcurrentPostMark.Seconds(), r.ConcurrentMakespan.Seconds())
	fmt.Fprintf(tw, "Sequential\t%.0f s\t%.0f s\t%.0f s\n",
		r.SequentialCH3D.Seconds(), r.SequentialPostMark.Seconds(), r.SequentialTotal.Seconds())
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "concurrent sharing finishes both %.1f%% sooner (paper: 613 s vs 752 s)\n", 100*r.Speedup())
	return nil
}
