package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/appclass"
)

// classGlyphs assigns one plot character per class, mirroring the
// paper's per-class markers.
var classGlyphs = map[appclass.Class]byte{
	appclass.Idle: '.',
	appclass.IO:   'o',
	appclass.CPU:  '+',
	appclass.Net:  'x',
	appclass.Mem:  '#',
}

// RenderFigure3Scatter draws one clustering diagram as an ASCII scatter
// plot (the paper's Figure 3 panels are PC1/PC2 scatter plots). Cells
// holding several classes show the most frequent one.
func RenderFigure3Scatter(w io.Writer, d Figure3Diagram, width, height int) error {
	if width < 16 || height < 8 {
		return fmt.Errorf("experiments: scatter needs at least 16x8, got %dx%d", width, height)
	}
	if len(d.Points) == 0 {
		return fmt.Errorf("experiments: diagram %q has no points", d.Title)
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range d.Points {
		minX, maxX = math.Min(minX, p.PC1), math.Max(maxX, p.PC1)
		minY, maxY = math.Min(minY, p.PC2), math.Max(maxY, p.PC2)
	}
	// Degenerate extents still render: give them a unit span.
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	// counts[row][col][class] votes for the cell's glyph.
	type cell map[appclass.Class]int
	grid := make([][]cell, height)
	for r := range grid {
		grid[r] = make([]cell, width)
	}
	for _, p := range d.Points {
		col := int(float64(width-1) * (p.PC1 - minX) / (maxX - minX))
		row := int(float64(height-1) * (p.PC2 - minY) / (maxY - minY))
		row = height - 1 - row // PC2 grows upward
		if grid[row][col] == nil {
			grid[row][col] = cell{}
		}
		grid[row][col][p.Class]++
	}

	fmt.Fprintf(w, "%s — PC1 in [%.2f, %.2f], PC2 in [%.2f, %.2f]\n",
		d.Title, minX, maxX, minY, maxY)
	for r := 0; r < height; r++ {
		line := make([]byte, width)
		for c := 0; c < width; c++ {
			line[c] = ' '
			if grid[r][c] == nil {
				continue
			}
			var best appclass.Class
			bestN := 0
			for _, cl := range appclass.All() {
				if n := grid[r][c][cl]; n > bestN {
					best, bestN = cl, n
				}
			}
			line[c] = classGlyphs[best]
		}
		fmt.Fprintf(w, "|%s|\n", line)
	}
	fmt.Fprint(w, "legend:")
	for _, cl := range appclass.All() {
		fmt.Fprintf(w, " %c=%s", classGlyphs[cl], cl.Display())
	}
	fmt.Fprintln(w)
	return nil
}
