package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/manager"
	"repro/internal/vmm"
)

// OnlineResult compares placement policies on a live job stream — the
// online counterpart of Figure 4: jobs arrive over time, each gets a
// dedicated VM placed by the policy, finished jobs free their hosts.
type OnlineResult struct {
	// Jobs is the number of jobs in the stream.
	Jobs int
	// ClassAware is the mean turnaround under class-aware placement.
	ClassAware time.Duration
	// Random is the mean turnaround under random placement, averaged
	// over RandomTrials seeds.
	Random time.Duration
	// RandomTrials is the number of random-seed runs averaged.
	RandomTrials int
	// Improvement is the relative turnaround reduction of class-aware
	// over random.
	Improvement float64
}

// onlineStream runs one policy over the standard S/P/N arrival stream
// on a three-host site whose hosts contend pairwise on every resource
// class.
func onlineStream(policy manager.Policy, jobs int) (time.Duration, error) {
	cluster := vmm.NewCluster()
	var hosts []*vmm.Host
	for i := 0; i < 3; i++ {
		h := vmm.NewHost(vmm.HostConfig{
			Name: fmt.Sprintf("host%d", i),
			CPUs: 1.2, NetInKBps: 20000, NetOutKBps: 20000,
		})
		if err := cluster.AddHost(h); err != nil {
			return 0, err
		}
		hosts = append(hosts, h)
	}
	m, err := manager.New(cluster, manager.Config{
		Hosts: hosts, CapacityPerHost: 2, Policy: policy,
	})
	if err != nil {
		return 0, err
	}
	submitted := 0
	for submitted < jobs {
		job, class, err := manager.StreamJob(submitted, int64(submitted))
		if err != nil {
			return 0, err
		}
		if _, err := m.Submit(job, class); err == nil {
			submitted++
		}
		if err := cluster.RunFor(time.Minute); err != nil {
			return 0, err
		}
	}
	for m.Active() > 0 && cluster.Now() < 12*time.Hour {
		if err := cluster.RunFor(time.Minute); err != nil {
			return 0, err
		}
	}
	if m.Active() > 0 {
		return 0, fmt.Errorf("experiments: %d jobs never finished under %s", m.Active(), policy.Name())
	}
	return m.MeanTurnaround()
}

// OnlineScheduling runs the online policy comparison.
func OnlineScheduling(jobs, randomTrials int) (*OnlineResult, error) {
	if jobs <= 0 {
		jobs = 12
	}
	if randomTrials <= 0 {
		randomTrials = 3
	}
	aware, err := onlineStream(manager.ClassAwarePolicy{}, jobs)
	if err != nil {
		return nil, err
	}
	var randomSum time.Duration
	for s := 0; s < randomTrials; s++ {
		r, err := onlineStream(manager.NewRandomPolicy(int64(s)), jobs)
		if err != nil {
			return nil, err
		}
		randomSum += r
	}
	random := randomSum / time.Duration(randomTrials)
	return &OnlineResult{
		Jobs:         jobs,
		ClassAware:   aware,
		Random:       random,
		RandomTrials: randomTrials,
		Improvement:  1 - aware.Seconds()/random.Seconds(),
	}, nil
}

// RenderOnline writes the policy comparison.
func RenderOnline(w io.Writer, r *OnlineResult) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Policy\tMean turnaround")
	fmt.Fprintf(tw, "class-aware\t%v\n", r.ClassAware.Round(time.Second))
	fmt.Fprintf(tw, "random (avg of %d seeds)\t%v\n", r.RandomTrials, r.Random.Round(time.Second))
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "class-aware placement reduces mean turnaround by %.1f%% over %d arriving jobs\n",
		100*r.Improvement, r.Jobs)
	return nil
}
