package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/appclass"
	"repro/internal/core"
	"repro/internal/manager"
	"repro/internal/vmm"
	"repro/internal/workload"
)

// LearningResult is the learning-over-historical-runs experiment: the
// paper's abstract run as a service. A first wave of applications
// arrives with no history and is placed blind while the live monitoring
// stack profiles them; a second wave of the same applications is placed
// with the classes learned from the first.
type LearningResult struct {
	// Wave1 is the blind wave's mean turnaround.
	Wave1 time.Duration
	// Wave2 is the learned wave's mean turnaround.
	Wave2 time.Duration
	// Improvement is the relative turnaround reduction from learning.
	Improvement float64
	// LearnedClasses maps each application type to its learned class.
	LearnedClasses map[string]appclass.Class
}

// learningTypes are the application types of the experiment stream.
var learningTypes = []string{"seis", "postmark", "netpipe"}

func buildLearningJob(typ string, instance int) (vmm.Job, error) {
	name := fmt.Sprintf("%s-%d", typ, instance)
	seed := int64(instance)
	switch typ {
	case "seis":
		return workload.NewSPECseis(workload.SPECseisSmall, workload.Config{Name: name, Seed: seed})
	case "postmark":
		return workload.NewPostMark(workload.PostMarkLocal, 0, workload.Config{Name: name, Seed: seed})
	case "netpipe":
		return workload.NewNetPIPE(0, workload.Config{Name: name, Seed: seed})
	default:
		return nil, fmt.Errorf("experiments: unknown learning type %q", typ)
	}
}

// LearningWaves runs the two-wave experiment.
func LearningWaves(seed int64) (*LearningResult, error) {
	svc, err := core.NewService(core.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	cluster := vmm.NewCluster()
	var hosts []*vmm.Host
	for i := 0; i < 3; i++ {
		h := vmm.NewHost(vmm.HostConfig{
			Name: fmt.Sprintf("host%d", i),
			CPUs: 1.2, NetInKBps: 20000, NetOutKBps: 20000,
		})
		if err := cluster.AddHost(h); err != nil {
			return nil, err
		}
		hosts = append(hosts, h)
	}
	lm, err := manager.NewLearning(cluster, manager.Config{
		Hosts: hosts, CapacityPerHost: 2, Policy: manager.ClassAwarePolicy{},
	}, svc)
	if err != nil {
		return nil, err
	}

	runWave := func(wave int) (time.Duration, error) {
		start := len(lm.Completed())
		submitted := 0
		for submitted < 6 {
			typ := learningTypes[submitted%len(learningTypes)]
			job, err := buildLearningJob(typ, wave*10+submitted)
			if err != nil {
				return 0, err
			}
			if _, err := lm.SubmitTyped(job, typ); err == nil {
				submitted++
			}
			if err := cluster.RunFor(time.Minute); err != nil {
				return 0, err
			}
		}
		for lm.Active() > 0 && cluster.Now() < 24*time.Hour {
			if err := cluster.RunFor(time.Minute); err != nil {
				return 0, err
			}
		}
		if lm.Active() > 0 {
			return 0, fmt.Errorf("experiments: wave %d jobs never finished", wave)
		}
		recs := lm.Completed()[start:]
		var sum time.Duration
		for _, r := range recs {
			sum += r.Turnaround
		}
		return sum / time.Duration(len(recs)), nil
	}

	wave1, err := runWave(1)
	if err != nil {
		return nil, err
	}
	wave2, err := runWave(2)
	if err != nil {
		return nil, err
	}
	learned := make(map[string]appclass.Class, len(learningTypes))
	for _, typ := range learningTypes {
		c, ok := lm.KnownClass(typ)
		if !ok {
			return nil, fmt.Errorf("experiments: type %s never learned", typ)
		}
		learned[typ] = c
	}
	return &LearningResult{
		Wave1:          wave1,
		Wave2:          wave2,
		Improvement:    1 - wave2.Seconds()/wave1.Seconds(),
		LearnedClasses: learned,
	}, nil
}

// RenderLearning writes the two-wave comparison.
func RenderLearning(w io.Writer, r *LearningResult) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Wave\tClass knowledge\tMean turnaround")
	fmt.Fprintf(tw, "1\tnone (profiled while running)\t%v\n", r.Wave1.Round(time.Second))
	fmt.Fprintf(tw, "2\tlearned from wave 1\t%v\n", r.Wave2.Round(time.Second))
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "learning improved mean turnaround by %.1f%% (paper's headline: 22.11%%)\n", 100*r.Improvement)
	fmt.Fprint(w, "learned classes:")
	for _, typ := range learningTypes {
		fmt.Fprintf(w, " %s=%s", typ, r.LearnedClasses[typ])
	}
	fmt.Fprintln(w)
	return nil
}
