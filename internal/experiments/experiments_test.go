package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/appclass"
	"repro/internal/sched"
)

func TestTable2HasAllApplications(t *testing.T) {
	rows := Table2()
	if len(rows) != 19 {
		t.Fatalf("Table 2 has %d rows, want 19 (5 training + 14 testing)", len(rows))
	}
	var training int
	for _, r := range rows {
		if r.Training {
			training++
		}
		if r.Name == "" || r.Description == "" {
			t.Errorf("incomplete row %+v", r)
		}
	}
	if training != 5 {
		t.Errorf("training rows = %d, want 5", training)
	}
	var buf bytes.Buffer
	if err := RenderTable2(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "PostMark") {
		t.Error("rendered Table 2 missing PostMark")
	}
}

func TestTable3ReproducesDominantClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	svc, err := NewTrainedService(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Table3(svc, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("Table 3 has %d rows, want 14", len(rows))
	}
	for _, r := range rows {
		if r.Class != r.PaperDominant {
			t.Errorf("%s: dominant class %s, paper %s (composition %v)",
				r.App, r.Class, r.PaperDominant, r.Composition)
		}
	}
	var buf bytes.Buffer
	if err := RenderTable3(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SPECseis96_B") {
		t.Error("rendered Table 3 missing SPECseis96_B")
	}
	// The database recorded every run.
	if svc.DB().Len() != 14 {
		t.Errorf("application DB has %d records, want 14", svc.DB().Len())
	}
}

func TestFigure3DiagramsSeparateTrainingClusters(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	svc, err := NewTrainedService(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	diagrams, err := Figure3(svc, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(diagrams) != 4 {
		t.Fatalf("got %d diagrams, want 4", len(diagrams))
	}
	// (a) must contain all five training classes.
	seen := map[appclass.Class]bool{}
	for _, p := range diagrams[0].Points {
		seen[p.Class] = true
	}
	for _, c := range appclass.All() {
		if !seen[c] {
			t.Errorf("training diagram missing class %s", c)
		}
	}
	// Centroids of distinct classes must be separated in the 2-D space.
	centroid := func(d Figure3Diagram, c appclass.Class) (x, y float64, n int) {
		for _, p := range d.Points {
			if p.Class == c {
				x += p.PC1
				y += p.PC2
				n++
			}
		}
		if n > 0 {
			x /= float64(n)
			y /= float64(n)
		}
		return
	}
	classes := appclass.All()
	for i := 0; i < len(classes); i++ {
		for j := i + 1; j < len(classes); j++ {
			x1, y1, n1 := centroid(diagrams[0], classes[i])
			x2, y2, n2 := centroid(diagrams[0], classes[j])
			if n1 == 0 || n2 == 0 {
				continue
			}
			dx, dy := x1-x2, y1-y2
			if dx*dx+dy*dy < 0.3*0.3 {
				t.Errorf("classes %s and %s overlap in PCA space: (%.2f,%.2f) vs (%.2f,%.2f)",
					classes[i], classes[j], x1, y1, x2, y2)
			}
		}
	}
	// (b) SimpleScalar is CPU; (c) Autobench is network.
	for _, check := range []struct {
		idx  int
		want appclass.Class
	}{{1, appclass.CPU}, {2, appclass.Net}} {
		counts := map[appclass.Class]int{}
		for _, p := range diagrams[check.idx].Points {
			counts[p.Class]++
		}
		best, bestN := appclass.Class(""), -1
		for c, n := range counts {
			if n > bestN {
				best, bestN = c, n
			}
		}
		if best != check.want {
			t.Errorf("diagram %s dominated by %s, want %s", diagrams[check.idx].Title, best, check.want)
		}
	}
	var buf bytes.Buffer
	if err := RenderFigure3(&buf, diagrams); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Training data") {
		t.Error("rendered Figure 3 missing titles")
	}
	var csv bytes.Buffer
	if err := WriteFigure3CSV(&csv, diagrams[0]); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "pc1,pc2,class\n") {
		t.Error("Figure 3 CSV header missing")
	}
}

func TestFigure4And5(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	f4, err := Figure4(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(f4.Results) != 10 {
		t.Fatalf("Figure 4 has %d schedules", len(f4.Results))
	}
	if f4.SPN == nil || f4.MarginOverAverage <= 0 {
		t.Errorf("SPN margin = %v, want positive", f4.MarginOverAverage)
	}
	if best := sched.Best(f4.Results); best.Schedule != sched.SPN() {
		t.Errorf("best schedule = %s, want SPN", best.Schedule)
	}
	var buf bytes.Buffer
	if err := RenderFigure4(&buf, f4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "class-aware choice") {
		t.Error("rendered Figure 4 missing the class-aware marker")
	}

	f5, err := Figure5(f4)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range sched.Kinds() {
		if f5.Stats[k].SPN < f5.Stats[k].Avg {
			t.Errorf("%c SPN below average", k)
		}
	}
	buf.Reset()
	if err := RenderFigure5(&buf, f5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "NetPIPE") {
		t.Error("rendered Figure 5 missing NetPIPE row")
	}
}

func TestTable4(t *testing.T) {
	r, err := Table4(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if r.ConcurrentMakespan >= r.SequentialTotal {
		t.Errorf("concurrent %v not faster than sequential %v", r.ConcurrentMakespan, r.SequentialTotal)
	}
	var buf bytes.Buffer
	if err := RenderTable4(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Concurrent") {
		t.Error("rendered Table 4 incomplete")
	}
}

func TestClassificationCost(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	r, err := ClassificationCost(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if r.Samples != 8000 {
		t.Errorf("cost pool = %d samples, want the paper's 8000", r.Samples)
	}
	if r.UnitCostPerSample <= 0 {
		t.Errorf("unit cost = %v", r.UnitCostPerSample)
	}
	var buf bytes.Buffer
	if err := RenderCost(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "unit cost") {
		t.Error("rendered cost report incomplete")
	}
}

func TestOnlineScheduling(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	r, err := OnlineScheduling(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.ClassAware >= r.Random {
		t.Errorf("class-aware turnaround %v not below random %v", r.ClassAware, r.Random)
	}
	if r.Improvement <= 0 {
		t.Errorf("improvement = %v", r.Improvement)
	}
	var buf bytes.Buffer
	if err := RenderOnline(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "class-aware") {
		t.Error("rendered online report incomplete")
	}
}

func TestLearningWaves(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	r, err := LearningWaves(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if r.Improvement <= 0 {
		t.Errorf("learning improvement = %v, want positive (wave1 %v, wave2 %v)",
			r.Improvement, r.Wave1, r.Wave2)
	}
	want := map[string]appclass.Class{
		"seis": appclass.CPU, "postmark": appclass.IO, "netpipe": appclass.Net,
	}
	for typ, c := range want {
		if r.LearnedClasses[typ] != c {
			t.Errorf("learned class of %s = %s, want %s", typ, r.LearnedClasses[typ], c)
		}
	}
	var buf bytes.Buffer
	if err := RenderLearning(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "learning improved") {
		t.Error("rendered learning report incomplete")
	}
}

func TestRenderFigure3Scatter(t *testing.T) {
	d := Figure3Diagram{
		Title: "test",
		Points: []Figure3Point{
			{PC1: -1, PC2: -1, Class: appclass.Idle},
			{PC1: 1, PC2: 1, Class: appclass.Net},
			{PC1: 0, PC2: 0, Class: appclass.CPU},
		},
	}
	var buf bytes.Buffer
	if err := RenderFigure3Scatter(&buf, d, 20, 10); err != nil {
		t.Fatalf("RenderFigure3Scatter: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"legend:", "x=Network", "+", "."} {
		if !strings.Contains(out, want) {
			t.Errorf("scatter missing %q:\n%s", want, out)
		}
	}
	if err := RenderFigure3Scatter(&buf, d, 2, 2); err == nil {
		t.Error("tiny canvas: want error")
	}
	if err := RenderFigure3Scatter(&buf, Figure3Diagram{Title: "empty"}, 20, 10); err == nil {
		t.Error("empty diagram: want error")
	}
	// Degenerate extent (single point) must still render.
	one := Figure3Diagram{Title: "one", Points: []Figure3Point{{PC1: 2, PC2: 2, Class: appclass.IO}}}
	if err := RenderFigure3Scatter(&buf, one, 20, 10); err != nil {
		t.Errorf("single point: %v", err)
	}
}
