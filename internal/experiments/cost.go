package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/classify"
	"repro/internal/ganglia"
	"repro/internal/metrics"
	"repro/internal/profiler"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// CostResult is the Section 5.3 classification-cost measurement: the
// wall-clock cost of the filtering stage and the classification stage
// (training + PCA + per-snapshot classification) over a large snapshot
// pool, reduced to a per-sample unit cost. The paper measured 72 s
// filtering + 50 s classification for 8000 snapshots (~15 ms/sample) on
// 2001-era hardware.
type CostResult struct {
	Samples           int
	FilterTime        time.Duration
	ClassifyTime      time.Duration
	UnitCostPerSample time.Duration
}

// costPoolSize matches the paper's 8000-snapshot measurement.
const costPoolSize = 8000

// ClassificationCost rebuilds an 8000-snapshot pool from SPECseis96
// (medium) profiling data, replays it through the multicast bus and the
// performance filter, then times training plus classification.
func ClassificationCost(seed int64) (*CostResult, error) {
	// Collect training traces and a large target trace.
	var trainingRuns []classify.TrainingRun
	for _, e := range workload.TrainingSet() {
		res, err := testbed.ProfileEntry(e, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: cost training %s: %w", e.Name, err)
		}
		trainingRuns = append(trainingRuns, classify.TrainingRun{Class: e.Expected, Trace: res.Trace})
	}
	entry, err := workload.Find("SPECseis96_A")
	if err != nil {
		return nil, err
	}
	res, err := testbed.ProfileEntry(entry, seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: cost target run: %w", err)
	}
	base := res.Trace
	// Pad/trim the pool to exactly costPoolSize snapshots by cycling
	// through the run.
	pool := metrics.NewTrace(base.Schema(), base.Node())
	for pool.Len() < costPoolSize {
		remaining := costPoolSize - pool.Len()
		end := base.Len()
		if end > remaining {
			end = remaining
		}
		slice, err := base.Slice(0, end)
		if err != nil {
			return nil, err
		}
		if err := pool.Merge(slice); err != nil {
			return nil, err
		}
	}

	// Stage 1: the performance filter. Replay the pool through the
	// multicast bus (with a second chatty node, as in the real subnet)
	// and extract the target's snapshots.
	filterStart := time.Now()
	bus := ganglia.NewBus()
	prof, err := profiler.New(bus, pool.Schema())
	if err != nil {
		return nil, err
	}
	names := pool.Schema().Names()
	for i := 0; i < pool.Len(); i++ {
		snap := pool.At(i)
		for j, name := range names {
			bus.Announce(ganglia.Announcement{Node: snap.Node, Metric: name, Value: snap.Values[j], At: snap.Time})
			bus.Announce(ganglia.Announcement{Node: "other-node", Metric: name, Value: 0, At: snap.Time})
		}
	}
	filtered, err := prof.Extract(pool.Node(), 0, pool.At(pool.Len()-1).Time)
	if err != nil {
		return nil, fmt.Errorf("experiments: cost filter: %w", err)
	}
	filterTime := time.Since(filterStart)

	// Stage 2: train the classifier, run PCA feature extraction and
	// classify every snapshot.
	classifyStart := time.Now()
	cl, err := classify.Train(trainingRuns, classify.Config{})
	if err != nil {
		return nil, fmt.Errorf("experiments: cost train: %w", err)
	}
	if _, err := cl.ClassifyTrace(filtered); err != nil {
		return nil, fmt.Errorf("experiments: cost classify: %w", err)
	}
	classifyTime := time.Since(classifyStart)

	return &CostResult{
		Samples:           filtered.Len(),
		FilterTime:        filterTime,
		ClassifyTime:      classifyTime,
		UnitCostPerSample: (filterTime + classifyTime) / time.Duration(filtered.Len()),
	}, nil
}

// RenderCost writes the Section 5.3 measurement.
func RenderCost(w io.Writer, r *CostResult) error {
	_, err := fmt.Fprintf(w,
		"classification cost over %d snapshots:\n"+
			"  performance filter: %v\n"+
			"  train + PCA + classify: %v\n"+
			"  unit cost: %v per sample (paper: ~15 ms on 2001-era hardware)\n",
		r.Samples, r.FilterTime, r.ClassifyTime, r.UnitCostPerSample)
	return err
}
