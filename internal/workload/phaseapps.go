package workload

import (
	"fmt"
	"time"

	"repro/internal/appclass"
)

// This file models the two workloads the phase-aware extension needs
// beyond Table 2: a bursty application that alternates CPU-bound and
// IO-bound stages (exercising online phase segmentation and fingerprint
// matching), and an adversarial application whose blended resource mix
// imitates no trained class (exercising the open-set UNKNOWN verdict).
// Neither belongs to the paper's Table-2/Table-3 runs, so both live in
// ExtendedSet rather than TrainingSet/TestSet.

// BurstyMixRounds is the number of compute+flush rounds NewBurstyMix
// generates. Each round is one CPU phase followed by one IO phase, so a
// run yields 2*BurstyMixRounds ground-truth stages.
const BurstyMixRounds = 4

// NewBurstyMix models a checkpoint-style scientific application:
// compute-intensive rounds that each end with a heavy result-flush to
// disk. The alternation plants unambiguous phase boundaries roughly
// every 45-60 s, making it the reference workload for the online
// segmenter and the fingerprint dictionary.
func NewBurstyMix(cfg Config) (*App, error) {
	var phases []Phase
	for r := 0; r < BurstyMixRounds; r++ {
		phases = append(phases,
			Phase{
				Name:           fmt.Sprintf("compute_%d", r),
				CPUWork:        60,
				CPURate:        1.0,
				CPUSystemShare: 0.03,
				WorkingSetKB:   48 * 1024,
			},
			Phase{
				Name:           fmt.Sprintf("flush_%d", r),
				ReadWorkKB:     120 * 1024,
				WriteWorkKB:    180 * 1024,
				ReadRateKB:     3200,
				WriteRateKB:    5200,
				CPUWork:        8,
				CPURate:        0.18,
				CPUSystemShare: 0.65,
				WorkingSetKB:   24 * 1024,
				DatasetKB:      300 * 1024,
			},
		)
	}
	return newApp(cfg.name("BurstyMix"), appclass.CPU, cfg, false, phases)
}

// NewMimic models an adversarial application engineered to sit between
// the trained classes: it blends moderate CPU, disk, and network demand
// simultaneously, so every snapshot lands far from all five training
// clusters in the fused feature space. Its class label is
// appclass.Unknown — the open-set test should refuse to assign it any
// trained class.
func NewMimic(cfg Config) (*App, error) {
	phases := []Phase{{
		Name:           "blend",
		CPUWork:        150,
		ReadWorkKB:     900 * 1024,
		WriteWorkKB:    900 * 1024,
		NetInWorkKB:    120 * 1024,
		NetOutWorkKB:   2400 * 1024,
		CPURate:        0.5,
		ReadRateKB:     3000,
		WriteRateKB:    3000,
		NetInRateKB:    400,
		NetOutRateKB:   8000,
		CPUSystemShare: 0.45,
		WorkingSetKB:   64 * 1024,
		DatasetKB:      256 * 1024,
	}}
	return newApp(cfg.name("Mimic"), appclass.Unknown, cfg, false, phases)
}

// ExtendedSet returns the extension workloads that are neither training
// runs nor Table-3 rows: the phase-segmentation reference app and the
// open-set adversary. Find and Names cover them, but the Table-3
// experiments do not.
func ExtendedSet() []Entry {
	return []Entry{
		{
			Name:        "BurstyMix",
			Description: "A synthetic checkpointing computation alternating CPU-bound rounds with heavy result flushes; exercises phase segmentation",
			Expected:    appclass.CPU,
			VMMemKB:     defaultVMMemKB,
			MaxRun:      time.Hour,
			Build: func(seed int64) (*App, error) {
				return NewBurstyMix(Config{Seed: seed})
			},
		},
		{
			Name:        "Mimic",
			Description: "An adversarial blend of CPU, disk, and network demand matching no trained class; exercises the open-set UNKNOWN verdict",
			Expected:    appclass.Unknown,
			VMMemKB:     defaultVMMemKB,
			MaxRun:      time.Hour,
			Build: func(seed int64) (*App, error) {
				return NewMimic(Config{Seed: seed})
			},
		},
	}
}
