// Package workload models every application of the paper's Table 2 as a
// resource-demand generator for the VM simulator. The classifier never
// inspects application code — only resource consumption — so each model
// reproduces its application's documented signature: which resources it
// stresses, in which execution phases, with how much randomness.
//
// All models are built on a shared phase engine: an application is a
// sequence of phases, each with total work amounts per resource and
// desired per-second rates. A phase ends when all its work has been
// granted by the simulator (or, for duration-based phases such as think
// time, when its duration elapses); contention on any resource therefore
// stretches execution exactly the way it stretched the paper's real
// benchmarks.
package workload

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"time"

	"repro/internal/appclass"
	"repro/internal/vmm"
)

// Phase is one execution stage of an application.
type Phase struct {
	// Name identifies the stage for debugging and the multi-stage
	// detection extension.
	Name string

	// Total work amounts; the phase completes when every nonzero
	// component is exhausted. CPUWork is in CPU-seconds; the KB fields
	// are logical volumes.
	CPUWork      float64
	ReadWorkKB   float64
	WriteWorkKB  float64
	NetInWorkKB  float64
	NetOutWorkKB float64

	// Duration makes the phase time-based: it ends after this much
	// simulated time even if (or regardless of whether) work remains.
	// Phases with only Duration and no work model think time.
	Duration time.Duration

	// Desired per-second rates, bounding how fast the application can
	// consume each resource even without contention.
	CPURate      float64
	ReadRateKB   float64
	WriteRateKB  float64
	NetInRateKB  float64
	NetOutRateKB float64

	// Demand shape parameters (see vmm.Demand).
	CPUSystemShare float64
	WorkingSetKB   float64
	DatasetKB      float64
}

// remainingWork tracks how much of a phase is left.
type remainingWork struct {
	cpu, read, write, netIn, netOut float64
	duration                        time.Duration
}

func (r remainingWork) exhausted(p Phase) bool {
	if p.Duration > 0 {
		return r.duration <= 0
	}
	return r.cpu <= 1e-9 && r.read <= 1e-6 && r.write <= 1e-6 &&
		r.netIn <= 1e-6 && r.netOut <= 1e-6
}

// App is a phase-driven workload implementing vmm.Job.
type App struct {
	name   string
	class  appclass.Class
	phases []Phase
	loop   bool // restart from the first phase after the last
	jitter float64

	cur  int
	rem  remainingWork
	done bool
	rng  *rand.Rand

	// lastDemand and lastIOServed implement blocking I/O: when the
	// simulator serves only part of the requested file traffic, the
	// application spends the next tick waiting instead of computing, so
	// its CPU demand drops proportionally.
	lastDemand   vmm.Demand
	lastIOServed float64
	// lastEff remembers the previous tick's CPU efficiency so the final
	// tick of a phase demands enough CPU time to finish despite paging
	// stalls, instead of trailing off in a geometric tail of tiny
	// demands.
	lastEff float64

	// PhaseChanges records (time, phase name) transitions for the
	// multi-stage analysis extension.
	PhaseChanges []PhaseChange
}

// PhaseChange records when the application entered a phase.
type PhaseChange struct {
	At    time.Duration
	Phase string
}

// Config carries the options common to all application constructors.
type Config struct {
	// Name overrides the default instance name.
	Name string
	// Seed makes the instance's demand jitter reproducible. Instances
	// with equal names and seeds behave identically.
	Seed int64
	// Jitter scales the multiplicative rate noise (default 0.1 = ±10%).
	Jitter float64
}

func (c Config) name(def string) string {
	if c.Name != "" {
		return c.Name
	}
	return def
}

func (c Config) jitterOrDefault() float64 {
	if c.Jitter == 0 {
		return 0.1
	}
	if c.Jitter < 0 {
		return 0
	}
	return c.Jitter
}

// NewCustom builds a phase-driven application from caller-defined
// phases, for workload models beyond the built-in Table-2 set. The
// class is the application's expected behaviour label; loop restarts
// the phase sequence forever (for service-like workloads).
func NewCustom(name string, class appclass.Class, cfg Config, loop bool, phases []Phase) (*App, error) {
	if !appclass.Valid(class) {
		return nil, fmt.Errorf("workload: invalid class %q for custom app %s", class, name)
	}
	return newApp(name, class, cfg, loop, phases)
}

// newApp builds a phase-driven application.
func newApp(name string, class appclass.Class, cfg Config, loop bool, phases []Phase) (*App, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("workload: %s has no phases", name)
	}
	for i, p := range phases {
		if p.Duration == 0 && p.CPUWork == 0 && p.ReadWorkKB == 0 && p.WriteWorkKB == 0 &&
			p.NetInWorkKB == 0 && p.NetOutWorkKB == 0 {
			return nil, fmt.Errorf("workload: %s phase %d (%s) has neither work nor duration", name, i, p.Name)
		}
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	a := &App{
		name:         name,
		class:        class,
		phases:       phases,
		loop:         loop,
		jitter:       cfg.jitterOrDefault(),
		rng:          rand.New(rand.NewSource(cfg.Seed ^ int64(h.Sum64()))),
		lastIOServed: 1,
		lastEff:      1,
	}
	a.enterPhase(0, 0)
	return a, nil
}

func mustApp(name string, class appclass.Class, cfg Config, loop bool, phases []Phase) *App {
	a, err := newApp(name, class, cfg, loop, phases)
	if err != nil {
		panic(err)
	}
	return a
}

func (a *App) enterPhase(i int, now time.Duration) {
	a.cur = i
	p := a.phases[i]
	a.rem = remainingWork{
		cpu: p.CPUWork, read: p.ReadWorkKB, write: p.WriteWorkKB,
		netIn: p.NetInWorkKB, netOut: p.NetOutWorkKB, duration: p.Duration,
	}
	a.PhaseChanges = append(a.PhaseChanges, PhaseChange{At: now, Phase: p.Name})
}

// Name implements vmm.Job.
func (a *App) Name() string { return a.name }

// ExpectedClass returns the Table-2 "expected behavior" label.
func (a *App) ExpectedClass() appclass.Class { return a.class }

// CurrentPhase returns the name of the phase in progress.
func (a *App) CurrentPhase() string {
	if a.done {
		return "done"
	}
	return a.phases[a.cur].Name
}

// Done implements vmm.Job.
func (a *App) Done() bool { return a.done }

// jittered applies multiplicative noise to a rate.
func (a *App) jittered(rate float64) float64 {
	if rate <= 0 {
		return 0
	}
	f := 1 + a.jitter*(2*a.rng.Float64()-1)
	return rate * f
}

// Demand implements vmm.Job.
func (a *App) Demand(time.Duration) vmm.Demand {
	if a.done {
		return vmm.Demand{}
	}
	p := a.phases[a.cur]
	d := vmm.Demand{
		CPUSystemShare: p.CPUSystemShare,
		WorkingSetKB:   p.WorkingSetKB,
		DatasetKB:      p.DatasetKB,
	}
	cpuRate := p.CPURate
	if p.ReadRateKB+p.WriteRateKB > 0 {
		// Blocking I/O: unserved file traffic stalls the computation.
		gate := a.lastIOServed
		if gate < 0.05 {
			gate = 0.05
		}
		cpuRate *= gate
	}
	// Demand enough CPU time to finish the remaining work at the
	// current paging efficiency; the occupied-but-stalled time is real
	// CPU occupancy.
	cpuRem := a.rem.cpu
	if cpuRem < 0 {
		// The efficiency estimate can over-grant the final tick of a
		// phase by a sliver; never demand negative work.
		cpuRem = 0
	}
	if a.lastEff > 0 && a.lastEff < 1 {
		cpuRem /= a.lastEff
	}
	d.CPUSeconds = math.Min(a.jittered(cpuRate), cpuRem)
	if p.Duration > 0 && p.CPUWork == 0 {
		// Time-based phases with a rate but no total consume at the rate
		// for the whole duration.
		d.CPUSeconds = a.jittered(cpuRate)
	}
	d.ReadKB = a.boundedRate(p.ReadRateKB, a.rem.read, p.Duration > 0 && p.ReadWorkKB == 0)
	d.WriteKB = a.boundedRate(p.WriteRateKB, a.rem.write, p.Duration > 0 && p.WriteWorkKB == 0)
	d.NetInKB = a.boundedRate(p.NetInRateKB, a.rem.netIn, p.Duration > 0 && p.NetInWorkKB == 0)
	d.NetOutKB = a.boundedRate(p.NetOutRateKB, a.rem.netOut, p.Duration > 0 && p.NetOutWorkKB == 0)
	a.lastDemand = d
	return d
}

func (a *App) boundedRate(rate, remaining float64, unbounded bool) float64 {
	r := a.jittered(rate)
	if unbounded {
		return r
	}
	return math.Min(r, remaining)
}

// Apply implements vmm.Job.
func (a *App) Apply(g vmm.Grant, now time.Duration) {
	if a.done {
		return
	}
	p := a.phases[a.cur]
	if io := a.lastDemand.ReadKB + a.lastDemand.WriteKB; io > 0 {
		a.lastIOServed = (g.ReadKB + g.WriteKB) / io
		if a.lastIOServed > 1 {
			a.lastIOServed = 1
		}
	} else {
		a.lastIOServed = 1
	}
	if g.CPUEfficiency > 0 {
		a.lastEff = g.CPUEfficiency
	}
	a.rem.cpu -= g.CPUSeconds * g.CPUEfficiency
	a.rem.read -= g.ReadKB
	a.rem.write -= g.WriteKB
	a.rem.netIn -= g.NetInKB
	a.rem.netOut -= g.NetOutKB
	if p.Duration > 0 {
		a.rem.duration -= time.Second
	}
	if a.rem.exhausted(p) {
		next := a.cur + 1
		if next >= len(a.phases) {
			if a.loop {
				a.enterPhase(0, now)
				return
			}
			a.done = true
			a.PhaseChanges = append(a.PhaseChanges, PhaseChange{At: now, Phase: "done"})
			return
		}
		a.enterPhase(next, now)
	}
}

var _ vmm.Job = (*App)(nil)
