package workload

import (
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/metrics"
)

// windowMean averages a column over the snapshot index range [lo, hi).
func windowMean(t *testing.T, tr *metrics.Trace, name string, lo, hi int) float64 {
	t.Helper()
	col, ok := tr.Schema().Index(name)
	if !ok {
		t.Fatalf("no column %q", name)
	}
	sum := 0.0
	for i := lo; i < hi; i++ {
		sum += tr.At(i).Values[col]
	}
	return sum / float64(hi-lo)
}

func TestBurstyMixAlternatesComputeAndFlush(t *testing.T) {
	e, err := Find("BurstyMix")
	if err != nil {
		t.Fatal(err)
	}
	tr, elapsed := profileEntry(t, e, 1)
	if tr.Len() < 40 {
		t.Fatalf("only %d samples", tr.Len())
	}
	// Early in the run the app computes; its first flush cannot start
	// before CPUWork=60 CPU-seconds complete, so the opening window is
	// CPU-dominant with negligible disk traffic.
	head := tr.Len() / 8
	if cpu := windowMean(t, tr, metrics.CPUUser, 0, head); cpu < 60 {
		t.Errorf("opening window mean cpu_user = %v%%, want compute-dominant", cpu)
	}
	if io := windowMean(t, tr, metrics.IOBO, 0, head); io > 300 {
		t.Errorf("opening window mean io_bo = %v blocks/s, want negligible", io)
	}
	// Across the whole run the flush phases must contribute heavy disk
	// traffic somewhere: the busiest snapshot carries thousands of
	// blocks/s even though the run's opening is pure compute.
	col, ok := tr.Schema().Index(metrics.IOBO)
	if !ok {
		t.Fatalf("no column %q", metrics.IOBO)
	}
	peak := 0.0
	for i := 0; i < tr.Len(); i++ {
		if v := tr.At(i).Values[col]; v > peak {
			peak = v
		}
	}
	if peak < 2000 {
		t.Errorf("peak io_bo = %v blocks/s, want heavy flush traffic", peak)
	}
	// Four compute rounds of 60 CPU-seconds plus four flushes should
	// take several minutes, not seconds.
	if elapsed < 200*time.Second || elapsed > 20*time.Minute {
		t.Errorf("BurstyMix elapsed %v, want several minutes", elapsed)
	}
	// The engine's own phase log must show the alternation.
	app, err := e.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(app.phases); got != 2*BurstyMixRounds {
		t.Errorf("BurstyMix has %d phases, want %d", got, 2*BurstyMixRounds)
	}
}

func TestMimicBlendsAllResources(t *testing.T) {
	e, err := Find("Mimic")
	if err != nil {
		t.Fatal(err)
	}
	if e.Expected != appclass.Unknown {
		t.Errorf("Mimic expected class %q, want %q", e.Expected, appclass.Unknown)
	}
	tr, _ := profileEntry(t, e, 1)
	if tr.Len() < 20 {
		t.Fatalf("only %d samples", tr.Len())
	}
	// Every trained class dominates one resource; Mimic must stress
	// several at once so no single-resource signature fits.
	cpu := meanOf(t, tr, metrics.CPUUser) + meanOf(t, tr, metrics.CPUSystem)
	if cpu < 25 {
		t.Errorf("mean CPU = %v%%, want a substantial CPU component", cpu)
	}
	if io := meanOf(t, tr, metrics.IOBI) + meanOf(t, tr, metrics.IOBO); io < 1500 {
		t.Errorf("mean disk traffic = %v blocks/s, want a substantial IO component", io)
	}
	if net := meanOf(t, tr, metrics.BytesOut); net < 1e6 {
		t.Errorf("mean bytes_out = %v, want a substantial network component", net)
	}
}

func TestExtendedSetRegistered(t *testing.T) {
	ext := ExtendedSet()
	if len(ext) != 2 {
		t.Fatalf("extended set has %d entries, want 2", len(ext))
	}
	for _, e := range ext {
		if e.Build == nil || e.VMMemKB <= 0 || e.MaxRun <= 0 {
			t.Errorf("entry %q incompletely specified", e.Name)
		}
		found, err := Find(e.Name)
		if err != nil {
			t.Errorf("Find(%q): %v", e.Name, err)
		} else if found.Name != e.Name {
			t.Errorf("Find(%q) returned %q", e.Name, found.Name)
		}
	}
	names := Names()
	got := map[string]bool{}
	for _, n := range names {
		got[n] = true
	}
	if !got["BurstyMix"] || !got["Mimic"] {
		t.Errorf("Names() missing extended entries: %v", names)
	}
	// The extended apps must stay out of the paper's experiment sets.
	for _, e := range append(TrainingSet(), TestSet()...) {
		if e.Name == "BurstyMix" || e.Name == "Mimic" {
			t.Errorf("extended entry %q leaked into Table-2/3 sets", e.Name)
		}
	}
}
