package workload

import (
	"fmt"
	"time"

	"repro/internal/appclass"
)

// Entry describes one application run of the paper's Table 2: the
// program, the VM configuration it executes in, and its expected
// behaviour. Entries are templates — Build creates a fresh job instance.
type Entry struct {
	// Name is the run label used in Tables 2 and 3 (e.g. "SPECseis96_A").
	Name string
	// Description summarizes the application, after Table 2.
	Description string
	// Expected is the Table-2 "expected behavior" class.
	Expected appclass.Class
	// Training marks the five runs used to train the 3-NN classifier.
	Training bool
	// VMMemKB is the guest memory of the profiling VM (the paper's
	// SPECseis96 B runs in a 32 MB VM, everything else in 256 MB).
	VMMemKB float64
	// MaxRun caps the simulated profiling run.
	MaxRun time.Duration
	// Build creates the job. The seed varies randomness across runs.
	Build func(seed int64) (*App, error)
	// Peer, when set, creates the server-side job the benchmark talks
	// to, hosted on a second VM (the paper ran network-benchmark servers
	// on a dedicated VM).
	Peer func(seed int64) (*App, error)
}

const defaultVMMemKB = 256 * 1024

// TrainingSet returns the five class-representative training runs of
// Section 4.2.3: SPECseis96 (CPU), PostMark (I/O), Pagebench (paging),
// Ettcp (network), and the idle machine.
func TrainingSet() []Entry {
	return []Entry{
		{
			Name:        "SPECseis96_train",
			Description: "A seismic processing application (SPEC HPC); represents the CPU-intensive class",
			Expected:    appclass.CPU,
			Training:    true,
			VMMemKB:     defaultVMMemKB,
			MaxRun:      30 * time.Minute,
			Build: func(seed int64) (*App, error) {
				return NewSPECseis(SPECseisSmall, Config{Seed: seed})
			},
		},
		{
			Name:        "PostMark_train",
			Description: "A file system benchmark program; represents the IO-intensive class",
			Expected:    appclass.IO,
			Training:    true,
			VMMemKB:     defaultVMMemKB,
			MaxRun:      30 * time.Minute,
			Build: func(seed int64) (*App, error) {
				return NewPostMark(PostMarkLocal, 0, Config{Seed: seed})
			},
		},
		{
			Name:        "PageBench_train",
			Description: "A synthetic program updating an array bigger than the VM memory; represents the paging-intensive class",
			Expected:    appclass.Mem,
			Training:    true,
			VMMemKB:     defaultVMMemKB,
			MaxRun:      30 * time.Minute,
			Build: func(seed int64) (*App, error) {
				return NewPagebench(defaultVMMemKB, 300*time.Second, Config{Seed: seed})
			},
		},
		{
			Name:        "Ettcp_train",
			Description: "A benchmark measuring network throughput over TCP/UDP between two nodes; represents the network-intensive class",
			Expected:    appclass.Net,
			Training:    true,
			VMMemKB:     defaultVMMemKB,
			MaxRun:      30 * time.Minute,
			Build: func(seed int64) (*App, error) {
				return NewEttcp(300*time.Second, Config{Seed: seed})
			},
			Peer: func(seed int64) (*App, error) {
				return NewEttcpServer(300*time.Second, Config{Seed: seed})
			},
		},
		{
			Name:        "Idle_train",
			Description: "No application running except background daemons in the machine",
			Expected:    appclass.Idle,
			Training:    true,
			VMMemKB:     defaultVMMemKB,
			MaxRun:      5 * time.Minute,
			Build: func(seed int64) (*App, error) {
				return NewIdle(Config{Seed: seed})
			},
		},
	}
}

// TestSet returns the fourteen Table-3 evaluation runs in the table's
// row order.
func TestSet() []Entry {
	return []Entry{
		{
			Name:        "SPECseis96_A",
			Description: "SPECseis96 with medium data size running in a VM with 256MB virtual memory",
			Expected:    appclass.CPU,
			VMMemKB:     defaultVMMemKB,
			MaxRun:      10 * time.Hour,
			Build: func(seed int64) (*App, error) {
				return NewSPECseis(SPECseisMedium, Config{Seed: seed, Name: "SPECseis96_A"})
			},
		},
		{
			Name:        "SPECseis96_C",
			Description: "SPECseis96 with small data size running in a VM with 256MB virtual memory",
			Expected:    appclass.CPU,
			VMMemKB:     defaultVMMemKB,
			MaxRun:      time.Hour,
			Build: func(seed int64) (*App, error) {
				return NewSPECseis(SPECseisSmall, Config{Seed: seed, Name: "SPECseis96_C"})
			},
		},
		{
			Name:        "CH3D",
			Description: "A curvilinear-grid hydrodynamics 3D model",
			Expected:    appclass.CPU,
			VMMemKB:     defaultVMMemKB,
			MaxRun:      time.Hour,
			Build: func(seed int64) (*App, error) {
				return NewCH3D(220, Config{Seed: seed})
			},
		},
		{
			Name:        "SimpleScalar",
			Description: "A computer architecture simulation tool",
			Expected:    appclass.CPU,
			VMMemKB:     defaultVMMemKB,
			MaxRun:      time.Hour,
			Build: func(seed int64) (*App, error) {
				return NewSimpleScalar(Config{Seed: seed})
			},
		},
		{
			Name:        "PostMark",
			Description: "A file system benchmark program (local working directory)",
			Expected:    appclass.IO,
			VMMemKB:     defaultVMMemKB,
			MaxRun:      time.Hour,
			Build: func(seed int64) (*App, error) {
				return NewPostMark(PostMarkLocal, 0, Config{Seed: seed})
			},
		},
		{
			Name:        "Bonnie",
			Description: "A Unix file system performance benchmark",
			Expected:    appclass.IO,
			VMMemKB:     defaultVMMemKB,
			MaxRun:      2 * time.Hour,
			Build: func(seed int64) (*App, error) {
				return NewBonnie(Config{Seed: seed})
			},
		},
		{
			Name:        "SPECseis96_B",
			Description: "SPECseis96 with medium data size running in a VM with 32MB virtual memory",
			Expected:    appclass.IO, // IO & paging intensive in the starved VM
			VMMemKB:     32 * 1024,
			MaxRun:      14 * time.Hour,
			Build: func(seed int64) (*App, error) {
				return NewSPECseis(SPECseisMedium, Config{Seed: seed, Name: "SPECseis96_B"})
			},
		},
		{
			Name:        "Stream",
			Description: "A synthetic benchmark measuring sustainable memory bandwidth and computation rate",
			Expected:    appclass.IO,
			VMMemKB:     defaultVMMemKB,
			MaxRun:      2 * time.Hour,
			Build: func(seed int64) (*App, error) {
				return NewStream(Config{Seed: seed})
			},
		},
		{
			Name:        "PostMark_NFS",
			Description: "The Postmark benchmark with a NFS mounted working directory",
			Expected:    appclass.Net,
			VMMemKB:     defaultVMMemKB,
			MaxRun:      time.Hour,
			Build: func(seed int64) (*App, error) {
				return NewPostMark(PostMarkNFS, 0, Config{Seed: seed})
			},
		},
		{
			Name:        "NetPIPE",
			Description: "A protocol independent network performance measurement tool",
			Expected:    appclass.Net,
			VMMemKB:     defaultVMMemKB,
			MaxRun:      time.Hour,
			Build: func(seed int64) (*App, error) {
				return NewNetPIPE(0, Config{Seed: seed})
			},
			Peer: func(seed int64) (*App, error) {
				return NewNetPIPEServer(12*time.Minute, Config{Seed: seed})
			},
		},
		{
			Name:        "Autobench",
			Description: "A wrapper around httperf working as an automated web server benchmark",
			Expected:    appclass.Net,
			VMMemKB:     defaultVMMemKB,
			MaxRun:      time.Hour,
			Build: func(seed int64) (*App, error) {
				return NewAutobench(Config{Seed: seed})
			},
		},
		{
			Name:        "Sftp",
			Description: "A synthetic program using sftp to transfer a 2GB file",
			Expected:    appclass.Net,
			VMMemKB:     defaultVMMemKB,
			MaxRun:      time.Hour,
			Build: func(seed int64) (*App, error) {
				return NewSftp(0, Config{Seed: seed})
			},
		},
		{
			Name:        "VMD",
			Description: "A molecular visualization program using 3-D graphics and built-in scripting (interactive)",
			Expected:    appclass.Idle,
			VMMemKB:     defaultVMMemKB,
			MaxRun:      time.Hour,
			Build: func(seed int64) (*App, error) {
				return NewVMD(Config{Seed: seed})
			},
		},
		{
			Name:        "XSpim",
			Description: "A MIPS assembly language simulator with an X-Windows based GUI (interactive)",
			Expected:    appclass.Idle,
			VMMemKB:     defaultVMMemKB,
			MaxRun:      time.Hour,
			Build: func(seed int64) (*App, error) {
				return NewXSpim(Config{Seed: seed})
			},
		},
	}
}

// Find locates a registry entry by name across the training, test,
// and extended sets.
func Find(name string) (Entry, error) {
	for _, e := range allEntries() {
		if e.Name == name {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("workload: no registry entry named %q", name)
}

// Names returns every registry entry name, training set first.
func Names() []string {
	var out []string
	for _, e := range allEntries() {
		out = append(out, e.Name)
	}
	return out
}

func allEntries() []Entry {
	all := append(TrainingSet(), TestSet()...)
	return append(all, ExtendedSet()...)
}
