package workload

import (
	"fmt"
	"time"

	"repro/internal/appclass"
)

// PostMarkMode selects where the PostMark working directory lives.
type PostMarkMode string

// PostMark working-directory modes from Table 3.
const (
	// PostMarkLocal uses a local file directory: the benchmark is
	// I/O-intensive.
	PostMarkLocal PostMarkMode = "local"
	// PostMarkNFS mounts the working directory over NFS: the same file
	// operations become network traffic and the benchmark turns
	// network-intensive — the paper's example of the execution
	// environment changing an application's class.
	PostMarkNFS PostMarkMode = "nfs"
)

// NewPostMark models the PostMark small-file benchmark: a pool of small
// files receiving create/read/append/delete transactions. Transactions
// KB counts the total logical traffic of the run; the default (0) sizes
// the run at roughly the paper's 52-sample (~260 s) profile.
func NewPostMark(mode PostMarkMode, transactionsKB float64, cfg Config) (*App, error) {
	if transactionsKB == 0 {
		transactionsKB = 2600 * 1024 // ~2.6 GB of logical traffic
	}
	if transactionsKB < 0 {
		return nil, fmt.Errorf("workload: PostMark transactionsKB must be >= 0, got %v", transactionsKB)
	}
	read := transactionsKB / 2
	write := transactionsKB / 2
	var phases []Phase
	switch mode {
	case PostMarkLocal:
		phases = []Phase{
			{
				Name:           "create-pool",
				WriteWorkKB:    write / 10,
				CPUWork:        2,
				CPURate:        0.2,
				WriteRateKB:    4 * 1024,
				CPUSystemShare: 0.6,
				WorkingSetKB:   24 * 1024,
				DatasetKB:      500 * 1024,
			},
			{
				Name:           "transactions",
				ReadWorkKB:     read,
				WriteWorkKB:    write * 9 / 10,
				CPUWork:        transactionsKB / 105000, // ~25 CPU-s at the default volume
				CPURate:        0.15,
				ReadRateKB:     6500,
				WriteRateKB:    6000,
				CPUSystemShare: 0.65,
				WorkingSetKB:   24 * 1024,
				DatasetKB:      500 * 1024,
			},
		}
	case PostMarkNFS:
		// The same transaction stream, carried by the NFS client: reads
		// arrive from the network, writes leave over it. Only metadata
		// touches the local disk.
		phases = []Phase{
			{
				Name:           "create-pool-nfs",
				NetOutWorkKB:   write / 10,
				CPUWork:        2,
				CPURate:        0.3,
				NetOutRateKB:   4 * 1024,
				CPUSystemShare: 0.7,
				WorkingSetKB:   24 * 1024,
			},
			{
				Name:           "transactions-nfs",
				NetInWorkKB:    read,
				NetOutWorkKB:   write * 9 / 10,
				CPUWork:        55,
				CPURate:        0.3,
				NetInRateKB:    3800,
				NetOutRateKB:   3400,
				CPUSystemShare: 0.7,
				WorkingSetKB:   24 * 1024,
			},
		}
	default:
		return nil, fmt.Errorf("workload: unknown PostMark mode %q", mode)
	}
	name := "PostMark"
	if mode == PostMarkNFS {
		name = "PostMark_NFS"
	}
	class := appclass.IO
	if mode == PostMarkNFS {
		class = appclass.Net
	}
	return newApp(cfg.name(name), class, cfg, false, phases)
}

// NewBonnie models the Bonnie file-system benchmark: sequential
// per-character and block I/O stages over a file larger than memory,
// followed by a random-seek stage. The per-character stages burn
// noticeable CPU (the paper measured 4% CPU-class samples) and the large
// file churns enough memory to page briefly.
func NewBonnie(cfg Config) (*App, error) {
	const fileKB = 900 * 1024
	phases := []Phase{
		{
			Name: "putc", WriteWorkKB: fileKB / 4, CPUWork: 30,
			CPURate: 0.45, WriteRateKB: 3000, CPUSystemShare: 0.4,
			WorkingSetKB: 20 * 1024, DatasetKB: fileKB,
		},
		{
			Name: "block-write", WriteWorkKB: fileKB, CPUWork: 12,
			CPURate: 0.25, WriteRateKB: 9000, CPUSystemShare: 0.7,
			WorkingSetKB: 20 * 1024, DatasetKB: fileKB,
		},
		{
			Name: "rewrite", ReadWorkKB: fileKB / 2, WriteWorkKB: fileKB / 2, CPUWork: 15,
			CPURate: 0.3, ReadRateKB: 4500, WriteRateKB: 4500, CPUSystemShare: 0.65,
			WorkingSetKB: 260 * 1024, DatasetKB: fileKB,
		},
		{
			Name: "getc", ReadWorkKB: fileKB / 4, CPUWork: 28,
			CPURate: 0.45, ReadRateKB: 2800, CPUSystemShare: 0.4,
			WorkingSetKB: 20 * 1024, DatasetKB: fileKB,
		},
		{
			Name: "block-read", ReadWorkKB: fileKB, CPUWork: 10,
			CPURate: 0.22, ReadRateKB: 10000, CPUSystemShare: 0.7,
			WorkingSetKB: 20 * 1024, DatasetKB: fileKB,
		},
		{
			Name: "seeks", ReadWorkKB: fileKB / 8, CPUWork: 8,
			CPURate: 0.25, ReadRateKB: 2500, CPUSystemShare: 0.6,
			WorkingSetKB: 20 * 1024, DatasetKB: fileKB,
		},
	}
	return newApp(cfg.name("Bonnie"), appclass.IO, cfg, false, phases)
}

// NewPagebench models the paper's synthetic training application for the
// paging class: it initializes and repeatedly updates an array larger
// than the VM's memory, inducing continuous swap traffic. durationHint
// bounds the run via total CPU work (default ~400 s of thrashing).
func NewPagebench(vmMemKB float64, durationHint time.Duration, cfg Config) (*App, error) {
	if vmMemKB <= 0 {
		return nil, fmt.Errorf("workload: Pagebench needs the VM memory size, got %v", vmMemKB)
	}
	work := durationHint.Seconds()
	if work <= 0 {
		work = 400
	}
	// The array exceeds the guest memory by ~15%, enough for sustained
	// overflow paging without saturating the disk with swap traffic.
	phases := []Phase{
		{
			Name:           "touch-array",
			CPUWork:        work * 0.4, // progress is paging-gated, so this stretches
			CPURate:        1.0,
			CPUSystemShare: 0.15,
			WorkingSetKB:   1.15 * vmMemKB,
			DatasetKB:      0,
		},
	}
	return newApp(cfg.name("Pagebench"), appclass.Mem, cfg, false, phases)
}

// NewStream models the STREAM memory-bandwidth benchmark in a VM whose
// memory cannot hold the three working arrays: the copy/scale/add/triad
// kernels sweep the arrays sequentially, which in a starved VM becomes
// alternating heavy file-backed I/O (sequential faults ahead) and swap
// churn — the paper measured Stream as ~79% I/O and ~20% paging.
func NewStream(cfg Config) (*App, error) {
	var phases []Phase
	for i := 0; i < 12; i++ {
		phases = append(phases,
			Phase{
				Name:           fmt.Sprintf("kernel-sweep-%d", i),
				ReadWorkKB:     130 * 1024,
				WriteWorkKB:    65 * 1024,
				CPUWork:        6,
				CPURate:        0.35,
				ReadRateKB:     6500,
				WriteRateKB:    3200,
				CPUSystemShare: 0.5,
				WorkingSetKB:   150 * 1024,
				DatasetKB:      1e9, // streaming: effectively uncacheable
			},
			Phase{
				Name:           fmt.Sprintf("array-churn-%d", i),
				CPUWork:        1.2,
				CPURate:        1.0,
				CPUSystemShare: 0.2,
				WorkingSetKB:   310 * 1024,
			},
		)
	}
	return newApp(cfg.name("Stream"), appclass.IO, cfg, false, phases)
}
