package workload

import (
	"time"

	"repro/internal/appclass"
)

// NewVMD models an interactive VMD molecular-visualization session over
// a VNC remote display (the paper's Figure 3d): think time while the
// user reads the screen, an input-file upload (file I/O), and GUI
// interaction streaming rendered frames over the network. The paper
// measured roughly 37% idle, 41% I/O and 22% network.
func NewVMD(cfg Config) (*App, error) {
	phases := []Phase{
		{
			Name:     "launch-idle",
			Duration: 60 * time.Second,
			CPURate:  0.01,
		},
		{
			Name:           "load-molecule",
			Duration:       85 * time.Second,
			ReadRateKB:     3600,
			WriteRateKB:    700,
			CPURate:        0.2,
			CPUSystemShare: 0.6,
			WorkingSetKB:   90 * 1024,
			DatasetKB:      1e9, // first read of a large trajectory: uncached
		},
		{
			Name:         "think-time",
			Duration:     50 * time.Second,
			CPURate:      0.02,
			WorkingSetKB: 90 * 1024,
		},
		{
			Name:           "rotate-via-vnc",
			Duration:       95 * time.Second,
			CPURate:        0.35,
			NetOutRateKB:   7000,
			NetInRateKB:    420,
			CPUSystemShare: 0.45,
			WorkingSetKB:   90 * 1024,
		},
		{
			Name:           "analyze-io",
			Duration:       90 * time.Second,
			ReadRateKB:     3200,
			CPURate:        0.18,
			CPUSystemShare: 0.55,
			WorkingSetKB:   90 * 1024,
			DatasetKB:      1e9,
		},
		{
			Name:     "final-idle",
			Duration: 50 * time.Second,
			CPURate:  0.01,
		},
	}
	return newApp(cfg.name("VMD"), appclass.Idle, cfg, false, phases)
}

// NewXSpim models a short XSpim MIPS-simulator session: launching the
// X-Windows GUI and loading an assembly program (file I/O), then a brief
// pause before exit. The paper's 9-sample run was ~22% idle, ~78% I/O.
func NewXSpim(cfg Config) (*App, error) {
	phases := []Phase{
		{
			Name:           "load-gui-and-program",
			Duration:       35 * time.Second,
			ReadRateKB:     3000,
			WriteRateKB:    300,
			CPURate:        0.15,
			CPUSystemShare: 0.6,
			WorkingSetKB:   25 * 1024,
			DatasetKB:      1e9,
		},
		{
			Name:     "pause",
			Duration: 10 * time.Second,
			CPURate:  0.01,
		},
	}
	return newApp(cfg.name("XSpim"), appclass.Idle, cfg, false, phases)
}

// NewIdle models a machine with no load except background daemons — the
// paper's fifth training class. It never completes.
func NewIdle(cfg Config) (*App, error) {
	phases := []Phase{
		{
			Name:     "background-daemons",
			Duration: time.Hour,
			CPURate:  0.004,
		},
	}
	return newApp(cfg.name("Idle"), appclass.Idle, cfg, true, phases)
}
