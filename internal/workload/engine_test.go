package workload

import (
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/vmm"
)

func TestNewAppRejectsEmptyPhases(t *testing.T) {
	if _, err := newApp("x", appclass.CPU, Config{}, false, nil); err == nil {
		t.Fatal("no phases: want error")
	}
}

func TestNewAppRejectsWorklessPhase(t *testing.T) {
	_, err := newApp("x", appclass.CPU, Config{}, false, []Phase{{Name: "empty"}})
	if err == nil {
		t.Fatal("workless phase: want error")
	}
}

func TestAppDemandRespectsRemainingWork(t *testing.T) {
	a, err := newApp("x", appclass.CPU, Config{Jitter: -1}, false, []Phase{
		{Name: "p", CPUWork: 0.3, CPURate: 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := a.Demand(0)
	if d.CPUSeconds != 0.3 {
		t.Errorf("demand = %v, want clamped to remaining 0.3", d.CPUSeconds)
	}
}

func TestAppPhaseProgressionAndDone(t *testing.T) {
	a, err := newApp("x", appclass.CPU, Config{Jitter: -1}, false, []Phase{
		{Name: "one", CPUWork: 2, CPURate: 1},
		{Name: "two", CPUWork: 1, CPURate: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.CurrentPhase() != "one" {
		t.Fatalf("initial phase = %q", a.CurrentPhase())
	}
	step := func() {
		d := a.Demand(0)
		a.Apply(vmm.Grant{CPUSeconds: d.CPUSeconds, CPUEfficiency: 1}, 0)
	}
	step()
	step()
	if a.CurrentPhase() != "two" {
		t.Fatalf("after 2s phase = %q, want two", a.CurrentPhase())
	}
	step()
	if !a.Done() {
		t.Fatal("app should be done after all work")
	}
	if !a.Demand(0).IsZero() {
		t.Error("done app should demand nothing")
	}
	// Phase transitions recorded.
	if len(a.PhaseChanges) != 3 {
		t.Errorf("phase changes = %v, want one/two/done", a.PhaseChanges)
	}
}

func TestAppDurationPhase(t *testing.T) {
	a, err := newApp("x", appclass.Idle, Config{Jitter: -1}, false, []Phase{
		{Name: "wait", Duration: 3 * time.Second, CPURate: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if a.Done() {
			t.Fatalf("done after %d ticks, want 3", i)
		}
		a.Apply(vmm.Grant{CPUEfficiency: 1}, time.Duration(i)*time.Second)
	}
	if !a.Done() {
		t.Error("duration phase did not end after 3 ticks")
	}
}

func TestAppLoopRestarts(t *testing.T) {
	a, err := newApp("x", appclass.Idle, Config{Jitter: -1}, true, []Phase{
		{Name: "p", Duration: time.Second, CPURate: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a.Apply(vmm.Grant{CPUEfficiency: 1}, time.Duration(i)*time.Second)
	}
	if a.Done() {
		t.Error("looping app should never be done")
	}
}

func TestAppCPUEfficiencySlowsProgress(t *testing.T) {
	mk := func() *App {
		a, err := newApp("x", appclass.CPU, Config{Jitter: -1}, false, []Phase{
			{Name: "p", CPUWork: 10, CPURate: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	fast, slow := mk(), mk()
	ticks := func(a *App, eff float64) int {
		n := 0
		for !a.Done() && n < 1000 {
			d := a.Demand(0)
			a.Apply(vmm.Grant{CPUSeconds: d.CPUSeconds, CPUEfficiency: eff}, 0)
			n++
		}
		return n
	}
	nf, ns := ticks(fast, 1), ticks(slow, 0.5)
	if ns < 2*nf-2 {
		t.Errorf("eff 0.5 took %d ticks vs %d at eff 1; want ~2x", ns, nf)
	}
}

func TestAppIOBlockingGatesCPUDemand(t *testing.T) {
	a, err := newApp("x", appclass.IO, Config{Jitter: -1}, false, []Phase{
		{Name: "io", CPUWork: 100, ReadWorkKB: 1e6, CPURate: 1, ReadRateKB: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := a.Demand(0)
	if d.CPUSeconds != 1 {
		t.Fatalf("initial CPU demand = %v, want 1 (no starvation yet)", d.CPUSeconds)
	}
	// Serve only 10% of the I/O.
	a.Apply(vmm.Grant{CPUSeconds: 1, ReadKB: 100, CPUEfficiency: 1}, 0)
	d = a.Demand(time.Second)
	if d.CPUSeconds > 0.2 {
		t.Errorf("starved CPU demand = %v, want gated to ~0.1", d.CPUSeconds)
	}
	// Full service restores demand.
	a.Apply(vmm.Grant{CPUSeconds: d.CPUSeconds, ReadKB: d.ReadKB, CPUEfficiency: 1}, 2*time.Second)
	d = a.Demand(3 * time.Second)
	if d.CPUSeconds < 0.9 {
		t.Errorf("recovered CPU demand = %v, want ~1", d.CPUSeconds)
	}
}

func TestAppJitterIsDeterministicPerSeed(t *testing.T) {
	mk := func(seed int64) []float64 {
		a, err := newApp("x", appclass.CPU, Config{Seed: seed}, false, []Phase{
			{Name: "p", CPUWork: 1e9, CPURate: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for i := 0; i < 10; i++ {
			d := a.Demand(0)
			out = append(out, d.CPUSeconds)
			a.Apply(vmm.Grant{CPUSeconds: d.CPUSeconds, CPUEfficiency: 1}, 0)
		}
		return out
	}
	a1, a2, b := mk(1), mk(1), mk(2)
	var differs bool
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed produced different demands at %d", i)
		}
		if a1[i] != b[i] {
			differs = true
		}
	}
	if !differs {
		t.Error("different seeds produced identical jitter")
	}
}
