package workload

import (
	"fmt"
	"time"

	"repro/internal/appclass"
)

// NewEttcp models ettcp, the TCP/UDP throughput benchmark the paper uses
// to train the network class: a sustained bulk transfer to a peer node
// for the given duration (default ~300 s).
func NewEttcp(duration time.Duration, cfg Config) (*App, error) {
	if duration <= 0 {
		duration = 300 * time.Second
	}
	phases := []Phase{
		{
			Name:           "bulk-transfer",
			Duration:       duration,
			CPURate:        0.35,
			NetOutRateKB:   9000,
			NetInRateKB:    450, // ACK stream
			CPUSystemShare: 0.55,
			WorkingSetKB:   12 * 1024,
		},
	}
	return newApp(cfg.name("Ettcp"), appclass.Net, cfg, false, phases)
}

// NewEttcpServer models the receive side of ettcp on the peer VM.
func NewEttcpServer(duration time.Duration, cfg Config) (*App, error) {
	if duration <= 0 {
		duration = 300 * time.Second
	}
	phases := []Phase{
		{
			Name:           "bulk-receive",
			Duration:       duration,
			CPURate:        0.3,
			NetInRateKB:    9000,
			NetOutRateKB:   450,
			CPUSystemShare: 0.6,
			WorkingSetKB:   12 * 1024,
		},
	}
	return newApp(cfg.name("Ettcp-server"), appclass.Net, cfg, false, phases)
}

// NewNetPIPE models the NetPIPE ping-pong protocol sweep: message sizes
// grow exponentially, so early snapshots are nearly idle (latency-bound
// tiny messages) and later ones saturate the link — matching the paper's
// ~92% network / ~4% idle mix. totalKB sizes the whole sweep (default
// ~2.6 GB over ~370 s).
func NewNetPIPE(totalKB float64, cfg Config) (*App, error) {
	if totalKB == 0 {
		totalKB = 5.0e6
	}
	if totalKB < 0 {
		return nil, fmt.Errorf("workload: NetPIPE totalKB must be >= 0, got %v", totalKB)
	}
	// A short latency-bound warm-up with tiny messages (nearly idle),
	// then bandwidth-bound steps whose message sizes double. Step
	// volumes scale with their rates so each step contributes a similar
	// number of snapshots, matching the paper's ~92% network / ~4% idle
	// profile.
	phases := []Phase{{
		Name:           "latency-sweep",
		Duration:       15 * time.Second,
		NetOutRateKB:   40,
		NetInRateKB:    40,
		CPURate:        0.02,
		CPUSystemShare: 0.6,
		WorkingSetKB:   10 * 1024,
	}}
	rates := []float64{6000, 10000, 16000, 24000, 30000}
	var rateSum float64
	for _, r := range rates {
		rateSum += r
	}
	for i, r := range rates {
		vol := totalKB * r / rateSum
		// The protocol driver's CPU time is proportional to the bytes
		// moved; its rate tracks the link rate so compute and transfer
		// finish together and no low-CPU tail leaks out of the step.
		phases = append(phases, Phase{
			Name:           fmt.Sprintf("msgsize-step-%d", i),
			NetOutWorkKB:   vol / 2,
			NetInWorkKB:    vol / 2,
			CPUWork:        vol / (80 * 1024),
			CPURate:        1.15 * r / (80 * 1024),
			NetOutRateKB:   r / 2,
			NetInRateKB:    r / 2,
			CPUSystemShare: 0.6,
			WorkingSetKB:   10 * 1024,
		})
	}
	return newApp(cfg.name("NetPIPE"), appclass.Net, cfg, false, phases)
}

// NewNetPIPEServer models the echo side of NetPIPE on the peer VM. It
// mirrors the client's traffic for the given duration.
func NewNetPIPEServer(duration time.Duration, cfg Config) (*App, error) {
	if duration <= 0 {
		duration = 400 * time.Second
	}
	phases := []Phase{
		{
			Name:           "echo",
			Duration:       duration,
			CPURate:        0.25,
			NetInRateKB:    4500,
			NetOutRateKB:   4500,
			CPUSystemShare: 0.6,
			WorkingSetKB:   10 * 1024,
		},
	}
	return newApp(cfg.name("NetPIPE-server"), appclass.Net, cfg, false, phases)
}

// NewAutobench models autobench/httperf: an automated web-server load
// sweep holding the link busy with HTTP request/response traffic at
// stepped request rates (the paper measured it as 100% network).
func NewAutobench(cfg Config) (*App, error) {
	var phases []Phase
	for i := 0; i < 6; i++ {
		rate := 2500 + 1400*float64(i)
		phases = append(phases, Phase{
			Name:           fmt.Sprintf("rate-step-%d", i),
			Duration:       143 * time.Second,
			CPURate:        0.3,
			NetOutRateKB:   rate,
			NetInRateKB:    rate / 3,
			CPUSystemShare: 0.55,
			WorkingSetKB:   16 * 1024,
		})
	}
	return newApp(cfg.name("Autobench"), appclass.Net, cfg, false, phases)
}

// NewSftp models a 2 GB sftp upload: encrypt-and-send at link speed. The
// source file is read sequentially through the buffer cache, so after
// the first pass the profile is almost purely network (the paper
// measured ~98% network, ~2% I/O).
func NewSftp(fileKB float64, cfg Config) (*App, error) {
	if fileKB == 0 {
		fileKB = 2 * 1024 * 1024
	}
	if fileKB < 0 {
		return nil, fmt.Errorf("workload: sftp fileKB must be >= 0, got %v", fileKB)
	}
	phases := []Phase{
		{
			// The first chunk fills the cache: physical reads dominate
			// briefly.
			Name:           "warm-cache",
			ReadWorkKB:     fileKB / 24,
			NetOutWorkKB:   fileKB / 24,
			CPUWork:        3,
			CPURate:        0.4,
			ReadRateKB:     9000,
			NetOutRateKB:   9000,
			CPUSystemShare: 0.5,
			WorkingSetKB:   14 * 1024,
			DatasetKB:      120 * 1024,
		},
		{
			Name:           "encrypt-send",
			ReadWorkKB:     fileKB * 23 / 24,
			NetOutWorkKB:   fileKB * 23 / 24,
			CPUWork:        90,
			CPURate:        0.45,
			ReadRateKB:     9500,
			NetOutRateKB:   9500,
			CPUSystemShare: 0.5,
			WorkingSetKB:   14 * 1024,
			DatasetKB:      120 * 1024,
		},
	}
	return newApp(cfg.name("Sftp"), appclass.Net, cfg, false, phases)
}
