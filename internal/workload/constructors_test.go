package workload

import (
	"testing"
	"time"
)

// TestConstructorValidation covers every constructor's rejection paths.
func TestConstructorValidation(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*App, error)
	}{
		{"SPECseis unknown size", func() (*App, error) {
			return NewSPECseis("gigantic", Config{})
		}},
		{"CH3D zero work", func() (*App, error) {
			return NewCH3D(0, Config{})
		}},
		{"CH3D negative work", func() (*App, error) {
			return NewCH3D(-5, Config{})
		}},
		{"PostMark unknown mode", func() (*App, error) {
			return NewPostMark("cloud", 0, Config{})
		}},
		{"PostMark negative volume", func() (*App, error) {
			return NewPostMark(PostMarkLocal, -1, Config{})
		}},
		{"Pagebench zero memory", func() (*App, error) {
			return NewPagebench(0, time.Minute, Config{})
		}},
		{"NetPIPE negative volume", func() (*App, error) {
			return NewNetPIPE(-1, Config{})
		}},
		{"Sftp negative file", func() (*App, error) {
			return NewSftp(-1, Config{})
		}},
		{"custom invalid class", func() (*App, error) {
			return NewCustom("x", "warp", Config{}, false, []Phase{{Name: "p", CPUWork: 1, CPURate: 1}})
		}},
	}
	for _, c := range cases {
		if _, err := c.build(); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

// TestConstructorDefaults covers the zero-value conveniences.
func TestConstructorDefaults(t *testing.T) {
	builds := []struct {
		name  string
		build func() (*App, error)
	}{
		{"Ettcp default duration", func() (*App, error) { return NewEttcp(0, Config{}) }},
		{"EttcpServer default duration", func() (*App, error) { return NewEttcpServer(0, Config{}) }},
		{"NetPIPE default volume", func() (*App, error) { return NewNetPIPE(0, Config{}) }},
		{"NetPIPEServer default duration", func() (*App, error) { return NewNetPIPEServer(0, Config{}) }},
		{"Sftp default file", func() (*App, error) { return NewSftp(0, Config{}) }},
		{"PostMark default volume", func() (*App, error) { return NewPostMark(PostMarkLocal, 0, Config{}) }},
		{"Pagebench default duration", func() (*App, error) { return NewPagebench(256*1024, 0, Config{}) }},
		{"custom valid", func() (*App, error) {
			return NewCustom("svc", "net", Config{}, true, []Phase{{Name: "serve", Duration: time.Minute, NetOutRateKB: 100}})
		}},
	}
	for _, c := range builds {
		app, err := c.build()
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if app.Name() == "" || app.Done() {
			t.Errorf("%s: app = %q done=%v", c.name, app.Name(), app.Done())
		}
	}
}
