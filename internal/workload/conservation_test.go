package workload

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/vmm"
)

// TestWorkConservationUncontended: on an uncontended host, a finished
// application must have received exactly its declared total work (within
// one tick of slack per phase for the final partial grants).
func TestWorkConservationUncontended(t *testing.T) {
	apps := []struct {
		name    string
		build   func() (*App, error)
		cpuWork float64 // declared total CPU-seconds
	}{
		{
			"CH3D-120", func() (*App, error) {
				return NewCH3D(120, Config{Seed: 5, Jitter: -1})
			}, 121, // timestep loop + write-results phase
		},
		{
			"SimpleScalar", func() (*App, error) {
				return NewSimpleScalar(Config{Seed: 5, Jitter: -1})
			}, 305.5,
		},
	}
	for _, tc := range apps {
		app, err := tc.build()
		if err != nil {
			t.Fatal(err)
		}
		var gotCPU float64
		wrapped := &meteredJob{Job: app, onGrant: func(g vmm.Grant) {
			gotCPU += g.CPUSeconds * g.CPUEfficiency
		}}
		vm := vmm.NewVM(vmm.VMConfig{Name: "vm1", Seed: 5})
		vm.AddJob(wrapped)
		host := vmm.NewHost(vmm.HostConfig{Name: "h1"})
		if err := host.AddVM(vm); err != nil {
			t.Fatal(err)
		}
		for i := 0; !app.Done() && i < 100000; i++ {
			host.Tick(time.Duration(i) * time.Second)
		}
		if !app.Done() {
			t.Fatalf("%s did not finish", tc.name)
		}
		// Allow one tick of over-grant per phase boundary.
		if gotCPU < tc.cpuWork-0.5 || gotCPU > tc.cpuWork+3 {
			t.Errorf("%s consumed %.2f CPU-seconds, declared %.2f", tc.name, gotCPU, tc.cpuWork)
		}
	}
}

// meteredJob observes the grants delivered to an inner job.
type meteredJob struct {
	vmm.Job
	onGrant func(vmm.Grant)
}

func (m *meteredJob) Apply(g vmm.Grant, now time.Duration) {
	m.onGrant(g)
	m.Job.Apply(g, now)
}

// TestContentionNeverAcceleratesCompletion: adding a competing
// I/O-heavy job on the same host can only delay (never speed up) an
// application's completion, and the delay must be substantial when both
// contend for the disk.
func TestContentionNeverAcceleratesCompletion(t *testing.T) {
	elapsed := func(competing bool) int {
		host := vmm.NewHost(vmm.HostConfig{Name: "h1"})
		if competing {
			// A long-running I/O job, warmed past its setup phase so it
			// contends for the disk from the app's first tick.
			other, err := NewPostMark(PostMarkLocal, 8000*1024, Config{Name: "other", Seed: 10, Jitter: -1})
			if err != nil {
				t.Fatal(err)
			}
			vm2 := vmm.NewVM(vmm.VMConfig{Name: "vm2", Seed: 10})
			vm2.AddJob(other)
			if err := host.AddVM(vm2); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 300; i++ {
			host.Tick(time.Duration(i) * time.Second)
		}
		app, err := NewPostMark(PostMarkLocal, 400*1024, Config{Seed: 9, Jitter: -1})
		if err != nil {
			t.Fatal(err)
		}
		vm := vmm.NewVM(vmm.VMConfig{Name: "vm1", Seed: 9})
		vm.AddJob(app)
		if err := host.AddVM(vm); err != nil {
			t.Fatal(err)
		}
		i := 0
		for ; !app.Done() && i < 100000; i++ {
			host.Tick(time.Duration(300+i) * time.Second)
		}
		if !app.Done() {
			t.Fatal("app did not finish")
		}
		return i
	}
	solo := elapsed(false)
	contended := elapsed(true)
	if contended < solo {
		t.Errorf("contention accelerated completion: %d ticks vs %d solo", contended, solo)
	}
	if contended < solo*5/4 {
		t.Errorf("disk contention too weak: %d ticks vs %d solo", contended, solo)
	}
}

// TestAllRegistryAppsTerminateOrLoop: every registry entry either
// finishes within its MaxRun on an idle host or is an explicit looper.
func TestAllRegistryAppsTerminateOrLoop(t *testing.T) {
	for _, e := range append(TrainingSet(), TestSet()...) {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			app, err := e.Build(3)
			if err != nil {
				t.Fatal(err)
			}
			vm := vmm.NewVM(vmm.VMConfig{Name: "vm1", MemKB: e.VMMemKB, Seed: 3})
			vm.AddJob(app)
			host := vmm.NewHost(vmm.HostConfig{Name: "h1"})
			if err := host.AddVM(vm); err != nil {
				t.Fatal(err)
			}
			maxTicks := int(e.MaxRun / time.Second)
			for i := 0; !app.Done() && i < maxTicks; i++ {
				host.Tick(time.Duration(i) * time.Second)
			}
			if !app.Done() && e.Name != "Idle_train" {
				t.Errorf("%s still running after %v", e.Name, e.MaxRun)
			}
		})
	}
}

// TestDemandsAlwaysSane: fuzz every registry app's demand stream for
// non-negative, finite values.
func TestDemandsAlwaysSane(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, e := range append(TrainingSet(), TestSet()...) {
		app, err := e.Build(rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500 && !app.Done(); i++ {
			d := app.Demand(time.Duration(i) * time.Second)
			for name, v := range map[string]float64{
				"cpu": d.CPUSeconds, "sys": d.CPUSystemShare,
				"read": d.ReadKB, "write": d.WriteKB,
				"netin": d.NetInKB, "netout": d.NetOutKB,
				"ws": d.WorkingSetKB, "dataset": d.DatasetKB,
			} {
				if v < 0 || v != v {
					t.Fatalf("%s tick %d: %s demand = %v", e.Name, i, name, v)
				}
			}
			if d.CPUSystemShare > 1 {
				t.Fatalf("%s tick %d: system share %v > 1", e.Name, i, d.CPUSystemShare)
			}
			// Apply a random partial grant.
			frac := rng.Float64()
			app.Apply(vmm.Grant{
				CPUSeconds: d.CPUSeconds * frac, ReadKB: d.ReadKB * frac,
				WriteKB: d.WriteKB * frac, NetInKB: d.NetInKB * frac,
				NetOutKB: d.NetOutKB * frac, CPUEfficiency: 0.5 + 0.5*rng.Float64(),
			}, time.Duration(i)*time.Second)
		}
	}
}
