package workload

import (
	"fmt"

	"repro/internal/appclass"
)

// SPECseisSize selects the input data size for the SPECseis96 model.
type SPECseisSize string

// SPECseis96 data sizes used in the paper's experiments.
const (
	// SPECseisSmall is the "small" dataset (the Table 3 SPECseis96 C run
	// and the Figure 4/5 "S" job).
	SPECseisSmall SPECseisSize = "small"
	// SPECseisMedium is the "medium" dataset (the Table 3 SPECseis96 A
	// and B runs).
	SPECseisMedium SPECseisSize = "medium"
)

// NewSPECseis models SPECseis96, the seismic-processing SPEC HPC
// benchmark: long vectorized compute stages interleaved with passes over
// a seismic trace file. In a VM whose memory holds the trace file, the
// passes are served from the buffer cache and the application is purely
// CPU-intensive; in a memory-starved VM (the paper's 32 MB SPECseis96 B
// configuration) the same passes hit the disk and the working set pages,
// reproducing the paper's CPU/IO/paging class mix.
func NewSPECseis(size SPECseisSize, cfg Config) (*App, error) {
	var (
		cycles    int
		compute   float64 // CPU-seconds per cycle
		passKB    float64 // seismic trace volume re-read per cycle
		outKB     float64 // results appended per cycle
		wsKB      float64
		datasetKB float64
	)
	switch size {
	case SPECseisSmall:
		cycles, compute = 4, 90
		passKB, outKB = 24*1024, 1024
		wsKB, datasetKB = 20*1024, 48*1024
	case SPECseisMedium:
		cycles, compute = 490, 22
		passKB, outKB = 200*1024, 512
		wsKB, datasetKB = 21*1024, 180*1024
	default:
		return nil, fmt.Errorf("workload: unknown SPECseis size %q", size)
	}
	var phases []Phase
	for i := 0; i < cycles; i++ {
		phases = append(phases,
			Phase{
				Name:           fmt.Sprintf("compute-%d", i),
				CPUWork:        compute,
				CPURate:        1.0,
				CPUSystemShare: 0.03,
				WorkingSetKB:   wsKB,
				DatasetKB:      datasetKB,
			},
			Phase{
				Name:           fmt.Sprintf("trace-pass-%d", i),
				CPUWork:        compute * 0.8,
				ReadWorkKB:     passKB,
				WriteWorkKB:    outKB,
				CPURate:        0.95,
				ReadRateKB:     15 * 1024,
				WriteRateKB:    2 * 1024,
				CPUSystemShare: 0.12,
				WorkingSetKB:   wsKB,
				DatasetKB:      datasetKB,
			},
		)
	}
	return newApp(cfg.name("SPECseis96-"+string(size)), appclass.CPU, cfg, false, phases)
}

// NewCH3D models CH3D, the curvilinear-grid hydrodynamics solver: a
// single long CPU-bound stage with a small working set and negligible
// I/O. Work is the total CPU-seconds of the run (the paper's Table 4 run
// took 488 s standalone; its Table 3 profiling run about 225 s).
func NewCH3D(workSeconds float64, cfg Config) (*App, error) {
	if workSeconds <= 0 {
		return nil, fmt.Errorf("workload: CH3D work must be positive, got %v", workSeconds)
	}
	phases := []Phase{
		{
			Name:           "timestep-loop",
			CPUWork:        workSeconds,
			CPURate:        1.0,
			CPUSystemShare: 0.02,
			WorkingSetKB:   60 * 1024,
			DatasetKB:      20 * 1024,
		},
		{
			Name:           "write-results",
			CPUWork:        1,
			WriteWorkKB:    8 * 1024,
			CPURate:        0.5,
			WriteRateKB:    4 * 1024,
			CPUSystemShare: 0.3,
			WorkingSetKB:   60 * 1024,
		},
	}
	return newApp(cfg.name("CH3D"), appclass.CPU, cfg, false, phases)
}

// NewSimpleScalar models the SimpleScalar out-of-order processor
// simulator: pure CPU with a compact working set (the simulated
// machine state) and almost no I/O after loading the binary.
func NewSimpleScalar(cfg Config) (*App, error) {
	phases := []Phase{
		{
			Name:           "load-binary",
			ReadWorkKB:     4 * 1024,
			CPUWork:        0.5,
			CPURate:        0.4,
			ReadRateKB:     4 * 1024,
			CPUSystemShare: 0.3,
			WorkingSetKB:   30 * 1024,
			DatasetKB:      8 * 1024,
		},
		{
			Name:           "simulate",
			CPUWork:        305,
			CPURate:        1.0,
			CPUSystemShare: 0.02,
			WorkingSetKB:   80 * 1024,
			DatasetKB:      8 * 1024,
		},
	}
	return newApp(cfg.name("SimpleScalar"), appclass.CPU, cfg, false, phases)
}
