package workload

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/vmm"
)

// profileEntry runs an entry's application in a dedicated VM on an
// otherwise empty host and samples the expert metrics every 5 seconds,
// mimicking the paper's profiling setup.
func profileEntry(t *testing.T, e Entry, seed int64) (*metrics.Trace, time.Duration) {
	t.Helper()
	app, err := e.Build(seed)
	if err != nil {
		t.Fatalf("build %s: %v", e.Name, err)
	}
	cluster := vmm.NewCluster()
	host := vmm.NewHost(vmm.HostConfig{Name: "host1"})
	if err := cluster.AddHost(host); err != nil {
		t.Fatal(err)
	}
	vm := vmm.NewVM(vmm.VMConfig{Name: "vm1", MemKB: e.VMMemKB, Seed: seed})
	vm.AddJob(app)
	if err := host.AddVM(vm); err != nil {
		t.Fatal(err)
	}
	trace := metrics.NewTrace(metrics.ExpertSchema(), "vm1")
	cluster.Observe(func(now time.Duration) {
		if now%(5*time.Second) != 0 {
			return
		}
		snap, err := vm.Snapshot(metrics.ExpertSchema(), now)
		if err != nil {
			t.Fatalf("snapshot: %v", err)
		}
		if err := trace.Append(snap); err != nil {
			t.Fatalf("append: %v", err)
		}
	})
	if err := cluster.RunUntilAllDone(e.MaxRun); err != nil {
		// Looping jobs (idle) never finish; cap them at a fixed horizon.
		if !app.Done() && e.Expected == "idle" {
			return trace, cluster.Now()
		}
		t.Fatalf("run %s: %v", e.Name, err)
	}
	done, _ := cluster.CompletionTime(app.Name())
	return trace, done
}

// meanOf returns the mean of one metric across the trace.
func meanOf(t *testing.T, tr *metrics.Trace, name string) float64 {
	t.Helper()
	col, err := tr.Column(name)
	if err != nil {
		t.Fatal(err)
	}
	var s float64
	for _, v := range col {
		s += v
	}
	if len(col) == 0 {
		return 0
	}
	return s / float64(len(col))
}

func TestRegistryCoversTable2(t *testing.T) {
	if got := len(TrainingSet()); got != 5 {
		t.Errorf("training set has %d entries, want 5", got)
	}
	if got := len(TestSet()); got != 14 {
		t.Errorf("test set has %d entries, want 14 (Table 3 rows)", got)
	}
	seen := map[string]bool{}
	for _, e := range append(TrainingSet(), TestSet()...) {
		if seen[e.Name] {
			t.Errorf("duplicate registry name %q", e.Name)
		}
		seen[e.Name] = true
		if e.Build == nil || e.VMMemKB <= 0 || e.MaxRun <= 0 {
			t.Errorf("entry %q incompletely specified", e.Name)
		}
	}
}

func TestFind(t *testing.T) {
	e, err := Find("PostMark")
	if err != nil || e.Name != "PostMark" {
		t.Errorf("Find(PostMark) = (%v,%v)", e.Name, err)
	}
	if _, err := Find("nope"); err == nil {
		t.Error("Find(nope): want error")
	}
	// 5 training + 14 Table-3 + 2 extended (phase/open-set) entries.
	if len(Names()) != 21 {
		t.Errorf("Names() = %d entries, want 21", len(Names()))
	}
}

func TestCPUTrainingRunSignature(t *testing.T) {
	e, err := Find("SPECseis96_train")
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := profileEntry(t, e, 1)
	if tr.Len() < 20 {
		t.Fatalf("only %d samples", tr.Len())
	}
	cpu := meanOf(t, tr, metrics.CPUUser) + meanOf(t, tr, metrics.CPUSystem)
	if cpu < 70 {
		t.Errorf("mean CPU = %v%%, want CPU-dominant", cpu)
	}
	if io := meanOf(t, tr, metrics.IOBI); io > 300 {
		t.Errorf("mean io_bi = %v, want small for the CPU training run", io)
	}
}

func TestIOTrainingRunSignature(t *testing.T) {
	e, err := Find("PostMark_train")
	if err != nil {
		t.Fatal(err)
	}
	tr, elapsed := profileEntry(t, e, 1)
	if io := meanOf(t, tr, metrics.IOBI) + meanOf(t, tr, metrics.IOBO); io < 2000 {
		t.Errorf("mean io traffic = %v blocks/s, want I/O-dominant", io)
	}
	if swap := meanOf(t, tr, metrics.SwapIn); swap > 200 {
		t.Errorf("mean swap_in = %v, want minimal paging", swap)
	}
	// The paper's PostMark profile is ~52 samples (~260 s).
	if elapsed < 150*time.Second || elapsed > 600*time.Second {
		t.Errorf("PostMark elapsed %v, want a few hundred seconds", elapsed)
	}
}

func TestPagingTrainingRunSignature(t *testing.T) {
	e, err := Find("PageBench_train")
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := profileEntry(t, e, 1)
	if swap := meanOf(t, tr, metrics.SwapIn) + meanOf(t, tr, metrics.SwapOut); swap < 2000 {
		t.Errorf("mean swap traffic = %v kB/s, want sustained paging", swap)
	}
}

func TestNetworkTrainingRunSignature(t *testing.T) {
	e, err := Find("Ettcp_train")
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := profileEntry(t, e, 1)
	if out := meanOf(t, tr, metrics.BytesOut); out < 4e6 {
		t.Errorf("mean bytes_out = %v, want several MB/s", out)
	}
	if io := meanOf(t, tr, metrics.IOBI); io > 200 {
		t.Errorf("mean io_bi = %v, want near zero", io)
	}
}

func TestIdleTrainingRunSignature(t *testing.T) {
	e, err := Find("Idle_train")
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := profileEntry(t, e, 1)
	if cpu := meanOf(t, tr, metrics.CPUUser); cpu > 3 {
		t.Errorf("idle mean cpu_user = %v, want ~0", cpu)
	}
	if out := meanOf(t, tr, metrics.BytesOut); out > 5e3 {
		t.Errorf("idle mean bytes_out = %v, want daemon noise", out)
	}
}

func TestPostMarkNFSMovesTrafficToNetwork(t *testing.T) {
	local, err := Find("PostMark")
	if err != nil {
		t.Fatal(err)
	}
	nfs, err := Find("PostMark_NFS")
	if err != nil {
		t.Fatal(err)
	}
	ltr, _ := profileEntry(t, local, 1)
	ntr, _ := profileEntry(t, nfs, 1)
	if lNet := meanOf(t, ltr, metrics.BytesOut); lNet > 1e6 {
		t.Errorf("local PostMark bytes_out = %v, want low", lNet)
	}
	if nNet := meanOf(t, ntr, metrics.BytesOut); nNet < 2e6 {
		t.Errorf("NFS PostMark bytes_out = %v, want network-dominant", nNet)
	}
	if nIO := meanOf(t, ntr, metrics.IOBI); nIO > 500 {
		t.Errorf("NFS PostMark io_bi = %v, want near zero", nIO)
	}
}

func TestSPECseisBPagesAndHitsDisk(t *testing.T) {
	b, err := Find("SPECseis96_B")
	if err != nil {
		t.Fatal(err)
	}
	tr, elapsedB := profileEntry(t, b, 1)
	if swap := meanOf(t, tr, metrics.SwapIn); swap <= 0 {
		t.Error("SPECseis96_B shows no paging in a 32MB VM")
	}
	if io := meanOf(t, tr, metrics.IOBI); io < 500 {
		t.Errorf("SPECseis96_B mean io_bi = %v, want heavy physical reads", io)
	}
	a, err := Find("SPECseis96_A")
	if err != nil {
		t.Fatal(err)
	}
	atr, elapsedA := profileEntry(t, a, 1)
	if io := meanOf(t, atr, metrics.IOBI); io > 400 {
		t.Errorf("SPECseis96_A mean io_bi = %v, want mostly cached", io)
	}
	// The paper: B took ~1.46x longer than A (291min -> 427min).
	ratio := elapsedB.Seconds() / elapsedA.Seconds()
	if ratio < 1.2 || ratio > 2.5 {
		t.Errorf("B/A elapsed ratio = %.2f (A=%v B=%v), want memory starvation to stretch the run", ratio, elapsedA, elapsedB)
	}
}

func TestInteractiveAppsHaveMixedPhases(t *testing.T) {
	e, err := Find("VMD")
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := profileEntry(t, e, 1)
	var idleish, ioish, netish int
	for i := 0; i < tr.Len(); i++ {
		s := tr.At(i)
		get := func(name string) float64 {
			j, _ := tr.Schema().Index(name)
			return s.Values[j]
		}
		switch {
		case get(metrics.IOBI) > 1000:
			ioish++
		case get(metrics.BytesOut) > 1e6:
			netish++
		case get(metrics.CPUUser) < 10:
			idleish++
		}
	}
	if idleish == 0 || ioish == 0 || netish == 0 {
		t.Errorf("VMD phases: idle=%d io=%d net=%d, want all three represented", idleish, ioish, netish)
	}
}

func TestApproximateRunDurations(t *testing.T) {
	// Durations should be in the ballpark of the paper's sample counts
	// (# samples x 5s). Wide tolerances: shape, not exact numbers.
	cases := []struct {
		name     string
		min, max time.Duration
	}{
		{"SPECseis96_C", 300 * time.Second, 1200 * time.Second}, // paper: 112 samples
		{"CH3D", 120 * time.Second, 500 * time.Second},          // paper: 45
		{"SimpleScalar", 200 * time.Second, 600 * time.Second},  // paper: 62
		{"PostMark", 150 * time.Second, 600 * time.Second},      // paper: 52
		{"NetPIPE", 120 * time.Second, 800 * time.Second},       // paper: 74
		{"Sftp", 150 * time.Second, 500 * time.Second},          // paper: 46
		{"XSpim", 30 * time.Second, 90 * time.Second},           // paper: 9
	}
	for _, c := range cases {
		e, err := Find(c.name)
		if err != nil {
			t.Fatal(err)
		}
		_, elapsed := profileEntry(t, e, 1)
		if elapsed < c.min || elapsed > c.max {
			t.Errorf("%s elapsed %v, want in [%v,%v]", c.name, elapsed, c.min, c.max)
		}
	}
}
