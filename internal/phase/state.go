package phase

import (
	"fmt"
	"time"

	"repro/internal/appclass"
)

// AccumState is the serialized form of one phase accumulator. Sums and
// counts — not fractions and means — are stored so a restored segmenter
// renders bit-identical phases.
type AccumState struct {
	StartNS   int64                  `json:"start_ns"`
	EndNS     int64                  `json:"end_ns"`
	Snapshots int                    `json:"snapshots"`
	Counts    map[appclass.Class]int `json:"counts"`
	FeatSum   []float64              `json:"feat_sum"`
}

// EntryState is one serialized ring entry.
type EntryState struct {
	AtNS  int64          `json:"at_ns"`
	Class appclass.Class `json:"class"`
	Feat  []float64      `json:"feat"`
}

// SegmenterState is the full serialized segmenter, embedded in
// classify.OnlineState so phase detection survives checkpoint/restore.
type SegmenterState struct {
	Window    int     `json:"window"`
	MinLen    int     `json:"min_len"`
	Threshold float64 `json:"threshold"`
	Dims      int     `json:"dims,omitempty"`

	// Ring entries oldest first (head-relative order, so restore does
	// not need the head index).
	Ring []EntryState `json:"ring,omitempty"`

	Closed []AccumState `json:"closed,omitempty"`
	Cur    *AccumState  `json:"cur,omitempty"`
	Total  int          `json:"total"`

	// Peak-detection state (see Segmenter.armed).
	Armed    bool    `json:"armed,omitempty"`
	LastDist float64 `json:"last_dist,omitempty"`
}

func exportAccum(a *accum) AccumState {
	st := AccumState{
		StartNS:   int64(a.start),
		EndNS:     int64(a.end),
		Snapshots: a.n,
		Counts:    make(map[appclass.Class]int, len(a.counts)),
		FeatSum:   append([]float64(nil), a.featSum...),
	}
	for c, n := range a.counts {
		st.Counts[c] = n
	}
	return st
}

func restoreAccum(st AccumState, q int) (accum, error) {
	if len(st.FeatSum) != q {
		return accum{}, fmt.Errorf("phase: accumulator feature sum has %d dims, segmenter has %d", len(st.FeatSum), q)
	}
	total := 0
	for _, n := range st.Counts {
		if n <= 0 {
			return accum{}, fmt.Errorf("phase: accumulator has non-positive class count %d", n)
		}
		total += n
	}
	if total != st.Snapshots {
		return accum{}, fmt.Errorf("phase: accumulator counts sum to %d, snapshots say %d", total, st.Snapshots)
	}
	a := accum{
		start:   time.Duration(st.StartNS),
		end:     time.Duration(st.EndNS),
		n:       st.Snapshots,
		counts:  make(map[appclass.Class]int, len(st.Counts)),
		featSum: append([]float64(nil), st.FeatSum...),
	}
	for c, n := range st.Counts {
		a.counts[c] = n
	}
	return a, nil
}

// ExportState snapshots the segmenter for checkpointing. The result
// shares no memory with the segmenter.
func (s *Segmenter) ExportState() SegmenterState {
	st := SegmenterState{
		Window:    s.cfg.Window,
		MinLen:    s.cfg.MinLen,
		Threshold: s.cfg.Threshold,
		Dims:      s.q,
		Total:     s.total,
		Armed:     s.armed,
		LastDist:  s.lastDist,
	}
	if s.q == 0 {
		return st
	}
	st.Ring = make([]EntryState, 0, s.n)
	for i := 0; i < s.n; i++ {
		e := &s.ring[(s.head+i)%len(s.ring)]
		st.Ring = append(st.Ring, EntryState{
			AtNS:  int64(e.at),
			Class: e.class,
			Feat:  append([]float64(nil), e.feat...),
		})
	}
	st.Closed = make([]AccumState, 0, len(s.closed))
	for i := range s.closed {
		st.Closed = append(st.Closed, exportAccum(&s.closed[i]))
	}
	if s.cur.n > 0 {
		cur := exportAccum(&s.cur)
		st.Cur = &cur
	}
	return st
}

// RestoreSegmenter rebuilds a segmenter from an exported state. The
// restored segmenter continues the stream exactly where the exported
// one stopped: identical phase lists, identical future boundaries.
func RestoreSegmenter(st SegmenterState) (*Segmenter, error) {
	cfg := Config{Window: st.Window, MinLen: st.MinLen, Threshold: st.Threshold}.withDefaults()
	s := NewSegmenter(cfg)
	if st.Dims == 0 {
		if st.Total != 0 || len(st.Ring) != 0 || len(st.Closed) != 0 || st.Cur != nil {
			return nil, fmt.Errorf("phase: state has observations but no feature dimensionality")
		}
		return s, nil
	}
	if st.Dims < 0 {
		return nil, fmt.Errorf("phase: negative feature dimensionality %d", st.Dims)
	}
	s.init(st.Dims)
	if len(st.Ring) > len(s.ring) {
		return nil, fmt.Errorf("phase: state buffers %d ring entries, window %d holds at most %d",
			len(st.Ring), cfg.Window, len(s.ring))
	}
	w := cfg.Window
	for i, es := range st.Ring {
		if len(es.Feat) != st.Dims {
			return nil, fmt.Errorf("phase: ring entry %d has %d dims, state says %d", i, len(es.Feat), st.Dims)
		}
		e := &s.ring[i]
		e.at = time.Duration(es.AtNS)
		e.class = es.Class
		copy(e.feat, es.Feat)
		if i < w {
			for j, v := range es.Feat {
				s.sumOld[j] += v
			}
		} else {
			for j, v := range es.Feat {
				s.sumNew[j] += v
			}
		}
	}
	s.head = 0
	s.n = len(st.Ring)
	s.closed = make([]accum, 0, len(st.Closed))
	var err error
	for i, as := range st.Closed {
		var a accum
		if a, err = restoreAccum(as, st.Dims); err != nil {
			return nil, fmt.Errorf("phase: closed phase %d: %w", i, err)
		}
		s.closed = append(s.closed, a)
	}
	if st.Cur != nil {
		if s.cur, err = restoreAccum(*st.Cur, st.Dims); err != nil {
			return nil, fmt.Errorf("phase: open phase: %w", err)
		}
	}
	// Cross-check: closed + open phases must account for every snapshot.
	sum := s.cur.n
	for i := range s.closed {
		sum += s.closed[i].n
	}
	if sum != st.Total {
		return nil, fmt.Errorf("phase: phases hold %d snapshots, total says %d", sum, st.Total)
	}
	s.total = st.Total
	s.armed = st.Armed
	s.lastDist = st.LastDist
	return s, nil
}
