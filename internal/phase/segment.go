// Package phase implements online phase segmentation and execution
// fingerprints on top of the classification center. The paper collapses
// a whole run into one majority-vote label, but its Table 3 traces show
// applications moving through distinct CPU/IO/network phases; this
// package recovers that per-phase signal while the run is still live: a
// change-point detector over the 2-D fused feature stream splits the
// run into phases, each phase carries its own class composition and
// feature centroid, and a finalized run's phase sequence canonicalizes
// into a fingerprint that can be matched against prior runs so a
// returning application is recognized across runs.
package phase

import (
	"fmt"
	"math"
	"time"

	"repro/internal/appclass"
)

// Config parameterizes the online segmenter. The zero value selects the
// defaults below.
type Config struct {
	// Window is the half-window width W in snapshots: the detector
	// compares the mean feature vector of the W most recent snapshots
	// against the mean of the W before them and declares a boundary
	// between the halves when the means drift apart by more than
	// Threshold. Detection latency is therefore about W snapshots, and a
	// boundary is placed at most W snapshots from the true change point.
	// Default 8.
	Window int
	// MinLen is the minimum number of snapshots a closed phase may keep
	// (boundaries that would leave a shorter phase are suppressed).
	// Default 5.
	MinLen int
	// Threshold is the Euclidean distance between the two half-window
	// means that declares a change point, in feature-space units (the
	// PCA feature space is z-score derived, so class clusters sit O(1)
	// apart; see docs/phases.md for calibration guidance). Default 1.0.
	Threshold float64
}

// Segmentation defaults.
const (
	DefaultWindow    = 8
	DefaultMinLen    = 5
	DefaultThreshold = 1.0
)

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.MinLen <= 0 {
		c.MinLen = DefaultMinLen
	}
	if c.Threshold <= 0 {
		c.Threshold = DefaultThreshold
	}
	return c
}

// Phase is one detected execution phase: a maximal stretch of the run
// between two change points, described by the snapshots inside it.
type Phase struct {
	// Class is the phase's majority snapshot class.
	Class appclass.Class `json:"class"`
	// Start and End bound the phase in snapshot time (End is the time
	// of the phase's last snapshot so far).
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
	// Snapshots is the number of snapshots in the phase.
	Snapshots int `json:"snapshots"`
	// Composition maps each class to its fraction of the phase's
	// snapshots.
	Composition map[appclass.Class]float64 `json:"composition,omitempty"`
	// Centroid is the mean fused feature vector of the phase — the
	// phase's position in the classifier's PCA feature space.
	Centroid []float64 `json:"centroid,omitempty"`
	// Open marks the still-accumulating final phase of a live session.
	Open bool `json:"open,omitempty"`
}

// Duration returns the phase's time span.
func (p Phase) Duration() time.Duration { return p.End - p.Start }

// accum is the running state of one phase under construction: class
// counts and feature sums rather than fractions and means, so export,
// restore, and late rendering are all bit-exact.
type accum struct {
	start, end time.Duration
	n          int
	counts     map[appclass.Class]int
	featSum    []float64
}

func newAccum(q int) accum {
	return accum{counts: make(map[appclass.Class]int, 5), featSum: make([]float64, q)}
}

func (a *accum) add(at time.Duration, class appclass.Class, feat []float64) {
	if a.n == 0 {
		a.start = at
	}
	a.n++
	a.end = at
	a.counts[class]++
	for i, v := range feat {
		a.featSum[i] += v
	}
}

func (a *accum) remove(at time.Duration, class appclass.Class, feat []float64) {
	a.n--
	a.counts[class]--
	if a.counts[class] == 0 {
		delete(a.counts, class)
	}
	for i, v := range feat {
		a.featSum[i] -= v
	}
}

// render converts the accumulator into an immutable Phase.
func (a *accum) render(open bool) Phase {
	p := Phase{
		Start:     a.start,
		End:       a.end,
		Snapshots: a.n,
		Open:      open,
	}
	if a.n == 0 {
		return p
	}
	p.Composition = make(map[appclass.Class]float64, len(a.counts))
	bestN := -1
	for c, n := range a.counts {
		p.Composition[c] = float64(n) / float64(a.n)
		if n > bestN || (n == bestN && c < p.Class) {
			p.Class, bestN = c, n
		}
	}
	p.Centroid = make([]float64, len(a.featSum))
	for i, s := range a.featSum {
		p.Centroid[i] = s / float64(a.n)
	}
	return p
}

// entry is one ring-buffered snapshot the detector still needs: its
// time, class, and fused feature vector.
type entry struct {
	at    time.Duration
	class appclass.Class
	feat  []float64
}

// Segmenter is an online change-point detector over a per-snapshot
// feature stream. Observe is the hot path: it updates two sliding
// half-window mean accumulators and the open phase in O(q) time with no
// steady-state allocation (the ring buffer and feature slices are
// preallocated on first use; closing a phase allocates its accumulator,
// amortized over at least MinLen snapshots).
//
// A Segmenter is not safe for concurrent use; callers hold whatever
// lock guards the classification stream (classify.Online embeds one
// under its own single-writer discipline).
type Segmenter struct {
	cfg Config
	q   int // feature dimensionality, fixed by the first Observe

	// ring holds the 2W most recent snapshots, oldest first at
	// (head+0)%len: the newer half is the candidate new phase, the older
	// half the tail of the current one.
	ring []entry
	head int // index of the oldest entry
	n    int // entries currently buffered (≤ 2W)

	// sumOld and sumNew are the feature sums of the older and newer
	// half-windows, maintained incrementally as entries shift between
	// halves.
	sumOld, sumNew []float64

	closed []accum
	cur    accum

	// armed and lastDist implement peak detection: once the half-window
	// mean distance crosses the threshold the detector arms, then splits
	// when the distance stops rising — the point where the two halves
	// straddle the change most cleanly, instead of the first crossing
	// (where the newer half still mixes both regimes).
	armed    bool
	lastDist float64

	// total counts every snapshot ever observed.
	total int
}

// NewSegmenter builds a segmenter with cfg (zero fields take defaults).
func NewSegmenter(cfg Config) *Segmenter {
	return &Segmenter{cfg: cfg.withDefaults()}
}

// Config returns the effective configuration.
func (s *Segmenter) Config() Config { return s.cfg }

// init sizes the ring and accumulators for q-dimensional features.
func (s *Segmenter) init(q int) {
	s.q = q
	w := s.cfg.Window
	s.ring = make([]entry, 2*w)
	for i := range s.ring {
		s.ring[i].feat = make([]float64, q)
	}
	s.sumOld = make([]float64, q)
	s.sumNew = make([]float64, q)
	s.cur = newAccum(q)
}

// Observe feeds one classified snapshot and its fused feature vector
// into the detector. Snapshots must arrive in time order; feat's length
// must stay constant across calls (its contents are copied).
func (s *Segmenter) Observe(at time.Duration, class appclass.Class, feat []float64) error {
	if s.q == 0 {
		if len(feat) == 0 {
			return fmt.Errorf("phase: empty feature vector")
		}
		s.init(len(feat))
	}
	if len(feat) != s.q {
		return fmt.Errorf("phase: feature vector has %d dims, stream has %d", len(feat), s.q)
	}
	w := s.cfg.Window

	// Shift the ring: the entry leaving the newer half joins the older
	// half; the entry leaving the older half (the overwritten oldest)
	// drops out entirely.
	if s.n == 2*w {
		oldest := &s.ring[s.head]
		mid := &s.ring[(s.head+w)%len(s.ring)]
		for i := 0; i < s.q; i++ {
			s.sumOld[i] += mid.feat[i] - oldest.feat[i]
			s.sumNew[i] += feat[i] - mid.feat[i]
		}
		oldest.at = at
		oldest.class = class
		copy(oldest.feat, feat)
		s.head = (s.head + 1) % len(s.ring)
	} else {
		e := &s.ring[(s.head+s.n)%len(s.ring)]
		e.at = at
		e.class = class
		copy(e.feat, feat)
		s.n++
		if s.n <= w {
			// Still filling the older half.
			for i := 0; i < s.q; i++ {
				s.sumOld[i] += feat[i]
			}
		} else {
			for i := 0; i < s.q; i++ {
				s.sumNew[i] += feat[i]
			}
		}
	}
	s.cur.add(at, class, feat)
	s.total++
	if s.n < 2*w {
		return nil
	}

	// Boundary test: both halves must lie inside the current phase (a
	// fresh phase needs 2W snapshots before the detector re-arms), and
	// the split must leave the closing phase at least MinLen snapshots.
	if s.cur.n < 2*w || s.cur.n-w < s.cfg.MinLen {
		s.armed = false
		return nil
	}
	var d2 float64
	for i := 0; i < s.q; i++ {
		diff := (s.sumNew[i] - s.sumOld[i]) / float64(w)
		d2 += diff * diff
	}
	dist := math.Sqrt(d2)
	switch {
	case !s.armed:
		if dist > s.cfg.Threshold {
			s.armed = true
			s.lastDist = dist
		}
	case dist >= s.lastDist:
		// Still rising toward the clean straddle; keep waiting.
		s.lastDist = dist
	default:
		s.armed = false
		s.split()
	}
	return nil
}

// split closes the current phase at the half-window boundary: the W
// newest snapshots move out of the closing phase and seed the next one.
func (s *Segmenter) split() {
	w := s.cfg.Window
	next := newAccum(s.q)
	for i := 0; i < w; i++ {
		e := &s.ring[(s.head+w+i)%len(s.ring)]
		s.cur.remove(e.at, e.class, e.feat)
		next.add(e.at, e.class, e.feat)
	}
	// The closing phase now ends at its newest remaining snapshot (the
	// last entry of the older half), not at the transferred ones.
	s.cur.end = s.ring[(s.head+w-1)%len(s.ring)].at
	s.closed = append(s.closed, s.cur)
	s.cur = next
}

// Phases returns the detected phase list, oldest first; the last entry
// is the still-open phase (marked Open) when any snapshots have been
// observed. The result is a fresh copy safe to retain.
func (s *Segmenter) Phases() []Phase {
	out := make([]Phase, 0, len(s.closed)+1)
	for i := range s.closed {
		out = append(out, s.closed[i].render(false))
	}
	if s.cur.n > 0 {
		out = append(out, s.cur.render(true))
	}
	return out
}

// Count returns how many phases the stream currently spans (closed
// phases plus the open one).
func (s *Segmenter) Count() int {
	n := len(s.closed)
	if s.cur.n > 0 {
		n++
	}
	return n
}

// Total returns the number of snapshots observed.
func (s *Segmenter) Total() int { return s.total }
