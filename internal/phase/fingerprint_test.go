package phase

import (
	"math"
	"testing"
	"time"

	"repro/internal/appclass"
)

func mkPhase(class appclass.Class, start, end time.Duration, centroid ...float64) Phase {
	return Phase{
		Class:     class,
		Start:     start,
		End:       end,
		Snapshots: int(end-start)/int(time.Second) + 1,
		Centroid:  centroid,
	}
}

func TestNewFingerprintCanonicalizes(t *testing.T) {
	// Adjacent same-class phases merge; the sliver (1 s of a 101 s run
	// < 2%) drops; fractions renormalize to 1.
	phases := []Phase{
		mkPhase(appclass.CPU, 0, 30*time.Second, 2, 0),
		mkPhase(appclass.CPU, 30*time.Second, 60*time.Second, 2.2, 0),
		mkPhase(appclass.IO, 60*time.Second, 61*time.Second, -2, 1), // sliver
		mkPhase(appclass.Net, 61*time.Second, 101*time.Second, 0, -2),
	}
	fp := NewFingerprint(phases)
	if len(fp.Phases) != 2 {
		t.Fatalf("got %d canonical phases, want 2: %s", len(fp.Phases), fp)
	}
	if fp.Phases[0].Class != appclass.CPU || fp.Phases[1].Class != appclass.Net {
		t.Fatalf("classes = %s, want cpu then network", fp)
	}
	var sum float64
	for _, p := range fp.Phases {
		sum += p.DurFrac
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum to %v, want 1", sum)
	}
	// Merged centroid is the duration-weighted mean of 2 and 2.2.
	if c := fp.Phases[0].Centroid[0]; math.Abs(c-2.1) > 1e-9 {
		t.Errorf("merged centroid x = %v, want 2.1", c)
	}
}

func TestNewFingerprintDropRemerges(t *testing.T) {
	// Dropping the middle sliver makes the flanking CPU phases adjacent;
	// they must merge into one.
	phases := []Phase{
		mkPhase(appclass.CPU, 0, 50*time.Second, 2, 0),
		mkPhase(appclass.IO, 50*time.Second, 51*time.Second, -2, 1),
		mkPhase(appclass.CPU, 51*time.Second, 100*time.Second, 2, 0),
	}
	fp := NewFingerprint(phases)
	if len(fp.Phases) != 1 || fp.Phases[0].Class != appclass.CPU {
		t.Fatalf("fingerprint = %s, want single cpu phase", fp)
	}
}

func TestNewFingerprintEmpty(t *testing.T) {
	if fp := NewFingerprint(nil); !fp.Empty() {
		t.Errorf("fingerprint of no phases = %s, want empty", fp)
	}
	if fp := NewFingerprint([]Phase{{Class: appclass.CPU}}); !fp.Empty() {
		t.Errorf("fingerprint of zero-snapshot phase = %s, want empty", fp)
	}
}

func TestSimilarityIdentical(t *testing.T) {
	fp := NewFingerprint([]Phase{
		mkPhase(appclass.CPU, 0, 60*time.Second, 2, 0),
		mkPhase(appclass.IO, 60*time.Second, 100*time.Second, -2, 1),
	})
	if s := Similarity(fp, fp); math.Abs(s-1) > 1e-9 {
		t.Errorf("self-similarity = %v, want 1", s)
	}
}

func TestSimilarityDisjointClasses(t *testing.T) {
	a := NewFingerprint([]Phase{mkPhase(appclass.CPU, 0, 100*time.Second, 2, 0)})
	b := NewFingerprint([]Phase{mkPhase(appclass.Net, 0, 100*time.Second, 0, -2)})
	if s := Similarity(a, b); s != 0 {
		t.Errorf("similarity of disjoint classes = %v, want 0", s)
	}
}

func TestSimilaritySymmetricAndBounded(t *testing.T) {
	a := NewFingerprint([]Phase{
		mkPhase(appclass.CPU, 0, 60*time.Second, 2, 0),
		mkPhase(appclass.IO, 60*time.Second, 100*time.Second, -2, 1),
	})
	b := NewFingerprint([]Phase{
		mkPhase(appclass.CPU, 0, 30*time.Second, 2.1, 0.1),
		mkPhase(appclass.IO, 30*time.Second, 100*time.Second, -1.9, 0.9),
	})
	sab, sba := Similarity(a, b), Similarity(b, a)
	if math.Abs(sab-sba) > 1e-12 {
		t.Errorf("asymmetric: %v vs %v", sab, sba)
	}
	if sab <= 0 || sab >= 1 {
		t.Errorf("similar-but-not-identical score = %v, want in (0, 1)", sab)
	}
}

func TestSimilarityCentroidDistanceShrinksScore(t *testing.T) {
	a := NewFingerprint([]Phase{mkPhase(appclass.CPU, 0, 100*time.Second, 0, 0)})
	near := NewFingerprint([]Phase{mkPhase(appclass.CPU, 0, 100*time.Second, 0.1, 0)})
	far := NewFingerprint([]Phase{mkPhase(appclass.CPU, 0, 100*time.Second, 5, 0)})
	if sn, sf := Similarity(a, near), Similarity(a, far); sn <= sf {
		t.Errorf("near score %v not above far score %v", sn, sf)
	}
}

func TestSimilarityRespectsOrder(t *testing.T) {
	ab := NewFingerprint([]Phase{
		mkPhase(appclass.CPU, 0, 50*time.Second, 2, 0),
		mkPhase(appclass.IO, 50*time.Second, 100*time.Second, -2, 1),
	})
	ba := NewFingerprint([]Phase{
		mkPhase(appclass.IO, 0, 50*time.Second, -2, 1),
		mkPhase(appclass.CPU, 50*time.Second, 100*time.Second, 2, 0),
	})
	// The alignment is order-preserving: CPU→IO vs IO→CPU can match at
	// most one of the two phases.
	if s := Similarity(ab, ba); s > 0.55 {
		t.Errorf("reversed sequence scores %v, want ≤ ~0.5", s)
	}
	if s := Similarity(ab, ab); s < 0.99 {
		t.Errorf("identical sequence scores %v, want ≈ 1", s)
	}
}

func TestBestMatch(t *testing.T) {
	mk := func(classes ...appclass.Class) Fingerprint {
		var phases []Phase
		for i, c := range classes {
			start := time.Duration(i*50) * time.Second
			phases = append(phases, mkPhase(c, start, start+50*time.Second, float64(i), 0))
		}
		return NewFingerprint(phases)
	}
	dict := map[string]Fingerprint{
		"cpu-only": mk(appclass.CPU),
		"cpu-io":   mk(appclass.CPU, appclass.IO),
		"net-only": mk(appclass.Net),
	}
	m, ok := BestMatch(mk(appclass.CPU, appclass.IO), dict)
	if !ok || m.App != "cpu-io" {
		t.Fatalf("BestMatch = %+v ok=%v, want cpu-io", m, ok)
	}
	if m.Score < DefaultMatchThreshold {
		t.Errorf("matching app scored %v, below default threshold %v", m.Score, DefaultMatchThreshold)
	}

	if _, ok := BestMatch(Fingerprint{}, dict); ok {
		t.Error("empty fingerprint matched")
	}
	if _, ok := BestMatch(mk(appclass.CPU), nil); ok {
		t.Error("empty dictionary matched")
	}
}

func TestBestMatchDeterministicTieBreak(t *testing.T) {
	fp := NewFingerprint([]Phase{mkPhase(appclass.CPU, 0, 100*time.Second, 2, 0)})
	dict := map[string]Fingerprint{"b-app": fp, "a-app": fp, "c-app": fp}
	for i := 0; i < 20; i++ {
		m, ok := BestMatch(fp, dict)
		if !ok || m.App != "a-app" {
			t.Fatalf("iteration %d: tie broke to %q, want a-app", i, m.App)
		}
	}
}
