package phase

import (
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/appclass"
)

// feed pushes n synthetic snapshots of a given class around a feature
// center, starting at snapshot index start (1 s per snapshot), with a
// tiny deterministic wiggle so windows are not exactly constant.
func feed(t *testing.T, s *Segmenter, start, n int, class appclass.Class, center [2]float64) {
	t.Helper()
	for i := 0; i < n; i++ {
		wiggle := 0.01 * math.Sin(float64(start+i))
		feat := []float64{center[0] + wiggle, center[1] - wiggle}
		at := time.Duration(start+i) * time.Second
		if err := s.Observe(at, class, feat); err != nil {
			t.Fatalf("Observe(%d): %v", start+i, err)
		}
	}
}

func TestSegmenterSingleHomogeneousPhase(t *testing.T) {
	s := NewSegmenter(Config{})
	feed(t, s, 0, 100, appclass.CPU, [2]float64{2, 0})
	phases := s.Phases()
	if len(phases) != 1 {
		t.Fatalf("homogeneous stream produced %d phases, want 1: %+v", len(phases), phases)
	}
	p := phases[0]
	if p.Class != appclass.CPU || !p.Open || p.Snapshots != 100 {
		t.Errorf("phase = %+v, want open CPU phase with 100 snapshots", p)
	}
	if math.Abs(p.Centroid[0]-2) > 0.02 || math.Abs(p.Centroid[1]) > 0.02 {
		t.Errorf("centroid = %v, want ≈ [2 0]", p.Centroid)
	}
	if frac := p.Composition[appclass.CPU]; frac != 1 {
		t.Errorf("CPU composition = %v, want 1", frac)
	}
}

func TestSegmenterRecoversPlantedBoundary(t *testing.T) {
	const w = 8
	s := NewSegmenter(Config{Window: w, MinLen: 5, Threshold: 1.0})
	// 60 CPU-like snapshots, then 60 IO-like ones far away in feature
	// space: one boundary planted at snapshot 60 (t = 60 s).
	feed(t, s, 0, 60, appclass.CPU, [2]float64{2, 0})
	feed(t, s, 60, 60, appclass.IO, [2]float64{-2, 1})
	phases := s.Phases()
	if len(phases) != 2 {
		t.Fatalf("got %d phases, want 2: %+v", len(phases), phases)
	}
	if phases[0].Class != appclass.CPU || phases[1].Class != appclass.IO {
		t.Fatalf("classes = %s, %s, want cpu then io", phases[0].Class, phases[1].Class)
	}
	// The detected boundary (end of phase 0 / start of phase 1) must
	// fall within one window of the planted change point.
	planted := 60 * time.Second
	gotStart := phases[1].Start
	if diff := (gotStart - planted) / time.Second; diff < -w || diff > w {
		t.Errorf("phase 1 starts at %v, want within %d s of %v", gotStart, w, planted)
	}
	if phases[0].Open || !phases[1].Open {
		t.Errorf("open flags = %v, %v, want closed then open", phases[0].Open, phases[1].Open)
	}
	if s.Count() != 2 {
		t.Errorf("Count() = %d, want 2", s.Count())
	}
	if s.Total() != 120 {
		t.Errorf("Total() = %d, want 120", s.Total())
	}
}

func TestSegmenterThreePhases(t *testing.T) {
	s := NewSegmenter(Config{Window: 8, MinLen: 5, Threshold: 1.0})
	feed(t, s, 0, 50, appclass.CPU, [2]float64{2, 0})
	feed(t, s, 50, 50, appclass.IO, [2]float64{-2, 1})
	feed(t, s, 100, 50, appclass.Net, [2]float64{0, -2})
	phases := s.Phases()
	if len(phases) != 3 {
		t.Fatalf("got %d phases, want 3: %+v", len(phases), phases)
	}
	want := []appclass.Class{appclass.CPU, appclass.IO, appclass.Net}
	for i, p := range phases {
		if p.Class != want[i] {
			t.Errorf("phase %d class = %s, want %s", i, p.Class, want[i])
		}
	}
	total := 0
	for _, p := range phases {
		total += p.Snapshots
	}
	if total != 150 {
		t.Errorf("phases hold %d snapshots, want 150", total)
	}
}

func TestSegmenterIgnoresSubThresholdDrift(t *testing.T) {
	s := NewSegmenter(Config{Window: 8, MinLen: 5, Threshold: 1.0})
	// Slow drift: the half-window means never separate by more than the
	// threshold, so no boundary may fire.
	for i := 0; i < 200; i++ {
		feat := []float64{2 + 0.002*float64(i), 0}
		if err := s.Observe(time.Duration(i)*time.Second, appclass.CPU, feat); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Count(); got != 1 {
		t.Errorf("slow drift produced %d phases, want 1", got)
	}
}

func TestSegmenterMinLenSuppressesEarlySplit(t *testing.T) {
	// A short first phase (3 < MinLen=10) must not be closed on its own:
	// the detector waits until the split leaves at least MinLen behind.
	s := NewSegmenter(Config{Window: 4, MinLen: 10, Threshold: 1.0})
	feed(t, s, 0, 3, appclass.CPU, [2]float64{2, 0})
	feed(t, s, 3, 40, appclass.IO, [2]float64{-2, 1})
	for _, p := range s.Phases() {
		if !p.Open && p.Snapshots < 10 {
			t.Errorf("closed phase with %d snapshots violates MinLen 10: %+v", p.Snapshots, p)
		}
	}
}

func TestSegmenterFeatureDimMismatch(t *testing.T) {
	s := NewSegmenter(Config{})
	if err := s.Observe(0, appclass.CPU, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(time.Second, appclass.CPU, []float64{1}); err == nil {
		t.Fatal("dimension change accepted, want error")
	}
	// The stream stays usable with the original dimensionality.
	if err := s.Observe(2*time.Second, appclass.CPU, []float64{3, 4}); err != nil {
		t.Fatalf("valid observe after rejected one: %v", err)
	}
	if s.Total() != 2 {
		t.Errorf("Total() = %d, want 2 (rejected snapshot must not count)", s.Total())
	}
}

func TestSegmenterEmptyFeature(t *testing.T) {
	s := NewSegmenter(Config{})
	if err := s.Observe(0, appclass.CPU, nil); err == nil {
		t.Fatal("empty feature vector accepted, want error")
	}
}

// TestSegmenterRestoreResumesIdentically exports mid-stream, restores,
// feeds both segmenters the same remainder, and requires identical
// phase lists — the crash-recovery contract.
func TestSegmenterRestoreResumesIdentically(t *testing.T) {
	for _, cut := range []int{0, 3, 11, 47, 60, 75, 119} {
		orig := NewSegmenter(Config{Window: 8, MinLen: 5, Threshold: 1.0})
		stream := func(s *Segmenter, from, to int) {
			for i := from; i < to; i++ {
				var class appclass.Class
				var center [2]float64
				switch {
				case i < 45:
					class, center = appclass.CPU, [2]float64{2, 0}
				case i < 90:
					class, center = appclass.IO, [2]float64{-2, 1}
				default:
					class, center = appclass.Mem, [2]float64{0, 3}
				}
				wiggle := 0.01 * math.Sin(float64(i))
				feat := []float64{center[0] + wiggle, center[1] - wiggle}
				if err := s.Observe(time.Duration(i)*time.Second, class, feat); err != nil {
					t.Fatalf("cut %d: Observe(%d): %v", cut, i, err)
				}
			}
		}
		stream(orig, 0, cut)
		restored, err := RestoreSegmenter(orig.ExportState())
		if err != nil {
			t.Fatalf("cut %d: restore: %v", cut, err)
		}
		stream(orig, cut, 120)
		stream(restored, cut, 120)
		a, b := orig.Phases(), restored.Phases()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("cut %d: phase lists diverge:\n orig: %+v\n rest: %+v", cut, a, b)
		}
		if orig.Total() != restored.Total() {
			t.Errorf("cut %d: totals diverge: %d vs %d", cut, orig.Total(), restored.Total())
		}
	}
}

func TestSegmenterStateRoundTripEmpty(t *testing.T) {
	s := NewSegmenter(Config{Window: 6})
	restored, err := RestoreSegmenter(s.ExportState())
	if err != nil {
		t.Fatalf("restore empty: %v", err)
	}
	if restored.Config().Window != 6 {
		t.Errorf("window = %d, want 6", restored.Config().Window)
	}
	if len(restored.Phases()) != 0 {
		t.Errorf("empty restore has phases: %+v", restored.Phases())
	}
}

func TestRestoreSegmenterRejectsCorruptState(t *testing.T) {
	s := NewSegmenter(Config{Window: 4, MinLen: 3, Threshold: 1.0})
	feed(t, s, 0, 30, appclass.CPU, [2]float64{2, 0})
	base := s.ExportState()

	corrupt := func(name string, mutate func(*SegmenterState)) {
		st := base // shallow copy is fine: mutations below replace fields
		mutate(&st)
		if _, err := RestoreSegmenter(st); err == nil {
			t.Errorf("%s: corrupt state accepted", name)
		}
	}
	corrupt("total mismatch", func(st *SegmenterState) { st.Total += 5 })
	corrupt("ring overflow", func(st *SegmenterState) {
		extra := make([]EntryState, 20)
		for i := range extra {
			extra[i].Feat = []float64{0, 0}
		}
		st.Ring = extra
	})
	corrupt("dim mismatch in ring", func(st *SegmenterState) {
		ring := append([]EntryState(nil), base.Ring...)
		ring[0] = EntryState{Feat: []float64{1}}
		st.Ring = ring
	})
	corrupt("cur counts disagree", func(st *SegmenterState) {
		cur := *base.Cur
		cur.Snapshots++
		st.Cur = &cur
		st.Total++
	})
}
