package phase

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/appclass"
)

// PhaseSig is one phase of a fingerprint: its class, its share of the
// run's total duration, and its feature-space centroid.
type PhaseSig struct {
	Class    appclass.Class `json:"class"`
	DurFrac  float64        `json:"dur_frac"`
	Centroid []float64      `json:"centroid,omitempty"`
}

// Fingerprint is the canonicalized phase sequence of one finalized run:
// the run's behavioural signature, comparable across runs of the same
// application even when absolute durations differ (the fractions
// normalize away machine speed and contention).
type Fingerprint struct {
	Phases []PhaseSig `json:"phases"`
}

// minPhaseFrac drops canonicalization noise: phases shorter than this
// fraction of the run are merged away before comparison.
const minPhaseFrac = 0.02

// NewFingerprint canonicalizes a detected phase list into a
// fingerprint: adjacent same-class phases merge (duration-weighted
// centroids), phases below minPhaseFrac of the run's duration drop, and
// the surviving duration fractions renormalize to sum to 1.
func NewFingerprint(phases []Phase) Fingerprint {
	type raw struct {
		class    appclass.Class
		dur      float64
		centroid []float64
	}
	var merged []raw
	var total float64
	for _, p := range phases {
		if p.Snapshots == 0 {
			continue
		}
		// A single-snapshot phase has zero span; weight it by snapshot
		// count instead so it is not silently lost when it is the whole
		// run.
		d := float64(p.Duration())
		if d <= 0 {
			d = float64(p.Snapshots)
		}
		total += d
		if n := len(merged); n > 0 && merged[n-1].class == p.Class {
			m := &merged[n-1]
			for i := range m.centroid {
				if i < len(p.Centroid) {
					m.centroid[i] = (m.centroid[i]*m.dur + p.Centroid[i]*d) / (m.dur + d)
				}
			}
			m.dur += d
			continue
		}
		merged = append(merged, raw{
			class:    p.Class,
			dur:      d,
			centroid: append([]float64(nil), p.Centroid...),
		})
	}
	if total <= 0 {
		return Fingerprint{}
	}
	// Drop sub-threshold slivers, then re-merge neighbours that the
	// drops made adjacent.
	kept := merged[:0]
	for _, m := range merged {
		if m.dur/total < minPhaseFrac {
			continue
		}
		if n := len(kept); n > 0 && kept[n-1].class == m.class {
			k := &kept[n-1]
			for i := range k.centroid {
				if i < len(m.centroid) {
					k.centroid[i] = (k.centroid[i]*k.dur + m.centroid[i]*m.dur) / (k.dur + m.dur)
				}
			}
			k.dur += m.dur
			continue
		}
		kept = append(kept, m)
	}
	var keptTotal float64
	for _, m := range kept {
		keptTotal += m.dur
	}
	fp := Fingerprint{Phases: make([]PhaseSig, 0, len(kept))}
	for _, m := range kept {
		fp.Phases = append(fp.Phases, PhaseSig{
			Class:    m.class,
			DurFrac:  m.dur / keptTotal,
			Centroid: m.centroid,
		})
	}
	return fp
}

// Empty reports whether the fingerprint carries no phases.
func (f Fingerprint) Empty() bool { return len(f.Phases) == 0 }

// String renders the fingerprint compactly, e.g.
// "cpu-intensive:0.62 io-intensive:0.38".
func (f Fingerprint) String() string {
	var b strings.Builder
	for i, p := range f.Phases {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%.2f", p.Class, p.DurFrac)
	}
	return b.String()
}

func centroidDist(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var d2 float64
	for i := 0; i < n; i++ {
		diff := a[i] - b[i]
		d2 += diff * diff
	}
	return math.Sqrt(d2)
}

// Similarity scores two fingerprints in [0, 1] with a global sequence
// alignment over their phases (Needleman–Wunsch with zero gap reward):
// aligning two phases of the same class earns the overlap of their
// duration fractions, shrunk by how far apart their centroids sit;
// phases of different classes earn nothing. The score is the earned
// overlap normalized by the mean total duration (= 1 per fingerprint),
// so identical fingerprints score 1 and disjoint class sequences 0.
func Similarity(a, b Fingerprint) float64 {
	la, lb := len(a.Phases), len(b.Phases)
	if la == 0 || lb == 0 {
		return 0
	}
	// dp[i][j]: best earned overlap aligning a[:i] with b[:j].
	prev := make([]float64, lb+1)
	cur := make([]float64, lb+1)
	for i := 1; i <= la; i++ {
		pa := a.Phases[i-1]
		for j := 1; j <= lb; j++ {
			best := prev[j] // skip pa
			if cur[j-1] > best {
				best = cur[j-1] // skip b's phase
			}
			if pb := b.Phases[j-1]; pa.Class == pb.Class {
				gain := math.Min(pa.DurFrac, pb.DurFrac) / (1 + centroidDist(pa.Centroid, pb.Centroid))
				if v := prev[j-1] + gain; v > best {
					best = v
				}
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	// Each fingerprint's fractions sum to 1, so matched overlap is at
	// most 1; prev holds the final row after the last swap.
	score := prev[lb]
	if score > 1 {
		score = 1
	}
	return score
}

// Match is the result of looking a fingerprint up in a dictionary.
type Match struct {
	// App is the prior run's application name.
	App string `json:"app"`
	// Score is the similarity in [0, 1].
	Score float64 `json:"score"`
}

// DefaultMatchThreshold is the similarity above which two runs are
// considered the same application.
const DefaultMatchThreshold = 0.6

// BestMatch scores fp against every fingerprint in dict (app name →
// fingerprint) and returns the best-scoring entry. Apps are visited in
// sorted name order so ties break deterministically. ok is false when
// the dictionary is empty or fp is empty.
func BestMatch(fp Fingerprint, dict map[string]Fingerprint) (Match, bool) {
	if fp.Empty() || len(dict) == 0 {
		return Match{}, false
	}
	names := make([]string, 0, len(dict))
	for name := range dict {
		names = append(names, name)
	}
	sort.Strings(names)
	var best Match
	found := false
	for _, name := range names {
		s := Similarity(fp, dict[name])
		if !found || s > best.Score {
			best = Match{App: name, Score: s}
			found = true
		}
	}
	return best, found
}
