package metrics

import "fmt"

// Info describes one metric the way gmond's metric metadata does: its
// unit, a human-readable description, and whether it is a rate (per
// second) or a gauge (instantaneous level).
type Info struct {
	// Unit is the measurement unit ("percent", "KB/s", ...).
	Unit string
	// Description explains the metric.
	Description string
	// Rate is true for per-second counters, false for gauges.
	Rate bool
}

// metadata holds the Info of every canonical metric.
var metadata = map[string]Info{
	CPUNum:      {Unit: "CPUs", Description: "number of CPUs", Rate: false},
	CPUSpeed:    {Unit: "MHz", Description: "CPU clock speed", Rate: false},
	CPUUser:     {Unit: "percent", Description: "CPU time in user code", Rate: false},
	CPUNice:     {Unit: "percent", Description: "CPU time at reduced priority", Rate: false},
	CPUSystem:   {Unit: "percent", Description: "CPU time in the kernel", Rate: false},
	CPUIdle:     {Unit: "percent", Description: "idle CPU time", Rate: false},
	CPUWIO:      {Unit: "percent", Description: "CPU time waiting on I/O", Rate: false},
	CPUAIdle:    {Unit: "percent", Description: "idle CPU headroom", Rate: false},
	LoadOne:     {Unit: "processes", Description: "1-minute load average", Rate: false},
	LoadFive:    {Unit: "processes", Description: "5-minute load average", Rate: false},
	LoadFifteen: {Unit: "processes", Description: "15-minute load average", Rate: false},
	ProcRun:     {Unit: "processes", Description: "runnable processes", Rate: false},
	ProcTotal:   {Unit: "processes", Description: "total processes", Rate: false},
	MemTotal:    {Unit: "KB", Description: "total memory", Rate: false},
	MemFree:     {Unit: "KB", Description: "free memory", Rate: false},
	MemShared:   {Unit: "KB", Description: "shared memory", Rate: false},
	MemBuffers:  {Unit: "KB", Description: "buffer memory", Rate: false},
	MemCached:   {Unit: "KB", Description: "page-cache memory", Rate: false},
	SwapTotal:   {Unit: "KB", Description: "total swap space", Rate: false},
	SwapFree:    {Unit: "KB", Description: "free swap space", Rate: false},
	BytesIn:     {Unit: "bytes/s", Description: "network receive rate", Rate: true},
	BytesOut:    {Unit: "bytes/s", Description: "network transmit rate", Rate: true},
	PktsIn:      {Unit: "packets/s", Description: "network receive packet rate", Rate: true},
	PktsOut:     {Unit: "packets/s", Description: "network transmit packet rate", Rate: true},
	DiskTotal:   {Unit: "GB", Description: "total disk space", Rate: false},
	DiskFree:    {Unit: "GB", Description: "free disk space", Rate: false},
	PartMaxUsed: {Unit: "percent", Description: "fullest partition utilization", Rate: false},
	Boottime:    {Unit: "s", Description: "boot timestamp", Rate: false},
	Heartbeat:   {Unit: "count", Description: "gmond heartbeat counter", Rate: false},
	IOBI:        {Unit: "blocks/s", Description: "blocks read from block devices (vmstat bi)", Rate: true},
	IOBO:        {Unit: "blocks/s", Description: "blocks written to block devices (vmstat bo)", Rate: true},
	SwapIn:      {Unit: "KB/s", Description: "memory swapped in from disk (vmstat si)", Rate: true},
	SwapOut:     {Unit: "KB/s", Description: "memory swapped out to disk (vmstat so)", Rate: true},
}

// Describe returns the metadata of a canonical metric.
func Describe(name string) (Info, error) {
	info, ok := metadata[name]
	if !ok {
		return Info{}, fmt.Errorf("metrics: no metadata for metric %q", name)
	}
	return info, nil
}
