package metrics

import "testing"

func TestDefaultSchemaHas33Metrics(t *testing.T) {
	s := DefaultSchema()
	if s.Len() != 33 {
		t.Fatalf("default schema has %d metrics, paper requires n = 33", s.Len())
	}
}

func TestExpertSchemaHas8Metrics(t *testing.T) {
	s := ExpertSchema()
	if s.Len() != 8 {
		t.Fatalf("expert schema has %d metrics, Table 1 requires p = 8", s.Len())
	}
}

func TestExpertMetricsAreInDefaultSchema(t *testing.T) {
	def := DefaultSchema()
	for _, n := range ExpertNames() {
		if !def.Contains(n) {
			t.Errorf("expert metric %q missing from default schema", n)
		}
	}
}

func TestExpertMetricsPairPerClass(t *testing.T) {
	// Table 1: exactly four correlated pairs, one per class.
	want := [][2]string{
		{CPUSystem, CPUUser},
		{BytesIn, BytesOut},
		{IOBI, IOBO},
		{SwapIn, SwapOut},
	}
	names := ExpertNames()
	if len(names) != 8 {
		t.Fatalf("expert names = %d, want 8", len(names))
	}
	for i, pair := range want {
		if names[2*i] != pair[0] || names[2*i+1] != pair[1] {
			t.Errorf("pair %d = (%s,%s), want (%s,%s)", i, names[2*i], names[2*i+1], pair[0], pair[1])
		}
	}
}

func TestNewSchemaRejectsDuplicates(t *testing.T) {
	if _, err := NewSchema([]string{"a", "a"}); err == nil {
		t.Fatal("duplicate names: want error")
	}
}

func TestNewSchemaRejectsEmptyName(t *testing.T) {
	if _, err := NewSchema([]string{"a", ""}); err == nil {
		t.Fatal("empty name: want error")
	}
}

func TestSchemaIndexAndName(t *testing.T) {
	s, err := NewSchema([]string{"x", "y", "z"})
	if err != nil {
		t.Fatal(err)
	}
	i, ok := s.Index("y")
	if !ok || i != 1 {
		t.Errorf("Index(y) = (%d,%v), want (1,true)", i, ok)
	}
	if _, ok := s.Index("missing"); ok {
		t.Error("Index(missing) should not exist")
	}
	if s.Name(2) != "z" {
		t.Errorf("Name(2) = %q, want z", s.Name(2))
	}
	defer func() {
		if recover() == nil {
			t.Error("Name out of range should panic")
		}
	}()
	s.Name(3)
}

func TestSchemaEqual(t *testing.T) {
	a, _ := NewSchema([]string{"x", "y"})
	b, _ := NewSchema([]string{"x", "y"})
	c, _ := NewSchema([]string{"y", "x"})
	if !a.Equal(b) {
		t.Error("identical schemas reported unequal")
	}
	if a.Equal(c) {
		t.Error("reordered schemas reported equal")
	}
}

func TestSchemaSubset(t *testing.T) {
	s := DefaultSchema()
	idx, err := s.Subset([]string{CPUUser, SwapOut})
	if err != nil {
		t.Fatalf("Subset: %v", err)
	}
	if len(idx) != 2 {
		t.Fatalf("Subset returned %d indices", len(idx))
	}
	if s.Name(idx[0]) != CPUUser || s.Name(idx[1]) != SwapOut {
		t.Errorf("Subset indices resolve to %q,%q", s.Name(idx[0]), s.Name(idx[1]))
	}
	if _, err := s.Subset([]string{"nope"}); err == nil {
		t.Error("Subset with unknown metric: want error")
	}
}

func TestSchemaNamesIsCopy(t *testing.T) {
	s := DefaultSchema()
	names := s.Names()
	names[0] = "mutated"
	if s.Name(0) == "mutated" {
		t.Error("Names() exposes internal storage")
	}
}

func TestEveryDefaultMetricHasMetadata(t *testing.T) {
	for _, name := range DefaultNames() {
		info, err := Describe(name)
		if err != nil {
			t.Errorf("Describe(%s): %v", name, err)
			continue
		}
		if info.Unit == "" || info.Description == "" {
			t.Errorf("metric %s has incomplete metadata: %+v", name, info)
		}
	}
	if _, err := Describe("warp_factor"); err == nil {
		t.Error("unknown metric: want error")
	}
}

func TestVmstatAdditionsAreRates(t *testing.T) {
	for _, name := range []string{IOBI, IOBO, SwapIn, SwapOut} {
		info, err := Describe(name)
		if err != nil {
			t.Fatal(err)
		}
		if !info.Rate {
			t.Errorf("metric %s should be a rate", name)
		}
	}
}
