// Package metrics defines the performance-metric schema the classifier
// consumes: the 29 default Ganglia gmond metrics plus the four
// vmstat-derived metrics the paper adds (I/O blocks in/out, pages swapped
// in/out), for a total of n = 33 metrics per snapshot. It also provides
// the Snapshot and Trace containers and their CSV/JSON codecs.
package metrics

import (
	"fmt"
	"sort"
)

// Metric names. The 29 defaults follow the Ganglia 2.5/3.0 gmond metric
// list the paper's testbed used (numeric metrics only; string metrics
// such as machine_type carry no classification signal and are omitted
// from the numeric schema, with heartbeat standing in as the liveness
// metric). The four trailing names are the vmstat additions from
// Section 4.1.
const (
	CPUNum      = "cpu_num"       // number of CPUs
	CPUSpeed    = "cpu_speed"     // CPU clock, MHz
	CPUUser     = "cpu_user"      // percent CPU user (Table 1)
	CPUNice     = "cpu_nice"      // percent CPU nice
	CPUSystem   = "cpu_system"    // percent CPU system (Table 1)
	CPUIdle     = "cpu_idle"      // percent CPU idle
	CPUWIO      = "cpu_wio"       // percent CPU waiting on I/O
	CPUAIdle    = "cpu_aidle"     // percent CPU idle since boot
	LoadOne     = "load_one"      // 1-minute load average
	LoadFive    = "load_five"     // 5-minute load average
	LoadFifteen = "load_fifteen"  // 15-minute load average
	ProcRun     = "proc_run"      // running processes
	ProcTotal   = "proc_total"    // total processes
	MemTotal    = "mem_total"     // total memory, kB
	MemFree     = "mem_free"      // free memory, kB
	MemShared   = "mem_shared"    // shared memory, kB
	MemBuffers  = "mem_buffers"   // buffer memory, kB
	MemCached   = "mem_cached"    // page-cache memory, kB
	SwapTotal   = "swap_total"    // total swap, kB
	SwapFree    = "swap_free"     // free swap, kB
	BytesIn     = "bytes_in"      // network bytes/s in (Table 1)
	BytesOut    = "bytes_out"     // network bytes/s out (Table 1)
	PktsIn      = "pkts_in"       // network packets/s in
	PktsOut     = "pkts_out"      // network packets/s out
	DiskTotal   = "disk_total"    // total disk, GB
	DiskFree    = "disk_free"     // free disk, GB
	PartMaxUsed = "part_max_used" // max partition utilization, percent
	Boottime    = "boottime"      // boot timestamp, s
	Heartbeat   = "heartbeat"     // gmond heartbeat counter

	// vmstat additions (Section 4.1, Table 1).
	IOBI    = "io_bi"    // blocks/s received from block devices
	IOBO    = "io_bo"    // blocks/s sent to block devices
	SwapIn  = "swap_in"  // kB/s swapped in from disk
	SwapOut = "swap_out" // kB/s swapped out to disk
)

// DefaultNames lists the full 33-metric schema in canonical order:
// the 29 Ganglia defaults followed by the 4 vmstat additions.
func DefaultNames() []string {
	return []string{
		CPUNum, CPUSpeed, CPUUser, CPUNice, CPUSystem, CPUIdle, CPUWIO,
		CPUAIdle, LoadOne, LoadFive, LoadFifteen, ProcRun, ProcTotal,
		MemTotal, MemFree, MemShared, MemBuffers, MemCached, SwapTotal,
		SwapFree, BytesIn, BytesOut, PktsIn, PktsOut, DiskTotal, DiskFree,
		PartMaxUsed, Boottime, Heartbeat,
		IOBI, IOBO, SwapIn, SwapOut,
	}
}

// ExpertNames lists the p = 8 metrics of Table 1 that the preprocessor
// selects by expert knowledge: one correlated pair per application class.
func ExpertNames() []string {
	return []string{
		CPUSystem, CPUUser, // CPU-intensive
		BytesIn, BytesOut, // network-intensive
		IOBI, IOBO, // IO-intensive
		SwapIn, SwapOut, // memory(paging)-intensive
	}
}

// Schema is an immutable ordered set of metric names with O(1) index
// lookup. Snapshots and traces are always interpreted against a schema.
type Schema struct {
	names []string
	index map[string]int
}

// NewSchema builds a schema from names. Duplicate or empty names are
// rejected.
func NewSchema(names []string) (*Schema, error) {
	s := &Schema{
		names: append([]string(nil), names...),
		index: make(map[string]int, len(names)),
	}
	for i, n := range s.names {
		if n == "" {
			return nil, fmt.Errorf("metrics: empty metric name at position %d", i)
		}
		if _, dup := s.index[n]; dup {
			return nil, fmt.Errorf("metrics: duplicate metric name %q", n)
		}
		s.index[n] = i
	}
	return s, nil
}

// DefaultSchema returns the canonical 33-metric schema.
func DefaultSchema() *Schema {
	s, err := NewSchema(DefaultNames())
	if err != nil {
		panic("metrics: default schema invalid: " + err.Error())
	}
	return s
}

// ExpertSchema returns the 8-metric Table-1 schema.
func ExpertSchema() *Schema {
	s, err := NewSchema(ExpertNames())
	if err != nil {
		panic("metrics: expert schema invalid: " + err.Error())
	}
	return s
}

// Len returns the number of metrics in the schema.
func (s *Schema) Len() int { return len(s.names) }

// Names returns a copy of the metric names in order.
func (s *Schema) Names() []string { return append([]string(nil), s.names...) }

// Index returns the position of name and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Name returns the metric name at position i.
func (s *Schema) Name(i int) string {
	if i < 0 || i >= len(s.names) {
		panic(fmt.Sprintf("metrics: schema index %d out of range [0,%d)", i, len(s.names)))
	}
	return s.names[i]
}

// Contains reports whether the schema includes name.
func (s *Schema) Contains(name string) bool {
	_, ok := s.index[name]
	return ok
}

// Equal reports whether two schemas have identical names in identical
// order.
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i, n := range s.names {
		if o.names[i] != n {
			return false
		}
	}
	return true
}

// Subset verifies every name exists in the schema and returns their
// indices in the order given, enabling projection of snapshots onto a
// sub-schema (the preprocessor's n → p reduction).
func (s *Schema) Subset(names []string) ([]int, error) {
	idx := make([]int, len(names))
	for i, n := range names {
		j, ok := s.index[n]
		if !ok {
			available := append([]string(nil), s.names...)
			sort.Strings(available)
			return nil, fmt.Errorf("metrics: metric %q not in schema %v", n, available)
		}
		idx[i] = j
	}
	return idx, nil
}
