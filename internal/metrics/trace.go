package metrics

import (
	"fmt"
	"time"

	"repro/internal/linalg"
)

// Snapshot is one sample of every metric in a schema for one node at one
// instant of simulated time. Values are ordered by the owning trace's
// schema.
type Snapshot struct {
	// Time is the simulated timestamp of the sample.
	Time time.Duration
	// Node identifies the monitored node (the paper's "VMIP").
	Node string
	// Values holds one value per schema metric, in schema order.
	Values []float64
}

// Clone returns a deep copy of the snapshot.
func (s Snapshot) Clone() Snapshot {
	c := s
	c.Values = append([]float64(nil), s.Values...)
	return c
}

// Trace is the "application performance data pool" of Section 4.1: an
// ordered series of snapshots of one node between application start t0
// and end t1, interpreted against a schema. The paper writes it as the
// matrix A(n×m) with n metrics and m snapshots; Matrix() returns the
// transposed, row-per-snapshot (m×n) layout that the learning packages
// consume.
type Trace struct {
	schema    *Schema
	node      string
	snapshots []Snapshot
}

// NewTrace creates an empty trace for one node against a schema.
func NewTrace(schema *Schema, node string) *Trace {
	return &Trace{schema: schema, node: node}
}

// Schema returns the trace's schema.
func (t *Trace) Schema() *Schema { return t.schema }

// Node returns the monitored node identifier.
func (t *Trace) Node() string { return t.node }

// Len returns the number of snapshots m.
func (t *Trace) Len() int { return len(t.snapshots) }

// Append adds a snapshot. The snapshot's node must match the trace's
// node and its value count must match the schema.
func (t *Trace) Append(s Snapshot) error {
	if s.Node != t.node {
		return fmt.Errorf("metrics: snapshot node %q does not match trace node %q", s.Node, t.node)
	}
	if len(s.Values) != t.schema.Len() {
		return fmt.Errorf("metrics: snapshot has %d values, schema has %d metrics", len(s.Values), t.schema.Len())
	}
	if n := len(t.snapshots); n > 0 && s.Time < t.snapshots[n-1].Time {
		return fmt.Errorf("metrics: snapshot time %v before previous %v", s.Time, t.snapshots[n-1].Time)
	}
	t.snapshots = append(t.snapshots, s.Clone())
	return nil
}

// At returns the i-th snapshot (shared storage; callers must not mutate).
func (t *Trace) At(i int) Snapshot {
	if i < 0 || i >= len(t.snapshots) {
		panic(fmt.Sprintf("metrics: snapshot index %d out of range [0,%d)", i, len(t.snapshots)))
	}
	return t.snapshots[i]
}

// Value returns the named metric of the i-th snapshot.
func (t *Trace) Value(i int, name string) (float64, error) {
	j, ok := t.schema.Index(name)
	if !ok {
		return 0, fmt.Errorf("metrics: metric %q not in trace schema", name)
	}
	return t.At(i).Values[j], nil
}

// Column returns the full time series of one metric.
func (t *Trace) Column(name string) ([]float64, error) {
	j, ok := t.schema.Index(name)
	if !ok {
		return nil, fmt.Errorf("metrics: metric %q not in trace schema", name)
	}
	out := make([]float64, len(t.snapshots))
	for i, s := range t.snapshots {
		out[i] = s.Values[j]
	}
	return out, nil
}

// Duration returns t1 - t0, the span between the first and last
// snapshots (zero for traces with fewer than two snapshots).
func (t *Trace) Duration() time.Duration {
	if len(t.snapshots) < 2 {
		return 0
	}
	return t.snapshots[len(t.snapshots)-1].Time - t.snapshots[0].Time
}

// Matrix renders the trace as an m×n matrix: one row per snapshot, one
// column per schema metric.
func (t *Trace) Matrix() *linalg.Matrix {
	m := linalg.NewMatrix(len(t.snapshots), t.schema.Len())
	for i, s := range t.snapshots {
		for j, v := range s.Values {
			m.Set(i, j, v)
		}
	}
	return m
}

// Project returns a new trace containing only the named metrics, in the
// order given — the preprocessor's data-extraction step (n → p).
func (t *Trace) Project(names []string) (*Trace, error) {
	idx, err := t.schema.Subset(names)
	if err != nil {
		return nil, err
	}
	sub, err := NewSchema(names)
	if err != nil {
		return nil, err
	}
	out := NewTrace(sub, t.node)
	for _, s := range t.snapshots {
		vals := make([]float64, len(idx))
		for k, j := range idx {
			vals[k] = s.Values[j]
		}
		out.snapshots = append(out.snapshots, Snapshot{Time: s.Time, Node: s.Node, Values: vals})
	}
	return out, nil
}

// Slice returns a new trace holding snapshots [from, to) sharing the
// same schema — used by the sliding-window stage detector.
func (t *Trace) Slice(from, to int) (*Trace, error) {
	if from < 0 || to > len(t.snapshots) || from > to {
		return nil, fmt.Errorf("metrics: slice [%d,%d) out of range [0,%d]", from, to, len(t.snapshots))
	}
	out := NewTrace(t.schema, t.node)
	for _, s := range t.snapshots[from:to] {
		out.snapshots = append(out.snapshots, s.Clone())
	}
	return out, nil
}

// Merge appends all snapshots of other (same schema and node required),
// used to pool several training runs of one application.
func (t *Trace) Merge(other *Trace) error {
	if !t.schema.Equal(other.schema) {
		return fmt.Errorf("metrics: cannot merge traces with different schemas")
	}
	// Preserve monotone time by shifting the merged run to start after
	// the existing one while keeping its internal spacing.
	var offset time.Duration
	if n := len(t.snapshots); n > 0 && len(other.snapshots) > 0 {
		if first := other.snapshots[0].Time; first <= t.snapshots[n-1].Time {
			offset = t.snapshots[n-1].Time - first + time.Second
		}
	}
	for _, s := range other.snapshots {
		cp := s.Clone()
		cp.Node = t.node
		cp.Time += offset
		t.snapshots = append(t.snapshots, cp)
	}
	return nil
}
