package metrics

import (
	"bytes"
	"testing"
)

// FuzzReadCSV exercises the trace CSV decoder with arbitrary input: it
// must never panic, and any input it accepts must round-trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("time_s,node,m1\n0,vm1,1.5\n5,vm1,2.5\n")
	f.Add("time_s,node\n")
	f.Add("bogus\n")
	f.Add("time_s,node,m1,m1\n0,vm1,1,2\n")
	f.Add("time_s,node,m1\n0,vm1,NaN\n")
	f.Add("time_s,node,m1\n5,vm1,1\n0,vm1,2\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadCSV(bytes.NewBufferString(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted trace failed to encode: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("encoded trace failed to decode: %v", err)
		}
		if back.Len() != tr.Len() || !back.Schema().Equal(tr.Schema()) {
			t.Fatalf("round trip changed shape: %d/%d snapshots", back.Len(), tr.Len())
		}
	})
}

// FuzzTraceJSON exercises the JSON codec the same way.
func FuzzTraceJSON(f *testing.F) {
	f.Add([]byte(`{"node":"vm1","metrics":["a"],"samples":[{"time_s":0,"values":[1]}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"node":"x","metrics":["a","a"],"samples":[]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, input []byte) {
		var tr Trace
		if err := tr.UnmarshalJSON(input); err != nil {
			return
		}
		data, err := tr.MarshalJSON()
		if err != nil {
			t.Fatalf("accepted trace failed to marshal: %v", err)
		}
		var back Trace
		if err := back.UnmarshalJSON(data); err != nil {
			t.Fatalf("marshalled trace failed to unmarshal: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round trip changed length: %d/%d", back.Len(), tr.Len())
		}
	})
}
