package metrics

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func smallSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema([]string{"m1", "m2", "m3"})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func snap(at time.Duration, node string, vals ...float64) Snapshot {
	return Snapshot{Time: at, Node: node, Values: vals}
}

func TestTraceAppendAndAccess(t *testing.T) {
	tr := NewTrace(smallSchema(t), "vm1")
	if err := tr.Append(snap(0, "vm1", 1, 2, 3)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := tr.Append(snap(5*time.Second, "vm1", 4, 5, 6)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	v, err := tr.Value(1, "m2")
	if err != nil || v != 5 {
		t.Errorf("Value(1,m2) = (%v,%v), want (5,nil)", v, err)
	}
	col, err := tr.Column("m3")
	if err != nil {
		t.Fatalf("Column: %v", err)
	}
	if col[0] != 3 || col[1] != 6 {
		t.Errorf("Column(m3) = %v", col)
	}
	if tr.Duration() != 5*time.Second {
		t.Errorf("Duration = %v, want 5s", tr.Duration())
	}
}

func TestTraceAppendValidation(t *testing.T) {
	tr := NewTrace(smallSchema(t), "vm1")
	if err := tr.Append(snap(0, "other", 1, 2, 3)); err == nil {
		t.Error("wrong node: want error")
	}
	if err := tr.Append(snap(0, "vm1", 1)); err == nil {
		t.Error("wrong arity: want error")
	}
	if err := tr.Append(snap(10*time.Second, "vm1", 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(snap(5*time.Second, "vm1", 1, 2, 3)); err == nil {
		t.Error("non-monotone time: want error")
	}
}

func TestTraceAppendClones(t *testing.T) {
	tr := NewTrace(smallSchema(t), "vm1")
	vals := []float64{1, 2, 3}
	if err := tr.Append(Snapshot{Node: "vm1", Values: vals}); err != nil {
		t.Fatal(err)
	}
	vals[0] = 99
	if tr.At(0).Values[0] != 1 {
		t.Error("Append aliases caller storage")
	}
}

func TestTraceMatrix(t *testing.T) {
	tr := NewTrace(smallSchema(t), "vm1")
	_ = tr.Append(snap(0, "vm1", 1, 2, 3))
	_ = tr.Append(snap(time.Second, "vm1", 4, 5, 6))
	m := tr.Matrix()
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("Matrix shape %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	if m.At(1, 2) != 6 {
		t.Errorf("Matrix[1,2] = %v, want 6", m.At(1, 2))
	}
}

func TestTraceProject(t *testing.T) {
	tr := NewTrace(smallSchema(t), "vm1")
	_ = tr.Append(snap(0, "vm1", 1, 2, 3))
	p, err := tr.Project([]string{"m3", "m1"})
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if p.Schema().Len() != 2 {
		t.Fatalf("projected schema len = %d", p.Schema().Len())
	}
	if p.At(0).Values[0] != 3 || p.At(0).Values[1] != 1 {
		t.Errorf("projected values = %v, want [3 1]", p.At(0).Values)
	}
	if _, err := tr.Project([]string{"missing"}); err == nil {
		t.Error("Project with unknown metric: want error")
	}
}

func TestTraceSlice(t *testing.T) {
	tr := NewTrace(smallSchema(t), "vm1")
	for i := 0; i < 5; i++ {
		_ = tr.Append(snap(time.Duration(i)*time.Second, "vm1", float64(i), 0, 0))
	}
	s, err := tr.Slice(1, 3)
	if err != nil {
		t.Fatalf("Slice: %v", err)
	}
	if s.Len() != 2 || s.At(0).Values[0] != 1 {
		t.Errorf("Slice = len %d first %v", s.Len(), s.At(0).Values)
	}
	if _, err := tr.Slice(3, 1); err == nil {
		t.Error("inverted slice: want error")
	}
	if _, err := tr.Slice(0, 99); err == nil {
		t.Error("overlong slice: want error")
	}
}

func TestTraceMergePreservesSpacingAndMonotonicity(t *testing.T) {
	a := NewTrace(smallSchema(t), "vm1")
	_ = a.Append(snap(0, "vm1", 1, 1, 1))
	_ = a.Append(snap(5*time.Second, "vm1", 2, 2, 2))
	b := NewTrace(smallSchema(t), "vm2")
	_ = b.Append(snap(0, "vm2", 3, 3, 3))
	_ = b.Append(snap(5*time.Second, "vm2", 4, 4, 4))
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Len() != 4 {
		t.Fatalf("merged len = %d, want 4", a.Len())
	}
	for i := 1; i < a.Len(); i++ {
		if a.At(i).Time <= a.At(i-1).Time {
			t.Fatalf("merged times not increasing at %d: %v then %v", i, a.At(i-1).Time, a.At(i).Time)
		}
	}
	gap := a.At(3).Time - a.At(2).Time
	if gap != 5*time.Second {
		t.Errorf("merged internal spacing = %v, want 5s", gap)
	}
	if a.At(2).Node != "vm1" {
		t.Errorf("merged node = %q, want vm1", a.At(2).Node)
	}
}

func TestTraceMergeSchemaMismatch(t *testing.T) {
	a := NewTrace(smallSchema(t), "vm1")
	other, _ := NewSchema([]string{"x"})
	b := NewTrace(other, "vm1")
	if err := a.Merge(b); err == nil {
		t.Error("schema mismatch: want error")
	}
}

func buildTrace(t *testing.T, n int) *Trace {
	t.Helper()
	tr := NewTrace(smallSchema(t), "vm1")
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < n; i++ {
		err := tr.Append(snap(time.Duration(i*5)*time.Second, "vm1",
			rng.Float64()*100, rng.Float64()*1e6, rng.NormFloat64()))
		if err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestTraceCSVRoundTrip(t *testing.T) {
	tr := buildTrace(t, 20)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.Len() != tr.Len() || !got.Schema().Equal(tr.Schema()) || got.Node() != tr.Node() {
		t.Fatalf("round trip mismatch: len %d/%d node %q/%q", got.Len(), tr.Len(), got.Node(), tr.Node())
	}
	for i := 0; i < tr.Len(); i++ {
		want, have := tr.At(i), got.At(i)
		if want.Time != have.Time {
			t.Fatalf("snapshot %d time %v != %v", i, have.Time, want.Time)
		}
		for j := range want.Values {
			if want.Values[j] != have.Values[j] {
				t.Fatalf("snapshot %d value %d: %v != %v", i, j, have.Values[j], want.Values[j])
			}
		}
	}
}

func TestReadCSVRejectsMalformedHeader(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("bogus,node,m1\n")); err == nil {
		t.Error("malformed header: want error")
	}
}

func TestReadCSVRejectsBadValue(t *testing.T) {
	in := "time_s,node,m1\n0,vm1,notanumber\n"
	if _, err := ReadCSV(bytes.NewBufferString(in)); err == nil {
		t.Error("bad value: want error")
	}
}

func TestReadCSVEmptyBody(t *testing.T) {
	tr, err := ReadCSV(bytes.NewBufferString("time_s,node,m1\n"))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d, want 0", tr.Len())
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr := buildTrace(t, 10)
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var got Trace
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Len() != tr.Len() || !got.Schema().Equal(tr.Schema()) {
		t.Fatalf("JSON round trip mismatch")
	}
	for i := 0; i < tr.Len(); i++ {
		for j, v := range tr.At(i).Values {
			if got.At(i).Values[j] != v {
				t.Fatalf("sample %d value %d mismatch", i, j)
			}
		}
	}
}

// Property: CSV round-trips preserve every value exactly for finite
// inputs.
func TestTraceCSVRoundTripProperty(t *testing.T) {
	schema, _ := NewSchema([]string{"a", "b"})
	f := func(raw [6][2]float64) bool {
		tr := NewTrace(schema, "vmX")
		for i, row := range raw {
			vals := make([]float64, 2)
			for j, v := range row {
				if v != v || v > 1e300 || v < -1e300 { // NaN or huge
					v = 0
				}
				vals[j] = v
			}
			if err := tr.Append(Snapshot{
				Time:   time.Duration(i) * time.Second,
				Node:   "vmX",
				Values: vals,
			}); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil || got.Len() != tr.Len() {
			return false
		}
		for i := 0; i < tr.Len(); i++ {
			for j := range tr.At(i).Values {
				if got.At(i).Values[j] != tr.At(i).Values[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
