package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// WriteCSV encodes the trace as CSV with a header row of
// "time_s,node,<metric names...>". Times are written in seconds.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"time_s", "node"}, t.schema.Names()...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("metrics: write CSV header: %w", err)
	}
	row := make([]string, len(header))
	for i := 0; i < t.Len(); i++ {
		s := t.At(i)
		row[0] = strconv.FormatFloat(s.Time.Seconds(), 'g', -1, 64)
		row[1] = s.Node
		for j, v := range s.Values {
			row[2+j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("metrics: write CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("metrics: flush CSV: %w", err)
	}
	return nil
}

// ReadCSV decodes a trace written by WriteCSV. The schema is
// reconstructed from the header.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("metrics: read CSV header: %w", err)
	}
	if len(header) < 2 || header[0] != "time_s" || header[1] != "node" {
		return nil, fmt.Errorf("metrics: malformed CSV header %v", header)
	}
	schema, err := NewSchema(header[2:])
	if err != nil {
		return nil, fmt.Errorf("metrics: CSV header schema: %w", err)
	}
	var trace *Trace
	for lineNo := 1; ; lineNo++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("metrics: read CSV line %d: %w", lineNo, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("metrics: CSV line %d has %d fields, want %d", lineNo, len(rec), len(header))
		}
		secs, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("metrics: CSV line %d time: %w", lineNo, err)
		}
		if trace == nil {
			trace = NewTrace(schema, rec[1])
		}
		vals := make([]float64, schema.Len())
		for j := range vals {
			v, err := strconv.ParseFloat(rec[2+j], 64)
			if err != nil {
				return nil, fmt.Errorf("metrics: CSV line %d metric %q: %w", lineNo, schema.Name(j), err)
			}
			vals[j] = v
		}
		snap := Snapshot{
			Time:   time.Duration(secs * float64(time.Second)),
			Node:   rec[1],
			Values: vals,
		}
		if err := trace.Append(snap); err != nil {
			return nil, fmt.Errorf("metrics: CSV line %d: %w", lineNo, err)
		}
	}
	if trace == nil {
		trace = NewTrace(schema, "")
	}
	return trace, nil
}

// traceJSON is the wire form of a trace.
type traceJSON struct {
	Node    string         `json:"node"`
	Metrics []string       `json:"metrics"`
	Samples []snapshotJSON `json:"samples"`
}

type snapshotJSON struct {
	TimeSeconds float64   `json:"time_s"`
	Values      []float64 `json:"values"`
}

// MarshalJSON encodes the trace as a compact JSON document.
func (t *Trace) MarshalJSON() ([]byte, error) {
	doc := traceJSON{
		Node:    t.node,
		Metrics: t.schema.Names(),
		Samples: make([]snapshotJSON, 0, t.Len()),
	}
	for i := 0; i < t.Len(); i++ {
		s := t.At(i)
		doc.Samples = append(doc.Samples, snapshotJSON{
			TimeSeconds: s.Time.Seconds(),
			Values:      append([]float64(nil), s.Values...),
		})
	}
	return json.Marshal(doc)
}

// UnmarshalJSON decodes a trace encoded by MarshalJSON.
func (t *Trace) UnmarshalJSON(data []byte) error {
	var doc traceJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("metrics: unmarshal trace: %w", err)
	}
	schema, err := NewSchema(doc.Metrics)
	if err != nil {
		return fmt.Errorf("metrics: trace JSON schema: %w", err)
	}
	nt := NewTrace(schema, doc.Node)
	for i, s := range doc.Samples {
		snap := Snapshot{
			Time:   time.Duration(s.TimeSeconds * float64(time.Second)),
			Node:   doc.Node,
			Values: s.Values,
		}
		if err := nt.Append(snap); err != nil {
			return fmt.Errorf("metrics: trace JSON sample %d: %w", i, err)
		}
	}
	*t = *nt
	return nil
}
