// Package appclass defines the application classes the paper's
// classifier targets (Section 3): CPU-intensive, I/O-intensive,
// memory/paging-intensive, network-intensive, and idle. The classifier
// is trained with one representative application per class (Figure 3a);
// I/O-and-paging-intensive applications from Table 2 map onto the IO and
// Mem classes depending on which snapshots dominate.
package appclass

import "fmt"

// Class labels an application (or one snapshot of its execution) by the
// resource it stresses.
type Class string

// The five classes of the paper's training set.
const (
	Idle Class = "idle"
	IO   Class = "io"
	CPU  Class = "cpu"
	Net  Class = "net"
	Mem  Class = "mem" // paging-intensive
)

// Unknown is the open-set verdict for workloads the classifier cannot
// place near any training class. It is deliberately NOT one of the five
// trained classes: All, Valid, and Parse reject it, so it can never
// enter compositions, training labels, or stored record classes — it
// appears only as a session-level verdict alongside the nearest trained
// class.
const Unknown Class = "unknown"

// All returns the five classes in the paper's canonical presentation
// order (the column order of Table 3: Idle, I/O, CPU, Network, Paging).
func All() []Class {
	return []Class{Idle, IO, CPU, Net, Mem}
}

// Strings returns All as plain strings, for APIs that operate on labels.
func Strings() []string {
	all := All()
	out := make([]string, len(all))
	for i, c := range all {
		out[i] = string(c)
	}
	return out
}

// Valid reports whether c is one of the five known classes.
func Valid(c Class) bool {
	switch c {
	case Idle, IO, CPU, Net, Mem:
		return true
	}
	return false
}

// Parse converts a label string into a Class.
func Parse(s string) (Class, error) {
	c := Class(s)
	if !Valid(c) {
		return "", fmt.Errorf("appclass: unknown class %q (want one of %v)", s, All())
	}
	return c, nil
}

// Display returns the paper's column heading for the class.
func (c Class) Display() string {
	switch c {
	case Idle:
		return "Idle"
	case IO:
		return "I/O"
	case CPU:
		return "CPU"
	case Net:
		return "Network"
	case Mem:
		return "Paging"
	default:
		return string(c)
	}
}

// String implements fmt.Stringer.
func (c Class) String() string { return string(c) }
