package appclass

import "testing"

func TestAllHasFiveClassesInTable3Order(t *testing.T) {
	all := All()
	want := []Class{Idle, IO, CPU, Net, Mem}
	if len(all) != 5 {
		t.Fatalf("All() = %d classes, want 5", len(all))
	}
	for i, c := range want {
		if all[i] != c {
			t.Errorf("All()[%d] = %s, want %s", i, all[i], c)
		}
	}
}

func TestValid(t *testing.T) {
	for _, c := range All() {
		if !Valid(c) {
			t.Errorf("Valid(%s) = false", c)
		}
	}
	if Valid("disk") {
		t.Error("Valid(disk) = true")
	}
	if Valid("") {
		t.Error("Valid(\"\") = true")
	}
}

func TestParse(t *testing.T) {
	c, err := Parse("cpu")
	if err != nil || c != CPU {
		t.Errorf("Parse(cpu) = (%v,%v)", c, err)
	}
	if _, err := Parse("bogus"); err == nil {
		t.Error("Parse(bogus): want error")
	}
}

func TestDisplay(t *testing.T) {
	cases := map[Class]string{
		Idle: "Idle", IO: "I/O", CPU: "CPU", Net: "Network", Mem: "Paging",
	}
	for c, want := range cases {
		if got := c.Display(); got != want {
			t.Errorf("%s.Display() = %q, want %q", c, got, want)
		}
	}
	if got := Class("weird").Display(); got != "weird" {
		t.Errorf("unknown Display = %q", got)
	}
}

func TestStrings(t *testing.T) {
	s := Strings()
	if len(s) != 5 || s[2] != "cpu" {
		t.Errorf("Strings() = %v", s)
	}
}
