// Package vmplant models the VMPlant Grid service the classifier was
// built for (Section 2; Krsul et al., SC'04): application-specific
// virtual machine execution environments are defined as directed
// acyclic graphs of configuration actions, validated, cloned, and
// dynamically instantiated onto physical hosts. The classifier's
// application database tells a VMPlant-style scheduler what resources a
// cloned VM's application will need from its host.
package vmplant

import (
	"fmt"
	"sort"

	"repro/internal/vmm"
)

// Action is one configuration step in a VM definition DAG — install a
// package, mount a filesystem, set a resource allocation, stage input
// data. Actions are simulation-level: applying one mutates the pending
// VMConfig or records a provisioning step.
type Action struct {
	// Name identifies the action within its plan.
	Name string
	// DependsOn lists action names that must execute first.
	DependsOn []string
	// Apply mutates the VM configuration being built. A nil Apply is a
	// pure ordering node (the paper's DAGs include synchronization
	// points).
	Apply func(cfg *vmm.VMConfig) error
}

// Plan is a named, validated VM-definition DAG.
type Plan struct {
	name    string
	actions map[string]Action
	order   []string // topological execution order
}

// NewPlan validates a DAG definition: unique action names, no missing
// dependencies, no cycles. The execution order is fixed at creation
// (topological, ties broken lexicographically for determinism).
func NewPlan(name string, actions []Action) (*Plan, error) {
	if name == "" {
		return nil, fmt.Errorf("vmplant: plan needs a name")
	}
	if len(actions) == 0 {
		return nil, fmt.Errorf("vmplant: plan %q has no actions", name)
	}
	byName := make(map[string]Action, len(actions))
	for _, a := range actions {
		if a.Name == "" {
			return nil, fmt.Errorf("vmplant: plan %q has an unnamed action", name)
		}
		if _, dup := byName[a.Name]; dup {
			return nil, fmt.Errorf("vmplant: plan %q has duplicate action %q", name, a.Name)
		}
		byName[a.Name] = a
	}
	indeg := make(map[string]int, len(byName))
	dependents := make(map[string][]string)
	for _, a := range byName {
		for _, dep := range a.DependsOn {
			if _, ok := byName[dep]; !ok {
				return nil, fmt.Errorf("vmplant: action %q depends on unknown %q", a.Name, dep)
			}
			indeg[a.Name]++
			dependents[dep] = append(dependents[dep], a.Name)
		}
	}
	// Kahn's algorithm with a sorted frontier for determinism.
	var frontier []string
	for n := range byName {
		if indeg[n] == 0 {
			frontier = append(frontier, n)
		}
	}
	sort.Strings(frontier)
	var order []string
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		order = append(order, n)
		added := false
		for _, m := range dependents[n] {
			indeg[m]--
			if indeg[m] == 0 {
				frontier = append(frontier, m)
				added = true
			}
		}
		if added {
			sort.Strings(frontier)
		}
	}
	if len(order) != len(byName) {
		return nil, fmt.Errorf("vmplant: plan %q contains a dependency cycle", name)
	}
	return &Plan{name: name, actions: byName, order: order}, nil
}

// Name returns the plan name.
func (p *Plan) Name() string { return p.name }

// Order returns the validated execution order.
func (p *Plan) Order() []string { return append([]string(nil), p.order...) }

// Build executes the DAG over a base VM configuration and returns the
// configured result. The base is not mutated.
func (p *Plan) Build(base vmm.VMConfig) (vmm.VMConfig, error) {
	cfg := base
	for _, name := range p.order {
		a := p.actions[name]
		if a.Apply == nil {
			continue
		}
		if err := a.Apply(&cfg); err != nil {
			return vmm.VMConfig{}, fmt.Errorf("vmplant: plan %q action %q: %w", p.name, name, err)
		}
	}
	return cfg, nil
}

// Common reusable actions.

// WithMemory sets the guest memory.
func WithMemory(kb float64) Action {
	return Action{
		Name: "set-memory",
		Apply: func(cfg *vmm.VMConfig) error {
			if kb <= 0 {
				return fmt.Errorf("memory must be positive, got %v", kb)
			}
			cfg.MemKB = kb
			return nil
		},
	}
}

// WithVCPUs sets the virtual CPU count.
func WithVCPUs(n float64) Action {
	return Action{
		Name: "set-vcpus",
		Apply: func(cfg *vmm.VMConfig) error {
			if n <= 0 {
				return fmt.Errorf("vcpus must be positive, got %v", n)
			}
			cfg.VCPUs = n
			return nil
		},
	}
}

// Plant is the VM production service: it holds validated plans and
// clones VM instances from them onto hosts.
type Plant struct {
	plans  map[string]*Plan
	clones int
}

// NewPlant creates an empty plant.
func NewPlant() *Plant {
	return &Plant{plans: make(map[string]*Plan)}
}

// Register adds a plan. Plan names must be unique.
func (pl *Plant) Register(p *Plan) error {
	if p == nil {
		return fmt.Errorf("vmplant: nil plan")
	}
	if _, dup := pl.plans[p.Name()]; dup {
		return fmt.Errorf("vmplant: plan %q already registered", p.Name())
	}
	pl.plans[p.Name()] = p
	return nil
}

// Plans returns the registered plan names, sorted.
func (pl *Plant) Plans() []string {
	out := make([]string, 0, len(pl.plans))
	for n := range pl.plans {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Clones returns the number of VMs instantiated so far.
func (pl *Plant) Clones() int { return pl.clones }

// Clone instantiates a VM from a registered plan onto a host. Each
// clone gets a unique name derived from the plan ("<plan>-<n>") unless
// nameOverride is given, and a distinct seed so clones do not share
// noise streams.
func (pl *Plant) Clone(plan string, host *vmm.Host, nameOverride string, seed int64) (*vmm.VM, error) {
	p, ok := pl.plans[plan]
	if !ok {
		return nil, fmt.Errorf("vmplant: no plan %q (have %v)", plan, pl.Plans())
	}
	if host == nil {
		return nil, fmt.Errorf("vmplant: nil host")
	}
	pl.clones++
	name := nameOverride
	if name == "" {
		name = fmt.Sprintf("%s-%d", plan, pl.clones)
	}
	cfg, err := p.Build(vmm.VMConfig{Name: name, Seed: seed})
	if err != nil {
		pl.clones--
		return nil, err
	}
	cfg.Name = name
	cfg.Seed = seed
	vm := vmm.NewVM(cfg)
	if err := host.AddVM(vm); err != nil {
		pl.clones--
		return nil, fmt.Errorf("vmplant: place clone %q: %w", name, err)
	}
	return vm, nil
}
