package vmplant

import (
	"strings"
	"testing"

	"repro/internal/vmm"
)

func TestNewPlanTopologicalOrder(t *testing.T) {
	p, err := NewPlan("seismic-vm", []Action{
		{Name: "stage-data", DependsOn: []string{"mount-scratch"}},
		{Name: "base-image"},
		{Name: "mount-scratch", DependsOn: []string{"base-image"}},
		{Name: "install-app", DependsOn: []string{"base-image"}},
		{Name: "finalize", DependsOn: []string{"stage-data", "install-app"}},
	})
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	order := p.Order()
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	deps := map[string][]string{
		"mount-scratch": {"base-image"},
		"install-app":   {"base-image"},
		"stage-data":    {"mount-scratch"},
		"finalize":      {"stage-data", "install-app"},
	}
	for n, ds := range deps {
		for _, d := range ds {
			if pos[d] >= pos[n] {
				t.Errorf("order violates %s -> %s: %v", d, n, order)
			}
		}
	}
}

func TestNewPlanDeterministicOrder(t *testing.T) {
	mk := func() []string {
		p, err := NewPlan("p", []Action{
			{Name: "c"}, {Name: "a"}, {Name: "b"},
		})
		if err != nil {
			t.Fatal(err)
		}
		return p.Order()
	}
	a, b := mk(), mk()
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Errorf("nondeterministic order: %v vs %v", a, b)
	}
	if a[0] != "a" {
		t.Errorf("ties not broken lexicographically: %v", a)
	}
}

func TestNewPlanValidation(t *testing.T) {
	if _, err := NewPlan("", []Action{{Name: "a"}}); err == nil {
		t.Error("empty name: want error")
	}
	if _, err := NewPlan("p", nil); err == nil {
		t.Error("no actions: want error")
	}
	if _, err := NewPlan("p", []Action{{Name: ""}}); err == nil {
		t.Error("unnamed action: want error")
	}
	if _, err := NewPlan("p", []Action{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Error("duplicate action: want error")
	}
	if _, err := NewPlan("p", []Action{{Name: "a", DependsOn: []string{"ghost"}}}); err == nil {
		t.Error("unknown dependency: want error")
	}
	if _, err := NewPlan("p", []Action{
		{Name: "a", DependsOn: []string{"b"}},
		{Name: "b", DependsOn: []string{"a"}},
	}); err == nil {
		t.Error("cycle: want error")
	}
}

func TestPlanBuildAppliesActions(t *testing.T) {
	p, err := NewPlan("small-vm", []Action{
		WithMemory(32 * 1024),
		{Name: "after-mem", DependsOn: []string{"set-memory"}}, // ordering-only node
		WithVCPUs(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := p.Build(vmm.VMConfig{Name: "vm1"})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if cfg.MemKB != 32*1024 || cfg.VCPUs != 2 {
		t.Errorf("built config = %+v", cfg)
	}
}

func TestPlanBuildActionError(t *testing.T) {
	p, err := NewPlan("bad", []Action{WithMemory(-1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Build(vmm.VMConfig{}); err == nil {
		t.Error("failing action: want error")
	}
}

func TestPlantCloneAndPlace(t *testing.T) {
	plant := NewPlant()
	p, err := NewPlan("appvm", []Action{WithMemory(256 * 1024)})
	if err != nil {
		t.Fatal(err)
	}
	if err := plant.Register(p); err != nil {
		t.Fatal(err)
	}
	host := vmm.NewHost(vmm.HostConfig{Name: "h1"})
	vm1, err := plant.Clone("appvm", host, "", 1)
	if err != nil {
		t.Fatalf("Clone: %v", err)
	}
	vm2, err := plant.Clone("appvm", host, "", 2)
	if err != nil {
		t.Fatalf("Clone: %v", err)
	}
	if vm1.Name() == vm2.Name() {
		t.Errorf("clones share a name: %s", vm1.Name())
	}
	if plant.Clones() != 2 {
		t.Errorf("Clones = %d", plant.Clones())
	}
	if got := len(host.VMs()); got != 2 {
		t.Errorf("host has %d VMs, want 2", got)
	}
	if vm1.Config().MemKB != 256*1024 {
		t.Errorf("clone config = %+v", vm1.Config())
	}
}

func TestPlantCloneNameOverrideAndErrors(t *testing.T) {
	plant := NewPlant()
	p, err := NewPlan("appvm", []Action{WithMemory(1024 * 64)})
	if err != nil {
		t.Fatal(err)
	}
	if err := plant.Register(p); err != nil {
		t.Fatal(err)
	}
	if err := plant.Register(p); err == nil {
		t.Error("duplicate plan registration: want error")
	}
	if err := plant.Register(nil); err == nil {
		t.Error("nil plan: want error")
	}
	host := vmm.NewHost(vmm.HostConfig{Name: "h1"})
	vm, err := plant.Clone("appvm", host, "custom-name", 1)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Name() != "custom-name" {
		t.Errorf("name = %q", vm.Name())
	}
	if _, err := plant.Clone("ghost", host, "", 1); err == nil {
		t.Error("unknown plan: want error")
	}
	if _, err := plant.Clone("appvm", nil, "", 1); err == nil {
		t.Error("nil host: want error")
	}
	// Duplicate VM name on the host must fail and roll back the count.
	before := plant.Clones()
	if _, err := plant.Clone("appvm", host, "custom-name", 2); err == nil {
		t.Error("duplicate VM name: want error")
	}
	if plant.Clones() != before {
		t.Errorf("failed clone leaked into count: %d vs %d", plant.Clones(), before)
	}
}

func TestPlansSorted(t *testing.T) {
	plant := NewPlant()
	for _, n := range []string{"zeta", "alpha"} {
		p, err := NewPlan(n, []Action{WithMemory(1024)})
		if err != nil {
			t.Fatal(err)
		}
		if err := plant.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	names := plant.Plans()
	if len(names) != 2 || names[0] != "alpha" {
		t.Errorf("Plans = %v", names)
	}
}
