package knn

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// trainRandom2D builds a classifier over n random 2-D points with
// random labels from the given label set.
func trainRandom2D(t testing.TB, rng *rand.Rand, n int, labels []string, indexed bool) *Classifier {
	t.Helper()
	c, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	points := make([]linalg.Vector, n)
	labs := make([]string, n)
	for i := range points {
		points[i] = linalg.Vector{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		labs[i] = labels[rng.Intn(len(labels))]
	}
	if err := c.Train(points, labs); err != nil {
		t.Fatal(err)
	}
	if indexed {
		if err := c.EnableIndex(); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestClassifyIDMatchesClassify(t *testing.T) {
	labels := []string{"cpu", "io", "net", "mem", "idle"}
	for _, indexed := range []bool{false, true} {
		t.Run(fmt.Sprintf("indexed-%v", indexed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(31))
			c := trainRandom2D(t, rng, 300, labels, indexed)
			if got, want := c.NumClasses(), len(labels); got > want || got < 2 {
				t.Fatalf("NumClasses = %d", got)
			}
			var s Scratch
			for probe := 0; probe < 500; probe++ {
				x := linalg.Vector{rng.NormFloat64() * 12, rng.NormFloat64() * 12}
				label, err := c.Classify(x)
				if err != nil {
					t.Fatal(err)
				}
				id, err := c.ClassifyID(x, &s)
				if err != nil {
					t.Fatal(err)
				}
				if c.ClassName(id) != label {
					t.Fatalf("probe %d: ClassifyID → %q, Classify → %q", probe, c.ClassName(id), label)
				}
			}
		})
	}
}

// TestIndexedMatchesBruteTopK re-checks the rewritten top-k grid search
// against the brute-force path, neighbours and order included.
func TestIndexedMatchesBruteTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	brute := trainRandom2D(t, rng, 400, []string{"a", "b", "c"}, false)
	idx, err := NewGridIndex(brute.points, brute.labels, 0)
	if err != nil {
		t.Fatal(err)
	}
	for probe := 0; probe < 300; probe++ {
		x := linalg.Vector{rng.NormFloat64() * 15, rng.NormFloat64() * 15}
		want, err := brute.Neighbors(x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := idx.Neighbors(x, brute.k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("probe %d: %d neighbours, want %d", probe, len(got), len(want))
		}
		for i := range got {
			if got[i].Index != want[i].Index {
				t.Fatalf("probe %d neighbour %d: index %d, want %d", probe, i, got[i].Index, want[i].Index)
			}
		}
	}
}

func TestClassifyIDZeroAllocsIndexed(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := trainRandom2D(t, rng, 500, []string{"cpu", "io", "net"}, true)
	queries := make([]linalg.Vector, 64)
	for i := range queries {
		queries[i] = linalg.Vector{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
	}
	var s Scratch
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := c.ClassifyID(queries[i%len(queries)], &s); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Errorf("indexed ClassifyID allocates %v per run, want 0", allocs)
	}
}

func TestClassifyIDsMatchesBatchAndParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	c := trainRandom2D(t, rng, 250, []string{"cpu", "io", "net", "mem"}, true)
	rows := linalg.NewMatrix(333, 2)
	for i := 0; i < rows.Rows(); i++ {
		rows.Set(i, 0, rng.NormFloat64()*10)
		rows.Set(i, 1, rng.NormFloat64()*10)
	}
	labels, err := c.ClassifyBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, rows.Rows())
	if err := c.ClassifyIDs(rows, ids, nil); err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if c.ClassName(ids[i]) != labels[i] {
			t.Fatalf("row %d: ids %q, batch %q", i, c.ClassName(ids[i]), labels[i])
		}
	}
	for _, workers := range []int{0, 1, 3, 8} {
		par, err := c.ClassifyBatchParallel(rows, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range par {
			if par[i] != labels[i] {
				t.Fatalf("workers=%d row %d: %q, want %q", workers, i, par[i], labels[i])
			}
		}
		pids := make([]int, rows.Rows())
		if err := c.ClassifyIDsParallel(rows, pids, workers); err != nil {
			t.Fatal(err)
		}
		for i := range pids {
			if pids[i] != ids[i] {
				t.Fatalf("workers=%d row %d: id %d, want %d", workers, i, pids[i], ids[i])
			}
		}
	}
}

func TestClassesInterning(t *testing.T) {
	c, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	pts := []linalg.Vector{{0, 0}, {1, 0}, {2, 0}, {3, 0}}
	if err := c.Train(pts, []string{"b", "a", "b", "c"}); err != nil {
		t.Fatal(err)
	}
	want := []string{"b", "a", "c"} // first-seen order
	got := c.Classes()
	if len(got) != len(want) {
		t.Fatalf("Classes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] || c.ClassName(i) != want[i] {
			t.Fatalf("class %d = %q, want %q", i, got[i], want[i])
		}
	}
}
