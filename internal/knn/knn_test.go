package knn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func newTrained(t *testing.T, k int) *Classifier {
	t.Helper()
	c, err := New(k)
	if err != nil {
		t.Fatal(err)
	}
	// Two clusters: "a" around (0,0), "b" around (10,10).
	points := []linalg.Vector{
		{0, 0}, {0.5, 0}, {0, 0.5},
		{10, 10}, {10.5, 10}, {10, 10.5},
	}
	labels := []string{"a", "a", "a", "b", "b", "b"}
	if err := c.Train(points, labels); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := New(-3); err == nil {
		t.Error("negative k: want error")
	}
	if _, err := New(4); err == nil {
		t.Error("even k: want error (paper requires odd)")
	}
	if _, err := New(3); err != nil {
		t.Errorf("k=3: %v", err)
	}
}

func TestClassifyTwoClusters(t *testing.T) {
	c := newTrained(t, 3)
	for _, tc := range []struct {
		x    linalg.Vector
		want string
	}{
		{linalg.Vector{0.2, 0.2}, "a"},
		{linalg.Vector{9.8, 10.1}, "b"},
		{linalg.Vector{-5, -5}, "a"},
		{linalg.Vector{100, 100}, "b"},
	} {
		got, err := c.Classify(tc.x)
		if err != nil {
			t.Fatalf("Classify(%v): %v", tc.x, err)
		}
		if got != tc.want {
			t.Errorf("Classify(%v) = %q, want %q", tc.x, got, tc.want)
		}
	}
}

func TestNeighborsSortedAndLimited(t *testing.T) {
	c := newTrained(t, 3)
	nbrs, err := c.Neighbors(linalg.Vector{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 3 {
		t.Fatalf("got %d neighbors, want 3", len(nbrs))
	}
	if nbrs[0].Distance != 0 {
		t.Errorf("nearest distance = %v, want 0 (exact training point)", nbrs[0].Distance)
	}
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i].Distance < nbrs[i-1].Distance {
			t.Errorf("neighbors not sorted: %v", nbrs)
		}
	}
}

func TestClassifyTieFallsBackToNearest(t *testing.T) {
	c, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	// Three distinct labels: every 3-vote is a 1-1-1 tie; the nearest
	// neighbour must win.
	err = c.Train([]linalg.Vector{{0, 0}, {2, 0}, {4, 0}}, []string{"x", "y", "z"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Classify(linalg.Vector{0.4, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got != "x" {
		t.Errorf("tie broken to %q, want nearest label x", got)
	}
}

func TestClassifyFewerPointsThanK(t *testing.T) {
	c, err := New(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Train([]linalg.Vector{{0}}, []string{"only"}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Classify(linalg.Vector{9})
	if err != nil {
		t.Fatal(err)
	}
	if got != "only" {
		t.Errorf("got %q", got)
	}
}

func TestTrainValidation(t *testing.T) {
	c, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Train([]linalg.Vector{{1}}, []string{"a", "b"}); err == nil {
		t.Error("count mismatch: want error")
	}
	if err := c.Train([]linalg.Vector{{}}, []string{"a"}); err == nil {
		t.Error("empty point: want error")
	}
	if err := c.Train([]linalg.Vector{{1, 2}}, []string{""}); err == nil {
		t.Error("empty label: want error")
	}
	if err := c.Train([]linalg.Vector{{1, 2}}, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Train([]linalg.Vector{{1}}, []string{"a"}); err == nil {
		t.Error("dimension change: want error")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestClassifyValidation(t *testing.T) {
	c, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Classify(linalg.Vector{1}); err == nil {
		t.Error("untrained classify: want error")
	}
	if err := c.Train([]linalg.Vector{{1, 2}}, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Classify(linalg.Vector{1}); err == nil {
		t.Error("wrong query dims: want error")
	}
}

func TestTrainClonesPoints(t *testing.T) {
	c, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	p := linalg.Vector{1, 1}
	if err := c.Train([]linalg.Vector{p}, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	p[0] = 999
	got, err := c.Classify(linalg.Vector{1, 1})
	if err != nil || got != "a" {
		t.Errorf("training data aliased caller storage: (%q,%v)", got, err)
	}
	nbrs, _ := c.Neighbors(linalg.Vector{1, 1})
	if nbrs[0].Distance != 0 {
		t.Errorf("training point mutated: distance %v", nbrs[0].Distance)
	}
}

func TestClassifyBatch(t *testing.T) {
	c := newTrained(t, 3)
	m := linalg.NewMatrix(2, 2)
	m.Set(0, 0, 0.1)
	m.Set(1, 0, 9.9)
	m.Set(1, 1, 9.9)
	labels, err := c.ClassifyBatch(m)
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != "a" || labels[1] != "b" {
		t.Errorf("batch = %v, want [a b]", labels)
	}
}

func TestManhattanDistance(t *testing.T) {
	d, err := Manhattan(linalg.Vector{0, 0}, linalg.Vector{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if d != 7 {
		t.Errorf("Manhattan = %v, want 7", d)
	}
	if _, err := Manhattan(linalg.Vector{1}, linalg.Vector{1, 2}); err == nil {
		t.Error("dim mismatch: want error")
	}
}

func TestWithDistanceOption(t *testing.T) {
	c, err := New(1, WithDistance(Manhattan))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Train([]linalg.Vector{{0, 0}, {5, 5}}, []string{"near", "far"}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Classify(linalg.Vector{1, 1})
	if err != nil || got != "near" {
		t.Errorf("Classify = (%q,%v)", got, err)
	}
}

// Property: 1-NN classifies every training point as its own label
// (with distinct points).
func TestOneNNMemorizesTrainingSet(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	var points []linalg.Vector
	var labels []string
	for i := 0; i < 60; i++ {
		points = append(points, linalg.Vector{rng.NormFloat64() * 10, rng.NormFloat64() * 10})
		labels = append(labels, []string{"a", "b", "c"}[i%3])
	}
	if err := c.Train(points, labels); err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		got, err := c.Classify(p)
		if err != nil {
			t.Fatal(err)
		}
		if got != labels[i] {
			// Identical coordinates with different labels can
			// legitimately flip; ensure the points really differ.
			dup := false
			for j, q := range points {
				if j != i && math.Abs(q[0]-p[0]) < 1e-12 && math.Abs(q[1]-p[1]) < 1e-12 {
					dup = true
				}
			}
			if !dup {
				t.Fatalf("1-NN misclassified its own training point %d: %q != %q", i, got, labels[i])
			}
		}
	}
}

// Property: predictions are invariant under translation of the whole
// space.
func TestTranslationInvarianceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 20; trial++ {
		var points []linalg.Vector
		var labels []string
		for i := 0; i < 30; i++ {
			points = append(points, linalg.Vector{rng.NormFloat64() * 5, rng.NormFloat64() * 5})
			labels = append(labels, []string{"a", "b"}[i%2])
		}
		shift := linalg.Vector{rng.NormFloat64() * 100, rng.NormFloat64() * 100}
		c1, _ := New(3)
		c2, _ := New(3)
		if err := c1.Train(points, labels); err != nil {
			t.Fatal(err)
		}
		shifted := make([]linalg.Vector, len(points))
		for i, p := range points {
			s, _ := p.Add(shift)
			shifted[i] = s
		}
		if err := c2.Train(shifted, labels); err != nil {
			t.Fatal(err)
		}
		q := linalg.Vector{rng.NormFloat64() * 5, rng.NormFloat64() * 5}
		qs, _ := q.Add(shift)
		l1, err := c1.Classify(q)
		if err != nil {
			t.Fatal(err)
		}
		l2, err := c2.Classify(qs)
		if err != nil {
			t.Fatal(err)
		}
		if l1 != l2 {
			t.Fatalf("trial %d: translation changed prediction %q -> %q", trial, l1, l2)
		}
	}
}
