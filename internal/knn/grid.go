package knn

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// GridIndex accelerates nearest-neighbour queries over two-dimensional
// feature spaces (the classifier's PCA output is 2-D) by bucketing
// training points into a uniform grid and searching outward in rings.
// Results are exactly the brute-force neighbours; the index only changes
// the search order.
type GridIndex struct {
	cell       float64
	minX, minY float64
	maxX, maxY float64
	buckets    map[[2]int][]int
	points     []linalg.Vector
	labels     []string
}

// NewGridIndex builds an index over 2-D points. The cell size is chosen
// so the average bucket holds targetPerCell points (default 8 when <= 0).
func NewGridIndex(points []linalg.Vector, labels []string, targetPerCell int) (*GridIndex, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("knn: grid index needs points")
	}
	if len(points) != len(labels) {
		return nil, fmt.Errorf("knn: %d points but %d labels", len(points), len(labels))
	}
	if targetPerCell <= 0 {
		targetPerCell = 8
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for i, p := range points {
		if len(p) != 2 {
			return nil, fmt.Errorf("knn: grid index requires 2-D points, point %d has %d dims", i, len(p))
		}
		minX, maxX = math.Min(minX, p[0]), math.Max(maxX, p[0])
		minY, maxY = math.Min(minY, p[1]), math.Max(maxY, p[1])
	}
	spanX, spanY := maxX-minX, maxY-minY
	area := spanX * spanY
	var cell float64
	switch {
	case area > 0:
		cell = math.Sqrt(area * float64(targetPerCell) / float64(len(points)))
	case spanX > 0:
		cell = spanX * float64(targetPerCell) / float64(len(points))
	case spanY > 0:
		cell = spanY * float64(targetPerCell) / float64(len(points))
	default:
		cell = 1 // all points identical
	}
	// Bound the grid to at most ~256 cells per axis so elongated data
	// cannot produce degenerate, ring-search-hostile geometries.
	if bound := math.Max(spanX, spanY) / 256; cell < bound {
		cell = bound
	}
	g := &GridIndex{
		cell: cell, minX: minX, minY: minY, maxX: maxX, maxY: maxY,
		buckets: make(map[[2]int][]int),
		labels:  append([]string(nil), labels...),
	}
	g.points = make([]linalg.Vector, len(points))
	for i, p := range points {
		g.points[i] = p.Clone()
		key := g.cellOf(p[0], p[1])
		g.buckets[key] = append(g.buckets[key], i)
	}
	return g, nil
}

func (g *GridIndex) cellOf(x, y float64) [2]int {
	return [2]int{int(math.Floor((x - g.minX) / g.cell)), int(math.Floor((y - g.minY) / g.cell))}
}

// Len returns the number of indexed points.
func (g *GridIndex) Len() int { return len(g.points) }

// Neighbors returns the k nearest indexed points to x, closest first,
// identical to the brute-force result (ties broken by insertion order).
func (g *GridIndex) Neighbors(x linalg.Vector, k int) ([]Neighbor, error) {
	return g.NeighborsInto(x, k, nil)
}

// NeighborsInto is Neighbors with a caller-owned result buffer: best's
// backing array is reused (it needs capacity k to avoid growth), so a
// query with a recycled buffer performs no allocation. The returned
// slice aliases best's array.
func (g *GridIndex) NeighborsInto(x linalg.Vector, k int, best []Neighbor) ([]Neighbor, error) {
	if len(x) != 2 {
		return nil, fmt.Errorf("knn: grid query must be 2-D, got %d dims", len(x))
	}
	if k <= 0 {
		return nil, fmt.Errorf("knn: k must be positive, got %d", k)
	}
	if k > len(g.points) {
		k = len(g.points)
	}
	best = best[:0]
	center := g.cellOf(x[0], x[1])
	// Expand square rings until the k-th best distance is guaranteed:
	// any point in a cell at Chebyshev ring distance > r is at least
	// r*cell away from the query. Rings nearer than the data's bounding
	// box are empty and are skipped outright (a query far outside the
	// grid would otherwise march millions of empty rings); the last ring
	// that can contain data is the Chebyshev distance from the query
	// cell to the far corner of the box. A running top-k (sorted by
	// distance, then insertion order) replaces the collect-then-sort of
	// the old implementation; the candidates retained and the
	// termination decisions are identical.
	maxCorner := g.cellOf(g.maxX, g.maxY)
	firstRing := maxInt(
		0,
		-center[0], center[0]-maxCorner[0],
		-center[1], center[1]-maxCorner[1],
	)
	maxRing := maxInt(
		absInt(center[0]), absInt(center[0]-maxCorner[0]),
		absInt(center[1]), absInt(center[1]-maxCorner[1]),
	) + 1
	seen := 0
	for r := firstRing; r <= maxRing; r++ {
		seen += g.scanRing(center, r, x, &best, k)
		if seen == len(g.points) {
			break // everything scanned; no farther ring can help
		}
		if len(best) == k && best[k-1].Distance <= float64(r)*g.cell {
			break
		}
	}
	return best, nil
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func maxInt(xs ...int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// scanRing feeds every point from cells at exactly Chebyshev distance r
// from the center cell into the running top-k, returning how many
// points were scanned. Scans are clamped to the data's cell bounding
// box [0, maxCell] so the cost per ring is bounded by the box
// perimeter, not the ring radius.
func (g *GridIndex) scanRing(center [2]int, r int, x linalg.Vector, best *[]Neighbor, k int) int {
	maxCell := g.cellOf(g.maxX, g.maxY)
	add := func(cx, cy int) int {
		if cx < 0 || cy < 0 || cx > maxCell[0] || cy > maxCell[1] {
			return 0
		}
		n := 0
		for _, idx := range g.buckets[[2]int{cx, cy}] {
			p := g.points[idx]
			dx, dy := p[0]-x[0], p[1]-x[1]
			insertTopK(best, Neighbor{
				Index:    idx,
				Label:    g.labels[idx],
				Distance: math.Hypot(dx, dy),
			}, k)
			n++
		}
		return n
	}
	if r == 0 {
		return add(center[0], center[1])
	}
	n := 0
	loX := maxInt(center[0]-r, 0)
	hiX := minInt(center[0]+r, maxCell[0])
	for cx := loX; cx <= hiX; cx++ {
		n += add(cx, center[1]-r)
		n += add(cx, center[1]+r)
	}
	loY := maxInt(center[1]-r+1, 0)
	hiY := minInt(center[1]+r-1, maxCell[1])
	for cy := loY; cy <= hiY; cy++ {
		n += add(center[0]-r, cy)
		n += add(center[0]+r, cy)
	}
	return n
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Classify returns the majority label of x's k nearest neighbours with
// the same tie rule as Classifier.Classify.
func (g *GridIndex) Classify(x linalg.Vector, k int) (string, error) {
	nbrs, err := g.Neighbors(x, k)
	if err != nil {
		return "", err
	}
	counts := make(map[string]int, len(nbrs))
	best := 0
	for _, n := range nbrs {
		counts[n.Label]++
		if counts[n.Label] > best {
			best = counts[n.Label]
		}
	}
	for _, n := range nbrs {
		if counts[n.Label] == best {
			return n.Label, nil
		}
	}
	return "", fmt.Errorf("knn: vote produced no label") // unreachable
}
