// Package knn implements the k-nearest-neighbour classifier of
// Section 3: the class of a test point is the majority vote of the k
// training points geometrically closest to it in the feature space. The
// paper uses k = 3 ("an odd number") over the two-dimensional PCA
// feature space.
package knn

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/linalg"
)

// Distance measures how far apart two feature vectors are.
type Distance func(a, b linalg.Vector) (float64, error)

// Euclidean is the default distance.
func Euclidean(a, b linalg.Vector) (float64, error) { return a.Dist(b) }

// Manhattan is the L1 distance, available for ablation experiments.
func Manhattan(a, b linalg.Vector) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("knn: manhattan distance of %d vs %d dims", len(a), len(b))
	}
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s, nil
}

// Classifier is a k-NN classifier over labelled feature vectors.
type Classifier struct {
	k      int
	dist   Distance
	points []linalg.Vector
	labels []string
	dims   int
	// index, when enabled, accelerates Euclidean 2-D queries without
	// changing results.
	index *GridIndex
	// customDist records whether WithDistance replaced the Euclidean
	// default (the grid index hard-codes Euclidean geometry).
	customDist bool
}

// Option configures a Classifier.
type Option func(*Classifier)

// WithDistance overrides the Euclidean default.
func WithDistance(d Distance) Option {
	return func(c *Classifier) {
		c.dist = d
		c.customDist = true
	}
}

// New creates a k-NN classifier. k must be positive and odd (the paper's
// tie-avoidance rule).
func New(k int, opts ...Option) (*Classifier, error) {
	if k <= 0 {
		return nil, fmt.Errorf("knn: k must be positive, got %d", k)
	}
	if k%2 == 0 {
		return nil, fmt.Errorf("knn: k must be odd (the paper's rule), got %d", k)
	}
	c := &Classifier{k: k, dist: Euclidean}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// K returns the configured neighbour count.
func (c *Classifier) K() int { return c.k }

// Len returns the number of training points.
func (c *Classifier) Len() int { return len(c.points) }

// Train adds labelled points to the training set. All points across all
// Train calls must have the same dimensionality.
func (c *Classifier) Train(points []linalg.Vector, labels []string) error {
	if len(points) != len(labels) {
		return fmt.Errorf("knn: %d points but %d labels", len(points), len(labels))
	}
	for i, p := range points {
		if len(p) == 0 {
			return fmt.Errorf("knn: empty training point at %d", i)
		}
		if c.dims == 0 {
			c.dims = len(p)
		}
		if len(p) != c.dims {
			return fmt.Errorf("knn: training point %d has %d dims, want %d", i, len(p), c.dims)
		}
		if labels[i] == "" {
			return fmt.Errorf("knn: empty label at %d", i)
		}
		c.points = append(c.points, p.Clone())
		c.labels = append(c.labels, labels[i])
	}
	// New training data invalidates any built index.
	c.index = nil
	return nil
}

// EnableIndex builds a grid index over the training data, accelerating
// subsequent queries. It requires two-dimensional points and the
// Euclidean distance (the classifier's PCA feature space satisfies
// both); results are identical to brute force.
func (c *Classifier) EnableIndex() error {
	if len(c.points) == 0 {
		return fmt.Errorf("knn: cannot index an untrained classifier")
	}
	if c.dims != 2 {
		return fmt.Errorf("knn: grid index requires 2-D points, trained on %d dims", c.dims)
	}
	// The index hard-codes Euclidean geometry.
	if c.customDist {
		return fmt.Errorf("knn: grid index requires the Euclidean distance")
	}
	idx, err := NewGridIndex(c.points, c.labels, 0)
	if err != nil {
		return err
	}
	c.index = idx
	return nil
}

// Indexed reports whether a grid index is active.
func (c *Classifier) Indexed() bool { return c.index != nil }

// Neighbor is one training point ranked by distance to a query.
type Neighbor struct {
	Index    int
	Label    string
	Distance float64
}

// Neighbors returns the k training points nearest to x, closest first.
// Equal distances break ties by training insertion order, keeping
// results deterministic.
func (c *Classifier) Neighbors(x linalg.Vector) ([]Neighbor, error) {
	if len(c.points) == 0 {
		return nil, fmt.Errorf("knn: classifier has no training data")
	}
	if len(x) != c.dims {
		return nil, fmt.Errorf("knn: query has %d dims, trained on %d", len(x), c.dims)
	}
	if c.index != nil {
		return c.index.Neighbors(x, c.k)
	}
	all := make([]Neighbor, len(c.points))
	for i, p := range c.points {
		d, err := c.dist(x, p)
		if err != nil {
			return nil, err
		}
		all[i] = Neighbor{Index: i, Label: c.labels[i], Distance: d}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Distance < all[j].Distance })
	k := c.k
	if k > len(all) {
		k = len(all)
	}
	return all[:k], nil
}

// Classify returns the majority label of the k nearest neighbours of x.
// If the vote ties (possible with more classes than k), the label of the
// nearest neighbour among the tied labels wins.
func (c *Classifier) Classify(x linalg.Vector) (string, error) {
	nbrs, err := c.Neighbors(x)
	if err != nil {
		return "", err
	}
	counts := make(map[string]int, len(nbrs))
	best := 0
	for _, n := range nbrs {
		counts[n.Label]++
		if counts[n.Label] > best {
			best = counts[n.Label]
		}
	}
	// Neighbors are sorted by distance: the first tied label is the
	// nearest one.
	for _, n := range nbrs {
		if counts[n.Label] == best {
			return n.Label, nil
		}
	}
	return "", fmt.Errorf("knn: vote produced no label") // unreachable
}

// ClassifyBatch classifies each row of a matrix, returning one label per
// row.
func (c *Classifier) ClassifyBatch(rows *linalg.Matrix) ([]string, error) {
	out := make([]string, rows.Rows())
	for i := 0; i < rows.Rows(); i++ {
		label, err := c.Classify(rows.Row(i))
		if err != nil {
			return nil, fmt.Errorf("knn: row %d: %w", i, err)
		}
		out[i] = label
	}
	return out, nil
}
