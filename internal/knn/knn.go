// Package knn implements the k-nearest-neighbour classifier of
// Section 3: the class of a test point is the majority vote of the k
// training points geometrically closest to it in the feature space. The
// paper uses k = 3 ("an odd number") over the two-dimensional PCA
// feature space.
package knn

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Distance measures how far apart two feature vectors are.
type Distance func(a, b linalg.Vector) (float64, error)

// Euclidean is the default distance.
func Euclidean(a, b linalg.Vector) (float64, error) { return a.Dist(b) }

// Manhattan is the L1 distance, available for ablation experiments.
func Manhattan(a, b linalg.Vector) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("knn: manhattan distance of %d vs %d dims", len(a), len(b))
	}
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s, nil
}

// Classifier is a k-NN classifier over labelled feature vectors.
type Classifier struct {
	k      int
	dist   Distance
	points []linalg.Vector
	labels []string
	dims   int
	// Labels are interned at Train time: classNames holds the distinct
	// labels in first-seen order, classIDs the per-point index into it.
	// The integer fast path (ClassifyID) votes over these IDs and never
	// touches a label string.
	classNames []string
	classIDs   []int
	classIndex map[string]int
	// index, when enabled, accelerates Euclidean 2-D queries without
	// changing results.
	index *GridIndex
	// customDist records whether WithDistance replaced the Euclidean
	// default (the grid index hard-codes Euclidean geometry).
	customDist bool
}

// Option configures a Classifier.
type Option func(*Classifier)

// WithDistance overrides the Euclidean default.
func WithDistance(d Distance) Option {
	return func(c *Classifier) {
		c.dist = d
		c.customDist = true
	}
}

// New creates a k-NN classifier. k must be positive and odd (the paper's
// tie-avoidance rule).
func New(k int, opts ...Option) (*Classifier, error) {
	if k <= 0 {
		return nil, fmt.Errorf("knn: k must be positive, got %d", k)
	}
	if k%2 == 0 {
		return nil, fmt.Errorf("knn: k must be odd (the paper's rule), got %d", k)
	}
	c := &Classifier{k: k, dist: Euclidean}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// K returns the configured neighbour count.
func (c *Classifier) K() int { return c.k }

// Len returns the number of training points.
func (c *Classifier) Len() int { return len(c.points) }

// Train adds labelled points to the training set. All points across all
// Train calls must have the same dimensionality.
func (c *Classifier) Train(points []linalg.Vector, labels []string) error {
	if len(points) != len(labels) {
		return fmt.Errorf("knn: %d points but %d labels", len(points), len(labels))
	}
	for i, p := range points {
		if len(p) == 0 {
			return fmt.Errorf("knn: empty training point at %d", i)
		}
		if c.dims == 0 {
			c.dims = len(p)
		}
		if len(p) != c.dims {
			return fmt.Errorf("knn: training point %d has %d dims, want %d", i, len(p), c.dims)
		}
		if labels[i] == "" {
			return fmt.Errorf("knn: empty label at %d", i)
		}
		c.points = append(c.points, p.Clone())
		c.labels = append(c.labels, labels[i])
		if c.classIndex == nil {
			c.classIndex = make(map[string]int)
		}
		id, ok := c.classIndex[labels[i]]
		if !ok {
			id = len(c.classNames)
			c.classIndex[labels[i]] = id
			c.classNames = append(c.classNames, labels[i])
		}
		c.classIDs = append(c.classIDs, id)
	}
	// New training data invalidates any built index.
	c.index = nil
	return nil
}

// NumClasses returns the number of distinct training labels.
func (c *Classifier) NumClasses() int { return len(c.classNames) }

// ClassName returns the label interned as id (see ClassifyID).
func (c *Classifier) ClassName(id int) string {
	if id < 0 || id >= len(c.classNames) {
		panic(fmt.Sprintf("knn: class id %d out of range [0,%d)", id, len(c.classNames)))
	}
	return c.classNames[id]
}

// Classes returns the distinct training labels in interning order: the
// label interned as id i is at position i.
func (c *Classifier) Classes() []string {
	return append([]string(nil), c.classNames...)
}

// EnableIndex builds a grid index over the training data, accelerating
// subsequent queries. It requires two-dimensional points and the
// Euclidean distance (the classifier's PCA feature space satisfies
// both); results are identical to brute force.
func (c *Classifier) EnableIndex() error {
	if len(c.points) == 0 {
		return fmt.Errorf("knn: cannot index an untrained classifier")
	}
	if c.dims != 2 {
		return fmt.Errorf("knn: grid index requires 2-D points, trained on %d dims", c.dims)
	}
	// The index hard-codes Euclidean geometry.
	if c.customDist {
		return fmt.Errorf("knn: grid index requires the Euclidean distance")
	}
	idx, err := NewGridIndex(c.points, c.labels, 0)
	if err != nil {
		return err
	}
	c.index = idx
	return nil
}

// Indexed reports whether a grid index is active.
func (c *Classifier) Indexed() bool { return c.index != nil }

// Neighbor is one training point ranked by distance to a query.
type Neighbor struct {
	Index    int
	Label    string
	Distance float64
}

// neighborLess orders candidates by distance, breaking exact ties by
// training insertion order — the brute-force stable-sort order, which
// the grid index and the top-k kernels must reproduce exactly.
func neighborLess(a, b Neighbor) bool {
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	return a.Index < b.Index
}

// insertTopK inserts nb into best — kept sorted by neighborLess with at
// most k entries — shifting worse entries down. best must have capacity
// k so steady-state insertion never allocates.
func insertTopK(best *[]Neighbor, nb Neighbor, k int) {
	b := *best
	if len(b) == k {
		if !neighborLess(nb, b[k-1]) {
			return
		}
	} else {
		b = append(b, Neighbor{})
	}
	i := len(b) - 1
	for i > 0 && neighborLess(nb, b[i-1]) {
		b[i] = b[i-1]
		i--
	}
	b[i] = nb
	*best = b
}

// Scratch holds the caller-owned buffers of the allocation-free query
// path (ClassifyID and the batch kernels). The zero value is ready to
// use; buffers grow on first use and are reused afterwards. A Scratch
// must not be shared between concurrent queries.
type Scratch struct {
	cand  []Neighbor
	votes []int
}

// neighborsInto finds the k nearest neighbours of x, closest first,
// reusing best's backing array. With the grid index enabled (and the
// default Euclidean distance) the search is allocation-free; the
// brute-force fallback allocates inside the pluggable Distance.
func (c *Classifier) neighborsInto(x linalg.Vector, k int, best []Neighbor) ([]Neighbor, error) {
	if c.index != nil {
		return c.index.NeighborsInto(x, k, best)
	}
	best = best[:0]
	for i, p := range c.points {
		d, err := c.dist(x, p)
		if err != nil {
			return nil, err
		}
		insertTopK(&best, Neighbor{Index: i, Label: c.labels[i], Distance: d}, k)
	}
	return best, nil
}

// Neighbors returns the k training points nearest to x, closest first.
// Equal distances break ties by training insertion order, keeping
// results deterministic.
func (c *Classifier) Neighbors(x linalg.Vector) ([]Neighbor, error) {
	if len(c.points) == 0 {
		return nil, fmt.Errorf("knn: classifier has no training data")
	}
	if len(x) != c.dims {
		return nil, fmt.Errorf("knn: query has %d dims, trained on %d", len(x), c.dims)
	}
	k := c.k
	if k > len(c.points) {
		k = len(c.points)
	}
	return c.neighborsInto(x, k, make([]Neighbor, 0, k))
}

// ClassifyID returns the interned class ID (see ClassName) of the
// majority vote of the k nearest neighbours of x — the integer fast
// path: no label strings are touched and, with a grid index and a
// reused Scratch, nothing is allocated. A nil scratch classifies with
// temporary buffers. The tie rule matches Classify: the nearest
// neighbour among tied classes wins.
func (c *Classifier) ClassifyID(x linalg.Vector, s *Scratch) (int, error) {
	id, _, err := c.ClassifyIDDist(x, s)
	return id, err
}

// ClassifyIDDist is ClassifyID plus the distance to the kth nearest
// neighbour — the open-set novelty signal: a query far from all
// training points of its voted class is not well explained by that
// class. The distance comes for free from the neighbour search, so
// this path is exactly as fast and allocation-free as ClassifyID.
func (c *Classifier) ClassifyIDDist(x linalg.Vector, s *Scratch) (int, float64, error) {
	if len(c.points) == 0 {
		return 0, 0, fmt.Errorf("knn: classifier has no training data")
	}
	if len(x) != c.dims {
		return 0, 0, fmt.Errorf("knn: query has %d dims, trained on %d", len(x), c.dims)
	}
	if s == nil {
		s = &Scratch{}
	}
	k := c.k
	if k > len(c.points) {
		k = len(c.points)
	}
	if cap(s.cand) < k {
		s.cand = make([]Neighbor, 0, k)
	}
	nbrs, err := c.neighborsInto(x, k, s.cand[:0])
	if err != nil {
		return 0, 0, err
	}
	s.cand = nbrs[:0]
	if cap(s.votes) < len(c.classNames) {
		s.votes = make([]int, len(c.classNames))
	}
	votes := s.votes[:len(c.classNames)]
	for i := range votes {
		votes[i] = 0
	}
	best := 0
	for _, n := range nbrs {
		id := c.classIDs[n.Index]
		votes[id]++
		if votes[id] > best {
			best = votes[id]
		}
	}
	// Neighbours are sorted by distance: the kth distance is the last
	// entry's, and the first tied class is the nearest one.
	kth := nbrs[len(nbrs)-1].Distance
	for _, n := range nbrs {
		if id := c.classIDs[n.Index]; votes[id] == best {
			return id, kth, nil
		}
	}
	return 0, 0, fmt.Errorf("knn: vote produced no label") // unreachable
}

// Classify returns the majority label of the k nearest neighbours of x.
// If the vote ties (possible with more classes than k), the label of the
// nearest neighbour among the tied labels wins.
func (c *Classifier) Classify(x linalg.Vector) (string, error) {
	id, err := c.ClassifyID(x, nil)
	if err != nil {
		return "", err
	}
	return c.classNames[id], nil
}

// classifyIDsRange classifies rows [lo, hi) of a matrix into out,
// sharing one scratch across the range and reading rows in place — the
// per-worker body of the blocked batch kernel.
func (c *Classifier) classifyIDsRange(rows *linalg.Matrix, out []int, lo, hi int, s *Scratch) error {
	for i := lo; i < hi; i++ {
		id, err := c.ClassifyID(rows.RowView(i), s)
		if err != nil {
			return fmt.Errorf("knn: row %d: %w", i, err)
		}
		out[i] = id
	}
	return nil
}

// ClassifyIDs classifies every row of a matrix into out (one interned
// class ID per row), reusing scratch across the whole batch. out must
// have rows.Rows() entries. This is the batch kernel behind
// ClassifyBatch and ClassifyBatchParallel.
func (c *Classifier) ClassifyIDs(rows *linalg.Matrix, out []int, s *Scratch) error {
	if len(out) != rows.Rows() {
		return fmt.Errorf("knn: %d outputs for %d rows", len(out), rows.Rows())
	}
	if s == nil {
		s = &Scratch{}
	}
	return c.classifyIDsRange(rows, out, 0, rows.Rows(), s)
}

// ClassifyBatch classifies each row of a matrix, returning one label per
// row.
func (c *Classifier) ClassifyBatch(rows *linalg.Matrix) ([]string, error) {
	ids := make([]int, rows.Rows())
	if err := c.ClassifyIDs(rows, ids, nil); err != nil {
		return nil, err
	}
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = c.classNames[id]
	}
	return out, nil
}
