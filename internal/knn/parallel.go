package knn

import (
	"runtime"
	"sync"

	"repro/internal/linalg"
)

// ClassifyIDsParallel classifies each row of a matrix into out (one
// interned class ID per row, see ClassName) using up to workers
// goroutines (0 selects GOMAXPROCS). Each worker runs the blocked
// batch kernel over a contiguous row range with its own scratch, so
// per-query work stays allocation-free; output order matches the input
// rows and is identical to ClassifyIDs.
func (c *Classifier) ClassifyIDsParallel(rows *linalg.Matrix, out []int, workers int) error {
	n := rows.Rows()
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		return c.ClassifyIDs(rows, out, nil)
	}
	if len(out) != n {
		return c.ClassifyIDs(rows, out, nil) // surface the arity error
	}

	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var s Scratch
			errs[w] = c.classifyIDsRange(rows, out, lo, hi, &s)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ClassifyBatchParallel classifies each row of a matrix using up to
// workers goroutines (0 selects GOMAXPROCS). Output order matches the
// input rows and is identical to ClassifyBatch; queries are
// independent, so the split is a simple row-range partition per worker.
func (c *Classifier) ClassifyBatchParallel(rows *linalg.Matrix, workers int) ([]string, error) {
	n := rows.Rows()
	if n == 0 {
		return nil, nil
	}
	ids := make([]int, n)
	if err := c.ClassifyIDsParallel(rows, ids, workers); err != nil {
		return nil, err
	}
	out := make([]string, n)
	for i, id := range ids {
		out[i] = c.classNames[id]
	}
	return out, nil
}
