package knn

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/linalg"
)

// ClassifyBatchParallel classifies each row of a matrix using up to
// workers goroutines (0 selects GOMAXPROCS). Output order matches the
// input rows and is identical to ClassifyBatch; queries are independent,
// so the split is a simple row-range partition per worker.
func (c *Classifier) ClassifyBatchParallel(rows *linalg.Matrix, workers int) ([]string, error) {
	n := rows.Rows()
	if n == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		return c.ClassifyBatch(rows)
	}

	out := make([]string, n)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				label, err := c.Classify(rows.Row(i))
				if err != nil {
					errs[w] = fmt.Errorf("knn: row %d: %w", i, err)
					return
				}
				out[i] = label
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
