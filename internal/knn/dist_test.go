package knn

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// trainDuplicated2D builds a classifier whose every training point is
// replicated k times, so the kth-neighbour distance of any training
// point is exactly 0.
func trainDuplicated2D(t testing.TB, rng *rand.Rand, n, copies int, labels []string, indexed bool) (*Classifier, []linalg.Vector) {
	t.Helper()
	c, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	var points []linalg.Vector
	var labs []string
	distinct := make([]linalg.Vector, 0, n)
	for i := 0; i < n; i++ {
		p := linalg.Vector{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		lab := labels[rng.Intn(len(labels))]
		distinct = append(distinct, p)
		for j := 0; j < copies; j++ {
			points = append(points, p.Clone())
			labs = append(labs, lab)
		}
	}
	if err := c.Train(points, labs); err != nil {
		t.Fatal(err)
	}
	if indexed {
		if err := c.EnableIndex(); err != nil {
			t.Fatal(err)
		}
	}
	return c, distinct
}

// TestKthDistanceZeroForTrainingPoints: with every training point
// duplicated at least k times, querying a training point must report a
// kth-neighbour distance of exactly 0 — the calibration anchor of the
// open-set thresholds.
func TestKthDistanceZeroForTrainingPoints(t *testing.T) {
	labels := []string{"cpu", "io", "net"}
	for _, indexed := range []bool{false, true} {
		t.Run(fmt.Sprintf("indexed-%v", indexed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(41))
			c, distinct := trainDuplicated2D(t, rng, 60, 3, labels, indexed)
			var s Scratch
			for i, p := range distinct {
				_, dist, err := c.ClassifyIDDist(p, &s)
				if err != nil {
					t.Fatal(err)
				}
				if dist != 0 {
					t.Fatalf("training point %d: kth distance = %v, want exactly 0", i, dist)
				}
			}
		})
	}
}

// TestKthDistanceMonotoneUnderScaling: scaling the whole feature space
// (training points and query) by a factor scales the kth-neighbour
// distance by the same factor — thresholds calibrated in one scale stay
// meaningful across rescaled models.
func TestKthDistanceMonotoneUnderScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	n := 200
	points := make([]linalg.Vector, n)
	labs := make([]string, n)
	for i := range points {
		points[i] = linalg.Vector{rng.NormFloat64() * 5, rng.NormFloat64() * 5}
		labs[i] = []string{"a", "b", "c"}[rng.Intn(3)]
	}
	scales := []float64{0.25, 1, 2, 7.5}
	cls := make([]*Classifier, len(scales))
	for si, scale := range scales {
		c, err := New(3)
		if err != nil {
			t.Fatal(err)
		}
		scaled := make([]linalg.Vector, n)
		for i, p := range points {
			scaled[i] = linalg.Vector{p[0] * scale, p[1] * scale}
		}
		if err := c.Train(scaled, labs); err != nil {
			t.Fatal(err)
		}
		cls[si] = c
	}
	var s Scratch
	for probe := 0; probe < 200; probe++ {
		q := linalg.Vector{rng.NormFloat64() * 8, rng.NormFloat64() * 8}
		_, base, err := cls[1].ClassifyIDDist(q, &s)
		if err != nil {
			t.Fatal(err)
		}
		for si, scale := range scales {
			_, got, err := cls[si].ClassifyIDDist(linalg.Vector{q[0] * scale, q[1] * scale}, &s)
			if err != nil {
				t.Fatal(err)
			}
			want := base * scale
			if math.Abs(got-want) > 1e-9*(1+want) {
				t.Fatalf("probe %d scale %v: kth distance %v, want %v", probe, scale, got, want)
			}
		}
	}
}

// TestClassifyIDDistMatchesNeighbors cross-checks the exported distance
// against the slow Neighbors path, indexed and brute-force.
func TestClassifyIDDistMatchesNeighbors(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		t.Run(fmt.Sprintf("indexed-%v", indexed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(67))
			c := trainRandom2D(t, rng, 300, []string{"cpu", "io", "net", "mem"}, indexed)
			var s Scratch
			for probe := 0; probe < 300; probe++ {
				q := linalg.Vector{rng.NormFloat64() * 12, rng.NormFloat64() * 12}
				id, dist, err := c.ClassifyIDDist(q, &s)
				if err != nil {
					t.Fatal(err)
				}
				wantID, err := c.ClassifyID(q, nil)
				if err != nil {
					t.Fatal(err)
				}
				if id != wantID {
					t.Fatalf("probe %d: id %d, ClassifyID says %d", probe, id, wantID)
				}
				nbrs, err := c.Neighbors(q)
				if err != nil {
					t.Fatal(err)
				}
				if want := nbrs[len(nbrs)-1].Distance; dist != want {
					t.Fatalf("probe %d: kth distance %v, Neighbors says %v", probe, dist, want)
				}
			}
		})
	}
}

// TestClassifyIDDistZeroAllocsIndexed gates the open-set fast path the
// same way TestClassifyIDZeroAllocsIndexed gates classification: the
// distance export must not cost an allocation.
func TestClassifyIDDistZeroAllocsIndexed(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	c := trainRandom2D(t, rng, 500, []string{"cpu", "io", "net"}, true)
	queries := make([]linalg.Vector, 64)
	for i := range queries {
		queries[i] = linalg.Vector{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
	}
	var s Scratch
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		if _, _, err := c.ClassifyIDDist(queries[i%len(queries)], &s); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Errorf("indexed ClassifyIDDist allocates %v per run, want 0", allocs)
	}
}
