package knn

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func randomCluster(rng *rand.Rand, n int, cx, cy float64, label string) ([]linalg.Vector, []string) {
	pts := make([]linalg.Vector, n)
	labels := make([]string, n)
	for i := range pts {
		pts[i] = linalg.Vector{cx + rng.NormFloat64(), cy + rng.NormFloat64()}
		labels[i] = label
	}
	return pts, labels
}

func buildBoth(t *testing.T, rng *rand.Rand, n int) (*Classifier, *GridIndex) {
	t.Helper()
	var pts []linalg.Vector
	var labels []string
	for i, c := range []struct {
		x, y  float64
		label string
	}{{0, 0, "a"}, {8, 0, "b"}, {0, 8, "c"}, {8, 8, "d"}} {
		p, l := randomCluster(rng, n/4+i%2, c.x, c.y, c.label)
		pts = append(pts, p...)
		labels = append(labels, l...)
	}
	brute, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := brute.Train(pts, labels); err != nil {
		t.Fatal(err)
	}
	grid, err := NewGridIndex(pts, labels, 0)
	if err != nil {
		t.Fatal(err)
	}
	return brute, grid
}

// Property: the grid index returns exactly the brute-force neighbours
// (same indices in the same order) for random queries, including
// queries far outside the data extent.
func TestGridIndexAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	brute, grid := buildBoth(t, rng, 200)
	for trial := 0; trial < 300; trial++ {
		var q linalg.Vector
		switch trial % 3 {
		case 0: // in-distribution
			q = linalg.Vector{rng.Float64() * 8, rng.Float64() * 8}
		case 1: // near the edges
			q = linalg.Vector{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		default: // far away
			q = linalg.Vector{rng.Float64()*200 - 100, rng.Float64()*200 - 100}
		}
		want, err := brute.Neighbors(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := grid.Neighbors(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d neighbors, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].Index != want[i].Index {
				t.Fatalf("trial %d query %v: neighbor %d = idx %d (d=%v), want idx %d (d=%v)",
					trial, q, i, got[i].Index, got[i].Distance, want[i].Index, want[i].Distance)
			}
		}
		bl, err := brute.Classify(q)
		if err != nil {
			t.Fatal(err)
		}
		gl, err := grid.Classify(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if bl != gl {
			t.Fatalf("trial %d: labels differ %q vs %q", trial, bl, gl)
		}
	}
}

func TestGridIndexValidation(t *testing.T) {
	if _, err := NewGridIndex(nil, nil, 0); err == nil {
		t.Error("no points: want error")
	}
	if _, err := NewGridIndex([]linalg.Vector{{1, 2, 3}}, []string{"a"}, 0); err == nil {
		t.Error("3-D point: want error")
	}
	if _, err := NewGridIndex([]linalg.Vector{{1, 2}}, []string{"a", "b"}, 0); err == nil {
		t.Error("label count mismatch: want error")
	}
	g, err := NewGridIndex([]linalg.Vector{{1, 2}}, []string{"a"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Neighbors(linalg.Vector{1}, 3); err == nil {
		t.Error("1-D query: want error")
	}
	if _, err := g.Neighbors(linalg.Vector{1, 2}, 0); err == nil {
		t.Error("k=0: want error")
	}
}

func TestGridIndexIdenticalPoints(t *testing.T) {
	pts := []linalg.Vector{{5, 5}, {5, 5}, {5, 5}}
	g, err := NewGridIndex(pts, []string{"a", "b", "c"}, 0)
	if err != nil {
		t.Fatalf("degenerate extent: %v", err)
	}
	nbrs, err := g.Neighbors(linalg.Vector{5, 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 2 || nbrs[0].Index != 0 || nbrs[1].Index != 1 {
		t.Errorf("identical points neighbors = %v", nbrs)
	}
	if g.Len() != 3 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestGridIndexKLargerThanData(t *testing.T) {
	g, err := NewGridIndex([]linalg.Vector{{0, 0}, {1, 1}}, []string{"a", "b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	nbrs, err := g.Neighbors(linalg.Vector{0, 0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 2 {
		t.Errorf("got %d neighbors, want all 2", len(nbrs))
	}
}

func TestClassifyBatchParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	brute, _ := buildBoth(t, rng, 120)
	queries := linalg.NewMatrix(257, 2)
	for i := 0; i < queries.Rows(); i++ {
		queries.Set(i, 0, rng.Float64()*10-1)
		queries.Set(i, 1, rng.Float64()*10-1)
	}
	serial, err := brute.ClassifyBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 7, 1000} {
		parallel, err := brute.ClassifyBatchParallel(queries, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range serial {
			if parallel[i] != serial[i] {
				t.Fatalf("workers=%d row %d: %q vs %q", workers, i, parallel[i], serial[i])
			}
		}
	}
}

func TestClassifyBatchParallelEmpty(t *testing.T) {
	c, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.ClassifyBatchParallel(linalg.NewMatrix(0, 2), 4)
	if err != nil || out != nil {
		t.Errorf("empty batch = (%v, %v)", out, err)
	}
}

func TestClassifyBatchParallelPropagatesError(t *testing.T) {
	c, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	// Untrained classifier: every row errors.
	if _, err := c.ClassifyBatchParallel(linalg.NewMatrix(8, 2), 4); err == nil {
		t.Error("untrained parallel classify: want error")
	}
}

func BenchmarkBruteForceNeighbors(b *testing.B) {
	rng := rand.New(rand.NewSource(71))
	var pts []linalg.Vector
	var labels []string
	for i := 0; i < 4000; i++ {
		pts = append(pts, linalg.Vector{rng.NormFloat64() * 4, rng.NormFloat64() * 4})
		labels = append(labels, []string{"a", "b", "c"}[i%3])
	}
	c, err := New(3)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Train(pts, labels); err != nil {
		b.Fatal(err)
	}
	q := linalg.Vector{0.5, -0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Neighbors(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridIndexNeighbors(b *testing.B) {
	rng := rand.New(rand.NewSource(71))
	var pts []linalg.Vector
	var labels []string
	for i := 0; i < 4000; i++ {
		pts = append(pts, linalg.Vector{rng.NormFloat64() * 4, rng.NormFloat64() * 4})
		labels = append(labels, []string{"a", "b", "c"}[i%3])
	}
	g, err := NewGridIndex(pts, labels, 0)
	if err != nil {
		b.Fatal(err)
	}
	q := linalg.Vector{0.5, -0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Neighbors(q, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEnableIndexTransparent(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	brute, _ := buildBoth(t, rng, 100)
	indexed, _ := buildBoth(t, rng, 100) // same seed consumed differently...
	_ = indexed
	// Build an identical classifier and index it.
	rng2 := rand.New(rand.NewSource(81))
	withIdx, _ := buildBoth(t, rng2, 100)
	if err := withIdx.EnableIndex(); err != nil {
		t.Fatalf("EnableIndex: %v", err)
	}
	if !withIdx.Indexed() {
		t.Fatal("Indexed() = false after EnableIndex")
	}
	for trial := 0; trial < 100; trial++ {
		q := linalg.Vector{rng.Float64()*12 - 2, rng.Float64()*12 - 2}
		a, err := brute.Classify(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := withIdx.Classify(q)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("trial %d: indexed %q != brute %q", trial, b, a)
		}
	}
}

func TestEnableIndexValidation(t *testing.T) {
	c, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EnableIndex(); err == nil {
		t.Error("untrained: want error")
	}
	if err := c.Train([]linalg.Vector{{1, 2, 3}}, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := c.EnableIndex(); err == nil {
		t.Error("3-D data: want error")
	}
	m, err := New(3, WithDistance(Manhattan))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Train([]linalg.Vector{{1, 2}}, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := m.EnableIndex(); err == nil {
		t.Error("custom distance: want error")
	}
}

func TestTrainInvalidatesIndex(t *testing.T) {
	c, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Train([]linalg.Vector{{0, 0}}, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := c.EnableIndex(); err != nil {
		t.Fatal(err)
	}
	if err := c.Train([]linalg.Vector{{9, 9}}, []string{"b"}); err != nil {
		t.Fatal(err)
	}
	if c.Indexed() {
		t.Error("index survived new training data")
	}
	got, err := c.Classify(linalg.Vector{9, 9})
	if err != nil || got != "b" {
		t.Errorf("post-retrain classify = (%q, %v)", got, err)
	}
}
