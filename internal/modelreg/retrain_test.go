package modelreg

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/appdb"
	"repro/internal/metrics"
)

// sampleRows fabricates retained training rows around a class
// signature, the shape finalize stamps into appdb records.
func sampleRows(c appclass.Class, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	sig := classSignature(c)
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, len(sig))
		for j, v := range sig {
			row[j] = v * (1 + 0.1*rng.NormFloat64())
			if row[j] < 0 {
				row[j] = 0
			}
		}
		rows[i] = row
	}
	return rows
}

func retrainDB(t *testing.T) *appdb.DB {
	t.Helper()
	db := appdb.New()
	names := metrics.ExpertSchema().Names()
	for i, c := range []appclass.Class{appclass.CPU, appclass.IO, appclass.Net} {
		rec := appdb.Record{
			App:           "app-" + string(c),
			Class:         c,
			Verdict:       c,
			ExecutionTime: time.Minute,
			Samples:       20,
			TrainMetrics:  names,
			TrainSamples:  sampleRows(c, 20, int64(i+1)),
		}
		if err := db.Put(rec); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	return db
}

func TestRetrain(t *testing.T) {
	db := retrainDB(t)
	cl, stats, err := Retrain(db, RetrainConfig{})
	if err != nil {
		t.Fatalf("Retrain: %v", err)
	}
	if stats.Records != 3 || stats.SkippedUnknown != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(stats.RowsPerClass) != 3 {
		t.Fatalf("RowsPerClass = %v, want 3 classes", stats.RowsPerClass)
	}
	// The refit classifier must classify its own training signatures
	// correctly.
	for _, c := range []appclass.Class{appclass.CPU, appclass.IO, appclass.Net} {
		got, err := cl.ClassifySnapshot(metrics.ExpertSchema(), classSignature(c))
		if err != nil {
			t.Fatalf("classify %s: %v", c, err)
		}
		if got != c {
			t.Errorf("refit classifies %s signature as %s", c, got)
		}
	}
	// And wrap cleanly as a registry model.
	if _, err := NewModel(cl, DefaultParams(), "retrain", 1); err != nil {
		t.Fatalf("NewModel: %v", err)
	}
}

func TestRetrainSkipsUnknownVerdicts(t *testing.T) {
	db := retrainDB(t)
	names := metrics.ExpertSchema().Names()
	if err := db.Put(appdb.Record{
		App:          "mystery",
		Class:        appclass.CPU,
		Verdict:      appclass.Unknown,
		TrainMetrics: names,
		TrainSamples: sampleRows(appclass.Mem, 20, 9),
	}); err != nil {
		t.Fatal(err)
	}
	_, stats, err := Retrain(db, RetrainConfig{})
	if err != nil {
		t.Fatalf("Retrain: %v", err)
	}
	if stats.SkippedUnknown != 1 {
		t.Fatalf("SkippedUnknown = %d, want 1", stats.SkippedUnknown)
	}
	if _, ok := stats.RowsPerClass[appclass.Mem]; ok {
		t.Fatal("unknown-verdict rows leaked into the training set")
	}
}

func TestRetrainThinClassesDropped(t *testing.T) {
	db := retrainDB(t)
	names := metrics.ExpertSchema().Names()
	if err := db.Put(appdb.Record{
		App:          "thin",
		Class:        appclass.Mem,
		Verdict:      appclass.Mem,
		TrainMetrics: names,
		TrainSamples: sampleRows(appclass.Mem, 2, 9), // below MinRowsPerClass
	}); err != nil {
		t.Fatal(err)
	}
	_, stats, err := Retrain(db, RetrainConfig{})
	if err != nil {
		t.Fatalf("Retrain: %v", err)
	}
	if len(stats.DroppedClasses) != 1 || stats.DroppedClasses[0] != appclass.Mem {
		t.Fatalf("DroppedClasses = %v, want [mem]", stats.DroppedClasses)
	}
}

func TestRetrainErrors(t *testing.T) {
	if _, _, err := Retrain(appdb.New(), RetrainConfig{}); err == nil {
		t.Fatal("empty db: want error")
	}

	// Sampling disabled: records exist but carry no rows.
	db := appdb.New()
	if err := db.Put(appdb.Record{App: "a", Class: appclass.CPU}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Retrain(db, RetrainConfig{}); err == nil {
		t.Fatal("no sampled records: want error")
	}

	// Only one class survives: not enough to train.
	db = appdb.New()
	names := metrics.ExpertSchema().Names()
	if err := db.Put(appdb.Record{
		App: "solo", Class: appclass.CPU, TrainMetrics: names,
		TrainSamples: sampleRows(appclass.CPU, 20, 1),
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Retrain(db, RetrainConfig{}); err == nil {
		t.Fatal("single class: want error")
	}

	// Mixed schemas across records must refuse, not silently misalign.
	db = retrainDB(t)
	if err := db.Put(appdb.Record{
		App: "other-schema", Class: appclass.Mem,
		TrainMetrics: names[:4],
		TrainSamples: [][]float64{{1, 2, 3, 4}},
	}); err != nil {
		t.Fatal(err)
	}
	_, _, err := Retrain(db, RetrainConfig{})
	if err == nil || !strings.Contains(err.Error(), "mixed-schema") {
		t.Fatalf("mixed schemas: got %v, want mixed-schema error", err)
	}
}

func TestRetrainRowCap(t *testing.T) {
	db := retrainDB(t)
	_, stats, err := Retrain(db, RetrainConfig{MaxRowsPerClass: 10})
	if err != nil {
		t.Fatalf("Retrain: %v", err)
	}
	for c, n := range stats.RowsPerClass {
		if n > 10 {
			t.Errorf("class %s kept %d rows, cap 10", c, n)
		}
	}
}
