package modelreg

import (
	"path/filepath"
	"testing"
)

func testModel(t *testing.T, seed int64, source string) *Model {
	t.Helper()
	m, err := NewModel(trainSynthetic(t, seed), DefaultParams(), source, seed)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return m
}

func TestRegistryLifecycle(t *testing.T) {
	boot := testModel(t, 1, "boot")
	cand := testModel(t, 50, "file:a.json")
	r := NewRegistry(boot)

	if got := r.Active(); got.ID != boot.ID {
		t.Fatalf("active = %s, want %s", got.ID, boot.ID)
	}
	if r.Candidate() != nil {
		t.Fatal("fresh registry has a candidate")
	}
	if err := r.Add(cand); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := r.Add(cand); err == nil {
		t.Fatal("double Add: want error")
	}
	if _, state, ok := r.Get(cand.ID); !ok || state != StateLoaded {
		t.Fatalf("Get after Add = %v/%v, want loaded", state, ok)
	}
	if err := r.SetCandidate(boot.ID); err == nil {
		t.Fatal("SetCandidate(active): want error")
	}
	if err := r.SetCandidate(cand.ID); err != nil {
		t.Fatalf("SetCandidate: %v", err)
	}
	if got := r.Candidate(); got == nil || got.ID != cand.ID {
		t.Fatalf("Candidate = %v, want %s", got, cand.ID)
	}
	if err := r.Remove(cand.ID); err == nil {
		t.Fatal("Remove(candidate): want error")
	}
	if err := r.Remove(boot.ID); err == nil {
		t.Fatal("Remove(active): want error")
	}

	// Promote: candidate becomes active, old active retires.
	if err := r.SetActive(cand.ID); err != nil {
		t.Fatalf("SetActive: %v", err)
	}
	if r.Candidate() != nil {
		t.Fatal("candidate slot not cleared by promote")
	}
	if _, state, _ := r.Get(boot.ID); state != StateRetired {
		t.Fatalf("old active state = %v, want retired", state)
	}
	entries := r.List()
	if len(entries) != 2 || entries[0].Model.ID != cand.ID || entries[0].State != StateActive {
		t.Fatalf("List = %+v, want active %s first", entries, cand.ID)
	}
	// The retired model can now be removed.
	if err := r.Remove(boot.ID); err != nil {
		t.Fatalf("Remove(retired): %v", err)
	}
	if _, _, ok := r.Get(boot.ID); ok {
		t.Fatal("removed model still present")
	}
}

func TestRegistryCandidateSlotDemotes(t *testing.T) {
	r := NewRegistry(testModel(t, 1, "boot"))
	a := testModel(t, 60, "file:a")
	b := testModel(t, 70, "file:b")
	for _, m := range []*Model{a, b} {
		if err := r.Add(m); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if err := r.SetCandidate(a.ID); err != nil {
		t.Fatal(err)
	}
	if err := r.SetCandidate(b.ID); err != nil {
		t.Fatal(err)
	}
	if _, state, _ := r.Get(a.ID); state != StateLoaded {
		t.Fatalf("displaced candidate state = %v, want loaded", state)
	}
	if id := r.ClearCandidate(); id != b.ID {
		t.Fatalf("ClearCandidate = %s, want %s", id, b.ID)
	}
	if r.Candidate() != nil {
		t.Fatal("candidate slot not empty after clear")
	}
	if id := r.ClearCandidate(); id != "" {
		t.Fatalf("ClearCandidate on empty slot = %q, want empty", id)
	}
}

func TestSaveLoadFileRoundtrip(t *testing.T) {
	cl := trainSynthetic(t, 1)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := SaveFile(path, cl); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	m, err := LoadFile(path, DefaultParams(), 42)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	// The artifact round-trips to the same compatibility hash: load is
	// byte-faithful for everything serving-relevant.
	want, err := HashClassifier(cl, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if m.Hash != want {
		t.Fatalf("loaded hash %s != saved classifier hash %s", m.Hash, want)
	}
	if m.Source != "file:"+path || m.LoadedAtUnixNS != 42 {
		t.Fatalf("Source/LoadedAt = %q/%d", m.Source, m.LoadedAtUnixNS)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json"), DefaultParams(), 0); err == nil {
		t.Fatal("LoadFile(missing): want error")
	}
}
