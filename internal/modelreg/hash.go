// Package modelreg is the daemon's model lifecycle subsystem: a
// versioned registry of immutable classifier artifacts, each identified
// by a deterministic compatibility hash over everything that affects
// serving behaviour — expert-metric schema, fused-kernel weights,
// interned k-NN training set, open-set calibration, phase-segmentation
// parameters, and the journal's on-disk format version. Two daemons (or
// one daemon across a restart) agree on a hash exactly when their
// models classify identically and their checkpoints/journals are
// interchangeable, so the hash is the unit of refusal for crash
// recovery and session handoff, and the unit of identity for shadow
// serving and hot swap.
package modelreg

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"

	"repro/internal/appclass"
	"repro/internal/classify"
	"repro/internal/linalg"
	"repro/internal/phase"
	"repro/internal/wal"
)

// Hash is a model compatibility hash.
type Hash [sha256.Size]byte

// String returns the full hex form.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// Short returns the 12-hex-character prefix — the registry's model ID,
// long enough that collisions within one registry are implausible and
// short enough for URLs and log lines.
func (h Hash) Short() string { return hex.EncodeToString(h[:6]) }

// IsZero reports whether the hash is unset.
func (h Hash) IsZero() bool { return h == Hash{} }

// ParseHash decodes a full hex hash.
func ParseHash(s string) (Hash, error) {
	var h Hash
	b, err := hex.DecodeString(s)
	if err != nil {
		return h, fmt.Errorf("modelreg: parse hash: %w", err)
	}
	if len(b) != len(h) {
		return h, fmt.Errorf("modelreg: parse hash: %d bytes, want %d", len(b), len(h))
	}
	copy(h[:], b)
	return h, nil
}

// Params are the serving-behaviour knobs hashed alongside the trained
// model: a model promoted with different open-set or segmentation
// settings classifies sessions differently, so it is a different model.
// Negative values mean the corresponding feature is disabled, and hash
// differently from any enabled setting.
type Params struct {
	// OpenSetQuantile and OpenSetSlack parameterize open-set
	// calibration; OpenSetSlack < 0 disables the open-set test.
	OpenSetQuantile float64
	OpenSetSlack    float64
	// SegWindow, SegMinLen, and SegThreshold parameterize phase
	// segmentation; SegWindow < 0 disables it.
	SegWindow    int
	SegMinLen    int
	SegThreshold float64
}

// DefaultParams returns the daemon's default serving parameters (both
// open-set verdicts and phase segmentation enabled at their package
// defaults).
func DefaultParams() Params {
	return Params{
		OpenSetQuantile: classify.DefaultOpenSetQuantile,
		OpenSetSlack:    classify.DefaultOpenSetSlack,
		SegWindow:       phase.DefaultWindow,
		SegMinLen:       phase.DefaultMinLen,
		SegThreshold:    phase.DefaultThreshold,
	}
}

// hashInputs is the canonical byte layout fed to sha256. Strings are
// written null-terminated, integers as little-endian uint64, floats as
// the little-endian bits of their IEEE-754 representation, matrices
// row-major with their dimensions first. Any representational change
// here must bump the leading format tag.
const hashFormatTag = "appclassd-model-hash-v1"

type hasher struct {
	sum     hash.Hash
	scratch [8]byte
}

func newHasher() *hasher {
	return &hasher{sum: sha256.New()}
}

func (w *hasher) str(s string) {
	w.sum.Write([]byte(s))
	w.scratch[0] = 0
	w.sum.Write(w.scratch[:1])
}

func (w *hasher) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.scratch[:], v)
	w.sum.Write(w.scratch[:])
}

func (w *hasher) i64(v int) { w.u64(uint64(int64(v))) }

func (w *hasher) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *hasher) vec(v linalg.Vector) {
	w.i64(len(v))
	for _, x := range v {
		w.f64(x)
	}
}

func (w *hasher) mat(m *linalg.Matrix) {
	if m == nil {
		w.i64(-1)
		return
	}
	w.i64(m.Rows())
	w.i64(m.Cols())
	for i := 0; i < m.Rows(); i++ {
		row := m.RowView(i)
		for _, x := range row {
			w.f64(x)
		}
	}
}

func (w *hasher) finish() Hash {
	var h Hash
	w.sum.Sum(h[:0])
	return h
}

// HashInputs is everything the compatibility hash covers. Use
// HashClassifier to derive one from a trained classifier.
type HashInputs struct {
	// JournalFormat is the WAL segment format version the model will be
	// served against (wal.SegmentFormatVersion for a live daemon).
	JournalFormat uint32
	// ExpertMetrics is the ordered expert-metric name list (the schema
	// subset the fused kernel gathers).
	ExpertMetrics []string
	// K and Q are the k-NN vote count and the fused feature
	// dimensionality.
	K, Q int
	// W (q×p) and B are the fused affine kernel.
	W *linalg.Matrix
	B linalg.Vector
	// TrainPoints (n×q) and TrainLabels are the interned k-NN training
	// set, in training order.
	TrainPoints *linalg.Matrix
	TrainLabels []string
	// Params are the serving-behaviour knobs.
	Params Params
}

// ComputeHash derives the deterministic compatibility hash. Identical
// inputs hash identically across processes and platforms; any
// single-field change — one weight, one label, one threshold knob, the
// journal format — produces a different hash.
func ComputeHash(in HashInputs) Hash {
	w := newHasher()
	w.str(hashFormatTag)
	w.u64(uint64(in.JournalFormat))
	w.i64(len(in.ExpertMetrics))
	for _, name := range in.ExpertMetrics {
		w.str(name)
	}
	w.i64(in.K)
	w.i64(in.Q)
	w.mat(in.W)
	w.vec(in.B)
	w.mat(in.TrainPoints)
	w.i64(len(in.TrainLabels))
	for _, l := range in.TrainLabels {
		w.str(l)
	}
	w.f64(in.Params.OpenSetQuantile)
	w.f64(in.Params.OpenSetSlack)
	w.i64(in.Params.SegWindow)
	w.i64(in.Params.SegMinLen)
	w.f64(in.Params.SegThreshold)
	return w.finish()
}

// HashClassifier derives the compatibility hash of a trained classifier
// served under the given params and the current journal format.
func HashClassifier(cl *classify.Classifier, p Params) (Hash, error) {
	w, b := cl.FusedParams()
	if w == nil {
		return Hash{}, fmt.Errorf("modelreg: hash: classifier is not trained")
	}
	points, labels := cl.TrainingPoints()
	return ComputeHash(HashInputs{
		JournalFormat: wal.SegmentFormatVersion,
		ExpertMetrics: cl.Config().ExpertMetrics,
		K:             cl.Config().K,
		Q:             w.Rows(),
		W:             w,
		B:             b,
		TrainPoints:   points,
		TrainLabels:   classStrings(labels),
		Params:        p,
	}), nil
}

func classStrings(labels []appclass.Class) []string {
	out := make([]string, len(labels))
	for i, l := range labels {
		out[i] = string(l)
	}
	return out
}
