package modelreg

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/appclass"
	"repro/internal/appdb"
	"repro/internal/classify"
	"repro/internal/metrics"
)

// RetrainConfig parameterizes Retrain. The zero value selects the
// defaults below.
type RetrainConfig struct {
	// K is the k-NN vote count (classify's default when 0).
	K int
	// Components is the PCA dimensionality (classify's default when 0).
	Components int
	// MinRowsPerClass drops classes with fewer retained sample rows than
	// this — too thin to train or calibrate on (default 8).
	MinRowsPerClass int
	// MinClasses aborts the retrain when fewer distinct classes survive
	// (default 2: a one-class classifier is useless).
	MinClasses int
	// MaxRowsPerClass caps each class's training rows, newest records
	// first, so one chatty application cannot drown the rest (default
	// 4096; <0 means unlimited).
	MaxRowsPerClass int
}

// Retrain defaults.
const (
	DefaultMinRowsPerClass = 8
	DefaultMinClasses      = 2
	DefaultMaxRowsPerClass = 4096
)

func (c RetrainConfig) withDefaults() RetrainConfig {
	if c.MinRowsPerClass <= 0 {
		c.MinRowsPerClass = DefaultMinRowsPerClass
	}
	if c.MinClasses <= 0 {
		c.MinClasses = DefaultMinClasses
	}
	if c.MaxRowsPerClass == 0 {
		c.MaxRowsPerClass = DefaultMaxRowsPerClass
	}
	return c
}

// RetrainStats reports what a retrain consumed and produced.
type RetrainStats struct {
	// Records is how many appdb records carried training samples.
	Records int
	// SkippedUnknown counts records dropped because their open-set
	// verdict was Unknown — an operator has not labeled them with a
	// trained class, so they must not pollute the training set.
	SkippedUnknown int
	// RowsPerClass is the training rows that went in, per label.
	RowsPerClass map[appclass.Class]int
	// DroppedClasses lists labels discarded for having fewer than
	// MinRowsPerClass rows.
	DroppedClasses []appclass.Class
}

// Retrain refits a classifier from the labeled finalized sessions
// accumulated in the application database — the online-training loop
// the paper's Section 5.3 sketches. Each record's retained sample rows
// are labeled with its open-set verdict when present (falling back to
// its majority class), records whose verdict is Unknown are skipped,
// and the surviving per-class rows feed the standard
// preprocess→normalize→PCA→k-NN pipeline (classify.Train, which fuses
// the stages into the serving kernel). The returned classifier is ready
// to wrap with NewModel for shadow evaluation.
func Retrain(db *appdb.DB, cfg RetrainConfig) (*classify.Classifier, RetrainStats, error) {
	cfg = cfg.withDefaults()
	stats := RetrainStats{RowsPerClass: make(map[appclass.Class]int)}

	var trainMetrics []string
	rows := make(map[appclass.Class][][]float64)
	for _, app := range db.Apps() {
		runs := db.Runs(app)
		// Newest records first, so MaxRowsPerClass keeps the freshest
		// behaviour when a class overflows.
		for i := len(runs) - 1; i >= 0; i-- {
			rec := runs[i]
			if len(rec.TrainSamples) == 0 {
				continue
			}
			label := rec.Class
			if rec.Verdict != "" {
				if rec.Verdict == appclass.Unknown {
					stats.SkippedUnknown++
					continue
				}
				label = rec.Verdict
			}
			if trainMetrics == nil {
				trainMetrics = rec.TrainMetrics
			} else if !equalStrings(trainMetrics, rec.TrainMetrics) {
				return nil, stats, fmt.Errorf("modelreg: retrain: record for %q sampled metrics %v, earlier records %v — mixed-schema databases cannot retrain",
					app, rec.TrainMetrics, trainMetrics)
			}
			stats.Records++
			for _, row := range rec.TrainSamples {
				if cfg.MaxRowsPerClass > 0 && len(rows[label]) >= cfg.MaxRowsPerClass {
					break
				}
				rows[label] = append(rows[label], row)
			}
		}
	}
	if stats.Records == 0 {
		return nil, stats, fmt.Errorf("modelreg: retrain: no records carry training samples (run the daemon with sampling enabled)")
	}

	classes := make([]appclass.Class, 0, len(rows))
	for label, rs := range rows {
		if len(rs) < cfg.MinRowsPerClass {
			stats.DroppedClasses = append(stats.DroppedClasses, label)
			continue
		}
		classes = append(classes, label)
		stats.RowsPerClass[label] = len(rs)
	}
	sort.Slice(classes, func(a, b int) bool { return classes[a] < classes[b] })
	sort.Slice(stats.DroppedClasses, func(a, b int) bool { return stats.DroppedClasses[a] < stats.DroppedClasses[b] })
	if len(classes) < cfg.MinClasses {
		return nil, stats, fmt.Errorf("modelreg: retrain: only %d class(es) have >= %d rows, need %d",
			len(classes), cfg.MinRowsPerClass, cfg.MinClasses)
	}

	schema, err := metrics.NewSchema(trainMetrics)
	if err != nil {
		return nil, stats, fmt.Errorf("modelreg: retrain schema: %w", err)
	}
	trainRuns := make([]classify.TrainingRun, 0, len(classes))
	for _, label := range classes {
		// The sample rows lost their timestamps to decimation; synthetic
		// monotone times are fine — training only consumes the values.
		tr := metrics.NewTrace(schema, "retrain-"+string(label))
		for i, row := range rows[label] {
			if err := tr.Append(metrics.Snapshot{
				Time:   time.Duration(i) * time.Second,
				Node:   tr.Node(),
				Values: row,
			}); err != nil {
				return nil, stats, fmt.Errorf("modelreg: retrain class %s row %d: %w", label, i, err)
			}
		}
		trainRuns = append(trainRuns, classify.TrainingRun{Class: label, Trace: tr})
	}
	cl, err := classify.Train(trainRuns, classify.Config{
		ExpertMetrics: trainMetrics,
		K:             cfg.K,
		Components:    cfg.Components,
	})
	if err != nil {
		return nil, stats, fmt.Errorf("modelreg: retrain: %w", err)
	}
	return cl, stats, nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
