package modelreg

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/classify"
	"repro/internal/linalg"
	"repro/internal/metrics"
)

// classSignature mirrors the classify package's synthetic fixtures:
// typical expert-metric values per class.
func classSignature(c appclass.Class) []float64 {
	switch c {
	case appclass.CPU:
		return []float64{3, 95, 500, 500, 5, 5, 0, 0}
	case appclass.IO:
		return []float64{12, 8, 500, 500, 3000, 3000, 0, 0}
	case appclass.Net:
		return []float64{10, 8, 4e5, 8e6, 5, 5, 0, 0}
	case appclass.Mem:
		return []float64{5, 20, 500, 500, 5500, 5500, 5000, 5000}
	default: // idle
		return []float64{0.3, 0.5, 300, 300, 2, 2, 0, 0}
	}
}

func syntheticTrace(t *testing.T, c appclass.Class, n int, seed int64) *metrics.Trace {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tr := metrics.NewTrace(metrics.ExpertSchema(), "vm1")
	sig := classSignature(c)
	for i := 0; i < n; i++ {
		vals := make([]float64, len(sig))
		for j, v := range sig {
			vals[j] = v * (1 + 0.15*rng.NormFloat64())
			if vals[j] < 0 {
				vals[j] = 0
			}
		}
		if err := tr.Append(metrics.Snapshot{
			Time: time.Duration(i*5) * time.Second, Node: "vm1", Values: vals,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func trainSynthetic(t *testing.T, seed int64) *classify.Classifier {
	t.Helper()
	var runs []classify.TrainingRun
	for i, c := range appclass.All() {
		runs = append(runs, classify.TrainingRun{Class: c, Trace: syntheticTrace(t, c, 40, seed+int64(i))})
	}
	cl, err := classify.Train(runs, classify.Config{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return cl
}

func baseInputs() HashInputs {
	w := linalg.NewMatrix(2, 3)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			w.Set(i, j, float64(i*3+j)+0.5)
		}
	}
	pts := linalg.NewMatrix(4, 2)
	for i := 0; i < 4; i++ {
		for j := 0; j < 2; j++ {
			pts.Set(i, j, float64(i)-float64(j)*0.25)
		}
	}
	return HashInputs{
		JournalFormat: 2,
		ExpertMetrics: []string{"cpu_user", "cpu_system", "bytes_in"},
		K:             3,
		Q:             2,
		W:             w,
		B:             linalg.Vector{0.1, -0.2},
		TrainPoints:   pts,
		TrainLabels:   []string{"cpu", "cpu", "io", "io"},
		Params: Params{
			OpenSetQuantile: 0.99, OpenSetSlack: 3.0,
			SegWindow: 8, SegMinLen: 5, SegThreshold: 1.0,
		},
	}
}

func cloneInputs(in HashInputs) HashInputs {
	out := in
	out.ExpertMetrics = append([]string(nil), in.ExpertMetrics...)
	out.TrainLabels = append([]string(nil), in.TrainLabels...)
	out.W = linalg.NewMatrix(in.W.Rows(), in.W.Cols())
	for i := 0; i < in.W.Rows(); i++ {
		copy(out.W.RowView(i), in.W.RowView(i))
	}
	out.B = append(linalg.Vector(nil), in.B...)
	out.TrainPoints = linalg.NewMatrix(in.TrainPoints.Rows(), in.TrainPoints.Cols())
	for i := 0; i < in.TrainPoints.Rows(); i++ {
		copy(out.TrainPoints.RowView(i), in.TrainPoints.RowView(i))
	}
	return out
}

func TestComputeHashDeterministic(t *testing.T) {
	a := ComputeHash(baseInputs())
	b := ComputeHash(cloneInputs(baseInputs()))
	if a != b {
		t.Fatalf("identical inputs hash differently: %s vs %s", a, b)
	}
	if a.IsZero() {
		t.Fatal("hash is zero")
	}
	if len(a.String()) != 64 || len(a.Short()) != 12 {
		t.Fatalf("String/Short lengths: %d/%d", len(a.String()), len(a.Short()))
	}
	parsed, err := ParseHash(a.String())
	if err != nil {
		t.Fatalf("ParseHash: %v", err)
	}
	if parsed != a {
		t.Fatal("ParseHash did not round-trip")
	}
}

// TestComputeHashPerturbations is the property test: perturbing any
// single field of the inputs must change the hash.
func TestComputeHashPerturbations(t *testing.T) {
	base := ComputeHash(baseInputs())
	perturbations := map[string]func(*HashInputs){
		"journal format": func(in *HashInputs) { in.JournalFormat++ },
		"metric name":    func(in *HashInputs) { in.ExpertMetrics[1] = "cpu_idle" },
		"metric order": func(in *HashInputs) {
			in.ExpertMetrics[0], in.ExpertMetrics[1] = in.ExpertMetrics[1], in.ExpertMetrics[0]
		},
		"drop metric":        func(in *HashInputs) { in.ExpertMetrics = in.ExpertMetrics[:2] },
		"k":                  func(in *HashInputs) { in.K++ },
		"q":                  func(in *HashInputs) { in.Q++ },
		"one weight":         func(in *HashInputs) { in.W.Set(1, 2, in.W.At(1, 2)+1e-9) },
		"one bias":           func(in *HashInputs) { in.B[0] += 1e-9 },
		"nil weights":        func(in *HashInputs) { in.W = nil },
		"one training point": func(in *HashInputs) { in.TrainPoints.Set(3, 1, in.TrainPoints.At(3, 1)-1e-9) },
		"one label":          func(in *HashInputs) { in.TrainLabels[2] = "net" },
		"label order":        func(in *HashInputs) { in.TrainLabels[0], in.TrainLabels[2] = in.TrainLabels[2], in.TrainLabels[0] },
		"openset quantile":   func(in *HashInputs) { in.Params.OpenSetQuantile = 0.95 },
		"openset slack":      func(in *HashInputs) { in.Params.OpenSetSlack = 2.5 },
		"openset disabled":   func(in *HashInputs) { in.Params.OpenSetSlack = -1 },
		"seg window":         func(in *HashInputs) { in.Params.SegWindow = 16 },
		"seg min len":        func(in *HashInputs) { in.Params.SegMinLen = 6 },
		"seg threshold":      func(in *HashInputs) { in.Params.SegThreshold = 1.5 },
	}
	seen := map[Hash]string{base: "base"}
	for name, mutate := range perturbations {
		in := cloneInputs(baseInputs())
		mutate(&in)
		h := ComputeHash(in)
		if h == base {
			t.Errorf("perturbing %s did not change the hash", name)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("perturbations %q and %q collide", name, prev)
		}
		seen[h] = name
	}
}

// Null-terminated string framing must not let adjacent strings shift
// bytes across their boundary and collide.
func TestComputeHashStringFraming(t *testing.T) {
	a := cloneInputs(baseInputs())
	a.ExpertMetrics = []string{"ab", "c"}
	b := cloneInputs(baseInputs())
	b.ExpertMetrics = []string{"a", "bc"}
	if ComputeHash(a) == ComputeHash(b) {
		t.Fatal("string framing collision: {ab,c} == {a,bc}")
	}
}

func TestHashClassifier(t *testing.T) {
	cl := trainSynthetic(t, 1)
	p := DefaultParams()
	h1, err := HashClassifier(cl, p)
	if err != nil {
		t.Fatalf("HashClassifier: %v", err)
	}
	h2, err := HashClassifier(cl, p)
	if err != nil {
		t.Fatalf("HashClassifier: %v", err)
	}
	if h1 != h2 {
		t.Fatal("same classifier hashes differently")
	}
	// A different training seed means different weights, so a different
	// hash.
	other := trainSynthetic(t, 100)
	h3, err := HashClassifier(other, p)
	if err != nil {
		t.Fatalf("HashClassifier: %v", err)
	}
	if h3 == h1 {
		t.Fatal("differently trained classifiers hash identically")
	}
	// Same classifier under different serving params is a different
	// model.
	p2 := p
	p2.OpenSetSlack = 2.0
	h4, err := HashClassifier(cl, p2)
	if err != nil {
		t.Fatalf("HashClassifier: %v", err)
	}
	if h4 == h1 {
		t.Fatal("different serving params hash identically")
	}
	if _, err := HashClassifier(&classify.Classifier{}, p); err == nil {
		t.Fatal("untrained classifier: want error")
	}
}
