package modelreg

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/classify"
)

// State is a model's position in the lifecycle.
type State string

const (
	// StateLoaded: in the registry, not serving anything.
	StateLoaded State = "loaded"
	// StateCandidate: shadow-classifying live traffic next to the active
	// model; its verdicts are measured, never served.
	StateCandidate State = "candidate"
	// StateActive: the model serving verdicts.
	StateActive State = "active"
	// StateRetired: a former active model kept for reference.
	StateRetired State = "retired"
)

// Model is one immutable registry entry: a trained classifier plus the
// serving params it will run under, identified by its compatibility
// hash. The classifier itself is read-only after training, so a Model
// is safe to share across goroutines.
type Model struct {
	// ID is the short hash — the registry key and URL path element.
	ID string
	// Hash is the full compatibility hash.
	Hash Hash
	// Classifier is the trained model.
	Classifier *classify.Classifier
	// Params are the serving-behaviour knobs the hash covers.
	Params Params
	// Source says where the model came from: "boot", "file:<path>",
	// "retrain", ...
	Source string
	// LoadedAtUnixNS is when the model entered the registry.
	LoadedAtUnixNS int64
}

// NewModel wraps a trained classifier as a registry entry, computing
// its compatibility hash.
func NewModel(cl *classify.Classifier, p Params, source string, loadedAtUnixNS int64) (*Model, error) {
	h, err := HashClassifier(cl, p)
	if err != nil {
		return nil, err
	}
	return &Model{
		ID:             h.Short(),
		Hash:           h,
		Classifier:     cl,
		Params:         p,
		Source:         source,
		LoadedAtUnixNS: loadedAtUnixNS,
	}, nil
}

// LoadFile reads a classifier artifact (the classify.Save format, as
// written by `appdbtool retrain` or Classifier.Save) and wraps it as a
// registry entry under the given serving params.
func LoadFile(path string, p Params, loadedAtUnixNS int64) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("modelreg: open artifact: %w", err)
	}
	defer f.Close()
	cl, err := classify.Load(f)
	if err != nil {
		return nil, fmt.Errorf("modelreg: load artifact %s: %w", path, err)
	}
	return NewModel(cl, p, "file:"+path, loadedAtUnixNS)
}

// SaveFile writes a classifier artifact atomically (temp + fsync +
// rename), ready for LoadFile or POST /v1/models.
func SaveFile(path string, cl *classify.Classifier) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("modelreg: create temp artifact: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := cl.Save(f); err != nil {
		return fail(fmt.Errorf("modelreg: write artifact: %w", err))
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("modelreg: sync artifact: %w", err))
	}
	if err := f.Close(); err != nil {
		return fail(fmt.Errorf("modelreg: close artifact: %w", err))
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("modelreg: rename artifact: %w", err)
	}
	return nil
}

// Registry holds the known models and their lifecycle states: exactly
// one active model, at most one candidate, any number of loaded or
// retired ones. It is safe for concurrent use.
type Registry struct {
	mu     sync.Mutex
	models map[string]*Model
	states map[string]State
	active string
	cand   string
}

// NewRegistry creates a registry with the given model active.
func NewRegistry(active *Model) *Registry {
	r := &Registry{
		models: map[string]*Model{active.ID: active},
		states: map[string]State{active.ID: StateActive},
		active: active.ID,
	}
	return r
}

// Add registers a model as loaded. Adding an ID already present is an
// error — same hash means same model.
func (r *Registry) Add(m *Model) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.models[m.ID]; ok {
		return fmt.Errorf("modelreg: model %s already registered (state %s)", m.ID, r.states[m.ID])
	}
	r.models[m.ID] = m
	r.states[m.ID] = StateLoaded
	return nil
}

// Get returns a model and its state by ID.
func (r *Registry) Get(id string) (*Model, State, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.models[id]
	return m, r.states[id], ok
}

// Active returns the active model.
func (r *Registry) Active() *Model {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.models[r.active]
}

// Candidate returns the current candidate, or nil.
func (r *Registry) Candidate() *Model {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cand == "" {
		return nil
	}
	return r.models[r.cand]
}

// SetCandidate moves a registered model into the candidate slot. The
// slot holds at most one model; an existing candidate is demoted back
// to loaded.
func (r *Registry) SetCandidate(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.models[id]; !ok {
		return fmt.Errorf("modelreg: unknown model %s", id)
	}
	if id == r.active {
		return fmt.Errorf("modelreg: model %s is already active", id)
	}
	if r.cand != "" && r.cand != id {
		r.states[r.cand] = StateLoaded
	}
	r.cand = id
	r.states[id] = StateCandidate
	return nil
}

// ClearCandidate empties the candidate slot, demoting the candidate
// back to loaded. Returns the demoted model's ID ("" if the slot was
// empty).
func (r *Registry) ClearCandidate() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.cand
	if id != "" {
		r.states[id] = StateLoaded
		r.cand = ""
	}
	return id
}

// SetActive promotes a registered model to active, retiring the
// previous active model and emptying the candidate slot if the promoted
// model occupied it. The caller (the serving layer) is responsible for
// actually swapping traffic before or after, under its own quiesce.
func (r *Registry) SetActive(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.models[id]; !ok {
		return fmt.Errorf("modelreg: unknown model %s", id)
	}
	if id == r.active {
		return nil
	}
	r.states[r.active] = StateRetired
	if r.cand == id {
		r.cand = ""
	}
	r.active = id
	r.states[id] = StateActive
	return nil
}

// Remove drops a loaded or retired model. The active model and the
// candidate cannot be removed (promote another model or clear the
// candidate first).
func (r *Registry) Remove(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.models[id]; !ok {
		return fmt.Errorf("modelreg: unknown model %s", id)
	}
	switch r.states[id] {
	case StateActive:
		return fmt.Errorf("modelreg: model %s is active", id)
	case StateCandidate:
		return fmt.Errorf("modelreg: model %s is the candidate; clear it first", id)
	}
	delete(r.models, id)
	delete(r.states, id)
	return nil
}

// Entry is one List row.
type Entry struct {
	Model *Model
	State State
}

// List returns every registered model, active first, then candidate,
// then the rest by ID.
func (r *Registry) List() []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Entry, 0, len(r.models))
	for id, m := range r.models {
		out = append(out, Entry{Model: m, State: r.states[id]})
	}
	rank := func(e Entry) int {
		switch e.State {
		case StateActive:
			return 0
		case StateCandidate:
			return 1
		case StateLoaded:
			return 2
		default:
			return 3
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if ra, rb := rank(out[a]), rank(out[b]); ra != rb {
			return ra < rb
		}
		return out[a].Model.ID < out[b].Model.ID
	})
	return out
}
