// Package wire implements the daemon's binary columnar ingest
// protocol: the fast-path alternative to JSON on POST /v1/ingest. A
// client opens a stream with one Hello frame that negotiates a
// per-connection metric-ID table (schema names -> small column
// indices) and receives the serving model's compatibility hash; every
// later Batch frame then carries packed little-endian float columns
// addressed by those indices, so steady-state ingest never parses a
// metric name or a decimal float again. Frames reuse the write-ahead
// journal's framing idiom — length prefix plus CRC32C over the
// payload — and the model hash stamped into the stream means a
// mid-stream hot swap is detected (the server answers 409 with the new
// hash) instead of silently mis-decoding against a retired model.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Version is the wire protocol version carried in every Hello and
// HelloAck. A server speaking a different version rejects the
// handshake rather than guessing at frame layouts.
const Version = 1

// Frame types, the first payload byte of every frame.
const (
	// FrameHello opens a stream: client -> server, must be the only
	// frame in its request.
	FrameHello byte = 1
	// FrameHelloAck answers a Hello with the stream ID, the serving
	// model's hash, and the class-ID table.
	FrameHelloAck byte = 2
	// FrameBatch carries one ingest batch: per-VM groups of packed
	// float columns.
	FrameBatch byte = 3
	// FrameBatchAck answers one Batch frame with per-snapshot class
	// IDs in input order.
	FrameBatchAck byte = 4
	// FrameError carries an HTTP-status-shaped error; on a stale-model
	// 409 it also carries the new model hash so the client can decide
	// whether to re-handshake.
	FrameError byte = 5
)

// Framing and bounds. Every frame is
//
//	uint32 payload length | uint32 CRC32C of payload | payload
//
// all little-endian — the same shape as a journal record, so a torn or
// corrupted frame is detected by the length/CRC pair, never by a
// panic.
const (
	frameSize = 8
	// MaxFrame caps one frame's payload; it matches the server's ingest
	// body cap, so no legitimate batch can exceed it.
	MaxFrame = 8 << 20
	// HashSize is the model compatibility hash length (sha256).
	HashSize = 32
	// MaxVMName bounds an encoded VM name (u16 on the wire).
	MaxVMName = 1 << 10
	// MaxMetricName bounds one negotiated metric name.
	MaxMetricName = 1 << 10
	// MaxColumns bounds the negotiated metric table (u16 on the wire).
	MaxColumns = 1 << 15
	// maxClasses bounds the HelloAck class table (u8 on the wire).
	maxClasses = 255
)

// castagnoli is the CRC32C table; Castagnoli has hardware support on
// amd64/arm64, keeping the checksum off the hot path's profile.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// BeginFrame reserves a frame header on dst and returns the extended
// buffer plus the header's offset for EndFrame.
func BeginFrame(dst []byte) ([]byte, int) {
	start := len(dst)
	return append(dst, 0, 0, 0, 0, 0, 0, 0, 0), start
}

// EndFrame fills in the length and CRC for the payload appended since
// BeginFrame returned start.
func EndFrame(buf []byte, start int) []byte {
	payload := buf[start+frameSize:]
	binary.LittleEndian.PutUint32(buf[start:start+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:start+8], crc32.Checksum(payload, castagnoli))
	return buf
}

// NextFrame splits one CRC-verified frame payload off the front of
// buf, returning the payload and the remaining bytes. An empty buf
// returns (nil, nil, nil).
func NextFrame(buf []byte) (payload, rest []byte, err error) {
	if len(buf) == 0 {
		return nil, nil, nil
	}
	if len(buf) < frameSize {
		return nil, nil, fmt.Errorf("wire: truncated frame header (%d bytes)", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf[0:4]))
	if n == 0 || n > MaxFrame {
		return nil, nil, fmt.Errorf("wire: frame payload length %d outside (0,%d]", n, MaxFrame)
	}
	if len(buf)-frameSize < n {
		return nil, nil, fmt.Errorf("wire: frame payload truncated: have %d of %d bytes", len(buf)-frameSize, n)
	}
	payload = buf[frameSize : frameSize+n]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(buf[4:8]); got != want {
		return nil, nil, fmt.Errorf("wire: frame CRC mismatch (got %08x, want %08x)", got, want)
	}
	return payload, buf[frameSize+n:], nil
}

// Hello is the stream-opening handshake. Metrics names every column
// the client will send, in the client's chosen column order; the
// server requires them to cover its schema exactly (every schema
// metric present once, nothing else), matching the JSON by-name path's
// contract. A non-zero ModelHash pins the stream to that model: the
// handshake is refused with 409 if it is not the serving model.
type Hello struct {
	Version   byte
	ModelHash [HashSize]byte
	Metrics   []string
}

// AppendHello encodes h onto dst as a frame payload (no framing).
func AppendHello(dst []byte, h Hello) []byte {
	dst = append(dst, FrameHello, h.Version)
	dst = append(dst, h.ModelHash[:]...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(h.Metrics)))
	for _, m := range h.Metrics {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(m)))
		dst = append(dst, m...)
	}
	return dst
}

// ParseHello decodes a Hello frame payload.
func ParseHello(p []byte) (Hello, error) {
	var h Hello
	if len(p) < 2+HashSize+2 {
		return h, fmt.Errorf("wire: hello truncated (%d bytes)", len(p))
	}
	if p[0] != FrameHello {
		return h, fmt.Errorf("wire: not a hello frame (type %d)", p[0])
	}
	h.Version = p[1]
	copy(h.ModelHash[:], p[2:2+HashSize])
	p = p[2+HashSize:]
	n := int(binary.LittleEndian.Uint16(p[:2]))
	p = p[2:]
	if n == 0 || n > MaxColumns {
		return h, fmt.Errorf("wire: hello metric count %d outside [1,%d]", n, MaxColumns)
	}
	h.Metrics = make([]string, 0, n)
	for i := 0; i < n; i++ {
		if len(p) < 2 {
			return h, fmt.Errorf("wire: hello metric %d truncated", i)
		}
		l := int(binary.LittleEndian.Uint16(p[:2]))
		p = p[2:]
		if l == 0 || l > MaxMetricName || l > len(p) {
			return h, fmt.Errorf("wire: hello metric %d has invalid length %d", i, l)
		}
		h.Metrics = append(h.Metrics, string(p[:l]))
		p = p[l:]
	}
	if len(p) != 0 {
		return h, fmt.Errorf("wire: hello has %d trailing bytes", len(p))
	}
	return h, nil
}

// HelloAck answers a Hello: the stream ID every Batch must carry, the
// serving model's compatibility hash, and the class table Batch acks
// index into.
type HelloAck struct {
	Version   byte
	StreamID  uint64
	ModelHash [HashSize]byte
	Classes   []string
}

// AppendHelloAck encodes a onto dst as a frame payload.
func AppendHelloAck(dst []byte, a HelloAck) []byte {
	dst = append(dst, FrameHelloAck, a.Version)
	dst = binary.LittleEndian.AppendUint64(dst, a.StreamID)
	dst = append(dst, a.ModelHash[:]...)
	dst = append(dst, byte(len(a.Classes)))
	for _, c := range a.Classes {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(c)))
		dst = append(dst, c...)
	}
	return dst
}

// ParseHelloAck decodes a HelloAck frame payload.
func ParseHelloAck(p []byte) (HelloAck, error) {
	var a HelloAck
	if len(p) < 2+8+HashSize+1 {
		return a, fmt.Errorf("wire: hello ack truncated (%d bytes)", len(p))
	}
	if p[0] != FrameHelloAck {
		return a, fmt.Errorf("wire: not a hello ack frame (type %d)", p[0])
	}
	a.Version = p[1]
	a.StreamID = binary.LittleEndian.Uint64(p[2:10])
	copy(a.ModelHash[:], p[10:10+HashSize])
	p = p[10+HashSize:]
	n := int(p[0])
	p = p[1:]
	a.Classes = make([]string, 0, n)
	for i := 0; i < n; i++ {
		if len(p) < 2 {
			return a, fmt.Errorf("wire: hello ack class %d truncated", i)
		}
		l := int(binary.LittleEndian.Uint16(p[:2]))
		p = p[2:]
		if l == 0 || l > MaxMetricName || l > len(p) {
			return a, fmt.Errorf("wire: hello ack class %d has invalid length %d", i, l)
		}
		a.Classes = append(a.Classes, string(p[:l]))
		p = p[l:]
	}
	if len(p) != 0 {
		return a, fmt.Errorf("wire: hello ack has %d trailing bytes", len(p))
	}
	return a, nil
}

// Group is one VM's rows within a batch, row-major on the client side;
// AppendBatch writes it out column-major.
type Group struct {
	VM string
	// Times are snapshot times in seconds (the JSON path's time_s).
	Times []float64
	// Rows holds one value row per snapshot, each len(cols) long, in
	// the negotiated column order.
	Rows [][]float64
}

// AppendBatch encodes a batch frame payload onto dst: the stream ID,
// then each group as a VM name, row count, packed times, and one
// packed column per negotiated metric. Layout per group:
//
//	u16 len(vm) | vm | u32 rows |
//	rows × f64 time-seconds |
//	cols × (rows × f64 values)    — column-major
func AppendBatch(dst []byte, streamID uint64, cols int, groups []Group) ([]byte, error) {
	if cols <= 0 || cols > MaxColumns {
		return dst, fmt.Errorf("wire: column count %d outside [1,%d]", cols, MaxColumns)
	}
	if len(groups) == 0 {
		return dst, fmt.Errorf("wire: empty batch")
	}
	dst = append(dst, FrameBatch)
	dst = binary.LittleEndian.AppendUint64(dst, streamID)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(groups)))
	for _, g := range groups {
		if len(g.VM) == 0 || len(g.VM) > MaxVMName {
			return dst, fmt.Errorf("wire: vm name length %d outside [1,%d]", len(g.VM), MaxVMName)
		}
		if len(g.Times) == 0 || len(g.Times) != len(g.Rows) {
			return dst, fmt.Errorf("wire: group %q has %d times for %d rows", g.VM, len(g.Times), len(g.Rows))
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(g.VM)))
		dst = append(dst, g.VM...)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(g.Rows)))
		for _, t := range g.Times {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(t))
		}
		for c := 0; c < cols; c++ {
			for r, row := range g.Rows {
				if len(row) != cols {
					return dst, fmt.Errorf("wire: group %q row %d has %d values, want %d", g.VM, r, len(row), cols)
				}
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(row[c]))
			}
		}
	}
	return dst, nil
}

// BatchView is a zero-copy decoder over one batch frame payload: the
// server walks groups in place with Next, never allocating per frame.
type BatchView struct {
	StreamID uint64
	groups   int
	read     int
	cols     int
	p        []byte
}

// ParseBatchHeader begins decoding a batch frame payload. cols is the
// stream's negotiated column count; the caller resolves it from the
// stream ID, which is why the header carries the ID up front.
func ParseBatchHeader(p []byte, cols int) (BatchView, error) {
	var b BatchView
	if len(p) < 1+8+4 {
		return b, fmt.Errorf("wire: batch truncated (%d bytes)", len(p))
	}
	if p[0] != FrameBatch {
		return b, fmt.Errorf("wire: not a batch frame (type %d)", p[0])
	}
	b.StreamID = binary.LittleEndian.Uint64(p[1:9])
	b.groups = int(binary.LittleEndian.Uint32(p[9:13]))
	if b.groups <= 0 {
		return b, fmt.Errorf("wire: batch has %d groups", b.groups)
	}
	b.cols = cols
	b.p = p[13:]
	return b, nil
}

// PeekStreamID extracts the stream ID from a batch frame payload
// without validating the rest, so the caller can resolve the stream's
// column table before ParseBatchHeader.
func PeekStreamID(p []byte) (uint64, error) {
	if len(p) < 9 || p[0] != FrameBatch {
		return 0, fmt.Errorf("wire: not a batch frame")
	}
	return binary.LittleEndian.Uint64(p[1:9]), nil
}

// Groups returns the group count declared in the batch header.
func (b *BatchView) Groups() int { return b.groups }

// GroupView addresses one VM's packed rows inside a batch frame
// without copying them: VM aliases the frame buffer, and values are
// read on demand straight out of it.
type GroupView struct {
	// VM aliases the request buffer; it is only valid until the buffer
	// is recycled. Callers needing to keep it must copy (intern) it.
	VM     []byte
	Rows   int
	cols   int
	times  []byte
	values []byte
}

// Next decodes the next group in place. It returns an error on any
// malformed group; the caller treats that like a bad CRC.
func (b *BatchView) Next() (GroupView, error) {
	var g GroupView
	if b.read >= b.groups {
		return g, fmt.Errorf("wire: batch has only %d groups", b.groups)
	}
	p := b.p
	if len(p) < 2 {
		return g, fmt.Errorf("wire: group %d truncated", b.read)
	}
	vmLen := int(binary.LittleEndian.Uint16(p[:2]))
	p = p[2:]
	if vmLen == 0 || vmLen > MaxVMName || vmLen > len(p) {
		return g, fmt.Errorf("wire: group %d vm name length %d invalid", b.read, vmLen)
	}
	g.VM = p[:vmLen]
	p = p[vmLen:]
	if len(p) < 4 {
		return g, fmt.Errorf("wire: group %d row count truncated", b.read)
	}
	rows := int(binary.LittleEndian.Uint32(p[:4]))
	p = p[4:]
	if rows <= 0 || rows > MaxFrame/8 {
		return g, fmt.Errorf("wire: group %d has %d rows", b.read, rows)
	}
	need := 8 * rows * (1 + b.cols)
	if need < 0 || len(p) < need {
		return g, fmt.Errorf("wire: group %d body is %d bytes, want %d", b.read, len(p), need)
	}
	g.Rows = rows
	g.cols = b.cols
	g.times = p[:8*rows]
	g.values = p[8*rows : need]
	b.p = p[need:]
	b.read++
	if b.read == b.groups && len(b.p) != 0 {
		return g, fmt.Errorf("wire: batch has %d trailing bytes", len(b.p))
	}
	return g, nil
}

// TimeSeconds returns row's snapshot time in seconds.
func (g *GroupView) TimeSeconds(row int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(g.times[8*row:]))
}

// Value returns the value at (negotiated column, row).
func (g *GroupView) Value(col, row int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(g.values[8*(col*g.Rows+row):]))
}

// AppendBatchAck encodes a batch ack frame payload: one class-table
// index per accepted snapshot, in the batch's input order.
func AppendBatchAck(dst []byte, classIDs []byte) []byte {
	dst = append(dst, FrameBatchAck)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(classIDs)))
	return append(dst, classIDs...)
}

// ParseBatchAck decodes a batch ack frame payload. The returned slice
// aliases p.
func ParseBatchAck(p []byte) ([]byte, error) {
	if len(p) < 5 {
		return nil, fmt.Errorf("wire: batch ack truncated (%d bytes)", len(p))
	}
	if p[0] != FrameBatchAck {
		return nil, fmt.Errorf("wire: not a batch ack frame (type %d)", p[0])
	}
	n := int(binary.LittleEndian.Uint32(p[1:5]))
	if n != len(p)-5 {
		return nil, fmt.Errorf("wire: batch ack declares %d classes, carries %d", n, len(p)-5)
	}
	return p[5:], nil
}

// ErrorFrame is the binary error response: the HTTP status code the
// response carried, a message, and — on a stale-model 409 — the
// serving model's current hash.
type ErrorFrame struct {
	Code      int
	ModelHash [HashSize]byte
	Message   string
}

// AppendError encodes e onto dst as a frame payload.
func AppendError(dst []byte, e ErrorFrame) []byte {
	dst = append(dst, FrameError)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(e.Code))
	dst = append(dst, e.ModelHash[:]...)
	msg := e.Message
	if len(msg) > MaxMetricName {
		msg = msg[:MaxMetricName]
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(msg)))
	return append(dst, msg...)
}

// ParseError decodes an error frame payload.
func ParseError(p []byte) (ErrorFrame, error) {
	var e ErrorFrame
	if len(p) < 1+2+HashSize+2 {
		return e, fmt.Errorf("wire: error frame truncated (%d bytes)", len(p))
	}
	if p[0] != FrameError {
		return e, fmt.Errorf("wire: not an error frame (type %d)", p[0])
	}
	e.Code = int(binary.LittleEndian.Uint16(p[1:3]))
	copy(e.ModelHash[:], p[3:3+HashSize])
	p = p[3+HashSize:]
	l := int(binary.LittleEndian.Uint16(p[:2]))
	p = p[2:]
	if l != len(p) {
		return e, fmt.Errorf("wire: error message declares %d bytes, carries %d", l, len(p))
	}
	e.Message = string(p)
	return e, nil
}
