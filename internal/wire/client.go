package wire

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// ContentType is the media type of binary ingest requests/responses.
const ContentType = "application/x-appclass-wire"

// DefaultClientTimeout bounds one binary ingest round trip when the
// caller supplies no http.Client.
const DefaultClientTimeout = 10 * time.Second

// Client speaks the binary ingest protocol against one daemon. It is
// not safe for concurrent use: callers wanting parallel streams open
// one Client per sender goroutine (each gets its own stream ID).
type Client struct {
	url     string
	hc      *http.Client
	metrics []string

	streamID  uint64
	modelHash [HashSize]byte
	classes   []string
	buf       []byte
}

// NewClient prepares a client for the daemon at baseURL (e.g.
// "http://localhost:8080"). metrics is the column order every Send
// will use; it must cover the daemon's schema exactly. A nil hc gets a
// client with DefaultClientTimeout.
func NewClient(baseURL string, metricNames []string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: DefaultClientTimeout}
	}
	return &Client{
		url:     baseURL + "/v1/ingest.bin",
		hc:      hc,
		metrics: append([]string(nil), metricNames...),
	}
}

// ModelHash returns the serving model hash stamped on the stream by
// the last successful handshake.
func (c *Client) ModelHash() [HashSize]byte { return c.modelHash }

// StreamID returns the stream negotiated by the last handshake.
func (c *Client) StreamID() uint64 { return c.streamID }

// Classes returns the class table from the last handshake; batch acks
// index into it.
func (c *Client) Classes() []string { return c.classes }

// Handshake opens (or reopens) a stream: one Hello frame, one
// HelloAck back. It is called automatically by the first Send and
// after a stale-model 409.
func (c *Client) Handshake(ctx context.Context) error {
	buf, start := BeginFrame(c.buf[:0])
	buf = AppendHello(buf, Hello{Version: Version, Metrics: c.metrics})
	buf = EndFrame(buf, start)
	c.buf = buf

	payload, err := c.post(ctx, buf)
	if err != nil {
		return err
	}
	ack, err := ParseHelloAck(payload)
	if err != nil {
		return err
	}
	if ack.Version != Version {
		return fmt.Errorf("wire: server speaks version %d, want %d", ack.Version, Version)
	}
	c.streamID = ack.StreamID
	c.modelHash = ack.ModelHash
	c.classes = ack.Classes
	return nil
}

// Send ships one batch of groups and returns the classified class
// name for every snapshot, in input order (groups in order, rows in
// order within each group). On a stale-model or expired-stream 409 it
// re-handshakes once and retries, so a daemon hot swap costs one round
// trip, not a failed batch.
func (c *Client) Send(ctx context.Context, groups []Group) ([]string, error) {
	if c.streamID == 0 {
		if err := c.Handshake(ctx); err != nil {
			return nil, err
		}
	}
	classIDs, err := c.send(ctx, groups)
	var stale *StaleStreamError
	if errors.As(err, &stale) {
		if err = c.Handshake(ctx); err != nil {
			return nil, err
		}
		classIDs, err = c.send(ctx, groups)
	}
	if err != nil {
		return nil, err
	}
	out := make([]string, len(classIDs))
	for i, id := range classIDs {
		if int(id) >= len(c.classes) {
			return nil, fmt.Errorf("wire: class id %d outside table of %d", id, len(c.classes))
		}
		out[i] = c.classes[id]
	}
	return out, nil
}

func (c *Client) send(ctx context.Context, groups []Group) ([]byte, error) {
	buf, start := BeginFrame(c.buf[:0])
	buf, err := AppendBatch(buf, c.streamID, len(c.metrics), groups)
	if err != nil {
		return nil, err
	}
	buf = EndFrame(buf, start)
	c.buf = buf

	payload, err := c.post(ctx, buf)
	if err != nil {
		return nil, err
	}
	ids, err := ParseBatchAck(payload)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), ids...), nil
}

// StaleStreamError reports a 409: the stream is unknown to the server
// or pinned to a model that is no longer serving. NewHash carries the
// serving model's hash when the server supplied one.
type StaleStreamError struct {
	Message string
	NewHash [HashSize]byte
}

func (e *StaleStreamError) Error() string { return e.Message }

// post ships one framed request body and returns the single response
// frame's payload.
func (c *Client) post(ctx context.Context, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", ContentType)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, MaxFrame+frameSize))
	if err != nil {
		return nil, err
	}
	payload, _, err := NextFrame(raw)
	if err != nil {
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("wire: server returned %d", resp.StatusCode)
		}
		return nil, err
	}
	if payload == nil {
		return nil, fmt.Errorf("wire: server returned %d with empty body", resp.StatusCode)
	}
	if payload[0] == FrameError {
		ef, perr := ParseError(payload)
		if perr != nil {
			return nil, fmt.Errorf("wire: server returned %d with bad error frame: %v", resp.StatusCode, perr)
		}
		if ef.Code == http.StatusConflict {
			return nil, &StaleStreamError{Message: ef.Message, NewHash: ef.ModelHash}
		}
		return nil, fmt.Errorf("wire: server error %d: %s", ef.Code, ef.Message)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("wire: server returned %d", resp.StatusCode)
	}
	return payload, nil
}
