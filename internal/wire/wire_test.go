package wire

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func frame(payload []byte) []byte {
	buf, start := BeginFrame(nil)
	buf = append(buf, payload...)
	return EndFrame(buf, start)
}

func TestFrameRoundTrip(t *testing.T) {
	buf, start := BeginFrame(nil)
	buf = append(buf, 0xAB, 0xCD, 0xEF)
	buf = EndFrame(buf, start)
	payload, rest, err := NextFrame(buf)
	if err != nil {
		t.Fatalf("NextFrame: %v", err)
	}
	if !bytes.Equal(payload, []byte{0xAB, 0xCD, 0xEF}) {
		t.Errorf("payload = %x", payload)
	}
	if len(rest) != 0 {
		t.Errorf("rest = %d bytes", len(rest))
	}
	// Two frames back to back.
	buf = append(buf, frame([]byte{1, 2})...)
	p1, rest, err := NextFrame(buf)
	if err != nil || len(p1) != 3 {
		t.Fatalf("frame 1: %v %x", err, p1)
	}
	p2, rest, err := NextFrame(rest)
	if err != nil || !bytes.Equal(p2, []byte{1, 2}) || len(rest) != 0 {
		t.Fatalf("frame 2: %v %x rest=%d", err, p2, len(rest))
	}
}

func TestFrameCorruption(t *testing.T) {
	good := frame([]byte{9, 9, 9, 9})
	cases := map[string][]byte{
		"truncated header":  good[:5],
		"truncated payload": good[:len(good)-1],
		"flipped payload":   append(append([]byte{}, good[:8]...), 9, 9, 8, 9),
		"flipped crc":       append([]byte{good[0], good[1], good[2], good[3], ^good[4]}, good[5:]...),
		"zero length":       {0, 0, 0, 0, 0, 0, 0, 0},
		"huge length":       {0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0},
	}
	for name, buf := range cases {
		if _, _, err := NextFrame(buf); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h := Hello{Version: Version, Metrics: []string{"cpu_user", "cpu_system", "bytes_in"}}
	h.ModelHash[0], h.ModelHash[31] = 0xAA, 0xBB
	got, err := ParseHello(AppendHello(nil, h))
	if err != nil {
		t.Fatalf("ParseHello: %v", err)
	}
	if got.Version != h.Version || got.ModelHash != h.ModelHash {
		t.Errorf("hello header mismatch: %+v", got)
	}
	if len(got.Metrics) != 3 || got.Metrics[0] != "cpu_user" || got.Metrics[2] != "bytes_in" {
		t.Errorf("metrics = %v", got.Metrics)
	}
}

func TestHelloAckRoundTrip(t *testing.T) {
	a := HelloAck{Version: Version, StreamID: 42, Classes: []string{"idle", "io", "cpu", "network", "memory", "unknown"}}
	a.ModelHash[7] = 0x77
	got, err := ParseHelloAck(AppendHelloAck(nil, a))
	if err != nil {
		t.Fatalf("ParseHelloAck: %v", err)
	}
	if got.StreamID != 42 || got.ModelHash != a.ModelHash || len(got.Classes) != 6 || got.Classes[5] != "unknown" {
		t.Errorf("ack = %+v", got)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	const cols = 4
	groups := []Group{
		{VM: "vm-a", Times: []float64{1.5, 2.5}, Rows: [][]float64{{1, 2, 3, 4}, {5, 6, 7, 8}}},
		{VM: "vm-b", Times: []float64{9}, Rows: [][]float64{{-1, 0.5, math.MaxFloat64, 1e-300}}},
	}
	p, err := AppendBatch(nil, 7, cols, groups)
	if err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if id, err := PeekStreamID(p); err != nil || id != 7 {
		t.Fatalf("PeekStreamID = %d, %v", id, err)
	}
	v, err := ParseBatchHeader(p, cols)
	if err != nil {
		t.Fatalf("ParseBatchHeader: %v", err)
	}
	if v.StreamID != 7 || v.Groups() != 2 {
		t.Fatalf("header: stream %d, %d groups", v.StreamID, v.Groups())
	}
	for gi, want := range groups {
		g, err := v.Next()
		if err != nil {
			t.Fatalf("group %d: %v", gi, err)
		}
		if string(g.VM) != want.VM || g.Rows != len(want.Rows) {
			t.Fatalf("group %d: vm=%s rows=%d", gi, g.VM, g.Rows)
		}
		for r := range want.Rows {
			if got := g.TimeSeconds(r); got != want.Times[r] {
				t.Errorf("group %d row %d time = %v, want %v", gi, r, got, want.Times[r])
			}
			for c := 0; c < cols; c++ {
				if got := g.Value(c, r); got != want.Rows[r][c] {
					t.Errorf("group %d row %d col %d = %v, want %v", gi, r, c, got, want.Rows[r][c])
				}
			}
		}
	}
	if _, err := v.Next(); err == nil {
		t.Error("Next past the last group: no error")
	}
}

func TestBatchMalformed(t *testing.T) {
	good, err := AppendBatch(nil, 1, 2, []Group{{VM: "vm", Times: []float64{1}, Rows: [][]float64{{1, 2}}}})
	if err != nil {
		t.Fatal(err)
	}
	// Truncations anywhere in the body must error, never panic.
	for cut := 1; cut < len(good); cut++ {
		v, err := ParseBatchHeader(good[:cut], 2)
		if err != nil {
			continue
		}
		for i := 0; i < v.Groups(); i++ {
			if _, err := v.Next(); err != nil {
				break
			}
		}
	}
	// Wrong column count shifts the layout; the length check catches it.
	v, err := ParseBatchHeader(good, 5)
	if err == nil {
		if _, err := v.Next(); err == nil {
			t.Error("mismatched column count decoded cleanly")
		}
	}
	// Encoder-side validation.
	if _, err := AppendBatch(nil, 1, 2, nil); err == nil {
		t.Error("empty batch encoded")
	}
	if _, err := AppendBatch(nil, 1, 2, []Group{{VM: "", Times: []float64{1}, Rows: [][]float64{{1, 2}}}}); err == nil {
		t.Error("empty vm encoded")
	}
	if _, err := AppendBatch(nil, 1, 2, []Group{{VM: "vm", Times: []float64{1}, Rows: [][]float64{{1}}}}); err == nil {
		t.Error("short row encoded")
	}
	if _, err := AppendBatch(nil, 1, 2, []Group{{VM: "vm", Times: []float64{1, 2}, Rows: [][]float64{{1, 2}}}}); err == nil {
		t.Error("times/rows mismatch encoded")
	}
}

func TestBatchAckRoundTrip(t *testing.T) {
	ids, err := ParseBatchAck(AppendBatchAck(nil, []byte{0, 2, 5, 2}))
	if err != nil {
		t.Fatalf("ParseBatchAck: %v", err)
	}
	if !bytes.Equal(ids, []byte{0, 2, 5, 2}) {
		t.Errorf("ids = %v", ids)
	}
	if _, err := ParseBatchAck([]byte{byte(FrameBatchAck), 9, 0, 0, 0, 1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestErrorRoundTrip(t *testing.T) {
	e := ErrorFrame{Code: 409, Message: "stale model"}
	e.ModelHash[3] = 0x33
	got, err := ParseError(AppendError(nil, e))
	if err != nil {
		t.Fatalf("ParseError: %v", err)
	}
	if got.Code != 409 || got.ModelHash != e.ModelHash || got.Message != "stale model" {
		t.Errorf("error frame = %+v", got)
	}
	// Over-long messages truncate rather than fail.
	long := ErrorFrame{Code: 500, Message: strings.Repeat("x", MaxMetricName+100)}
	got, err = ParseError(AppendError(nil, long))
	if err != nil {
		t.Fatalf("long message: %v", err)
	}
	if len(got.Message) != MaxMetricName {
		t.Errorf("message length = %d, want %d", len(got.Message), MaxMetricName)
	}
}

// FuzzWireDecode throws arbitrary bytes at every decoder: truncated
// frames, corrupt CRCs, hostile lengths, NaN/Inf columns. The only
// acceptable outcomes are a clean parse or an error — never a panic.
func FuzzWireDecode(f *testing.F) {
	f.Add(frame(AppendHello(nil, Hello{Version: Version, Metrics: []string{"m1", "m2"}})))
	f.Add(frame(AppendHelloAck(nil, HelloAck{Version: Version, StreamID: 3, Classes: []string{"cpu"}})))
	if b, err := AppendBatch(nil, 9, 2, []Group{{VM: "vm", Times: []float64{math.NaN()}, Rows: [][]float64{{math.Inf(1), -1}}}}); err == nil {
		f.Add(frame(b))
	}
	f.Add(frame(AppendBatchAck(nil, []byte{1, 2, 3})))
	f.Add(frame(AppendError(nil, ErrorFrame{Code: 400, Message: "bad"})))
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		buf := data
		for i := 0; i < 64; i++ {
			payload, rest, err := NextFrame(buf)
			if err != nil || payload == nil {
				break
			}
			_, _ = ParseHello(payload)
			_, _ = ParseHelloAck(payload)
			_, _ = ParseBatchAck(payload)
			_, _ = ParseError(payload)
			_, _ = PeekStreamID(payload)
			for _, cols := range []int{1, 2, 33} {
				v, err := ParseBatchHeader(payload, cols)
				if err != nil {
					continue
				}
				for g := 0; g < v.Groups(); g++ {
					gv, err := v.Next()
					if err != nil {
						break
					}
					for r := 0; r < gv.Rows; r++ {
						_ = gv.TimeSeconds(r)
						for c := 0; c < cols; c++ {
							_ = gv.Value(c, r)
						}
					}
				}
			}
			buf = rest
		}
	})
}
