package classify

import (
	"fmt"

	"repro/internal/appclass"
)

// CrossValidate scores the classification pipeline by leave-one-out
// cross-validation over labelled runs: each run in turn is held out,
// the classifier is trained on the rest (which must still cover every
// class present in the held-out run's label set), and the held-out
// run's majority-vote class is compared with its label. It returns the
// fraction of held-out runs classified correctly and the per-run
// verdicts aligned with the input.
func CrossValidate(runs []TrainingRun, cfg Config) (float64, []bool, error) {
	if len(runs) < 2 {
		return 0, nil, fmt.Errorf("classify: cross-validation needs at least 2 runs, got %d", len(runs))
	}
	// Every class must appear at least twice, or its held-out run
	// cannot be classified as itself.
	counts := map[appclass.Class]int{}
	for i, r := range runs {
		if !appclass.Valid(r.Class) {
			return 0, nil, fmt.Errorf("classify: run %d has invalid label %q", i, r.Class)
		}
		counts[r.Class]++
	}
	for c, n := range counts {
		if n < 2 {
			return 0, nil, fmt.Errorf("classify: class %s has only %d run; leave-one-out needs 2+", c, n)
		}
	}
	verdicts := make([]bool, len(runs))
	correct := 0
	for i := range runs {
		held := runs[i]
		rest := make([]TrainingRun, 0, len(runs)-1)
		rest = append(rest, runs[:i]...)
		rest = append(rest, runs[i+1:]...)
		cl, err := Train(rest, cfg)
		if err != nil {
			return 0, nil, fmt.Errorf("classify: fold %d: %w", i, err)
		}
		out, err := cl.ClassifyTrace(held.Trace)
		if err != nil {
			return 0, nil, fmt.Errorf("classify: fold %d classify: %w", i, err)
		}
		if out.Class == held.Class {
			verdicts[i] = true
			correct++
		}
	}
	return float64(correct) / float64(len(runs)), verdicts, nil
}
