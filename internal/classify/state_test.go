package classify

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// mixedTrace builds a multi-stage trace: an IO phase followed by a CPU
// phase, so checkpoints carry a nontrivial composition and history.
func mixedTrace(t *testing.T) *metrics.Trace {
	t.Helper()
	tr := metrics.NewTrace(metrics.ExpertSchema(), "vm1")
	add := func(src *metrics.Trace) {
		for i := 0; i < src.Len(); i++ {
			snap := src.At(i)
			snap.Time = time.Duration(tr.Len()*5) * time.Second
			if err := tr.Append(snap); err != nil {
				t.Fatal(err)
			}
		}
	}
	add(syntheticTrace(t, appclass.IO, 12, 31))
	add(syntheticTrace(t, appclass.CPU, 12, 32))
	return tr
}

// TestStateRoundTripResumesExactly interrupts an online stream halfway,
// exports/imports the state (through JSON, like a checkpoint does), and
// feeds the second half to both the original and the restored
// classifier: every observable — composition, majority class, history,
// drift — must agree.
func TestStateRoundTripResumesExactly(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	schema := metrics.ExpertSchema()
	trace := mixedTrace(t)

	orig, err := NewOnline(cl, schema)
	if err != nil {
		t.Fatal(err)
	}
	half := trace.Len() / 2
	for i := 0; i < half; i++ {
		if _, err := orig.Observe(trace.At(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Checkpoint shape: export -> JSON -> import.
	doc, err := json.Marshal(orig.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	var st OnlineState
	if err := json.Unmarshal(doc, &st); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreOnline(cl, schema, st)
	if err != nil {
		t.Fatalf("RestoreOnline: %v", err)
	}

	for i := half; i < trace.Len(); i++ {
		co, err := orig.Observe(trace.At(i))
		if err != nil {
			t.Fatal(err)
		}
		cr, err := restored.Observe(trace.At(i))
		if err != nil {
			t.Fatal(err)
		}
		if co != cr {
			t.Fatalf("snapshot %d: original classified %s, restored %s", i, co, cr)
		}
	}

	vo, vr := orig.Snapshot(), restored.Snapshot()
	if vo.Class != vr.Class || vo.LastClass != vr.LastClass || vo.Total != vr.Total ||
		vo.FirstAt != vr.FirstAt || vo.LastAt != vr.LastAt {
		t.Errorf("views diverge:\noriginal %+v\nrestored %+v", vo, vr)
	}
	if !reflect.DeepEqual(vo.Composition, vr.Composition) {
		t.Errorf("compositions diverge: %v vs %v", vo.Composition, vr.Composition)
	}
	if d := math.Abs(vo.Drift - vr.Drift); d > 1e-12 {
		t.Errorf("drift scores diverge by %v (%v vs %v)", d, vo.Drift, vr.Drift)
	}
	if !reflect.DeepEqual(orig.History(), restored.History()) {
		t.Errorf("histories diverge (%d vs %d entries)", len(orig.History()), len(restored.History()))
	}
	if orig.HistoryDropped() != restored.HistoryDropped() {
		t.Errorf("dropped diverge: %d vs %d", orig.HistoryDropped(), restored.HistoryDropped())
	}
}

// TestStateRoundTripCarriesGaps checkpoints a session that recorded
// sample gaps (missed polls) and expects the gap accounting to survive
// the export/restore cycle and keep accumulating afterwards.
func TestStateRoundTripCarriesGaps(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	schema := metrics.ExpertSchema()
	trace := mixedTrace(t)

	o, err := NewOnline(cl, schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := o.Observe(trace.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	o.RecordGap(5 * time.Second)
	o.RecordGap(10 * time.Second)
	o.RecordGap(-time.Second) // clamped: a gap never subtracts wall time
	gaps, gapTime := o.Gaps()
	if gaps != 3 || gapTime != 15*time.Second {
		t.Fatalf("gaps = %d/%v, want 3/15s", gaps, gapTime)
	}

	doc, err := json.Marshal(o.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	var st OnlineState
	if err := json.Unmarshal(doc, &st); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreOnline(cl, schema, st)
	if err != nil {
		t.Fatal(err)
	}
	rg, rt := restored.Gaps()
	if rg != gaps || rt != gapTime {
		t.Errorf("restored gaps = %d/%v, want %d/%v", rg, rt, gaps, gapTime)
	}
	restored.RecordGap(time.Second)
	if rg, rt = restored.Gaps(); rg != 4 || rt != 16*time.Second {
		t.Errorf("post-restore gap accumulation = %d/%v, want 4/16s", rg, rt)
	}
	view := restored.Snapshot()
	if view.Gaps != 4 || view.GapTime != 16*time.Second {
		t.Errorf("view gaps = %d/%v, want 4/16s", view.Gaps, view.GapTime)
	}

	// Negative gap accounting must be rejected on restore.
	bad := st
	bad.Gaps = -1
	if _, err := RestoreOnline(cl, schema, bad); err == nil {
		t.Error("negative gap count restored without error")
	}
	bad = st
	bad.GapTimeNS = -5
	if _, err := RestoreOnline(cl, schema, bad); err == nil {
		t.Error("negative gap time restored without error")
	}
}

// TestStateRoundTripWithTrimmedHistory checkpoints a session whose
// retention cap has already dropped entries.
func TestStateRoundTripWithTrimmedHistory(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	schema := metrics.ExpertSchema()
	trace := mixedTrace(t)

	o, err := NewOnline(cl, schema)
	if err != nil {
		t.Fatal(err)
	}
	o.SetHistoryCap(4)
	for i := 0; i < trace.Len(); i++ {
		if _, err := o.Observe(trace.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	if o.HistoryDropped() == 0 {
		t.Fatalf("test needs a trimmed history (trace len %d, cap 4)", trace.Len())
	}
	restored, err := RestoreOnline(cl, schema, o.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	if restored.Seen() != o.Seen() || restored.HistoryDropped() != o.HistoryDropped() {
		t.Errorf("restored seen/dropped = %d/%d, want %d/%d",
			restored.Seen(), restored.HistoryDropped(), o.Seen(), o.HistoryDropped())
	}
	if !reflect.DeepEqual(restored.History(), o.History()) {
		t.Errorf("trimmed histories diverge")
	}
}

func TestRestoreOnlineRejectsInvalidState(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	schema := metrics.ExpertSchema()
	o, err := NewOnline(cl, schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Observe(mixedTrace(t).At(0)); err != nil {
		t.Fatal(err)
	}
	good := o.ExportState()

	mutate := func(f func(*OnlineState)) OnlineState {
		doc, _ := json.Marshal(good)
		var st OnlineState
		_ = json.Unmarshal(doc, &st)
		f(&st)
		return st
	}
	cases := map[string]OnlineState{
		"bad count class":  mutate(func(s *OnlineState) { s.Counts["warp"] = s.Counts[s.Last]; delete(s.Counts, s.Last) }),
		"count mismatch":   mutate(func(s *OnlineState) { s.Total += 3 }),
		"history mismatch": mutate(func(s *OnlineState) { s.History = nil }),
		"bad last":         mutate(func(s *OnlineState) { s.Last = "warp" }),
		"drift arity":      mutate(func(s *OnlineState) { s.Drift = s.Drift[:1] }),
		"bad drift":        mutate(func(s *OnlineState) { s.Drift[0] = stats.WelfordState{N: -1} }),
		"bad history class": mutate(func(s *OnlineState) {
			s.History[0].Class = "warp"
		}),
	}
	for name, st := range cases {
		if _, err := RestoreOnline(cl, schema, st); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}
