package classify

import (
	"fmt"
	"time"

	"repro/internal/appclass"
	"repro/internal/metrics"
)

// Stage is a maximal run of consecutive snapshots whose windowed
// majority class is constant — one execution stage of a multi-stage
// application (Section 1 motivates identifying such stages for
// migration and stage-aware scheduling).
type Stage struct {
	// Class is the stage's dominant class.
	Class appclass.Class
	// Start and End are the stage's snapshot time bounds (End is the
	// time of the stage's last snapshot).
	Start, End time.Duration
	// Snapshots is the number of snapshots in the stage.
	Snapshots int
	// Partial marks a stage whose beginning fell outside the retained
	// history window (see StagesFromHistory): its Start, Snapshots, and
	// duration describe only the retained tail, not the full stage.
	Partial bool
}

// Duration returns the stage's time span.
func (s Stage) Duration() time.Duration { return s.End - s.Start }

// DetectStages segments a classified run into execution stages. Each
// snapshot is relabelled with the majority class of a centered window
// of the given width (odd; 1 disables smoothing), which suppresses
// single-snapshot flicker; consecutive equal labels then merge into
// stages, and stages shorter than minLen snapshots are absorbed into
// their predecessor.
func DetectStages(trace *metrics.Trace, result *Result, window, minLen int) ([]Stage, error) {
	if trace == nil || result == nil {
		return nil, fmt.Errorf("classify: nil trace or result")
	}
	m := len(result.Snapshots)
	if m == 0 {
		return nil, fmt.Errorf("classify: result has no snapshot classes")
	}
	if trace.Len() != m {
		return nil, fmt.Errorf("classify: trace has %d snapshots, result %d", trace.Len(), m)
	}
	if window <= 0 || window%2 == 0 {
		return nil, fmt.Errorf("classify: window must be positive and odd, got %d", window)
	}
	if minLen <= 0 {
		return nil, fmt.Errorf("classify: minLen must be positive, got %d", minLen)
	}

	// Windowed majority smoothing.
	smoothed := make([]appclass.Class, m)
	half := window / 2
	for i := 0; i < m; i++ {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= m {
			hi = m - 1
		}
		counts := map[appclass.Class]int{}
		for j := lo; j <= hi; j++ {
			counts[result.Snapshots[j]]++
		}
		var best appclass.Class
		bestN := -1
		for c, n := range counts {
			if n > bestN || (n == bestN && c < best) {
				best, bestN = c, n
			}
		}
		smoothed[i] = best
	}

	// Merge consecutive equal labels into stages.
	var stages []Stage
	for i := 0; i < m; i++ {
		at := trace.At(i).Time
		if len(stages) > 0 && stages[len(stages)-1].Class == smoothed[i] {
			stages[len(stages)-1].End = at
			stages[len(stages)-1].Snapshots++
			continue
		}
		stages = append(stages, Stage{Class: smoothed[i], Start: at, End: at, Snapshots: 1})
	}

	// Absorb runt stages into their predecessor (or successor for a
	// leading runt).
	out := stages[:0]
	for _, st := range stages {
		if st.Snapshots < minLen && len(out) > 0 {
			prev := &out[len(out)-1]
			prev.End = st.End
			prev.Snapshots += st.Snapshots
			continue
		}
		if st.Snapshots < minLen && len(out) == 0 {
			// Leading runt: keep it for now; it may merge into the next
			// stage if classes match after absorption.
			out = append(out, st)
			continue
		}
		if len(out) > 0 && out[len(out)-1].Class == st.Class {
			prev := &out[len(out)-1]
			prev.End = st.End
			prev.Snapshots += st.Snapshots
			continue
		}
		out = append(out, st)
	}
	return out, nil
}

// StagesFromHistory segments an online classification history (the
// TimedClass sequence an Online classifier accumulates) into execution
// stages: consecutive snapshots of equal class merge, and stages
// shorter than minLen snapshots are absorbed into their predecessor.
// It is the streaming counterpart of DetectStages for callers that hold
// no trace, e.g. the classification daemon's per-VM stage history.
//
// dropped is the number of history entries the retention cap has
// trimmed away (Online.HistoryDropped). When it is nonzero, the first
// stage may have begun before the retained window: it is flagged
// Partial so consumers do not mistake its truncated start and length
// for the stage's real extent.
func StagesFromHistory(history []TimedClass, minLen, dropped int) ([]Stage, error) {
	if minLen <= 0 {
		return nil, fmt.Errorf("classify: minLen must be positive, got %d", minLen)
	}
	if dropped < 0 {
		return nil, fmt.Errorf("classify: negative dropped count %d", dropped)
	}
	var stages []Stage
	for _, tc := range history {
		if n := len(stages); n > 0 && stages[n-1].Class == tc.Class {
			stages[n-1].End = tc.At
			stages[n-1].Snapshots++
			continue
		}
		stages = append(stages, Stage{Class: tc.Class, Start: tc.At, End: tc.At, Snapshots: 1})
	}
	if len(stages) > 0 && dropped > 0 {
		stages[0].Partial = true
	}
	if minLen == 1 {
		return stages, nil
	}
	out := stages[:0]
	for _, st := range stages {
		switch {
		case st.Snapshots < minLen && len(out) > 0:
			prev := &out[len(out)-1]
			prev.End = st.End
			prev.Snapshots += st.Snapshots
		case len(out) > 0 && out[len(out)-1].Class == st.Class:
			prev := &out[len(out)-1]
			prev.End = st.End
			prev.Snapshots += st.Snapshots
			prev.Partial = prev.Partial || st.Partial
		default:
			out = append(out, st)
		}
	}
	return out, nil
}

// StageSummary renders stages compactly for reports, e.g.
// "idle[12] io[17] net[19]".
func StageSummary(stages []Stage) string {
	s := ""
	for i, st := range stages {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s[%d]", st.Class, st.Snapshots)
	}
	return s
}
