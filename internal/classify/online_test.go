package classify

import (
	"math"
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/metrics"
)

func TestOnlineMatchesBatch(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	tr := syntheticTrace(t, appclass.IO, 30, 21)
	batch, err := cl.ClassifyTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	online, err := NewOnline(cl, tr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tr.Len(); i++ {
		got, err := online.Observe(tr.At(i))
		if err != nil {
			t.Fatal(err)
		}
		if got != batch.Snapshots[i] {
			t.Errorf("snapshot %d: online %s, batch %s", i, got, batch.Snapshots[i])
		}
	}
	if online.Seen() != 30 {
		t.Errorf("Seen = %d", online.Seen())
	}
	oc, err := online.Class()
	if err != nil || oc != batch.Class {
		t.Errorf("online class = (%s,%v), batch %s", oc, err, batch.Class)
	}
	for c, f := range batch.Composition {
		if math.Abs(online.Composition()[c]-f) > 1e-12 {
			t.Errorf("composition[%s] online %v batch %v", c, online.Composition()[c], f)
		}
	}
	if online.Last() != batch.Snapshots[29] {
		t.Errorf("Last = %s", online.Last())
	}
	if len(online.History()) != 30 {
		t.Errorf("History = %d", len(online.History()))
	}
}

func TestOnlineEmptyState(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	online, err := NewOnline(cl, metrics.ExpertSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := online.Class(); err == nil {
		t.Error("Class with no data: want error")
	}
	if len(online.Composition()) != 0 {
		t.Error("Composition with no data should be empty")
	}
	if online.DriftScore() != 0 {
		t.Error("DriftScore with no data should be 0")
	}
}

func TestOnlineValidation(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	if _, err := NewOnline(nil, metrics.ExpertSchema()); err == nil {
		t.Error("nil classifier: want error")
	}
	s, _ := metrics.NewSchema([]string{"x"})
	if _, err := NewOnline(cl, s); err == nil {
		t.Error("schema without expert metrics: want error")
	}
	online, err := NewOnline(cl, metrics.ExpertSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := online.Observe(metrics.Snapshot{Values: []float64{1}}); err == nil {
		t.Error("arity mismatch: want error")
	}
}

func TestOnlineDriftScore(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	online, err := NewOnline(cl, metrics.ExpertSchema())
	if err != nil {
		t.Fatal(err)
	}
	// Feed in-distribution CPU snapshots: drift should stay moderate.
	tr := syntheticTrace(t, appclass.CPU, 40, 5)
	for i := 0; i < tr.Len(); i++ {
		if _, err := online.Observe(tr.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	inDist := online.DriftScore()

	// A stream with wildly shifted metrics must score higher.
	shifted, err := NewOnline(cl, metrics.ExpertSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tr.Len(); i++ {
		s := tr.At(i).Clone()
		for j := range s.Values {
			s.Values[j] = s.Values[j]*50 + 1e6
		}
		if _, err := shifted.Observe(s); err != nil {
			t.Fatal(err)
		}
	}
	if shifted.DriftScore() <= inDist {
		t.Errorf("shifted drift %v not above in-distribution %v", shifted.DriftScore(), inDist)
	}
}

func TestDetectStages(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	// Build a three-stage trace: idle, then io, then net.
	tr := metrics.NewTrace(metrics.ExpertSchema(), "vm1")
	classes := []appclass.Class{appclass.Idle, appclass.IO, appclass.Net}
	for stage, c := range classes {
		sig := classSignature(c)
		for i := 0; i < 20; i++ {
			vals := append([]float64(nil), sig...)
			err := tr.Append(metrics.Snapshot{
				Time: time.Duration(stage*20+i) * 5 * time.Second, Node: "vm1", Values: vals,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := cl.ClassifyTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	stages, err := DetectStages(tr, res, 3, 3)
	if err != nil {
		t.Fatalf("DetectStages: %v", err)
	}
	if len(stages) != 3 {
		t.Fatalf("detected %d stages (%s), want 3", len(stages), StageSummary(stages))
	}
	for i, want := range classes {
		if stages[i].Class != want {
			t.Errorf("stage %d = %s, want %s", i, stages[i].Class, want)
		}
	}
	if stages[0].Duration() <= 0 || stages[0].Snapshots != 20 {
		t.Errorf("stage 0 = %+v", stages[0])
	}
}

func TestDetectStagesSmoothsFlicker(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	tr := metrics.NewTrace(metrics.ExpertSchema(), "vm1")
	// 30 io snapshots with a single cpu spike in the middle.
	for i := 0; i < 30; i++ {
		c := appclass.IO
		if i == 15 {
			c = appclass.CPU
		}
		vals := append([]float64(nil), classSignature(c)...)
		err := tr.Append(metrics.Snapshot{Time: time.Duration(i*5) * time.Second, Node: "vm1", Values: vals})
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := cl.ClassifyTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	stages, err := DetectStages(tr, res, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 1 || stages[0].Class != appclass.IO {
		t.Errorf("flicker not smoothed: %s", StageSummary(stages))
	}
}

func TestDetectStagesValidation(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	tr := syntheticTrace(t, appclass.IO, 10, 2)
	res, err := cl.ClassifyTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DetectStages(nil, res, 3, 1); err == nil {
		t.Error("nil trace: want error")
	}
	if _, err := DetectStages(tr, nil, 3, 1); err == nil {
		t.Error("nil result: want error")
	}
	if _, err := DetectStages(tr, res, 4, 1); err == nil {
		t.Error("even window: want error")
	}
	if _, err := DetectStages(tr, res, 3, 0); err == nil {
		t.Error("zero minLen: want error")
	}
	short := syntheticTrace(t, appclass.IO, 5, 2)
	if _, err := DetectStages(short, res, 3, 1); err == nil {
		t.Error("length mismatch: want error")
	}
}

func TestStageSummary(t *testing.T) {
	s := StageSummary([]Stage{
		{Class: appclass.Idle, Snapshots: 12},
		{Class: appclass.IO, Snapshots: 17},
	})
	if s != "idle[12] io[17]" {
		t.Errorf("StageSummary = %q", s)
	}
	if StageSummary(nil) != "" {
		t.Error("empty summary should be empty string")
	}
}
