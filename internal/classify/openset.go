package classify

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/appclass"
	"repro/internal/knn"
)

// OpenSetConfig parameterizes open-set calibration. The zero value
// selects the defaults below.
type OpenSetConfig struct {
	// Quantile of the per-class training self-distances used as the
	// threshold base (default 0.99: nearly all training points of a
	// class sit within their own threshold).
	Quantile float64
	// Slack multiplies the quantile, leaving room for honest run-time
	// scatter around the training clusters (default 3.0).
	Slack float64
}

// Open-set calibration defaults.
const (
	DefaultOpenSetQuantile = 0.99
	DefaultOpenSetSlack    = 3.0
)

func (c OpenSetConfig) withDefaults() OpenSetConfig {
	if c.Quantile <= 0 || c.Quantile > 1 {
		c.Quantile = DefaultOpenSetQuantile
	}
	if c.Slack <= 0 {
		c.Slack = DefaultOpenSetSlack
	}
	return c
}

// OpenSet holds calibrated per-class novelty thresholds: a snapshot
// whose distance-to-kth-neighbour exceeds the threshold of its voted
// class is not well explained by any training class and counts as
// unknown. Thresholds are indexed by the classifier's interned class
// IDs; an OpenSet is immutable after calibration and safe for
// concurrent use.
type OpenSet struct {
	cfg OpenSetConfig
	// thresholds[id] is the novelty cutoff of interned class id.
	thresholds []float64
	// classes mirrors Classifier.classes for reporting.
	classes []appclass.Class
	// skipped records the classes calibration could not derive a
	// meaningful threshold for (fewer than two training points): their
	// threshold is +Inf, so they never flag unknown.
	skipped map[appclass.Class]error
}

// CalibrateOpenSet derives per-class thresholds from the training set
// itself: every training point's distance to its kth neighbour (itself
// included — 0 for points duplicated at least k times) is collected per
// true class, and the configured quantile of each class's self-distance
// distribution, times the slack, becomes the class's threshold. The
// calibration is deterministic given the trained model, so it is
// re-derived after restart instead of serialized.
func (c *Classifier) CalibrateOpenSet(cfg OpenSetConfig) (*OpenSet, error) {
	if err := c.ready(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if c.trainPoints == nil || c.trainPoints.Rows() == 0 {
		return nil, fmt.Errorf("classify: open-set calibration needs retained training points")
	}
	// Collect each training point's kth self-distance, grouped by its
	// true class (the label it was trained with, not the vote).
	perClass := make(map[appclass.Class][]float64, len(c.classes))
	var s knn.Scratch
	for i := 0; i < c.trainPoints.Rows(); i++ {
		_, dist, err := c.nn.ClassifyIDDist(c.trainPoints.RowView(i), &s)
		if err != nil {
			return nil, fmt.Errorf("classify: calibrate point %d: %w", i, err)
		}
		cl := c.trainLabels[i]
		perClass[cl] = append(perClass[cl], dist)
	}
	os := &OpenSet{
		cfg:        cfg,
		thresholds: make([]float64, len(c.classes)),
		classes:    append([]appclass.Class(nil), c.classes...),
	}
	var globalMax float64
	for _, dists := range perClass {
		for _, d := range dists {
			if d > globalMax {
				globalMax = d
			}
		}
	}
	for id, cl := range c.classes {
		dists := perClass[cl]
		if len(dists) < 2 {
			// A quantile over zero or one self-distance is meaningless: a
			// single point's kth self-distance reflects its nearest
			// *foreign* neighbours, so the threshold would be garbage
			// (often wildly large or degenerate-zero). Skip the class with
			// a per-class error and an infinite threshold — it never flags
			// unknown — so one thin class cannot poison the whole
			// calibration. Callers should log SkippedClasses loudly.
			if os.skipped == nil {
				os.skipped = make(map[appclass.Class]error)
			}
			os.skipped[cl] = fmt.Errorf("classify: open-set calibration for class %s: %d training points, need at least 2", cl, len(dists))
			os.thresholds[id] = math.Inf(1)
			continue
		}
		sort.Float64s(dists)
		q := dists[int(cfg.Quantile*float64(len(dists)-1)+0.5)]
		if q == 0 {
			// Fully duplicated class: fall back to its own max, then the
			// global max, so the threshold never degenerates to zero.
			q = dists[len(dists)-1]
		}
		if q == 0 {
			q = globalMax
		}
		os.thresholds[id] = q * cfg.Slack
	}
	return os, nil
}

// Config returns the effective calibration configuration.
func (o *OpenSet) Config() OpenSetConfig { return o.cfg }

// SkippedClasses returns the classes calibration skipped because they
// had fewer than two training points, keyed to a descriptive error.
// Skipped classes carry an infinite threshold and never flag unknown;
// callers that care about open-set coverage should surface these
// loudly. The map is a copy; nil when no class was skipped.
func (o *OpenSet) SkippedClasses() map[appclass.Class]error {
	if len(o.skipped) == 0 {
		return nil
	}
	out := make(map[appclass.Class]error, len(o.skipped))
	for cl, err := range o.skipped {
		out[cl] = err
	}
	return out
}

// Threshold returns the novelty cutoff of the interned class id.
func (o *OpenSet) Threshold(id int) float64 {
	if id < 0 || id >= len(o.thresholds) {
		return 0
	}
	return o.thresholds[id]
}

// Thresholds returns the per-class cutoffs keyed by class, for reports.
func (o *OpenSet) Thresholds() map[appclass.Class]float64 {
	out := make(map[appclass.Class]float64, len(o.classes))
	for id, cl := range o.classes {
		out[cl] = o.thresholds[id]
	}
	return out
}

// unknownID reports whether a snapshot voted into interned class id at
// the given kth-neighbour distance falls outside the class's threshold.
func (o *OpenSet) unknownID(id int, dist float64) bool {
	return id >= 0 && id < len(o.thresholds) && dist > o.thresholds[id]
}

// Verdict is the open-set outcome of classifying one snapshot: the
// nearest trained class is always reported, with Unknown set when the
// snapshot sits beyond that class's calibrated threshold.
type Verdict struct {
	// Class is the nearest trained class (the closed-set vote).
	Class appclass.Class
	// Unknown marks the snapshot as not explained by any trained class.
	Unknown bool
	// Distance is the snapshot's distance to its kth nearest training
	// neighbour; Threshold is the voted class's cutoff.
	Distance  float64
	Threshold float64
}

// ClassifySnapshotOpenSet classifies one snapshot through the fused
// kernel and applies the open-set test, with every buffer owned by
// scratch (allocation-free at steady state, like
// ClassifySnapshotScratch). os may be nil, in which case the verdict is
// never Unknown and Threshold is 0.
func (c *Classifier) ClassifySnapshotOpenSet(subset []int, values []float64, os *OpenSet, s *Scratch) (Verdict, error) {
	id, dist, err := c.classifySnapshotIDDist(subset, values, s)
	if err != nil {
		return Verdict{}, err
	}
	v := Verdict{Class: c.classes[id], Distance: dist}
	if os != nil {
		v.Threshold = os.Threshold(id)
		v.Unknown = os.unknownID(id, dist)
	}
	return v, nil
}
