package classify

import (
	"math"
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/metrics"
)

func TestOnlineSnapshotView(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	tr := syntheticTrace(t, appclass.IO, 20, 3)
	online, err := NewOnline(cl, tr.Schema())
	if err != nil {
		t.Fatal(err)
	}

	empty := online.Snapshot()
	if empty.Total != 0 || empty.Class != "" || len(empty.Composition) != 0 {
		t.Errorf("empty view = %+v, want zero state", empty)
	}

	for i := 0; i < tr.Len(); i++ {
		if _, err := online.Observe(tr.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	view := online.Snapshot()
	wantClass, err := online.Class()
	if err != nil {
		t.Fatal(err)
	}
	if view.Class != wantClass || view.LastClass != online.Last() || view.Total != online.Seen() {
		t.Errorf("view = %+v disagrees with accessors (class %s, last %s, seen %d)",
			view, wantClass, online.Last(), online.Seen())
	}
	if view.FirstAt != tr.At(0).Time || view.LastAt != tr.At(tr.Len()-1).Time {
		t.Errorf("view times [%v, %v], want [%v, %v]",
			view.FirstAt, view.LastAt, tr.At(0).Time, tr.At(tr.Len()-1).Time)
	}
	for c, f := range online.Composition() {
		if math.Abs(view.Composition[c]-f) > 1e-12 {
			t.Errorf("view composition[%s] = %v, want %v", c, view.Composition[c], f)
		}
	}

	// The view must be immutable: mutating its composition map must not
	// leak back into the classifier's running state.
	view.Composition["bogus"] = 99
	if _, ok := online.Composition()["bogus"]; ok {
		t.Error("mutating the view leaked into the classifier")
	}
}

func TestNewOnlineGuards(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	if _, err := NewOnline(nil, metrics.DefaultSchema()); err == nil {
		t.Error("nil classifier: want error")
	}
	if _, err := NewOnline(&Classifier{}, metrics.DefaultSchema()); err == nil {
		t.Error("untrained classifier: want error")
	}
	if _, err := NewOnline(cl, nil); err == nil {
		t.Error("nil schema: want error")
	}
}

func TestUntrainedClassifierErrorsNotPanics(t *testing.T) {
	var nilCl *Classifier
	schema := metrics.DefaultSchema()
	vals := make([]float64, schema.Len())
	if _, err := nilCl.ClassifySnapshot(schema, vals); err == nil {
		t.Error("nil classifier ClassifySnapshot: want error")
	}
	if _, err := (&Classifier{}).ClassifySnapshot(schema, vals); err == nil {
		t.Error("zero classifier ClassifySnapshot: want error")
	}
	if _, err := (&Classifier{}).ClassifySnapshot(nil, nil); err == nil {
		t.Error("nil schema ClassifySnapshot: want error")
	}
	tr := syntheticTrace(t, appclass.IO, 5, 9)
	if _, err := (&Classifier{}).ClassifyTrace(tr); err == nil {
		t.Error("zero classifier ClassifyTrace: want error")
	}
	if _, err := nilCl.ClassifyTrace(tr); err == nil {
		t.Error("nil classifier ClassifyTrace: want error")
	}
}

func TestStagesFromHistory(t *testing.T) {
	hist := []TimedClass{
		{At: 0, Class: appclass.Idle},
		{At: 5 * time.Second, Class: appclass.Idle},
		{At: 10 * time.Second, Class: appclass.IO},
		{At: 15 * time.Second, Class: appclass.IO},
		{At: 20 * time.Second, Class: appclass.IO},
		{At: 25 * time.Second, Class: appclass.CPU}, // single-snapshot flicker
		{At: 30 * time.Second, Class: appclass.IO},
	}
	stages, err := StagesFromHistory(hist, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 4 {
		t.Fatalf("minLen=1: %d stages (%s), want 4", len(stages), StageSummary(stages))
	}
	if stages[0].Class != appclass.Idle || stages[0].Snapshots != 2 || stages[0].End != 5*time.Second {
		t.Errorf("stage 0 = %+v", stages[0])
	}

	// minLen=2 absorbs the CPU flicker into the preceding IO stage.
	stages, err = StagesFromHistory(hist, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 2 {
		t.Fatalf("minLen=2: %d stages (%s), want 2", len(stages), StageSummary(stages))
	}
	if stages[1].Class != appclass.IO || stages[1].Snapshots != 5 || stages[1].End != 30*time.Second {
		t.Errorf("absorbed stage = %+v", stages[1])
	}

	if got, err := StagesFromHistory(nil, 1, 0); err != nil || len(got) != 0 {
		t.Errorf("empty history: stages=%v err=%v", got, err)
	}
	if _, err := StagesFromHistory(hist, 0, 0); err == nil {
		t.Error("minLen=0: want error")
	}
}
