package classify

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/appclass"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	var buf bytes.Buffer
	if err := cl.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	// Configurations match.
	if loaded.Config().K != cl.Config().K {
		t.Errorf("K = %d, want %d", loaded.Config().K, cl.Config().K)
	}
	if loaded.Model().Q != cl.Model().Q {
		t.Errorf("Q = %d, want %d", loaded.Model().Q, cl.Model().Q)
	}
	// The loaded classifier must classify identically.
	for i, c := range appclass.All() {
		tr := syntheticTrace(t, c, 25, int64(500+i))
		want, err := cl.ClassifyTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.ClassifyTrace(tr)
		if err != nil {
			t.Fatalf("loaded classify: %v", err)
		}
		if got.Class != want.Class {
			t.Errorf("class %s: loaded %s, original %s", c, got.Class, want.Class)
		}
		for j := range want.Snapshots {
			if got.Snapshots[j] != want.Snapshots[j] {
				t.Fatalf("class %s snapshot %d: loaded %s, original %s",
					c, j, got.Snapshots[j], want.Snapshots[j])
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage: want error")
	}
	if _, err := Load(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("bad version: want error")
	}
	if _, err := Load(strings.NewReader(`{"version":1}`)); err == nil {
		t.Error("empty model: want error")
	}
}

func TestLoadValidatesShape(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	var buf bytes.Buffer
	if err := cl.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt specific fields and confirm rejection.
	base := buf.String()
	for _, corruption := range []struct {
		name string
		old  string
		new  string
	}{
		{"even k", `"k":3`, `"k":4`},
		{"zero q", `"q":2`, `"q":0`},
	} {
		doc := strings.Replace(base, corruption.old, corruption.new, 1)
		if doc == base {
			t.Fatalf("corruption %q did not apply", corruption.name)
		}
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("corruption %q accepted", corruption.name)
		}
	}
}
