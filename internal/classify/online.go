package classify

import (
	"fmt"
	"time"

	"repro/internal/appclass"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// Online is the streaming classifier the paper's future work calls for
// ("it is possible to consider the classifier for online training",
// Section 5.3): snapshots are classified as they arrive, the running
// class composition is maintained incrementally, and drift in the
// incoming metric distribution is tracked with streaming mean/variance
// so a controller can decide when retraining is warranted.
type Online struct {
	cl     *Classifier
	schema *metrics.Schema
	subset []int

	counts map[appclass.Class]int
	total  int
	last   appclass.Class

	// drift tracks the incoming distribution of each expert metric.
	drift []stats.Welford
	// history records the class sequence for stage analysis.
	history []TimedClass
}

// TimedClass is one classified snapshot in arrival order.
type TimedClass struct {
	At    time.Duration
	Class appclass.Class
}

// NewOnline wraps a trained classifier for streaming input against the
// given snapshot schema.
func NewOnline(cl *Classifier, schema *metrics.Schema) (*Online, error) {
	if err := cl.ready(); err != nil {
		return nil, err
	}
	if schema == nil {
		return nil, fmt.Errorf("classify: nil schema")
	}
	subset, err := schema.Subset(cl.cfg.ExpertMetrics)
	if err != nil {
		return nil, fmt.Errorf("classify: online schema: %w", err)
	}
	return &Online{
		cl:     cl,
		schema: schema,
		subset: subset,
		counts: make(map[appclass.Class]int),
		drift:  make([]stats.Welford, len(subset)),
	}, nil
}

// Observe classifies one arriving snapshot and updates the running
// state, returning the snapshot's class.
func (o *Online) Observe(snap metrics.Snapshot) (appclass.Class, error) {
	if len(snap.Values) != o.schema.Len() {
		return "", fmt.Errorf("classify: snapshot has %d values, schema %d", len(snap.Values), o.schema.Len())
	}
	class, err := o.cl.ClassifySnapshot(o.schema, snap.Values)
	if err != nil {
		return "", err
	}
	o.counts[class]++
	o.total++
	o.last = class
	o.history = append(o.history, TimedClass{At: snap.Time, Class: class})
	for i, j := range o.subset {
		o.drift[i].Add(snap.Values[j])
	}
	return class, nil
}

// Seen returns the number of snapshots observed.
func (o *Online) Seen() int { return o.total }

// Last returns the most recent snapshot class.
func (o *Online) Last() appclass.Class { return o.last }

// Composition returns the running class composition.
func (o *Online) Composition() map[appclass.Class]float64 {
	out := make(map[appclass.Class]float64, len(o.counts))
	if o.total == 0 {
		return out
	}
	for c, n := range o.counts {
		out[c] = float64(n) / float64(o.total)
	}
	return out
}

// Class returns the running majority-vote class.
func (o *Online) Class() (appclass.Class, error) {
	if o.total == 0 {
		return "", fmt.Errorf("classify: no snapshots observed")
	}
	return o.majority(), nil
}

func (o *Online) majority() appclass.Class {
	var best appclass.Class
	bestN := -1
	for c, n := range o.counts {
		if n > bestN || (n == bestN && c < best) {
			best, bestN = c, n
		}
	}
	return best
}

// View is an immutable snapshot of an Online classifier's running
// state. All reference fields are copies: a View stays valid (and
// race-free) after further Observe calls, so a server can render it to
// JSON without holding the classifier's lock.
type View struct {
	// Class is the running majority-vote class ("" before any snapshot).
	Class appclass.Class
	// LastClass is the class of the most recent snapshot.
	LastClass appclass.Class
	// Composition maps each class to its fraction of snapshots.
	Composition map[appclass.Class]float64
	// Total is the number of snapshots observed.
	Total int
	// Drift is the current DriftScore.
	Drift float64
	// FirstAt and LastAt are the times of the first and last observed
	// snapshots (both zero before any snapshot).
	FirstAt, LastAt time.Duration
}

// Snapshot captures the classifier's running state as an immutable
// View.
func (o *Online) Snapshot() View {
	v := View{
		LastClass:   o.last,
		Composition: o.Composition(),
		Total:       o.total,
		Drift:       o.DriftScore(),
	}
	if o.total > 0 {
		v.Class = o.majority()
		v.FirstAt = o.history[0].At
		v.LastAt = o.history[len(o.history)-1].At
	}
	return v
}

// History returns the classified snapshot sequence.
func (o *Online) History() []TimedClass {
	return append([]TimedClass(nil), o.history...)
}

// DriftScore measures how far the observed stream's per-metric means
// have moved from the classifier's training normalization, in units of
// training standard deviations (the maximum across metrics). Large
// scores suggest retraining.
func (o *Online) DriftScore() float64 {
	params := o.cl.normalizer.Params()
	var worst float64
	for i := range o.subset {
		if o.drift[i].Count() == 0 {
			continue
		}
		z := params[i]
		d := (o.drift[i].Mean() - z.Mean) / z.StdDev
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
