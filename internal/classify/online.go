package classify

import (
	"fmt"
	"time"

	"repro/internal/appclass"
	"repro/internal/metrics"
	"repro/internal/phase"
	"repro/internal/stats"
)

// Online is the streaming classifier the paper's future work calls for
// ("it is possible to consider the classifier for online training",
// Section 5.3): snapshots are classified as they arrive, the running
// class composition is maintained incrementally, and drift in the
// incoming metric distribution is tracked with streaming mean/variance
// so a controller can decide when retraining is warranted.
type Online struct {
	cl     *Classifier
	schema *metrics.Schema
	subset []int
	// scratch backs the allocation-free per-snapshot classification;
	// an Online is single-writer, so one scratch per instance suffices.
	scratch Scratch

	counts map[appclass.Class]int
	total  int
	last   appclass.Class

	// drift tracks the incoming distribution of each expert metric.
	drift []stats.Welford
	// gaps and gapTime account for known holes in the sample stream: a
	// poll that failed, a breaker that skipped a down aggregator, a node
	// that vanished mid-run. Composition and drift cover only the
	// snapshots that arrived; a nonzero gap count marks them as estimates
	// over a stream with missing coverage rather than the full run.
	gaps    int
	gapTime time.Duration
	// history records the class sequence for stage analysis. It is
	// capped at histCap entries (oldest dropped first); dropped counts
	// the entries trimmed away, and firstAt/lastAt span every snapshot
	// ever observed, including dropped ones.
	history []TimedClass
	histCap int
	dropped int
	firstAt time.Duration
	lastAt  time.Duration

	// seg, when enabled, maintains online phase segmentation over the
	// fused feature stream (see EnableSegmentation).
	seg *phase.Segmenter
	// openset, when enabled, applies per-snapshot novelty detection;
	// unknown counts the snapshots that fell outside their voted class's
	// calibrated threshold.
	openset *OpenSet
	unknown int

	// sampler, when enabled, retains a bounded deterministic sample of
	// raw expert-metric rows for online retraining.
	sampler *trainSampler
}

// DefaultHistoryCap bounds the classification history an Online retains.
// At the paper's one-snapshot-per-second monitoring cadence this keeps
// roughly nine hours of history per session while bounding a long-lived
// daemon session to a few hundred kilobytes.
const DefaultHistoryCap = 32768

// TimedClass is one classified snapshot in arrival order.
type TimedClass struct {
	At    time.Duration
	Class appclass.Class
}

// NewOnline wraps a trained classifier for streaming input against the
// given snapshot schema.
func NewOnline(cl *Classifier, schema *metrics.Schema) (*Online, error) {
	if err := cl.ready(); err != nil {
		return nil, err
	}
	if schema == nil {
		return nil, fmt.Errorf("classify: nil schema")
	}
	subset, err := schema.Subset(cl.cfg.ExpertMetrics)
	if err != nil {
		return nil, fmt.Errorf("classify: online schema: %w", err)
	}
	return &Online{
		cl:      cl,
		schema:  schema,
		subset:  subset,
		counts:  make(map[appclass.Class]int),
		drift:   make([]stats.Welford, len(subset)),
		histCap: DefaultHistoryCap,
	}, nil
}

// SetHistoryCap bounds the retained classification history to at most n
// entries (oldest trimmed first); n <= 0 removes the bound. Counts,
// composition, drift, and first/last times keep covering every snapshot
// ever observed — only History and stage analysis see the shorter
// window.
func (o *Online) SetHistoryCap(n int) {
	o.histCap = n
	o.trimHistory()
}

// HistoryDropped returns how many old history entries the retention cap
// has discarded.
func (o *Online) HistoryDropped() int { return o.dropped }

// trimHistory enforces histCap. It trims in chunks — only once the
// slice overshoots the cap by 25% — so steady-state appends stay O(1)
// amortized and reuse the same backing array instead of reallocating on
// every snapshot.
func (o *Online) trimHistory() {
	if o.histCap <= 0 || len(o.history) <= o.histCap+o.histCap/4 {
		return
	}
	drop := len(o.history) - o.histCap
	copy(o.history, o.history[drop:])
	o.history = o.history[:o.histCap]
	o.dropped += drop
}

// EnableSegmentation attaches an online phase segmenter (see
// internal/phase): every subsequent snapshot's fused feature vector
// feeds the change-point detector, and Phases reports the detected
// phase list. Calling it again replaces the segmenter.
func (o *Online) EnableSegmentation(cfg phase.Config) {
	o.seg = phase.NewSegmenter(cfg)
}

// SegmentationEnabled reports whether a phase segmenter is attached
// (either via EnableSegmentation or restored from a checkpoint).
func (o *Online) SegmentationEnabled() bool { return o.seg != nil }

// EnableOpenSet attaches calibrated novelty thresholds (see
// Classifier.CalibrateOpenSet): snapshots beyond their voted class's
// threshold count as unknown. os must come from the same classifier; a
// nil os disables the open-set test.
func (o *Online) EnableOpenSet(os *OpenSet) {
	o.openset = os
}

// EnableSampling attaches a bounded deterministic reservoir of raw
// expert-metric rows (capRows entries, DefaultTrainReservoir when <= 0)
// that online retraining harvests from finalized sessions. Calling it
// again replaces the reservoir; it is a no-op if one is already
// attached (e.g. restored from a checkpoint) and capRows matches.
func (o *Online) EnableSampling(capRows int) {
	if capRows <= 0 {
		capRows = DefaultTrainReservoir
	}
	if o.sampler != nil && o.sampler.cap == capRows {
		return
	}
	o.sampler = newTrainSampler(len(o.subset), capRows)
}

// SamplingEnabled reports whether a training reservoir is attached.
func (o *Online) SamplingEnabled() bool { return o.sampler != nil }

// TrainSamples returns the expert-metric names and the retained sample
// rows (one value per expert metric, in name order), for retraining.
// Nil rows with sampling disabled.
func (o *Online) TrainSamples() ([]string, [][]float64) {
	names := append([]string(nil), o.cl.cfg.ExpertMetrics...)
	if o.sampler == nil {
		return names, nil
	}
	return names, o.sampler.rows()
}

// Rebind atomically points this session at a different trained
// classifier — the hot-swap primitive. The new classifier must use the
// identical expert-metric list (the drift accumulators and retained
// samples are per-metric); counts, history, drift, gaps, phase
// segmentation, and the training reservoir all carry over, while
// subsequent snapshots classify under the new model with the supplied
// open-set thresholds (nil disables the open-set test). The caller must
// hold whatever lock guards Observe.
func (o *Online) Rebind(cl *Classifier, os *OpenSet) error {
	if err := cl.ready(); err != nil {
		return err
	}
	if len(cl.cfg.ExpertMetrics) != len(o.cl.cfg.ExpertMetrics) {
		return fmt.Errorf("classify: rebind: new model has %d expert metrics, session has %d",
			len(cl.cfg.ExpertMetrics), len(o.cl.cfg.ExpertMetrics))
	}
	for i, name := range cl.cfg.ExpertMetrics {
		if o.cl.cfg.ExpertMetrics[i] != name {
			return fmt.Errorf("classify: rebind: expert metric %d is %q, session expects %q",
				i, name, o.cl.cfg.ExpertMetrics[i])
		}
	}
	subset, err := o.schema.Subset(cl.cfg.ExpertMetrics)
	if err != nil {
		return fmt.Errorf("classify: rebind schema: %w", err)
	}
	o.cl = cl
	o.subset = subset
	o.scratch = Scratch{}
	o.openset = os
	return nil
}

// Observe classifies one arriving snapshot and updates the running
// state, returning the snapshot's class. The hot path is allocation-free
// at steady state: the expert-metric gather indices are cached at
// construction and the feature/vote buffers live in the Online's
// scratch.
func (o *Online) Observe(snap metrics.Snapshot) (appclass.Class, error) {
	if len(snap.Values) != o.schema.Len() {
		return "", fmt.Errorf("classify: snapshot has %d values, schema %d", len(snap.Values), o.schema.Len())
	}
	return o.observeOne(snap)
}

// observeOne classifies one pre-validated snapshot and folds it into
// the running state.
func (o *Online) observeOne(snap metrics.Snapshot) (appclass.Class, error) {
	id, dist, err := o.cl.classifySnapshotIDDist(o.subset, snap.Values, &o.scratch)
	if err != nil {
		return "", err
	}
	class := o.cl.classes[id]
	if o.openset != nil && o.openset.unknownID(id, dist) {
		o.unknown++
	}
	o.record(snap, class)
	if o.seg != nil {
		// The scratch still holds this snapshot's fused features; the
		// dimensionality is fixed by the model, so Observe cannot fail.
		_ = o.seg.Observe(snap.Time, class, o.scratch.feat[:o.cl.fused.Q()])
	}
	return class, nil
}

// record folds one classified snapshot into the running state.
func (o *Online) record(snap metrics.Snapshot, class appclass.Class) {
	o.counts[class]++
	if o.total == 0 {
		o.firstAt = snap.Time
	}
	o.total++
	o.last = class
	o.lastAt = snap.Time
	o.history = append(o.history, TimedClass{At: snap.Time, Class: class})
	o.trimHistory()
	for i, j := range o.subset {
		o.drift[i].Add(snap.Values[j])
	}
	if o.sampler != nil {
		o.sampler.offer(snap.Values, o.subset)
	}
}

// ObserveBatch classifies a batch of arriving snapshots in input order,
// equivalent to calling Observe on each. The whole batch is validated
// before any snapshot is observed, so a dimension error leaves the
// running state untouched; classes is reused when it has capacity.
func (o *Online) ObserveBatch(snaps []metrics.Snapshot, classes []appclass.Class) ([]appclass.Class, error) {
	for i := range snaps {
		if len(snaps[i].Values) != o.schema.Len() {
			return nil, fmt.Errorf("classify: batch snapshot %d has %d values, schema %d",
				i, len(snaps[i].Values), o.schema.Len())
		}
	}
	if cap(classes) < len(snaps) {
		classes = make([]appclass.Class, 0, len(snaps))
	}
	classes = classes[:0]
	for i := range snaps {
		class, err := o.observeOne(snaps[i])
		if err != nil {
			return nil, err
		}
		classes = append(classes, class)
	}
	return classes, nil
}

// RecordGap accounts one known hole in the sample stream: wall is the
// stretch of coverage that was lost (a missed poll interval, a backoff
// wait, a breaker-open window). It does not touch composition or drift
// — those keep describing the snapshots that did arrive — it marks the
// session's estimates as computed over a gappy stream.
func (o *Online) RecordGap(wall time.Duration) {
	if wall < 0 {
		wall = 0
	}
	o.gaps++
	o.gapTime += wall
}

// Gaps returns how many sample gaps have been recorded and their total
// wall time.
func (o *Online) Gaps() (int, time.Duration) { return o.gaps, o.gapTime }

// Seen returns the number of snapshots observed.
func (o *Online) Seen() int { return o.total }

// UnknownCount returns how many snapshots fell outside their voted
// class's open-set threshold (0 with the open-set test disabled).
func (o *Online) UnknownCount() int { return o.unknown }

// UnknownFraction returns the fraction of observed snapshots counted
// unknown.
func (o *Online) UnknownFraction() float64 {
	if o.total == 0 {
		return 0
	}
	return float64(o.unknown) / float64(o.total)
}

// UnknownVerdictFraction is the unknown fraction above which a session's
// verdict flips from its majority class to appclass.Unknown: when more
// than half the run is not explained by any trained class, the run as a
// whole is novel.
const UnknownVerdictFraction = 0.5

// Verdict returns the session-level open-set verdict: the majority
// class, or appclass.Unknown when over half the snapshots were novel.
// Before any snapshot it returns "".
func (o *Online) Verdict() appclass.Class {
	if o.total == 0 {
		return ""
	}
	if o.UnknownFraction() > UnknownVerdictFraction {
		return appclass.Unknown
	}
	return o.majority()
}

// Phases returns the detected phase list (nil with segmentation
// disabled).
func (o *Online) Phases() []phase.Phase {
	if o.seg == nil {
		return nil
	}
	return o.seg.Phases()
}

// PhaseCount returns how many phases the session currently spans (0
// with segmentation disabled).
func (o *Online) PhaseCount() int {
	if o.seg == nil {
		return 0
	}
	return o.seg.Count()
}

// Last returns the most recent snapshot class.
func (o *Online) Last() appclass.Class { return o.last }

// Composition returns the running class composition.
func (o *Online) Composition() map[appclass.Class]float64 {
	out := make(map[appclass.Class]float64, len(o.counts))
	if o.total == 0 {
		return out
	}
	for c, n := range o.counts {
		out[c] = float64(n) / float64(o.total)
	}
	return out
}

// Class returns the running majority-vote class.
func (o *Online) Class() (appclass.Class, error) {
	if o.total == 0 {
		return "", fmt.Errorf("classify: no snapshots observed")
	}
	return o.majority(), nil
}

func (o *Online) majority() appclass.Class {
	var best appclass.Class
	bestN := -1
	for c, n := range o.counts {
		if n > bestN || (n == bestN && c < best) {
			best, bestN = c, n
		}
	}
	return best
}

// View is an immutable snapshot of an Online classifier's running
// state. All reference fields are copies: a View stays valid (and
// race-free) after further Observe calls, so a server can render it to
// JSON without holding the classifier's lock.
type View struct {
	// Class is the running majority-vote class ("" before any snapshot).
	Class appclass.Class
	// LastClass is the class of the most recent snapshot.
	LastClass appclass.Class
	// Composition maps each class to its fraction of snapshots.
	Composition map[appclass.Class]float64
	// Total is the number of snapshots observed.
	Total int
	// Drift is the current DriftScore.
	Drift float64
	// FirstAt and LastAt are the times of the first and last observed
	// snapshots (both zero before any snapshot).
	FirstAt, LastAt time.Duration
	// Gaps and GapTime account for known holes in the sample stream;
	// nonzero values mean Composition and Drift are estimates over a
	// stream with missing coverage.
	Gaps    int
	GapTime time.Duration
	// Phases is the detected phase list (nil with segmentation
	// disabled); each entry is a fresh copy safe to retain.
	Phases []phase.Phase
	// Unknown and UnknownFraction count snapshots outside their voted
	// class's open-set threshold; Verdict is the session-level class,
	// flipping to appclass.Unknown when UnknownFraction exceeds
	// UnknownVerdictFraction.
	Unknown         int
	UnknownFraction float64
	Verdict         appclass.Class
}

// Snapshot captures the classifier's running state as an immutable
// View.
func (o *Online) Snapshot() View {
	v := View{
		LastClass:       o.last,
		Composition:     o.Composition(),
		Total:           o.total,
		Drift:           o.DriftScore(),
		Gaps:            o.gaps,
		GapTime:         o.gapTime,
		Phases:          o.Phases(),
		Unknown:         o.unknown,
		UnknownFraction: o.UnknownFraction(),
	}
	if o.total > 0 {
		v.Class = o.majority()
		v.FirstAt = o.firstAt
		v.LastAt = o.lastAt
		v.Verdict = o.Verdict()
	}
	return v
}

// History returns the classified snapshot sequence over the retained
// window (see SetHistoryCap); HistoryDropped reports how much older
// history has been trimmed.
func (o *Online) History() []TimedClass {
	return append([]TimedClass(nil), o.history...)
}

// DriftScore measures how far the observed stream's per-metric means
// have moved from the classifier's training normalization, in units of
// training standard deviations (the maximum across metrics). Large
// scores suggest retraining.
func (o *Online) DriftScore() float64 {
	params := o.cl.normalizer.Params()
	var worst float64
	for i := range o.subset {
		if o.drift[i].Count() == 0 {
			continue
		}
		z := params[i]
		d := (o.drift[i].Mean() - z.Mean) / z.StdDev
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
