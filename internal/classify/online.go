package classify

import (
	"fmt"
	"time"

	"repro/internal/appclass"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// Online is the streaming classifier the paper's future work calls for
// ("it is possible to consider the classifier for online training",
// Section 5.3): snapshots are classified as they arrive, the running
// class composition is maintained incrementally, and drift in the
// incoming metric distribution is tracked with streaming mean/variance
// so a controller can decide when retraining is warranted.
type Online struct {
	cl     *Classifier
	schema *metrics.Schema
	subset []int
	// scratch backs the allocation-free per-snapshot classification;
	// an Online is single-writer, so one scratch per instance suffices.
	scratch Scratch

	counts map[appclass.Class]int
	total  int
	last   appclass.Class

	// drift tracks the incoming distribution of each expert metric.
	drift []stats.Welford
	// gaps and gapTime account for known holes in the sample stream: a
	// poll that failed, a breaker that skipped a down aggregator, a node
	// that vanished mid-run. Composition and drift cover only the
	// snapshots that arrived; a nonzero gap count marks them as estimates
	// over a stream with missing coverage rather than the full run.
	gaps    int
	gapTime time.Duration
	// history records the class sequence for stage analysis. It is
	// capped at histCap entries (oldest dropped first); dropped counts
	// the entries trimmed away, and firstAt/lastAt span every snapshot
	// ever observed, including dropped ones.
	history []TimedClass
	histCap int
	dropped int
	firstAt time.Duration
	lastAt  time.Duration
}

// DefaultHistoryCap bounds the classification history an Online retains.
// At the paper's one-snapshot-per-second monitoring cadence this keeps
// roughly nine hours of history per session while bounding a long-lived
// daemon session to a few hundred kilobytes.
const DefaultHistoryCap = 32768

// TimedClass is one classified snapshot in arrival order.
type TimedClass struct {
	At    time.Duration
	Class appclass.Class
}

// NewOnline wraps a trained classifier for streaming input against the
// given snapshot schema.
func NewOnline(cl *Classifier, schema *metrics.Schema) (*Online, error) {
	if err := cl.ready(); err != nil {
		return nil, err
	}
	if schema == nil {
		return nil, fmt.Errorf("classify: nil schema")
	}
	subset, err := schema.Subset(cl.cfg.ExpertMetrics)
	if err != nil {
		return nil, fmt.Errorf("classify: online schema: %w", err)
	}
	return &Online{
		cl:      cl,
		schema:  schema,
		subset:  subset,
		counts:  make(map[appclass.Class]int),
		drift:   make([]stats.Welford, len(subset)),
		histCap: DefaultHistoryCap,
	}, nil
}

// SetHistoryCap bounds the retained classification history to at most n
// entries (oldest trimmed first); n <= 0 removes the bound. Counts,
// composition, drift, and first/last times keep covering every snapshot
// ever observed — only History and stage analysis see the shorter
// window.
func (o *Online) SetHistoryCap(n int) {
	o.histCap = n
	o.trimHistory()
}

// HistoryDropped returns how many old history entries the retention cap
// has discarded.
func (o *Online) HistoryDropped() int { return o.dropped }

// trimHistory enforces histCap. It trims in chunks — only once the
// slice overshoots the cap by 25% — so steady-state appends stay O(1)
// amortized and reuse the same backing array instead of reallocating on
// every snapshot.
func (o *Online) trimHistory() {
	if o.histCap <= 0 || len(o.history) <= o.histCap+o.histCap/4 {
		return
	}
	drop := len(o.history) - o.histCap
	copy(o.history, o.history[drop:])
	o.history = o.history[:o.histCap]
	o.dropped += drop
}

// Observe classifies one arriving snapshot and updates the running
// state, returning the snapshot's class. The hot path is allocation-free
// at steady state: the expert-metric gather indices are cached at
// construction and the feature/vote buffers live in the Online's
// scratch.
func (o *Online) Observe(snap metrics.Snapshot) (appclass.Class, error) {
	if len(snap.Values) != o.schema.Len() {
		return "", fmt.Errorf("classify: snapshot has %d values, schema %d", len(snap.Values), o.schema.Len())
	}
	class, err := o.cl.ClassifySnapshotScratch(o.subset, snap.Values, &o.scratch)
	if err != nil {
		return "", err
	}
	o.record(snap, class)
	return class, nil
}

// record folds one classified snapshot into the running state.
func (o *Online) record(snap metrics.Snapshot, class appclass.Class) {
	o.counts[class]++
	if o.total == 0 {
		o.firstAt = snap.Time
	}
	o.total++
	o.last = class
	o.lastAt = snap.Time
	o.history = append(o.history, TimedClass{At: snap.Time, Class: class})
	o.trimHistory()
	for i, j := range o.subset {
		o.drift[i].Add(snap.Values[j])
	}
}

// ObserveBatch classifies a batch of arriving snapshots in input order,
// equivalent to calling Observe on each. The whole batch is validated
// before any snapshot is observed, so a dimension error leaves the
// running state untouched; classes is reused when it has capacity.
func (o *Online) ObserveBatch(snaps []metrics.Snapshot, classes []appclass.Class) ([]appclass.Class, error) {
	for i := range snaps {
		if len(snaps[i].Values) != o.schema.Len() {
			return nil, fmt.Errorf("classify: batch snapshot %d has %d values, schema %d",
				i, len(snaps[i].Values), o.schema.Len())
		}
	}
	if cap(classes) < len(snaps) {
		classes = make([]appclass.Class, 0, len(snaps))
	}
	classes = classes[:0]
	for i := range snaps {
		class, err := o.cl.ClassifySnapshotScratch(o.subset, snaps[i].Values, &o.scratch)
		if err != nil {
			return nil, err
		}
		o.record(snaps[i], class)
		classes = append(classes, class)
	}
	return classes, nil
}

// RecordGap accounts one known hole in the sample stream: wall is the
// stretch of coverage that was lost (a missed poll interval, a backoff
// wait, a breaker-open window). It does not touch composition or drift
// — those keep describing the snapshots that did arrive — it marks the
// session's estimates as computed over a gappy stream.
func (o *Online) RecordGap(wall time.Duration) {
	if wall < 0 {
		wall = 0
	}
	o.gaps++
	o.gapTime += wall
}

// Gaps returns how many sample gaps have been recorded and their total
// wall time.
func (o *Online) Gaps() (int, time.Duration) { return o.gaps, o.gapTime }

// Seen returns the number of snapshots observed.
func (o *Online) Seen() int { return o.total }

// Last returns the most recent snapshot class.
func (o *Online) Last() appclass.Class { return o.last }

// Composition returns the running class composition.
func (o *Online) Composition() map[appclass.Class]float64 {
	out := make(map[appclass.Class]float64, len(o.counts))
	if o.total == 0 {
		return out
	}
	for c, n := range o.counts {
		out[c] = float64(n) / float64(o.total)
	}
	return out
}

// Class returns the running majority-vote class.
func (o *Online) Class() (appclass.Class, error) {
	if o.total == 0 {
		return "", fmt.Errorf("classify: no snapshots observed")
	}
	return o.majority(), nil
}

func (o *Online) majority() appclass.Class {
	var best appclass.Class
	bestN := -1
	for c, n := range o.counts {
		if n > bestN || (n == bestN && c < best) {
			best, bestN = c, n
		}
	}
	return best
}

// View is an immutable snapshot of an Online classifier's running
// state. All reference fields are copies: a View stays valid (and
// race-free) after further Observe calls, so a server can render it to
// JSON without holding the classifier's lock.
type View struct {
	// Class is the running majority-vote class ("" before any snapshot).
	Class appclass.Class
	// LastClass is the class of the most recent snapshot.
	LastClass appclass.Class
	// Composition maps each class to its fraction of snapshots.
	Composition map[appclass.Class]float64
	// Total is the number of snapshots observed.
	Total int
	// Drift is the current DriftScore.
	Drift float64
	// FirstAt and LastAt are the times of the first and last observed
	// snapshots (both zero before any snapshot).
	FirstAt, LastAt time.Duration
	// Gaps and GapTime account for known holes in the sample stream;
	// nonzero values mean Composition and Drift are estimates over a
	// stream with missing coverage.
	Gaps    int
	GapTime time.Duration
}

// Snapshot captures the classifier's running state as an immutable
// View.
func (o *Online) Snapshot() View {
	v := View{
		LastClass:   o.last,
		Composition: o.Composition(),
		Total:       o.total,
		Drift:       o.DriftScore(),
		Gaps:        o.gaps,
		GapTime:     o.gapTime,
	}
	if o.total > 0 {
		v.Class = o.majority()
		v.FirstAt = o.firstAt
		v.LastAt = o.lastAt
	}
	return v
}

// History returns the classified snapshot sequence over the retained
// window (see SetHistoryCap); HistoryDropped reports how much older
// history has been trimmed.
func (o *Online) History() []TimedClass {
	return append([]TimedClass(nil), o.history...)
}

// DriftScore measures how far the observed stream's per-metric means
// have moved from the classifier's training normalization, in units of
// training standard deviations (the maximum across metrics). Large
// scores suggest retraining.
func (o *Online) DriftScore() float64 {
	params := o.cl.normalizer.Params()
	var worst float64
	for i := range o.subset {
		if o.drift[i].Count() == 0 {
			continue
		}
		z := params[i]
		d := (o.drift[i].Mean() - z.Mean) / z.StdDev
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
