package classify

import (
	"fmt"
	"time"

	"repro/internal/appclass"
	"repro/internal/metrics"
	"repro/internal/phase"
	"repro/internal/stats"
)

// OnlineState is the serializable running state of an Online
// classifier — everything Observe has accumulated, none of the trained
// model (the model is persisted separately via Classifier.Save). The
// daemon's checkpoints serialize one OnlineState per live VM session so
// a restart can resume mid-run exactly where the crash happened.
type OnlineState struct {
	// Counts maps class name to the number of snapshots voted for it.
	Counts map[string]int `json:"counts"`
	// Total is the number of snapshots observed.
	Total int `json:"total"`
	// Last is the most recent snapshot class ("" before any snapshot).
	Last string `json:"last,omitempty"`
	// FirstAtNS and LastAtNS span every observed snapshot.
	FirstAtNS int64 `json:"first_at_ns"`
	LastAtNS  int64 `json:"last_at_ns"`
	// HistCap is the history retention cap in effect.
	HistCap int `json:"hist_cap"`
	// Dropped counts history entries trimmed by the retention cap.
	Dropped int `json:"dropped"`
	// History is the retained classified-snapshot sequence.
	History []TimedClassState `json:"history,omitempty"`
	// Drift holds one streaming accumulator per expert metric.
	Drift []stats.WelfordState `json:"drift"`
	// Gaps and GapTimeNS account for known holes in the sample stream
	// (missed polls, breaker-open windows), so a recovered session stays
	// marked as gappy.
	Gaps      int   `json:"gaps,omitempty"`
	GapTimeNS int64 `json:"gap_time_ns,omitempty"`
	// Unknown counts snapshots outside their voted class's open-set
	// threshold. The thresholds themselves are not serialized — they are
	// deterministic given the trained model, so the restorer re-enables
	// the open-set test with freshly calibrated thresholds.
	Unknown int `json:"unknown,omitempty"`
	// Seg is the phase segmenter's full state (nil with segmentation
	// disabled), restoring which resumes the phase list bit-exactly.
	Seg *phase.SegmenterState `json:"seg,omitempty"`
	// Sampler is the training reservoir's state (nil with sampling
	// disabled), restoring which resumes deterministic sampling exactly.
	Sampler *TrainSamplerState `json:"sampler,omitempty"`
}

// TimedClassState is the wire form of one TimedClass entry.
type TimedClassState struct {
	AtNS  int64  `json:"at_ns"`
	Class string `json:"class"`
}

// ExportState captures the classifier's running state for
// serialization. The caller must hold whatever lock guards Observe.
func (o *Online) ExportState() OnlineState {
	st := OnlineState{
		Counts:    make(map[string]int, len(o.counts)),
		Total:     o.total,
		Last:      string(o.last),
		FirstAtNS: int64(o.firstAt),
		LastAtNS:  int64(o.lastAt),
		HistCap:   o.histCap,
		Dropped:   o.dropped,
		History:   make([]TimedClassState, len(o.history)),
		Drift:     make([]stats.WelfordState, len(o.drift)),
		Gaps:      o.gaps,
		GapTimeNS: int64(o.gapTime),
		Unknown:   o.unknown,
	}
	if o.seg != nil {
		seg := o.seg.ExportState()
		st.Seg = &seg
	}
	if o.sampler != nil {
		sam := o.sampler.state()
		st.Sampler = &sam
	}
	for c, n := range o.counts {
		st.Counts[string(c)] = n
	}
	for i, tc := range o.history {
		st.History[i] = TimedClassState{AtNS: int64(tc.At), Class: string(tc.Class)}
	}
	for i := range o.drift {
		st.Drift[i] = o.drift[i].State()
	}
	return st
}

// RestoreOnline reconstructs an Online classifier from an exported
// state, validating every invariant Observe would have maintained: a
// restored session continues the stream exactly where the exported one
// stopped, so checkpoint + journal-tail replay reproduces the
// uninterrupted run.
func RestoreOnline(cl *Classifier, schema *metrics.Schema, st OnlineState) (*Online, error) {
	o, err := NewOnline(cl, schema)
	if err != nil {
		return nil, err
	}
	if st.Total < 0 {
		return nil, fmt.Errorf("classify: restore: negative total %d", st.Total)
	}
	sum := 0
	for name, n := range st.Counts {
		class, err := appclass.Parse(name)
		if err != nil {
			return nil, fmt.Errorf("classify: restore: count class: %w", err)
		}
		if n < 0 {
			return nil, fmt.Errorf("classify: restore: class %s has negative count %d", name, n)
		}
		o.counts[class] = n
		sum += n
	}
	if sum != st.Total {
		return nil, fmt.Errorf("classify: restore: counts sum to %d, total is %d", sum, st.Total)
	}
	if st.Dropped < 0 || st.Dropped+len(st.History) != st.Total {
		return nil, fmt.Errorf("classify: restore: %d retained + %d dropped history entries, total is %d",
			len(st.History), st.Dropped, st.Total)
	}
	if len(st.Drift) != len(o.subset) {
		return nil, fmt.Errorf("classify: restore: %d drift accumulators, want %d", len(st.Drift), len(o.subset))
	}
	if st.Total > 0 {
		last, err := appclass.Parse(st.Last)
		if err != nil {
			return nil, fmt.Errorf("classify: restore: last class: %w", err)
		}
		o.last = last
	}
	if st.Gaps < 0 || st.GapTimeNS < 0 {
		return nil, fmt.Errorf("classify: restore: negative gap accounting (%d gaps, %dns)", st.Gaps, st.GapTimeNS)
	}
	o.gaps = st.Gaps
	o.gapTime = time.Duration(st.GapTimeNS)
	o.total = st.Total
	o.firstAt = time.Duration(st.FirstAtNS)
	o.lastAt = time.Duration(st.LastAtNS)
	o.histCap = st.HistCap
	o.dropped = st.Dropped
	if len(st.History) > 0 {
		o.history = make([]TimedClass, len(st.History))
		for i, tc := range st.History {
			class, err := appclass.Parse(tc.Class)
			if err != nil {
				return nil, fmt.Errorf("classify: restore: history entry %d: %w", i, err)
			}
			o.history[i] = TimedClass{At: time.Duration(tc.AtNS), Class: class}
		}
	}
	for i, ws := range st.Drift {
		w, err := stats.WelfordFromState(ws)
		if err != nil {
			return nil, fmt.Errorf("classify: restore: drift %d: %w", i, err)
		}
		o.drift[i] = w
	}
	if st.Unknown < 0 || st.Unknown > st.Total {
		return nil, fmt.Errorf("classify: restore: %d unknown snapshots of %d total", st.Unknown, st.Total)
	}
	o.unknown = st.Unknown
	if st.Seg != nil {
		seg, err := phase.RestoreSegmenter(*st.Seg)
		if err != nil {
			return nil, fmt.Errorf("classify: restore: %w", err)
		}
		o.seg = seg
	}
	if st.Sampler != nil {
		sam, err := trainSamplerFromState(len(o.subset), *st.Sampler)
		if err != nil {
			return nil, err
		}
		o.sampler = sam
	}
	return o, nil
}
