package classify

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/metrics"
)

// classSignature returns typical expert-metric values for a class:
// {cpu_system, cpu_user, bytes_in, bytes_out, io_bi, io_bo, swap_in, swap_out}.
func classSignature(c appclass.Class) []float64 {
	switch c {
	case appclass.CPU:
		return []float64{3, 95, 500, 500, 5, 5, 0, 0}
	case appclass.IO:
		return []float64{12, 8, 500, 500, 3000, 3000, 0, 0}
	case appclass.Net:
		return []float64{10, 8, 4e5, 8e6, 5, 5, 0, 0}
	case appclass.Mem:
		return []float64{5, 20, 500, 500, 5500, 5500, 5000, 5000}
	default: // idle
		return []float64{0.3, 0.5, 300, 300, 2, 2, 0, 0}
	}
}

// syntheticTrace builds a trace of n snapshots around a class signature
// with multiplicative noise.
func syntheticTrace(t *testing.T, c appclass.Class, n int, seed int64) *metrics.Trace {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tr := metrics.NewTrace(metrics.ExpertSchema(), "vm1")
	sig := classSignature(c)
	for i := 0; i < n; i++ {
		vals := make([]float64, len(sig))
		for j, v := range sig {
			vals[j] = v * (1 + 0.15*rng.NormFloat64())
			if vals[j] < 0 {
				vals[j] = 0
			}
		}
		err := tr.Append(metrics.Snapshot{
			Time: time.Duration(i*5) * time.Second, Node: "vm1", Values: vals,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func trainSynthetic(t *testing.T, cfg Config) *Classifier {
	t.Helper()
	var runs []TrainingRun
	for i, c := range appclass.All() {
		runs = append(runs, TrainingRun{Class: c, Trace: syntheticTrace(t, c, 60, int64(i+1))})
	}
	cl, err := Train(runs, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return cl
}

func TestTrainDefaultsMatchPaper(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	cfg := cl.Config()
	if cfg.K != 3 {
		t.Errorf("K = %d, want 3", cfg.K)
	}
	if cfg.Components != 2 {
		t.Errorf("Components = %d, want 2", cfg.Components)
	}
	if len(cfg.ExpertMetrics) != 8 {
		t.Errorf("ExpertMetrics = %d, want 8", len(cfg.ExpertMetrics))
	}
	if cl.Model().Q != 2 {
		t.Errorf("PCA Q = %d, want 2", cl.Model().Q)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, Config{}); err == nil {
		t.Error("no runs: want error")
	}
	if _, err := Train([]TrainingRun{{Class: "bogus", Trace: syntheticTrace(t, appclass.CPU, 5, 1)}}, Config{}); err == nil {
		t.Error("invalid class: want error")
	}
	if _, err := Train([]TrainingRun{{Class: appclass.CPU, Trace: nil}}, Config{}); err == nil {
		t.Error("nil trace: want error")
	}
	empty := metrics.NewTrace(metrics.ExpertSchema(), "vm1")
	if _, err := Train([]TrainingRun{{Class: appclass.CPU, Trace: empty}}, Config{}); err == nil {
		t.Error("empty trace: want error")
	}
	// Trace lacking expert metrics.
	s, _ := metrics.NewSchema([]string{"unrelated"})
	bad := metrics.NewTrace(s, "vm1")
	_ = bad.Append(metrics.Snapshot{Node: "vm1", Values: []float64{1}})
	if _, err := Train([]TrainingRun{{Class: appclass.CPU, Trace: bad}}, Config{}); err == nil {
		t.Error("missing expert metrics: want error")
	}
}

func TestClassifyPureTraces(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	for i, c := range appclass.All() {
		tr := syntheticTrace(t, c, 40, int64(100+i))
		res, err := cl.ClassifyTrace(tr)
		if err != nil {
			t.Fatalf("ClassifyTrace(%s): %v", c, err)
		}
		if res.Class != c {
			t.Errorf("class of %s trace = %s, composition %v", c, res.Class, res.Composition)
		}
		if res.Composition[c] < 0.8 {
			t.Errorf("composition[%s] = %v, want dominant", c, res.Composition[c])
		}
		if len(res.Snapshots) != 40 {
			t.Errorf("snapshot classes = %d, want 40", len(res.Snapshots))
		}
		if res.Points.Rows() != 40 || res.Points.Cols() != 2 {
			t.Errorf("points shape %dx%d, want 40x2", res.Points.Rows(), res.Points.Cols())
		}
	}
}

func TestClassifyMixedTrace(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	// Interleave CPU and IO snapshots 70/30.
	tr := metrics.NewTrace(metrics.ExpertSchema(), "vm1")
	rng := rand.New(rand.NewSource(55))
	for i := 0; i < 100; i++ {
		c := appclass.CPU
		if i%10 >= 7 {
			c = appclass.IO
		}
		sig := classSignature(c)
		vals := make([]float64, len(sig))
		for j, v := range sig {
			vals[j] = v * (1 + 0.1*rng.NormFloat64())
		}
		_ = tr.Append(metrics.Snapshot{Time: time.Duration(i*5) * time.Second, Node: "vm1", Values: vals})
	}
	res, err := cl.ClassifyTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != appclass.CPU {
		t.Errorf("majority class = %s, want cpu", res.Class)
	}
	if math.Abs(res.Composition[appclass.CPU]-0.7) > 0.1 {
		t.Errorf("cpu composition = %v, want ~0.7", res.Composition[appclass.CPU])
	}
	if math.Abs(res.Composition[appclass.IO]-0.3) > 0.1 {
		t.Errorf("io composition = %v, want ~0.3", res.Composition[appclass.IO])
	}
}

func TestCompositionSumsToOne(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	res, err := cl.ClassifyTrace(syntheticTrace(t, appclass.Net, 30, 7))
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range res.Composition {
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("composition sums to %v", total)
	}
}

func TestClassifySnapshotMatchesTrace(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	tr := syntheticTrace(t, appclass.Mem, 10, 9)
	res, err := cl.ClassifyTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tr.Len(); i++ {
		got, err := cl.ClassifySnapshot(tr.Schema(), tr.At(i).Values)
		if err != nil {
			t.Fatal(err)
		}
		if got != res.Snapshots[i] {
			t.Errorf("snapshot %d: ClassifySnapshot = %s, trace said %s", i, got, res.Snapshots[i])
		}
	}
}

func TestClassifySnapshotValidation(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	if _, err := cl.ClassifySnapshot(metrics.ExpertSchema(), []float64{1}); err == nil {
		t.Error("arity mismatch: want error")
	}
	s, _ := metrics.NewSchema([]string{"x"})
	if _, err := cl.ClassifySnapshot(s, []float64{1}); err == nil {
		t.Error("schema without expert metrics: want error")
	}
}

func TestClassifyTraceFromFullSchema(t *testing.T) {
	// Traces carrying all 33 metrics must classify identically to their
	// expert projection.
	cl := trainSynthetic(t, Config{})
	full := metrics.NewTrace(metrics.DefaultSchema(), "vm1")
	rng := rand.New(rand.NewSource(77))
	sig := classSignature(appclass.IO)
	expert := metrics.ExpertNames()
	for i := 0; i < 25; i++ {
		vals := make([]float64, full.Schema().Len())
		for j := range vals {
			vals[j] = rng.Float64() * 10 // irrelevant metrics: noise
		}
		for k, name := range expert {
			idx, _ := full.Schema().Index(name)
			vals[idx] = sig[k] * (1 + 0.1*rng.NormFloat64())
		}
		_ = full.Append(metrics.Snapshot{Time: time.Duration(i*5) * time.Second, Node: "vm1", Values: vals})
	}
	res, err := cl.ClassifyTrace(full)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != appclass.IO {
		t.Errorf("class = %s, want io", res.Class)
	}
}

func TestTrainingPointsExposedForFigure3a(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	pts, labels := cl.TrainingPoints()
	if pts.Rows() != 300 || pts.Cols() != 2 {
		t.Fatalf("training points %dx%d, want 300x2", pts.Rows(), pts.Cols())
	}
	if len(labels) != 300 {
		t.Fatalf("labels = %d", len(labels))
	}
	// Returned matrix must be a copy.
	pts.Set(0, 0, 1e9)
	pts2, _ := cl.TrainingPoints()
	if pts2.At(0, 0) == 1e9 {
		t.Error("TrainingPoints exposes internal storage")
	}
}

func TestAlternativeConfigs(t *testing.T) {
	// k=1 and q=1 must still train and classify pure traces.
	cl := trainSynthetic(t, Config{K: 1, Components: 1})
	res, err := cl.ClassifyTrace(syntheticTrace(t, appclass.Net, 20, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != appclass.Net {
		t.Errorf("k=1/q=1 class = %s, want net", res.Class)
	}
	// Variance-driven component selection.
	cl2 := trainSynthetic(t, Config{MinFractionVariance: 0.99})
	if cl2.Model().Q < 2 {
		t.Errorf("Q = %d for 99%% variance, want >= 2", cl2.Model().Q)
	}
}

func TestEvaluateOnHeldOutRuns(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	// Held-out runs with fresh seeds.
	var runs []TrainingRun
	for i, c := range appclass.All() {
		runs = append(runs, TrainingRun{Class: c, Trace: syntheticTrace(t, c, 30, int64(900+i))})
	}
	ev, err := Evaluate(cl, runs)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if ev.Runs.Total() != 5 {
		t.Fatalf("run matrix total = %d", ev.Runs.Total())
	}
	if acc := ev.Runs.Accuracy(); acc != 1 {
		t.Errorf("run-level accuracy = %v, want 1 on clean held-out data", acc)
	}
	if acc := ev.Snapshots.Accuracy(); acc < 0.9 {
		t.Errorf("snapshot-level accuracy = %v, want > 0.9", acc)
	}
	for _, c := range appclass.All() {
		if r := ev.Runs.Recall(string(c)); r != 1 {
			t.Errorf("recall(%s) = %v", c, r)
		}
	}
}

func TestEvaluateValidation(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	if _, err := Evaluate(nil, nil); err == nil {
		t.Error("nil classifier: want error")
	}
	if _, err := Evaluate(cl, nil); err == nil {
		t.Error("no runs: want error")
	}
	bad := []TrainingRun{{Class: "weird", Trace: syntheticTrace(t, appclass.CPU, 5, 1)}}
	if _, err := Evaluate(cl, bad); err == nil {
		t.Error("invalid label: want error")
	}
}

func TestCrossValidate(t *testing.T) {
	var runs []TrainingRun
	for rep := 0; rep < 3; rep++ {
		for i, c := range appclass.All() {
			runs = append(runs, TrainingRun{
				Class: c, Trace: syntheticTrace(t, c, 40, int64(rep*100+i)),
			})
		}
	}
	acc, verdicts, err := CrossValidate(runs, Config{})
	if err != nil {
		t.Fatalf("CrossValidate: %v", err)
	}
	if len(verdicts) != len(runs) {
		t.Fatalf("verdicts = %d", len(verdicts))
	}
	if acc < 0.9 {
		t.Errorf("leave-one-out accuracy = %v, want >= 0.9 on clean synthetic runs", acc)
	}
}

func TestCrossValidateValidation(t *testing.T) {
	if _, _, err := CrossValidate(nil, Config{}); err == nil {
		t.Error("no runs: want error")
	}
	single := []TrainingRun{
		{Class: appclass.CPU, Trace: syntheticTrace(t, appclass.CPU, 10, 1)},
		{Class: appclass.IO, Trace: syntheticTrace(t, appclass.IO, 10, 2)},
	}
	if _, _, err := CrossValidate(single, Config{}); err == nil {
		t.Error("singleton classes: want error")
	}
	bad := []TrainingRun{
		{Class: "weird", Trace: syntheticTrace(t, appclass.CPU, 10, 1)},
		{Class: "weird", Trace: syntheticTrace(t, appclass.CPU, 10, 2)},
	}
	if _, _, err := CrossValidate(bad, Config{}); err == nil {
		t.Error("invalid label: want error")
	}
}
