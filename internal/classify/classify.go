// Package classify implements the paper's classification center
// (Figure 1, right; Figure 2 pipeline): the data preprocessor selects
// the expert-chosen performance metrics and normalizes them to zero mean
// and unit variance, the PCA processor extracts the principal components
// (q = 2 in the paper's configuration), and a trained 3-NN classifier
// assigns each snapshot a class; the majority vote of the snapshot
// classes is the application's class, and the per-class fractions are
// its class composition.
package classify

import (
	"fmt"
	"sync"

	"repro/internal/appclass"
	"repro/internal/knn"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/pca"
)

// Config parameterizes the classification center. The zero value is the
// paper's configuration.
type Config struct {
	// ExpertMetrics are the preselected metrics (Table 1). Defaults to
	// metrics.ExpertNames().
	ExpertMetrics []string
	// Components fixes the number of principal components (paper: 2).
	// Mutually exclusive with MinFractionVariance.
	Components int
	// MinFractionVariance selects components by cumulative explained
	// variance instead of a fixed count.
	MinFractionVariance float64
	// K is the neighbour count of the k-NN classifier (paper: 3).
	K int
}

func (c Config) withDefaults() Config {
	if len(c.ExpertMetrics) == 0 {
		c.ExpertMetrics = metrics.ExpertNames()
	}
	if c.Components == 0 && c.MinFractionVariance == 0 {
		c.Components = 2
	}
	if c.K == 0 {
		c.K = 3
	}
	return c
}

// TrainingRun is one labelled profiling run used to train the
// classifier.
type TrainingRun struct {
	Class appclass.Class
	Trace *metrics.Trace
}

// Classifier is a trained classification center.
type Classifier struct {
	cfg        Config
	normalizer *pca.Normalizer
	model      *pca.Model
	nn         *knn.Classifier
	// fused is the preprocess→normalize→PCA-project chain collapsed
	// into one affine map feat = W·x + b, precomputed at train/load
	// time; every classification path applies it instead of running the
	// stages (see pca.Fuse for the derivation).
	fused *pca.Affine
	// classes maps the k-NN classifier's interned class IDs back to
	// Class values, so the hot path never parses a label string.
	classes []appclass.Class
	// subsets caches schema → expert-metric gather indices, keyed by
	// schema pointer (a daemon holds one schema, so this stays tiny).
	subsets sync.Map
	// trainPoints and trainLabels retain the projected training data
	// for the clustering diagrams (Figure 3a).
	trainPoints *linalg.Matrix
	trainLabels []appclass.Class
}

// Train builds a classifier from labelled runs. Every training trace
// must contain the configured expert metrics.
func Train(runs []TrainingRun, cfg Config) (*Classifier, error) {
	cfg = cfg.withDefaults()
	if len(runs) == 0 {
		return nil, fmt.Errorf("classify: no training runs")
	}
	var rows [][]float64
	var labels []appclass.Class
	for i, run := range runs {
		if !appclass.Valid(run.Class) {
			return nil, fmt.Errorf("classify: training run %d has invalid class %q", i, run.Class)
		}
		if run.Trace == nil || run.Trace.Len() == 0 {
			return nil, fmt.Errorf("classify: training run %d (%s) has no snapshots", i, run.Class)
		}
		proj, err := run.Trace.Project(cfg.ExpertMetrics)
		if err != nil {
			return nil, fmt.Errorf("classify: training run %d (%s): %w", i, run.Class, err)
		}
		for s := 0; s < proj.Len(); s++ {
			rows = append(rows, proj.At(s).Values)
			labels = append(labels, run.Class)
		}
	}
	raw, err := linalg.FromRows(rows)
	if err != nil {
		return nil, fmt.Errorf("classify: assemble training matrix: %w", err)
	}

	norm, err := pca.FitNormalizer(raw)
	if err != nil {
		return nil, fmt.Errorf("classify: fit normalizer: %w", err)
	}
	normalized, err := norm.Apply(raw)
	if err != nil {
		return nil, err
	}
	model, err := pca.Fit(normalized, pca.Options{
		Components:          cfg.Components,
		MinFractionVariance: cfg.MinFractionVariance,
	})
	if err != nil {
		return nil, fmt.Errorf("classify: fit PCA: %w", err)
	}
	features, err := model.Transform(normalized)
	if err != nil {
		return nil, err
	}
	nn, err := knn.New(cfg.K)
	if err != nil {
		return nil, fmt.Errorf("classify: build k-NN: %w", err)
	}
	points := make([]linalg.Vector, features.Rows())
	labelStrs := make([]string, features.Rows())
	for i := range points {
		points[i] = features.Row(i)
		labelStrs[i] = string(labels[i])
	}
	if err := nn.Train(points, labelStrs); err != nil {
		return nil, fmt.Errorf("classify: train k-NN: %w", err)
	}
	if model.Q == 2 {
		// The paper's 2-D feature space admits the grid index; results
		// are identical, queries are an order of magnitude faster.
		if err := nn.EnableIndex(); err != nil {
			return nil, fmt.Errorf("classify: index k-NN: %w", err)
		}
	}
	c := &Classifier{
		cfg:         cfg,
		normalizer:  norm,
		model:       model,
		nn:          nn,
		trainPoints: features,
		trainLabels: labels,
	}
	if err := c.finish(); err != nil {
		return nil, err
	}
	return c, nil
}

// finish precomputes the derived fast-path state of a classifier whose
// staged components are in place: the fused affine kernel and the
// interned class-ID → Class table. Train and Load both call it.
func (c *Classifier) finish() error {
	fused, err := pca.Fuse(c.normalizer, c.model)
	if err != nil {
		return fmt.Errorf("classify: fuse pipeline: %w", err)
	}
	names := c.nn.Classes()
	classes := make([]appclass.Class, len(names))
	for i, n := range names {
		cl, err := appclass.Parse(n)
		if err != nil {
			return fmt.Errorf("classify: training label: %w", err)
		}
		classes[i] = cl
	}
	c.fused = fused
	c.classes = classes
	return nil
}

// Config returns the effective configuration (defaults resolved).
func (c *Classifier) Config() Config { return c.cfg }

// ready guards against classifying with a classifier that has not been
// trained (or loaded): a zero-value or nil *Classifier must yield an
// error, not a nil-pointer panic deep in the pipeline.
func (c *Classifier) ready() error {
	if c == nil || c.normalizer == nil || c.model == nil || c.nn == nil || c.fused == nil {
		return fmt.Errorf("classify: classifier is not trained")
	}
	return nil
}

// Model exposes the fitted PCA model (for reports and ablations).
func (c *Classifier) Model() *pca.Model { return c.model }

// TrainingPoints returns the projected training data and its labels —
// the contents of the paper's Figure 3a clustering diagram.
func (c *Classifier) TrainingPoints() (*linalg.Matrix, []appclass.Class) {
	return c.trainPoints.Clone(), append([]appclass.Class(nil), c.trainLabels...)
}

// FusedParams returns deep copies of the fused kernel's weight matrix W
// (q×p) and offset b — the complete affine map feat = W·x + b that every
// serving path applies. The model registry hashes these to derive a
// model's compatibility hash. Nil for an untrained classifier.
func (c *Classifier) FusedParams() (*linalg.Matrix, linalg.Vector) {
	if err := c.ready(); err != nil {
		return nil, nil
	}
	return c.fused.Params()
}

// Result is the outcome of classifying one application run.
type Result struct {
	// Class is the application class: the majority vote of the snapshot
	// classes.
	Class appclass.Class
	// Composition maps each class to the fraction of snapshots
	// assigned to it (Table 3's rows).
	Composition map[appclass.Class]float64
	// Snapshots is the per-snapshot class vector C(1×m).
	Snapshots []appclass.Class
	// Points is the m×q matrix of PCA feature coordinates, the data
	// behind the Figure 3 clustering diagrams.
	Points *linalg.Matrix
}

// featuresOf runs the preprocess→normalize→PCA pipeline on a trace,
// applying the fused affine kernel row by row instead of the staged
// transforms (same features within float roundoff).
func (c *Classifier) featuresOf(trace *metrics.Trace) (*linalg.Matrix, error) {
	if err := c.ready(); err != nil {
		return nil, err
	}
	if trace == nil || trace.Len() == 0 {
		return nil, fmt.Errorf("classify: empty trace")
	}
	proj, err := trace.Project(c.cfg.ExpertMetrics)
	if err != nil {
		return nil, fmt.Errorf("classify: project trace: %w", err)
	}
	return c.fused.ApplyRows(proj.Matrix())
}

// stagedFeaturesOf is featuresOf through the original staged pipeline
// (normalize, center, project as separate passes). It is retained as
// the reference implementation the fused kernel is verified against.
func (c *Classifier) stagedFeaturesOf(trace *metrics.Trace) (*linalg.Matrix, error) {
	if err := c.ready(); err != nil {
		return nil, err
	}
	if trace == nil || trace.Len() == 0 {
		return nil, fmt.Errorf("classify: empty trace")
	}
	proj, err := trace.Project(c.cfg.ExpertMetrics)
	if err != nil {
		return nil, fmt.Errorf("classify: project trace: %w", err)
	}
	normalized, err := c.normalizer.Apply(proj.Matrix())
	if err != nil {
		return nil, err
	}
	return c.model.Transform(normalized)
}

// ClassifyTrace classifies every snapshot of a profiling run and
// aggregates the result.
func (c *Classifier) ClassifyTrace(trace *metrics.Trace) (*Result, error) {
	features, err := c.featuresOf(trace)
	if err != nil {
		return nil, err
	}
	ids := make([]int, features.Rows())
	if err := c.nn.ClassifyIDs(features, ids, nil); err != nil {
		return nil, err
	}
	classes := make([]appclass.Class, len(ids))
	counts := make(map[appclass.Class]float64)
	for i, id := range ids {
		cl := c.classes[id]
		classes[i] = cl
		counts[cl]++
	}
	composition := make(map[appclass.Class]float64, len(counts))
	var best appclass.Class
	bestCount := -1.0
	for cl, n := range counts {
		composition[cl] = n / float64(len(classes))
		if n > bestCount || (n == bestCount && cl < best) {
			best, bestCount = cl, n
		}
	}
	return &Result{
		Class:       best,
		Composition: composition,
		Snapshots:   classes,
		Points:      features,
	}, nil
}

// GatherIndices returns the positions of the classifier's expert
// metrics within schema — the gather map of the fused snapshot path.
// Results are cached per schema instance, so repeated calls with the
// same *Schema are lock-free lookups. The returned slice is shared and
// must be treated as read-only.
func (c *Classifier) GatherIndices(schema *metrics.Schema) ([]int, error) {
	if err := c.ready(); err != nil {
		return nil, err
	}
	if schema == nil {
		return nil, fmt.Errorf("classify: nil schema")
	}
	if v, ok := c.subsets.Load(schema); ok {
		return v.([]int), nil
	}
	idx, err := schema.Subset(c.cfg.ExpertMetrics)
	if err != nil {
		return nil, err
	}
	v, _ := c.subsets.LoadOrStore(schema, idx)
	return v.([]int), nil
}

// Scratch holds the caller-owned buffers of the allocation-free
// snapshot path (ClassifySnapshotScratch). The zero value is ready to
// use; buffers grow on first use and are reused afterwards. A Scratch
// must not be shared between concurrent classifications.
type Scratch struct {
	feat linalg.Vector
	knn  knn.Scratch
}

// ClassifySnapshotScratch classifies a single snapshot through the
// fused kernel: one gathered mat-vec (feat = W·values[subset] + b) and
// one integer-label k-NN vote, with every buffer owned by scratch —
// the steady state performs no allocation. subset is the gather map
// from GatherIndices (or a schema Subset of the expert metrics);
// values is the full snapshot vector it indexes into.
func (c *Classifier) ClassifySnapshotScratch(subset []int, values []float64, s *Scratch) (appclass.Class, error) {
	id, _, err := c.classifySnapshotIDDist(subset, values, s)
	if err != nil {
		return "", err
	}
	return c.classes[id], nil
}

// classifySnapshotIDDist is the shared fused-kernel snapshot path: one
// gathered mat-vec into s.feat, then the integer k-NN vote with the
// kth-neighbour distance exported for the open-set test. After a
// successful return, s.feat[:c.fused.Q()] holds the snapshot's fused
// feature vector (the phase segmenter reads it from there).
func (c *Classifier) classifySnapshotIDDist(subset []int, values []float64, s *Scratch) (int, float64, error) {
	if err := c.ready(); err != nil {
		return 0, 0, err
	}
	q := c.fused.Q()
	if cap(s.feat) < q {
		s.feat = make(linalg.Vector, q)
	}
	feat := s.feat[:q]
	if err := c.fused.GatherInto(feat, values, subset); err != nil {
		return 0, 0, err
	}
	return c.nn.ClassifyIDDist(feat, &s.knn)
}

// ClassifySnapshot classifies a single snapshot given the full metric
// vector in the trace schema used at call sites. The snapshot's values
// must be ordered by schema, which must contain the expert metrics.
// Streaming callers should hold a Scratch and use
// ClassifySnapshotScratch; this convenience form allocates its scratch
// per call.
func (c *Classifier) ClassifySnapshot(schema *metrics.Schema, values []float64) (appclass.Class, error) {
	if err := c.ready(); err != nil {
		return "", err
	}
	if schema == nil {
		return "", fmt.Errorf("classify: nil schema")
	}
	if schema.Len() != len(values) {
		return "", fmt.Errorf("classify: %d values for %d-metric schema", len(values), schema.Len())
	}
	idx, err := c.GatherIndices(schema)
	if err != nil {
		return "", err
	}
	var s Scratch
	return c.ClassifySnapshotScratch(idx, values, &s)
}
