// Package classify implements the paper's classification center
// (Figure 1, right; Figure 2 pipeline): the data preprocessor selects
// the expert-chosen performance metrics and normalizes them to zero mean
// and unit variance, the PCA processor extracts the principal components
// (q = 2 in the paper's configuration), and a trained 3-NN classifier
// assigns each snapshot a class; the majority vote of the snapshot
// classes is the application's class, and the per-class fractions are
// its class composition.
package classify

import (
	"fmt"

	"repro/internal/appclass"
	"repro/internal/knn"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/pca"
)

// Config parameterizes the classification center. The zero value is the
// paper's configuration.
type Config struct {
	// ExpertMetrics are the preselected metrics (Table 1). Defaults to
	// metrics.ExpertNames().
	ExpertMetrics []string
	// Components fixes the number of principal components (paper: 2).
	// Mutually exclusive with MinFractionVariance.
	Components int
	// MinFractionVariance selects components by cumulative explained
	// variance instead of a fixed count.
	MinFractionVariance float64
	// K is the neighbour count of the k-NN classifier (paper: 3).
	K int
}

func (c Config) withDefaults() Config {
	if len(c.ExpertMetrics) == 0 {
		c.ExpertMetrics = metrics.ExpertNames()
	}
	if c.Components == 0 && c.MinFractionVariance == 0 {
		c.Components = 2
	}
	if c.K == 0 {
		c.K = 3
	}
	return c
}

// TrainingRun is one labelled profiling run used to train the
// classifier.
type TrainingRun struct {
	Class appclass.Class
	Trace *metrics.Trace
}

// Classifier is a trained classification center.
type Classifier struct {
	cfg        Config
	normalizer *pca.Normalizer
	model      *pca.Model
	nn         *knn.Classifier
	// trainPoints and trainLabels retain the projected training data
	// for the clustering diagrams (Figure 3a).
	trainPoints *linalg.Matrix
	trainLabels []appclass.Class
}

// Train builds a classifier from labelled runs. Every training trace
// must contain the configured expert metrics.
func Train(runs []TrainingRun, cfg Config) (*Classifier, error) {
	cfg = cfg.withDefaults()
	if len(runs) == 0 {
		return nil, fmt.Errorf("classify: no training runs")
	}
	var rows [][]float64
	var labels []appclass.Class
	for i, run := range runs {
		if !appclass.Valid(run.Class) {
			return nil, fmt.Errorf("classify: training run %d has invalid class %q", i, run.Class)
		}
		if run.Trace == nil || run.Trace.Len() == 0 {
			return nil, fmt.Errorf("classify: training run %d (%s) has no snapshots", i, run.Class)
		}
		proj, err := run.Trace.Project(cfg.ExpertMetrics)
		if err != nil {
			return nil, fmt.Errorf("classify: training run %d (%s): %w", i, run.Class, err)
		}
		for s := 0; s < proj.Len(); s++ {
			rows = append(rows, proj.At(s).Values)
			labels = append(labels, run.Class)
		}
	}
	raw, err := linalg.FromRows(rows)
	if err != nil {
		return nil, fmt.Errorf("classify: assemble training matrix: %w", err)
	}

	norm, err := pca.FitNormalizer(raw)
	if err != nil {
		return nil, fmt.Errorf("classify: fit normalizer: %w", err)
	}
	normalized, err := norm.Apply(raw)
	if err != nil {
		return nil, err
	}
	model, err := pca.Fit(normalized, pca.Options{
		Components:          cfg.Components,
		MinFractionVariance: cfg.MinFractionVariance,
	})
	if err != nil {
		return nil, fmt.Errorf("classify: fit PCA: %w", err)
	}
	features, err := model.Transform(normalized)
	if err != nil {
		return nil, err
	}
	nn, err := knn.New(cfg.K)
	if err != nil {
		return nil, fmt.Errorf("classify: build k-NN: %w", err)
	}
	points := make([]linalg.Vector, features.Rows())
	labelStrs := make([]string, features.Rows())
	for i := range points {
		points[i] = features.Row(i)
		labelStrs[i] = string(labels[i])
	}
	if err := nn.Train(points, labelStrs); err != nil {
		return nil, fmt.Errorf("classify: train k-NN: %w", err)
	}
	if model.Q == 2 {
		// The paper's 2-D feature space admits the grid index; results
		// are identical, queries are an order of magnitude faster.
		if err := nn.EnableIndex(); err != nil {
			return nil, fmt.Errorf("classify: index k-NN: %w", err)
		}
	}
	return &Classifier{
		cfg:         cfg,
		normalizer:  norm,
		model:       model,
		nn:          nn,
		trainPoints: features,
		trainLabels: labels,
	}, nil
}

// Config returns the effective configuration (defaults resolved).
func (c *Classifier) Config() Config { return c.cfg }

// ready guards against classifying with a classifier that has not been
// trained (or loaded): a zero-value or nil *Classifier must yield an
// error, not a nil-pointer panic deep in the pipeline.
func (c *Classifier) ready() error {
	if c == nil || c.normalizer == nil || c.model == nil || c.nn == nil {
		return fmt.Errorf("classify: classifier is not trained")
	}
	return nil
}

// Model exposes the fitted PCA model (for reports and ablations).
func (c *Classifier) Model() *pca.Model { return c.model }

// TrainingPoints returns the projected training data and its labels —
// the contents of the paper's Figure 3a clustering diagram.
func (c *Classifier) TrainingPoints() (*linalg.Matrix, []appclass.Class) {
	return c.trainPoints.Clone(), append([]appclass.Class(nil), c.trainLabels...)
}

// Result is the outcome of classifying one application run.
type Result struct {
	// Class is the application class: the majority vote of the snapshot
	// classes.
	Class appclass.Class
	// Composition maps each class to the fraction of snapshots
	// assigned to it (Table 3's rows).
	Composition map[appclass.Class]float64
	// Snapshots is the per-snapshot class vector C(1×m).
	Snapshots []appclass.Class
	// Points is the m×q matrix of PCA feature coordinates, the data
	// behind the Figure 3 clustering diagrams.
	Points *linalg.Matrix
}

// featuresOf runs the preprocess→normalize→PCA pipeline on a trace.
func (c *Classifier) featuresOf(trace *metrics.Trace) (*linalg.Matrix, error) {
	if err := c.ready(); err != nil {
		return nil, err
	}
	if trace == nil || trace.Len() == 0 {
		return nil, fmt.Errorf("classify: empty trace")
	}
	proj, err := trace.Project(c.cfg.ExpertMetrics)
	if err != nil {
		return nil, fmt.Errorf("classify: project trace: %w", err)
	}
	normalized, err := c.normalizer.Apply(proj.Matrix())
	if err != nil {
		return nil, err
	}
	return c.model.Transform(normalized)
}

// ClassifyTrace classifies every snapshot of a profiling run and
// aggregates the result.
func (c *Classifier) ClassifyTrace(trace *metrics.Trace) (*Result, error) {
	features, err := c.featuresOf(trace)
	if err != nil {
		return nil, err
	}
	labels, err := c.nn.ClassifyBatch(features)
	if err != nil {
		return nil, err
	}
	classes := make([]appclass.Class, len(labels))
	counts := make(map[appclass.Class]float64)
	for i, l := range labels {
		cl, err := appclass.Parse(l)
		if err != nil {
			return nil, err
		}
		classes[i] = cl
		counts[cl]++
	}
	composition := make(map[appclass.Class]float64, len(counts))
	var best appclass.Class
	bestCount := -1.0
	for cl, n := range counts {
		composition[cl] = n / float64(len(classes))
		if n > bestCount || (n == bestCount && cl < best) {
			best, bestCount = cl, n
		}
	}
	return &Result{
		Class:       best,
		Composition: composition,
		Snapshots:   classes,
		Points:      features,
	}, nil
}

// ClassifySnapshot classifies a single snapshot given the full metric
// vector in the trace schema used at call sites. The snapshot's values
// must be ordered by schema, which must contain the expert metrics.
func (c *Classifier) ClassifySnapshot(schema *metrics.Schema, values []float64) (appclass.Class, error) {
	if err := c.ready(); err != nil {
		return "", err
	}
	if schema == nil {
		return "", fmt.Errorf("classify: nil schema")
	}
	if schema.Len() != len(values) {
		return "", fmt.Errorf("classify: %d values for %d-metric schema", len(values), schema.Len())
	}
	idx, err := schema.Subset(c.cfg.ExpertMetrics)
	if err != nil {
		return "", err
	}
	x := make(linalg.Vector, len(idx))
	for i, j := range idx {
		x[i] = values[j]
	}
	normalized, err := c.normalizer.ApplyVec(x)
	if err != nil {
		return "", err
	}
	feat, err := c.model.TransformVec(normalized)
	if err != nil {
		return "", err
	}
	label, err := c.nn.Classify(feat)
	if err != nil {
		return "", err
	}
	return appclass.Parse(label)
}
