package classify

import "fmt"

// DefaultTrainReservoir is the per-session cap on retained raw
// expert-metric rows for online retraining. At 8 expert metrics this is
// ~16 KiB per session — small enough to checkpoint, large enough to
// cover a run's phases.
const DefaultTrainReservoir = 256

// trainSampler retains a bounded, deterministic sample of the raw
// expert-metric rows a session observes, for online retraining. It is a
// stride-decimating reservoir: rows are kept at a stride that doubles
// every time the buffer fills (keep-every-other decimation in place),
// so the retained rows always cover the whole stream uniformly, the
// result is a pure function of the input order (no RNG — it survives
// checkpoint/restore bit-exactly), and the steady state allocates
// nothing: the buffer is one flat float64 slab preallocated at
// construction.
type trainSampler struct {
	dims   int
	cap    int
	stride int
	seen   int
	kept   int
	buf    []float64
}

func newTrainSampler(dims, capRows int) *trainSampler {
	if capRows <= 0 {
		capRows = DefaultTrainReservoir
	}
	return &trainSampler{
		dims:   dims,
		cap:    capRows,
		stride: 1,
		buf:    make([]float64, capRows*dims),
	}
}

// offer considers one row (values at the sampler's subset indices).
// Zero allocations at steady state.
func (t *trainSampler) offer(values []float64, subset []int) {
	keep := t.seen%t.stride == 0
	t.seen++
	if !keep {
		return
	}
	if t.kept == t.cap {
		// Full: decimate in place, keeping every other retained row, and
		// double the stride so future keeps stay uniform with survivors.
		for i := 0; 2*i < t.kept; i++ {
			copy(t.buf[i*t.dims:(i+1)*t.dims], t.buf[2*i*t.dims:(2*i+1)*t.dims])
		}
		t.kept = (t.kept + 1) / 2
		t.stride *= 2
		// The row that triggered this keep may no longer be on the new
		// stride; re-test before storing.
		if (t.seen-1)%t.stride != 0 {
			return
		}
	}
	row := t.buf[t.kept*t.dims : (t.kept+1)*t.dims]
	for i, j := range subset {
		row[i] = values[j]
	}
	t.kept++
}

// rows copies out the retained rows.
func (t *trainSampler) rows() [][]float64 {
	out := make([][]float64, t.kept)
	for i := range out {
		out[i] = append([]float64(nil), t.buf[i*t.dims:(i+1)*t.dims]...)
	}
	return out
}

// TrainSamplerState is the serializable state of a session's training
// reservoir.
type TrainSamplerState struct {
	// Cap is the reservoir capacity in rows.
	Cap int `json:"cap"`
	// Stride is the current keep stride.
	Stride int `json:"stride"`
	// Seen counts every row ever offered.
	Seen int `json:"seen"`
	// Rows holds the retained rows, each of expert-metric arity.
	Rows [][]float64 `json:"rows,omitempty"`
}

func (t *trainSampler) state() TrainSamplerState {
	return TrainSamplerState{Cap: t.cap, Stride: t.stride, Seen: t.seen, Rows: t.rows()}
}

func trainSamplerFromState(dims int, st TrainSamplerState) (*trainSampler, error) {
	if st.Cap <= 0 {
		return nil, fmt.Errorf("classify: restore sampler: non-positive cap %d", st.Cap)
	}
	if st.Stride <= 0 {
		return nil, fmt.Errorf("classify: restore sampler: non-positive stride %d", st.Stride)
	}
	if st.Seen < 0 || len(st.Rows) > st.Cap || len(st.Rows) > st.Seen {
		return nil, fmt.Errorf("classify: restore sampler: %d rows, cap %d, seen %d", len(st.Rows), st.Cap, st.Seen)
	}
	t := newTrainSampler(dims, st.Cap)
	t.stride = st.Stride
	t.seen = st.Seen
	for i, row := range st.Rows {
		if len(row) != dims {
			return nil, fmt.Errorf("classify: restore sampler: row %d has %d values, want %d", i, len(row), dims)
		}
		copy(t.buf[i*dims:(i+1)*dims], row)
	}
	t.kept = len(st.Rows)
	return t, nil
}
