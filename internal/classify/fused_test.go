package classify

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/metrics"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// TestFusedMatchesStagedFeatures is the fused-kernel equivalence
// property: on randomized inputs the one-shot affine map must reproduce
// the staged normalize→center→project pipeline to within 1e-9 in every
// feature coordinate.
func TestFusedMatchesStagedFeatures(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		c := appclass.All()[rng.Intn(len(appclass.All()))]
		tr := syntheticTrace(t, c, 40, rng.Int63())
		fused, err := cl.featuresOf(tr)
		if err != nil {
			t.Fatal(err)
		}
		staged, err := cl.stagedFeaturesOf(tr)
		if err != nil {
			t.Fatal(err)
		}
		if fused.Rows() != staged.Rows() || fused.Cols() != staged.Cols() {
			t.Fatalf("trial %d: fused %dx%d, staged %dx%d",
				trial, fused.Rows(), fused.Cols(), staged.Rows(), staged.Cols())
		}
		for i := 0; i < fused.Rows(); i++ {
			for j := 0; j < fused.Cols(); j++ {
				if d := math.Abs(fused.At(i, j) - staged.At(i, j)); d > 1e-9 {
					t.Fatalf("trial %d feature (%d,%d): fused %v staged %v (|Δ| = %g)",
						trial, i, j, fused.At(i, j), staged.At(i, j), d)
				}
			}
		}
	}
}

// stagedClassifyTrace classifies a trace through the retained staged
// pipeline plus the string-label k-NN vote — the pre-fusion code path,
// kept as the reference the fast path must agree with.
func stagedClassifyTrace(t *testing.T, cl *Classifier, tr *metrics.Trace) []appclass.Class {
	t.Helper()
	features, err := cl.stagedFeaturesOf(tr)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := cl.nn.ClassifyBatch(features)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]appclass.Class, len(labels))
	for i, l := range labels {
		c, err := appclass.Parse(l)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = c
	}
	return out
}

// TestFusedMatchesStagedLabels requires identical per-snapshot labels
// from the fused and staged pipelines on randomized traces.
func TestFusedMatchesStagedLabels(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		c := appclass.All()[rng.Intn(len(appclass.All()))]
		tr := syntheticTrace(t, c, 60, rng.Int63())
		res, err := cl.ClassifyTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		want := stagedClassifyTrace(t, cl, tr)
		for i := range want {
			if res.Snapshots[i] != want[i] {
				t.Fatalf("trial %d snapshot %d: fused %s, staged %s", trial, i, res.Snapshots[i], want[i])
			}
		}
	}
}

// TestFusedMatchesStagedOnTestbed replays every Table 3 test
// application and requires the fused path to assign the exact same
// label to every snapshot as the staged pipeline (so the dominant-class
// reproduction is unchanged by the optimization).
func TestFusedMatchesStagedOnTestbed(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	cl := trainFromTestbed(t, Config{})
	for _, e := range workload.TestSet() {
		res, err := testbed.ProfileEntry(e, 2)
		if err != nil {
			t.Fatalf("profile %s: %v", e.Name, err)
		}
		out, err := cl.ClassifyTrace(res.Trace)
		if err != nil {
			t.Fatalf("classify %s: %v", e.Name, err)
		}
		want := stagedClassifyTrace(t, cl, res.Trace)
		for i := range want {
			if out.Snapshots[i] != want[i] {
				t.Errorf("%s snapshot %d: fused %s, staged %s", e.Name, i, out.Snapshots[i], want[i])
			}
		}
	}
}

// TestClassifySnapshotScratchMatchesTrace cross-checks the single-shot
// scratch path against whole-trace classification.
func TestClassifySnapshotScratchMatchesTrace(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	tr := syntheticTrace(t, appclass.IO, 50, 5)
	res, err := cl.ClassifyTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := cl.GatherIndices(tr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	var s Scratch
	for i := 0; i < tr.Len(); i++ {
		got, err := cl.ClassifySnapshotScratch(idx, tr.At(i).Values, &s)
		if err != nil {
			t.Fatal(err)
		}
		if got != res.Snapshots[i] {
			t.Fatalf("snapshot %d: scratch %s, trace %s", i, got, res.Snapshots[i])
		}
	}
}

// TestGatherIndicesCached verifies the per-schema cache returns the
// same slice for repeated lookups.
func TestGatherIndicesCached(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	schema := metrics.DefaultSchema()
	a, err := cl.GatherIndices(schema)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cl.GatherIndices(schema)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("GatherIndices did not return the cached slice")
	}
	if _, err := cl.GatherIndices(nil); err == nil {
		t.Error("nil schema: want error")
	}
}

// TestClassifySnapshotScratchZeroAllocs is the tentpole's allocation
// contract: the fused snapshot path performs zero allocations at steady
// state (paper configuration, grid-indexed 2-D k-NN).
func TestClassifySnapshotScratchZeroAllocs(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	tr := syntheticTrace(t, appclass.CPU, 64, 9)
	idx, err := cl.GatherIndices(tr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	var s Scratch
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := cl.ClassifySnapshotScratch(idx, tr.At(i%tr.Len()).Values, &s); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Errorf("ClassifySnapshotScratch allocates %v per run, want 0", allocs)
	}
}

// TestOnlineObserveSteadyStateZeroAllocs pins the streaming path: once
// the history backing array and maps have warmed up, Observe must not
// allocate.
func TestOnlineObserveSteadyStateZeroAllocs(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	tr := syntheticTrace(t, appclass.Net, 64, 11)
	online, err := NewOnline(cl, tr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	online.SetHistoryCap(128)
	snaps := make([]metrics.Snapshot, tr.Len())
	for i := range snaps {
		snaps[i] = tr.At(i)
	}
	// Warm up past several trim cycles so the history array stabilizes.
	for i := 0; i < 1000; i++ {
		if _, err := online.Observe(snaps[i%len(snaps)]); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := online.Observe(snaps[i%len(snaps)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Errorf("Observe allocates %v per run at steady state, want 0", allocs)
	}
}

// TestHistoryCap exercises the retention cap: bounded History length,
// accurate drop accounting, and first/last times spanning the full
// stream rather than the retained window.
func TestHistoryCap(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	tr := syntheticTrace(t, appclass.CPU, 10, 3)
	online, err := NewOnline(cl, tr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	online.SetHistoryCap(100)
	const total = 1000
	for i := 0; i < total; i++ {
		snap := tr.At(i % tr.Len())
		snap.Time = time.Duration(i) * time.Second
		if _, err := online.Observe(snap); err != nil {
			t.Fatal(err)
		}
	}
	hist := online.History()
	if len(hist) > 100+100/4 {
		t.Errorf("history length %d exceeds cap slack", len(hist))
	}
	if got := online.HistoryDropped() + len(hist); got != total {
		t.Errorf("dropped %d + retained %d = %d, want %d",
			online.HistoryDropped(), len(hist), got, total)
	}
	// The retained window is the most recent suffix, in order.
	for i := range hist {
		want := time.Duration(total-len(hist)+i) * time.Second
		if hist[i].At != want {
			t.Fatalf("history[%d].At = %v, want %v", i, hist[i].At, want)
		}
	}
	v := online.Snapshot()
	if v.FirstAt != 0 {
		t.Errorf("FirstAt = %v, want 0 (spans dropped entries)", v.FirstAt)
	}
	if want := time.Duration(total-1) * time.Second; v.LastAt != want {
		t.Errorf("LastAt = %v, want %v", v.LastAt, want)
	}
	if v.Total != total {
		t.Errorf("Total = %d, want %d", v.Total, total)
	}
	// Stage analysis stays valid over the retained window.
	if _, err := StagesFromHistory(hist, 1, online.HistoryDropped()); err != nil {
		t.Errorf("StagesFromHistory over retained window: %v", err)
	}
	// Cap can be lowered after the fact.
	online.SetHistoryCap(10)
	if got := len(online.History()); got > 10+10/4 {
		t.Errorf("after lowering cap, history length %d", got)
	}
	// And disabled.
	online.SetHistoryCap(0)
	for i := 0; i < 50; i++ {
		if _, err := online.Observe(tr.At(i % tr.Len())); err != nil {
			t.Fatal(err)
		}
	}
}

// TestObserveBatchMatchesSequential runs the same stream through
// ObserveBatch and per-snapshot Observe and requires identical classes
// and running state.
func TestObserveBatchMatchesSequential(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	tr := syntheticTrace(t, appclass.Mem, 80, 17)
	seq, err := NewOnline(cl, tr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	bat, err := NewOnline(cl, tr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	snaps := make([]metrics.Snapshot, tr.Len())
	want := make([]appclass.Class, tr.Len())
	for i := range snaps {
		snaps[i] = tr.At(i)
		c, err := seq.Observe(snaps[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = c
	}
	got, err := bat.ObserveBatch(snaps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("batch returned %d classes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot %d: batch %s, sequential %s", i, got[i], want[i])
		}
	}
	sv, bv := seq.Snapshot(), bat.Snapshot()
	if sv.Class != bv.Class || sv.Total != bv.Total || sv.LastClass != bv.LastClass ||
		sv.FirstAt != bv.FirstAt || sv.LastAt != bv.LastAt || sv.Drift != bv.Drift {
		t.Errorf("views diverge: sequential %+v, batch %+v", sv, bv)
	}
}

// TestObserveBatchValidation requires a malformed snapshot anywhere in
// the batch to reject the whole batch before any state mutation.
func TestObserveBatchValidation(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	tr := syntheticTrace(t, appclass.CPU, 5, 23)
	online, err := NewOnline(cl, tr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	snaps := []metrics.Snapshot{tr.At(0), {Values: []float64{1, 2}}, tr.At(1)}
	if _, err := online.ObserveBatch(snaps, nil); err == nil {
		t.Fatal("malformed batch: want error")
	}
	if online.Seen() != 0 {
		t.Errorf("failed batch mutated state: Seen = %d", online.Seen())
	}
}
