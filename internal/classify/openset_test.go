package classify

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/metrics"
	"repro/internal/phase"
)

// mimicSignature is a resource blend unlike any training class:
// simultaneous heavy CPU, network, file, and swap traffic. No single
// paper class consumes everything at once, so its fused features land
// far from all five training clusters.
func mimicSignature() []float64 {
	return []float64{45, 50, 4e5, 8e6, 3000, 3000, 2500, 2500}
}

func mimicTrace(t *testing.T, n int, seed int64) *metrics.Trace {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tr := metrics.NewTrace(metrics.ExpertSchema(), "vm1")
	sig := mimicSignature()
	for i := 0; i < n; i++ {
		vals := make([]float64, len(sig))
		for j, v := range sig {
			vals[j] = v * (1 + 0.1*rng.NormFloat64())
			if vals[j] < 0 {
				vals[j] = 0
			}
		}
		if err := tr.Append(metrics.Snapshot{
			Time: time.Duration(i*5) * time.Second, Node: "vm1", Values: vals,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestCalibrateOpenSetThresholds(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	os, err := cl.CalibrateOpenSet(OpenSetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := os.Config()
	if cfg.Quantile != DefaultOpenSetQuantile || cfg.Slack != DefaultOpenSetSlack {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	ths := os.Thresholds()
	if len(ths) != len(appclass.All()) {
		t.Fatalf("%d thresholds, want %d", len(ths), len(appclass.All()))
	}
	for cl, th := range ths {
		if th <= 0 {
			t.Errorf("class %s threshold = %v, want positive", cl, th)
		}
	}
}

func TestCalibrateOpenSetUntrained(t *testing.T) {
	var zero Classifier
	if _, err := zero.CalibrateOpenSet(OpenSetConfig{}); err == nil {
		t.Error("untrained calibration: want error")
	}
}

// TestOpenSetTrainingClassesStayKnown: replaying the training-class
// signatures through the open-set path must not flip them to UNKNOWN —
// the calibrated thresholds accept the classes they were derived from.
func TestOpenSetTrainingClassesStayKnown(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	os, err := cl.CalibrateOpenSet(OpenSetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range appclass.All() {
		tr := syntheticTrace(t, class, 80, 99)
		online, err := NewOnline(cl, tr.Schema())
		if err != nil {
			t.Fatal(err)
		}
		online.EnableOpenSet(os)
		for i := 0; i < tr.Len(); i++ {
			if _, err := online.Observe(tr.At(i)); err != nil {
				t.Fatal(err)
			}
		}
		if frac := online.UnknownFraction(); frac > 0.2 {
			t.Errorf("class %s: unknown fraction %v, want ≤ 0.2", class, frac)
		}
		if v := online.Verdict(); v != class {
			t.Errorf("class %s: verdict %s", class, v)
		}
	}
}

// TestOpenSetNovelWorkloadGoesUnknown: a resource blend unlike any
// training class must produce a majority of unknown snapshots and an
// UNKNOWN session verdict, while still reporting the nearest class.
func TestOpenSetNovelWorkloadGoesUnknown(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	os, err := cl.CalibrateOpenSet(OpenSetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tr := mimicTrace(t, 80, 5)
	online, err := NewOnline(cl, tr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	online.EnableOpenSet(os)
	for i := 0; i < tr.Len(); i++ {
		if _, err := online.Observe(tr.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	if frac := online.UnknownFraction(); frac <= UnknownVerdictFraction {
		t.Fatalf("novel workload unknown fraction %v, want > %v", frac, UnknownVerdictFraction)
	}
	if v := online.Verdict(); v != appclass.Unknown {
		t.Errorf("novel workload verdict %s, want %s", v, appclass.Unknown)
	}
	view := online.Snapshot()
	if view.Verdict != appclass.Unknown || view.Unknown != online.UnknownCount() {
		t.Errorf("view verdict %s unknown %d, want %s %d",
			view.Verdict, view.Unknown, appclass.Unknown, online.UnknownCount())
	}
	// The nearest trained class is still reported alongside.
	if !appclass.Valid(view.Class) {
		t.Errorf("majority class %q invalid — UNKNOWN must not leak into composition", view.Class)
	}
}

// TestOpenSetVerdictSnapshotLevel exercises the per-snapshot API.
func TestOpenSetVerdictSnapshotLevel(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	os, err := cl.CalibrateOpenSet(OpenSetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	schema := metrics.ExpertSchema()
	subset, err := cl.GatherIndices(schema)
	if err != nil {
		t.Fatal(err)
	}
	var s Scratch
	v, err := cl.ClassifySnapshotOpenSet(subset, mimicSignature(), os, &s)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Unknown {
		t.Errorf("mimic snapshot verdict %+v, want Unknown", v)
	}
	if v.Distance <= v.Threshold {
		t.Errorf("unknown verdict with distance %v ≤ threshold %v", v.Distance, v.Threshold)
	}
	v, err = cl.ClassifySnapshotOpenSet(subset, classSignature(appclass.CPU), os, &s)
	if err != nil {
		t.Fatal(err)
	}
	if v.Unknown || v.Class != appclass.CPU {
		t.Errorf("CPU snapshot verdict %+v, want known cpu", v)
	}
	// Nil open-set degrades to closed-set classification.
	v, err = cl.ClassifySnapshotOpenSet(subset, mimicSignature(), nil, &s)
	if err != nil {
		t.Fatal(err)
	}
	if v.Unknown || v.Threshold != 0 {
		t.Errorf("nil open-set verdict %+v, want known with zero threshold", v)
	}
}

// TestOnlineSegmentationDetectsPhases drives an Online with
// segmentation over a CPU→IO stream and expects at least two phases
// with the right majority classes.
func TestOnlineSegmentationDetectsPhases(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	cpu := syntheticTrace(t, appclass.CPU, 60, 11)
	io := syntheticTrace(t, appclass.IO, 60, 12)
	online, err := NewOnline(cl, cpu.Schema())
	if err != nil {
		t.Fatal(err)
	}
	online.EnableSegmentation(phase.Config{})
	for i := 0; i < cpu.Len(); i++ {
		if _, err := online.Observe(cpu.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	base := cpu.At(cpu.Len()-1).Time + 5*time.Second
	for i := 0; i < io.Len(); i++ {
		snap := io.At(i)
		snap.Time += base
		if _, err := online.Observe(snap); err != nil {
			t.Fatal(err)
		}
	}
	phases := online.Phases()
	if len(phases) < 2 {
		t.Fatalf("CPU→IO stream produced %d phases (%+v), want ≥ 2", len(phases), phases)
	}
	if phases[0].Class != appclass.CPU {
		t.Errorf("first phase class %s, want cpu", phases[0].Class)
	}
	if last := phases[len(phases)-1]; last.Class != appclass.IO || !last.Open {
		t.Errorf("last phase %+v, want open io", last)
	}
	if online.PhaseCount() != len(phases) {
		t.Errorf("PhaseCount %d, len(Phases) %d", online.PhaseCount(), len(phases))
	}
	if got := online.Snapshot().Phases; len(got) != len(phases) {
		t.Errorf("view has %d phases, want %d", len(got), len(phases))
	}
}

// TestOnlineStateRoundTripWithSegAndUnknown checkpoints an Online
// mid-stream (segmentation + open-set active), restores it through the
// JSON wire form, feeds both the same remainder, and requires identical
// phase lists and unknown counts — the daemon's crash-recovery
// contract for the phase subsystem.
func TestOnlineStateRoundTripWithSegAndUnknown(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	os, err := cl.CalibrateOpenSet(OpenSetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cpu := syntheticTrace(t, appclass.CPU, 50, 21)
	mim := mimicTrace(t, 50, 22)

	mk := func() *Online {
		o, err := NewOnline(cl, cpu.Schema())
		if err != nil {
			t.Fatal(err)
		}
		o.EnableSegmentation(phase.Config{})
		o.EnableOpenSet(os)
		return o
	}
	feed := func(o *Online, from, to int) {
		for i := from; i < to; i++ {
			var snap metrics.Snapshot
			if i < 50 {
				snap = cpu.At(i)
			} else {
				snap = mim.At(i - 50)
				snap.Time += cpu.At(49).Time + 5*time.Second
			}
			if _, err := o.Observe(snap); err != nil {
				t.Fatal(err)
			}
		}
	}

	orig := mk()
	feed(orig, 0, 70)
	raw, err := json.Marshal(orig.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	var st OnlineState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreOnline(cl, cpu.Schema(), st)
	if err != nil {
		t.Fatal(err)
	}
	// The restorer re-enables open-set from the (deterministic) model.
	restored.EnableOpenSet(os)
	if restored.UnknownCount() != orig.UnknownCount() {
		t.Fatalf("restored unknown %d, want %d", restored.UnknownCount(), orig.UnknownCount())
	}
	feed(orig, 70, 100)
	feed(restored, 70, 100)
	if !reflect.DeepEqual(orig.Phases(), restored.Phases()) {
		t.Errorf("phase lists diverge:\n orig: %+v\n rest: %+v", orig.Phases(), restored.Phases())
	}
	if orig.UnknownCount() != restored.UnknownCount() {
		t.Errorf("unknown counts diverge: %d vs %d", orig.UnknownCount(), restored.UnknownCount())
	}
	if orig.Verdict() != restored.Verdict() {
		t.Errorf("verdicts diverge: %s vs %s", orig.Verdict(), restored.Verdict())
	}
}

func TestRestoreOnlineRejectsBadUnknown(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	tr := syntheticTrace(t, appclass.CPU, 20, 31)
	online, err := NewOnline(cl, tr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tr.Len(); i++ {
		if _, err := online.Observe(tr.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := online.ExportState()
	st.Unknown = st.Total + 1
	if _, err := RestoreOnline(cl, tr.Schema(), st); err == nil {
		t.Error("unknown > total accepted")
	}
	st.Unknown = -1
	if _, err := RestoreOnline(cl, tr.Schema(), st); err == nil {
		t.Error("negative unknown accepted")
	}
}

// TestStagesFromHistoryPartialFlag is the regression test for the
// history-cap truncation edge: with entries dropped, the first stage
// must be flagged Partial instead of silently reporting a too-short
// duration.
func TestStagesFromHistoryPartialFlag(t *testing.T) {
	hist := []TimedClass{
		{At: 100 * time.Second, Class: appclass.IO},
		{At: 105 * time.Second, Class: appclass.IO},
		{At: 110 * time.Second, Class: appclass.CPU},
		{At: 115 * time.Second, Class: appclass.CPU},
	}
	// No truncation: nothing partial.
	stages, err := StagesFromHistory(hist, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range stages {
		if st.Partial {
			t.Errorf("untruncated history produced partial stage %+v", st)
		}
	}
	// Truncated: the IO stage may have begun before the window.
	stages, err = StagesFromHistory(hist, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 2 {
		t.Fatalf("%d stages, want 2", len(stages))
	}
	if !stages[0].Partial {
		t.Error("first stage after truncation not flagged Partial")
	}
	if stages[1].Partial {
		t.Error("second stage wrongly flagged Partial")
	}
	// The flag survives runt absorption into the first stage.
	runt := append([]TimedClass{
		{At: 95 * time.Second, Class: appclass.IO},
	}, hist...)
	stages, err = StagesFromHistory(runt, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !stages[0].Partial {
		t.Errorf("absorbed first stage lost Partial flag: %+v", stages)
	}
	if _, err := StagesFromHistory(hist, 1, -1); err == nil {
		t.Error("negative dropped accepted")
	}
}

// TestOnlineTruncatedHistoryYieldsPartialFirstStage exercises the edge
// end to end: cap the history, overflow it, and check the daemon-facing
// pair (History, HistoryDropped) flags the first stage.
func TestOnlineTruncatedHistoryYieldsPartialFirstStage(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	tr := syntheticTrace(t, appclass.CPU, 80, 41)
	online, err := NewOnline(cl, tr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	online.SetHistoryCap(20)
	for i := 0; i < tr.Len(); i++ {
		if _, err := online.Observe(tr.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	if online.HistoryDropped() == 0 {
		t.Fatal("cap 20 over 80 snapshots dropped nothing")
	}
	stages, err := StagesFromHistory(online.History(), 1, online.HistoryDropped())
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) == 0 || !stages[0].Partial {
		t.Errorf("first stage over truncated history not Partial: %+v", stages)
	}
}
