package classify

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"repro/internal/appclass"
	"repro/internal/metrics"
)

// feedRows offers n synthetic rows (row i has every value = i) to the
// sampler and returns the values it would see.
func feedRows(s *trainSampler, n int) {
	subset := make([]int, s.dims)
	for i := range subset {
		subset[i] = i
	}
	row := make([]float64, s.dims)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = float64(i)
		}
		s.offer(row, subset)
	}
}

func TestTrainSamplerBoundedAndUniform(t *testing.T) {
	const dims, capRows = 4, 32
	for _, n := range []int{0, 1, capRows, capRows + 1, 10 * capRows, 1000} {
		s := newTrainSampler(dims, capRows)
		feedRows(s, n)
		rows := s.rows()
		if len(rows) > capRows {
			t.Fatalf("n=%d: kept %d rows, cap %d", n, len(rows), capRows)
		}
		if n > 0 && len(rows) == 0 {
			t.Fatalf("n=%d: reservoir empty", n)
		}
		// Retained rows are exactly the multiples of the final stride, in
		// order: the reservoir covers the whole stream uniformly.
		for i, row := range rows {
			want := float64(i * s.stride)
			if row[0] != want {
				t.Fatalf("n=%d: row %d holds input %v, want %v (stride %d)", n, i, row[0], want, s.stride)
			}
		}
		// The tail is covered too: the last retained row is within one
		// stride of the final input.
		if n > 0 {
			last := rows[len(rows)-1][0]
			if float64(n-1)-last >= 2*float64(s.stride) {
				t.Fatalf("n=%d: last retained input %v leaves a %v-row tail uncovered (stride %d)",
					n, last, float64(n-1)-last, s.stride)
			}
		}
	}
}

func TestTrainSamplerDeterministic(t *testing.T) {
	a := newTrainSampler(3, 16)
	b := newTrainSampler(3, 16)
	feedRows(a, 777)
	feedRows(b, 777)
	if !reflect.DeepEqual(a.rows(), b.rows()) {
		t.Fatal("identical input streams retained different samples")
	}
}

// A sampler serialized mid-stream and restored must continue exactly as
// the uninterrupted one: checkpoint/restore may not perturb which rows
// retraining sees.
func TestTrainSamplerStateRoundtrip(t *testing.T) {
	const dims, capRows, total, cut = 3, 16, 500, 137
	uninterrupted := newTrainSampler(dims, capRows)
	feedRows(uninterrupted, total)

	first := newTrainSampler(dims, capRows)
	feedRows(first, cut)
	raw, err := json.Marshal(first.state())
	if err != nil {
		t.Fatal(err)
	}
	var st TrainSamplerState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	restored, err := trainSamplerFromState(dims, st)
	if err != nil {
		t.Fatalf("trainSamplerFromState: %v", err)
	}
	// Continue the stream from where the first sampler stopped.
	subset := []int{0, 1, 2}
	row := make([]float64, dims)
	for i := cut; i < total; i++ {
		for j := range row {
			row[j] = float64(i)
		}
		restored.offer(row, subset)
	}
	if !reflect.DeepEqual(restored.rows(), uninterrupted.rows()) {
		t.Fatalf("restored sampler diverged:\nrestored      %v\nuninterrupted %v",
			firstCol(restored.rows()), firstCol(uninterrupted.rows()))
	}
}

func firstCol(rows [][]float64) []float64 {
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = r[0]
	}
	return out
}

func TestTrainSamplerStateValidation(t *testing.T) {
	bad := []TrainSamplerState{
		{Cap: 0, Stride: 1},
		{Cap: 4, Stride: 0},
		{Cap: 4, Stride: 1, Seen: 1, Rows: [][]float64{{1, 2}, {3, 4}}}, // rows > seen
		{Cap: 1, Stride: 1, Seen: 5, Rows: [][]float64{{1, 2}, {3, 4}}}, // rows > cap
		{Cap: 4, Stride: 1, Seen: 5, Rows: [][]float64{{1}}},            // bad arity
		{Cap: 4, Stride: 1, Seen: -1},                                   // negative seen
	}
	for i, st := range bad {
		if _, err := trainSamplerFromState(2, st); err == nil {
			t.Errorf("state %d (%+v): want error", i, st)
		}
	}
}

// Online sampling end to end: rows are the expert-metric subset in
// schema order, and survive an ExportState/RestoreOnline cycle.
func TestOnlineSamplingRoundtrip(t *testing.T) {
	cl := trainSynthetic(t, Config{})
	schema := metrics.ExpertSchema()
	o, err := NewOnline(cl, schema)
	if err != nil {
		t.Fatal(err)
	}
	o.EnableSampling(8)
	if !o.SamplingEnabled() {
		t.Fatal("sampling not enabled")
	}
	tr := syntheticTrace(t, appclass.CPU, 30, 7)
	for i := 0; i < tr.Len(); i++ {
		if _, err := o.Observe(tr.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	names, rows := o.TrainSamples()
	if !reflect.DeepEqual(names, schema.Names()) {
		t.Fatalf("sample metric names = %v", names)
	}
	if len(rows) == 0 || len(rows) > 8 {
		t.Fatalf("retained %d rows, want 1..8", len(rows))
	}
	for _, row := range rows {
		if len(row) != schema.Len() {
			t.Fatalf("row arity %d, want %d", len(row), schema.Len())
		}
	}

	raw, err := json.Marshal(o.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	var st OnlineState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreOnline(cl, schema, st)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.SamplingEnabled() {
		t.Fatal("restore dropped the sampler")
	}
	// EnableSampling with the same cap must not clobber the restored
	// reservoir (the daemon re-arms every restored session).
	restored.EnableSampling(8)
	_, got := restored.TrainSamples()
	if !reflect.DeepEqual(got, rows) {
		t.Fatal("re-arming sampling clobbered the restored reservoir")
	}
}

// Rebind swaps the model under a live session: accumulated counts,
// history, and the reservoir carry over; new snapshots classify under
// the new classifier.
func TestRebind(t *testing.T) {
	cl1 := trainSynthetic(t, Config{})
	cl2 := trainSynthetic(t, Config{K: 5})
	schema := metrics.ExpertSchema()
	o, err := NewOnline(cl1, schema)
	if err != nil {
		t.Fatal(err)
	}
	o.EnableSampling(16)
	tr := syntheticTrace(t, appclass.IO, 20, 3)
	for i := 0; i < tr.Len(); i++ {
		if _, err := o.Observe(tr.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	seenBefore := o.Seen()
	_, rowsBefore := o.TrainSamples()

	os2, err := cl2.CalibrateOpenSet(OpenSetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Rebind(cl2, os2); err != nil {
		t.Fatalf("Rebind: %v", err)
	}
	if o.Seen() != seenBefore {
		t.Fatalf("Rebind reset Seen: %d -> %d", seenBefore, o.Seen())
	}
	if _, rows := o.TrainSamples(); !reflect.DeepEqual(rows, rowsBefore) {
		t.Fatal("Rebind dropped the training reservoir")
	}
	tail := syntheticTrace(t, appclass.IO, 10, 4)
	for i := 0; i < tail.Len(); i++ {
		got, err := o.Observe(tail.At(i))
		if err != nil {
			t.Fatal(err)
		}
		// The session now votes with cl2.
		want, err := cl2.ClassifySnapshot(schema, tail.At(i).Values)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("post-rebind snapshot %d: session says %s, cl2 says %s", i, got, want)
		}
	}
	if o.Seen() != seenBefore+tail.Len() {
		t.Fatalf("Seen = %d after tail, want %d", o.Seen(), seenBefore+tail.Len())
	}

	// A model over a different expert-metric list must refuse.
	narrow := metrics.ExpertSchema().Names()[:4]
	cl3 := trainSynthetic(t, Config{ExpertMetrics: narrow})
	if err := o.Rebind(cl3, nil); err == nil {
		t.Fatal("Rebind across expert-metric lists: want error")
	}
	// An untrained classifier must refuse.
	if err := o.Rebind(&Classifier{}, nil); err == nil {
		t.Fatal("Rebind to untrained classifier: want error")
	}
}

// The thin-class calibration fix: a class with fewer than two training
// points gets an infinite threshold (never flags unknown) and a
// per-class error, instead of a garbage threshold poisoning the whole
// calibration.
func TestCalibrateOpenSetThinClassSkipped(t *testing.T) {
	var runs []TrainingRun
	for i, c := range appclass.All() {
		n := 60
		if c == appclass.Mem {
			n = 1 // thin class: a single training snapshot
		}
		runs = append(runs, TrainingRun{Class: c, Trace: syntheticTrace(t, c, n, int64(i+1))})
	}
	cl, err := Train(runs, Config{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	os, err := cl.CalibrateOpenSet(OpenSetConfig{})
	if err != nil {
		t.Fatalf("CalibrateOpenSet: %v", err)
	}
	skipped := os.SkippedClasses()
	if len(skipped) != 1 {
		t.Fatalf("SkippedClasses = %v, want exactly mem", skipped)
	}
	if _, ok := skipped[appclass.Mem]; !ok {
		t.Fatalf("SkippedClasses = %v, want mem", skipped)
	}
	ths := os.Thresholds()
	if !math.IsInf(ths[appclass.Mem], 1) {
		t.Fatalf("thin-class threshold = %v, want +Inf", ths[appclass.Mem])
	}
	for c, th := range ths {
		if c == appclass.Mem {
			continue
		}
		if th <= 0 || math.IsInf(th, 1) {
			t.Errorf("class %s threshold = %v, want finite positive", c, th)
		}
	}
	// The healthy classes' open-set behaviour is intact: the mimic
	// workload still goes unknown, and in-class snapshots stay known.
	subset, err := cl.GatherIndices(metrics.ExpertSchema())
	if err != nil {
		t.Fatal(err)
	}
	var s Scratch
	v, err := cl.ClassifySnapshotOpenSet(subset, classSignature(appclass.CPU), os, &s)
	if err != nil {
		t.Fatal(err)
	}
	if v.Unknown || v.Class != appclass.CPU {
		t.Fatalf("CPU signature verdict = %+v, want known cpu", v)
	}
	v, err = cl.ClassifySnapshotOpenSet(subset, mimicSignature(), os, &s)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Unknown {
		t.Error("mimic workload not flagged unknown after thin-class skip")
	}
}

// The skipped map is a defensive copy.
func TestSkippedClassesCopied(t *testing.T) {
	os := &OpenSet{skipped: map[appclass.Class]error{appclass.Mem: errTest}}
	m := os.SkippedClasses()
	delete(m, appclass.Mem)
	if len(os.SkippedClasses()) != 1 {
		t.Fatal("SkippedClasses returned the internal map")
	}
}

var errTest = errDummy{}

type errDummy struct{}

func (errDummy) Error() string { return "dummy" }
