package classify

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/appclass"
	"repro/internal/knn"
	"repro/internal/linalg"
	"repro/internal/pca"
	"repro/internal/stats"
)

// persistedClassifier is the JSON wire form of a trained classifier:
// the configuration, the normalization parameters, the PCA projection,
// and the projected, labelled training points.
type persistedClassifier struct {
	Version       int         `json:"version"`
	ExpertMetrics []string    `json:"expert_metrics"`
	K             int         `json:"k"`
	Q             int         `json:"q"`
	NormMeans     []float64   `json:"norm_means"`
	NormStdDevs   []float64   `json:"norm_stddevs"`
	Eigenvalues   []float64   `json:"eigenvalues"`
	ColMeans      []float64   `json:"pca_col_means"`
	Components    [][]float64 `json:"components"` // p rows of q values
	TrainPoints   [][]float64 `json:"train_points"`
	TrainLabels   []string    `json:"train_labels"`
}

const persistVersion = 1

// Save serializes the trained classifier as JSON.
func (c *Classifier) Save(w io.Writer) error {
	params := c.normalizer.Params()
	doc := persistedClassifier{
		Version:       persistVersion,
		ExpertMetrics: append([]string(nil), c.cfg.ExpertMetrics...),
		K:             c.cfg.K,
		Q:             c.model.Q,
		Eigenvalues:   append([]float64(nil), c.model.Eigenvalues...),
		ColMeans:      c.model.ColMeans(),
	}
	for _, z := range params {
		doc.NormMeans = append(doc.NormMeans, z.Mean)
		doc.NormStdDevs = append(doc.NormStdDevs, z.StdDev)
	}
	comps := c.model.Components
	for i := 0; i < comps.Rows(); i++ {
		doc.Components = append(doc.Components, comps.Row(i))
	}
	for i := 0; i < c.trainPoints.Rows(); i++ {
		doc.TrainPoints = append(doc.TrainPoints, c.trainPoints.Row(i))
	}
	for _, l := range c.trainLabels {
		doc.TrainLabels = append(doc.TrainLabels, string(l))
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("classify: save: %w", err)
	}
	return nil
}

// Load reconstructs a classifier saved with Save.
func Load(r io.Reader) (*Classifier, error) {
	var doc persistedClassifier
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("classify: load: %w", err)
	}
	if doc.Version != persistVersion {
		return nil, fmt.Errorf("classify: unsupported model version %d", doc.Version)
	}
	p := len(doc.ExpertMetrics)
	if p == 0 {
		return nil, fmt.Errorf("classify: model has no metrics")
	}
	if len(doc.NormMeans) != p || len(doc.NormStdDevs) != p || len(doc.ColMeans) != p {
		return nil, fmt.Errorf("classify: model parameter arity mismatch")
	}
	if doc.K <= 0 || doc.K%2 == 0 {
		return nil, fmt.Errorf("classify: model k = %d invalid", doc.K)
	}
	if doc.Q <= 0 || doc.Q > p {
		return nil, fmt.Errorf("classify: model q = %d invalid for %d metrics", doc.Q, p)
	}
	zs := make([]stats.ZScore, p)
	for i := range zs {
		if doc.NormStdDevs[i] <= 0 {
			return nil, fmt.Errorf("classify: model normalizer stddev %d not positive", i)
		}
		zs[i] = stats.ZScore{Mean: doc.NormMeans[i], StdDev: doc.NormStdDevs[i]}
	}
	norm := pca.NormalizerFromParams(zs)
	comps, err := linalg.FromRows(doc.Components)
	if err != nil {
		return nil, fmt.Errorf("classify: model components: %w", err)
	}
	if comps.Rows() != p || comps.Cols() != doc.Q {
		return nil, fmt.Errorf("classify: model components are %dx%d, want %dx%d",
			comps.Rows(), comps.Cols(), p, doc.Q)
	}
	model, err := pca.ModelFromParams(comps, doc.Eigenvalues, doc.Q, doc.ColMeans)
	if err != nil {
		return nil, fmt.Errorf("classify: model: %w", err)
	}
	if len(doc.TrainPoints) == 0 || len(doc.TrainPoints) != len(doc.TrainLabels) {
		return nil, fmt.Errorf("classify: model has %d points but %d labels",
			len(doc.TrainPoints), len(doc.TrainLabels))
	}
	points, err := linalg.FromRows(doc.TrainPoints)
	if err != nil {
		return nil, fmt.Errorf("classify: model points: %w", err)
	}
	if points.Cols() != doc.Q {
		return nil, fmt.Errorf("classify: model points have %d dims, want %d", points.Cols(), doc.Q)
	}
	nn, err := knn.New(doc.K)
	if err != nil {
		return nil, err
	}
	vecs := make([]linalg.Vector, points.Rows())
	labels := make([]appclass.Class, points.Rows())
	for i := range vecs {
		vecs[i] = points.Row(i)
		cl, err := appclass.Parse(doc.TrainLabels[i])
		if err != nil {
			return nil, fmt.Errorf("classify: model label %d: %w", i, err)
		}
		labels[i] = cl
	}
	if err := nn.Train(vecs, doc.TrainLabels); err != nil {
		return nil, err
	}
	if doc.Q == 2 {
		if err := nn.EnableIndex(); err != nil {
			return nil, fmt.Errorf("classify: index k-NN: %w", err)
		}
	}
	c := &Classifier{
		cfg: Config{
			ExpertMetrics: doc.ExpertMetrics,
			Components:    doc.Q,
			K:             doc.K,
		},
		normalizer:  norm,
		model:       model,
		nn:          nn,
		trainPoints: points,
		trainLabels: labels,
	}
	// A loaded classifier gets the same precomputed fused kernel as a
	// freshly trained one.
	if err := c.finish(); err != nil {
		return nil, err
	}
	return c, nil
}
