package classify

import (
	"fmt"

	"repro/internal/appclass"
	"repro/internal/stats"
)

// Evaluation is the outcome of scoring a classifier against labelled
// runs: one confusion matrix at run level (each run's majority-vote
// class vs its label) and one at snapshot level (every snapshot vs the
// run's label — an upper bound on disagreement, since mixed runs
// legitimately contain off-label snapshots).
type Evaluation struct {
	Runs      *stats.ConfusionMatrix
	Snapshots *stats.ConfusionMatrix
}

// Evaluate classifies every labelled run and tallies both matrices.
func Evaluate(cl *Classifier, runs []TrainingRun) (*Evaluation, error) {
	if cl == nil {
		return nil, fmt.Errorf("classify: nil classifier")
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("classify: no runs to evaluate")
	}
	ev := &Evaluation{
		Runs:      stats.NewConfusionMatrix(appclass.Strings()),
		Snapshots: stats.NewConfusionMatrix(appclass.Strings()),
	}
	for i, run := range runs {
		if !appclass.Valid(run.Class) {
			return nil, fmt.Errorf("classify: run %d has invalid label %q", i, run.Class)
		}
		out, err := cl.ClassifyTrace(run.Trace)
		if err != nil {
			return nil, fmt.Errorf("classify: evaluate run %d: %w", i, err)
		}
		if err := ev.Runs.Add(string(run.Class), string(out.Class)); err != nil {
			return nil, err
		}
		for _, s := range out.Snapshots {
			if err := ev.Snapshots.Add(string(run.Class), string(s)); err != nil {
				return nil, err
			}
		}
	}
	return ev, nil
}
