package classify

import (
	"fmt"
	"testing"

	"repro/internal/appclass"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// trainFromTestbed profiles the five training applications end to end
// and trains the classifier, as Section 4.2.3 describes.
func trainFromTestbed(t testing.TB, cfg Config) *Classifier {
	t.Helper()
	var runs []TrainingRun
	for _, e := range workload.TrainingSet() {
		res, err := testbed.ProfileEntry(e, 1)
		if err != nil {
			t.Fatalf("profile %s: %v", e.Name, err)
		}
		runs = append(runs, TrainingRun{Class: e.Expected, Trace: res.Trace})
	}
	cl, err := Train(runs, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return cl
}

// TestTable3DominantClasses is the reproduction of Table 3's headline
// result: each test application's majority class must match the class
// the paper reports as dominant.
func TestTable3DominantClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	cl := trainFromTestbed(t, Config{})

	// Dominant class per Table 3.
	want := map[string]appclass.Class{
		"SPECseis96_A": appclass.CPU,
		"SPECseis96_C": appclass.CPU,
		"CH3D":         appclass.CPU,
		"SimpleScalar": appclass.CPU,
		"PostMark":     appclass.IO,
		"Bonnie":       appclass.IO,
		"SPECseis96_B": appclass.CPU, // paper: 50.39% CPU, 42.87% I/O
		"Stream":       appclass.IO,
		"PostMark_NFS": appclass.Net,
		"NetPIPE":      appclass.Net,
		"Autobench":    appclass.Net,
		"Sftp":         appclass.Net,
		"XSpim":        appclass.IO, // paper: 77.78% I/O
		"VMD":          appclass.IO, // paper: 40.70% I/O, 37.21% idle
	}
	for _, e := range workload.TestSet() {
		res, err := testbed.ProfileEntry(e, 2)
		if err != nil {
			t.Fatalf("profile %s: %v", e.Name, err)
		}
		out, err := cl.ClassifyTrace(res.Trace)
		if err != nil {
			t.Fatalf("classify %s: %v", e.Name, err)
		}
		t.Logf("%-14s samples=%4d class=%-5s composition=%s",
			e.Name, res.Trace.Len(), out.Class, fmtComposition(out.Composition))
		if w := want[e.Name]; out.Class != w {
			t.Errorf("%s classified %s, paper's dominant class is %s (composition %v)",
				e.Name, out.Class, w, out.Composition)
		}
	}
}

func fmtComposition(comp map[appclass.Class]float64) string {
	s := ""
	for _, c := range appclass.All() {
		if v, ok := comp[c]; ok && v > 0 {
			s += fmt.Sprintf("%s=%.1f%% ", c, v*100)
		}
	}
	return s
}
