package profiler

import (
	"testing"
	"time"

	"repro/internal/ganglia"
	"repro/internal/metrics"
)

// feedLossy announces n complete snapshots for vm1 over a bus with the
// given loss rate and returns the profiler.
func feedLossy(t *testing.T, schema *metrics.Schema, n int, loss float64) *Profiler {
	t.Helper()
	bus := ganglia.NewBus()
	if err := bus.SetLoss(loss, 99); err != nil {
		t.Fatal(err)
	}
	p, err := New(bus, schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		at := time.Duration(i*5) * time.Second
		for j, name := range schema.Names() {
			bus.Announce(ganglia.Announcement{Node: "vm1", Metric: name, Value: float64(j), At: at})
		}
	}
	return p
}

func TestBusLossModel(t *testing.T) {
	bus := ganglia.NewBus()
	if err := bus.SetLoss(0.5, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		bus.Announce(ganglia.Announcement{Node: "vm1", Metric: "m", Value: 1})
	}
	if bus.Dropped() == 0 {
		t.Error("loss model dropped nothing at 50%")
	}
	if bus.Delivered()+bus.Dropped() != 1000 {
		t.Errorf("delivered %d + dropped %d != 1000", bus.Delivered(), bus.Dropped())
	}
	frac := float64(bus.Dropped()) / 1000
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("drop fraction = %v, want ~0.5", frac)
	}
	if err := bus.SetLoss(1.5, 1); err == nil {
		t.Error("loss rate >= 1: want error")
	}
	if err := bus.SetLoss(-0.1, 1); err == nil {
		t.Error("negative loss rate: want error")
	}
}

func TestStrictExtractFailsUnderLoss(t *testing.T) {
	schema, err := metrics.NewSchema([]string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	p := feedLossy(t, schema, 200, 0.1)
	if _, err := p.Extract("vm1", 0, time.Hour); err == nil {
		t.Error("strict Extract under 10% loss: want error (some snapshot must be incomplete)")
	}
}

func TestLenientExtractSkipsIncompleteSnapshots(t *testing.T) {
	schema, err := metrics.NewSchema([]string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	p := feedLossy(t, schema, 200, 0.1)
	trace, skipped, err := p.ExtractSkipIncomplete("vm1", 0, time.Hour)
	if err != nil {
		t.Fatalf("ExtractSkipIncomplete: %v", err)
	}
	if skipped == 0 {
		t.Error("expected skipped snapshots under 10% loss")
	}
	if trace.Len() == 0 {
		t.Fatal("no complete snapshots survived")
	}
	if trace.Len()+skipped != 200 {
		t.Errorf("kept %d + skipped %d != 200", trace.Len(), skipped)
	}
	// Surviving snapshots are complete and correct.
	for i := 0; i < trace.Len(); i++ {
		for j, v := range trace.At(i).Values {
			if v != float64(j) {
				t.Fatalf("snapshot %d metric %d = %v, want %d", i, j, v, j)
			}
		}
	}
}

func TestLenientExtractAllLost(t *testing.T) {
	schema, err := metrics.NewSchema([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	bus := ganglia.NewBus()
	p, err := New(bus, schema)
	if err != nil {
		t.Fatal(err)
	}
	// Only metric "a" ever arrives: every snapshot is incomplete.
	for i := 1; i <= 5; i++ {
		bus.Announce(ganglia.Announcement{Node: "vm1", Metric: "a", Value: 1, At: time.Duration(i) * time.Second})
	}
	if _, _, err := p.ExtractSkipIncomplete("vm1", 0, time.Hour); err == nil {
		t.Error("all snapshots incomplete: want error")
	}
}
