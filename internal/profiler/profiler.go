// Package profiler implements the paper's performance profiler
// (Figure 1): it listens on the Ganglia multicast bus — therefore
// receiving the performance data of every node in the subnet — and its
// performance filter extracts the snapshots of one target application
// node between the application's start time t0 and end time t1,
// producing the application performance data pool A(n×m) as a
// metrics.Trace.
package profiler

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/ganglia"
	"repro/internal/metrics"
)

// Profiler buffers every announcement seen on the bus and filters
// per-node traces out of the pool on demand.
type Profiler struct {
	schema *metrics.Schema
	// pool is the raw multicast data pool: node -> time -> metric -> value.
	pool map[string]map[time.Duration]map[string]float64
	seen int
}

// New creates a profiler expecting the given metric schema and
// subscribes it to the bus.
func New(bus *ganglia.Bus, schema *metrics.Schema) (*Profiler, error) {
	if schema == nil {
		return nil, fmt.Errorf("profiler: nil schema")
	}
	p := &Profiler{
		schema: schema,
		pool:   make(map[string]map[time.Duration]map[string]float64),
	}
	if err := bus.Subscribe(ganglia.ListenerFunc(p.onAnnounce)); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Profiler) onAnnounce(a ganglia.Announcement) {
	p.seen++
	if !p.schema.Contains(a.Metric) {
		// Not a metric the classifier consumes; the real filter drops
		// these too.
		return
	}
	byTime, ok := p.pool[a.Node]
	if !ok {
		byTime = make(map[time.Duration]map[string]float64)
		p.pool[a.Node] = byTime
	}
	byMetric, ok := byTime[a.At]
	if !ok {
		byMetric = make(map[string]float64, p.schema.Len())
		byTime[a.At] = byMetric
	}
	byMetric[a.Metric] = a.Value
}

// Seen returns the total number of announcements observed (all nodes,
// all metrics), i.e. the size of the raw data pool.
func (p *Profiler) Seen() int { return p.seen }

// Nodes returns all node names present in the pool, sorted.
func (p *Profiler) Nodes() []string {
	out := make([]string, 0, len(p.pool))
	for n := range p.pool {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Extract runs the performance filter: it selects the snapshots of the
// target node with t0 <= time <= t1 and assembles them into a trace.
// Snapshots missing any schema metric are rejected, because a partial
// sample would silently skew normalization downstream. Use
// ExtractSkipIncomplete when the transport may lose announcements.
func (p *Profiler) Extract(target string, t0, t1 time.Duration) (*metrics.Trace, error) {
	trace, skipped, err := p.extract(target, t0, t1, false)
	if err != nil {
		return nil, err
	}
	_ = skipped // strict mode errors instead of skipping
	return trace, nil
}

// ExtractSkipIncomplete is the lossy-transport variant of Extract:
// snapshots with any missing metric (e.g. dropped multicast packets)
// are skipped rather than failing the whole extraction. It returns the
// trace and the number of skipped snapshots.
func (p *Profiler) ExtractSkipIncomplete(target string, t0, t1 time.Duration) (*metrics.Trace, int, error) {
	return p.extract(target, t0, t1, true)
}

func (p *Profiler) extract(target string, t0, t1 time.Duration, skipIncomplete bool) (*metrics.Trace, int, error) {
	if t1 < t0 {
		return nil, 0, fmt.Errorf("profiler: t1 %v before t0 %v", t1, t0)
	}
	byTime, ok := p.pool[target]
	if !ok {
		return nil, 0, fmt.Errorf("profiler: no data for node %q (have %v)", target, p.Nodes())
	}
	times := make([]time.Duration, 0, len(byTime))
	for at := range byTime {
		if at >= t0 && at <= t1 {
			times = append(times, at)
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	trace := metrics.NewTrace(p.schema, target)
	skipped := 0
	names := p.schema.Names()
	for _, at := range times {
		byMetric := byTime[at]
		vals := make([]float64, p.schema.Len())
		complete := true
		for i, name := range names {
			v, ok := byMetric[name]
			if !ok {
				if skipIncomplete {
					complete = false
					break
				}
				return nil, 0, fmt.Errorf("profiler: snapshot of %q at %v missing metric %q", target, at, name)
			}
			vals[i] = v
		}
		if !complete {
			skipped++
			continue
		}
		if err := trace.Append(metrics.Snapshot{Time: at, Node: target, Values: vals}); err != nil {
			return nil, 0, fmt.Errorf("profiler: assemble trace: %w", err)
		}
	}
	if trace.Len() == 0 {
		return nil, skipped, fmt.Errorf("profiler: no complete snapshots for %q in [%v,%v]", target, t0, t1)
	}
	return trace, skipped, nil
}
