package profiler

import (
	"testing"
	"time"

	"repro/internal/ganglia"
	"repro/internal/metrics"
)

func announceSnapshot(bus *ganglia.Bus, node string, at time.Duration, schema *metrics.Schema, base float64) {
	for i, name := range schema.Names() {
		bus.Announce(ganglia.Announcement{Node: node, Metric: name, Value: base + float64(i), At: at})
	}
}

func testSchema(t *testing.T) *metrics.Schema {
	t.Helper()
	s, err := metrics.NewSchema([]string{"m1", "m2"})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestProfilerFiltersTargetNode(t *testing.T) {
	bus := ganglia.NewBus()
	schema := testSchema(t)
	p, err := New(bus, schema)
	if err != nil {
		t.Fatal(err)
	}
	// Multicast: two nodes announce; the filter must pick one.
	for i := 1; i <= 3; i++ {
		at := time.Duration(i*5) * time.Second
		announceSnapshot(bus, "vm1", at, schema, 10)
		announceSnapshot(bus, "vm2", at, schema, 99)
	}
	tr, err := p.Extract("vm1", 0, time.Minute)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if tr.Len() != 3 {
		t.Fatalf("trace has %d snapshots, want 3", tr.Len())
	}
	v, err := tr.Value(0, "m1")
	if err != nil || v != 10 {
		t.Errorf("vm1 m1 = %v, want 10 (not vm2's 99)", v)
	}
	if nodes := p.Nodes(); len(nodes) != 2 {
		t.Errorf("pool nodes = %v, want both subnet nodes", nodes)
	}
}

func TestProfilerTimeWindow(t *testing.T) {
	bus := ganglia.NewBus()
	schema := testSchema(t)
	p, err := New(bus, schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		announceSnapshot(bus, "vm1", time.Duration(i*5)*time.Second, schema, 1)
	}
	tr, err := p.Extract("vm1", 10*time.Second, 25*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Samples at 10,15,20,25 -> 4 snapshots.
	if tr.Len() != 4 {
		t.Errorf("windowed trace has %d snapshots, want 4", tr.Len())
	}
	if tr.At(0).Time != 10*time.Second || tr.At(3).Time != 25*time.Second {
		t.Errorf("window bounds = [%v,%v]", tr.At(0).Time, tr.At(3).Time)
	}
}

func TestProfilerRejectsIncompleteSnapshot(t *testing.T) {
	bus := ganglia.NewBus()
	schema := testSchema(t)
	p, err := New(bus, schema)
	if err != nil {
		t.Fatal(err)
	}
	bus.Announce(ganglia.Announcement{Node: "vm1", Metric: "m1", Value: 1, At: 5 * time.Second})
	// m2 never announced for this instant.
	if _, err := p.Extract("vm1", 0, time.Minute); err == nil {
		t.Fatal("incomplete snapshot: want error")
	}
}

func TestProfilerIgnoresUnknownMetrics(t *testing.T) {
	bus := ganglia.NewBus()
	schema := testSchema(t)
	p, err := New(bus, schema)
	if err != nil {
		t.Fatal(err)
	}
	announceSnapshot(bus, "vm1", 5*time.Second, schema, 1)
	bus.Announce(ganglia.Announcement{Node: "vm1", Metric: "exotic", Value: 7, At: 5 * time.Second})
	tr, err := p.Extract("vm1", 0, time.Minute)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if tr.Len() != 1 {
		t.Errorf("trace has %d snapshots, want 1", tr.Len())
	}
	if p.Seen() != 3 {
		t.Errorf("Seen = %d, want 3 (raw pool counts everything)", p.Seen())
	}
}

func TestProfilerErrors(t *testing.T) {
	bus := ganglia.NewBus()
	schema := testSchema(t)
	if _, err := New(bus, nil); err == nil {
		t.Error("nil schema: want error")
	}
	p, err := New(bus, schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Extract("ghost", 0, time.Minute); err == nil {
		t.Error("unknown node: want error")
	}
	announceSnapshot(bus, "vm1", 5*time.Second, schema, 1)
	if _, err := p.Extract("vm1", time.Minute, 0); err == nil {
		t.Error("inverted window: want error")
	}
	if _, err := p.Extract("vm1", time.Hour, 2*time.Hour); err == nil {
		t.Error("empty window: want error")
	}
}
