package vmm

import (
	"testing"
	"time"

	"repro/internal/metrics"
)

// stubJob is a controllable job for simulator tests: it demands a fixed
// Demand until its accumulated CPU work reaches cpuWork (or forever when
// cpuWork is 0).
type stubJob struct {
	name    string
	demand  Demand
	cpuWork float64
	gotCPU  float64
	grants  []Grant
}

func (s *stubJob) Name() string { return s.name }

func (s *stubJob) Demand(time.Duration) Demand {
	if s.Done() {
		return Demand{}
	}
	return s.demand
}

func (s *stubJob) Apply(g Grant, _ time.Duration) {
	s.grants = append(s.grants, g)
	s.gotCPU += g.CPUSeconds * g.CPUEfficiency
}

func (s *stubJob) Done() bool { return s.cpuWork > 0 && s.gotCPU >= s.cpuWork }

func singleVMHost(t *testing.T, vmCfg VMConfig, hostCfg HostConfig, jobs ...Job) (*Host, *VM) {
	t.Helper()
	vm := NewVM(vmCfg)
	for _, j := range jobs {
		vm.AddJob(j)
	}
	h := NewHost(hostCfg)
	if err := h.AddVM(vm); err != nil {
		t.Fatal(err)
	}
	return h, vm
}

func TestVMDefaults(t *testing.T) {
	vm := NewVM(VMConfig{Name: "vm1"})
	cfg := vm.Config()
	if cfg.MemKB != 256*1024 || cfg.VCPUs != 1 {
		t.Errorf("defaults = %+v, want 256MB / 1 vCPU", cfg)
	}
}

func TestVMSampleHasAllDefaultMetrics(t *testing.T) {
	vm := NewVM(VMConfig{Name: "vm1"})
	sample := vm.Sample()
	for _, name := range metrics.DefaultNames() {
		if _, ok := sample[name]; !ok {
			t.Errorf("metric %q missing from VM sample", name)
		}
	}
}

func TestVMSnapshotAgainstSchema(t *testing.T) {
	vm := NewVM(VMConfig{Name: "vm1"})
	snap, err := vm.Snapshot(metrics.DefaultSchema(), 7*time.Second)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if snap.Node != "vm1" || snap.Time != 7*time.Second {
		t.Errorf("snapshot header = %q @ %v", snap.Node, snap.Time)
	}
	if len(snap.Values) != 33 {
		t.Errorf("snapshot has %d values, want 33", len(snap.Values))
	}
	bogus, _ := metrics.NewSchema([]string{"not_a_metric"})
	if _, err := vm.Snapshot(bogus, 0); err == nil {
		t.Error("unknown metric in schema: want error")
	}
}

func TestCPUBoundJobSaturatesCPUMetric(t *testing.T) {
	job := &stubJob{name: "cpu", demand: Demand{CPUSeconds: 1, CPUSystemShare: 0.03, WorkingSetKB: 50000}}
	h, vm := singleVMHost(t, VMConfig{Name: "vm1"}, HostConfig{Name: "h1"}, job)
	for i := 0; i < 30; i++ {
		h.Tick(time.Duration(i) * time.Second)
	}
	s := vm.Sample()
	if s[metrics.CPUUser] < 85 {
		t.Errorf("cpu_user = %v, want near 97 for a CPU-bound job", s[metrics.CPUUser])
	}
	if s[metrics.IOBI] > 50 || s[metrics.SwapIn] > 0 {
		t.Errorf("unexpected disk/swap activity: io_bi=%v swap_in=%v", s[metrics.IOBI], s[metrics.SwapIn])
	}
}

func TestIOBoundJobDrivesBlockMetrics(t *testing.T) {
	job := &stubJob{name: "io", demand: Demand{
		CPUSeconds: 0.2, CPUSystemShare: 0.6,
		ReadKB: 8000, WriteKB: 8000, DatasetKB: 2 * 1024 * 1024,
		WorkingSetKB: 30000,
	}}
	h, vm := singleVMHost(t, VMConfig{Name: "vm1"}, HostConfig{Name: "h1"}, job)
	for i := 0; i < 30; i++ {
		h.Tick(time.Duration(i) * time.Second)
	}
	s := vm.Sample()
	if s[metrics.IOBI] < 1000 {
		t.Errorf("io_bi = %v, want >1000 blocks/s for an I/O-bound job", s[metrics.IOBI])
	}
	if s[metrics.IOBO] < 1000 {
		t.Errorf("io_bo = %v, want >1000 blocks/s", s[metrics.IOBO])
	}
	if s[metrics.SwapIn] != 0 {
		t.Errorf("swap_in = %v, want 0 without memory pressure", s[metrics.SwapIn])
	}
	if s[metrics.CPUUser] > 40 {
		t.Errorf("cpu_user = %v, want low for an I/O-bound job", s[metrics.CPUUser])
	}
}

func TestMemoryOverflowCausesPaging(t *testing.T) {
	// Working set 1.5x the VM memory forces sustained swap traffic.
	job := &stubJob{name: "mem", demand: Demand{
		CPUSeconds: 1, CPUSystemShare: 0.1,
		WorkingSetKB: 1.5 * 256 * 1024,
	}}
	h, vm := singleVMHost(t, VMConfig{Name: "vm1"}, HostConfig{Name: "h1"}, job)
	for i := 0; i < 30; i++ {
		h.Tick(time.Duration(i) * time.Second)
	}
	s := vm.Sample()
	if s[metrics.SwapIn] < 500 || s[metrics.SwapOut] < 500 {
		t.Errorf("swap rates = (%v,%v), want sustained paging", s[metrics.SwapIn], s[metrics.SwapOut])
	}
	if s[metrics.MemCached] > 2*minCacheKB {
		t.Errorf("mem_cached = %v, want collapsed cache under pressure", s[metrics.MemCached])
	}
	if s[metrics.SwapFree] >= s[metrics.SwapTotal] {
		t.Error("swap_free did not drop under overflow")
	}
	// Paging must slow compute progress.
	last := job.grants[len(job.grants)-1]
	if last.CPUEfficiency >= 1 {
		t.Errorf("CPUEfficiency = %v, want < 1 while paging", last.CPUEfficiency)
	}
}

func TestBufferCacheAbsorbsReadsWhenDatasetFits(t *testing.T) {
	// Dataset (50 MB) fits in the 256 MB VM's cache: reads should be
	// served with almost no physical traffic.
	job := &stubJob{name: "cached", demand: Demand{
		CPUSeconds: 0.8, CPUSystemShare: 0.1,
		ReadKB: 5000, DatasetKB: 50 * 1024, WorkingSetKB: 40000,
	}}
	h, vm := singleVMHost(t, VMConfig{Name: "vm1"}, HostConfig{Name: "h1"}, job)
	for i := 0; i < 20; i++ {
		h.Tick(time.Duration(i) * time.Second)
	}
	s := vm.Sample()
	if s[metrics.IOBI] > 100 {
		t.Errorf("io_bi = %v, want near zero with a fully cached dataset", s[metrics.IOBI])
	}
	last := job.grants[len(job.grants)-1]
	if last.ReadKB < 4999 {
		t.Errorf("logical reads = %v, want full 5000 from cache", last.ReadKB)
	}
}

func TestSmallVMTurnsCachedReadsPhysical(t *testing.T) {
	// The same workload in a 32 MB VM (the SPECseis96 B configuration)
	// must hit the disk, because the cache collapses.
	job := &stubJob{name: "cached", demand: Demand{
		CPUSeconds: 0.8, CPUSystemShare: 0.1,
		ReadKB: 5000, DatasetKB: 50 * 1024, WorkingSetKB: 40000,
	}}
	h, vm := singleVMHost(t, VMConfig{Name: "vm1", MemKB: 32 * 1024, OSResidentKB: 12 * 1024}, HostConfig{Name: "h1"}, job)
	for i := 0; i < 20; i++ {
		h.Tick(time.Duration(i) * time.Second)
	}
	s := vm.Sample()
	if s[metrics.IOBI] < 1000 {
		t.Errorf("io_bi = %v, want heavy physical reads in a 32MB VM", s[metrics.IOBI])
	}
	if s[metrics.SwapIn] <= 0 {
		t.Errorf("swap_in = %v, want paging with 40MB working set in 32MB VM", s[metrics.SwapIn])
	}
}

func TestNetworkJobDrivesByteMetrics(t *testing.T) {
	job := &stubJob{name: "net", demand: Demand{
		CPUSeconds: 0.3, CPUSystemShare: 0.5,
		NetInKB: 2000, NetOutKB: 9000, WorkingSetKB: 20000,
	}}
	h, vm := singleVMHost(t, VMConfig{Name: "vm1"}, HostConfig{Name: "h1"}, job)
	for i := 0; i < 10; i++ {
		h.Tick(time.Duration(i) * time.Second)
	}
	s := vm.Sample()
	if s[metrics.BytesOut] < 8000*1024 {
		t.Errorf("bytes_out = %v, want ~9MB/s", s[metrics.BytesOut])
	}
	if s[metrics.BytesIn] < 1500*1024 {
		t.Errorf("bytes_in = %v, want ~2MB/s", s[metrics.BytesIn])
	}
	if s[metrics.PktsOut] < 1000 {
		t.Errorf("pkts_out = %v, want thousands", s[metrics.PktsOut])
	}
}

func TestIdleVMStaysQuiet(t *testing.T) {
	h, vm := singleVMHost(t, VMConfig{Name: "vm1"}, HostConfig{Name: "h1"})
	for i := 0; i < 10; i++ {
		h.Tick(time.Duration(i) * time.Second)
	}
	s := vm.Sample()
	if s[metrics.CPUUser] > 3 {
		t.Errorf("idle cpu_user = %v, want near 0", s[metrics.CPUUser])
	}
	if s[metrics.BytesOut] > 5000 {
		t.Errorf("idle bytes_out = %v, want daemon noise only", s[metrics.BytesOut])
	}
	if s[metrics.SwapIn] != 0 {
		t.Errorf("idle swap_in = %v, want 0", s[metrics.SwapIn])
	}
}

func TestTwoCPUJobsContendOnOneVCPU(t *testing.T) {
	a := &stubJob{name: "a", demand: Demand{CPUSeconds: 1, WorkingSetKB: 10000}, cpuWork: 30}
	b := &stubJob{name: "b", demand: Demand{CPUSeconds: 1, WorkingSetKB: 10000}, cpuWork: 30}
	h, _ := singleVMHost(t, VMConfig{Name: "vm1", VCPUs: 1}, HostConfig{Name: "h1", CPUs: 1}, a, b)
	for i := 0; i < 40; i++ {
		h.Tick(time.Duration(i) * time.Second)
	}
	// After 40s of a single shared CPU, neither 30-CPU-second job can be
	// done (each received ~20s).
	if a.Done() || b.Done() {
		t.Errorf("contended jobs finished too fast: a=%v b=%v", a.gotCPU, b.gotCPU)
	}
	if diff := a.gotCPU - b.gotCPU; diff > 1 || diff < -1 {
		t.Errorf("unfair CPU split: a=%v b=%v", a.gotCPU, b.gotCPU)
	}
}

func TestMixedClassJobsDoNotContend(t *testing.T) {
	cpu := &stubJob{name: "cpu", demand: Demand{CPUSeconds: 1, WorkingSetKB: 10000}, cpuWork: 25}
	io := &stubJob{name: "io", demand: Demand{CPUSeconds: 0.1, CPUSystemShare: 0.6, ReadKB: 10000, WriteKB: 5000, DatasetKB: 4e6, WorkingSetKB: 10000}}
	h, _ := singleVMHost(t, VMConfig{Name: "vm1", VCPUs: 2}, HostConfig{Name: "h1", CPUs: 2}, cpu, io)
	for i := 0; i < 30; i++ {
		h.Tick(time.Duration(i) * time.Second)
	}
	// The CPU job should finish essentially unimpeded (~25s + startup).
	if !cpu.Done() {
		t.Errorf("CPU job slowed by I/O job: got %v CPU-seconds in 30", cpu.gotCPU)
	}
}

func TestHostRejectsDuplicateVMName(t *testing.T) {
	h := NewHost(HostConfig{Name: "h1"})
	if err := h.AddVM(NewVM(VMConfig{Name: "vm1"})); err != nil {
		t.Fatal(err)
	}
	if err := h.AddVM(NewVM(VMConfig{Name: "vm1"})); err == nil {
		t.Error("duplicate VM name: want error")
	}
}

func TestVMDeterministicAcrossRuns(t *testing.T) {
	run := func() map[string]float64 {
		job := &stubJob{name: "x", demand: Demand{CPUSeconds: 0.5, ReadKB: 100, DatasetKB: 1e6, WorkingSetKB: 5000}}
		vm := NewVM(VMConfig{Name: "vm1", Seed: 4})
		vm.AddJob(job)
		h := NewHost(HostConfig{Name: "h1"})
		if err := h.AddVM(vm); err != nil {
			panic(err)
		}
		for i := 0; i < 15; i++ {
			h.Tick(time.Duration(i) * time.Second)
		}
		return vm.Sample()
	}
	a, b := run(), run()
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("nondeterministic metric %q: %v vs %v", k, v, b[k])
		}
	}
}
