package vmm

import (
	"errors"
	"testing"
	"time"
)

func newTestCluster(t *testing.T, jobs map[string][]Job) *Cluster {
	t.Helper()
	c := NewCluster()
	h := NewHost(HostConfig{Name: "h1"})
	if err := c.AddHost(h); err != nil {
		t.Fatal(err)
	}
	for vmName, js := range jobs {
		vm := NewVM(VMConfig{Name: vmName})
		for _, j := range js {
			vm.AddJob(j)
		}
		if err := h.AddVM(vm); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestClusterRunFor(t *testing.T) {
	c := newTestCluster(t, map[string][]Job{"vm1": nil})
	if err := c.RunFor(10 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if c.Now() != 10*time.Second {
		t.Errorf("Now = %v, want 10s", c.Now())
	}
}

func TestClusterObserverCalledPerTick(t *testing.T) {
	c := newTestCluster(t, map[string][]Job{"vm1": nil})
	var calls int
	c.Observe(func(time.Duration) { calls++ })
	if err := c.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Errorf("observer called %d times in 5s, want 5", calls)
	}
}

func TestClusterRunUntilAllDoneRecordsCompletion(t *testing.T) {
	job := &stubJob{name: "j1", demand: Demand{CPUSeconds: 1, WorkingSetKB: 1000}, cpuWork: 10}
	c := newTestCluster(t, map[string][]Job{"vm1": {job}})
	if err := c.RunUntilAllDone(time.Hour); err != nil {
		t.Fatalf("RunUntilAllDone: %v", err)
	}
	done, ok := c.CompletionTime("j1")
	if !ok {
		t.Fatal("completion time not recorded")
	}
	// 10 CPU-seconds of work on a dedicated CPU takes ~10 ticks.
	if done < 9*time.Second || done > 15*time.Second {
		t.Errorf("completion at %v, want ~10s", done)
	}
}

func TestClusterRunUntilAllDoneDeadline(t *testing.T) {
	job := &stubJob{name: "never", demand: Demand{CPUSeconds: 1, WorkingSetKB: 1000}, cpuWork: 1e12}
	c := newTestCluster(t, map[string][]Job{"vm1": {job}})
	err := c.RunUntilAllDone(30 * time.Second)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

func TestClusterFindVM(t *testing.T) {
	c := newTestCluster(t, map[string][]Job{"vm1": nil, "vm2": nil})
	if _, ok := c.FindVM("vm2"); !ok {
		t.Error("FindVM(vm2) not found")
	}
	if _, ok := c.FindVM("nope"); ok {
		t.Error("FindVM(nope) should not be found")
	}
	if len(c.VMs()) != 2 {
		t.Errorf("VMs = %d, want 2", len(c.VMs()))
	}
}

func TestClusterRejectsDuplicateHost(t *testing.T) {
	c := NewCluster()
	if err := c.AddHost(NewHost(HostConfig{Name: "h1"})); err != nil {
		t.Fatal(err)
	}
	if err := c.AddHost(NewHost(HostConfig{Name: "h1"})); err == nil {
		t.Error("duplicate host: want error")
	}
}

func TestClusterCompletionTimesCopy(t *testing.T) {
	job := &stubJob{name: "j1", demand: Demand{CPUSeconds: 1, WorkingSetKB: 1000}, cpuWork: 3}
	c := newTestCluster(t, map[string][]Job{"vm1": {job}})
	if err := c.RunUntilAllDone(time.Minute); err != nil {
		t.Fatal(err)
	}
	times := c.CompletionTimes()
	times["j1"] = 0
	if got, _ := c.CompletionTime("j1"); got == 0 {
		t.Error("CompletionTimes exposes internal map")
	}
}

func TestTwoHostsIsolateContention(t *testing.T) {
	// Two CPU jobs on separate single-CPU hosts should both finish in
	// ~work seconds, unlike on a shared host.
	c := NewCluster()
	for i, name := range []string{"h1", "h2"} {
		h := NewHost(HostConfig{Name: name, CPUs: 1})
		vm := NewVM(VMConfig{Name: []string{"vm1", "vm2"}[i], VCPUs: 1})
		vm.AddJob(&stubJob{name: []string{"a", "b"}[i], demand: Demand{CPUSeconds: 1, WorkingSetKB: 1000}, cpuWork: 20})
		if err := h.AddVM(vm); err != nil {
			t.Fatal(err)
		}
		if err := c.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.RunUntilAllDone(5 * time.Minute); err != nil {
		t.Fatalf("RunUntilAllDone: %v", err)
	}
	for _, j := range []string{"a", "b"} {
		done, ok := c.CompletionTime(j)
		if !ok || done > 25*time.Second {
			t.Errorf("job %s done at %v, want ~20s without contention", j, done)
		}
	}
}
