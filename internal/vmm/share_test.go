package vmm

import (
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestProportionalShareUnderCapacity(t *testing.T) {
	g := proportionalShare([]float64{1, 2, 3}, 10)
	for i, want := range []float64{1, 2, 3} {
		if !almostEqual(g[i], want, 1e-12) {
			t.Errorf("grant[%d] = %v, want %v", i, g[i], want)
		}
	}
}

func TestProportionalShareOverCapacity(t *testing.T) {
	g := proportionalShare([]float64{1, 1}, 1)
	if !almostEqual(g[0], 0.5, 1e-9) || !almostEqual(g[1], 0.5, 1e-9) {
		t.Errorf("grants = %v, want [0.5 0.5]", g)
	}
}

func TestProportionalShareZeroCapacity(t *testing.T) {
	g := proportionalShare([]float64{5, 5}, 0)
	if g[0] != 0 || g[1] != 0 {
		t.Errorf("grants = %v, want zeros", g)
	}
}

func TestProportionalShareEmpty(t *testing.T) {
	if g := proportionalShare(nil, 10); len(g) != 0 {
		t.Errorf("grants = %v, want empty", g)
	}
}

func TestProportionalShareNegativeDemand(t *testing.T) {
	g := proportionalShare([]float64{-3, 4}, 10)
	if g[0] != 0 {
		t.Errorf("negative demand granted %v, want 0", g[0])
	}
	if !almostEqual(g[1], 4, 1e-12) {
		t.Errorf("grant[1] = %v, want 4", g[1])
	}
}

// Properties: grants never exceed demand, never exceed capacity in
// total, and under contention the full capacity is used.
func TestProportionalShareProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		demands := make([]float64, n)
		var total float64
		for i := range demands {
			demands[i] = rng.Float64() * 100
			total += demands[i]
		}
		capacity := rng.Float64() * 150
		grants := proportionalShare(demands, capacity)
		var granted float64
		for i := range grants {
			if grants[i] > demands[i]+1e-9 {
				t.Fatalf("trial %d: grant %v exceeds demand %v", trial, grants[i], demands[i])
			}
			if grants[i] < 0 {
				t.Fatalf("trial %d: negative grant %v", trial, grants[i])
			}
			granted += grants[i]
		}
		if granted > capacity+1e-9 {
			t.Fatalf("trial %d: total granted %v exceeds capacity %v", trial, granted, capacity)
		}
		if total > capacity && !almostEqual(granted, capacity, 1e-6*(1+capacity)) {
			t.Fatalf("trial %d: contended but capacity unused: granted %v of %v", trial, granted, capacity)
		}
		if total <= capacity && !almostEqual(granted, total, 1e-9*(1+total)) {
			t.Fatalf("trial %d: uncontended but demand unmet: granted %v of %v", trial, granted, total)
		}
	}
}

// Property: equal demands receive equal grants.
func TestProportionalShareFairness(t *testing.T) {
	g := proportionalShare([]float64{7, 7, 7}, 9)
	for i := 1; i < 3; i++ {
		if !almostEqual(g[i], g[0], 1e-9) {
			t.Errorf("unequal grants for equal demands: %v", g)
		}
	}
	if !almostEqual(g[0], 3, 1e-9) {
		t.Errorf("grant = %v, want 3", g[0])
	}
}

func TestFraction(t *testing.T) {
	if fraction(5, 10) != 0.5 {
		t.Error("fraction(5,10) != 0.5")
	}
	if fraction(0, 0) != 1 {
		t.Error("fraction with zero demand should be 1 (fully served)")
	}
	if fraction(20, 10) != 1 {
		t.Error("fraction should clamp to 1")
	}
	if fraction(-1, 10) != 0 {
		t.Error("fraction should clamp to 0")
	}
}
