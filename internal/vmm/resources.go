// Package vmm simulates the paper's testbed substrate: physical hosts
// running VMware-GSX-style virtual machines that each execute one or
// more application jobs. The simulator advances in one-second ticks;
// each tick, jobs express logical resource demand (compute, file I/O,
// network traffic, memory working set), the VM translates file I/O into
// physical disk traffic through a buffer-cache model and memory pressure
// into swap traffic, and the host arbitrates the physical resources
// (CPU, disk bandwidth, NIC bandwidth) among its VMs by proportional
// sharing. The resulting per-VM activity is exposed through the same
// metric names a Ganglia gmond reports, so the classifier sees data with
// the same shape the paper's profiler collected.
package vmm

import "time"

// Demand is the logical resource demand of one job for one one-second
// tick. All quantities are "desired work this second"; the simulator
// may grant less under contention.
type Demand struct {
	// CPUSeconds is the compute time desired this tick. A
	// single-threaded job demands at most 1.0; multi-threaded jobs may
	// demand more.
	CPUSeconds float64
	// CPUSystemShare is the fraction of granted CPU time spent in the
	// kernel (system time) rather than user code. I/O- and
	// network-heavy jobs have high system shares.
	CPUSystemShare float64
	// ReadKB and WriteKB are logical file-system reads and writes. The
	// VM's buffer cache decides how much becomes physical disk traffic.
	ReadKB, WriteKB float64
	// DatasetKB is the size of the file set the job touches; the cache
	// hit ratio is the fraction of the dataset that fits in the cache.
	DatasetKB float64
	// NetInKB and NetOutKB are network receive and transmit demand.
	NetInKB, NetOutKB float64
	// WorkingSetKB is the resident memory the job needs this tick.
	WorkingSetKB float64
}

// IsZero reports whether the demand requests nothing.
func (d Demand) IsZero() bool {
	return d.CPUSeconds == 0 && d.ReadKB == 0 && d.WriteKB == 0 &&
		d.NetInKB == 0 && d.NetOutKB == 0 && d.WorkingSetKB == 0
}

// Grant is the share of a job's demand that was actually served in one
// tick, in the same logical units as Demand.
type Grant struct {
	CPUSeconds float64
	ReadKB     float64
	WriteKB    float64
	NetInKB    float64
	NetOutKB   float64
	// CPUEfficiency scales how much useful forward progress the granted
	// CPU time achieves. It drops below 1 when the VM is paging.
	CPUEfficiency float64
}

// Job is an application workload hosted by a VM. Implementations live in
// internal/workload.
type Job interface {
	// Name identifies the job instance.
	Name() string
	// Demand returns the job's logical demand for the next tick. A done
	// job must return the zero Demand.
	Demand(now time.Duration) Demand
	// Apply delivers the granted resources for the tick, advancing the
	// job's internal progress.
	Apply(g Grant, now time.Duration)
	// Done reports whether the job has finished all its work. Jobs that
	// model open-ended services (idle, interactive sessions) may never
	// report done.
	Done() bool
}
