package vmm

import (
	"fmt"
	"time"

	"repro/internal/simtime"
)

// Observer is notified after every completed simulation tick. The
// monitoring system (gmond agents, the profiler) attaches here.
type Observer func(now time.Duration)

// Cluster wires hosts to a simulated clock and runs the tick loop. It
// records the completion time of every job, which the scheduling
// experiments consume.
type Cluster struct {
	queue     *simtime.EventQueue
	hosts     []*Host
	observers []Observer
	completed map[string]time.Duration
	started   bool
	stopTick  func()
}

// NewCluster creates an empty cluster with a fresh clock.
func NewCluster() *Cluster {
	return &Cluster{
		queue:     simtime.NewEventQueue(simtime.NewClock()),
		completed: make(map[string]time.Duration),
	}
}

// AddHost registers a host. Host names must be unique.
func (c *Cluster) AddHost(h *Host) error {
	for _, existing := range c.hosts {
		if existing.Name() == h.Name() {
			return fmt.Errorf("vmm: cluster already has a host named %q", h.Name())
		}
	}
	c.hosts = append(c.hosts, h)
	return nil
}

// Hosts returns the registered hosts.
func (c *Cluster) Hosts() []*Host { return append([]*Host(nil), c.hosts...) }

// VMs returns every VM in the cluster.
func (c *Cluster) VMs() []*VM {
	var out []*VM
	for _, h := range c.hosts {
		out = append(out, h.VMs()...)
	}
	return out
}

// FindVM locates a VM by name.
func (c *Cluster) FindVM(name string) (*VM, bool) {
	for _, vm := range c.VMs() {
		if vm.Name() == name {
			return vm, true
		}
	}
	return nil, false
}

// Observe registers an observer called after each tick.
func (c *Cluster) Observe(o Observer) { c.observers = append(c.observers, o) }

// Queue exposes the underlying event queue so monitoring components can
// schedule their own periodic work (gmond announce intervals, profiler
// sampling).
func (c *Cluster) Queue() *simtime.EventQueue { return c.queue }

// Now returns the current simulated time.
func (c *Cluster) Now() time.Duration { return c.queue.Clock().Now() }

// start arms the per-tick simulation event.
func (c *Cluster) start() error {
	if c.started {
		return nil
	}
	stop, err := c.queue.Every(simtime.Tick, func(now time.Duration) {
		for _, h := range c.hosts {
			h.Tick(now)
		}
		c.recordCompletions(now)
		for _, o := range c.observers {
			o(now)
		}
	})
	if err != nil {
		return fmt.Errorf("vmm: arm tick loop: %w", err)
	}
	c.stopTick = stop
	c.started = true
	return nil
}

func (c *Cluster) recordCompletions(now time.Duration) {
	for _, h := range c.hosts {
		for _, vm := range h.vms {
			for _, j := range vm.jobs {
				if j.Done() {
					if _, seen := c.completed[j.Name()]; !seen {
						c.completed[j.Name()] = now
					}
				}
			}
		}
	}
}

// CompletionTime returns when the named job finished, if it has.
func (c *Cluster) CompletionTime(job string) (time.Duration, bool) {
	d, ok := c.completed[job]
	return d, ok
}

// CompletionTimes returns a copy of all recorded completions.
func (c *Cluster) CompletionTimes() map[string]time.Duration {
	out := make(map[string]time.Duration, len(c.completed))
	for k, v := range c.completed {
		out[k] = v
	}
	return out
}

// RunFor advances the simulation by d.
func (c *Cluster) RunFor(d time.Duration) error {
	if err := c.start(); err != nil {
		return err
	}
	return c.queue.RunUntil(c.Now() + d)
}

// ErrDeadline is returned by RunUntilAllDone when jobs are still running
// at the deadline.
var ErrDeadline = fmt.Errorf("vmm: jobs still running at deadline")

// RunUntilAllDone advances the simulation until every job on every VM
// reports done, or until maxDur elapses (returning ErrDeadline wrapped
// with the stragglers).
func (c *Cluster) RunUntilAllDone(maxDur time.Duration) error {
	if err := c.start(); err != nil {
		return err
	}
	deadline := c.Now() + maxDur
	for c.Now() < deadline {
		if c.allDone() {
			return nil
		}
		// Advance in coarse chunks to keep the loop cheap while still
		// detecting completion promptly.
		step := time.Minute
		if remaining := deadline - c.Now(); remaining < step {
			step = remaining
		}
		if err := c.queue.RunUntil(c.Now() + step); err != nil {
			return err
		}
	}
	if c.allDone() {
		return nil
	}
	var stragglers []string
	for _, h := range c.hosts {
		for _, vm := range h.vms {
			for _, j := range vm.jobs {
				if !j.Done() {
					stragglers = append(stragglers, j.Name())
				}
			}
		}
	}
	return fmt.Errorf("%w: %v", ErrDeadline, stragglers)
}

func (c *Cluster) allDone() bool {
	for _, h := range c.hosts {
		for _, vm := range h.vms {
			if !vm.AllDone() {
				return false
			}
		}
	}
	return true
}
