package vmm

import (
	"fmt"
	"math"
	"time"
)

// HostConfig describes a physical machine. Defaults approximate the
// paper's dual-CPU Xeon servers with a single IDE/SCSI disk and Gigabit
// Ethernet.
type HostConfig struct {
	// Name identifies the host.
	Name string
	// CPUs is the CPU capacity in CPU-seconds per second.
	CPUs float64
	// DiskKBps is the disk bandwidth in KB/s (1 KB = 1 vmstat block).
	DiskKBps float64
	// NetInKBps and NetOutKBps are NIC bandwidths per direction.
	NetInKBps, NetOutKBps float64
}

func (c *HostConfig) applyDefaults() {
	if c.CPUs == 0 {
		c.CPUs = 2
	}
	if c.DiskKBps == 0 {
		c.DiskKBps = 12000 // ~12 MB/s, a 2005-era virtualized IDE disk
	}
	if c.NetInKBps == 0 {
		c.NetInKBps = 35000 // Gigabit Ethernet through 2005-era VMM virtual NICs
	}
	if c.NetOutKBps == 0 {
		c.NetOutKBps = 35000
	}
}

// Host is a physical machine hosting VMs and arbitrating their physical
// resource demands each tick.
type Host struct {
	cfg HostConfig
	vms []*VM
}

// NewHost creates a host from cfg.
func NewHost(cfg HostConfig) *Host {
	cfg.applyDefaults()
	return &Host{cfg: cfg}
}

// Name returns the host name.
func (h *Host) Name() string { return h.cfg.Name }

// Config returns the host configuration.
func (h *Host) Config() HostConfig { return h.cfg }

// AddVM places a VM on the host.
func (h *Host) AddVM(vm *VM) error {
	for _, existing := range h.vms {
		if existing.Name() == vm.Name() {
			return fmt.Errorf("vmm: host %q already has a VM named %q", h.cfg.Name, vm.Name())
		}
	}
	h.vms = append(h.vms, vm)
	return nil
}

// VMs returns the hosted VMs.
func (h *Host) VMs() []*VM { return append([]*VM(nil), h.vms...) }

// RemoveVM tears down a VM (e.g. after its dedicated application
// finished), freeing the host's resources for future clones.
func (h *Host) RemoveVM(name string) error {
	for i, vm := range h.vms {
		if vm.Name() == name {
			h.vms = append(h.vms[:i], h.vms[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("vmm: host %q has no VM named %q", h.cfg.Name, name)
}

// Tick runs one simulation step: gather demand from every VM, arbitrate
// each physical resource by proportional sharing, and deliver grants.
func (h *Host) Tick(now time.Duration) {
	n := len(h.vms)
	if n == 0 {
		return
	}
	cpuD := make([]float64, n)
	diskD := make([]float64, n)
	inD := make([]float64, n)
	outD := make([]float64, n)
	for i, vm := range h.vms {
		vm.gatherDemand(now)
		cpuD[i] = vm.cur.cpu
		// The virtual devices bound what a VM can present to the host.
		diskD[i] = math.Min(vm.cur.disk, vm.cfg.DiskKBps)
		inD[i] = math.Min(vm.cur.netIn, vm.cfg.NetKBps)
		outD[i] = math.Min(vm.cur.netOut, vm.cfg.NetKBps)
	}
	cpuG := proportionalShare(cpuD, h.cfg.CPUs)
	diskG := proportionalShare(diskD, h.cfg.DiskKBps)
	inG := proportionalShare(inD, h.cfg.NetInKBps)
	outG := proportionalShare(outD, h.cfg.NetOutKBps)
	for i, vm := range h.vms {
		vm.applyGrants(cpuG[i], diskG[i], inG[i], outG[i], now)
	}
}
