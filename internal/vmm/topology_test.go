package vmm

import (
	"bytes"
	"strings"
	"testing"
)

func validTopology() Topology {
	return Topology{Hosts: []TopologyHost{
		{
			Name: "hostA", CPUs: 2, DiskKBps: 12000,
			VMs: []TopologyVM{
				{Name: "vm1", MemKB: 256 * 1024, VCPUs: 1},
				{Name: "vm2", MemKB: 32 * 1024},
			},
		},
		{Name: "hostB"},
	}}
}

func TestTopologyBuild(t *testing.T) {
	cluster, err := validTopology().Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(cluster.Hosts()) != 2 {
		t.Fatalf("hosts = %d", len(cluster.Hosts()))
	}
	vm, ok := cluster.FindVM("vm2")
	if !ok {
		t.Fatal("vm2 not built")
	}
	if vm.Config().MemKB != 32*1024 {
		t.Errorf("vm2 mem = %v", vm.Config().MemKB)
	}
	// Defaults applied to unspecified fields.
	if vm.Config().VCPUs != 1 {
		t.Errorf("vm2 vcpus = %v, want default 1", vm.Config().VCPUs)
	}
	if cluster.Hosts()[1].Config().CPUs != 2 {
		t.Errorf("hostB cpus = %v, want default 2", cluster.Hosts()[1].Config().CPUs)
	}
}

func TestTopologyValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Topology)
	}{
		{"no hosts", func(t *Topology) { t.Hosts = nil }},
		{"unnamed host", func(t *Topology) { t.Hosts[0].Name = "" }},
		{"dup host", func(t *Topology) { t.Hosts[1].Name = "hostA" }},
		{"negative cpus", func(t *Topology) { t.Hosts[0].CPUs = -1 }},
		{"unnamed vm", func(t *Topology) { t.Hosts[0].VMs[0].Name = "" }},
		{"dup vm", func(t *Topology) { t.Hosts[0].VMs[1].Name = "vm1" }},
		{"negative mem", func(t *Topology) { t.Hosts[0].VMs[0].MemKB = -1 }},
	}
	for _, c := range cases {
		topo := validTopology()
		c.mut(&topo)
		if err := topo.Validate(); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestTopologyJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := validTopology().WriteTopology(&buf); err != nil {
		t.Fatalf("WriteTopology: %v", err)
	}
	back, err := ReadTopology(&buf)
	if err != nil {
		t.Fatalf("ReadTopology: %v", err)
	}
	if len(back.Hosts) != 2 || back.Hosts[0].VMs[1].Name != "vm2" {
		t.Errorf("round trip = %+v", back)
	}
}

func TestReadTopologyRejectsUnknownFields(t *testing.T) {
	in := `{"hosts":[{"name":"h","warp_drive":9}]}`
	if _, err := ReadTopology(strings.NewReader(in)); err == nil {
		t.Error("unknown field: want error")
	}
	if _, err := ReadTopology(strings.NewReader("junk")); err == nil {
		t.Error("garbage: want error")
	}
	if _, err := ReadTopology(strings.NewReader(`{"hosts":[]}`)); err == nil {
		t.Error("empty hosts: want error")
	}
}

func TestLoadTopologyMissingFile(t *testing.T) {
	if _, err := LoadTopology("/does/not/exist.json"); err == nil {
		t.Error("missing file: want error")
	}
}
