package vmm

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"time"

	"repro/internal/metrics"
)

// VMConfig describes a virtual machine. Defaults mirror the paper's
// testbed VMs (VMware GSX guests with 256 MB memory on dual-CPU hosts).
type VMConfig struct {
	// Name identifies the VM; it doubles as the monitoring node name
	// (the paper's "VMIP").
	Name string
	// MemKB is the configured guest memory.
	MemKB float64
	// VCPUs is the number of virtual CPUs.
	VCPUs float64
	// OSResidentKB is guest-kernel plus daemon resident memory,
	// unavailable to applications or cache.
	OSResidentKB float64
	// DiskKBps caps the VM's virtual disk throughput (the virtual IDE
	// device is slower than the host disk), so co-locating several
	// I/O-heavy jobs in one VM hurts more than spreading them.
	DiskKBps float64
	// NetKBps caps the VM's virtual NIC throughput per direction.
	NetKBps float64
	// Seed randomizes the background daemon noise.
	Seed int64
}

func (c *VMConfig) applyDefaults() {
	if c.MemKB == 0 {
		c.MemKB = 256 * 1024
	}
	if c.VCPUs == 0 {
		c.VCPUs = 1
	}
	if c.OSResidentKB == 0 {
		c.OSResidentKB = 24 * 1024
		// Small guests run trimmed-down userlands; never let the OS
		// claim more than 40% of memory.
		if cap := 0.4 * c.MemKB; c.OSResidentKB > cap {
			c.OSResidentKB = cap
		}
	}
	if c.DiskKBps == 0 {
		c.DiskKBps = 10000
	}
	if c.NetKBps == 0 {
		c.NetKBps = 16000
	}
}

// Memory/paging model constants.
const (
	// minCacheKB is the floor the guest kernel keeps for the buffer
	// cache even under memory pressure (the paper observed the
	// SPECseis96 B cache shrink to ~1 MB).
	minCacheKB = 1024
	// pagingTouchRate is the fraction of overflowed working set that
	// must be paged per second of CPU activity.
	pagingTouchRate = 0.08
	// maxPagingKBps caps swap traffic at a disk-realistic rate.
	maxPagingKBps = 12000
	// writeThroughFrac is the fraction of logical writes that reach the
	// disk instead of being absorbed by the page cache.
	writeThroughFrac = 0.85
	// pagingStallScaleKB controls how strongly swap traffic stalls
	// compute progress.
	pagingStallScaleKB = 6000
)

// vmDemand aggregates one tick of demand for a VM.
type vmDemand struct {
	jobDemands []Demand
	cpu        float64 // aggregate, capped at VCPUs
	physRead   []float64
	physWrite  []float64
	pagingKB   float64 // swap traffic demanded (each direction)
	disk       float64 // physical disk KB demanded in total
	netIn      float64
	netOut     float64
	cache      float64 // buffer cache size implied by working sets
	overflow   float64 // working-set overflow beyond guest memory
}

// VM is a simulated virtual machine hosting zero or more jobs.
type VM struct {
	cfg  VMConfig
	jobs []Job
	rng  *rand.Rand

	cur vmDemand // demand gathered this tick

	// Rolling metric state.
	sample      map[string]float64
	loadOne     float64
	loadFive    float64
	loadFifteen float64
	heartbeat   float64
	diskFreeGB  float64

	// Cumulative counters (KB, CPU-seconds) for tests and reports.
	TotalCPUSeconds float64
	TotalDiskKB     float64
	TotalNetKB      float64
	TotalSwapKB     float64
}

// NewVM creates a VM from cfg.
func NewVM(cfg VMConfig) *VM {
	cfg.applyDefaults()
	h := fnv.New64a()
	_, _ = h.Write([]byte(cfg.Name))
	seed := cfg.Seed ^ int64(h.Sum64())
	vm := &VM{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(seed)),
		sample:     make(map[string]float64, 33),
		diskFreeGB: 20,
	}
	vm.updateSample(vmDemand{cache: cfg.MemKB - cfg.OSResidentKB}, nil, grantTotals{})
	return vm
}

// Name returns the VM (node) name.
func (vm *VM) Name() string { return vm.cfg.Name }

// Config returns the VM configuration.
func (vm *VM) Config() VMConfig { return vm.cfg }

// AddJob assigns a job to the VM.
func (vm *VM) AddJob(j Job) { vm.jobs = append(vm.jobs, j) }

// Jobs returns the hosted jobs.
func (vm *VM) Jobs() []Job { return append([]Job(nil), vm.jobs...) }

// AllDone reports whether every hosted job is done. A VM with no jobs is
// considered done (idle).
func (vm *VM) AllDone() bool {
	for _, j := range vm.jobs {
		if !j.Done() {
			return false
		}
	}
	return true
}

// gatherDemand queries all jobs and computes the VM's physical demand
// for the tick.
func (vm *VM) gatherDemand(now time.Duration) {
	d := vmDemand{
		jobDemands: make([]Demand, len(vm.jobs)),
		physRead:   make([]float64, len(vm.jobs)),
		physWrite:  make([]float64, len(vm.jobs)),
	}
	var totalWS float64
	for i, j := range vm.jobs {
		jd := j.Demand(now)
		if jd.CPUSeconds > vm.cfg.VCPUs {
			jd.CPUSeconds = vm.cfg.VCPUs
		}
		d.jobDemands[i] = jd
		d.cpu += jd.CPUSeconds
		d.netIn += jd.NetInKB
		d.netOut += jd.NetOutKB
		totalWS += jd.WorkingSetKB
	}
	if d.cpu > vm.cfg.VCPUs {
		d.cpu = vm.cfg.VCPUs
	}

	// Memory model: working sets plus the OS claim memory first; what is
	// left becomes buffer cache; overflow becomes paging pressure.
	avail := vm.cfg.MemKB - vm.cfg.OSResidentKB
	if totalWS > avail {
		d.overflow = totalWS - avail
		d.cache = minCacheKB
	} else {
		d.cache = avail - totalWS
		if d.cache < minCacheKB {
			d.cache = minCacheKB
		}
	}
	cpuActivity := math.Min(1, d.cpu)
	if d.overflow > 0 && cpuActivity > 0 {
		d.pagingKB = math.Min(d.overflow*pagingTouchRate*cpuActivity, maxPagingKBps)
	}

	// Buffer-cache model: the hit ratio is the cached fraction of each
	// job's dataset; misses and write-through traffic become physical.
	for i, jd := range d.jobDemands {
		miss := 1.0
		if jd.DatasetKB > 0 {
			hit := math.Min(1, d.cache/jd.DatasetKB)
			miss = 1 - hit
		}
		d.physRead[i] = jd.ReadKB * miss
		d.physWrite[i] = jd.WriteKB * writeThroughFrac
		d.disk += d.physRead[i] + d.physWrite[i]
	}
	d.disk += 2 * d.pagingKB // swap-in plus swap-out
	vm.cur = d
}

// grantTotals captures the physical grants a host gave a VM for one tick.
type grantTotals struct {
	cpu      float64
	disk     float64
	netIn    float64
	netOut   float64
	swapIn   float64
	swapOut  float64
	fileRead float64
	fileWrt  float64
	cpuEff   float64
}

// applyGrants distributes the host's physical grants back to jobs and
// refreshes the VM's metric sample.
func (vm *VM) applyGrants(cpu, disk, netIn, netOut float64, now time.Duration) {
	d := vm.cur
	g := grantTotals{cpu: cpu, netIn: netIn, netOut: netOut, cpuEff: 1}

	// Swap traffic has kernel priority on the disk.
	pagingNeed := 2 * d.pagingKB
	pagingGrant := math.Min(disk, pagingNeed)
	g.swapIn = pagingGrant / 2
	g.swapOut = pagingGrant / 2
	diskLeft := disk - pagingGrant

	// Remaining disk bandwidth is shared among the jobs' file traffic.
	fileDemands := make([]float64, len(vm.jobs))
	for i := range vm.jobs {
		fileDemands[i] = d.physRead[i] + d.physWrite[i]
	}
	fileGrants := proportionalShare(fileDemands, diskLeft)

	// Paging stalls compute: progress scales with how much of the
	// needed swap traffic was served, and degrades further with the
	// absolute swap rate (thrashing).
	if pagingNeed > 0 {
		served := fraction(pagingGrant, pagingNeed)
		g.cpuEff = served / (1 + pagingGrant/pagingStallScaleKB)
	}

	// Distribute CPU and network proportionally to per-job demand.
	cpuDemands := make([]float64, len(vm.jobs))
	inDemands := make([]float64, len(vm.jobs))
	outDemands := make([]float64, len(vm.jobs))
	for i, jd := range d.jobDemands {
		cpuDemands[i] = jd.CPUSeconds
		inDemands[i] = jd.NetInKB
		outDemands[i] = jd.NetOutKB
	}
	cpuGrants := proportionalShare(cpuDemands, cpu)
	inGrants := proportionalShare(inDemands, netIn)
	outGrants := proportionalShare(outDemands, netOut)

	for i, j := range vm.jobs {
		jd := d.jobDemands[i]
		jg := Grant{
			CPUSeconds:    cpuGrants[i],
			NetInKB:       inGrants[i],
			NetOutKB:      outGrants[i],
			CPUEfficiency: g.cpuEff,
		}
		// Convert the physical file grant back to logical progress.
		if fd := fileDemands[i]; fd > 0 {
			served := fileGrants[i] / fd
			// Reads: the cached fraction is free; misses progress with
			// the disk grant.
			if jd.ReadKB > 0 {
				if d.physRead[i] > 0 {
					jg.ReadKB = jd.ReadKB * served
				} else {
					jg.ReadKB = jd.ReadKB
				}
			}
			if jd.WriteKB > 0 {
				jg.WriteKB = jd.WriteKB * served
			}
			g.fileRead += d.physRead[i] * served
			g.fileWrt += d.physWrite[i] * served
		} else {
			// Fully cached (or no) file traffic is served instantly.
			jg.ReadKB = jd.ReadKB
			jg.WriteKB = jd.WriteKB
		}
		j.Apply(jg, now)
	}
	g.disk = g.fileRead + g.fileWrt + g.swapIn + g.swapOut

	vm.TotalCPUSeconds += g.cpu
	vm.TotalDiskKB += g.disk
	vm.TotalNetKB += g.netIn + g.netOut
	vm.TotalSwapKB += g.swapIn + g.swapOut

	vm.updateSample(d, d.jobDemands, g)
}

// noise returns a small non-negative random perturbation modeling
// background daemons.
func (vm *VM) noise(scale float64) float64 {
	return math.Abs(vm.rng.NormFloat64()) * scale
}

// updateSample recomputes the gmond-visible metric map after a tick.
func (vm *VM) updateSample(d vmDemand, jobDemands []Demand, g grantTotals) {
	s := vm.sample
	cfg := vm.cfg
	vm.heartbeat++

	// CPU percentages. Granted CPU splits into user and system time by
	// the demand-weighted system share.
	sysShare := 0.0
	if len(jobDemands) > 0 {
		var wsum, w float64
		for _, jd := range jobDemands {
			wsum += jd.CPUSeconds * jd.CPUSystemShare
			w += jd.CPUSeconds
		}
		if w > 0 {
			sysShare = wsum / w
		}
	}
	// Only the useful fraction of granted CPU shows as user/system
	// time; page-fault stalls surface as I/O wait, as vmstat reports
	// for a thrashing guest.
	busy := 100 * g.cpu * g.cpuEff / cfg.VCPUs
	stall := 100 * g.cpu * (1 - g.cpuEff) / cfg.VCPUs
	user := busy*(1-sysShare) + vm.noise(0.4)
	system := busy*sysShare + vm.noise(0.3)
	// I/O wait: paging stalls plus unserved disk demand, within the idle
	// headroom.
	wio := stall
	if d.disk > 0 {
		wio += 35 * (1 - fraction(g.disk, d.disk))
		wio += 8 * fraction(g.disk, d.disk) * math.Min(1, d.disk/20000)
	}
	if user+system+wio > 100 {
		wio = math.Max(0, 100-user-system)
	}
	idle := math.Max(0, 100-user-system-wio)

	s[metrics.CPUNum] = cfg.VCPUs
	s[metrics.CPUSpeed] = 1800
	s[metrics.CPUUser] = user
	s[metrics.CPUNice] = 0
	s[metrics.CPUSystem] = system
	s[metrics.CPUIdle] = idle
	s[metrics.CPUWIO] = wio
	s[metrics.CPUAIdle] = math.Max(0, 100-busy)

	// Load averages: exponentially-weighted runnable-process counts.
	var runnable float64
	for _, jd := range jobDemands {
		if jd.CPUSeconds > 0.05 || jd.ReadKB+jd.WriteKB > 0 {
			runnable++
		}
	}
	vm.loadOne += (runnable - vm.loadOne) / 12
	vm.loadFive += (runnable - vm.loadFive) / 60
	vm.loadFifteen += (runnable - vm.loadFifteen) / 180
	s[metrics.LoadOne] = vm.loadOne
	s[metrics.LoadFive] = vm.loadFive
	s[metrics.LoadFifteen] = vm.loadFifteen
	s[metrics.ProcRun] = runnable
	s[metrics.ProcTotal] = 42 + float64(3*len(vm.jobs))

	// Memory split: OS + working sets + cache + small buffers; overflow
	// lives in swap.
	var ws float64
	for _, jd := range jobDemands {
		ws += jd.WorkingSetKB
	}
	resident := math.Min(ws, cfg.MemKB-cfg.OSResidentKB)
	buffers := 0.02 * cfg.MemKB
	free := math.Max(0.01*cfg.MemKB, cfg.MemKB-cfg.OSResidentKB-resident-d.cache-buffers)
	s[metrics.MemTotal] = cfg.MemKB
	s[metrics.MemFree] = free
	s[metrics.MemShared] = 0
	s[metrics.MemBuffers] = buffers
	s[metrics.MemCached] = d.cache
	swapTotal := 2 * cfg.MemKB
	s[metrics.SwapTotal] = swapTotal
	s[metrics.SwapFree] = math.Max(0, swapTotal-d.overflow)

	// Network rates (gmond reports bytes/s and packets/s).
	bytesIn := g.netIn*1024 + vm.noise(200)
	bytesOut := g.netOut*1024 + vm.noise(200)
	s[metrics.BytesIn] = bytesIn
	s[metrics.BytesOut] = bytesOut
	s[metrics.PktsIn] = bytesIn/1448 + vm.noise(0.5)
	s[metrics.PktsOut] = bytesOut/1448 + vm.noise(0.5)

	// Disk gauges.
	vm.diskFreeGB = math.Max(1, vm.diskFreeGB-g.fileWrt/(1024*1024*50))
	s[metrics.DiskTotal] = 40
	s[metrics.DiskFree] = vm.diskFreeGB
	s[metrics.PartMaxUsed] = 100 * (1 - vm.diskFreeGB/40)
	s[metrics.Boottime] = 0
	s[metrics.Heartbeat] = vm.heartbeat

	// vmstat additions: blocks (1 KB) per second, including swap
	// traffic, plus the separate swap rates.
	s[metrics.IOBI] = g.fileRead + g.swapIn + vm.noise(1.5)
	s[metrics.IOBO] = g.fileWrt + g.swapOut + vm.noise(1.5)
	s[metrics.SwapIn] = g.swapIn
	s[metrics.SwapOut] = g.swapOut
}

// Sample returns a copy of the most recent metric values, keyed by the
// canonical metric names. It satisfies the ganglia package's
// MetricSource.
func (vm *VM) Sample() map[string]float64 {
	out := make(map[string]float64, len(vm.sample))
	for k, v := range vm.sample {
		out[k] = v
	}
	return out
}

// Snapshot renders the current sample against a schema, for direct trace
// capture without going through the monitoring bus.
func (vm *VM) Snapshot(schema *metrics.Schema, now time.Duration) (metrics.Snapshot, error) {
	vals := make([]float64, schema.Len())
	for i, name := range schema.Names() {
		v, ok := vm.sample[name]
		if !ok {
			return metrics.Snapshot{}, fmt.Errorf("vmm: VM %q has no metric %q", vm.cfg.Name, name)
		}
		vals[i] = v
	}
	return metrics.Snapshot{Time: now, Node: vm.cfg.Name, Values: vals}, nil
}
