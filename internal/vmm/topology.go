package vmm

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Topology is the JSON description of a simulated site: its physical
// hosts and the VMs placed on them. It lets CLI users configure custom
// testbeds without writing Go.
//
//	{
//	  "hosts": [
//	    {"name": "hostA", "cpus": 2, "disk_kbps": 12000,
//	     "vms": [{"name": "vm1", "mem_kb": 262144, "vcpus": 1}]}
//	  ]
//	}
type Topology struct {
	Hosts []TopologyHost `json:"hosts"`
}

// TopologyHost describes one host and its VMs.
type TopologyHost struct {
	Name       string       `json:"name"`
	CPUs       float64      `json:"cpus,omitempty"`
	DiskKBps   float64      `json:"disk_kbps,omitempty"`
	NetInKBps  float64      `json:"net_in_kbps,omitempty"`
	NetOutKBps float64      `json:"net_out_kbps,omitempty"`
	VMs        []TopologyVM `json:"vms,omitempty"`
}

// TopologyVM describes one VM.
type TopologyVM struct {
	Name     string  `json:"name"`
	MemKB    float64 `json:"mem_kb,omitempty"`
	VCPUs    float64 `json:"vcpus,omitempty"`
	DiskKBps float64 `json:"disk_kbps,omitempty"`
	NetKBps  float64 `json:"net_kbps,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
}

// Validate checks names and shapes without building anything.
func (t Topology) Validate() error {
	if len(t.Hosts) == 0 {
		return fmt.Errorf("vmm: topology has no hosts")
	}
	hostNames := map[string]bool{}
	vmNames := map[string]bool{}
	for i, h := range t.Hosts {
		if h.Name == "" {
			return fmt.Errorf("vmm: topology host %d has no name", i)
		}
		if hostNames[h.Name] {
			return fmt.Errorf("vmm: duplicate host name %q", h.Name)
		}
		hostNames[h.Name] = true
		if h.CPUs < 0 || h.DiskKBps < 0 || h.NetInKBps < 0 || h.NetOutKBps < 0 {
			return fmt.Errorf("vmm: host %q has negative capacity", h.Name)
		}
		for j, vm := range h.VMs {
			if vm.Name == "" {
				return fmt.Errorf("vmm: host %q VM %d has no name", h.Name, j)
			}
			if vmNames[vm.Name] {
				return fmt.Errorf("vmm: duplicate VM name %q", vm.Name)
			}
			vmNames[vm.Name] = true
			if vm.MemKB < 0 || vm.VCPUs < 0 || vm.DiskKBps < 0 || vm.NetKBps < 0 {
				return fmt.Errorf("vmm: VM %q has negative capacity", vm.Name)
			}
		}
	}
	return nil
}

// Build constructs a cluster from the topology.
func (t Topology) Build() (*Cluster, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	cluster := NewCluster()
	for _, th := range t.Hosts {
		host := NewHost(HostConfig{
			Name: th.Name, CPUs: th.CPUs, DiskKBps: th.DiskKBps,
			NetInKBps: th.NetInKBps, NetOutKBps: th.NetOutKBps,
		})
		for _, tv := range th.VMs {
			vm := NewVM(VMConfig{
				Name: tv.Name, MemKB: tv.MemKB, VCPUs: tv.VCPUs,
				DiskKBps: tv.DiskKBps, NetKBps: tv.NetKBps, Seed: tv.Seed,
			})
			if err := host.AddVM(vm); err != nil {
				return nil, err
			}
		}
		if err := cluster.AddHost(host); err != nil {
			return nil, err
		}
	}
	return cluster, nil
}

// ReadTopology decodes a topology from JSON.
func ReadTopology(r io.Reader) (Topology, error) {
	var t Topology
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return Topology{}, fmt.Errorf("vmm: decode topology: %w", err)
	}
	if err := t.Validate(); err != nil {
		return Topology{}, err
	}
	return t, nil
}

// LoadTopology reads a topology from a JSON file.
func LoadTopology(path string) (Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return Topology{}, fmt.Errorf("vmm: open topology: %w", err)
	}
	defer f.Close()
	return ReadTopology(f)
}

// WriteTopology encodes a topology as indented JSON.
func (t Topology) WriteTopology(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("vmm: encode topology: %w", err)
	}
	return nil
}
