package vmm

// proportionalShare divides capacity among demands using progressive
// filling (max-min fairness with proportional weights equal to the
// demands): no demand receives more than it asked for, and capacity
// freed by small demands is redistributed to larger ones. The returned
// slice is aligned with demands. Negative demands are treated as zero.
func proportionalShare(demands []float64, capacity float64) []float64 {
	grants := make([]float64, len(demands))
	if capacity <= 0 || len(demands) == 0 {
		return grants
	}
	remaining := make([]float64, len(demands))
	var total float64
	for i, d := range demands {
		if d < 0 {
			d = 0
		}
		remaining[i] = d
		total += d
	}
	if total <= capacity {
		copy(grants, remaining)
		return grants
	}
	// Progressive filling: repeatedly split the leftover capacity
	// proportionally; demands that saturate drop out. Terminates in at
	// most len(demands) rounds.
	left := capacity
	active := len(demands)
	for round := 0; round < len(demands) && left > 1e-12 && active > 0; round++ {
		var activeTotal float64
		for i := range remaining {
			if remaining[i] > 0 {
				activeTotal += remaining[i]
			}
		}
		if activeTotal <= 0 {
			break
		}
		if activeTotal <= left {
			for i := range remaining {
				if remaining[i] > 0 {
					grants[i] += remaining[i]
					left -= remaining[i]
					remaining[i] = 0
					active--
				}
			}
			break
		}
		share := left / activeTotal
		var consumed float64
		for i := range remaining {
			if remaining[i] <= 0 {
				continue
			}
			give := remaining[i] * share
			grants[i] += give
			remaining[i] -= give
			consumed += give
			if remaining[i] < 1e-12 {
				remaining[i] = 0
				active--
			}
		}
		left -= consumed
		// Pure proportional split consumes everything in one round; the
		// loop guard exists for numerical residue.
		if consumed <= 0 {
			break
		}
	}
	return grants
}

// fraction returns granted/demanded clamped to [0,1], treating a zero
// demand as fully served.
func fraction(granted, demanded float64) float64 {
	if demanded <= 0 {
		return 1
	}
	f := granted / demanded
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
