package vmm

import (
	"fmt"
	"testing"
	"time"
)

// benchJob is a mixed-demand job that never finishes.
type benchJob struct{ demand Demand }

func (b *benchJob) Name() string                { return "bench" }
func (b *benchJob) Demand(time.Duration) Demand { return b.demand }
func (b *benchJob) Apply(Grant, time.Duration)  {}
func (b *benchJob) Done() bool                  { return false }

// BenchmarkHostTick measures one arbitration step of a loaded host —
// the simulator's inner loop.
func BenchmarkHostTick(b *testing.B) {
	host := NewHost(HostConfig{Name: "h"})
	for v := 0; v < 4; v++ {
		vm := NewVM(VMConfig{Name: fmt.Sprintf("vm%d", v)})
		for j := 0; j < 3; j++ {
			vm.AddJob(&benchJob{demand: Demand{
				CPUSeconds: 0.5, CPUSystemShare: 0.3,
				ReadKB: 2000, WriteKB: 1500, DatasetKB: 4e5,
				NetInKB: 800, NetOutKB: 1200, WorkingSetKB: 5e4,
			}})
		}
		if err := host.AddVM(vm); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		host.Tick(time.Duration(i) * time.Second)
	}
}

// BenchmarkClusterScale measures a full simulated second across a
// 50-host, 200-VM cluster — the scale a Grid-site scheduler would
// model.
func BenchmarkClusterScale(b *testing.B) {
	cluster := NewCluster()
	for h := 0; h < 50; h++ {
		host := NewHost(HostConfig{Name: fmt.Sprintf("h%d", h)})
		for v := 0; v < 4; v++ {
			vm := NewVM(VMConfig{Name: fmt.Sprintf("h%d-vm%d", h, v)})
			vm.AddJob(&benchJob{demand: Demand{
				CPUSeconds: 0.8, ReadKB: 3000, DatasetKB: 8e5,
				NetOutKB: 2000, WorkingSetKB: 8e4,
			}})
			if err := host.AddVM(vm); err != nil {
				b.Fatal(err)
			}
		}
		if err := cluster.AddHost(host); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cluster.RunFor(time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func TestHostTickNoVMs(t *testing.T) {
	host := NewHost(HostConfig{Name: "empty"})
	host.Tick(0) // must not panic
}

func TestVMHugeDemandIsCappedByHost(t *testing.T) {
	job := &stubJob{name: "greedy", demand: Demand{
		CPUSeconds: 1e6, ReadKB: 1e9, DatasetKB: 0, NetOutKB: 1e9, WorkingSetKB: 1000,
	}}
	h, vm := singleVMHost(t, VMConfig{Name: "vm1"}, HostConfig{Name: "h1"}, job)
	for i := 0; i < 5; i++ {
		h.Tick(time.Duration(i) * time.Second)
	}
	g := job.grants[len(job.grants)-1]
	if g.CPUSeconds > vm.Config().VCPUs {
		t.Errorf("granted %v CPU-seconds, VM has %v vCPUs", g.CPUSeconds, vm.Config().VCPUs)
	}
	if g.ReadKB > h.Config().DiskKBps {
		t.Errorf("granted %v KB reads, disk does %v", g.ReadKB, h.Config().DiskKBps)
	}
	if g.NetOutKB > h.Config().NetOutKBps {
		t.Errorf("granted %v KB out, NIC does %v", g.NetOutKB, h.Config().NetOutKBps)
	}
}

func TestVMDeviceCapsLimitThroughput(t *testing.T) {
	// Host disk is fast; the VM's virtual disk cap must still bind.
	job := &stubJob{name: "io", demand: Demand{
		CPUSeconds: 0.1, ReadKB: 50000, DatasetKB: 0, WorkingSetKB: 1000,
	}}
	h, _ := singleVMHost(t,
		VMConfig{Name: "vm1", DiskKBps: 5000},
		HostConfig{Name: "h1", DiskKBps: 100000}, job)
	for i := 0; i < 5; i++ {
		h.Tick(time.Duration(i) * time.Second)
	}
	g := job.grants[len(job.grants)-1]
	if g.ReadKB > 5000*1.01 {
		t.Errorf("virtual disk cap not enforced: granted %v KB/s", g.ReadKB)
	}
}
