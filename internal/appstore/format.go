package appstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"repro/internal/appclass"
)

// On-disk format. A segment file starts with an 8-byte header (magic +
// format version) and carries a sequence of frames:
//
//	uint32 payload length | uint32 CRC32C of payload | payload
//
// all little-endian, the framing idiom proven in internal/wal: a torn
// frame header reads as garbage length/CRC, a torn payload fails the
// CRC, and either stops a scan cleanly at the last valid record.
//
// A record payload leads with a fixed binary meta header — everything
// the in-memory index needs (sequence number, finalize time,
// application, class, verdict, model hash, execution time, sample
// count, composition, fingerprint flag) — followed by the full record
// as JSON. Rebuilding the index on open therefore decodes only the
// cheap meta headers and skips every JSON body, which is what lets a
// million-record store open in seconds; the JSON body is decoded
// lazily, one pread per record actually fetched.
//
//	byte kind (1=record) | u64 seq | i64 finalized-at-ns |
//	u16 len(app) | app | u8 len(class) | class |
//	u8 len(verdict) | verdict | u8 len(model) | model |
//	i64 exec-ns | u32 samples | u32 gaps |
//	u8 ncomp | ncomp × (u8 len(class) | class | f64 fraction) |
//	u8 flags (bit0: has fingerprint) | u32 len(json) | json
//
// Deletions are not stored in segments: the tombstone set lives in a
// small atomically rewritten sidecar file (see tombstones.go), so a
// segment is immutable from creation to compaction.
const (
	segVersion = 1
	headerSize = 8 // magic + version
	frameSize  = 8 // length + CRC
	// maxPayload rejects garbage frame lengths before any allocation: a
	// record with full training reservoirs stays well under 16 MiB.
	maxPayload = 16 << 20
	// maxName bounds every length-prefixed string in the meta header.
	maxName = 1 << 10

	kindRecord = 1
)

var (
	segMagic   = [4]byte{'A', 'C', 'D', 'B'}
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// meta is the decoded fixed header of one record: the slice of a
// Record the index keeps in memory.
type meta struct {
	seq     uint64
	at      int64
	app     string
	class   appclass.Class
	verdict appclass.Class
	model   string
	exec    time.Duration
	samples int
	gaps    int
	comp    []compEntry
	hasFP   bool
}

// compEntry is one composition fraction, kept as a slice rather than a
// map so a million index entries do not cost a million map headers.
type compEntry struct {
	class appclass.Class
	frac  float64
}

// appendRecordPayload encodes a record payload (meta header + JSON
// body) onto buf. The caller frames it.
func appendRecordPayload(buf []byte, seq uint64, r *Record) ([]byte, error) {
	if len(r.App) == 0 || len(r.App) > maxName {
		return buf, fmt.Errorf("appstore: app name length %d outside [1,%d]", len(r.App), maxName)
	}
	if len(r.Class) > 255 || len(r.Verdict) > 255 || len(r.ModelID) > 255 {
		return buf, fmt.Errorf("appstore: class/verdict/model label too long for %q", r.App)
	}
	if len(r.Composition) > 255 {
		return buf, fmt.Errorf("appstore: composition with %d classes for %q", len(r.Composition), r.App)
	}
	body, err := json.Marshal(r)
	if err != nil {
		return buf, fmt.Errorf("appstore: encode record for %q: %w", r.App, err)
	}
	buf = append(buf, kindRecord)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.FinalizedAt))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.App)))
	buf = append(buf, r.App...)
	buf = append(buf, byte(len(r.Class)))
	buf = append(buf, r.Class...)
	buf = append(buf, byte(len(r.Verdict)))
	buf = append(buf, r.Verdict...)
	buf = append(buf, byte(len(r.ModelID)))
	buf = append(buf, r.ModelID...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.ExecutionTime))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Samples))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Gaps))
	buf = append(buf, byte(len(r.Composition)))
	for _, c := range appclass.All() {
		f, ok := r.Composition[c]
		if !ok {
			continue
		}
		buf = append(buf, byte(len(c)))
		buf = append(buf, c...)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	}
	// Composition may legally carry only valid classes (Validate enforces
	// it), so the canonical-order walk above covered every entry.
	var flags byte
	if r.Fingerprint != nil && !r.Fingerprint.Empty() {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
	buf = append(buf, body...)
	return buf, nil
}

// decodeMeta parses the fixed header of a record payload, returning the
// meta and the JSON body. Any malformation is an error; scans treat it
// like a CRC failure.
func decodeMeta(p []byte) (meta, []byte, error) {
	var m meta
	if len(p) < 1 || p[0] != kindRecord {
		return m, nil, fmt.Errorf("appstore: unknown payload kind")
	}
	p = p[1:]
	if len(p) < 16 {
		return m, nil, fmt.Errorf("appstore: payload too short")
	}
	m.seq = binary.LittleEndian.Uint64(p[:8])
	m.at = int64(binary.LittleEndian.Uint64(p[8:16]))
	p = p[16:]
	if len(p) < 2 {
		return m, nil, fmt.Errorf("appstore: payload too short")
	}
	appLen := int(binary.LittleEndian.Uint16(p[:2]))
	p = p[2:]
	if appLen == 0 || appLen > maxName || appLen > len(p) {
		return m, nil, fmt.Errorf("appstore: app name length %d invalid", appLen)
	}
	m.app = string(p[:appLen])
	p = p[appLen:]
	var err error
	var s string
	if s, p, err = decodeStr8(p); err != nil {
		return m, nil, err
	}
	m.class = appclass.Class(s)
	if s, p, err = decodeStr8(p); err != nil {
		return m, nil, err
	}
	m.verdict = appclass.Class(s)
	if m.model, p, err = decodeStr8(p); err != nil {
		return m, nil, err
	}
	if len(p) < 16 {
		return m, nil, fmt.Errorf("appstore: payload too short")
	}
	m.exec = time.Duration(binary.LittleEndian.Uint64(p[:8]))
	m.samples = int(binary.LittleEndian.Uint32(p[8:12]))
	m.gaps = int(binary.LittleEndian.Uint32(p[12:16]))
	p = p[16:]
	if len(p) < 1 {
		return m, nil, fmt.Errorf("appstore: payload too short")
	}
	ncomp := int(p[0])
	p = p[1:]
	if ncomp > 0 {
		m.comp = make([]compEntry, 0, ncomp)
	}
	for i := 0; i < ncomp; i++ {
		var cl string
		if cl, p, err = decodeStr8(p); err != nil {
			return m, nil, err
		}
		if len(p) < 8 {
			return m, nil, fmt.Errorf("appstore: payload too short")
		}
		m.comp = append(m.comp, compEntry{
			class: appclass.Class(cl),
			frac:  math.Float64frombits(binary.LittleEndian.Uint64(p[:8])),
		})
		p = p[8:]
	}
	if len(p) < 5 {
		return m, nil, fmt.Errorf("appstore: payload too short")
	}
	m.hasFP = p[0]&1 != 0
	bodyLen := int(binary.LittleEndian.Uint32(p[1:5]))
	p = p[5:]
	if bodyLen != len(p) {
		return m, nil, fmt.Errorf("appstore: json body is %d bytes, header says %d", len(p), bodyLen)
	}
	return m, p, nil
}

func decodeStr8(p []byte) (string, []byte, error) {
	if len(p) < 1 {
		return "", nil, fmt.Errorf("appstore: payload too short")
	}
	n := int(p[0])
	p = p[1:]
	if n > len(p) {
		return "", nil, fmt.Errorf("appstore: string length %d overruns payload", n)
	}
	return string(p[:n]), p[n:], nil
}

// decodeRecordPayload fully decodes a record payload: meta header plus
// JSON body.
func decodeRecordPayload(p []byte) (meta, Record, error) {
	m, body, err := decodeMeta(p)
	if err != nil {
		return m, Record{}, err
	}
	var r Record
	if err := json.Unmarshal(body, &r); err != nil {
		return m, Record{}, fmt.Errorf("appstore: decode record body (seq %d): %w", m.seq, err)
	}
	return m, r, nil
}
