package appstore

import (
	"encoding/binary"
	"fmt"
	"os"
)

// Prune keeps at most keep most-recent records per application,
// returning the number of records dropped — the same contract as the
// in-memory engine. An explicit Prune is an operator decision, so the
// retention floor does not apply. A keep of zero or less removes
// nothing.
func (s *Store) Prune(keep int) (int, error) {
	if keep <= 0 {
		return 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("appstore: store is closed")
	}
	dropped := 0
	for _, idxs := range s.byApp {
		live := 0
		for _, i := range idxs {
			if !s.entries[i].dead {
				live++
			}
		}
		excess := live - keep
		for _, i := range idxs {
			if excess <= 0 {
				break
			}
			if e := &s.entries[i]; !e.dead {
				s.markDeadLocked(e)
				dropped++
				excess--
			}
		}
	}
	if dropped == 0 {
		return 0, nil
	}
	s.stats.PrunedRecords += int64(dropped)
	if err := s.persistTombstonesLocked(); err != nil {
		return dropped, err
	}
	return dropped, s.compactLocked()
}

func (s *Store) markDeadLocked(e *entry) {
	e.dead = true
	s.segs[e.seg].live--
	s.segs[e.seg].dead++
}

// maybeRetainLocked applies the retention policy — expire by age, then
// cap total bytes — marking victims dead and compacting. The pruning
// floor protects every application's newest records and its newest
// fingerprinted record (the dictionary entry), so the fingerprint
// dictionary and the per-application retraining reservoirs never lose
// records still referenced. Called on segment rotation; errors are
// logged, not returned, because retention must never fail an append.
func (s *Store) maybeRetainLocked() {
	if s.opt.RetainAge <= 0 && s.opt.MaxBytes <= 0 {
		return
	}
	floor := s.opt.PruneFloor
	if floor < 0 {
		floor = 0
	}
	protected := make(map[int]bool)
	for _, idxs := range s.byApp {
		kept := 0
		fpSeen := false
		for i := len(idxs) - 1; i >= 0; i-- {
			e := &s.entries[idxs[i]]
			if e.dead {
				continue
			}
			if kept < floor {
				protected[idxs[i]] = true
				kept++
			}
			if !fpSeen && e.hasFP {
				protected[idxs[i]] = true
				fpSeen = true
			}
		}
	}
	marked := 0
	if s.opt.RetainAge > 0 {
		cutoff := s.opt.Now().Add(-s.opt.RetainAge).UnixNano()
		for i := range s.entries {
			e := &s.entries[i]
			// Records without a finalize stamp have unknown age; keep them.
			if !e.dead && !protected[i] && e.at > 0 && e.at < cutoff {
				s.markDeadLocked(e)
				marked++
			}
		}
	}
	if s.opt.MaxBytes > 0 {
		var total, deadBytes int64
		for _, info := range s.segs {
			total += info.size
		}
		for i := range s.entries {
			if s.entries[i].dead {
				deadBytes += s.entries[i].n
			}
		}
		// Oldest-first until the live remainder fits the cap.
		for i := range s.entries {
			if total-deadBytes <= s.opt.MaxBytes {
				break
			}
			e := &s.entries[i]
			if e.dead || protected[i] {
				continue
			}
			s.markDeadLocked(e)
			deadBytes += e.n
			marked++
		}
	}
	if marked == 0 {
		return
	}
	s.stats.PrunedRecords += int64(marked)
	s.opt.Logf("appstore: retention marked %d record(s) for removal", marked)
	if err := s.persistTombstonesLocked(); err != nil {
		s.opt.Logf("appstore: persist tombstones: %v", err)
		return
	}
	if err := s.compactLocked(); err != nil {
		s.opt.Logf("appstore: compaction: %v", err)
	}
}

// Compact rewrites closed segments that carry dead records, physically
// dropping them.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("appstore: store is closed")
	}
	return s.compactLocked()
}

// compactLocked copies the live records of every closed segment that
// carries dead ones into a fresh segment (raw frame bytes — payloads
// are immutable, so no re-encode), publishes it with an atomic rename,
// then deletes the victims. Crash anywhere in between is safe: before
// the rename the .tmp file is invisible (and swept at open); after it,
// records existing in both the new segment and an undeleted victim are
// deduplicated by sequence number at open.
func (s *Store) compactLocked() error {
	victims := make(map[uint64]bool)
	copies := 0
	for no, info := range s.segs {
		if no == s.seg || info.dead == 0 {
			continue
		}
		victims[no] = true
		copies += info.live
	}
	if len(victims) == 0 {
		return nil
	}
	var newSeg uint64
	newOff := make(map[uint64]int64) // seq -> offset in the new segment
	if copies > 0 {
		newSeg = s.nextSegNoLocked()
		path := segPath(s.dir, newSeg)
		tmp := path + ".tmp"
		f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("appstore: create %s: %w", tmp, err)
		}
		fail := func(err error) error {
			f.Close()
			os.Remove(tmp)
			return err
		}
		var hdr [headerSize]byte
		copy(hdr[:4], segMagic[:])
		binary.LittleEndian.PutUint32(hdr[4:8], segVersion)
		if _, err := f.Write(hdr[:]); err != nil {
			return fail(fmt.Errorf("appstore: write header %s: %w", tmp, err))
		}
		off := int64(headerSize)
		frame := make([]byte, 0, 4096)
		for i := range s.entries {
			e := &s.entries[i]
			if e.dead || !victims[e.seg] {
				continue
			}
			if cap(frame) < int(e.n) {
				frame = make([]byte, e.n)
			}
			frame = frame[:e.n]
			rd, err := s.readHandle(e.seg, s.segs[e.seg])
			if err != nil {
				return fail(fmt.Errorf("appstore: open victim segment %d: %w", e.seg, err))
			}
			if _, err := rd.ReadAt(frame, e.off); err != nil {
				return fail(fmt.Errorf("appstore: read record %d for compaction: %w", e.seq, err))
			}
			if _, err := f.Write(frame); err != nil {
				return fail(fmt.Errorf("appstore: write %s: %w", tmp, err))
			}
			newOff[e.seq] = off
			off += e.n
		}
		if err := f.Sync(); err != nil {
			return fail(fmt.Errorf("appstore: sync %s: %w", tmp, err))
		}
		if err := f.Close(); err != nil {
			os.Remove(tmp)
			return fmt.Errorf("appstore: close %s: %w", tmp, err)
		}
		if err := os.Rename(tmp, path); err != nil {
			os.Remove(tmp)
			return fmt.Errorf("appstore: publish segment %d: %w", newSeg, err)
		}
		if err := syncDir(s.dir); err != nil {
			return err
		}
		s.segs[newSeg] = &segInfo{size: off}
	}
	// The new segment is durable; deleting the victims is now safe (a
	// crash mid-delete leaves duplicates, deduplicated by seq at open).
	for no := range victims {
		info := s.segs[no]
		if info.rd != nil {
			info.rd.Close()
		}
		if err := os.Remove(segPath(s.dir, no)); err != nil {
			s.opt.Logf("appstore: delete compacted segment %d: %v", no, err)
		}
		delete(s.segs, no)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	// Rebuild the index: drop the dead entries that lived in victim
	// segments, repoint the copied ones.
	kept := s.entries[:0]
	removed := 0
	for i := range s.entries {
		e := s.entries[i]
		if victims[e.seg] {
			if e.dead {
				removed++
				continue
			}
			e.seg = newSeg
			e.off = newOff[e.seq]
		}
		kept = append(kept, e)
	}
	s.entries = kept
	s.rebuildIndexLocked()
	if copies > 0 {
		s.segs[newSeg].live = copies
	}
	s.stats.Compactions++
	s.stats.DroppedRecords += int64(removed)
	s.opt.Logf("appstore: compacted %d segment(s): dropped %d dead record(s), carried %d live", len(victims), removed, copies)
	return s.persistTombstonesLocked()
}
