package appstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/appclass"
)

// lastSegment returns the path of the highest-numbered segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var best uint64
	var path string
	for _, e := range ents {
		if no, ok := parseSegName(e.Name()); ok && no >= best {
			best, path = no, filepath.Join(dir, e.Name())
		}
	}
	if path == "" {
		t.Fatal("no segment files found")
	}
	return path
}

// TestCrashMidAppend kills an append partway through the frame — the
// classic torn tail — and asserts that reopening loses nothing before
// the tear and repairs the segment in place.
func TestCrashMidAppend(t *testing.T) {
	for _, tear := range []struct {
		name string
		cut  func(size int64) int64 // bytes to keep of the final frame's bed
	}{
		{"mid-payload", func(size int64) int64 { return size - 7 }},
		{"mid-frame-header", func(size int64) int64 { return size - 2 }},
		{"garbage-tail", func(size int64) int64 { return size }}, // keep all, then append junk
	} {
		t.Run(tear.name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "store")
			s := openTest(t, dir, Options{})
			const n = 12
			for i := 0; i < n; i++ {
				r := testRecord("vm", appclass.CPU, i)
				if err := s.Append(&r); err != nil {
					t.Fatal(err)
				}
			}
			s.Close()

			path := lastSegment(t, dir)
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if tear.name == "garbage-tail" {
				// A frame header written but payload garbage — what a crash
				// between write and fsync can leave on some filesystems.
				f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Write([]byte{0xFF, 0x13, 0x00, 0x00, 0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02}); err != nil {
					t.Fatal(err)
				}
				f.Close()
			} else {
				if err := os.Truncate(path, tear.cut(fi.Size())); err != nil {
					t.Fatal(err)
				}
			}

			s2 := openTest(t, dir, Options{})
			wantLost := 1
			if tear.name == "garbage-tail" {
				wantLost = 0 // all real records precede the junk
			}
			if got := s2.Len(); got != n-wantLost {
				t.Fatalf("Len after torn-tail reopen = %d, want %d", got, n-wantLost)
			}
			runs, err := s2.Runs("vm")
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range runs {
				if r.Samples != 10+i {
					t.Fatalf("record %d corrupted or out of order after repair", i)
				}
			}
			// The tail is repaired: appending works and survives another
			// reopen with no further loss.
			extra := testRecord("vm", appclass.CPU, 100)
			if err := s2.Append(&extra); err != nil {
				t.Fatal(err)
			}
			s2.Close()
			s3 := openTest(t, dir, Options{})
			if got := s3.Len(); got != n-wantLost+1 {
				t.Errorf("Len after repair+append+reopen = %d, want %d", got, n-wantLost+1)
			}
		})
	}
}

// TestCrashMidCompaction exercises both crash windows of a compaction:
// before the new segment's atomic rename (a stray .tmp must be swept,
// nothing lost) and after it but before the victims are deleted (the
// duplicated records must deduplicate by sequence number).
func TestCrashMidCompaction(t *testing.T) {
	build := func(t *testing.T) (string, int) {
		dir := filepath.Join(t.TempDir(), "store")
		s := openTest(t, dir, Options{SegmentBytes: 600})
		for i := 0; i < 12; i++ {
			r := testRecord("vm", appclass.CPU, i)
			if err := s.Append(&r); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.Prune(8); err != nil {
			t.Fatal(err)
		}
		got, err := s.Runs("vm")
		if err != nil {
			t.Fatal(err)
		}
		s.Close()
		return dir, len(got)
	}

	t.Run("before-rename", func(t *testing.T) {
		dir, want := build(t)
		// A compaction output that never got renamed into place.
		tmp := filepath.Join(dir, "store-99999999.seg.tmp")
		if err := os.WriteFile(tmp, []byte("half-written compaction output"), 0o644); err != nil {
			t.Fatal(err)
		}
		s := openTest(t, dir, Options{SegmentBytes: 600})
		if got := s.Len(); got != want {
			t.Errorf("Len = %d, want %d", got, want)
		}
		if _, err := os.Stat(tmp); !os.IsNotExist(err) {
			t.Errorf(".tmp file survived reopen: %v", err)
		}
	})

	t.Run("after-rename-duplicates", func(t *testing.T) {
		dir, want := build(t)
		// Duplicate the newest segment under a higher number — exactly the
		// state after a compaction renamed its output but crashed before
		// deleting a victim: the same sequence numbers exist twice.
		src := lastSegment(t, dir)
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "store-00009999.seg"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s := openTest(t, dir, Options{SegmentBytes: 600})
		if got := s.Len(); got != want {
			t.Errorf("Len with duplicated segment = %d, want %d (dedupe by seq failed?)", got, want)
		}
		runs, err := s.Runs("vm")
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]bool{}
		for _, r := range runs {
			if seen[r.Samples] {
				t.Fatalf("record Samples=%d returned twice", r.Samples)
			}
			seen[r.Samples] = true
		}
		// Every frame of the duplicated segment lost the dedup, so nothing
		// indexes into it and compaction would never visit it (live=0,
		// dead=0): reopen must reclaim the orphan, not leak it forever.
		if _, err := os.Stat(filepath.Join(dir, "store-00009999.seg")); !os.IsNotExist(err) {
			t.Errorf("fully duplicated segment survived reopen (stat err: %v)", err)
		}
		if st := s.Stats(); int64(st.LiveRecords) == 0 || st.Bytes != onDiskSegBytes(t, dir) {
			t.Errorf("Stats inconsistent after orphan cleanup: %+v vs %d on-disk bytes", st, onDiskSegBytes(t, dir))
		}
	})
}

// onDiskSegBytes sums the sizes of the directory's segment files.
func onDiskSegBytes(t *testing.T, dir string) int64 {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range ents {
		if _, ok := parseSegName(e.Name()); ok {
			fi, err := e.Info()
			if err != nil {
				t.Fatal(err)
			}
			total += fi.Size()
		}
	}
	return total
}

// TestCorruptHeaderQuarantine smashes the newest segment's header and
// asserts the segment is quarantined aside — not counted with a
// fabricated SegmentBytes size that would skew Stats.Bytes and the
// MaxBytes retention total — while records in older segments survive
// and the store keeps taking appends.
func TestCorruptHeaderQuarantine(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	s := openTest(t, dir, Options{SegmentBytes: 600})
	const n = 12
	for i := 0; i < n; i++ {
		r := testRecord("vm", appclass.CPU, i)
		if err := s.Append(&r); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// The newest segment may be freshly rotated and empty; smash the
	// newest one that actually holds records.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var best uint64
	var path string
	for _, e := range ents {
		no, ok := parseSegName(e.Name())
		if !ok || no < best {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() > int64(headerSize) {
			best, path = no, filepath.Join(dir, e.Name())
		}
	}
	if path == "" {
		t.Fatal("no non-empty segment found")
	}
	if err := os.WriteFile(path, append([]byte("not a segment"), make([]byte, 64)...), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, Options{SegmentBytes: 600})
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt segment still present as %s (stat err: %v)", path, err)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("corrupt segment not quarantined to %s.corrupt: %v", path, err)
	}
	// The records in older, intact segments survive as a contiguous
	// prefix of the appended sequence.
	runs, err := s2.Runs("vm")
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) == 0 || len(runs) >= n {
		t.Fatalf("got %d surviving records, want between 1 and %d", len(runs), n-1)
	}
	for i, r := range runs {
		if r.Samples != 10+i {
			t.Fatalf("surviving record %d has Samples=%d, want %d", i, r.Samples, 10+i)
		}
	}
	// The byte accounting reflects the real on-disk segments only — a
	// fabricated SegmentBytes-sized phantom here would make the MaxBytes
	// retention cap prune live records prematurely.
	if st := s2.Stats(); st.Bytes != onDiskSegBytes(t, dir) {
		t.Errorf("Stats.Bytes = %d, on-disk segment bytes = %d", st.Bytes, onDiskSegBytes(t, dir))
	}
	extra := testRecord("vm", appclass.CPU, 100)
	if err := s2.Append(&extra); err != nil {
		t.Fatal(err)
	}
	before := s2.Len()
	s2.Close()
	s3 := openTest(t, dir, Options{SegmentBytes: 600})
	if got := s3.Len(); got != before {
		t.Errorf("Len after quarantine+append+reopen = %d, want %d", got, before)
	}
}

// indexSnapshot flattens the in-memory index for comparison.
type indexSnapshot struct {
	Entries []entry
	ByApp   map[string][]uint64
	ByClass map[appclass.Class][]uint64
	ByVerd  map[appclass.Class][]uint64
	ByModel map[string][]uint64
}

func snapshotIndex(s *Store) indexSnapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := indexSnapshot{
		ByApp:   map[string][]uint64{},
		ByClass: map[appclass.Class][]uint64{},
		ByVerd:  map[appclass.Class][]uint64{},
		ByModel: map[string][]uint64{},
	}
	snap.Entries = append(snap.Entries, s.entries...)
	seqs := func(idxs []int) []uint64 {
		out := make([]uint64, len(idxs))
		for i, idx := range idxs {
			out[i] = s.entries[idx].seq
		}
		return out
	}
	for k, v := range s.byApp {
		snap.ByApp[k] = seqs(v)
	}
	for k, v := range s.byClass {
		snap.ByClass[k] = seqs(v)
	}
	for k, v := range s.byVerd {
		snap.ByVerd[k] = seqs(v)
	}
	for k, v := range s.byModel {
		snap.ByModel[k] = seqs(v)
	}
	return snap
}

// TestIndexRebuildBitIdentical builds a store with rotations, deletes,
// a compaction, and a fingerprinted record, then asserts the index
// rebuilt from disk is exactly the index built online.
func TestIndexRebuildBitIdentical(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	s := openTest(t, dir, Options{SegmentBytes: 600})
	classes := []appclass.Class{appclass.CPU, appclass.IO, appclass.Net, appclass.Mem}
	for i := 0; i < 30; i++ {
		r := testRecord(fmt.Sprintf("vm-%d", i%3), classes[i%len(classes)], i)
		if i == 17 {
			r.Fingerprint = testFingerprint()
		}
		if err := s.Append(&r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Prune(7); err != nil {
		t.Fatal(err)
	}
	before := snapshotIndex(s)
	s.Close()

	s2 := openTest(t, dir, Options{SegmentBytes: 600})
	after := snapshotIndex(s2)
	if !reflect.DeepEqual(before, after) {
		t.Errorf("index rebuilt from disk differs from the online index:\nbefore: %+v\nafter:  %+v", before, after)
	}
}

// TestRetentionSurvivesReopen makes sure the floor-protected records
// and seq continuity hold across a crash-free close/open cycle after
// heavy churn.
func TestChurnAndReopenConsistency(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	now := time.Unix(50_000, 0)
	opt := Options{SegmentBytes: 700, MaxBytes: 4000, Now: func() time.Time { return now }}
	s := openTest(t, dir, opt)
	for i := 0; i < 100; i++ {
		r := testRecord(fmt.Sprintf("vm-%d", i%5), appclass.CPU, i)
		if err := s.Append(&r); err != nil {
			t.Fatal(err)
		}
	}
	beforeApps := s.Apps()
	beforeLen := s.Len()
	s.Close()
	s2 := openTest(t, dir, opt)
	if got := s2.Len(); got != beforeLen {
		t.Errorf("Len after churn+reopen = %d, want %d", got, beforeLen)
	}
	afterApps := s2.Apps()
	sort.Strings(afterApps)
	if !reflect.DeepEqual(beforeApps, afterApps) {
		t.Errorf("Apps changed across reopen: %v vs %v", beforeApps, afterApps)
	}
	st := s2.Stats()
	var onDisk int64
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if _, ok := parseSegName(e.Name()); ok {
			fi, err := e.Info()
			if err != nil {
				t.Fatal(err)
			}
			onDisk += fi.Size()
		}
	}
	if st.Bytes != onDisk {
		t.Errorf("Stats.Bytes = %d, on-disk = %d", st.Bytes, onDisk)
	}
}

// TestCrashMidRetentionPrune simulates a crash inside retention's
// narrowest window: the victim segment's records were tombstoned (the
// sidecar hit disk), the segment file itself was deleted, and the
// process died before the post-compaction state rewrite. What's left
// on disk is a numbering gap plus tombstones pointing at sequence
// numbers that no longer exist anywhere. Open-time rebuild must
// converge — no error, no phantom records, truthful byte stats — and
// the store must keep taking appends across further reopens.
func TestCrashMidRetentionPrune(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	s := openTest(t, dir, Options{SegmentBytes: 600})
	const n = 12
	for i := 0; i < n; i++ {
		r := testRecord("vm", appclass.CPU, i)
		if err := s.Append(&r); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.RLock()
	victim := s.entries[0].seg
	for _, e := range s.entries {
		if e.seg < victim {
			victim = e.seg
		}
	}
	var victimSeqs []uint64
	for _, e := range s.entries {
		if e.seg == victim {
			victimSeqs = append(victimSeqs, e.seq)
		}
	}
	s.mu.RUnlock()
	if len(victimSeqs) == 0 || len(victimSeqs) >= n {
		t.Fatalf("oldest segment holds %d of %d records; need a proper subset", len(victimSeqs), n)
	}
	s.Close()

	doc, err := json.Marshal(tombstoneDoc{Dead: victimSeqs})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, tombstonesName), doc, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(segPath(dir, victim)); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, Options{SegmentBytes: 600})
	want := n - len(victimSeqs)
	if got := s2.Len(); got != want {
		t.Fatalf("Len after mid-prune crash reopen = %d, want %d", got, want)
	}
	// The survivors are exactly the records that followed the victim
	// segment, in order, with nothing duplicated or resurrected.
	runs, err := s2.Runs("vm")
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range runs {
		if wantSamples := 10 + len(victimSeqs) + i; r.Samples != wantSamples {
			t.Fatalf("survivor %d has Samples=%d, want %d", i, r.Samples, wantSamples)
		}
	}
	// Byte accounting reflects only the segments actually on disk — no
	// phantom contribution from the vanished victim.
	if st := s2.Stats(); st.Bytes != onDiskSegBytes(t, dir) {
		t.Errorf("Stats.Bytes = %d, on-disk segment bytes = %d", st.Bytes, onDiskSegBytes(t, dir))
	}

	// The store keeps working: append, reopen, still consistent, and
	// the stale tombstones never resurface.
	extra := testRecord("vm", appclass.CPU, 100)
	if err := s2.Append(&extra); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := openTest(t, dir, Options{SegmentBytes: 600})
	if got := s3.Len(); got != want+1 {
		t.Errorf("Len after append+reopen = %d, want %d", got, want+1)
	}
	if st := s3.Stats(); st.Bytes != onDiskSegBytes(t, dir) {
		t.Errorf("Stats.Bytes after reopen = %d, on-disk = %d", st.Bytes, onDiskSegBytes(t, dir))
	}
}
