package appstore

import (
	"testing"
	"time"

	"repro/internal/appclass"
)

// FuzzStoreDecode throws malformed payload bytes at the decoder: it
// must reject garbage with an error, never panic, and on valid input
// agree with the encoder.
func FuzzStoreDecode(f *testing.F) {
	// Seed with a real encoded payload and truncations/mutations of it.
	rec := testRecord("vm-fuzz", appclass.CPU, 3)
	rec.Fingerprint = testFingerprint()
	valid, err := appendRecordPayload(nil, 42, &rec)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte{kindRecord})
	f.Add([]byte{0xFF, 0x00, 0x01})
	mutated := append([]byte(nil), valid...)
	mutated[10] ^= 0xFF
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, body, err := decodeMeta(data)
		if err != nil {
			return // malformed input rejected, as it should be
		}
		// Whatever decodeMeta accepts must re-encode losslessly enough to
		// satisfy basic sanity: bounded strings, body round-trip.
		if len(m.app) == 0 || len(m.app) > maxName {
			t.Fatalf("decodeMeta accepted app name of length %d", len(m.app))
		}
		if len(body) > len(data) {
			t.Fatalf("body longer than input: %d > %d", len(body), len(data))
		}
		// decodeRecordPayload must not panic either; a JSON body that
		// fails to parse is an error, not a crash.
		_, _, _ = decodeRecordPayload(data)
	})
}

// TestDecodeEncodeRoundTrip pins the meta header codec: every field the
// index needs survives an encode/decode cycle.
func TestDecodeEncodeRoundTrip(t *testing.T) {
	rec := testRecord("vm-rt", appclass.Net, 9)
	rec.Fingerprint = testFingerprint()
	payload, err := appendRecordPayload(nil, 77, &rec)
	if err != nil {
		t.Fatal(err)
	}
	m, got, err := decodeRecordPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if m.seq != 77 || m.app != "vm-rt" || m.class != appclass.Net ||
		m.verdict != rec.Verdict || m.model != rec.ModelID ||
		m.at != rec.FinalizedAt || m.exec != rec.ExecutionTime ||
		m.samples != rec.Samples || !m.hasFP {
		t.Errorf("meta header mismatch: %+v", m)
	}
	if len(m.comp) != len(rec.Composition) {
		t.Errorf("meta composition has %d entries, want %d", len(m.comp), len(rec.Composition))
	}
	for _, c := range m.comp {
		if rec.Composition[c.class] != c.frac {
			t.Errorf("meta composition[%s] = %v, want %v", c.class, c.frac, rec.Composition[c.class])
		}
	}
	if got.App != rec.App || got.ExecutionTime != rec.ExecutionTime ||
		got.FinalizedAt != rec.FinalizedAt || got.Fingerprint == nil {
		t.Errorf("body mismatch: %+v", got)
	}
	if got.ExecutionTime != time.Duration(9+1)*time.Second {
		t.Errorf("ExecutionTime = %v", got.ExecutionTime)
	}
}
