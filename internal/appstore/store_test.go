package appstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/phase"
)

// testRecord builds a valid record; i varies the fields so records are
// distinguishable.
func testRecord(app string, c appclass.Class, i int) Record {
	return Record{
		App:           app,
		Class:         c,
		Composition:   map[appclass.Class]float64{c: 0.75, appclass.Idle: 0.25},
		ExecutionTime: time.Duration(i+1) * time.Second,
		Samples:       10 + i,
		FinalizedAt:   int64(1000 + i*100),
		Verdict:       c,
		ModelID:       fmt.Sprintf("m%d", i%2),
	}
}

func testFingerprint() *phase.Fingerprint {
	return &phase.Fingerprint{Phases: []phase.PhaseSig{
		{Class: appclass.CPU, DurFrac: 0.6, Centroid: []float64{1, 2}},
		{Class: appclass.IO, DurFrac: 0.4, Centroid: []float64{-1, 0.5}},
	}}
}

func openTest(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	if opt.Logf == nil {
		opt.Logf = t.Logf
	}
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	s := openTest(t, dir, Options{})
	want := testRecord("vm-1", appclass.CPU, 0)
	want.Fingerprint = testFingerprint()
	want.Phases = []phase.Phase{{Class: appclass.CPU, End: time.Minute, Snapshots: 7}}
	want.TrainMetrics = []string{"cpu_user", "bytes_in"}
	want.TrainSamples = [][]float64{{1, 2}, {3, 4}}
	if err := s.Append(&want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}

	// And again after a reopen: the record survives on disk and the
	// rebuilt index still finds it.
	s.Close()
	s2 := openTest(t, dir, Options{})
	got, err = s2.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip after reopen mismatch:\n got %+v\nwant %+v", got, want)
	}
	if latest, err := s2.Latest("vm-1"); err != nil || !reflect.DeepEqual(latest, want) {
		t.Errorf("Latest after reopen = %+v, %v", latest, err)
	}
}

func TestReadAPI(t *testing.T) {
	s := openTest(t, filepath.Join(t.TempDir(), "store"), Options{})
	for i := 0; i < 5; i++ {
		r := testRecord("vm-a", appclass.CPU, i)
		if err := s.Append(&r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		r := testRecord("vm-b", appclass.IO, i)
		if err := s.Append(&r); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Apps(); !reflect.DeepEqual(got, []string{"vm-a", "vm-b"}) {
		t.Errorf("Apps = %v", got)
	}
	if got := s.Len(); got != 8 {
		t.Errorf("Len = %d, want 8", got)
	}
	runs, err := s.Runs("vm-a")
	if err != nil || len(runs) != 5 {
		t.Fatalf("Runs(vm-a) = %d records, %v", len(runs), err)
	}
	for i, r := range runs {
		if r.Samples != 10+i {
			t.Errorf("Runs(vm-a)[%d].Samples = %d, want oldest-first order", i, r.Samples)
		}
	}
	sum, err := s.Summarize("vm-a")
	if err != nil {
		t.Fatal(err)
	}
	if sum.Runs != 5 || sum.Class != appclass.CPU {
		t.Errorf("Summarize = %+v", sum)
	}
	// Mean execution of 1..5 seconds is 3s.
	if sum.MeanExecution != 3*time.Second {
		t.Errorf("MeanExecution = %v, want 3s", sum.MeanExecution)
	}
	if got := sum.MeanComposition[appclass.CPU]; got < 0.74 || got > 0.76 {
		t.Errorf("MeanComposition[CPU] = %v", got)
	}
	if got := s.ByClass(appclass.CPU); !reflect.DeepEqual(got, []string{"vm-a"}) {
		t.Errorf("ByClass(CPU) = %v", got)
	}
	if got := s.ByClass(appclass.IO); !reflect.DeepEqual(got, []string{"vm-b"}) {
		t.Errorf("ByClass(IO) = %v", got)
	}
	// Total: vm-a 1+2+3+4+5, vm-b 1+2+3.
	if got := s.TotalExecution(); got != 21*time.Second {
		t.Errorf("TotalExecution = %v, want 21s", got)
	}
}

func TestFingerprintsDictionary(t *testing.T) {
	s := openTest(t, filepath.Join(t.TempDir(), "store"), Options{})
	r0 := testRecord("vm-a", appclass.CPU, 0)
	r0.Fingerprint = testFingerprint()
	r1 := testRecord("vm-a", appclass.CPU, 1) // newer, no fingerprint
	r2 := testRecord("vm-b", appclass.IO, 0)  // never fingerprinted
	for _, r := range []Record{r0, r1, r2} {
		r := r
		if err := s.Append(&r); err != nil {
			t.Fatal(err)
		}
	}
	fps, err := s.Fingerprints()
	if err != nil {
		t.Fatal(err)
	}
	if len(fps) != 1 {
		t.Fatalf("Fingerprints = %v, want exactly vm-a", fps)
	}
	if got := fps["vm-a"]; !reflect.DeepEqual(&got, r0.Fingerprint) {
		t.Errorf("dictionary entry = %+v", got)
	}
}

func TestScanFiltersAndPagination(t *testing.T) {
	s := openTest(t, filepath.Join(t.TempDir(), "store"), Options{})
	for i := 0; i < 10; i++ {
		app := "vm-a"
		class := appclass.CPU
		if i%2 == 1 {
			app, class = "vm-b", appclass.IO
		}
		r := testRecord(app, class, i)
		if err := s.Append(&r); err != nil {
			t.Fatal(err)
		}
	}

	// Newest-first, paginated in pages of 3 until exhausted.
	var all []Record
	cursor := uint64(0)
	pages := 0
	for {
		page, next, err := s.Scan(Filter{}, cursor, 3)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, page...)
		pages++
		if next == 0 {
			break
		}
		cursor = next
	}
	if len(all) != 10 || pages < 4 {
		t.Fatalf("paginated scan: %d records in %d pages", len(all), pages)
	}
	for i := 1; i < len(all); i++ {
		if all[i].FinalizedAt > all[i-1].FinalizedAt {
			t.Fatalf("scan not newest-first at %d", i)
		}
	}

	byApp, _, err := s.Scan(Filter{App: "vm-b"}, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(byApp) != 5 {
		t.Errorf("Scan(App=vm-b) = %d records, want 5", len(byApp))
	}
	byClass, _, err := s.Scan(Filter{Class: appclass.CPU}, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(byClass) != 5 {
		t.Errorf("Scan(Class=CPU) = %d records, want 5", len(byClass))
	}
	byVerdict, _, err := s.Scan(Filter{Verdict: appclass.IO}, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(byVerdict) != 5 {
		t.Errorf("Scan(Verdict=IO) = %d records, want 5", len(byVerdict))
	}
	byModel, _, err := s.Scan(Filter{Model: "m0"}, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(byModel) != 5 {
		t.Errorf("Scan(Model=m0) = %d records, want 5", len(byModel))
	}
	// FinalizedAt runs 1000..1900 in steps of 100; [1200,1500] holds 4.
	byTime, _, err := s.Scan(Filter{Since: 1200, Until: 1500}, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(byTime) != 4 {
		t.Errorf("Scan(Since/Until) = %d records, want 4", len(byTime))
	}
	combined, _, err := s.Scan(Filter{App: "vm-a", Class: appclass.IO}, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(combined) != 0 {
		t.Errorf("Scan(App=vm-a, Class=IO) = %d records, want 0", len(combined))
	}
}

func TestScanCursorStableUnderAppend(t *testing.T) {
	s := openTest(t, filepath.Join(t.TempDir(), "store"), Options{})
	for i := 0; i < 6; i++ {
		r := testRecord("vm", appclass.CPU, i)
		if err := s.Append(&r); err != nil {
			t.Fatal(err)
		}
	}
	page1, next, err := s.Scan(Filter{}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A record appended mid-scan must not shift the open cursor.
	r := testRecord("vm", appclass.CPU, 99)
	if err := s.Append(&r); err != nil {
		t.Fatal(err)
	}
	page2, _, err := s.Scan(Filter{}, next, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(page1) != 3 || len(page2) != 3 {
		t.Fatalf("pages = %d + %d records, want 3 + 3", len(page1), len(page2))
	}
	for _, rec := range page2 {
		if rec.Samples >= 10+3 {
			t.Errorf("second page contains record %d from the first page's range", rec.Samples)
		}
	}
}

func TestRotationAndReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	// Tiny segments force rotation every couple of records.
	s := openTest(t, dir, Options{SegmentBytes: 600})
	const n = 20
	for i := 0; i < n; i++ {
		r := testRecord("vm", appclass.CPU, i)
		if err := s.Append(&r); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Segments < 3 {
		t.Fatalf("Stats.Segments = %d, want rotation to have produced several", st.Segments)
	}
	if st.LiveRecords != n {
		t.Errorf("Stats.LiveRecords = %d, want %d", st.LiveRecords, n)
	}
	s.Close()
	s2 := openTest(t, dir, Options{SegmentBytes: 600})
	if got := s2.Len(); got != n {
		t.Errorf("Len after reopen = %d, want %d", got, n)
	}
	runs, err := s2.Runs("vm")
	if err != nil || len(runs) != n {
		t.Fatalf("Runs after reopen = %d, %v", len(runs), err)
	}
	for i, r := range runs {
		if r.Samples != 10+i {
			t.Fatalf("record order broken after reopen at %d", i)
		}
	}
	// New appends continue with fresh sequence numbers.
	r := testRecord("vm", appclass.CPU, n)
	if err := s2.Append(&r); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Get(uint64(n + 1)); err != nil {
		t.Errorf("seq continuity broken after reopen: %v", err)
	}
}

// TestRunsPartialOnUnreadableSegment deletes a closed segment out from
// under an open store and asserts Runs returns the readable records
// plus an error naming the loss — not a silent nil that looks like an
// empty history.
func TestRunsPartialOnUnreadableSegment(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	s := openTest(t, dir, Options{SegmentBytes: 600})
	const n = 20
	for i := 0; i < n; i++ {
		r := testRecord("vm", appclass.CPU, i)
		if i == 0 {
			// The only fingerprinted record lands in the first segment, the
			// one about to go missing — the dictionary read must then fail
			// loudly, not shrink silently.
			r.Fingerprint = testFingerprint()
		}
		if err := s.Append(&r); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	s2 := openTest(t, dir, Options{SegmentBytes: 600})
	if err := os.Remove(filepath.Join(dir, "store-00000001.seg")); err != nil {
		t.Fatal(err)
	}
	runs, err := s2.Runs("vm")
	if err == nil {
		t.Fatal("Runs with a missing segment returned no error")
	}
	if len(runs) == 0 || len(runs) >= n {
		t.Errorf("Runs returned %d records, want a partial result between 1 and %d", len(runs), n-1)
	}
	if _, err := s2.Fingerprints(); err == nil {
		t.Error("Fingerprints with its dictionary entry unreadable returned no error")
	}
}

func TestPrune(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	s := openTest(t, dir, Options{SegmentBytes: 600})
	for i := 0; i < 10; i++ {
		r := testRecord("vm", appclass.CPU, i)
		if err := s.Append(&r); err != nil {
			t.Fatal(err)
		}
	}
	dropped, err := s.Prune(3)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 7 {
		t.Fatalf("Prune dropped %d, want 7", dropped)
	}
	runs, err := s.Runs("vm")
	if err != nil || len(runs) != 3 {
		t.Fatalf("Runs after prune = %d, %v", len(runs), err)
	}
	// The three newest survive.
	for i, r := range runs {
		if r.Samples != 10+7+i {
			t.Errorf("prune kept the wrong records: got Samples=%d at %d", r.Samples, i)
		}
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Error("prune over multiple segments did not compact")
	}
	if st.PrunedRecords != 7 {
		t.Errorf("Stats.PrunedRecords = %d, want 7", st.PrunedRecords)
	}
	// State survives reopen.
	s.Close()
	s2 := openTest(t, dir, Options{SegmentBytes: 600})
	runs, err = s2.Runs("vm")
	if err != nil || len(runs) != 3 {
		t.Fatalf("Runs after prune+reopen = %d, %v", len(runs), err)
	}
}

func TestPruneTombstoneBeforeCompaction(t *testing.T) {
	// With everything in the single active segment, Prune cannot compact
	// (the active segment is immutable only after rotation) — the dead
	// records must still disappear from every read path and stay dead
	// across a reopen via the tombstone sidecar.
	dir := filepath.Join(t.TempDir(), "store")
	s := openTest(t, dir, Options{})
	for i := 0; i < 5; i++ {
		r := testRecord("vm", appclass.CPU, i)
		if err := s.Append(&r); err != nil {
			t.Fatal(err)
		}
	}
	if dropped, err := s.Prune(2); err != nil || dropped != 3 {
		t.Fatalf("Prune = %d, %v", dropped, err)
	}
	if got := s.Len(); got != 2 {
		t.Errorf("Len after prune = %d, want 2", got)
	}
	s.Close()
	s2 := openTest(t, dir, Options{})
	if got := s2.Len(); got != 2 {
		t.Errorf("Len after prune+reopen = %d, want 2 (tombstones lost?)", got)
	}
}

func TestRetentionByAge(t *testing.T) {
	now := time.Unix(10_000, 0)
	dir := filepath.Join(t.TempDir(), "store")
	s := openTest(t, dir, Options{
		SegmentBytes: 600,
		RetainAge:    time.Hour,
		PruneFloor:   1,
		Now:          func() time.Time { return now },
	})
	// Old records (well past the hour) plus one recent per app.
	for i := 0; i < 8; i++ {
		r := testRecord("vm", appclass.CPU, i)
		r.FinalizedAt = now.Add(-2 * time.Hour).UnixNano()
		if err := s.Append(&r); err != nil {
			t.Fatal(err)
		}
	}
	fresh := testRecord("vm", appclass.CPU, 8)
	fresh.FinalizedAt = now.Add(-time.Minute).UnixNano()
	if err := s.Append(&fresh); err != nil {
		t.Fatal(err)
	}
	// Retention runs on rotation; push appends until it has fired.
	for i := 9; i < 20; i++ {
		r := testRecord("vm", appclass.CPU, i)
		r.FinalizedAt = now.Add(-time.Minute).UnixNano()
		if err := s.Append(&r); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.PrunedRecords == 0 {
		t.Fatal("age retention never fired despite rotations")
	}
	runs, err := s.Runs("vm")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		if r.FinalizedAt < now.Add(-time.Hour).UnixNano() {
			t.Errorf("expired record survived: FinalizedAt=%d", r.FinalizedAt)
		}
	}
}

func TestRetentionByBytesKeepsFloor(t *testing.T) {
	now := time.Unix(10_000, 0)
	dir := filepath.Join(t.TempDir(), "store")
	s := openTest(t, dir, Options{
		SegmentBytes: 600,
		MaxBytes:     2000,
		PruneFloor:   2,
		Now:          func() time.Time { return now },
	})
	// vm-rare writes two early records (one fingerprinted) then goes
	// quiet; vm-busy floods the store far past MaxBytes.
	fp := testRecord("vm-rare", appclass.IO, 0)
	fp.Fingerprint = testFingerprint()
	if err := s.Append(&fp); err != nil {
		t.Fatal(err)
	}
	r2 := testRecord("vm-rare", appclass.IO, 1)
	if err := s.Append(&r2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		r := testRecord("vm-busy", appclass.CPU, i)
		if err := s.Append(&r); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.PrunedRecords == 0 {
		t.Fatal("byte-cap retention never fired")
	}
	// The pruning floor protects vm-rare's records even though they are
	// the oldest in the store.
	runs, err := s.Runs("vm-rare")
	if err != nil || len(runs) != 2 {
		t.Fatalf("vm-rare has %d records after retention, want its floor of 2 (%v)", len(runs), err)
	}
	fps, err := s.Fingerprints()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fps["vm-rare"]; !ok {
		t.Error("retention evicted a fingerprint-dictionary record")
	}
}

func TestLegacyMigrationInPlace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "appdb.json")
	// A legacy JSON database file as appdb.SaveFile wrote it.
	legacy := legacyDoc{Records: []Record{
		testRecord("vm-a", appclass.CPU, 0),
		testRecord("vm-b", appclass.IO, 1),
	}}
	writeJSONFile(t, path, legacy)

	s := openTest(t, path, Options{})
	if got := s.Len(); got != 2 {
		t.Fatalf("Len after migration = %d, want 2", got)
	}
	got, err := s.Latest("vm-a")
	if err != nil || !reflect.DeepEqual(got, legacy.Records[0]) {
		t.Errorf("migrated record mismatch: %+v, %v", got, err)
	}
	// The original file moved aside, the store dir stands in its place.
	if fi, err := os.Stat(path); err != nil || !fi.IsDir() {
		t.Errorf("store path is not a directory after migration: %v %v", fi, err)
	}
	if _, err := os.Stat(path + ".legacy"); err != nil {
		t.Errorf("legacy backup missing: %v", err)
	}
	// Second open must not re-migrate.
	s.Close()
	s2 := openTest(t, path, Options{})
	if got := s2.Len(); got != 2 {
		t.Errorf("Len after second open = %d, want 2 (double migration?)", got)
	}
}

func TestOpenLargeStoreIsFast(t *testing.T) {
	if testing.Short() {
		t.Skip("bulk store build in -short mode")
	}
	dir := filepath.Join(t.TempDir(), "store")
	s := openTest(t, dir, Options{NoFsync: true})
	const n = 50_000
	for i := 0; i < n; i++ {
		r := testRecord(fmt.Sprintf("vm-%d", i%100), appclass.CPU, i)
		if err := s.Append(&r); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	start := time.Now()
	s2 := openTest(t, dir, Options{NoFsync: true})
	elapsed := time.Since(start)
	if got := s2.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	// 50k records must open well under a second — the 1M-record target
	// of "a few seconds" with 20× margin.
	if elapsed > 2*time.Second {
		t.Errorf("opening %d records took %v", n, elapsed)
	}
	t.Logf("opened %d records in %v", n, elapsed)
}

func writeJSONFile(t *testing.T, path string, doc any) {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
