package appstore

import (
	"encoding/json"
	"fmt"
	"os"
)

// legacyDoc is the legacy JSON appdb file format ({"records": [...]}),
// what appdb.SaveFile wrote before the segmented store existed.
type legacyDoc struct {
	Records []Record `json:"records"`
}

// loadLegacy reads a legacy JSON appdb file, validating every record.
func loadLegacy(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open %s: %w", path, err)
	}
	defer f.Close()
	var doc legacyDoc
	if err := json.NewDecoder(f).Decode(&doc); err != nil {
		return nil, fmt.Errorf("decode %s: %w", path, err)
	}
	for i, r := range doc.Records {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
	}
	return doc.Records, nil
}
