package appstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
)

// Scrubbing re-verifies closed segments frame-by-frame so latent
// corruption is found on the scrubber's schedule instead of at the
// read that needed the record. A damaged segment is repaired with the
// compaction machinery run against a single victim: surviving live
// records are copied forward into a fresh segment, and the damaged
// original is renamed to <segment>.corrupt — the same quarantine idiom
// load() applies to unreadable headers — instead of deleted, so the
// rotten bytes stay available for inspection. Only the records inside
// damaged frames are lost; everything else survives the repair. A
// crash anywhere mid-repair is safe for the same reason compaction is:
// before the rename the fresh segment is an invisible .tmp, after it
// duplicated sequence numbers are resolved at open.

// ScrubReport describes one damaged segment found by Scrub.
type ScrubReport struct {
	// Seg is the segment number.
	Seg uint64 `json:"seg"`
	// BadFrames counts frames whose bytes no longer match their CRC.
	BadFrames int `json:"bad_frames"`
	// LostRecords counts live records inside those frames — the
	// records the repair could not save.
	LostRecords int `json:"lost_records"`
	// Repaired reports that the segment was rewritten without the
	// damage.
	Repaired bool `json:"repaired,omitempty"`
	// SkipReason says why a damaged segment was left alone.
	SkipReason string `json:"skip_reason,omitempty"`
	// Quarantined is the path the damaged original was preserved at.
	Quarantined string `json:"quarantined,omitempty"`
}

// ScrubSummary aggregates one Scrub call.
type ScrubSummary struct {
	// Scanned is how many segments were examined.
	Scanned int
	// Damaged holds a report per damaged segment.
	Damaged []ScrubReport
}

// Scrub examines up to maxSegments closed segments (0 means 1),
// verifying every indexed frame against its checksum, and repairs any
// damage it finds. A cursor persists across calls so successive
// low-rate passes cycle the whole store. The verification reads run
// off the store locks — closed segments are immutable — and only the
// repair itself takes the write lock.
func (s *Store) Scrub(maxSegments int) (ScrubSummary, error) {
	if maxSegments <= 0 {
		maxSegments = 1
	}
	var sum ScrubSummary

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return sum, fmt.Errorf("appstore: store is closed")
	}
	var nos []uint64
	for no := range s.segs {
		if no != s.seg {
			nos = append(nos, no)
		}
	}
	cursor := s.scrubNext
	s.mu.RUnlock()
	if len(nos) == 0 {
		return sum, nil
	}
	sort.Slice(nos, func(a, b int) bool { return nos[a] < nos[b] })
	start := 0
	for start < len(nos) && nos[start] < cursor {
		start++
	}
	if start == len(nos) {
		start = 0
	}
	picks := nos[start:]
	if len(picks) > maxSegments {
		picks = picks[:maxSegments]
	}

	var firstErr error
	for _, no := range picks {
		rep, err := s.scrubSegment(no)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if rep != nil {
			sum.Damaged = append(sum.Damaged, *rep)
		}
	}
	sum.Scanned = len(picks)

	s.mu.Lock()
	s.stats.ScrubScans += int64(len(picks))
	s.scrubNext = picks[len(picks)-1] + 1
	s.mu.Unlock()
	return sum, firstErr
}

// scrubSegment verifies one closed segment and repairs it when
// damaged, returning a report only when damage was found.
func (s *Store) scrubSegment(no uint64) (*ScrubReport, error) {
	data, err := os.ReadFile(segPath(s.dir, no))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil // compacted away between snapshot and read
		}
		return nil, fmt.Errorf("appstore: scrub read segment %d: %w", no, err)
	}

	// Snapshot the segment's indexed frame extents, then verify them
	// against the raw bytes without holding any lock.
	type ext struct {
		seq  uint64
		off  int64
		n    int64
		dead bool
	}
	s.mu.RLock()
	var exts []ext
	for i := range s.entries {
		if e := &s.entries[i]; e.seg == no {
			exts = append(exts, ext{seq: e.seq, off: e.off, n: e.n, dead: e.dead})
		}
	}
	s.mu.RUnlock()

	badSeqs := make(map[uint64]bool)
	rep := &ScrubReport{Seg: no}
	for _, x := range exts {
		ok := x.off >= 0 && x.off+x.n <= int64(len(data)) && x.n > frameSize
		if ok {
			frame := data[x.off : x.off+x.n]
			plen := int64(binary.LittleEndian.Uint32(frame[:4]))
			crc := binary.LittleEndian.Uint32(frame[4:8])
			payload := frame[frameSize:]
			ok = plen == x.n-frameSize && crc32.Checksum(payload, castagnoli) == crc
		}
		if !ok {
			badSeqs[x.seq] = true
			rep.BadFrames++
			if !x.dead {
				rep.LostRecords++
			}
		}
	}
	if rep.BadFrames == 0 {
		return nil, nil
	}
	s.opt.Logf("appstore: scrub found %d bad frame(s) in segment %d (%d live record(s) lost)",
		rep.BadFrames, no, rep.LostRecords)

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.repairScrubLocked(no, badSeqs, data, rep); err != nil {
		rep.SkipReason = fmt.Sprintf("repair failed: %v", err)
		return rep, err
	}
	return rep, nil
}

// repairScrubLocked rewrites segment no without its damaged frames —
// compaction's copy-forward against a single victim, with the victim
// quarantined rather than deleted. Caller holds the write lock.
func (s *Store) repairScrubLocked(no uint64, badSeqs map[uint64]bool, data []byte, rep *ScrubReport) error {
	info := s.segs[no]
	if info == nil || no == s.seg {
		rep.SkipReason = "segment vanished before repair"
		return nil
	}
	// Damaged live records are unreadable; tombstone them so the copy
	// below skips them and readers stop being offered them.
	for i := range s.entries {
		e := &s.entries[i]
		if e.seg == no && badSeqs[e.seq] && !e.dead {
			s.markDeadLocked(e)
		}
	}

	// Copy surviving live frames into a fresh segment from the bytes
	// already read (closed segments are immutable).
	copies := info.live
	var newSeg uint64
	newOff := make(map[uint64]int64)
	if copies > 0 {
		newSeg = s.nextSegNoLocked()
		path := segPath(s.dir, newSeg)
		tmp := path + ".tmp"
		f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("appstore: create %s: %w", tmp, err)
		}
		fail := func(err error) error {
			f.Close()
			os.Remove(tmp)
			return err
		}
		var hdr [headerSize]byte
		copy(hdr[:4], segMagic[:])
		binary.LittleEndian.PutUint32(hdr[4:8], segVersion)
		if _, err := f.Write(hdr[:]); err != nil {
			return fail(fmt.Errorf("appstore: write header %s: %w", tmp, err))
		}
		off := int64(headerSize)
		for i := range s.entries {
			e := &s.entries[i]
			if e.seg != no || e.dead {
				continue
			}
			if _, err := f.Write(data[e.off : e.off+e.n]); err != nil {
				return fail(fmt.Errorf("appstore: write %s: %w", tmp, err))
			}
			newOff[e.seq] = off
			off += e.n
		}
		if err := f.Sync(); err != nil {
			return fail(fmt.Errorf("appstore: sync %s: %w", tmp, err))
		}
		if err := f.Close(); err != nil {
			os.Remove(tmp)
			return fmt.Errorf("appstore: close %s: %w", tmp, err)
		}
		if err := os.Rename(tmp, path); err != nil {
			os.Remove(tmp)
			return fmt.Errorf("appstore: publish segment %d: %w", newSeg, err)
		}
		if err := syncDir(s.dir); err != nil {
			return err
		}
		s.segs[newSeg] = &segInfo{size: off, live: copies}
	}

	// The copies are durable; quarantine the damaged original.
	if info.rd != nil {
		info.rd.Close()
	}
	victim := segPath(s.dir, no)
	quarantine := victim + ".corrupt"
	os.Remove(quarantine) // stale quarantine from an earlier repair
	if err := os.Rename(victim, quarantine); err != nil {
		return fmt.Errorf("appstore: quarantine segment %d: %w", no, err)
	}
	delete(s.segs, no)
	if err := syncDir(s.dir); err != nil {
		return err
	}

	// Rebuild the index: entries in the victim either disappear (dead,
	// including the freshly damaged) or repoint to their copy.
	kept := s.entries[:0]
	removed := 0
	for i := range s.entries {
		e := s.entries[i]
		if e.seg == no {
			if e.dead {
				removed++
				continue
			}
			e.seg = newSeg
			e.off = newOff[e.seq]
		}
		kept = append(kept, e)
	}
	s.entries = kept
	s.rebuildIndexLocked()

	s.stats.DroppedRecords += int64(removed)
	s.stats.ScrubRepairedSegments++
	s.stats.ScrubLostRecords += int64(rep.LostRecords)
	s.stats.ScrubQuarantined++
	rep.Repaired = true
	rep.Quarantined = quarantine
	s.opt.Logf("appstore: scrub repaired segment %d: quarantined original, carried %d live record(s), lost %d to damage",
		no, copies, rep.LostRecords)
	return s.persistTombstonesLocked()
}
