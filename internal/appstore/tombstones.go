package appstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Deletions never touch segment files: the set of dead sequence numbers
// lives in a small JSON sidecar rewritten atomically (temp + fsync +
// rename, the same idiom as the wal checkpoints and the legacy
// SaveFile). A segment therefore stays immutable from creation until
// compaction physically drops its dead records, at which point the
// sidecar shrinks again.

const tombstonesName = "tombstones.json"

type tombstoneDoc struct {
	Dead []uint64 `json:"dead"`
}

// loadTombstones reads the sidecar; a missing file is an empty set.
func loadTombstones(dir string) (map[uint64]bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, tombstonesName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("appstore: read tombstones: %w", err)
	}
	var doc tombstoneDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("appstore: decode tombstones: %w", err)
	}
	out := make(map[uint64]bool, len(doc.Dead))
	for _, seq := range doc.Dead {
		out[seq] = true
	}
	return out, nil
}

// persistTombstonesLocked atomically rewrites the sidecar from the
// index's current dead set. Caller holds the write lock.
func (s *Store) persistTombstonesLocked() error {
	doc := tombstoneDoc{}
	for i := range s.entries {
		if s.entries[i].dead {
			doc.Dead = append(doc.Dead, s.entries[i].seq)
		}
	}
	path := filepath.Join(s.dir, tombstonesName)
	if len(doc.Dead) == 0 {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("appstore: remove empty tombstones: %w", err)
		}
		return nil
	}
	data, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("appstore: encode tombstones: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("appstore: create %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("appstore: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("appstore: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("appstore: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("appstore: rename tombstones: %w", err)
	}
	return syncDir(s.dir)
}

// syncDir fsyncs a directory so renames and deletes within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("appstore: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("appstore: sync dir %s: %w", dir, err)
	}
	return nil
}
