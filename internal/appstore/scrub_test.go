package appstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/appclass"
)

// corruptLiveFrame flips a payload byte of the live record with the
// given seq inside its (closed) segment, returning the segment number.
func corruptLiveFrame(t *testing.T, s *Store, seq uint64) uint64 {
	t.Helper()
	s.mu.RLock()
	i := s.findSeqLocked(seq)
	if i < 0 {
		s.mu.RUnlock()
		t.Fatalf("no entry with seq %d", seq)
	}
	e := s.entries[i]
	s.mu.RUnlock()
	path := segPath(s.dir, e.seg)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[e.off+frameSize+2] ^= 0x20
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return e.seg
}

func TestScrubRepairsDamagedSegment(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 600})
	n := 12
	for i := 0; i < n; i++ {
		r := testRecord("vm", appclass.CPU, i)
		if err := s.Append(&r); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats()
	if before.Segments < 3 {
		t.Fatalf("want several segments, got %d", before.Segments)
	}

	// Damage one live record in a closed segment.
	victim := corruptLiveFrame(t, s, 3)

	// A full-cycle scrub finds it, quarantines the segment, and carries
	// the survivors forward.
	sum, err := s.Scrub(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Damaged) != 1 {
		t.Fatalf("damaged = %+v, want one report", sum.Damaged)
	}
	rep := sum.Damaged[0]
	if rep.Seg != victim || rep.BadFrames != 1 || rep.LostRecords != 1 || !rep.Repaired {
		t.Fatalf("report = %+v", rep)
	}
	if _, err := os.Stat(segPath(dir, victim) + ".corrupt"); err != nil {
		t.Errorf("quarantine missing: %v", err)
	}
	if _, err := os.Stat(segPath(dir, victim)); !os.IsNotExist(err) {
		t.Errorf("victim segment still present: %v", err)
	}

	// Exactly one record lost; the rest readable.
	if got := s.Len(); got != n-1 {
		t.Errorf("live records = %d, want %d", got, n-1)
	}
	if _, err := s.Get(3); err == nil {
		t.Error("damaged record still served")
	}
	recs, err := s.Runs("vm")
	if err != nil {
		t.Fatalf("runs after repair: %v", err)
	}
	if len(recs) != n-1 {
		t.Errorf("runs = %d, want %d", len(recs), n-1)
	}
	st := s.Stats()
	if st.ScrubRepairedSegments != 1 || st.ScrubLostRecords != 1 || st.ScrubQuarantined != 1 {
		t.Errorf("scrub stats = %+v", st)
	}

	// A clean follow-up pass finds nothing.
	sum, err = s.Scrub(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Damaged) != 0 {
		t.Errorf("second pass found damage: %+v", sum.Damaged)
	}

	// The store survives close + reopen with truthful stats: quarantined
	// bytes no longer count, survivors all load.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, Options{SegmentBytes: 600})
	if got := s2.Len(); got != n-1 {
		t.Errorf("live records after reopen = %d, want %d", got, n-1)
	}
	if _, err := s2.Runs("vm"); err != nil {
		t.Errorf("runs after reopen: %v", err)
	}
}

func TestScrubSkipsActiveSegment(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 1 << 20})
	r := testRecord("vm", appclass.CPU, 0)
	if err := s.Append(&r); err != nil {
		t.Fatal(err)
	}
	// Only the active segment exists; scrub must not touch it.
	sum, err := s.Scrub(100)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Scanned != 0 || len(sum.Damaged) != 0 {
		t.Errorf("scrub touched the active segment: %+v", sum)
	}
}

func TestScrubCursorCycles(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 600})
	for i := 0; i < 12; i++ {
		r := testRecord("vm", appclass.CPU, i)
		if err := s.Append(&r); err != nil {
			t.Fatal(err)
		}
	}
	closed := s.Stats().Segments - 1
	if closed < 2 {
		t.Fatalf("want at least two closed segments, got %d", closed)
	}
	// One-at-a-time passes cover every closed segment and wrap.
	for pass := 0; pass < closed+2; pass++ {
		if _, err := s.Scrub(1); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.ScrubScans != int64(closed+2) {
		t.Errorf("scans = %d, want %d", st.ScrubScans, closed+2)
	}
}

func TestScrubDamagedDeadFrameQuarantines(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 600, PruneFloor: -1})
	for i := 0; i < 12; i++ {
		r := testRecord("vm", appclass.CPU, i)
		if err := s.Append(&r); err != nil {
			t.Fatal(err)
		}
	}
	// Tombstone a record, then damage its frame: no live loss, but the
	// rot is still quarantined.
	s.mu.Lock()
	i := s.findSeqLocked(2)
	if i < 0 || s.entries[i].seg == s.seg {
		s.mu.Unlock()
		t.Fatal("seq 2 not in a closed segment")
	}
	s.markDeadLocked(&s.entries[i])
	s.mu.Unlock()
	victim := corruptLiveFrame(t, s, 2) // seq 2 is dead but still indexed

	sum, err := s.Scrub(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Damaged) != 1 {
		t.Fatalf("damaged = %+v", sum.Damaged)
	}
	rep := sum.Damaged[0]
	if rep.Seg != victim || rep.LostRecords != 0 || !rep.Repaired {
		t.Fatalf("report = %+v", rep)
	}
	if !strings.HasSuffix(rep.Quarantined, ".corrupt") {
		t.Errorf("quarantined = %q", rep.Quarantined)
	}
	if _, err := os.Stat(filepath.Join(dir, filepath.Base(rep.Quarantined))); err != nil {
		t.Errorf("quarantine missing: %v", err)
	}
}
