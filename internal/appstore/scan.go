package appstore

import (
	"repro/internal/appclass"
)

// Filter narrows a Scan. Zero values match everything.
type Filter struct {
	// App matches one application (the VM name records are keyed by).
	App string
	// Class matches the record's majority-vote class.
	Class appclass.Class
	// Verdict matches the open-set verdict (e.g. appclass.Unknown).
	Verdict appclass.Class
	// Model matches the serving model's compatibility hash.
	Model string
	// Since and Until bound the finalize time, unix nanoseconds,
	// inclusive. Zero means unbounded. Records without a finalize stamp
	// (legacy migrations) only match when both bounds are zero.
	Since int64
	Until int64
}

// DefaultScanLimit and MaxScanLimit bound a Scan page.
const (
	DefaultScanLimit = 50
	MaxScanLimit     = 1000
)

// Scan returns up to limit live records matching f, newest first
// (descending sequence number). cursor is the pagination token: 0
// starts at the newest record, and the returned next cursor — 0 once
// the scan is exhausted — resumes exactly where the page ended, stable
// under concurrent appends (new records get higher sequence numbers
// and never shift an open cursor).
func (s *Store) Scan(f Filter, cursor uint64, limit int) ([]Record, uint64, error) {
	if limit <= 0 {
		limit = DefaultScanLimit
	}
	if limit > MaxScanLimit {
		limit = MaxScanLimit
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	// Walk the most selective posting list available; all lists are in
	// ascending seq order, so iterate backwards for newest-first.
	var idxs []int
	switch {
	case f.App != "":
		idxs = s.byApp[f.App]
	case f.Model != "":
		idxs = s.byModel[f.Model]
	case f.Verdict != "":
		idxs = s.byVerd[f.Verdict]
	case f.Class != "":
		idxs = s.byClass[f.Class]
	}
	match := func(e *entry) bool {
		if e.dead {
			return false
		}
		if f.App != "" && e.app != f.App {
			return false
		}
		if f.Class != "" && e.class != f.Class {
			return false
		}
		if f.Verdict != "" && e.verdict != f.Verdict {
			return false
		}
		if f.Model != "" && e.model != f.Model {
			return false
		}
		if f.Since != 0 || f.Until != 0 {
			if e.at == 0 {
				return false
			}
			if f.Since != 0 && e.at < f.Since {
				return false
			}
			if f.Until != 0 && e.at > f.Until {
				return false
			}
		}
		return true
	}
	var out []Record
	var next uint64
	emit := func(e *entry) (bool, error) {
		if cursor != 0 && e.seq >= cursor {
			return false, nil
		}
		if !match(e) {
			return false, nil
		}
		r, err := s.readEntry(e)
		if err != nil {
			return false, err
		}
		out = append(out, r)
		next = e.seq
		return len(out) >= limit, nil
	}
	if idxs != nil {
		for i := len(idxs) - 1; i >= 0; i-- {
			full, err := emit(&s.entries[idxs[i]])
			if err != nil {
				return nil, 0, err
			}
			if full {
				return out, next, nil
			}
		}
	} else {
		for i := len(s.entries) - 1; i >= 0; i-- {
			full, err := emit(&s.entries[i])
			if err != nil {
				return nil, 0, err
			}
			if full {
				return out, next, nil
			}
		}
	}
	return out, 0, nil
}
