package appstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/appclass"
	"repro/internal/phase"
)

// Options parameterizes a store.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this many
	// bytes. Zero means 4 MiB.
	SegmentBytes int64
	// MaxBytes caps the store's total segment bytes: once live data
	// exceeds it, the oldest records beyond the pruning floor are marked
	// dead and compacted away. Zero means unlimited.
	MaxBytes int64
	// RetainAge expires records whose finalize time is older than this.
	// Zero means unlimited. Records without a finalize stamp (legacy
	// migrations) are exempt — their age is unknown.
	RetainAge time.Duration
	// PruneFloor is the per-application retention floor: the newest
	// PruneFloor records of every application — and its newest
	// fingerprinted record, the dictionary entry — are never removed by
	// the age or byte caps, so the fingerprint dictionary and the
	// retraining reservoirs never lose records still referenced. Zero
	// means DefaultPruneFloor; negative means no floor. An explicit
	// Prune call is an operator decision and ignores the floor.
	PruneFloor int
	// NoFsync skips the per-append fsync. The default (false) syncs
	// every append, matching the durability of the legacy
	// rewrite-and-rename JSON store; a crash then loses at most the
	// record being appended, which the torn-tail repair drops cleanly.
	NoFsync bool
	// Now supplies wall-clock time; tests inject fake clocks. Nil means
	// time.Now.
	Now func() time.Time
	// Logf receives operational log lines. Nil discards them.
	Logf func(format string, args ...any)
}

// DefaultPruneFloor is the per-application retention floor: how many of
// an application's newest records the age/byte caps must leave alone.
const DefaultPruneFloor = 2

// Stats is a point-in-time view of the store, rendered as gauges in the
// daemon's /metricsz.
type Stats struct {
	// Segments counts segment files on disk, including the active one.
	Segments int
	// Bytes is the total size of all segments on disk.
	Bytes int64
	// LiveRecords and DeadRecords count indexed records; dead ones are
	// tombstoned and disappear physically at the next compaction.
	LiveRecords int
	DeadRecords int
	// Appends counts records appended since open.
	Appends int64
	// Compactions counts compaction passes that rewrote segments.
	Compactions int64
	// PrunedRecords counts records marked dead since open (explicit
	// Prune calls plus the age/byte retention caps).
	PrunedRecords int64
	// DroppedRecords counts records physically removed by compaction.
	DroppedRecords int64
	// CorruptFrames counts frames skipped at open (torn tails, bit rot).
	CorruptFrames int64
	// AppendLastNanos and AppendTotalNanos time the append path — the
	// finalize hot-path latency the JSON store paid O(n) for.
	AppendLastNanos  int64
	AppendTotalNanos int64
	// ScrubScans counts closed segments examined by Scrub since open.
	ScrubScans int64
	// ScrubRepairedSegments counts segments Scrub rewrote to drop
	// damaged frames.
	ScrubRepairedSegments int64
	// ScrubLostRecords counts live records inside damaged frames — the
	// only records lost to the detected corruption.
	ScrubLostRecords int64
	// ScrubQuarantined counts damaged originals preserved as .corrupt.
	ScrubQuarantined int64
}

// entry is one indexed record: the meta header plus its location.
type entry struct {
	meta
	seg  uint64
	off  int64 // frame start offset within the segment
	n    int64 // frame + payload length
	dead bool
}

// segInfo tracks one segment on disk.
type segInfo struct {
	size    int64
	live    int
	dead    int
	corrupt bool // undecodable bytes seen at load; never reuse as active
	dups    int  // frames skipped at load because their seq was already seen
	rd      *os.File // lazily opened read handle
}

// Store is the log-structured application-record store. It is safe for
// concurrent use: appends and deletions serialize on a write lock,
// reads (including paginated scans) share a read lock and pread from
// immutable segment bytes.
type Store struct {
	dir string
	opt Options

	mu      sync.RWMutex
	rdMu    sync.Mutex // guards lazy opens of segInfo.rd under the read lock
	f       *os.File   // active segment write handle
	seg     uint64   // active segment number
	size    int64    // active segment size
	nextSeq uint64
	entries []entry // ascending seq
	byApp   map[string][]int
	byClass map[appclass.Class][]int
	byVerd  map[appclass.Class][]int
	byModel map[string][]int
	segs    map[uint64]*segInfo
	interns map[string]string // string interning across entries
	buf     []byte            // reused append encode buffer
	stats   Stats
	closed  bool
	// scrubNext is the scrub cursor: the next closed segment Scrub
	// examines, so successive low-rate passes cycle the store.
	scrubNext uint64
}

// Open opens (or creates) a store at dir. If dir is an existing regular
// file it is taken to be a legacy JSON application database: the file
// is converted in place — renamed to dir+".legacy", the directory
// created where it stood, every record appended — so existing
// deployments upgrade transparently on first start.
func Open(dir string, opt Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("appstore: empty store path")
	}
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = 4 << 20
	}
	if opt.PruneFloor == 0 {
		opt.PruneFloor = DefaultPruneFloor
	}
	if opt.Now == nil {
		opt.Now = time.Now
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	var legacy []Record
	if fi, err := os.Stat(dir); err == nil && fi.Mode().IsRegular() {
		recs, err := loadLegacy(dir)
		if err != nil {
			return nil, fmt.Errorf("appstore: %s is a file but not a legacy appdb: %w", dir, err)
		}
		backup := dir + ".legacy"
		if err := os.Rename(dir, backup); err != nil {
			return nil, fmt.Errorf("appstore: move legacy db aside: %w", err)
		}
		legacy = recs
		opt.Logf("appstore: migrating legacy JSON db %s (%d records, backup at %s)", dir, len(recs), backup)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("appstore: create %s: %w", dir, err)
	}
	s := &Store{
		dir:     dir,
		opt:     opt,
		nextSeq: 1,
		byApp:   make(map[string][]int),
		byClass: make(map[appclass.Class][]int),
		byVerd:  make(map[appclass.Class][]int),
		byModel: make(map[string][]int),
		segs:    make(map[uint64]*segInfo),
		interns: make(map[string]string),
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	if legacy != nil {
		for i := range legacy {
			if err := s.Append(&legacy[i]); err != nil {
				s.Close()
				return nil, fmt.Errorf("appstore: migrate legacy record %d: %w", i, err)
			}
		}
		if err := s.Sync(); err != nil {
			s.Close()
			return nil, err
		}
		opt.Logf("appstore: migrated %d legacy record(s) into %s", len(legacy), dir)
	}
	return s, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

func segPath(dir string, seg uint64) string {
	return filepath.Join(dir, fmt.Sprintf("store-%08d.seg", seg))
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "store-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "store-"), ".seg"), 10, 64)
	if err != nil || n == 0 {
		return 0, false
	}
	return n, true
}

// load rebuilds the in-memory index from the segments on disk: every
// frame is CRC-checked and only its fixed meta header decoded. A torn
// tail on the newest segment is repaired by truncation (the normal
// crash shape); corruption elsewhere skips the remainder of that
// segment with a loud log. Records seen twice (a crash between a
// compaction's copy and its deletes) keep their first copy.
func (s *Store) load() error {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("appstore: read %s: %w", s.dir, err)
	}
	var segNos []uint64
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			// A compaction that died before its atomic rename; the segment
			// never became visible, so its contents are all elsewhere.
			os.Remove(filepath.Join(s.dir, e.Name()))
			continue
		}
		if n, ok := parseSegName(e.Name()); ok {
			segNos = append(segNos, n)
		}
	}
	sort.Slice(segNos, func(a, b int) bool { return segNos[a] < segNos[b] })
	tombs, err := loadTombstones(s.dir)
	if err != nil {
		return err
	}
	seen := make(map[uint64]bool)
	for _, no := range segNos {
		if err := s.loadSegment(no, no == segNos[len(segNos)-1], seen); err != nil {
			return err
		}
	}
	// Entries were collected per segment; compaction copies records into
	// higher-numbered segments, so restore global seq order.
	sort.Slice(s.entries, func(a, b int) bool { return s.entries[a].seq < s.entries[b].seq })
	for i := range s.entries {
		e := &s.entries[i]
		if tombs[e.seq] {
			e.dead = true
			s.segs[e.seg].dead++
		} else {
			s.segs[e.seg].live++
		}
		s.indexEntry(i)
		if e.seq >= s.nextSeq {
			s.nextSeq = e.seq + 1
		}
	}
	// A crash between a compaction's rename and its victim deletes can
	// leave a fully duplicated segment: every frame decoded but every seq
	// was already seen, so nothing indexes into it and compaction (which
	// only targets dead>0) would never reclaim it. Its records all live
	// elsewhere, so deleting it is safe.
	for no, info := range s.segs {
		if info.live == 0 && info.dead == 0 && info.dups > 0 && !info.corrupt {
			if err := os.Remove(segPath(s.dir, no)); err != nil {
				s.opt.Logf("appstore: delete fully duplicated segment %d: %v", no, err)
				continue
			}
			s.opt.Logf("appstore: deleted segment %d: all %d frame(s) were duplicates from an interrupted compaction", no, info.dups)
			delete(s.segs, no)
		}
	}
	// Continue appending to the newest segment when it has room (its
	// tail was just verified, and repaired if torn); otherwise start a
	// fresh one. A newest segment that was quarantined or deleted above
	// is absent from s.segs and never reused.
	if n := len(segNos); n > 0 {
		last := segNos[n-1]
		if info := s.segs[last]; info != nil && !info.corrupt && info.size < s.opt.SegmentBytes {
			f, err := os.OpenFile(segPath(s.dir, last), os.O_WRONLY, 0o644)
			if err != nil {
				return fmt.Errorf("appstore: reopen segment %d: %w", last, err)
			}
			if _, err := f.Seek(info.size, 0); err != nil {
				f.Close()
				return fmt.Errorf("appstore: seek segment %d: %w", last, err)
			}
			s.f, s.seg, s.size = f, last, info.size
			return nil
		}
	}
	next := uint64(1)
	if n := len(segNos); n > 0 {
		next = segNos[n-1] + 1
	}
	return s.openSegment(next)
}

// loadSegment scans one segment, appending its valid records to
// s.entries (unindexed; load() indexes after the global seq sort).
func (s *Store) loadSegment(no uint64, newest bool, seen map[uint64]bool) error {
	path := segPath(s.dir, no)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("appstore: read segment %d: %w", no, err)
	}
	if len(data) < headerSize || [4]byte(data[:4]) != segMagic ||
		binary.LittleEndian.Uint32(data[4:8]) != segVersion {
		// Nothing in this segment is readable. Quarantine it aside so it
		// stops counting against the byte cap (and can be inspected), and
		// so it is never reused as the active segment.
		s.stats.CorruptFrames++
		quarantine := path + ".corrupt"
		if err := os.Rename(path, quarantine); err != nil {
			// Can't move it; keep tracking its real on-disk size (never a
			// fabricated one, which would skew Stats.Bytes and retention)
			// and flag it so it is neither appended to nor deleted.
			s.segs[no] = &segInfo{size: int64(len(data)), corrupt: true}
			s.opt.Logf("appstore: segment %d has a bad header and could not be quarantined (%v); ignoring its contents", no, err)
			return nil
		}
		s.opt.Logf("appstore: segment %d has a bad header; quarantined to %s", no, quarantine)
		return nil
	}
	info := &segInfo{size: int64(len(data))}
	s.segs[no] = info
	off := int64(headerSize)
	for off < int64(len(data)) {
		rest := data[off:]
		if int64(len(rest)) < frameSize {
			break // torn frame header at the tail
		}
		plen := int64(binary.LittleEndian.Uint32(rest[:4]))
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if plen <= 0 || plen > maxPayload || frameSize+plen > int64(len(rest)) {
			break
		}
		payload := rest[frameSize : frameSize+plen]
		if crc32.Checksum(payload, castagnoli) != crc {
			break
		}
		m, _, err := decodeMeta(payload)
		if err != nil {
			break
		}
		if !seen[m.seq] {
			seen[m.seq] = true
			m.app = s.intern(m.app)
			m.model = s.intern(m.model)
			s.entries = append(s.entries, entry{meta: m, seg: no, off: off, n: frameSize + plen})
		} else {
			// A crash between a compaction's rename and its victim deletes
			// leaves the same seq in two segments; the first copy wins.
			info.dups++
		}
		off += frameSize + plen
	}
	if off < int64(len(data)) {
		s.stats.CorruptFrames++
		if newest {
			// The normal crash shape: a torn append at the tail. Repair in
			// place so the segment can keep taking appends.
			if err := os.Truncate(path, off); err != nil {
				return fmt.Errorf("appstore: repair torn tail of segment %d: %w", no, err)
			}
			info.size = off
			s.opt.Logf("appstore: repaired torn tail of segment %d (truncated %d bytes)", no, int64(len(data))-off)
		} else {
			// Corruption inside a closed segment is not a crash artifact;
			// keep what decoded and say so loudly.
			info.corrupt = true
			s.opt.Logf("appstore: CORRUPTION in closed segment %d at offset %d; %d trailing bytes unreadable",
				no, off, int64(len(data))-off)
		}
	}
	return nil
}

func (s *Store) intern(v string) string {
	if v == "" {
		return ""
	}
	if i, ok := s.interns[v]; ok {
		return i
	}
	s.interns[v] = v
	return v
}

// rebuildIndexLocked recomputes every posting list from s.entries.
func (s *Store) rebuildIndexLocked() {
	s.byApp = make(map[string][]int)
	s.byClass = make(map[appclass.Class][]int)
	s.byVerd = make(map[appclass.Class][]int)
	s.byModel = make(map[string][]int)
	for i := range s.entries {
		s.indexEntry(i)
	}
}

// indexEntry adds entries[i] to every posting list.
func (s *Store) indexEntry(i int) {
	e := &s.entries[i]
	s.byApp[e.app] = append(s.byApp[e.app], i)
	s.byClass[e.class] = append(s.byClass[e.class], i)
	if e.verdict != "" {
		s.byVerd[e.verdict] = append(s.byVerd[e.verdict], i)
	}
	if e.model != "" {
		s.byModel[e.model] = append(s.byModel[e.model], i)
	}
}

// openSegment creates a fresh active segment.
func (s *Store) openSegment(no uint64) error {
	path := segPath(s.dir, no)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("appstore: create segment %s: %w", path, err)
	}
	var hdr [headerSize]byte
	copy(hdr[:4], segMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], segVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("appstore: write segment header %s: %w", path, err)
	}
	s.f, s.seg, s.size = f, no, headerSize
	if s.segs[no] == nil {
		s.segs[no] = &segInfo{}
	}
	s.segs[no].size = headerSize
	return nil
}

// Append validates nothing (appdb.Put validates) and appends one record
// — the O(1) finalize hot path. The record is assigned the next
// sequence number and fsynced before return unless Options.NoFsync.
func (s *Store) Append(r *Record) error {
	start := s.opt.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("appstore: store is closed")
	}
	seq := s.nextSeq
	buf := append(s.buf[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	buf, err := appendRecordPayload(buf, seq, r)
	if err != nil {
		return err
	}
	payload := buf[frameSize:]
	if len(payload) > maxPayload {
		return fmt.Errorf("appstore: record payload %d bytes exceeds cap %d", len(payload), maxPayload)
	}
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	s.buf = buf
	if _, err := s.f.Write(buf); err != nil {
		// The active segment's tail is now suspect; the next open repairs
		// it by truncation. Refuse further appends to this handle by
		// rotating to a fresh segment.
		if rerr := s.rotateLocked(); rerr != nil {
			s.opt.Logf("appstore: rotate after failed append: %v", rerr)
		}
		return fmt.Errorf("appstore: append to segment %d: %w", s.seg, err)
	}
	if !s.opt.NoFsync {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("appstore: fsync segment %d: %w", s.seg, err)
		}
	}
	off := s.size
	s.size += int64(len(buf))
	s.segs[s.seg].size = s.size
	s.segs[s.seg].live++
	s.nextSeq++
	m := meta{
		seq: seq, at: r.FinalizedAt, app: s.intern(r.App),
		class: r.Class, verdict: r.Verdict, model: s.intern(r.ModelID),
		exec: r.ExecutionTime, samples: r.Samples, gaps: r.Gaps,
		hasFP: r.Fingerprint != nil && !r.Fingerprint.Empty(),
	}
	for _, c := range appclass.All() {
		if f, ok := r.Composition[c]; ok {
			m.comp = append(m.comp, compEntry{class: c, frac: f})
		}
	}
	s.entries = append(s.entries, entry{meta: m, seg: s.seg, off: off, n: int64(len(buf))})
	s.indexEntry(len(s.entries) - 1)
	s.stats.Appends++
	elapsed := s.opt.Now().Sub(start).Nanoseconds()
	s.stats.AppendLastNanos = elapsed
	s.stats.AppendTotalNanos += elapsed
	if s.size >= s.opt.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
		s.maybeRetainLocked()
	}
	return nil
}

// rotateLocked closes the active segment and opens the next.
func (s *Store) rotateLocked() error {
	if err := s.f.Sync(); err != nil {
		s.opt.Logf("appstore: sync closing segment %d: %v", s.seg, err)
	}
	if err := s.f.Close(); err != nil {
		s.opt.Logf("appstore: close segment %d: %v", s.seg, err)
	}
	return s.openSegment(s.nextSegNoLocked())
}

func (s *Store) nextSegNoLocked() uint64 {
	next := s.seg + 1
	for no := range s.segs {
		if no >= next {
			next = no + 1
		}
	}
	return next
}

// Sync flushes the active segment to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("appstore: store is closed")
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("appstore: fsync segment %d: %w", s.seg, err)
	}
	return nil
}

// Close syncs and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	for _, info := range s.segs {
		if info.rd != nil {
			info.rd.Close()
			info.rd = nil
		}
	}
	return err
}

// Stats returns a snapshot of the store's state.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.stats
	st.Segments = len(s.segs)
	for _, info := range s.segs {
		st.Bytes += info.size
		st.LiveRecords += info.live
		st.DeadRecords += info.dead
	}
	return st
}

// readEntry preads and decodes one record. Caller holds at least the
// read lock; segment bytes are immutable while indexed. Concurrent
// readers share the segment's cached handle — ReadAt carries its own
// offset, so no further locking is needed here.
func (s *Store) readEntry(e *entry) (Record, error) {
	info := s.segs[e.seg]
	if info == nil {
		return Record{}, fmt.Errorf("appstore: segment %d vanished from the index", e.seg)
	}
	rd, err := s.readHandle(e.seg, info)
	if err != nil {
		return Record{}, err
	}
	buf := make([]byte, e.n)
	if _, err := rd.ReadAt(buf, e.off); err != nil {
		return Record{}, fmt.Errorf("appstore: read record %d from segment %d: %w", e.seq, e.seg, err)
	}
	plen := int64(binary.LittleEndian.Uint32(buf[:4]))
	crc := binary.LittleEndian.Uint32(buf[4:8])
	if plen != e.n-frameSize {
		return Record{}, fmt.Errorf("appstore: record %d frame length drifted", e.seq)
	}
	payload := buf[frameSize:]
	if crc32.Checksum(payload, castagnoli) != crc {
		return Record{}, fmt.Errorf("appstore: record %d failed its checksum", e.seq)
	}
	_, r, err := decodeRecordPayload(payload)
	return r, err
}

// readHandle returns the segment's cached read handle, opening it
// lazily. The cache slot is mutated under the shared read lock (two
// readers may race to open the same segment), so the open itself is
// guarded by a small per-store mutex; the returned *os.File is used
// outside the guard, because ReadAt on a shared file is
// concurrency-safe — reads do not serialize on each other.
func (s *Store) readHandle(seg uint64, info *segInfo) (*os.File, error) {
	s.rdMu.Lock()
	defer s.rdMu.Unlock()
	if info.rd == nil {
		f, err := os.Open(segPath(s.dir, seg))
		if err != nil {
			return nil, fmt.Errorf("appstore: open segment %d: %w", seg, err)
		}
		info.rd = f
	}
	return info.rd, nil
}

// Get fetches one record by sequence number.
func (s *Store) Get(seq uint64) (Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i := s.findSeqLocked(seq)
	if i < 0 || s.entries[i].dead {
		return Record{}, fmt.Errorf("appstore: no record with seq %d", seq)
	}
	return s.readEntry(&s.entries[i])
}

// findSeqLocked binary-searches entries (ascending seq).
func (s *Store) findSeqLocked(seq uint64) int {
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].seq >= seq })
	if i < len(s.entries) && s.entries[i].seq == seq {
		return i
	}
	return -1
}

// ---- appdb read API, engine side -------------------------------------

// Apps returns all application names with live records, sorted.
func (s *Store) Apps() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byApp))
	for app, idxs := range s.byApp {
		if s.anyLiveLocked(idxs) {
			out = append(out, app)
		}
	}
	sort.Strings(out)
	return out
}

func (s *Store) anyLiveLocked(idxs []int) bool {
	for _, i := range idxs {
		if !s.entries[i].dead {
			return true
		}
	}
	return false
}

// Len returns the number of live records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, info := range s.segs {
		n += info.live
	}
	return n
}

// Runs returns all live records of an application, oldest first. An
// unreadable record (I/O error, checksum failure) is skipped, not
// fatal: the readable records are returned alongside an error
// describing what was lost, so callers can tell a short history from a
// damaged one.
func (s *Store) Runs(app string) ([]Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Record
	var firstErr error
	failed := 0
	for _, i := range s.byApp[app] {
		if s.entries[i].dead {
			continue
		}
		r, err := s.readEntry(&s.entries[i])
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			failed++
			continue
		}
		out = append(out, r)
	}
	if firstErr != nil {
		return out, fmt.Errorf("appstore: %d unreadable record(s) for %q: %w", failed, app, firstErr)
	}
	return out, nil
}

// Latest returns the most recent live record of an application.
func (s *Store) Latest(app string) (Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idxs := s.byApp[app]
	for i := len(idxs) - 1; i >= 0; i-- {
		if e := &s.entries[idxs[i]]; !e.dead {
			return s.readEntry(e)
		}
	}
	return Record{}, fmt.Errorf("appdb: no records for application %q", app)
}

// Summarize aggregates an application's live records from index
// metadata alone — no record body is read.
func (s *Store) Summarize(app string) (Summary, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	classCounts := make(map[appclass.Class]int)
	comp := make(map[appclass.Class]float64)
	var execSum time.Duration
	runs := 0
	for _, i := range s.byApp[app] {
		e := &s.entries[i]
		if e.dead {
			continue
		}
		runs++
		classCounts[e.class]++
		for _, c := range e.comp {
			comp[c.class] += c.frac
		}
		execSum += e.exec
	}
	if runs == 0 {
		return Summary{}, fmt.Errorf("appdb: no records for application %q", app)
	}
	for c := range comp {
		comp[c] /= float64(runs)
	}
	return Summary{
		App:             app,
		Runs:            runs,
		Class:           modalClass(classCounts),
		MeanComposition: comp,
		MeanExecution:   execSum / time.Duration(runs),
	}, nil
}

// modalClass picks the most frequent class, ties broken by the lesser
// class label — the same rule the in-memory engine applies.
func modalClass(counts map[appclass.Class]int) appclass.Class {
	var modal appclass.Class
	best := -1
	for c, n := range counts {
		if n > best || (n == best && c < modal) {
			modal, best = c, n
		}
	}
	return modal
}

// ByClass returns the applications whose modal class matches c, sorted.
func (s *Store) ByClass(c appclass.Class) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for app, idxs := range s.byApp {
		counts := make(map[appclass.Class]int)
		for _, i := range idxs {
			if e := &s.entries[i]; !e.dead {
				counts[e.class]++
			}
		}
		if len(counts) > 0 && modalClass(counts) == c {
			out = append(out, app)
		}
	}
	sort.Strings(out)
	return out
}

// TotalExecution sums the execution time of every live record.
func (s *Store) TotalExecution() time.Duration {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var sum time.Duration
	for i := range s.entries {
		if e := &s.entries[i]; !e.dead {
			sum += e.exec
		}
	}
	return sum
}

// Fingerprints returns the fingerprint dictionary — each application's
// most recent fingerprinted live record. Only those records' bodies are
// read, so the finalize-path dictionary lookup is O(apps), not
// O(records). An unreadable dictionary entry drops its application from
// the map; the partial dictionary is returned alongside an error naming
// the loss, so the caller can log that matching degraded rather than
// silently losing applications.
func (s *Store) Fingerprints() (map[string]phase.Fingerprint, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]phase.Fingerprint)
	var firstErr error
	failed := 0
	for app, idxs := range s.byApp {
		for i := len(idxs) - 1; i >= 0; i-- {
			e := &s.entries[idxs[i]]
			if e.dead || !e.hasFP {
				continue
			}
			r, err := s.readEntry(e)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				failed++
				break
			}
			if r.Fingerprint != nil && !r.Fingerprint.Empty() {
				out[app] = *r.Fingerprint
			}
			break
		}
	}
	if firstErr != nil {
		return out, fmt.Errorf("appstore: %d unreadable fingerprint dictionary entr(ies): %w", failed, firstErr)
	}
	return out, nil
}
