// Package appstore is the fleet-scale storage engine behind the
// application database (the paper's Figure-1 asset): an embedded,
// stdlib-only log-structured store of finalized run records. Records
// are appended to CRC32C-framed segment files — the framing and
// torn-tail idioms proven in internal/wal — and an in-memory index,
// rebuilt on open from the records' fixed headers alone (no JSON
// decode), serves secondary lookups by application, class, verdict,
// model hash, and finalize time plus a paginated Scan API. Compaction
// rewrites segments that carry deleted records and a retention policy
// (by age and by total bytes, floored so every application keeps its
// newest runs and its fingerprint-dictionary entry) bounds disk use,
// replacing the O(n) rewrite-the-world JSON persistence with an O(1)
// append on the finalize hot path.
package appstore

import (
	"fmt"
	"math"
	"time"

	"repro/internal/appclass"
	"repro/internal/phase"
)

// Record is one historical run of an application. It is aliased as
// appdb.Record: the appdb package keeps the public API, this package
// owns the storage format.
type Record struct {
	// App is the application name.
	App string `json:"app"`
	// Class is the majority-vote application class of the run.
	Class appclass.Class `json:"class"`
	// Composition is the class composition (fractions summing to ~1).
	Composition map[appclass.Class]float64 `json:"composition"`
	// ExecutionTime is the run's t1 - t0.
	ExecutionTime time.Duration `json:"execution_time_ns"`
	// Samples is the number of snapshots m in the run.
	Samples int `json:"samples"`
	// FinalizedAt is when the run's session finalized into the
	// database, unix nanoseconds (0 on records from before finalize
	// stamping). It orders Scan results and drives age-based retention;
	// zero-stamped records are exempt from age pruning.
	FinalizedAt int64 `json:"finalized_at_ns,omitempty"`
	// Gaps and GapTime account for known holes in the run's sample
	// stream (missed polls while the profiler source was down). A record
	// with nonzero gaps carries a composition estimated over partial
	// coverage rather than the full run; schedulers may weight it down.
	Gaps    int           `json:"gaps,omitempty"`
	GapTime time.Duration `json:"gap_time_ns,omitempty"`
	// Phases is the run's detected phase sequence (empty when the daemon
	// ran without online segmentation).
	Phases []phase.Phase `json:"phases,omitempty"`
	// Fingerprint is the canonicalized phase-sequence fingerprint of the
	// run, the key the fingerprint dictionary matches future runs
	// against. Nil when segmentation was off or the run had no phases.
	Fingerprint *phase.Fingerprint `json:"fingerprint,omitempty"`
	// MatchedApp and MatchScore record the best fingerprint-dictionary
	// match found when the run finalized ("" / 0 when nothing cleared
	// the match threshold).
	MatchedApp string  `json:"matched_app,omitempty"`
	MatchScore float64 `json:"match_score,omitempty"`
	// UnknownFraction is the fraction of the run's snapshots that fell
	// outside their voted class's open-set threshold.
	UnknownFraction float64 `json:"unknown_fraction,omitempty"`
	// Verdict is the open-set session verdict: the majority class when
	// the run looked like trained behaviour, appclass.Unknown when most
	// snapshots were novel, or "" when the open-set test was off.
	Verdict appclass.Class `json:"verdict,omitempty"`
	// ModelID is the short compatibility hash of the model that served
	// the run — verdict provenance, so a disagreement can be traced to
	// the model that produced it. "" on records from before model
	// stamping.
	ModelID string `json:"model_id,omitempty"`
	// TrainMetrics and TrainSamples are the run's retained raw
	// expert-metric sample rows (one value per metric in TrainMetrics,
	// uniformly decimated over the whole run), the corpus online
	// retraining refits from. Empty when the daemon ran without
	// sampling.
	TrainMetrics []string    `json:"train_metrics,omitempty"`
	TrainSamples [][]float64 `json:"train_samples,omitempty"`
}

// Validate checks the record's invariants.
func (r Record) Validate() error {
	if r.App == "" {
		return fmt.Errorf("appdb: record has empty application name")
	}
	if !appclass.Valid(r.Class) {
		return fmt.Errorf("appdb: record for %q has invalid class %q", r.App, r.Class)
	}
	if r.ExecutionTime < 0 {
		return fmt.Errorf("appdb: record for %q has negative execution time", r.App)
	}
	if r.Samples < 0 {
		return fmt.Errorf("appdb: record for %q has negative sample count", r.App)
	}
	if r.FinalizedAt < 0 {
		return fmt.Errorf("appdb: record for %q has negative finalize time", r.App)
	}
	if r.Gaps < 0 || r.GapTime < 0 {
		return fmt.Errorf("appdb: record for %q has negative gap accounting", r.App)
	}
	var total float64
	for c, f := range r.Composition {
		if !appclass.Valid(c) {
			return fmt.Errorf("appdb: record for %q has invalid composition class %q", r.App, c)
		}
		if !(f >= 0 && f <= 1) { // also rejects NaN, which JSON cannot encode
			return fmt.Errorf("appdb: record for %q has composition fraction %v outside [0,1]", r.App, f)
		}
		total += f
	}
	if len(r.Composition) > 0 && (total < 0.99 || total > 1.01) {
		return fmt.Errorf("appdb: record for %q has composition summing to %v", r.App, total)
	}
	if !(r.UnknownFraction >= 0 && r.UnknownFraction <= 1) {
		return fmt.Errorf("appdb: record for %q has unknown fraction %v outside [0,1]", r.App, r.UnknownFraction)
	}
	if r.Verdict != "" && r.Verdict != appclass.Unknown && !appclass.Valid(r.Verdict) {
		return fmt.Errorf("appdb: record for %q has invalid verdict %q", r.App, r.Verdict)
	}
	if !(r.MatchScore >= 0 && r.MatchScore <= 1) {
		return fmt.Errorf("appdb: record for %q has match score %v outside [0,1]", r.App, r.MatchScore)
	}
	if r.MatchedApp != "" && r.Fingerprint == nil {
		return fmt.Errorf("appdb: record for %q matched %q without a fingerprint", r.App, r.MatchedApp)
	}
	if len(r.TrainSamples) > 0 && len(r.TrainMetrics) == 0 {
		return fmt.Errorf("appdb: record for %q has training samples without metric names", r.App)
	}
	for i, row := range r.TrainSamples {
		if len(row) != len(r.TrainMetrics) {
			return fmt.Errorf("appdb: record for %q training sample %d has %d values, want %d",
				r.App, i, len(row), len(r.TrainMetrics))
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("appdb: record for %q training sample %d value %d is not finite", r.App, i, j)
			}
		}
	}
	return nil
}

// Summary aggregates an application's historical runs: the modal class,
// the mean composition, and the mean execution time — the "statistical
// abstracts of the application behavior" the paper stores for
// scheduling. Aliased as appdb.Summary.
type Summary struct {
	App             string
	Runs            int
	Class           appclass.Class
	MeanComposition map[appclass.Class]float64
	MeanExecution   time.Duration
}
