package server

import (
	"sync/atomic"
	"time"
)

// degradedState tracks the daemon's durability mode. The journal is
// supposed to make every acknowledged batch durable; when the journal
// itself fails persistently (ENOSPC, a dying disk), the choice is
// between wedging ingest behind a broken disk and continuing
// memory-only. With Config.DegradeOnWALError the daemon takes the
// second branch explicitly: mode flips to degraded, /readyz starts
// answering 503 and a loud gauge flips in /metricsz, ingest keeps
// classifying without journaling, and rate-limited probes re-arm the
// journal once the fault heals (followed immediately by a checkpoint
// that captures the unjournaled window).
type degradedState struct {
	mode      atomic.Bool
	lastProbe atomic.Int64 // unix nanos of the last re-arm probe
}

// defaultDegradedProbeEvery rate-limits journal re-arm probes while
// degraded, so a dead disk is not hammered on every batch.
const defaultDegradedProbeEvery = 5 * time.Second

// DurabilityDegraded reports whether the daemon is in degraded
// durability mode: a journal is configured but ingest is currently
// memory-only because the journal is failing.
func (s *Server) DurabilityDegraded() bool {
	return s.degraded.mode.Load()
}

// enterDegraded flips the daemon into degraded durability mode (once;
// concurrent callers coalesce).
func (s *Server) enterDegraded(cause error) {
	if s.degraded.mode.CompareAndSwap(false, true) {
		s.counters.degradedEntries.Add(1)
		s.cfg.Logf("server: DURABILITY DEGRADED: journal append failed (%v); ingest continues memory-only until the journal recovers", cause)
	}
}

// exitDegraded restores normal durability after a successful journal
// append and forces a prompt checkpoint: the checkpoint serializes full
// session state, so it covers every batch classified while the journal
// was down.
func (s *Server) exitDegraded() {
	if s.degraded.mode.CompareAndSwap(true, false) {
		s.counters.degradedExits.Add(1)
		s.cfg.Logf("server: durability restored: journal accepting appends again; checkpointing to cover the unjournaled window")
		s.kickCheckpointer()
	}
}

// durabilityProbeDue reports whether this caller won the right to run a
// re-arm probe: at most one probe per DegradedProbeEvery across all
// ingest goroutines.
func (s *Server) durabilityProbeDue() bool {
	now := s.now().UnixNano()
	last := s.degraded.lastProbe.Load()
	if now-last < s.cfg.DegradedProbeEvery.Nanoseconds() {
		return false
	}
	return s.degraded.lastProbe.CompareAndSwap(last, now)
}
