package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/appdb"
	"repro/internal/appstore"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/modelreg"
	"repro/internal/resilience"
	"repro/internal/wal"
)

// doRequest serves one request through the handler and returns the
// recorder.
func doRequest(h http.Handler, req *http.Request) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// pushSpan ingests trace snapshots [from, to) for vm as batches of up
// to 8, asserting every push answers 200.
func pushSpan(t *testing.T, h http.Handler, vm string, trace *metrics.Trace, from, to int) {
	t.Helper()
	for from < to {
		end := from + 8
		if end > to {
			end = to
		}
		snaps := make([]map[string]any, 0, end-from)
		for i := from; i < end; i++ {
			sn := trace.At(i)
			snaps = append(snaps, map[string]any{
				"vm": vm, "time_s": sn.Time.Seconds(), "values": sn.Values,
			})
		}
		w := postJSON(t, h, "/v1/ingest", map[string]any{"snapshots": snaps})
		if w.Code != http.StatusOK {
			t.Fatalf("push [%d,%d) for %s answered %d: %s", from, end, vm, w.Code, w.Body.String())
		}
		from = end
	}
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", timeout, what)
}

// flipTail XORs a byte near the end of path — inside the last frame's
// payload, so the frame stays walkable but its CRC no longer matches.
func flipTail(t *testing.T, path string) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() < 16 {
		t.Fatalf("segment %s too small to corrupt (%d bytes)", path, fi.Size())
	}
	if err := faultinject.FlipByte(path, fi.Size()-2, 0x40); err != nil {
		t.Fatal(err)
	}
}

func sortedGlob(t *testing.T, pattern string) []string {
	t.Helper()
	paths, err := filepath.Glob(pattern)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	return paths
}

func countEvents(t *testing.T, db *appdb.DB, typ string) []appdb.Event {
	t.Helper()
	evs, err := db.Events(0)
	if err != nil {
		t.Fatal(err)
	}
	var out []appdb.Event
	for _, e := range evs {
		if e.Type == typ {
			out = append(out, e)
		}
	}
	return out
}

// TestSelfHealingChaos is the PR's acceptance scenario, fully
// deterministic: a compactor that panics repeatedly (supervision
// escalates, readiness degrades, the task heals and readiness
// recovers), latent bit rot in one sealed journal segment and one
// closed application-database segment (the scrubber quarantines and
// repairs both with no live-record loss outside the damaged frames),
// and a bad model push whose open-set unknown rate spikes (probation
// auto-rolls back through the hot-swap path). The daemon answers
// pushes throughout and the finalized record survives untouched.
func TestSelfHealingChaos(t *testing.T) {
	cl := classifier(t)
	trace := profiledTrace(t, "Stream")
	want, err := cl.ClassifyTrace(trace)
	if err != nil {
		t.Fatal(err)
	}

	jdir := t.TempDir()
	j, err := wal.Open(wal.Config{Dir: jdir, Fsync: wal.FsyncNever, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() }) // after the server's shutdown cleanup

	dbdir := t.TempDir() + "/store"
	db, err := appdb.Open(dbdir, appstore.Options{SegmentBytes: 256, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}

	chaos := faultinject.NewTaskChaos()
	s := newTestServer(t, Config{
		Journal:               j,
		DB:                    db,
		StoreMaintEvery:       250 * time.Millisecond,
		ProbationWindow:       time.Hour,
		ProbationMinSnapshots: 20,
		TaskMaxRestarts:       3,
		TaskBackoff:           resilience.Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond},
		TaskIntercept:         chaos.Intercept,
	})
	h := s.Handler()

	// --- Ingest: three short filler sessions (they will populate the
	// closed store segments the bit rot lands in), then the full trace
	// on push-vm, finalized last so its record lives in the newest
	// segment, clear of the damage.
	filler := profiledTrace(t, "XSpim")
	fillerSpan := filler.Len()
	if fillerSpan > 12 {
		fillerSpan = 12
	}
	for i := 0; i < 3; i++ {
		vm := fmt.Sprintf("filler-%d", i)
		pushSpan(t, h, vm, filler, 0, fillerSpan)
		if w := postJSON(t, h, "/v1/vms/"+vm+"/finish", nil); w.Code != http.StatusOK {
			t.Fatalf("finish %s: %d %s", vm, w.Code, w.Body.String())
		}
	}
	pushSpan(t, h, "push-vm", trace, 0, trace.Len())
	wFin := postJSON(t, h, "/v1/vms/push-vm/finish", nil)
	if wFin.Code != http.StatusOK {
		t.Fatalf("finish push-vm: %d %s", wFin.Code, wFin.Body.String())
	}
	var fin finishResponse
	if err := json.Unmarshal(wFin.Body.Bytes(), &fin); err != nil {
		t.Fatal(err)
	}
	liveBefore := db.Store().Len()
	if liveBefore != 4 {
		t.Fatalf("finalized records = %d, want 4", liveBefore)
	}

	// --- Front 1: supervision. Script three consecutive panics into
	// the store-maintenance task; with TaskMaxRestarts=3 the third
	// escalates the task and readiness must report degraded until the
	// restarted task's first successful heartbeat clears it.
	chaos.PanicNext("store-maint", 3)
	s.StartStoreMaint()

	waitFor(t, 10*time.Second, "store-maint escalation to surface in readiness", func() bool {
		_, escalated := s.sup.Unhealthy()
		for _, name := range escalated {
			if name == "store-maint" {
				ready, reason := s.readiness()
				return !ready && strings.Contains(reason, "store-maint")
			}
		}
		return false
	})
	waitFor(t, 10*time.Second, "store-maint to heal and readiness to recover", func() bool {
		wedged, escalated := s.sup.Unhealthy()
		if len(wedged) > 0 || len(escalated) > 0 {
			return false
		}
		ready, _ := s.readiness()
		return ready
	})
	if got := chaos.InjectedPanics("store-maint"); got != 3 {
		t.Errorf("injected panics = %d, want 3", got)
	}
	if got := s.sup.Panics(); got != 3 {
		t.Errorf("supervisor captured %d panics, want 3", got)
	}
	if got := s.sup.Escalations(); got != 1 {
		t.Errorf("escalations = %d, want 1", got)
	}
	var maint *struct {
		restarts int64
		status   string
	}
	for _, ts := range s.sup.Snapshot() {
		if ts.Name == "store-maint" {
			maint = &struct {
				restarts int64
				status   string
			}{ts.Restarts, ts.Status}
		}
	}
	if maint == nil || maint.restarts != 3 || maint.status != "running" {
		t.Errorf("store-maint state = %+v, want 3 restarts and running", maint)
	}
	if evs := countEvents(t, db, "task_escalated"); len(evs) != 1 || evs[0].Detail["task"] != "store-maint" {
		t.Errorf("task_escalated events = %+v, want one for store-maint", evs)
	}

	// --- Front 2: storage scrubbing. Flip one payload byte in the
	// oldest sealed journal segment and the oldest closed store
	// segment, then drive scrub ticks across both stores. Nothing has
	// been checkpointed yet, so the journal repair must checkpoint
	// first (PreRepair), then quarantine and copy the survivors
	// forward.
	jsegs := sortedGlob(t, filepath.Join(jdir, "journal-*.wal"))
	if len(jsegs) < 2 {
		t.Fatalf("want >=2 journal segments, got %d", len(jsegs))
	}
	flipTail(t, jsegs[0])
	ssegs := sortedGlob(t, filepath.Join(dbdir, "store-*.seg"))
	if len(ssegs) < 2 {
		t.Fatalf("want >=2 store segments, got %d", len(ssegs))
	}
	flipTail(t, ssegs[0])

	ticks := len(jsegs) + len(ssegs) + 2
	for i := 0; i < ticks; i++ {
		s.scrubTick()
	}

	js := j.Stats()
	if js.ScrubRepairedSegments != 1 || js.ScrubQuarantined != 1 || js.ScrubLostRecords < 1 {
		t.Errorf("journal scrub stats = repaired %d quarantined %d lost %d, want 1/1/>=1",
			js.ScrubRepairedSegments, js.ScrubQuarantined, js.ScrubLostRecords)
	}
	if _, err := os.Stat(jsegs[0] + ".corrupt"); err != nil {
		t.Errorf("journal quarantine file missing: %v", err)
	}
	ss := db.Store().Stats()
	if ss.ScrubRepairedSegments != 1 || ss.ScrubQuarantined != 1 || ss.ScrubLostRecords != 1 {
		t.Errorf("store scrub stats = repaired %d quarantined %d lost %d, want 1/1/1",
			ss.ScrubRepairedSegments, ss.ScrubQuarantined, ss.ScrubLostRecords)
	}
	if _, err := os.Stat(ssegs[0] + ".corrupt"); err != nil {
		t.Errorf("store quarantine file missing: %v", err)
	}
	// Exactly the one record inside the damaged frame is gone; every
	// other finalized record survived the repair.
	if got := db.Store().Len(); got != liveBefore-1 {
		t.Errorf("live records after scrub = %d, want %d", got, liveBefore-1)
	}
	if evs := countEvents(t, db, "scrub_repair"); len(evs) != 2 {
		t.Errorf("scrub_repair events = %d, want 2 (journal + appdb): %+v", len(evs), evs)
	}

	// --- Front 3: promotion guardrails. Load a model whose open-set
	// slack is collapsed to near zero — it rejects essentially every
	// live snapshot as unknown — and promote it. The displaced model
	// shadow-guards in reverse; the unknown-rate spike must auto-roll
	// the swap back.
	boot := s.active.Load().model
	badParams := boot.Params
	badParams.OpenSetSlack = 0.001
	bad, err := modelreg.NewModel(cl, badParams, "chaos-test", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.models.Add(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Promote(bad.ID); err != nil {
		t.Fatalf("promote bad model: %v", err)
	}
	pb := s.probation.Load()
	if pb == nil || pb.newID != bad.ID || pb.prevID != boot.ID {
		t.Fatalf("probation not armed after promote: %+v", pb)
	}

	// While the bad model is on probation the guard cannot be deleted
	// out from under it.
	req, _ := http.NewRequest(http.MethodDelete, "/v1/models/"+boot.ID, nil)
	if w := doRequest(h, req); w.Code != http.StatusConflict {
		t.Errorf("deleting the probation guard answered %d, want 409", w.Code)
	}

	probeSpan := trace.Len()
	if probeSpan > 40 {
		probeSpan = 40
	}
	pushSpan(t, h, "probe-vm", trace, 0, probeSpan)
	view := s.probation.Load().eval.view()
	if view.Snapshots < 20 {
		t.Fatalf("probation observed %d snapshots, want >=20", view.Snapshots)
	}
	if view.UnknownRateActive < 3*view.UnknownRateCandidate+0.05 {
		t.Fatalf("bad model unknown rate %.3f vs guard %.3f — scenario did not produce a spike",
			view.UnknownRateActive, view.UnknownRateCandidate)
	}
	s.checkProbation()

	if got := s.active.Load().model.ID; got != boot.ID {
		t.Fatalf("active model after breach = %s, want rollback to %s", got, boot.ID)
	}
	if got := s.counters.modelRollbacks.Load(); got != 1 {
		t.Errorf("model rollbacks = %d, want 1", got)
	}
	if s.probation.Load() != nil {
		t.Error("probation still armed after rollback")
	}
	evs := countEvents(t, db, "model_rollback")
	if len(evs) != 1 || evs[0].Detail["from"] != bad.ID || evs[0].Detail["to"] != boot.ID {
		t.Errorf("model_rollback events = %+v, want one from %s to %s", evs, bad.ID, boot.ID)
	}

	// --- End state: the daemon is live and the finalized record
	// matches both its at-finish composition and the fault-free batch
	// classifier, untouched by scrub repairs and the bad-model window.
	rec, err := db.Latest("push-vm")
	if err != nil {
		t.Fatalf("push-vm record lost: %v", err)
	}
	if string(rec.Class) != fin.Class || rec.Class != want.Class {
		t.Errorf("push-vm class = %s, finish said %s, batch classifier %s", rec.Class, fin.Class, want.Class)
	}
	for class, frac := range fin.Composition {
		if got := rec.Composition[class]; got != frac {
			t.Errorf("composition[%s] = %g, was %g at finish time", class, got, frac)
		}
	}

	readyReq, _ := http.NewRequest(http.MethodGet, "/readyz", nil)
	if w := doRequest(h, readyReq); w.Code != http.StatusOK {
		t.Errorf("/readyz after recovery = %d: %s", w.Code, w.Body.String())
	}
	metricsReq, _ := http.NewRequest(http.MethodGet, "/metricsz", nil)
	body := doRequest(h, metricsReq).Body.String()
	for _, line := range []string{
		"appclassd_model_rollbacks_total 1",
		`appclassd_task_restarts_total{task="store-maint"} 3`,
		"appclassd_task_escalations_total 1",
		"appclassd_journal_scrub_repaired_segments_total 1",
		"appclassd_appdb_scrub_repaired_segments_total 1",
	} {
		if !strings.Contains(body, line) {
			t.Errorf("metricsz missing %q", line)
		}
	}
}

// TestProbationPassesQuietly covers the happy half of guarded
// promotion: a healthy model rides out its window without a breach,
// graduates, and frees its guard for deletion.
func TestProbationPassesQuietly(t *testing.T) {
	cl := classifier(t)
	clk := &fakeClock{t: time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)}
	db, err := appdb.Open(t.TempDir()+"/store", appstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{
		Now:                   clk.now,
		DB:                    db,
		ProbationWindow:       time.Minute,
		ProbationMinSnapshots: 10,
	})
	h := s.Handler()

	boot := s.active.Load().model
	goodParams := boot.Params
	goodParams.OpenSetQuantile = 0.98 // same behavior, different identity
	good, err := modelreg.NewModel(cl, goodParams, "test", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.models.Add(good); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Promote(good.ID); err != nil {
		t.Fatal(err)
	}
	if s.probation.Load() == nil {
		t.Fatal("probation not armed")
	}

	// Traffic both models agree on: no breach, window expires, pass.
	pushSpan(t, h, "agree-vm", profiledTrace(t, "Stream"), 0, 24)
	s.checkProbation()
	if s.probation.Load() == nil {
		t.Fatal("probation cleared before its deadline")
	}
	clk.advance(2 * time.Minute)
	s.checkProbation()
	if s.probation.Load() != nil {
		t.Error("probation still armed after its window passed")
	}
	if got := s.counters.probationPasses.Load(); got != 1 {
		t.Errorf("probation passes = %d, want 1", got)
	}
	if got := s.counters.modelRollbacks.Load(); got != 0 {
		t.Errorf("model rollbacks = %d, want 0", got)
	}
	if got := s.active.Load().model.ID; got != good.ID {
		t.Errorf("active model = %s, want %s", got, good.ID)
	}
	if evs := countEvents(t, db, "model_probation_passed"); len(evs) != 1 {
		t.Errorf("model_probation_passed events = %+v, want one", evs)
	}

	// The graduate released its guard: deletion now succeeds.
	req, _ := http.NewRequest(http.MethodDelete, "/v1/models/"+boot.ID, nil)
	if w := doRequest(h, req); w.Code != http.StatusOK {
		t.Errorf("deleting the retired guard after the pass = %d, want 200", w.Code)
	}
}
