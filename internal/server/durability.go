package server

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/classify"
	"repro/internal/supervise"
	"repro/internal/wal"
)

// checkpointPayload is the JSON document a checkpoint stores: one
// serialized Online state per live session, plus the wall-clock moment
// each session last saw a snapshot (so idle-TTL accounting survives a
// restart).
type checkpointPayload struct {
	Sessions []sessionCheckpoint `json:"sessions"`
}

type sessionCheckpoint struct {
	VM             string               `json:"vm"`
	LastSeenUnixNS int64                `json:"last_seen_unix_ns"`
	State          classify.OnlineState `json:"state"`
}

// Checkpoint serializes every live session together with the current
// journal position into an atomically written checkpoint file. Recovery
// is then "restore these sessions, replay the journal from this
// position". No-op without a journal.
func (s *Server) Checkpoint() error {
	j := s.cfg.Journal
	if j == nil {
		return nil
	}
	// Quiesce ingest: with the write side of ckptMu held, no journal
	// append can interleave with its session-state application, so the
	// position and the states below are one consistent cut.
	s.ckptMu.Lock()
	pos := j.Pos()
	modelHash := s.activeModelHash()
	var payload checkpointPayload
	for _, sess := range s.reg.all() {
		sess.mu.Lock()
		if !sess.finalized {
			payload.Sessions = append(payload.Sessions, sessionCheckpoint{
				VM:             sess.vm,
				LastSeenUnixNS: sess.lastSeen.UnixNano(),
				State:          sess.online.ExportState(),
			})
		}
		sess.mu.Unlock()
	}
	s.ckptMu.Unlock()

	// ExportState deep-copies, so encoding and the disk write happen
	// outside the quiesce.
	doc, err := json.Marshal(payload)
	if err != nil {
		s.counters.checkpointErrors.Add(1)
		return fmt.Errorf("server: encode checkpoint: %w", err)
	}
	seq, err := wal.SaveCheckpoint(j.Dir(), pos, s.now(), modelHash, doc)
	if err != nil {
		s.counters.checkpointErrors.Add(1)
		return fmt.Errorf("server: checkpoint: %w", err)
	}
	// Everything before pos is folded into the checkpoint; retention may
	// now discard older segments, but nothing at or after pos.Seg.
	j.SetRetainFloor(pos.Seg)
	s.counters.checkpoints.Add(1)
	s.cfg.Logf("server: checkpoint %d: %d session(s) at seg %d off %d",
		seq, len(payload.Sessions), pos.Seg, pos.Off)
	return nil
}

// StartCheckpointer launches the periodic checkpoint loop (cadence
// Config.CheckpointEvery) as a supervised task. Finalizations nudge it
// so finalize markers are covered by a checkpoint promptly. The
// heartbeat beats per iteration, so a checkpoint quiesce that never
// drains (ckptMu held forever by a stuck reader) is detected as a
// wedged task and surfaced through /readyz instead of silently leaving
// the journal to grow unbounded. No-op without a journal.
func (s *Server) StartCheckpointer() {
	if s.cfg.Journal == nil {
		return
	}
	hb := 4 * s.cfg.CheckpointEvery
	s.sup.Go("checkpointer", supervise.TaskOptions{Heartbeat: hb}, func(stop <-chan struct{}, t *supervise.Task) {
		tick := time.NewTicker(s.cfg.CheckpointEvery)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			case <-s.ckptKick:
			}
			t.Beat()
			if err := s.Checkpoint(); err != nil {
				s.cfg.Logf("server: %v", err)
			}
		}
	})
}

// kickCheckpointer requests a prompt checkpoint without blocking; a
// kick while one is already pending coalesces.
func (s *Server) kickCheckpointer() {
	select {
	case s.ckptKick <- struct{}{}:
	default:
	}
}

// RecoveryStats reports what Recover rebuilt.
type RecoveryStats struct {
	// CheckpointSeq is the checkpoint recovery started from (0 if none).
	CheckpointSeq uint64
	// Sessions restored from the checkpoint.
	Sessions int
	// Records, Snapshots, and Finalized count journal-tail replay work:
	// batch records applied, snapshots inside them, and finalize markers
	// honored.
	Records   int
	Snapshots int
	Finalized int
	// Errors counts records that could not be applied (logged, skipped).
	Errors int
	// Truncated reports a torn journal tail — the normal crash shape.
	// The torn segment was repaired (cut at its last valid record)
	// before replay, so replay itself ran over a clean journal and a
	// later recovery can reach every segment written after this one.
	Truncated bool
	// GapSegments lists journal segment sequence numbers that were
	// missing from the replay range: records in them are unrecoverable
	// (deleted out of band, or pruned by a pre-floor retention pass).
	GapSegments []uint64
}

// Recover rebuilds live sessions after a restart: it repairs any torn
// journal tail (cutting it at the last valid record, so double-crash
// replays stay contiguous), loads the latest checkpoint (if any),
// restores each serialized session, then replays the journal tail from
// the checkpoint's position — batches re-classify into their sessions,
// finalize markers finalize into the application database. It finishes
// by writing a fresh checkpoint covering everything recovered. Call it
// after New and before serving traffic; it is single-threaded and must
// not race ingest. No-op without a journal.
func (s *Server) Recover() (RecoveryStats, error) {
	var rs RecoveryStats
	j := s.cfg.Journal
	if j == nil {
		return rs, nil
	}
	// Repair torn segments BEFORE replaying. A crash mid-write leaves a
	// torn tail; if it were left in place, this replay would stop there —
	// fine today, but after a second crash the torn segment is no longer
	// the journal's last, and a replay that stops at it would silently
	// skip every record appended after this restart. Cutting the tear at
	// its last valid record now keeps the journal walkable end to end.
	fixed, err := wal.TruncateAtCorruption(j.Dir())
	if err != nil {
		return rs, fmt.Errorf("server: recover: repair journal: %w", err)
	}
	for _, info := range fixed {
		rs.Truncated = true
		s.cfg.Logf("server: recover: journal segment %d torn (%s); cut at last valid record, %d byte(s) kept",
			info.Seq, info.TornReason, info.ValidBytes)
	}
	cp, err := wal.LatestCheckpoint(j.Dir())
	if err != nil {
		return rs, fmt.Errorf("server: recover: %w", err)
	}
	activeHash := s.activeModelHash()
	var from wal.Position
	if cp != nil {
		// A checkpoint's serialized sessions (per-metric drift state,
		// fused-space segmenter history, training reservoirs) are only
		// meaningful under the exact model that produced them, so a hash
		// mismatch refuses recovery outright. -recover-force downgrades the
		// refusal: the checkpoint is discarded and the journal tail alone
		// is replayed under the current model.
		restoreSessions := true
		switch {
		case cp.ModelHash == "":
			s.cfg.Logf("server: recover: checkpoint %d predates model stamping; assuming it matches model %s", cp.Seq, s.ActiveModelID())
		case cp.ModelHash != activeHash:
			if !s.cfg.RecoverForce {
				return rs, fmt.Errorf("server: recover: checkpoint %d was written under model %s but this daemon is serving model %s — serialized session state is not portable across models; start the daemon with the matching model, or pass -recover-force to discard the checkpoint and rebuild from the journal tail only",
					cp.Seq, cp.ModelHash, activeHash)
			}
			restoreSessions = false
			s.cfg.Logf("server: recover: FORCED past model mismatch: discarding checkpoint %d (model %s != active %s); sessions will be rebuilt from the journal tail only and may be incomplete",
				cp.Seq, cp.ModelHash, activeHash)
		}
		if restoreSessions {
			var payload checkpointPayload
			if err := json.Unmarshal(cp.Payload, &payload); err != nil {
				return rs, fmt.Errorf("server: recover: decode checkpoint %d: %w", cp.Seq, err)
			}
			for _, sc := range payload.Sessions {
				online, err := classify.RestoreOnline(s.activeClassifier(), s.cfg.Schema, sc.State)
				if err != nil {
					return rs, fmt.Errorf("server: recover: session %s: %w", sc.VM, err)
				}
				// The restored segmenter (if any) carries on; only the open-set
				// thresholds need re-attaching — they are never checkpointed.
				s.armOnline(online)
				sess := &session{vm: sc.VM, online: online, lastSeen: time.Unix(0, sc.LastSeenUnixNS), model: s.ActiveModelID()}
				if _, created, err := s.reg.getOrCreate(sc.VM, func() (*session, error) {
					return sess, nil
				}); err != nil {
					return rs, fmt.Errorf("server: recover: session %s: %w", sc.VM, err)
				} else if !created {
					return rs, fmt.Errorf("server: recover: duplicate session %s in checkpoint %d", sc.VM, cp.Seq)
				}
				rs.Sessions++
			}
		}
		from = cp.Pos
		rs.CheckpointSeq = cp.Seq
	}
	s.counters.recoveredSessions.Add(int64(rs.Sessions))

	// The journal segments about to be replayed must also have been
	// written under the active model: a record framed under a different
	// model's schema/format is not safe to re-classify. Unstamped (v1)
	// segments are allowed through with a note.
	if hashes, herr := wal.SegmentHashes(j.Dir(), from.Seg); herr != nil {
		s.cfg.Logf("server: recover: scan segment headers: %v", herr)
	} else {
		var mismatched []uint64
		unstamped := 0
		for seq, h := range hashes {
			switch h {
			case "":
				unstamped++
			case activeHash:
			default:
				mismatched = append(mismatched, seq)
			}
		}
		if unstamped > 0 {
			s.cfg.Logf("server: recover: %d journal segment(s) predate model stamping; assuming they match model %s", unstamped, s.ActiveModelID())
		}
		if len(mismatched) > 0 {
			sort.Slice(mismatched, func(a, b int) bool { return mismatched[a] < mismatched[b] })
			if !s.cfg.RecoverForce {
				return rs, fmt.Errorf("server: recover: journal segment(s) %v were written under a different model than the active %s — refusing to replay them; start the daemon with the matching model, or pass -recover-force to replay anyway",
					mismatched, activeHash)
			}
			s.cfg.Logf("server: recover: FORCED past model mismatch in journal segment(s) %v; replaying them under model %s anyway", mismatched, s.ActiveModelID())
		}
	}

	replay, err := wal.Replay(j.Dir(), from, func(pos wal.Position, rec wal.Record) error {
		switch rec.Type {
		case wal.RecordBatch:
			if _, _, err := s.observeBatch(rec.VM, rec.Snaps, nil, false); err != nil {
				rs.Errors++
				s.cfg.Logf("server: recover: replay batch for %s at seg %d off %d: %v",
					rec.VM, pos.Seg, pos.Off, err)
				return nil
			}
			rs.Records++
			rs.Snapshots += len(rec.Snaps)
			s.counters.replayedSnapshots.Add(int64(len(rec.Snaps)))
		case wal.RecordFinalize:
			rs.Records++
			sess, ok := s.reg.get(rec.VM)
			if !ok {
				// Session finalized with no prior state in this tail — its
				// batches were all covered by the checkpoint cut or it never
				// classified anything. Nothing to finalize again.
				return nil
			}
			if s.finalize(sess, false) {
				rs.Finalized++
			}
		}
		return nil
	})
	if err != nil {
		return rs, fmt.Errorf("server: recover: %w", err)
	}
	if replay.Truncated {
		// Should not happen after the repair pass above; report it anyway.
		rs.Truncated = true
		s.cfg.Logf("server: recover: journal tail torn at seg %d off %d; replay stopped at last valid record",
			replay.TruncatedAt.Seg, replay.TruncatedAt.Off)
	}
	if len(replay.MissingSegments) > 0 {
		rs.GapSegments = replay.MissingSegments
		s.counters.journalGapSegments.Add(int64(len(replay.MissingSegments)))
		s.cfg.Logf("server: recover: JOURNAL GAP: segment(s) %v missing from %s — records in them are unrecoverable and the recovered state may be incomplete",
			replay.MissingSegments, j.Dir())
	}
	if rs.Sessions > 0 || rs.Records > 0 {
		s.cfg.Logf("server: recovered %d session(s) from checkpoint %d, replayed %d record(s) (%d snapshot(s), %d finalize(s), %d error(s))",
			rs.Sessions, rs.CheckpointSeq, rs.Records, rs.Snapshots, rs.Finalized, rs.Errors)
	}
	// Checkpoint immediately: the recovered state now covers everything
	// on disk, so pinning it (and the retention floor) to the journal's
	// current position means a crash right after this restart replays
	// only post-restart records instead of re-walking old segments.
	// Failure is not fatal — the repaired journal alone already replays
	// correctly from the previous checkpoint.
	if err := s.Checkpoint(); err != nil {
		s.cfg.Logf("server: recover: post-recovery checkpoint: %v", err)
	}
	return rs, nil
}
