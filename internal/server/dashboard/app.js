// appclassd control-plane dashboard. Pure browser JS, no dependencies:
// polls /v1/status, /v1/vms and /v1/runs and renders them.
"use strict";

const CLASSES = ["idle", "io", "cpu", "net", "mem"];
const COLORS = {
  idle: "var(--idle)", io: "var(--io)", cpu: "var(--cpu)",
  net: "var(--net)", mem: "var(--mem)", unknown: "var(--unknown)",
};
const REFRESH_MS = 3000;

const $ = (id) => document.getElementById(id);

// esc HTML-escapes a value before it is interpolated into an innerHTML
// template. VM and application names, model ids and timestamps all come
// from the untrusted ingest API, so anything reaching innerHTML without
// this is stored XSS.
function esc(v) {
  return String(v ?? "").replace(/[&<>"']/g, (ch) => ({
    "&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;", "'": "&#39;",
  }[ch]));
}

function fmtCount(n) {
  if (n >= 1e9) return (n / 1e9).toFixed(1) + "G";
  if (n >= 1e6) return (n / 1e6).toFixed(1) + "M";
  if (n >= 1e3) return (n / 1e3).toFixed(1) + "k";
  return String(n);
}

function fmtBytes(n) {
  const units = ["B", "KiB", "MiB", "GiB", "TiB"];
  let i = 0;
  while (n >= 1024 && i < units.length - 1) { n /= 1024; i++; }
  return n.toFixed(i ? 1 : 0) + " " + units[i];
}

function fmtDuration(secs) {
  if (secs < 90) return secs.toFixed(0) + "s";
  if (secs < 5400) return (secs / 60).toFixed(0) + "m";
  if (secs < 129600) return (secs / 3600).toFixed(1) + "h";
  return (secs / 86400).toFixed(1) + "d";
}

function classTag(cls) {
  if (!cls) return "";
  const span = document.createElement("span");
  span.className = "class-tag class-" + cls;
  span.textContent = cls;
  return span.outerHTML;
}

function compBar(comp) {
  if (!comp) return "";
  const parts = Object.entries(comp)
    .filter(([, f]) => f > 0.005)
    .sort((a, b) => b[1] - a[1])
    .map(([c, f]) =>
      `<span style="width:${(f * 100).toFixed(1)}%;background:${COLORS[c] || "var(--idle)"}" title="${esc(c)} ${(f * 100).toFixed(0)}%"></span>`);
  return `<div class="compbar">${parts.join("")}</div>`;
}

function setPill(el, text, tone) {
  el.textContent = text;
  el.className = "pill" + (tone ? " " + tone : "");
}

async function getJSON(path) {
  const resp = await fetch(path, { cache: "no-store" });
  if (!resp.ok) throw new Error(path + " -> " + resp.status);
  return resp.json();
}

// ---- status + cards --------------------------------------------------

async function refreshStatus() {
  const st = await getJSON("../v1/status");
  setPill($("uptime"), "up " + fmtDuration(st.uptime_s));
  const durTone = { journaled: "ok", none: "warn", degraded: "bad" }[st.durability];
  setPill($("durability"), "durability: " + st.durability, durTone);
  if (st.breaker_state < 0) {
    setPill($("breaker"), "poll: off");
  } else {
    const names = ["closed", "half-open", "open"];
    setPill($("breaker"), "breaker: " + names[st.breaker_state],
      ["ok", "warn", "bad"][st.breaker_state]);
  }
  setPill($("model"), "model: " + (st.model || "n/a"));
  $("refreshed").textContent = "refreshed " + new Date().toLocaleTimeString();

  $("stat-sessions").textContent = fmtCount(st.sessions);
  $("stat-ingested").textContent = fmtCount(st.ingested);
  $("stat-records").textContent = fmtCount(st.db_records);
  $("stat-apps").textContent = fmtCount(st.db_apps);
  if (st.store) {
    $("card-store").hidden = false;
    $("stat-segments").textContent = st.store.segments;
    $("stat-bytes").textContent = fmtBytes(st.store.bytes);
  }
  if (st.hosts) {
    $("card-placement").hidden = false;
    $("stat-hosts").textContent = st.hosts;
    $("stat-placements").textContent = st.placements;
  }
  $("advice-section").hidden = !st.has_advice;

  renderClassMix(st.classes || {});
}

function renderClassMix(mix) {
  const host = $("classmix");
  const total = Object.values(mix).reduce((a, b) => a + b, 0);
  const rows = CLASSES.concat(["unknown"]).filter((c) => mix[c]);
  host.innerHTML = rows.length === 0
    ? '<p class="muted">No classified sessions yet.</p>'
    : rows.map((c) => {
        const n = mix[c];
        const pct = total ? (100 * n / total) : 0;
        return `<div class="bar-row"><div class="name">${c}</div>` +
          `<div class="track"><div class="fill" style="width:${pct.toFixed(1)}%;background:${COLORS[c]}"></div></div>` +
          `<div class="count">${n}</div></div>`;
      }).join("");
}

// ---- live sessions ---------------------------------------------------

async function refreshSessions() {
  const data = await getJSON("../v1/vms");
  const tbody = $("sessions").querySelector("tbody");
  const vms = data.vms || [];
  $("sessions-empty").hidden = vms.length > 0;
  tbody.innerHTML = vms.map((vm) => `<tr>
    <td class="mono">${esc(vm.vm)}</td>
    <td>${classTag(vm.class)}</td>
    <td>${classTag(vm.verdict)}</td>
    <td>${vm.unknown_fraction ? (100 * vm.unknown_fraction).toFixed(0) + "%" : ""}</td>
    <td>${esc(vm.phases || "")}</td>
    <td>${fmtCount(vm.snapshots)}</td>
    <td>${vm.drift ? vm.drift.toFixed(3) : "0"}</td>
    <td>${vm.gaps ? esc(vm.gaps) + " (" + fmtDuration(vm.gap_s) + ")" : ""}</td>
    <td class="muted">${esc(vm.last_seen)}</td>
  </tr>`).join("");
}

// ---- finalized runs (paginated) --------------------------------------

// cursorStack holds the cursor that produced each page, so "newer" can
// walk back; cursors[0] is always 0 (the newest page).
let cursorStack = [0];
let nextCursor = 0;

function runsQuery() {
  const params = new URLSearchParams();
  const cls = $("filter-class").value;
  const verdict = $("filter-verdict").value;
  if (cls) params.set("class", cls);
  if (verdict) params.set("verdict", verdict);
  const cursor = cursorStack[cursorStack.length - 1];
  if (cursor) params.set("cursor", String(cursor));
  params.set("limit", "15");
  return "../v1/runs?" + params.toString();
}

async function refreshRuns() {
  const data = await getJSON(runsQuery());
  nextCursor = data.next_cursor || 0;
  $("runs-prev").disabled = cursorStack.length <= 1;
  $("runs-next").disabled = nextCursor === 0;
  const runs = data.runs || [];
  $("runs-empty").hidden = runs.length > 0;
  const tbody = $("runs").querySelector("tbody");
  tbody.innerHTML = runs.map((r) => `<tr>
    <td class="mono">${esc(r.app)}</td>
    <td>${classTag(r.class)}</td>
    <td>${classTag(r.verdict)}</td>
    <td>${compBar(r.composition)}</td>
    <td>${fmtDuration(r.execution_s)}</td>
    <td>${fmtCount(r.samples)}</td>
    <td class="mono muted">${esc(r.model || "")}</td>
    <td>${r.matched_app ? esc(r.matched_app) + " (" + r.match_score.toFixed(2) + ")" : ""}</td>
    <td class="muted">${esc(r.finalized_at || "")}</td>
  </tr>`).join("");
}

// ---- placement advice ------------------------------------------------

async function refreshAdvice() {
  if ($("advice-section").hidden) return;
  try {
    const data = await getJSON("../v1/placements/advice");
    $("advice").textContent = JSON.stringify(data, null, 2);
  } catch {
    $("advice").textContent = "advice unavailable";
  }
}

// ---- wiring ----------------------------------------------------------

function resetRuns() {
  cursorStack = [0];
  refreshRuns().catch(console.error);
}

for (const c of CLASSES) {
  const opt = document.createElement("option");
  opt.value = c;
  opt.textContent = c;
  $("filter-class").appendChild(opt);
}
for (const c of CLASSES) {
  const opt = document.createElement("option");
  opt.value = c;
  opt.textContent = c;
  $("filter-verdict").appendChild(opt);
}
$("filter-class").addEventListener("change", resetRuns);
$("filter-verdict").addEventListener("change", resetRuns);
$("runs-next").addEventListener("click", () => {
  if (nextCursor) { cursorStack.push(nextCursor); refreshRuns().catch(console.error); }
});
$("runs-prev").addEventListener("click", () => {
  if (cursorStack.length > 1) { cursorStack.pop(); refreshRuns().catch(console.error); }
});

function tick() {
  refreshStatus().catch(console.error);
  refreshSessions().catch(console.error);
  refreshRuns().catch(console.error);
  refreshAdvice().catch(console.error);
}

tick();
setInterval(tick, REFRESH_MS);
