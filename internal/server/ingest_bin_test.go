package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/modelreg"
	"repro/internal/wal"
	"repro/internal/wire"
)

// binDial wraps a server's handler in a live httptest server and
// returns a wire client speaking the given metric column order.
func binDial(t *testing.T, s *Server, names []string) *wire.Client {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return wire.NewClient(ts.URL, names, ts.Client())
}

// postBin ships one raw binary body at /v1/ingest.bin.
func postBin(t *testing.T, h http.Handler, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/ingest.bin", bytes.NewReader(body))
	req.Header.Set("Content-Type", wire.ContentType)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// oneFrame frames a single payload.
func oneFrame(payload []byte) []byte {
	buf, start := wire.BeginFrame(nil)
	buf = append(buf, payload...)
	return wire.EndFrame(buf, start)
}

func TestBinaryIngestRoundTrip(t *testing.T) {
	s := newTestServer(t, Config{})
	schema := metrics.DefaultSchema()

	// Reverse the column order so the scatter through the negotiated
	// table is exercised, not just the identity mapping.
	names := schema.Names()
	rev := make([]string, len(names))
	for i, n := range names {
		rev[len(names)-1-i] = n
	}
	c := binDial(t, s, rev)

	ctx := context.Background()
	if err := c.Handshake(ctx); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	if c.StreamID() == 0 {
		t.Fatal("handshake returned stream id 0")
	}
	if c.ModelHash() == ([wire.HashSize]byte{}) {
		t.Fatal("handshake returned a zero model hash")
	}
	classes := c.Classes()
	if len(classes) != len(binClassTable) || classes[len(classes)-1] != "unknown" {
		t.Fatalf("negotiated class table = %v", classes)
	}

	row := func() []float64 { return make([]float64, schema.Len()) }
	groups := []wire.Group{
		{VM: "vm-bin-a", Times: []float64{0, 5, 10}, Rows: [][]float64{row(), row(), row()}},
		{VM: "vm-bin-b", Times: []float64{0, 5}, Rows: [][]float64{row(), row()}},
	}
	got, err := c.Send(ctx, groups)
	if err != nil {
		t.Fatalf("send: %v", err)
	}
	if len(got) != 5 {
		t.Fatalf("send returned %d classes, want 5", len(got))
	}
	for i, cl := range got {
		found := false
		for _, name := range classes {
			if cl == name {
				found = true
			}
		}
		if !found {
			t.Errorf("class %d = %q not in negotiated table", i, cl)
		}
	}
	if _, err := c.Send(ctx, groups[:1]); err != nil {
		t.Fatalf("second send: %v", err)
	}

	var vm vmDetail
	decodeGet(t, s.Handler(), "/v1/vms/vm-bin-a", &vm)
	if vm.Snapshots != 6 {
		t.Errorf("vm-bin-a snapshots = %d, want 6", vm.Snapshots)
	}
	if n := s.counters.binHandshakes.Load(); n != 1 {
		t.Errorf("binHandshakes = %d, want 1", n)
	}
	if n := s.counters.binBatches.Load(); n != 2 {
		t.Errorf("binBatches = %d, want 2", n)
	}
	if n := s.binStreams.len(); n != 1 {
		t.Errorf("active streams = %d, want 1", n)
	}
}

// TestBinaryJSONEquivalence feeds one deterministic multi-VM trace
// through the JSON path of one server and the binary path of another
// (with a shuffled wire column table, so the scatter is doing real
// work) and asserts the outcomes are bit-identical: per-snapshot
// classes, the /v1/vms composition report, and the journal segments on
// disk.
func TestBinaryJSONEquivalence(t *testing.T) {
	schema := metrics.DefaultSchema()
	fixed := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	now := func() time.Time { return fixed }

	openJournal := func(dir string) *wal.Journal {
		j, err := wal.Open(wal.Config{Dir: dir, Now: now})
		if err != nil {
			t.Fatalf("wal.Open(%s): %v", dir, err)
		}
		return j
	}
	dirJSON, dirBin := t.TempDir(), t.TempDir()
	sJSON := newTestServer(t, Config{Journal: openJournal(dirJSON), Now: now})
	sBin := newTestServer(t, Config{Journal: openJournal(dirBin), Now: now})

	// A deterministically shuffled wire column table.
	names := append([]string(nil), schema.Names()...)
	rand.New(rand.NewSource(3)).Shuffle(len(names), func(i, j int) {
		names[i], names[j] = names[j], names[i]
	})
	perm := make([]int, len(names)) // wire column -> schema index
	for i, n := range names {
		idx, ok := schema.Index(n)
		if !ok {
			t.Fatalf("schema lost metric %q", n)
		}
		perm[i] = idx
	}
	c := binDial(t, sBin, names)

	rng := rand.New(rand.NewSource(42))
	vms := []string{"vm-eq-0", "vm-eq-1", "vm-eq-2"}
	const reqs, rows = 6, 4
	ctx := context.Background()
	for r := 0; r < reqs; r++ {
		var jsonSnaps []any
		groups := make([]wire.Group, 0, len(vms))
		for _, vm := range vms {
			g := wire.Group{VM: vm}
			for k := 0; k < rows; k++ {
				ts := float64(r*rows+k) * 5.0
				vals := make([]float64, schema.Len())
				for j := range vals {
					vals[j] = rng.Float64() * 100
				}
				jsonSnaps = append(jsonSnaps, map[string]any{"vm": vm, "time_s": ts, "values": vals})
				wireRow := make([]float64, len(perm))
				for i, idx := range perm {
					wireRow[i] = vals[idx]
				}
				g.Times = append(g.Times, ts)
				g.Rows = append(g.Rows, wireRow)
			}
			groups = append(groups, g)
		}

		w := postJSON(t, sJSON.Handler(), "/v1/ingest", map[string]any{"snapshots": jsonSnaps})
		if w.Code != http.StatusOK {
			t.Fatalf("request %d: json ingest = %d: %s", r, w.Code, w.Body.String())
		}
		var jr struct {
			Results []struct {
				VM    string `json:"vm"`
				Class string `json:"class"`
			} `json:"results"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &jr); err != nil {
			t.Fatal(err)
		}
		bres, err := c.Send(ctx, groups)
		if err != nil {
			t.Fatalf("request %d: binary send: %v", r, err)
		}
		if len(bres) != len(jr.Results) {
			t.Fatalf("request %d: %d binary classes vs %d json results", r, len(bres), len(jr.Results))
		}
		for i := range bres {
			if bres[i] != jr.Results[i].Class {
				t.Errorf("request %d snapshot %d: binary %q, json %q", r, i, bres[i], jr.Results[i].Class)
			}
		}
	}

	// Composition reports must match byte for byte (the fake clock makes
	// last_seen deterministic).
	getBody := func(s *Server) string {
		req := httptest.NewRequest(http.MethodGet, "/v1/vms", nil)
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("GET /v1/vms = %d", w.Code)
		}
		return w.Body.String()
	}
	if j, b := getBody(sJSON), getBody(sBin); j != b {
		t.Errorf("/v1/vms diverged:\njson: %s\nbinary: %s", j, b)
	}

	// Journals must be bit-identical: same segments, same bytes.
	if err := sJSON.cfg.Journal.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := sBin.cfg.Journal.Sync(); err != nil {
		t.Fatal(err)
	}
	segs := func(dir string) []string {
		m, err := filepath.Glob(filepath.Join(dir, "*"))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	js, bs := segs(dirJSON), segs(dirBin)
	if len(js) != len(bs) || len(js) == 0 {
		t.Fatalf("segment counts: json %d, binary %d", len(js), len(bs))
	}
	for i := range js {
		if filepath.Base(js[i]) != filepath.Base(bs[i]) {
			t.Fatalf("segment names diverged: %s vs %s", js[i], bs[i])
		}
		jb, err := os.ReadFile(js[i])
		if err != nil {
			t.Fatal(err)
		}
		bb, err := os.ReadFile(bs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(jb, bb) {
			t.Errorf("segment %s differs between json and binary journals (%d vs %d bytes)",
				filepath.Base(js[i]), len(jb), len(bb))
		}
	}
}

func TestBinaryIngestMalformed(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	schema := metrics.DefaultSchema()

	// A live stream for the cases that need one.
	c := binDial(t, s, schema.Names())
	if err := c.Handshake(context.Background()); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	sid := c.StreamID()

	batchOn := func(id uint64, times []float64, row []float64) []byte {
		p, err := wire.AppendBatch(nil, id, schema.Len(),
			[]wire.Group{{VM: "vm-bad", Times: times, Rows: [][]float64{row}}})
		if err != nil {
			t.Fatalf("AppendBatch: %v", err)
		}
		return oneFrame(p)
	}
	hello := func(ns []string) []byte {
		return oneFrame(wire.AppendHello(nil, wire.Hello{Version: wire.Version, Metrics: ns}))
	}
	zrow := make([]float64, schema.Len())
	nanRow := make([]float64, schema.Len())
	nanRow[3] = math.NaN()
	infRow := make([]float64, schema.Len())
	infRow[0] = math.Inf(-1)
	dup := append([]string(nil), schema.Names()...)
	dup[1] = dup[0]
	unknown := append([]string(nil), schema.Names()...)
	unknown[2] = "bogus_metric"
	badVersion := oneFrame(wire.AppendHello(nil, wire.Hello{Version: 99, Metrics: schema.Names()}))

	cases := []struct {
		name string
		body []byte
		want int
	}{
		{"empty body", nil, 400},
		{"garbage frame", []byte{1, 2, 3}, 400},
		{"corrupt crc", func() []byte {
			b := batchOn(sid, []float64{0}, zrow)
			b[len(b)-1] ^= 0xFF
			return b
		}(), 400},
		{"unknown frame type", oneFrame([]byte{0x7E, 0, 0}), 400},
		{"hello with trailing frame", append(hello(schema.Names()), batchOn(sid, []float64{0}, zrow)...), 400},
		{"hello after batch", append(batchOn(sid, []float64{0}, zrow), hello(schema.Names())...), 400},
		{"hello wrong metric count", hello(schema.Names()[:3]), 400},
		{"hello unknown metric", hello(unknown), 400},
		{"hello duplicate metric", hello(dup), 400},
		{"hello bad version", badVersion, 400},
		{"batch on unknown stream", batchOn(sid + 999, []float64{0}, zrow), 409},
		{"nan value", batchOn(sid, []float64{0}, nanRow), 400},
		{"inf value", batchOn(sid, []float64{0}, infRow), 400},
		{"non-finite time", batchOn(sid, []float64{math.Inf(1)}, zrow), 400},
		{"oversized body", make([]byte, maxIngestBody+16), 413},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postBin(t, h, tc.body)
			if w.Code != tc.want {
				t.Fatalf("status = %d, want %d (body %x)", w.Code, tc.want, w.Body.Bytes())
			}
			payload, _, err := wire.NextFrame(w.Body.Bytes())
			if err != nil {
				t.Fatalf("response is not a frame: %v", err)
			}
			ef, err := wire.ParseError(payload)
			if err != nil {
				t.Fatalf("response frame is not an error frame: %v", err)
			}
			if ef.Code != tc.want {
				t.Errorf("error frame code = %d, want %d", ef.Code, tc.want)
			}
			if tc.want == 409 && ef.ModelHash == ([wire.HashSize]byte{}) {
				t.Error("409 error frame carries no serving model hash")
			}
		})
	}
	if n := s.counters.binDecodeErrors.Load(); n == 0 {
		t.Error("binDecodeErrors never incremented")
	}

	// A valid batch on the pre-opened stream still works: none of the
	// rejected requests corrupted shared state.
	if _, err := c.Send(context.Background(), []wire.Group{
		{VM: "vm-ok", Times: []float64{0}, Rows: [][]float64{zrow}},
	}); err != nil {
		t.Fatalf("send after malformed storm: %v", err)
	}
}

// TestBinaryHelloPinnedHashMismatch: a Hello pinning a model hash that
// is not serving is refused with 409 and the serving hash, before any
// stream is opened.
func TestBinaryHelloPinnedHashMismatch(t *testing.T) {
	s := newTestServer(t, Config{})
	var h wire.Hello
	h.Version = wire.Version
	h.Metrics = metrics.DefaultSchema().Names()
	for i := range h.ModelHash {
		h.ModelHash[i] = 0xFF
	}
	w := postBin(t, s.Handler(), oneFrame(wire.AppendHello(nil, h)))
	if w.Code != http.StatusConflict {
		t.Fatalf("pinned-mismatch hello = %d, want 409", w.Code)
	}
	payload, _, err := wire.NextFrame(w.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	ef, err := wire.ParseError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if ef.ModelHash == ([wire.HashSize]byte{}) {
		t.Error("409 carries no serving hash")
	}
	if s.binStreams.len() != 0 {
		t.Error("refused handshake left a stream registered")
	}
}

// TestBinaryStaleStreamOnHotSwap promotes a new model mid-stream and
// asserts the open stream is invalidated with 409 — and that the wire
// client recovers transparently by re-handshaking under the new model.
func TestBinaryStaleStreamOnHotSwap(t *testing.T) {
	modelDir := t.TempDir()
	if err := modelreg.SaveFile(filepath.Join(modelDir, "cand.json"), altClassifier(t)); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	schema := metrics.ExpertSchema()
	s := newTestServer(t, Config{Schema: schema, ModelDir: modelDir})
	c := binDial(t, s, schema.Names())

	ctx := context.Background()
	if err := c.Handshake(ctx); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	oldHash, oldStream := c.ModelHash(), c.StreamID()
	zrow := make([]float64, schema.Len())
	if _, err := c.Send(ctx, []wire.Group{{VM: "vm-swap", Times: []float64{0}, Rows: [][]float64{zrow}}}); err != nil {
		t.Fatalf("pre-swap send: %v", err)
	}

	// Load and promote the candidate over the management API.
	w := postJSON(t, s.Handler(), "/v1/models", map[string]any{"path": "cand.json"})
	if w.Code != http.StatusCreated {
		t.Fatalf("load candidate = %d: %s", w.Code, w.Body.String())
	}
	var loaded modelJSON
	if err := json.Unmarshal(w.Body.Bytes(), &loaded); err != nil {
		t.Fatal(err)
	}
	w = postJSON(t, s.Handler(), "/v1/models/"+loaded.ID+"/promote", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("promote = %d: %s", w.Code, w.Body.String())
	}

	// The old stream must be refused; the client re-handshakes once and
	// the same Send succeeds under the new model.
	got, err := c.Send(ctx, []wire.Group{{VM: "vm-swap", Times: []float64{5}, Rows: [][]float64{zrow}}})
	if err != nil {
		t.Fatalf("post-swap send: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("post-swap send returned %d classes", len(got))
	}
	if c.ModelHash() == oldHash {
		t.Error("client still pinned to the pre-swap model hash")
	}
	if c.StreamID() == oldStream {
		t.Error("client still on the pre-swap stream")
	}
	if n := s.counters.binStaleStreams.Load(); n == 0 {
		t.Error("binStaleStreams never incremented")
	}
}

// TestBinaryStreamExpiry: the janitor's idle sweep drops streams along
// with sessions; the client transparently re-handshakes.
func TestBinaryStreamExpiry(t *testing.T) {
	clock := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	s := newTestServer(t, Config{IdleTTL: time.Minute, Now: func() time.Time { return clock }})
	schema := metrics.DefaultSchema()
	c := binDial(t, s, schema.Names())

	ctx := context.Background()
	zrow := make([]float64, schema.Len())
	if _, err := c.Send(ctx, []wire.Group{{VM: "vm-exp-a", Times: []float64{0}, Rows: [][]float64{zrow}}}); err != nil {
		t.Fatalf("send: %v", err)
	}
	oldStream := c.StreamID()

	clock = clock.Add(10 * time.Minute)
	s.EvictIdle()
	if n := s.binStreams.len(); n != 0 {
		t.Fatalf("streams after idle sweep = %d, want 0", n)
	}
	if n := s.counters.binStreamsExpired.Load(); n == 0 {
		t.Error("binStreamsExpired never incremented")
	}

	// The next send hits 409 (unknown stream) and recovers.
	if _, err := c.Send(ctx, []wire.Group{{VM: "vm-exp-b", Times: []float64{0}, Rows: [][]float64{zrow}}}); err != nil {
		t.Fatalf("send after expiry: %v", err)
	}
	if c.StreamID() == oldStream {
		t.Error("client did not negotiate a fresh stream after expiry")
	}
}

func TestBinaryIngestAdmissionAndDisable(t *testing.T) {
	s := newTestServer(t, Config{MaxInflightBytes: 16})
	w := postBin(t, s.Handler(), make([]byte, 64))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-budget binary ingest = %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After")
	}

	off := newTestServer(t, Config{DisableBinaryIngest: true})
	w = postBin(t, off.Handler(), oneFrame(wire.AppendHello(nil, wire.Hello{Version: wire.Version})))
	if w.Code != http.StatusNotFound {
		t.Fatalf("disabled binary ingest = %d, want 404", w.Code)
	}
}
