package server

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/appdb"
	"repro/internal/classify"
	"repro/internal/metrics"
	"repro/internal/modelreg"
	"repro/internal/wal"
)

// sigValues is the expert-metric signature fixture the classify package
// trains its synthetic tests on: {cpu_system, cpu_user, bytes_in,
// bytes_out, io_bi, io_bo, swap_in, swap_out}.
func sigValues(c appclass.Class) []float64 {
	switch c {
	case appclass.CPU:
		return []float64{3, 95, 500, 500, 5, 5, 0, 0}
	case appclass.IO:
		return []float64{12, 8, 500, 500, 3000, 3000, 0, 0}
	case appclass.Net:
		return []float64{10, 8, 4e5, 8e6, 5, 5, 0, 0}
	case appclass.Mem:
		return []float64{5, 20, 500, 500, 5500, 5500, 5000, 5000}
	default: // idle
		return []float64{0.3, 0.5, 300, 300, 2, 2, 0, 0}
	}
}

// sigTrace builds an ExpertSchema trace of n noisy snapshots around a
// class signature.
func sigTrace(t *testing.T, c appclass.Class, n int, seed int64) *metrics.Trace {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tr := metrics.NewTrace(metrics.ExpertSchema(), "vm1")
	sig := sigValues(c)
	for i := 0; i < n; i++ {
		vals := make([]float64, len(sig))
		for j, v := range sig {
			vals[j] = v * (1 + 0.15*rng.NormFloat64())
			if vals[j] < 0 {
				vals[j] = 0
			}
		}
		if err := tr.Append(metrics.Snapshot{
			Time: time.Duration(i*5) * time.Second, Node: "vm1", Values: vals,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

// altClassifier trains a second model over the identical expert-metric
// list from synthetic traces — cheap, deterministic, and guaranteed to
// vote differently than the testbed-trained package classifier often
// enough for shadow statistics to be nontrivial.
var (
	altOnce sync.Once
	altCl   *classify.Classifier
	altErr  error
)

func altClassifier(t *testing.T) *classify.Classifier {
	t.Helper()
	altOnce.Do(func() {
		var runs []classify.TrainingRun
		for i, c := range appclass.All() {
			runs = append(runs, classify.TrainingRun{Class: c, Trace: sigTrace(t, c, 50, int64(i+1))})
		}
		altCl, altErr = classify.Train(runs, classify.Config{})
	})
	if altErr != nil {
		t.Fatalf("train alt classifier: %v", altErr)
	}
	return altCl
}

func decodeGet(t *testing.T, h http.Handler, path string, out any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("GET %s = %d: %s", path, w.Code, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
}

// modelsResponse mirrors GET /v1/models.
type modelsResponse struct {
	Active string      `json:"active"`
	Models []modelJSON `json:"models"`
	Shadow *shadowView `json:"shadow"`
}

// TestModelLifecycleE2E is the acceptance path for the model-lifecycle
// subsystem: load a candidate over the API, shadow-classify live
// traffic and verify the disagreement report against an offline diff,
// atomically promote mid-stream with zero ingest failures, then crash
// and verify recovery under the new model succeeds while recovery
// against the old checkpoint is refused with a model-mismatch error
// unless forced.
func TestModelLifecycleE2E(t *testing.T) {
	dir := t.TempDir()
	modelDir := t.TempDir()
	schema := metrics.ExpertSchema()
	activeCl, candCl := classifier(t), altClassifier(t)
	if err := modelreg.SaveFile(filepath.Join(modelDir, "cand.json"), candCl); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}

	a, err := New(Config{
		Classifier: activeCl, Journal: crashJournal(t, dir),
		Schema: schema, ModelDir: modelDir,
	})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	bootID := a.ActiveModelID()

	// Phase 1: traffic before any candidate exists — must never appear
	// in shadow statistics.
	ioTrace := sigTrace(t, appclass.IO, 80, 11)
	cpuTrace := sigTrace(t, appclass.CPU, 60, 12)
	ingestTraceRange(t, a, "vm-alpha", ioTrace, 0, 40)

	// Load the candidate. The path is relative to ModelDir.
	w := postJSON(t, a.Handler(), "/v1/models", map[string]any{"path": "cand.json"})
	if w.Code != http.StatusCreated {
		t.Fatalf("load candidate = %d: %s", w.Code, w.Body.String())
	}
	var loaded modelJSON
	if err := json.Unmarshal(w.Body.Bytes(), &loaded); err != nil {
		t.Fatal(err)
	}
	if loaded.State != string(modelreg.StateCandidate) || loaded.ID == bootID {
		t.Fatalf("loaded candidate = %+v", loaded)
	}

	var mr modelsResponse
	decodeGet(t, a.Handler(), "/v1/models", &mr)
	if mr.Active != bootID || mr.Shadow == nil || mr.Shadow.Candidate != loaded.ID {
		t.Fatalf("models after load: active=%s shadow=%+v", mr.Active, mr.Shadow)
	}
	if mr.Shadow.Snapshots != 0 {
		t.Fatalf("shadow saw pre-load traffic: %d snapshots", mr.Shadow.Snapshots)
	}

	// Phase 2: traffic both models see. The shadow report must equal an
	// offline diff of the two classifiers over exactly these snapshots.
	ingestTraceRange(t, a, "vm-alpha", ioTrace, 40, 80)
	ingestTraceRange(t, a, "vm-beta", cpuTrace, 0, 40)

	type pair struct{ total, disagree int64 }
	wantDisagree := int64(0)
	wantPerClass := map[string]pair{}
	diff := func(tr *metrics.Trace, lo, hi int) {
		for i := lo; i < hi; i++ {
			vals := tr.At(i).Values
			av, err := activeCl.ClassifySnapshot(schema, vals)
			if err != nil {
				t.Fatal(err)
			}
			cv, err := candCl.ClassifySnapshot(schema, vals)
			if err != nil {
				t.Fatal(err)
			}
			p := wantPerClass[string(av)]
			p.total++
			if av != cv {
				wantDisagree++
				p.disagree++
			}
			wantPerClass[string(av)] = p
		}
	}
	diff(ioTrace, 40, 80)
	diff(cpuTrace, 0, 40)

	decodeGet(t, a.Handler(), "/v1/models", &mr)
	sv := mr.Shadow
	if sv == nil || sv.Snapshots != 80 {
		t.Fatalf("shadow after phase 2 = %+v, want 80 snapshots", sv)
	}
	if sv.Disagree != wantDisagree {
		t.Fatalf("shadow disagreements = %d, offline diff says %d", sv.Disagree, wantDisagree)
	}
	for cl, want := range wantPerClass {
		got := sv.PerClass[cl]
		if got.Snapshots != want.total || got.Disagree != want.disagree {
			t.Errorf("per-class %s = %+v, offline diff says %+v", cl, got, want)
		}
	}
	if len(sv.PerClass) != len(wantPerClass) {
		t.Errorf("per-class keys = %v, want %v", sv.PerClass, wantPerClass)
	}
	if delta := sv.UnknownRateCandidate - sv.UnknownRateActive; !floatsClose(delta, sv.UnknownRateDelta) {
		t.Errorf("unknown-rate delta %v inconsistent with rates %v/%v",
			sv.UnknownRateDelta, sv.UnknownRateActive, sv.UnknownRateCandidate)
	}

	// The shadow report is in /metricsz too.
	req := httptest.NewRequest(http.MethodGet, "/metricsz", nil)
	rec := httptest.NewRecorder()
	a.Handler().ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		`appclassd_shadow_active 1`,
		`appclassd_shadow_snapshots{candidate="` + loaded.ID + `"} 80`,
		`appclassd_shadow_class_disagreements{candidate="` + loaded.ID + `"`,
		`appclassd_shadow_unknown_rate_delta{candidate="` + loaded.ID + `"}`,
		`appclassd_model_active_info{id="` + bootID + `"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metricsz missing %q", want)
		}
	}

	// Promote mid-stream: a writer hammers ingest throughout the swap;
	// no request may fail.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var badCode atomic2 // int64 via counters-free helper below
	gamma := sigTrace(t, appclass.Net, 400, 13)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sn := gamma.At(i % gamma.Len())
			w := postJSON(t, a.Handler(), "/v1/ingest", map[string]any{"snapshots": []any{
				map[string]any{"vm": "vm-gamma", "time_s": float64(i), "values": sn.Values},
			}})
			if w.Code != 200 {
				badCode.store(int64(w.Code))
				return
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	w = postJSON(t, a.Handler(), "/v1/models/"+loaded.ID+"/promote", nil)
	if w.Code != 200 {
		t.Fatalf("promote = %d: %s", w.Code, w.Body.String())
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	if c := badCode.load(); c != 0 {
		t.Fatalf("ingest returned %d during the hot swap", c)
	}

	// Post-swap: candidate is active, shadow is gone, live sessions
	// carry the new provenance without losing their accumulated state.
	mr = modelsResponse{}
	decodeGet(t, a.Handler(), "/v1/models", &mr)
	if mr.Active != loaded.ID || mr.Shadow != nil {
		t.Fatalf("models after promote: active=%s shadow=%v", mr.Active, mr.Shadow)
	}
	var vm struct {
		Snapshots int    `json:"snapshots"`
		Model     string `json:"model"`
	}
	decodeGet(t, a.Handler(), "/v1/vms/vm-alpha", &vm)
	if vm.Model != loaded.ID {
		t.Fatalf("vm-alpha provenance = %q, want %q", vm.Model, loaded.ID)
	}
	if vm.Snapshots != 80 {
		t.Fatalf("vm-alpha snapshots = %d after swap, want 80 (session must not drop)", vm.Snapshots)
	}

	// The promote checkpointed immediately; the newest checkpoint must
	// carry the new model's hash.
	cp, err := wal.LatestCheckpoint(dir)
	if err != nil || cp == nil {
		t.Fatalf("LatestCheckpoint: %v (cp=%v)", err, cp)
	}
	if cp.ModelHash != loaded.Hash {
		t.Fatalf("checkpoint hash = %s, want the promoted model's %s", cp.ModelHash, loaded.Hash)
	}

	// A little post-swap tail so recovery has journal records beyond the
	// checkpoint, then crash (no shutdown).
	ingestTraceRange(t, a, "vm-beta", cpuTrace, 40, 60)

	// Recovery under the new model succeeds and restores the sessions.
	b, err := New(Config{Classifier: candCl, Journal: crashJournal(t, dir), Schema: schema})
	if err != nil {
		t.Fatalf("server.New (new model): %v", err)
	}
	if b.ActiveModelID() != loaded.ID {
		t.Fatalf("rebooted daemon serves %s, want %s", b.ActiveModelID(), loaded.ID)
	}
	if _, err := b.Recover(); err != nil {
		t.Fatalf("recovery under the new model: %v", err)
	}
	if got := sessionView(t, b, "vm-beta").Total; got != 60 {
		t.Fatalf("recovered vm-beta has %d snapshots, want 60", got)
	}
	decodeGet(t, b.Handler(), "/v1/vms/vm-beta", &vm)
	if vm.Model != loaded.ID {
		t.Fatalf("recovered vm-beta provenance = %q, want %q", vm.Model, loaded.ID)
	}

	// Recovery against the old model is refused with the mismatch error.
	old, err := New(Config{Classifier: activeCl, Journal: crashJournal(t, dir), Schema: schema})
	if err != nil {
		t.Fatalf("server.New (old model): %v", err)
	}
	_, err = old.Recover()
	if err == nil {
		t.Fatal("recovery under the old model succeeded, want model-mismatch refusal")
	}
	if !strings.Contains(err.Error(), "-recover-force") || !strings.Contains(err.Error(), "model") {
		t.Fatalf("refusal error %q does not name the mismatch or the escape hatch", err)
	}

	// -recover-force discards the checkpoint's sessions but replays the
	// journal tail, so the old daemon comes up empty-handed but alive.
	forced, err := New(Config{Classifier: activeCl, Journal: crashJournal(t, dir), Schema: schema, RecoverForce: true})
	if err != nil {
		t.Fatalf("server.New (forced): %v", err)
	}
	if _, err := forced.Recover(); err != nil {
		t.Fatalf("forced recovery: %v", err)
	}
}

// atomic2 avoids importing sync/atomic twice under test-only names.
type atomic2 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic2) store(v int64) { a.mu.Lock(); a.v = v; a.mu.Unlock() }
func (a *atomic2) load() int64   { a.mu.Lock(); defer a.mu.Unlock(); return a.v }

func floatsClose(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestModelEndpointsErrors(t *testing.T) {
	modelDir := t.TempDir()
	s := newTestServer(t, Config{Schema: metrics.ExpertSchema(), ModelDir: modelDir})
	h := s.Handler()
	active := s.ActiveModelID()

	// Path confinement: absolute and escaping paths are rejected without
	// touching the filesystem.
	for _, p := range []string{"/etc/passwd", "../outside.json", "a/../../x.json"} {
		w := postJSON(t, h, "/v1/models", map[string]any{"path": p})
		if w.Code != http.StatusBadRequest || !strings.Contains(w.Body.String(), "escapes") {
			t.Errorf("load %q = %d %s, want 400 escape refusal", p, w.Code, w.Body.String())
		}
	}
	if w := postJSON(t, h, "/v1/models", map[string]any{}); w.Code != http.StatusBadRequest {
		t.Errorf("load without path = %d, want 400", w.Code)
	}
	if w := postJSON(t, h, "/v1/models", map[string]any{"path": "missing.json"}); w.Code != http.StatusBadRequest {
		t.Errorf("load missing artifact = %d, want 400", w.Code)
	}

	// Loading an artifact identical to the active model is a conflict.
	if err := modelreg.SaveFile(filepath.Join(modelDir, "same.json"), classifier(t)); err != nil {
		t.Fatal(err)
	}
	if w := postJSON(t, h, "/v1/models", map[string]any{"path": "same.json"}); w.Code != http.StatusConflict {
		t.Errorf("load identical model = %d, want 409", w.Code)
	}

	// Promote: unknown id 404, active id 409.
	if w := postJSON(t, h, "/v1/models/deadbeef0000/promote", nil); w.Code != http.StatusNotFound {
		t.Errorf("promote unknown = %d, want 404", w.Code)
	}
	if w := postJSON(t, h, "/v1/models/"+active+"/promote", nil); w.Code != http.StatusConflict {
		t.Errorf("promote active = %d, want 409", w.Code)
	}

	// Delete: unknown 404, active 409, candidate stops its shadow.
	req := httptest.NewRequest(http.MethodDelete, "/v1/models/deadbeef0000", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusNotFound {
		t.Errorf("delete unknown = %d, want 404", w.Code)
	}
	req = httptest.NewRequest(http.MethodDelete, "/v1/models/"+active, nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusConflict {
		t.Errorf("delete active = %d, want 409", w.Code)
	}

	if err := modelreg.SaveFile(filepath.Join(modelDir, "cand.json"), altClassifier(t)); err != nil {
		t.Fatal(err)
	}
	lw := postJSON(t, h, "/v1/models", map[string]any{"path": "cand.json"})
	if lw.Code != http.StatusCreated {
		t.Fatalf("load candidate = %d: %s", lw.Code, lw.Body.String())
	}
	var loaded modelJSON
	if err := json.Unmarshal(lw.Body.Bytes(), &loaded); err != nil {
		t.Fatal(err)
	}
	req = httptest.NewRequest(http.MethodDelete, "/v1/models/"+loaded.ID, nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("delete candidate = %d: %s", w.Code, w.Body.String())
	}
	var mr modelsResponse
	decodeGet(t, h, "/v1/models", &mr)
	if mr.Shadow != nil {
		t.Fatal("shadow evaluation survived deleting the candidate")
	}
	for _, m := range mr.Models {
		if m.ID == loaded.ID {
			t.Fatal("deleted model still listed")
		}
	}
}

// seedRetrainDB stamps labeled, sampled records into the server's
// application database, the way finalize does for real sessions.
func seedRetrainDB(t *testing.T, db *appdb.DB) {
	t.Helper()
	names := metrics.ExpertSchema().Names()
	rng := rand.New(rand.NewSource(5))
	for _, c := range []appclass.Class{appclass.CPU, appclass.IO, appclass.Net} {
		rows := make([][]float64, 20)
		sig := sigValues(c)
		for i := range rows {
			row := make([]float64, len(sig))
			for j, v := range sig {
				row[j] = v * (1 + 0.1*rng.NormFloat64())
				if row[j] < 0 {
					row[j] = 0
				}
			}
			rows[i] = row
		}
		if err := db.Put(appdb.Record{
			App: "app-" + string(c), Class: c, Verdict: c,
			ExecutionTime: time.Minute, Samples: 20,
			TrainMetrics: names, TrainSamples: rows,
		}); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
}

func TestRetrainOnceInstallsCandidate(t *testing.T) {
	s := newTestServer(t, Config{Schema: metrics.ExpertSchema()})

	// Too little labeled data: counted as an error, nothing installed.
	s.retrainOnce()
	if s.counters.retrainErrors.Load() != 1 || s.models.Candidate() != nil {
		t.Fatalf("retrain on empty db: errors=%d candidate=%v",
			s.counters.retrainErrors.Load(), s.models.Candidate())
	}

	seedRetrainDB(t, s.cfg.DB)
	s.retrainOnce()
	cand := s.models.Candidate()
	if cand == nil {
		t.Fatal("retrain did not install a candidate")
	}
	if cand.Source != "retrain" {
		t.Fatalf("candidate source = %q, want retrain", cand.Source)
	}
	if s.shadow.Load() == nil {
		t.Fatal("retrain candidate has no shadow evaluation")
	}
	if s.counters.retrainRuns.Load() != 1 {
		t.Fatalf("retrainRuns = %d, want 1", s.counters.retrainRuns.Load())
	}

	// A second pass refits the identical model: no churn.
	s.retrainOnce()
	if got := s.models.Candidate(); got == nil || got.ID != cand.ID {
		t.Fatalf("idempotent retrain replaced the candidate: %v", got)
	}
}

func TestRetrainNeverDisplacesOperatorCandidate(t *testing.T) {
	modelDir := t.TempDir()
	outPath := filepath.Join(t.TempDir(), "refit.json")
	if err := modelreg.SaveFile(filepath.Join(modelDir, "op.json"), altClassifier(t)); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Schema: metrics.ExpertSchema(), ModelDir: modelDir, RetrainOut: outPath})
	if w := postJSON(t, s.Handler(), "/v1/models", map[string]any{"path": "op.json"}); w.Code != http.StatusCreated {
		t.Fatalf("load operator candidate: %d %s", w.Code, w.Body.String())
	}
	opCand := s.models.Candidate()

	seedRetrainDB(t, s.cfg.DB)
	s.retrainOnce()
	if got := s.models.Candidate(); got == nil || got.ID != opCand.ID {
		t.Fatalf("background retrain displaced the operator candidate: %v", got)
	}
	// The refit is not lost: it landed on disk for later evaluation.
	if _, err := os.Stat(outPath); err != nil {
		t.Fatalf("retrain artifact not saved: %v", err)
	}
}

// TestFinalizeStampsTrainingSamples closes the online-retraining loop:
// a finished session's appdb record carries its model provenance and
// the retained training rows the retrainer feeds on.
func TestFinalizeStampsTrainingSamples(t *testing.T) {
	s := newTestServer(t, Config{Schema: metrics.ExpertSchema(), TrainReservoir: 16})
	tr := sigTrace(t, appclass.CPU, 30, 21)
	ingestTraceRange(t, s, "vm-train", tr, 0, 30)
	if w := postJSON(t, s.Handler(), "/v1/vms/vm-train/finish", nil); w.Code != 200 {
		t.Fatalf("finish = %d: %s", w.Code, w.Body.String())
	}
	rec, err := s.cfg.DB.Latest("vm-train")
	if err != nil {
		t.Fatalf("Latest: %v", err)
	}
	if rec.ModelID != s.ActiveModelID() {
		t.Fatalf("record model = %q, want %q", rec.ModelID, s.ActiveModelID())
	}
	if len(rec.TrainSamples) == 0 || len(rec.TrainSamples) > 16 {
		t.Fatalf("record retained %d rows, want 1..16", len(rec.TrainSamples))
	}
	if len(rec.TrainMetrics) != metrics.ExpertSchema().Len() {
		t.Fatalf("record sampled metrics = %v", rec.TrainMetrics)
	}
}
