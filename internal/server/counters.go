package server

import (
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/appclass"
	"repro/internal/appstore"
	"repro/internal/placement"
	"repro/internal/supervise"
	"repro/internal/wal"
)

// counters holds the daemon's observability state: monotonically
// increasing atomics rendered in Prometheus text exposition format by
// writeMetrics, with no external dependency.
type counters struct {
	ingested           atomic.Int64 // snapshots accepted (push + pull)
	ingestErrors       atomic.Int64 // rejected batches and failed observes
	evictions          atomic.Int64 // sessions finalized by the idle-TTL janitor
	finishes           atomic.Int64 // sessions finalized by POST .../finish
	flushed            atomic.Int64 // sessions finalized at shutdown
	finalizeErrors     atomic.Int64 // records the application DB refused
	polls              atomic.Int64 // gmetad poll attempts
	pollErrors         atomic.Int64 // failed gmetad polls
	pollSkipped        atomic.Int64 // polled nodes missing schema metrics
	pollBreakerSkipped atomic.Int64 // polls skipped because the breaker was open
	breakerOpens       atomic.Int64 // poll breaker trips (closed/half-open -> open)
	shedRequests       atomic.Int64 // ingest requests shed over the in-flight budget
	deadlineExceeded   atomic.Int64 // ingest requests abandoned at their deadline
	sampleGaps         atomic.Int64 // sample gaps recorded on sessions
	sampleGapNanos     atomic.Int64 // total wall time of recorded sample gaps
	degradedEntries    atomic.Int64 // transitions into degraded durability mode
	degradedExits      atomic.Int64 // transitions back to full durability

	// breakerState mirrors the poll breaker's current position
	// (resilience.State: 0 closed, 1 half-open, 2 open) and
	// pollLastSuccess the unix nanos of the last successful poll (0 if
	// never); both are gauges, not counters.
	breakerState    atomic.Int64
	pollLastSuccess atomic.Int64
	placements      atomic.Int64 // placement decisions served
	placementErrors atomic.Int64 // placement requests refused (full inventory)
	releases        atomic.Int64 // placements released

	journalRecords     atomic.Int64 // records appended to the write-ahead journal
	journalErrors      atomic.Int64 // failed journal appends
	checkpoints        atomic.Int64 // checkpoints written
	checkpointErrors   atomic.Int64 // failed checkpoint writes
	replayedSnapshots  atomic.Int64 // snapshots re-applied from the journal at startup
	recoveredSessions  atomic.Int64 // sessions restored from a checkpoint at startup
	journalGapSegments atomic.Int64 // journal segments found missing (unrecoverable) during recovery

	unknownSnapshots   atomic.Int64 // snapshots outside their voted class's open-set threshold
	unknownSessions    atomic.Int64 // sessions finalized with an UNKNOWN open-set verdict
	phaseBoundaries    atomic.Int64 // phase boundaries detected by the online segmenter
	fingerprintMatches atomic.Int64 // finalized sessions whose fingerprint matched the dictionary
	fingerprintMisses  atomic.Int64 // finalized fingerprints with no dictionary match over threshold

	binHandshakes     atomic.Int64 // binary-ingest streams negotiated
	binBatches        atomic.Int64 // binary batch frames accepted
	binStaleStreams   atomic.Int64 // binary requests refused for a stale/retired model hash
	binDecodeErrors   atomic.Int64 // malformed binary frames rejected
	binStreamsExpired atomic.Int64 // binary streams dropped by the idle sweep

	modelLoads      atomic.Int64 // candidate models loaded via POST /v1/models
	modelLoadErrors atomic.Int64 // failed model loads / candidate installs
	modelPromotes   atomic.Int64 // hot swaps performed
	modelRollbacks  atomic.Int64 // probation breaches rolled back automatically
	probationPasses atomic.Int64 // probation windows that closed without a breach
	modelDiscards   atomic.Int64 // models removed from the registry
	retrainRuns     atomic.Int64 // successful online-retraining passes
	retrainErrors   atomic.Int64 // failed retraining passes
	rebindErrors    atomic.Int64 // sessions that could not be rebound to a promoted model
	// swapLastNanos is a gauge: the duration of the most recent promote's
	// quiesced swap window.
	swapLastNanos atomic.Int64

	// Finalize-append instrumentation: how long the database Put on the
	// finalize hot path takes (the O(1) append the segmented store
	// replaced the O(n) file rewrite with). Last is a gauge, the other
	// two counters feeding a mean.
	finalizeAppends         atomic.Int64
	finalizeAppendNanos     atomic.Int64
	finalizeAppendLastNanos atomic.Int64

	classifications map[appclass.Class]*atomic.Int64
}

func newCounters() *counters {
	c := &counters{classifications: make(map[appclass.Class]*atomic.Int64)}
	for _, cl := range appclass.All() {
		c.classifications[cl] = new(atomic.Int64)
	}
	return c
}

func (c *counters) classified(cl appclass.Class) {
	if n, ok := c.classifications[cl]; ok {
		n.Add(1)
	}
}

// durabilityGauges is the journal-depth view rendered in /metricsz:
// the journal's stats snapshot plus how long ago it last fsynced
// (negative when it never has).
type durabilityGauges struct {
	journal         wal.Stats
	fsyncAgeSeconds float64
	// degraded reports whether ingest is currently memory-only because
	// the journal is failing.
	degraded bool
}

// superviseGauges is the task-supervision view rendered in /metricsz:
// the per-task states plus the supervisor's lifetime totals.
type superviseGauges struct {
	tasks       []supervise.TaskState
	panics      int64
	escalations int64
	wedges      int64
}

// resilienceGauges is the admission-control view rendered in /metricsz.
type resilienceGauges struct {
	inflightBytes    int64
	inflightRequests int64
	// binStreams is how many binary-ingest streams are currently open.
	binStreams int64
}

// writeMetrics renders every counter plus the caller-supplied gauges in
// Prometheus text format. pstats is nil when no placement service is
// configured; dg is nil when no journal is configured; historyDropped
// sums Online.HistoryDropped over live sessions.
func (c *counters) writeMetrics(w io.Writer, sessions []int, uptimeSeconds float64, pstats *placement.Stats, historyDropped int64, dg *durabilityGauges, rg resilienceGauges, mg modelGauges, sg *appstore.Stats, tg superviseGauges) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("appclassd_snapshots_ingested_total", "Snapshots accepted over the push API and the gmetad poller.", c.ingested.Load())
	counter("appclassd_ingest_errors_total", "Rejected ingest batches and failed snapshot observations.", c.ingestErrors.Load())

	fmt.Fprintf(w, "# HELP appclassd_classifications_total Snapshot classifications by class.\n# TYPE appclassd_classifications_total counter\n")
	for _, cl := range appclass.All() {
		fmt.Fprintf(w, "appclassd_classifications_total{class=%q} %d\n", cl, c.classifications[cl].Load())
	}

	counter("appclassd_evictions_total", "Sessions finalized by the idle-TTL janitor.", c.evictions.Load())
	counter("appclassd_finishes_total", "Sessions finalized by an explicit finish request.", c.finishes.Load())
	counter("appclassd_flushed_total", "Sessions finalized during graceful shutdown.", c.flushed.Load())
	counter("appclassd_finalize_errors_total", "Session records the application database refused.", c.finalizeErrors.Load())
	counter("appclassd_polls_total", "gmetad poll attempts.", c.polls.Load())
	counter("appclassd_poll_errors_total", "Failed gmetad polls.", c.pollErrors.Load())
	counter("appclassd_poll_skipped_total", "Polled nodes skipped for missing schema metrics.", c.pollSkipped.Load())
	counter("appclassd_poll_breaker_skipped_total", "Polls skipped while the circuit breaker was open.", c.pollBreakerSkipped.Load())
	counter("appclassd_poll_breaker_opens_total", "Poll circuit-breaker trips into the open state.", c.breakerOpens.Load())
	counter("appclassd_ingest_shed_total", "Ingest requests shed with 429 over the in-flight budget.", c.shedRequests.Load())
	counter("appclassd_ingest_deadline_exceeded_total", "Ingest requests abandoned at their processing deadline.", c.deadlineExceeded.Load())
	counter("appclassd_sample_gaps_total", "Sample gaps recorded on sessions (missed polls, breaker-open windows, vanished nodes).", c.sampleGaps.Load())
	fmt.Fprintf(w, "# HELP appclassd_sample_gap_seconds_total Total wall time of recorded sample gaps.\n# TYPE appclassd_sample_gap_seconds_total counter\nappclassd_sample_gap_seconds_total %g\n",
		float64(c.sampleGapNanos.Load())/1e9)
	counter("appclassd_durability_degraded_entries_total", "Transitions into degraded (memory-only) durability mode.", c.degradedEntries.Load())
	counter("appclassd_durability_degraded_exits_total", "Transitions back to full durability.", c.degradedExits.Load())
	counter("appclassd_placements_total", "Placement decisions served.", c.placements.Load())
	counter("appclassd_placement_errors_total", "Placement requests refused.", c.placementErrors.Load())
	counter("appclassd_releases_total", "Placements released.", c.releases.Load())
	counter("appclassd_journal_records_total", "Records appended to the write-ahead journal.", c.journalRecords.Load())
	counter("appclassd_journal_errors_total", "Failed journal appends.", c.journalErrors.Load())
	counter("appclassd_checkpoints_total", "Session checkpoints written.", c.checkpoints.Load())
	counter("appclassd_checkpoint_errors_total", "Failed checkpoint writes.", c.checkpointErrors.Load())
	counter("appclassd_replayed_snapshots_total", "Snapshots re-applied from the journal at startup.", c.replayedSnapshots.Load())
	counter("appclassd_recovered_sessions_total", "Sessions restored from a checkpoint at startup.", c.recoveredSessions.Load())
	counter("appclassd_journal_gap_segments_total", "Journal segments missing at recovery; their records are unrecoverable.", c.journalGapSegments.Load())
	counter("appclassd_unknown_snapshots_total", "Snapshots beyond their voted class's open-set distance threshold.", c.unknownSnapshots.Load())
	counter("appclassd_unknown_sessions_total", "Sessions finalized with an UNKNOWN open-set verdict.", c.unknownSessions.Load())
	counter("appclassd_phase_boundaries_total", "Phase boundaries detected by the online segmenter.", c.phaseBoundaries.Load())
	counter("appclassd_fingerprint_matches_total", "Finalized sessions whose phase fingerprint matched a dictionary entry.", c.fingerprintMatches.Load())
	counter("appclassd_fingerprint_misses_total", "Finalized phase fingerprints with no dictionary match over the threshold.", c.fingerprintMisses.Load())
	counter("appclassd_bin_handshakes_total", "Binary-ingest streams negotiated.", c.binHandshakes.Load())
	counter("appclassd_bin_batches_total", "Binary-ingest batch frames accepted.", c.binBatches.Load())
	counter("appclassd_bin_stale_streams_total", "Binary-ingest requests refused because their stream's model is no longer serving.", c.binStaleStreams.Load())
	counter("appclassd_bin_decode_errors_total", "Malformed binary-ingest frames rejected.", c.binDecodeErrors.Load())
	counter("appclassd_bin_streams_expired_total", "Binary-ingest streams dropped by the idle sweep.", c.binStreamsExpired.Load())
	counter("appclassd_model_loads_total", "Candidate models loaded via the model API.", c.modelLoads.Load())
	counter("appclassd_model_load_errors_total", "Failed model loads and candidate installs.", c.modelLoadErrors.Load())
	counter("appclassd_model_promotes_total", "Model hot swaps performed.", c.modelPromotes.Load())
	counter("appclassd_model_rollbacks_total", "Probation breaches rolled back automatically to the displaced model.", c.modelRollbacks.Load())
	counter("appclassd_probation_passes_total", "Probation windows that closed without a breach.", c.probationPasses.Load())
	counter("appclassd_model_discards_total", "Models removed from the registry.", c.modelDiscards.Load())
	counter("appclassd_retrain_runs_total", "Successful online-retraining passes.", c.retrainRuns.Load())
	counter("appclassd_retrain_errors_total", "Failed online-retraining passes.", c.retrainErrors.Load())
	counter("appclassd_model_rebind_errors_total", "Sessions that could not be rebound to a promoted model.", c.rebindErrors.Load())

	total := 0
	for _, n := range sessions {
		total += n
	}
	fmt.Fprintf(w, "# HELP appclassd_sessions_active Live classification sessions.\n# TYPE appclassd_sessions_active gauge\nappclassd_sessions_active %d\n", total)
	fmt.Fprintf(w, "# HELP appclassd_shard_sessions Live sessions per registry shard.\n# TYPE appclassd_shard_sessions gauge\n")
	for i, n := range sessions {
		fmt.Fprintf(w, "appclassd_shard_sessions{shard=\"%d\"} %d\n", i, n)
	}
	// appclassd_history_dropped is a gauge (no _total suffix): it sums
	// HistoryDropped over *live* sessions, so it shrinks when a session
	// finalizes.
	fmt.Fprintf(w, "# HELP appclassd_history_dropped History entries trimmed by the retention cap across live sessions.\n# TYPE appclassd_history_dropped gauge\nappclassd_history_dropped %d\n", historyDropped)
	// Poll-path health gauges: the breaker's position and the unix time
	// of the last successful poll (-1 before the first success) let an
	// alert distinguish "daemon up, source down" from "daemon down".
	fmt.Fprintf(w, "# HELP appclassd_poll_breaker_state Poll circuit-breaker state (0 closed, 1 half-open, 2 open).\n# TYPE appclassd_poll_breaker_state gauge\nappclassd_poll_breaker_state %d\n", c.breakerState.Load())
	lastSuccess := -1.0
	if ns := c.pollLastSuccess.Load(); ns > 0 {
		lastSuccess = float64(ns) / 1e9
	}
	fmt.Fprintf(w, "# HELP appclassd_poll_last_success_seconds Unix time of the last successful gmetad poll (-1 if never).\n# TYPE appclassd_poll_last_success_seconds gauge\nappclassd_poll_last_success_seconds %g\n", lastSuccess)
	fmt.Fprintf(w, "# HELP appclassd_ingest_inflight_bytes Request-body bytes of ingest requests currently admitted.\n# TYPE appclassd_ingest_inflight_bytes gauge\nappclassd_ingest_inflight_bytes %d\n", rg.inflightBytes)
	fmt.Fprintf(w, "# HELP appclassd_ingest_inflight_requests Ingest requests currently admitted.\n# TYPE appclassd_ingest_inflight_requests gauge\nappclassd_ingest_inflight_requests %d\n", rg.inflightRequests)
	fmt.Fprintf(w, "# HELP appclassd_bin_streams_active Open binary-ingest streams.\n# TYPE appclassd_bin_streams_active gauge\nappclassd_bin_streams_active %d\n", rg.binStreams)
	if dg != nil {
		degraded := 0
		if dg.degraded {
			degraded = 1
		}
		fmt.Fprintf(w, "# HELP appclassd_durability_degraded Whether ingest is memory-only because the journal is failing (1 degraded, 0 ok).\n# TYPE appclassd_durability_degraded gauge\nappclassd_durability_degraded %d\n", degraded)
		fmt.Fprintf(w, "# HELP appclassd_journal_segments Journal segment files on disk, including the active one.\n# TYPE appclassd_journal_segments gauge\nappclassd_journal_segments %d\n", dg.journal.Segments)
		fmt.Fprintf(w, "# HELP appclassd_journal_bytes Total bytes of journal segments on disk.\n# TYPE appclassd_journal_bytes gauge\nappclassd_journal_bytes %d\n", dg.journal.Bytes)
		// Stats.TruncatedSegments only ever grows while the journal is
		// open, so exposing it as a counter is sound (it resets on
		// restart like every other counter here).
		fmt.Fprintf(w, "# HELP appclassd_journal_truncated_segments_total Closed journal segments deleted by the retention cap.\n# TYPE appclassd_journal_truncated_segments_total counter\nappclassd_journal_truncated_segments_total %d\n", dg.journal.TruncatedSegments)
		fmt.Fprintf(w, "# HELP appclassd_journal_last_fsync_age_seconds Seconds since the journal last fsynced (-1 if never).\n# TYPE appclassd_journal_last_fsync_age_seconds gauge\nappclassd_journal_last_fsync_age_seconds %g\n", dg.fsyncAgeSeconds)
		counter("appclassd_journal_scrub_scans_total", "Sealed journal segments examined by the scrubber since open.", dg.journal.ScrubScans)
		counter("appclassd_journal_scrub_repaired_segments_total", "Journal segments rewritten by the scrubber to drop damaged frames.", dg.journal.ScrubRepairedSegments)
		counter("appclassd_journal_scrub_lost_records_total", "Journal records inside damaged frames the scrubber could not save.", dg.journal.ScrubLostRecords)
		counter("appclassd_journal_scrub_quarantined_total", "Damaged journal segments preserved as .corrupt by the scrubber.", dg.journal.ScrubQuarantined)
	}
	if pstats != nil {
		fmt.Fprintf(w, "# HELP appclassd_hosts Hosts in the placement inventory.\n# TYPE appclassd_hosts gauge\nappclassd_hosts %d\n", pstats.Hosts)
		fmt.Fprintf(w, "# HELP appclassd_slots Total application slots in the placement inventory.\n# TYPE appclassd_slots gauge\nappclassd_slots %d\n", pstats.Slots)
		fmt.Fprintf(w, "# HELP appclassd_placements_active Active placements.\n# TYPE appclassd_placements_active gauge\nappclassd_placements_active %d\n", pstats.Placements)
	}
	fmt.Fprintf(w, "# HELP appclassd_model_active_info The serving model, as a labeled constant gauge.\n# TYPE appclassd_model_active_info gauge\nappclassd_model_active_info{id=%q} 1\n", mg.activeID)
	fmt.Fprintf(w, "# HELP appclassd_model_swap_pause_seconds Duration of the most recent promote's quiesced swap window (0 before any swap).\n# TYPE appclassd_model_swap_pause_seconds gauge\nappclassd_model_swap_pause_seconds %g\n",
		float64(mg.swapLastNanos)/1e9)
	shadowActive := 0
	if mg.shadow != nil {
		shadowActive = 1
	}
	fmt.Fprintf(w, "# HELP appclassd_shadow_active Whether a candidate model is shadow-classifying live traffic.\n# TYPE appclassd_shadow_active gauge\nappclassd_shadow_active %d\n", shadowActive)
	if sv := mg.shadow; sv != nil {
		fmt.Fprintf(w, "# HELP appclassd_shadow_snapshots Snapshots shadow-classified by the current candidate.\n# TYPE appclassd_shadow_snapshots gauge\nappclassd_shadow_snapshots{candidate=%q} %d\n", sv.Candidate, sv.Snapshots)
		fmt.Fprintf(w, "# HELP appclassd_shadow_disagreements Shadowed snapshots where the candidate voted differently than the active model.\n# TYPE appclassd_shadow_disagreements gauge\nappclassd_shadow_disagreements{candidate=%q} %d\n", sv.Candidate, sv.Disagree)
		fmt.Fprintf(w, "# HELP appclassd_shadow_class_disagreements Per-class shadow disagreement, keyed by the active model's vote.\n# TYPE appclassd_shadow_class_disagreements gauge\n")
		for cl, pair := range sv.PerClass {
			fmt.Fprintf(w, "appclassd_shadow_class_disagreements{candidate=%q,class=%q} %d\n", sv.Candidate, cl, pair.Disagree)
		}
		fmt.Fprintf(w, "# HELP appclassd_shadow_unknown_rate_delta Candidate unknown rate minus active unknown rate over shadowed snapshots.\n# TYPE appclassd_shadow_unknown_rate_delta gauge\nappclassd_shadow_unknown_rate_delta{candidate=%q} %g\n", sv.Candidate, sv.UnknownRateDelta)
		fmt.Fprintf(w, "# HELP appclassd_shadow_latency_seconds Mean per-snapshot classification latency of the candidate.\n# TYPE appclassd_shadow_latency_seconds gauge\nappclassd_shadow_latency_seconds{candidate=%q} %g\n", sv.Candidate, float64(sv.MeanLatencyNanos)/1e9)
		fmt.Fprintf(w, "# HELP appclassd_shadow_errors Candidate classification errors over shadowed snapshots.\n# TYPE appclassd_shadow_errors gauge\nappclassd_shadow_errors{candidate=%q} %d\n", sv.Candidate, sv.Errors)
	}
	// Finalize hot-path latency: the database Put per session finalize.
	counter("appclassd_finalize_appends_total", "Session records appended to the application database.", c.finalizeAppends.Load())
	fmt.Fprintf(w, "# HELP appclassd_finalize_append_seconds_total Cumulative time spent appending finalized records to the application database.\n# TYPE appclassd_finalize_append_seconds_total counter\nappclassd_finalize_append_seconds_total %g\n",
		float64(c.finalizeAppendNanos.Load())/1e9)
	fmt.Fprintf(w, "# HELP appclassd_finalize_append_last_seconds Duration of the most recent finalize append (0 before any finalize).\n# TYPE appclassd_finalize_append_last_seconds gauge\nappclassd_finalize_append_last_seconds %g\n",
		float64(c.finalizeAppendLastNanos.Load())/1e9)
	if sg != nil {
		// Segmented-store gauges (absent when the database is in-memory).
		fmt.Fprintf(w, "# HELP appclassd_appdb_segments Application-database segment files on disk, including the active one.\n# TYPE appclassd_appdb_segments gauge\nappclassd_appdb_segments %d\n", sg.Segments)
		fmt.Fprintf(w, "# HELP appclassd_appdb_bytes Total bytes of application-database segments on disk.\n# TYPE appclassd_appdb_bytes gauge\nappclassd_appdb_bytes %d\n", sg.Bytes)
		fmt.Fprintf(w, "# HELP appclassd_appdb_live_records Live records in the application database.\n# TYPE appclassd_appdb_live_records gauge\nappclassd_appdb_live_records %d\n", sg.LiveRecords)
		fmt.Fprintf(w, "# HELP appclassd_appdb_dead_records Tombstoned records awaiting compaction.\n# TYPE appclassd_appdb_dead_records gauge\nappclassd_appdb_dead_records %d\n", sg.DeadRecords)
		counter("appclassd_appdb_compactions_total", "Application-database compaction passes since open.", sg.Compactions)
		counter("appclassd_appdb_pruned_records_total", "Records marked dead by pruning and retention since open.", sg.PrunedRecords)
		counter("appclassd_appdb_dropped_records_total", "Records physically removed by compaction since open.", sg.DroppedRecords)
		counter("appclassd_appdb_corrupt_frames_total", "Corrupt application-database frames skipped at open.", sg.CorruptFrames)
		fmt.Fprintf(w, "# HELP appclassd_appdb_append_last_seconds Duration of the store's most recent record append.\n# TYPE appclassd_appdb_append_last_seconds gauge\nappclassd_appdb_append_last_seconds %g\n",
			float64(sg.AppendLastNanos)/1e9)
		counter("appclassd_appdb_scrub_scans_total", "Closed application-database segments examined by the scrubber since open.", sg.ScrubScans)
		counter("appclassd_appdb_scrub_repaired_segments_total", "Application-database segments rewritten by the scrubber to drop damaged frames.", sg.ScrubRepairedSegments)
		counter("appclassd_appdb_scrub_lost_records_total", "Live application-database records inside damaged frames the scrubber could not save.", sg.ScrubLostRecords)
		counter("appclassd_appdb_scrub_quarantined_total", "Damaged application-database segments preserved as .corrupt by the scrubber.", sg.ScrubQuarantined)
	}
	// Probation: whether a freshly promoted model is still under its
	// displaced predecessor's guard, and how the guard sees it.
	probationActive := 0
	if mg.probation != nil {
		probationActive = 1
	}
	fmt.Fprintf(w, "# HELP appclassd_probation_active Whether the serving model is inside its post-promote probation window.\n# TYPE appclassd_probation_active gauge\nappclassd_probation_active %d\n", probationActive)
	if pv := mg.probation; pv != nil {
		fmt.Fprintf(w, "# HELP appclassd_probation_remaining_seconds Seconds until the probation window closes.\n# TYPE appclassd_probation_remaining_seconds gauge\nappclassd_probation_remaining_seconds{model=%q,guard=%q} %g\n", pv.Model, pv.Guard, pv.RemainingSeconds)
		fmt.Fprintf(w, "# HELP appclassd_probation_snapshots Snapshots the probation guard has shadow-classified.\n# TYPE appclassd_probation_snapshots gauge\nappclassd_probation_snapshots{model=%q,guard=%q} %d\n", pv.Model, pv.Guard, pv.Shadow.Snapshots)
		fmt.Fprintf(w, "# HELP appclassd_probation_unknown_rate Open-set unknown rate of the model under probation over guarded snapshots.\n# TYPE appclassd_probation_unknown_rate gauge\nappclassd_probation_unknown_rate{model=%q,guard=%q} %g\n", pv.Model, pv.Guard, pv.Shadow.UnknownRateActive)
		fmt.Fprintf(w, "# HELP appclassd_probation_guard_unknown_rate Open-set unknown rate of the displaced guard model over the same snapshots.\n# TYPE appclassd_probation_guard_unknown_rate gauge\nappclassd_probation_guard_unknown_rate{model=%q,guard=%q} %g\n", pv.Model, pv.Guard, pv.Shadow.UnknownRateCandidate)
	}
	// Task supervision: one info/restart/wedged series per supervised
	// task plus the supervisor's lifetime totals.
	counter("appclassd_task_panics_total", "Panics captured in supervised background tasks.", tg.panics)
	counter("appclassd_task_escalations_total", "Supervised tasks escalated to degraded after repeated panics.", tg.escalations)
	counter("appclassd_task_wedge_events_total", "Heartbeat-deadline misses observed by the supervisor.", tg.wedges)
	if len(tg.tasks) > 0 {
		fmt.Fprintf(w, "# HELP appclassd_task_info Supervised task state (1 per task, labeled with its status).\n# TYPE appclassd_task_info gauge\n")
		for _, ts := range tg.tasks {
			fmt.Fprintf(w, "appclassd_task_info{task=%q,status=%q} 1\n", ts.Name, ts.Status)
		}
		fmt.Fprintf(w, "# HELP appclassd_task_restarts_total Restarts of each supervised task after a panic.\n# TYPE appclassd_task_restarts_total counter\n")
		for _, ts := range tg.tasks {
			fmt.Fprintf(w, "appclassd_task_restarts_total{task=%q} %d\n", ts.Name, ts.Restarts)
		}
		fmt.Fprintf(w, "# HELP appclassd_task_wedged Whether a supervised task has missed its heartbeat deadline.\n# TYPE appclassd_task_wedged gauge\n")
		for _, ts := range tg.tasks {
			wedged := 0
			if ts.Wedged {
				wedged = 1
			}
			fmt.Fprintf(w, "appclassd_task_wedged{task=%q} %d\n", ts.Name, wedged)
		}
	}
	fmt.Fprintf(w, "# HELP appclassd_uptime_seconds Seconds since the daemon started.\n# TYPE appclassd_uptime_seconds gauge\nappclassd_uptime_seconds %g\n", uptimeSeconds)
}
