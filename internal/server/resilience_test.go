package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/wal"
)

func TestAdmissionBudget(t *testing.T) {
	a := admission{maxBytes: 100, maxRequests: 2}
	if !a.tryAdmit(60) {
		t.Fatal("first 60-byte request refused under an empty budget")
	}
	if a.tryAdmit(50) {
		t.Fatal("110 in-flight bytes admitted over a 100-byte budget")
	}
	if !a.tryAdmit(40) {
		t.Fatal("second request refused with budget to spare")
	}
	if a.tryAdmit(0) {
		t.Fatal("third request admitted over a 2-request budget")
	}
	a.release(60)
	if !a.tryAdmit(10) {
		t.Fatal("request refused after a release freed the budget")
	}
	b, r := a.inflight()
	if b != 50 || r != 2 {
		t.Errorf("inflight = %d bytes, %d requests; want 50 and 2", b, r)
	}
	a.release(40)
	a.release(10)
	b, r = a.inflight()
	if b != 0 || r != 0 {
		t.Errorf("inflight after all releases = %d bytes, %d requests; want 0 and 0", b, r)
	}

	// Failed admissions must not leak reservations.
	var leak admission
	leak.maxBytes, leak.maxRequests = 10, 10
	for i := 0; i < 100; i++ {
		leak.tryAdmit(1000)
	}
	if b, r := leak.inflight(); b != 0 || r != 0 {
		t.Errorf("rejected admissions leaked %d bytes, %d requests", b, r)
	}

	// Zero limits disable the corresponding budget.
	var open admission
	if !open.tryAdmit(1 << 40) {
		t.Error("unlimited admission refused a request")
	}
}

func TestIngestShedsOverBudget(t *testing.T) {
	s := newTestServer(t, Config{MaxInflightBytes: 1})
	h := s.Handler()
	w := postJSON(t, h, "/v1/ingest", map[string]any{
		"snapshots": []map[string]any{zeroSnapshot("vm-shed", 0)},
	})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-budget ingest = %d, want 429", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got == "" {
		t.Error("shed response has no Retry-After header")
	}
	if got := s.counters.shedRequests.Load(); got != 1 {
		t.Errorf("shedRequests = %d, want 1", got)
	}
	if got := s.Sessions(); got != 0 {
		t.Errorf("shed request created %d sessions", got)
	}
	// Nothing stays reserved after the shed.
	if b, r := s.admit.inflight(); b != 0 || r != 0 {
		t.Errorf("inflight after shed = %d bytes, %d requests; want 0 and 0", b, r)
	}
}

func TestIngestDeadlineShedsBetweenGroups(t *testing.T) {
	clock := time.Unix(1_700_000_000, 0)
	s := newTestServer(t, Config{
		IngestTimeout: 500 * time.Millisecond,
		Now: func() time.Time {
			// Every observation of the clock advances it a full second, so
			// the deadline computed on entry has always passed by the first
			// between-groups check.
			clock = clock.Add(time.Second)
			return clock
		},
	})
	w := postJSON(t, s.Handler(), "/v1/ingest", map[string]any{
		"snapshots": []map[string]any{zeroSnapshot("vm-slow", 0)},
	})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("expired ingest deadline = %d, want 503", w.Code)
	}
	if got := s.counters.deadlineExceeded.Load(); got != 1 {
		t.Errorf("deadlineExceeded = %d, want 1", got)
	}
}

func TestReadyzWithoutJournal(t *testing.T) {
	s := newTestServer(t, Config{})
	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Errorf("readyz without a journal = %d, want 200", w.Code)
	}
}

// TestDegradedDurabilityLifecycle drives the full degraded-mode arc:
// a journal fault flips the daemon into memory-only ingest (no 5xx to
// clients), /readyz goes 503 while /healthz stays 200, and once the
// fault heals a rate-limited probe re-arms the journal and readiness
// returns.
func TestDegradedDurabilityLifecycle(t *testing.T) {
	fs := faultinject.NewFS()
	clock := time.Unix(1_700_000_000, 0)
	now := func() time.Time { return clock }
	j, err := wal.Open(wal.Config{
		Dir:             t.TempDir(),
		Fsync:           wal.FsyncNever,
		Now:             now,
		OpenSegmentFile: fs.OpenSegmentFile,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Registered before newTestServer's shutdown cleanup, so LIFO order
	// closes the journal only after the server has flushed sessions.
	t.Cleanup(func() { j.Close() })
	s := newTestServer(t, Config{
		Journal:            j,
		DegradeOnWALError:  true,
		DegradedProbeEvery: 5 * time.Second,
		Now:                now,
	})
	h := s.Handler()
	ingest := func(vm string, at float64) int {
		t.Helper()
		w := postJSON(t, h, "/v1/ingest", map[string]any{
			"snapshots": []map[string]any{zeroSnapshot(vm, at)},
		})
		return w.Code
	}

	if code := ingest("vm-a", 0); code != http.StatusOK {
		t.Fatalf("healthy ingest = %d, want 200", code)
	}
	if s.DurabilityDegraded() {
		t.Fatal("daemon degraded before any fault")
	}

	// The disk fills: ingest must keep succeeding, memory-only.
	fs.FailWrites(syscall.ENOSPC)
	fs.FailOpens(syscall.ENOSPC)
	clock = clock.Add(time.Second)
	if code := ingest("vm-a", 5); code != http.StatusOK {
		t.Fatalf("ingest during WAL fault = %d, want 200 (degraded, not failing)", code)
	}
	if !s.DurabilityDegraded() {
		t.Fatal("journal fault did not enter degraded mode")
	}
	if got := s.counters.degradedEntries.Load(); got != 1 {
		t.Errorf("degradedEntries = %d, want 1", got)
	}

	// Liveness vs readiness split.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Errorf("healthz while degraded = %d, want 200 (liveness)", w.Code)
	}
	if !strings.Contains(w.Body.String(), `"degraded"`) {
		t.Errorf("healthz body does not report degraded durability: %s", w.Body.String())
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz while degraded = %d, want 503", w.Code)
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metricsz", nil))
	if !strings.Contains(w.Body.String(), "appclassd_durability_degraded 1") {
		t.Error("metricsz does not show appclassd_durability_degraded 1")
	}

	// More ingest while degraded: still 200, and no probe until the
	// rate limit elapses.
	clock = clock.Add(time.Second)
	if code := ingest("vm-a", 10); code != http.StatusOK {
		t.Fatalf("second degraded ingest = %d, want 200", code)
	}

	// The fault heals; after DegradedProbeEvery the next batch probes,
	// revives the journal, and restores readiness.
	fs.FailWrites(nil)
	fs.FailOpens(nil)
	clock = clock.Add(6 * time.Second)
	if code := ingest("vm-a", 15); code != http.StatusOK {
		t.Fatalf("probing ingest = %d, want 200", code)
	}
	if s.DurabilityDegraded() {
		t.Fatal("daemon still degraded after the journal healed and a probe ran")
	}
	if got := s.counters.degradedExits.Load(); got != 1 {
		t.Errorf("degradedExits = %d, want 1", got)
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if w.Code != http.StatusOK {
		t.Errorf("readyz after recovery = %d, want 200", w.Code)
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metricsz", nil))
	body := w.Body.String()
	if !strings.Contains(body, "appclassd_durability_degraded 0") {
		t.Error("metricsz does not show appclassd_durability_degraded 0 after recovery")
	}
	if !strings.Contains(body, "appclassd_durability_degraded_entries_total 1") ||
		!strings.Contains(body, "appclassd_durability_degraded_exits_total 1") {
		t.Errorf("metricsz missing degraded entry/exit counters:\n%s", body)
	}
}

// TestJournalErrorWithoutDegradeStillFails pins the default contract:
// without DegradeOnWALError, a journal fault rejects the batch so no
// acknowledged state can outrun the journal.
func TestJournalErrorWithoutDegradeStillFails(t *testing.T) {
	fs := faultinject.NewFS()
	j, err := wal.Open(wal.Config{
		Dir:             t.TempDir(),
		Fsync:           wal.FsyncNever,
		OpenSegmentFile: fs.OpenSegmentFile,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	s := newTestServer(t, Config{Journal: j})
	fs.FailWrites(syscall.ENOSPC)
	fs.FailOpens(syscall.ENOSPC)
	w := postJSON(t, s.Handler(), "/v1/ingest", map[string]any{
		"snapshots": []map[string]any{zeroSnapshot("vm-a", 0)},
	})
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("journal fault without degrade = %d, want 500", w.Code)
	}
	if s.DurabilityDegraded() {
		t.Error("degraded mode entered without DegradeOnWALError")
	}
	// The rejected batch must not have been classified: no acknowledged
	// state outruns the journal.
	if sess, ok := s.reg.get("vm-a"); ok {
		sess.mu.Lock()
		seen := sess.online.Seen()
		sess.mu.Unlock()
		if seen != 0 {
			t.Errorf("rejected batch recorded %d snapshots", seen)
		}
	}
	// Heal before cleanup so shutdown can finalize cleanly.
	fs.FailWrites(nil)
	fs.FailOpens(nil)
	if err := j.Revive(); err != nil {
		t.Fatalf("revive for cleanup: %v", err)
	}
}

func TestResilienceMetricsExposition(t *testing.T) {
	s := newTestServer(t, Config{})
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metricsz", nil))
	body := w.Body.String()
	for _, metric := range []string{
		"appclassd_poll_breaker_skipped_total",
		"appclassd_poll_breaker_opens_total",
		"appclassd_poll_breaker_state",
		"appclassd_poll_last_success_seconds",
		"appclassd_ingest_shed_total",
		"appclassd_ingest_deadline_exceeded_total",
		"appclassd_ingest_inflight_bytes",
		"appclassd_ingest_inflight_requests",
		"appclassd_sample_gaps_total",
		"appclassd_sample_gap_seconds_total",
	} {
		if !strings.Contains(body, metric) {
			t.Errorf("metricsz missing %s", metric)
		}
	}
}
