package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ganglia"
	"repro/internal/metrics"
	"repro/internal/resilience"
)

// servedGmetad builds a gmetad aggregator whose cluster state holds the
// full 33-metric schema for the given nodes, plus one straggler node
// that has only announced a single metric.
func servedGmetad(t *testing.T, nodes ...string) *httptest.Server {
	t.Helper()
	bus := ganglia.NewBus()
	gm, err := ganglia.NewGmetad("test-cluster", bus)
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range nodes {
		for _, name := range metrics.DefaultNames() {
			bus.Announce(ganglia.Announcement{Node: node, Metric: name, Value: 0, At: time.Second})
		}
	}
	bus.Announce(ganglia.Announcement{Node: "straggler", Metric: metrics.CPUUser, Value: 1, At: time.Second})
	srv := httptest.NewServer(gm.Handler(func() time.Duration { return 2 * time.Second }))
	t.Cleanup(srv.Close)
	return srv
}

// testPoller builds a poller for direct pollOnce/recordGaps driving.
func testPoller(s *Server, srv *httptest.Server) *poller {
	pc := PollConfig{URL: srv.URL, Interval: 5 * time.Second, Client: srv.Client()}
	return s.newPoller(pc)
}

func TestPollOnceIngestsCompleteNodes(t *testing.T) {
	s := newTestServer(t, Config{})
	srv := servedGmetad(t, "node-a", "node-b")
	p := testPoller(s, srv)
	ctx := context.Background()
	if err := p.pollOnce(ctx); err != nil {
		t.Fatalf("pollOnce: %v", err)
	}
	if got := s.Sessions(); got != 2 {
		t.Errorf("%d sessions after poll, want 2 (straggler skipped)", got)
	}
	if _, ok := s.reg.get("straggler"); ok {
		t.Error("straggler with incomplete metrics got a session")
	}
	if got := s.counters.pollSkipped.Load(); got != 1 {
		t.Errorf("pollSkipped = %d, want 1", got)
	}
	if got := s.counters.ingested.Load(); got != 2 {
		t.Errorf("ingested = %d, want 2", got)
	}
	if got := s.counters.pollLastSuccess.Load(); got == 0 {
		t.Error("pollLastSuccess not stamped after a successful poll")
	}
	if len(p.known) != 2 {
		t.Errorf("poller knows %d nodes, want 2", len(p.known))
	}
	// A second poll observes into the same sessions.
	if err := p.pollOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if got := s.Sessions(); got != 2 {
		t.Errorf("%d sessions after second poll, want 2", got)
	}
	sess, _ := s.reg.get("node-a")
	sess.mu.Lock()
	seen := sess.online.Seen()
	sess.mu.Unlock()
	if seen != 2 {
		t.Errorf("node-a saw %d snapshots, want 2", seen)
	}
}

func TestPollOnceCountsErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	p := s.newPoller(PollConfig{URL: "http://127.0.0.1:1/nowhere"})
	if err := p.pollOnce(context.Background()); err == nil {
		t.Error("unreachable gmetad: want error")
	}
	if got := s.counters.pollErrors.Load(); got != 1 {
		t.Errorf("pollErrors = %d, want 1", got)
	}
	if got := s.counters.pollLastSuccess.Load(); got != 0 {
		t.Errorf("pollLastSuccess = %d after a failed poll, want 0", got)
	}
}

func TestPollOnceMalformedXML(t *testing.T) {
	s := newTestServer(t, Config{})
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("<GANGLIA_XML><CLUSTER NAME='broken'><HOST NAME="))
	}))
	t.Cleanup(garbage.Close)
	p := s.newPoller(PollConfig{URL: garbage.URL, Client: garbage.Client()})
	if err := p.pollOnce(context.Background()); err == nil {
		t.Error("malformed gmetad XML: want error")
	}
	if got := s.counters.pollErrors.Load(); got != 1 {
		t.Errorf("pollErrors = %d, want 1", got)
	}
	if got := s.Sessions(); got != 0 {
		t.Errorf("%d sessions from a malformed dump, want 0", got)
	}
}

func TestPollOnceTimeoutMidBody(t *testing.T) {
	s := newTestServer(t, Config{})
	// The aggregator sends a valid prefix, then stalls longer than the
	// per-attempt deadline mid-body.
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("<GANGLIA_XML><CLUSTER NAME=\"slow\">"))
		w.(http.Flusher).Flush()
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
	}))
	t.Cleanup(stall.Close)
	p := s.newPoller(PollConfig{
		URL:          stall.URL,
		Client:       stall.Client(),
		FetchTimeout: 50 * time.Millisecond,
	})
	start := time.Now()
	if err := p.pollOnce(context.Background()); err == nil {
		t.Error("mid-body stall: want error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("pollOnce took %v; the per-attempt deadline did not bound the stalled body read", elapsed)
	}
	if got := s.counters.pollErrors.Load(); got != 1 {
		t.Errorf("pollErrors = %d, want 1", got)
	}
}

// TestPollNodeDisappearsMidRun drives the full lifecycle the ISSUE
// describes: a node vanishes from a healthy aggregator, its session
// accumulates sample gaps on every subsequent poll, and the idle-TTL
// janitor eventually finalizes it into the application database with
// the gaps on the record.
func TestPollNodeDisappearsMidRun(t *testing.T) {
	clock := time.Unix(1_700_000_000, 0)
	now := func() time.Time { return clock }
	s := newTestServer(t, Config{IdleTTL: time.Minute, Now: func() time.Time { return now() }})

	full := servedGmetad(t, "steady", "vanisher")
	reduced := servedGmetad(t, "steady")
	var vanished atomic.Bool
	swap := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		target := full
		if vanished.Load() {
			target = reduced
		}
		resp, err := target.Client().Get(target.URL)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		io.Copy(w, resp.Body)
	}))
	t.Cleanup(swap.Close)

	p := s.newPoller(PollConfig{URL: swap.URL, Interval: 5 * time.Second, Client: swap.Client()})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := p.pollOnce(ctx); err != nil {
			t.Fatalf("poll %d: %v", i, err)
		}
		clock = clock.Add(5 * time.Second)
	}
	vanished.Store(true)
	for i := 0; i < 4; i++ {
		if err := p.pollOnce(ctx); err != nil {
			t.Fatalf("post-vanish poll %d: %v", i, err)
		}
		clock = clock.Add(5 * time.Second)
	}

	sess, ok := s.reg.get("vanisher")
	if !ok {
		t.Fatal("vanisher session gone before the janitor ran")
	}
	sess.mu.Lock()
	gaps, gapTime := sess.online.Gaps()
	sess.mu.Unlock()
	if gaps != 4 {
		t.Errorf("vanisher has %d gaps, want 4 (one per post-vanish poll)", gaps)
	}
	if want := 4 * 5 * time.Second; gapTime != want {
		t.Errorf("vanisher gap time = %v, want %v", gapTime, want)
	}
	// The steady node never went gappy.
	steady, _ := s.reg.get("steady")
	steady.mu.Lock()
	sGaps, _ := steady.online.Gaps()
	steady.mu.Unlock()
	if sGaps != 0 {
		t.Errorf("steady node has %d gaps, want 0", sGaps)
	}

	// Idle the vanisher past the TTL (the steady node keeps getting
	// polled, so only the vanisher is evicted) and let the janitor
	// finalize it.
	for i := 0; i < 13; i++ { // 65s > 1m TTL since the vanisher's last snapshot
		if err := p.pollOnce(ctx); err != nil {
			t.Fatalf("ttl poll %d: %v", i, err)
		}
		clock = clock.Add(5 * time.Second)
	}
	if n := s.EvictIdle(); n != 1 {
		t.Fatalf("EvictIdle evicted %d sessions, want 1 (the vanisher)", n)
	}
	rec, err := s.DB().Latest("vanisher")
	if err != nil {
		t.Fatalf("no appdb record for the vanisher: %v", err)
	}
	if rec.Gaps == 0 || rec.GapTime == 0 {
		t.Errorf("finalized record has gaps=%d gapTime=%v, want both nonzero", rec.Gaps, rec.GapTime)
	}
	if rec.Samples != 3 {
		t.Errorf("finalized record has %d samples, want 3 (pre-vanish polls)", rec.Samples)
	}
}

func TestPollerBreakerOpensAndRecovers(t *testing.T) {
	clock := time.Unix(1_700_000_000, 0)
	s := newTestServer(t, Config{Now: func() time.Time { return clock }})
	srv := servedGmetad(t, "node-a")
	var down atomic.Bool
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "gmetad down", http.StatusBadGateway)
			return
		}
		resp, err := srv.Client().Get(srv.URL)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		io.Copy(w, resp.Body)
	}))
	t.Cleanup(flaky.Close)

	p := s.newPoller(PollConfig{
		URL:             flaky.URL,
		Client:          flaky.Client(),
		Interval:        5 * time.Second,
		BreakerFailures: 3,
		BreakerOpenFor:  30 * time.Second,
	})
	ctx := context.Background()
	if err := p.pollOnce(ctx); err != nil {
		t.Fatal(err)
	}
	down.Store(true)
	for i := 0; i < 3; i++ {
		if !p.breaker.Allow() {
			t.Fatalf("breaker refused attempt %d before the threshold", i)
		}
		if err := p.pollOnce(ctx); err == nil {
			t.Fatal("poll against a down gmetad succeeded")
		}
		p.breaker.Failure()
	}
	if got := p.breaker.State(); got != resilience.Open {
		t.Fatalf("breaker state after 3 failures = %v, want open", got)
	}
	if p.breaker.Allow() {
		t.Fatal("open breaker allowed a poll")
	}
	if got := s.counters.breakerOpens.Load(); got != 1 {
		t.Errorf("breakerOpens = %d, want 1", got)
	}
	// The open window elapses; the half-open probe hits a healed source
	// and closes the breaker.
	clock = clock.Add(30 * time.Second)
	down.Store(false)
	if !p.breaker.Allow() {
		t.Fatal("expired breaker refused the half-open probe")
	}
	if err := p.pollOnce(ctx); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	p.breaker.Success()
	if got := p.breaker.State(); got != resilience.Closed {
		t.Errorf("breaker state after probe success = %v, want closed", got)
	}
}

func TestStartPollerRunsAndStops(t *testing.T) {
	s := newTestServer(t, Config{})
	srv := servedGmetad(t, "looped-node")
	if err := s.StartPoller(PollConfig{URL: srv.URL, Interval: 2 * time.Millisecond, Client: srv.Client()}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.counters.polls.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if s.counters.polls.Load() == 0 {
		t.Error("poller never polled")
	}
	// Cleanup's Shutdown must stop the loop without deadlock; nothing
	// further to assert here.
}

func TestStartPollerRequiresURL(t *testing.T) {
	s := newTestServer(t, Config{})
	if err := s.StartPoller(PollConfig{}); err == nil {
		t.Error("empty URL: want error")
	}
}
