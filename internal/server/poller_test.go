package server

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/ganglia"
	"repro/internal/metrics"
)

// servedGmetad builds a gmetad aggregator whose cluster state holds the
// full 33-metric schema for the given nodes, plus one straggler node
// that has only announced a single metric.
func servedGmetad(t *testing.T, nodes ...string) *httptest.Server {
	t.Helper()
	bus := ganglia.NewBus()
	gm, err := ganglia.NewGmetad("test-cluster", bus)
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range nodes {
		for _, name := range metrics.DefaultNames() {
			bus.Announce(ganglia.Announcement{Node: node, Metric: name, Value: 0, At: time.Second})
		}
	}
	bus.Announce(ganglia.Announcement{Node: "straggler", Metric: metrics.CPUUser, Value: 1, At: time.Second})
	srv := httptest.NewServer(gm.Handler(func() time.Duration { return 2 * time.Second }))
	t.Cleanup(srv.Close)
	return srv
}

func TestPollOnceIngestsCompleteNodes(t *testing.T) {
	s := newTestServer(t, Config{})
	srv := servedGmetad(t, "node-a", "node-b")
	if err := s.pollOnce(srv.Client(), srv.URL); err != nil {
		t.Fatalf("pollOnce: %v", err)
	}
	if got := s.Sessions(); got != 2 {
		t.Errorf("%d sessions after poll, want 2 (straggler skipped)", got)
	}
	if _, ok := s.reg.get("straggler"); ok {
		t.Error("straggler with incomplete metrics got a session")
	}
	if got := s.counters.pollSkipped.Load(); got != 1 {
		t.Errorf("pollSkipped = %d, want 1", got)
	}
	if got := s.counters.ingested.Load(); got != 2 {
		t.Errorf("ingested = %d, want 2", got)
	}
	// A second poll observes into the same sessions.
	if err := s.pollOnce(srv.Client(), srv.URL); err != nil {
		t.Fatal(err)
	}
	if got := s.Sessions(); got != 2 {
		t.Errorf("%d sessions after second poll, want 2", got)
	}
	sess, _ := s.reg.get("node-a")
	sess.mu.Lock()
	seen := sess.online.Seen()
	sess.mu.Unlock()
	if seen != 2 {
		t.Errorf("node-a saw %d snapshots, want 2", seen)
	}
}

func TestPollOnceCountsErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	if err := s.pollOnce(nil, "http://127.0.0.1:1/nowhere"); err == nil {
		t.Error("unreachable gmetad: want error")
	}
	if got := s.counters.pollErrors.Load(); got != 1 {
		t.Errorf("pollErrors = %d, want 1", got)
	}
}

func TestStartPollerRunsAndStops(t *testing.T) {
	s := newTestServer(t, Config{})
	srv := servedGmetad(t, "looped-node")
	if err := s.StartPoller(PollConfig{URL: srv.URL, Interval: 2 * time.Millisecond, Client: srv.Client()}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.counters.polls.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if s.counters.polls.Load() == 0 {
		t.Error("poller never polled")
	}
	// Cleanup's Shutdown must stop the loop without deadlock; nothing
	// further to assert here.
}

func TestStartPollerRequiresURL(t *testing.T) {
	s := newTestServer(t, Config{})
	if err := s.StartPoller(PollConfig{}); err == nil {
		t.Error("empty URL: want error")
	}
}
