package server

import (
	"embed"
	"io/fs"
	"net/http"
	"strconv"
	"time"

	"repro/internal/appclass"
	"repro/internal/appstore"
	"repro/internal/supervise"
)

// The control-plane dashboard is a static single-page app compiled into
// the binary: no build step, no CDN, nothing to deploy next to the
// daemon. It polls the JSON endpoints below (which are always on; only
// the asset mount is gated by Config.Dashboard).

//go:embed dashboard
var dashboardFiles embed.FS

func dashboardAssets() fs.FS {
	sub, err := fs.Sub(dashboardFiles, "dashboard")
	if err != nil {
		panic(err) // embedded tree is fixed at build time
	}
	return sub
}

// runJSON is one row of GET /v1/runs: a finalized application-database
// record, rendered for operators (durations in seconds, times RFC3339).
type runJSON struct {
	App           string                     `json:"app"`
	Class         string                     `json:"class"`
	Composition   map[appclass.Class]float64 `json:"composition,omitempty"`
	ExecutionSecs float64                    `json:"execution_s"`
	Samples       int                        `json:"samples"`
	FinalizedAt   string                     `json:"finalized_at,omitempty"`
	Gaps          int                        `json:"gaps,omitempty"`
	Verdict       string                     `json:"verdict,omitempty"`
	Unknown       float64                    `json:"unknown_fraction,omitempty"`
	Model         string                     `json:"model,omitempty"`
	Phases        int                        `json:"phases,omitempty"`
	Fingerprint   string                     `json:"fingerprint,omitempty"`
	MatchedApp    string                     `json:"matched_app,omitempty"`
	MatchScore    float64                    `json:"match_score,omitempty"`
}

// parseTimeParam accepts RFC3339 or integer unix seconds; zero when
// absent.
func parseTimeParam(v string) (int64, bool) {
	if v == "" {
		return 0, true
	}
	if secs, err := strconv.ParseInt(v, 10, 64); err == nil {
		return secs * int64(time.Second), true
	}
	if t, err := time.Parse(time.RFC3339, v); err == nil {
		return t.UnixNano(), true
	}
	return 0, false
}

// handleRuns serves the paginated finalized-run query API over the
// application database: GET /v1/runs?app=&class=&verdict=&model=&since=
// &until=&cursor=&limit=. Newest first; the response's next_cursor
// resumes the scan (0 when exhausted).
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := appstore.Filter{
		App:     q.Get("app"),
		Class:   appclass.Class(q.Get("class")),
		Verdict: appclass.Class(q.Get("verdict")),
		Model:   q.Get("model"),
	}
	if f.Class != "" && !appclass.Valid(f.Class) {
		writeError(w, http.StatusBadRequest, "unknown class %q", f.Class)
		return
	}
	if f.Verdict != "" && f.Verdict != appclass.Unknown && !appclass.Valid(f.Verdict) {
		writeError(w, http.StatusBadRequest, "unknown verdict %q", f.Verdict)
		return
	}
	var ok bool
	if f.Since, ok = parseTimeParam(q.Get("since")); !ok {
		writeError(w, http.StatusBadRequest, "since must be RFC3339 or unix seconds")
		return
	}
	if f.Until, ok = parseTimeParam(q.Get("until")); !ok {
		writeError(w, http.StatusBadRequest, "until must be RFC3339 or unix seconds")
		return
	}
	var cursor uint64
	if v := q.Get("cursor"); v != "" {
		c, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "cursor must be an unsigned integer")
			return
		}
		cursor = c
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		limit = n
	}
	recs, next, err := s.cfg.DB.Scan(f, cursor, limit)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "scan: %v", err)
		return
	}
	out := struct {
		Count      int       `json:"count"`
		Runs       []runJSON `json:"runs"`
		NextCursor uint64    `json:"next_cursor"`
	}{Runs: make([]runJSON, 0, len(recs)), NextCursor: next}
	for _, rec := range recs {
		row := runJSON{
			App:           rec.App,
			Class:         string(rec.Class),
			Composition:   rec.Composition,
			ExecutionSecs: rec.ExecutionTime.Seconds(),
			Samples:       rec.Samples,
			Gaps:          rec.Gaps,
			Verdict:       string(rec.Verdict),
			Unknown:       rec.UnknownFraction,
			Model:         rec.ModelID,
			Phases:        len(rec.Phases),
			MatchedApp:    rec.MatchedApp,
			MatchScore:    rec.MatchScore,
		}
		if rec.FinalizedAt > 0 {
			row.FinalizedAt = time.Unix(0, rec.FinalizedAt).UTC().Format(time.RFC3339)
		}
		if rec.Fingerprint != nil && !rec.Fingerprint.Empty() {
			row.Fingerprint = rec.Fingerprint.String()
		}
		out.Runs = append(out.Runs, row)
	}
	out.Count = len(out.Runs)
	writeJSON(w, http.StatusOK, out)
}

// statusJSON is GET /v1/status: the control-plane state the dashboard
// renders — one JSON document instead of scraping Prometheus text.
type statusJSON struct {
	UptimeSecs float64 `json:"uptime_s"`
	Sessions   int     `json:"sessions"`
	Ingested   int64   `json:"ingested"`
	// Durability is "none", "journaled", or "degraded"; Ready mirrors
	// /readyz.
	Durability string `json:"durability"`
	Ready      bool   `json:"ready"`
	Reason     string `json:"reason,omitempty"`
	// Journal state (absent without a journal).
	JournalSegments int   `json:"journal_segments,omitempty"`
	JournalBytes    int64 `json:"journal_bytes,omitempty"`
	// BreakerState is the poll breaker (0 closed, 1 half-open, 2 open);
	// -1 when the daemon runs push-only.
	BreakerState int64 `json:"breaker_state"`
	// Classes counts live sessions by current class vote.
	Classes map[string]int `json:"classes"`
	// Model is the serving model's compatibility hash; ShadowCandidate
	// the candidate currently shadow-classifying, if any.
	Model           string `json:"model,omitempty"`
	ShadowCandidate string `json:"shadow_candidate,omitempty"`
	// Database state: record/application counts and — when the segmented
	// store backs it — engine internals.
	DBRecords int             `json:"db_records"`
	DBApps    int             `json:"db_apps"`
	Store     *storeStateJSON `json:"store,omitempty"`
	// Placement inventory, when the placement service is configured.
	Hosts      int  `json:"hosts,omitempty"`
	Placements int  `json:"placements,omitempty"`
	HasAdvice  bool `json:"has_advice"`
	// Tasks are the supervised background loops with their restart
	// counters and health; Probation is the running post-promote
	// guardrail window, if any.
	Tasks     []supervise.TaskState `json:"tasks,omitempty"`
	Probation *probationView        `json:"probation,omitempty"`
}

type storeStateJSON struct {
	Dir            string  `json:"dir"`
	Segments       int     `json:"segments"`
	Bytes          int64   `json:"bytes"`
	LiveRecords    int     `json:"live_records"`
	DeadRecords    int     `json:"dead_records"`
	Compactions    int64   `json:"compactions"`
	PrunedRecords  int64   `json:"pruned_records"`
	AppendLastSecs float64 `json:"append_last_s"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	ready, reason := s.readiness()
	st := statusJSON{
		UptimeSecs:   s.now().Sub(s.start).Seconds(),
		Sessions:     s.reg.len(),
		Ingested:     s.counters.ingested.Load(),
		Durability:   "none",
		Ready:        ready,
		Reason:       reason,
		BreakerState: -1,
		Classes:      make(map[string]int),
		Model:        s.ActiveModelID(),
		DBRecords:    s.cfg.DB.Len(),
		DBApps:       len(s.cfg.DB.Apps()),
		HasAdvice:    s.cfg.Placement != nil,
	}
	if j := s.cfg.Journal; j != nil {
		st.Durability = "journaled"
		if s.DurabilityDegraded() {
			st.Durability = "degraded"
		}
		js := j.Stats()
		st.JournalSegments = js.Segments
		st.JournalBytes = js.Bytes
	}
	// The breaker position is only meaningful once the poll loop has
	// attempted something; a push-only daemon reports -1 (n/a).
	if s.counters.polls.Load() > 0 {
		st.BreakerState = s.counters.breakerState.Load()
	}
	for _, sess := range s.reg.all() {
		sess.mu.Lock()
		view := sess.online.Snapshot()
		sess.mu.Unlock()
		if view.Total > 0 {
			st.Classes[string(view.Class)]++
		}
	}
	if se := s.shadow.Load(); se != nil {
		st.ShadowCandidate = se.view().Candidate
	}
	if ss, ok := s.cfg.DB.StoreStats(); ok {
		st.Store = &storeStateJSON{
			Dir:            s.cfg.DB.Store().Dir(),
			Segments:       ss.Segments,
			Bytes:          ss.Bytes,
			LiveRecords:    ss.LiveRecords,
			DeadRecords:    ss.DeadRecords,
			Compactions:    ss.Compactions,
			PrunedRecords:  ss.PrunedRecords,
			AppendLastSecs: float64(ss.AppendLastNanos) / 1e9,
		}
	}
	if s.cfg.Placement != nil {
		ps := s.cfg.Placement.Stat()
		st.Hosts = ps.Hosts
		st.Placements = ps.Placements
	}
	st.Tasks = s.sup.Snapshot()
	st.Probation = s.probationView()
	writeJSON(w, http.StatusOK, st)
}
