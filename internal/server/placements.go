package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"repro/internal/appclass"
	"repro/internal/placement"
)

// The placement API turns live classifications into scheduling
// decisions: POST /v1/placements asks for a host for an application,
// GET /v1/hosts exposes the inventory with per-class load vectors, and
// GET /v1/placements/advice runs the migration advisor. Every handler
// answers 503 until a placement service is configured (-hosts on the
// daemon).

// placementSvc returns the configured placement service, or writes a
// 503 and returns nil.
func (s *Server) placementSvc(w http.ResponseWriter) *placement.Service {
	if s.cfg.Placement == nil {
		writeError(w, http.StatusServiceUnavailable, "placement service not configured (start the daemon with -hosts)")
		return nil
	}
	return s.cfg.Placement
}

// placeRequest is POST /v1/placements. Composition, when set, overrides
// the live/history/prior prediction chain.
type placeRequest struct {
	App         string             `json:"app"`
	Composition map[string]float64 `json:"composition,omitempty"`
}

// decisionJSON is the wire form of a placement decision.
type decisionJSON struct {
	ID           string                `json:"id"`
	App          string                `json:"app"`
	Host         string                `json:"host"`
	Class        string                `json:"class"`
	Composition  map[string]float64    `json:"composition"`
	Source       string                `json:"source"`
	Score        float64               `json:"score"`
	Alternatives []placement.HostScore `json:"alternatives"`
	At           string                `json:"at"`
}

func decisionToJSON(d placement.Decision) decisionJSON {
	return decisionJSON{
		ID:           d.ID,
		App:          d.App,
		Host:         d.Host,
		Class:        string(d.Class),
		Composition:  compToJSON(d.Composition),
		Source:       d.Source,
		Score:        d.Score,
		Alternatives: d.Alternatives,
		At:           d.At.UTC().Format(time.RFC3339),
	}
}

func compToJSON(comp map[appclass.Class]float64) map[string]float64 {
	out := make(map[string]float64, len(comp))
	for c, f := range comp {
		out[string(c)] = f
	}
	return out
}

func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	svc := s.placementSvc(w)
	if svc == nil {
		return
	}
	var req placeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed placement body: %v", err)
		return
	}
	if req.App == "" {
		writeError(w, http.StatusBadRequest, "placement request has no app")
		return
	}
	var d placement.Decision
	var err error
	if len(req.Composition) > 0 {
		comp := make(map[appclass.Class]float64, len(req.Composition))
		for name, f := range req.Composition {
			c, perr := appclass.Parse(name)
			if perr != nil {
				writeError(w, http.StatusBadRequest, "placement composition: %v", perr)
				return
			}
			comp[c] = f
		}
		d, err = svc.PlaceComposition(req.App, comp, "request")
	} else {
		d, err = svc.Place(req.App)
	}
	if err != nil {
		s.counters.placementErrors.Add(1)
		code := http.StatusBadRequest
		if errors.Is(err, placement.ErrNoCapacity) {
			code = http.StatusConflict
		}
		writeError(w, code, "%v", err)
		return
	}
	s.counters.placements.Add(1)
	writeJSON(w, http.StatusOK, decisionToJSON(d))
}

func (s *Server) handlePlacements(w http.ResponseWriter, r *http.Request) {
	svc := s.placementSvc(w)
	if svc == nil {
		return
	}
	views := svc.Placements()
	out := struct {
		Count      int                       `json:"count"`
		Placements []placement.PlacementView `json:"placements"`
	}{Count: len(views), Placements: views}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	svc := s.placementSvc(w)
	if svc == nil {
		return
	}
	id := r.PathValue("id")
	if !svc.Release(id) {
		writeError(w, http.StatusNotFound, "no active placement %q", id)
		return
	}
	s.counters.releases.Add(1)
	writeJSON(w, http.StatusOK, map[string]string{"released": id})
}

func (s *Server) handleHosts(w http.ResponseWriter, r *http.Request) {
	svc := s.placementSvc(w)
	if svc == nil {
		return
	}
	hosts := svc.Hosts()
	out := struct {
		Count int                  `json:"count"`
		Hosts []placement.HostView `json:"hosts"`
	}{Count: len(hosts), Hosts: hosts}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHost(w http.ResponseWriter, r *http.Request) {
	svc := s.placementSvc(w)
	if svc == nil {
		return
	}
	name := r.PathValue("name")
	v, ok := svc.Host(name)
	if !ok {
		writeError(w, http.StatusNotFound, "no host %q in the inventory", name)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleAdvice(w http.ResponseWriter, r *http.Request) {
	svc := s.placementSvc(w)
	if svc == nil {
		return
	}
	advice := svc.Advise()
	out := struct {
		Count  int                `json:"count"`
		Advice []placement.Advice `json:"advice"`
	}{Count: len(advice), Advice: advice}
	writeJSON(w, http.StatusOK, out)
}
