package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/metrics"
)

// randomSnapshot builds a full-schema by-values snapshot with random
// non-negative values.
func randomSnapshot(rng *rand.Rand, vm string, at float64) map[string]any {
	vals := make([]float64, metrics.DefaultSchema().Len())
	for i := range vals {
		vals[i] = rng.Float64() * 100
	}
	return map[string]any{"vm": vm, "time_s": at, "values": vals}
}

// TestIngestGroupedMatchesSequential interleaves snapshots from several
// VMs in one batch and checks that the grouped ingest path returns the
// same per-snapshot classes, in input order, as sending each snapshot
// as its own batch to a second server.
func TestIngestGroupedMatchesSequential(t *testing.T) {
	grouped := newTestServer(t, Config{})
	sequential := newTestServer(t, Config{})

	rng := rand.New(rand.NewSource(21))
	vms := []string{"vm-a", "vm-b", "vm-c"}
	var snaps []map[string]any
	for i := 0; i < 30; i++ {
		snaps = append(snaps, randomSnapshot(rng, vms[i%len(vms)], float64(i)))
	}

	w := postJSON(t, grouped.Handler(), "/v1/ingest", map[string]any{"snapshots": snaps})
	if w.Code != http.StatusOK {
		t.Fatalf("grouped ingest: %d %s", w.Code, w.Body)
	}
	var resp struct {
		Accepted int `json:"accepted"`
		Results  []struct {
			VM    string `json:"vm"`
			Class string `json:"class"`
		} `json:"results"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != len(snaps) || len(resp.Results) != len(snaps) {
		t.Fatalf("accepted %d results %d, want %d", resp.Accepted, len(resp.Results), len(snaps))
	}

	for i, snap := range snaps {
		if got, want := resp.Results[i].VM, snap["vm"].(string); got != want {
			t.Fatalf("result %d is for %q, want %q (input order lost)", i, got, want)
		}
		sw := postJSON(t, sequential.Handler(), "/v1/ingest", map[string]any{"snapshots": []map[string]any{snap}})
		if sw.Code != http.StatusOK {
			t.Fatalf("sequential ingest %d: %d %s", i, sw.Code, sw.Body)
		}
		var sresp struct {
			Results []struct {
				Class string `json:"class"`
			} `json:"results"`
		}
		if err := json.Unmarshal(sw.Body.Bytes(), &sresp); err != nil {
			t.Fatal(err)
		}
		if resp.Results[i].Class != sresp.Results[0].Class {
			t.Fatalf("result %d: grouped %q, sequential %q", i, resp.Results[i].Class, sresp.Results[0].Class)
		}
	}
	if got, want := grouped.Sessions(), len(vms); got != want {
		t.Errorf("grouped server has %d sessions, want %d", got, want)
	}
	if got := grouped.counters.ingested.Load(); got != int64(len(snaps)) {
		t.Errorf("ingested counter = %d, want %d", got, len(snaps))
	}
}

// TestIngestGroupedByNameMetrics sends an interleaved multi-VM batch in
// by-name form (exercising the pooled decode buffers) and checks it
// agrees with the equivalent by-values batch.
func TestIngestGroupedByNameMetrics(t *testing.T) {
	s := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(33))
	names := metrics.DefaultSchema().Names()

	var byName, byValues []map[string]any
	for i := 0; i < 12; i++ {
		vm := fmt.Sprintf("vm-%d", i%4)
		vals := make([]float64, len(names))
		named := make(map[string]float64, len(names))
		for j, n := range names {
			vals[j] = rng.Float64() * 50
			named[n] = vals[j]
		}
		byName = append(byName, map[string]any{"vm": vm, "time_s": float64(i), "metrics": named})
		byValues = append(byValues, map[string]any{"vm": vm + "-ref", "time_s": float64(i), "values": vals})
	}

	wn := postJSON(t, s.Handler(), "/v1/ingest", map[string]any{"snapshots": byName})
	wv := postJSON(t, s.Handler(), "/v1/ingest", map[string]any{"snapshots": byValues})
	if wn.Code != http.StatusOK || wv.Code != http.StatusOK {
		t.Fatalf("ingest: by-name %d, by-values %d", wn.Code, wv.Code)
	}
	var rn, rv struct {
		Results []struct {
			Class string `json:"class"`
		} `json:"results"`
	}
	if err := json.Unmarshal(wn.Body.Bytes(), &rn); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(wv.Body.Bytes(), &rv); err != nil {
		t.Fatal(err)
	}
	for i := range rn.Results {
		if rn.Results[i].Class != rv.Results[i].Class {
			t.Fatalf("snapshot %d: by-name %q, by-values %q", i, rn.Results[i].Class, rv.Results[i].Class)
		}
	}
}

// TestPprofGating checks the profiling endpoints are absent by default
// and mounted with Config.EnablePprof.
func TestPprofGating(t *testing.T) {
	get := func(s *Server, path string) int {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		return w.Code
	}
	off := newTestServer(t, Config{})
	if code := get(off, "/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("pprof disabled: GET /debug/pprof/ = %d, want 404", code)
	}
	on := newTestServer(t, Config{EnablePprof: true})
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		if code := get(on, path); code != http.StatusOK {
			t.Errorf("pprof enabled: GET %s = %d, want 200", path, code)
		}
	}
}
