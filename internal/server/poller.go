package server

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/ganglia"
)

// PollConfig describes the pull-mode ingestion source: a gmetad
// aggregator whose XML cluster state is fetched on a ticker, so the
// daemon can monitor a cluster whose nodes never push.
type PollConfig struct {
	// URL is the gmetad interactive-port endpoint.
	URL string
	// Interval between polls. Zero means the paper's 5-second gmond
	// announce cadence.
	Interval time.Duration
	// Client performs the fetches. Nil means ganglia's default client
	// with DefaultFetchTimeout.
	Client *http.Client
}

// StartPoller launches the pull-mode ingestion loop.
func (s *Server) StartPoller(pc PollConfig) error {
	if pc.URL == "" {
		return fmt.Errorf("server: poller needs a gmetad URL")
	}
	if pc.Interval <= 0 {
		pc.Interval = 5 * time.Second
	}
	s.loops.Add(1)
	go func() {
		defer s.loops.Done()
		t := time.NewTicker(pc.Interval)
		defer t.Stop()
		for {
			select {
			case <-s.stopc:
				return
			case <-t.C:
				if err := s.pollOnce(pc.Client, pc.URL); err != nil {
					s.cfg.Logf("server: poll %s: %v", pc.URL, err)
				}
			}
		}
	}()
	return nil
}

// pollOnce fetches the cluster state once and routes every node that
// reports the full schema into its session. Nodes missing schema
// metrics (e.g. a gmond that has not announced everything yet) are
// skipped and counted, not fatal.
func (s *Server) pollOnce(client *http.Client, url string) error {
	s.counters.polls.Add(1)
	state, err := ganglia.FetchClusterState(client, url)
	if err != nil {
		s.counters.pollErrors.Add(1)
		return err
	}
	at := s.now().Sub(s.start)
	names := s.cfg.Schema.Names()
	for node, nodeMetrics := range state {
		values := make([]float64, len(names))
		complete := true
		for j, name := range names {
			v, ok := nodeMetrics[name]
			if !ok {
				complete = false
				break
			}
			values[j] = v
		}
		if !complete {
			s.counters.pollSkipped.Add(1)
			continue
		}
		if _, err := s.observe(node, at, values); err != nil {
			s.counters.pollErrors.Add(1)
			s.cfg.Logf("server: poll classify %s: %v", node, err)
		}
	}
	return nil
}
