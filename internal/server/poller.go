package server

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"time"

	"repro/internal/ganglia"
	"repro/internal/resilience"
	"repro/internal/supervise"
)

// PollConfig describes the pull-mode ingestion source: a gmetad
// aggregator whose XML cluster state is fetched on a ticker, so the
// daemon can monitor a cluster whose nodes never push. The fetch loop
// is hardened for the regime a production monitor actually lives in —
// flaky aggregators, slow networks, restarts: per-attempt deadlines,
// exponential backoff with jitter after consecutive failures, and a
// circuit breaker that stops hitting a source known to be down until a
// half-open probe finds it healthy again. While samples are missed,
// the affected sessions record explicit gaps instead of silently
// pretending the stream was continuous.
type PollConfig struct {
	// URL is the gmetad interactive-port endpoint.
	URL string
	// Interval between polls. Zero means the paper's 5-second gmond
	// announce cadence.
	Interval time.Duration
	// Client performs the fetches. Nil means ganglia's default client
	// with DefaultFetchTimeout.
	Client *http.Client
	// FetchTimeout is the per-attempt deadline. Zero means
	// ganglia.DefaultFetchTimeout.
	FetchTimeout time.Duration
	// BackoffMax caps the exponential backoff between failed polls
	// (base Interval, doubling per consecutive failure, ±25% jitter).
	// Zero means one minute.
	BackoffMax time.Duration
	// BreakerFailures is how many consecutive fetch failures open the
	// per-source circuit breaker. Zero means 5.
	BreakerFailures int
	// BreakerOpenFor is how long an open breaker skips the source before
	// letting a half-open probe through. Zero means 30 seconds.
	BreakerOpenFor time.Duration
}

// poller is one pull-mode ingestion loop with its per-source breaker,
// backoff schedule, and the node set it is responsible for. Everything
// here is touched only by the loop goroutine.
type poller struct {
	s       *Server
	pc      PollConfig
	breaker *resilience.Breaker
	backoff resilience.Backoff
	// known tracks the nodes this poller fed on its last successful
	// poll. When a poll fails (or the breaker skips one), every known
	// node's session records a sample gap; a node that disappears from a
	// healthy aggregator stays in known — going gappy each poll — until
	// its session is finalized by the idle-TTL janitor.
	known map[string]struct{}
}

// newPoller applies PollConfig defaults and builds the loop state; the
// loop itself is launched by StartPoller (tests drive pollOnce and
// recordGaps directly).
func (s *Server) newPoller(pc PollConfig) *poller {
	if pc.Interval <= 0 {
		pc.Interval = 5 * time.Second
	}
	if pc.FetchTimeout <= 0 {
		pc.FetchTimeout = ganglia.DefaultFetchTimeout
	}
	if pc.BackoffMax <= 0 {
		pc.BackoffMax = time.Minute
	}
	if pc.BackoffMax < pc.Interval {
		pc.BackoffMax = pc.Interval
	}
	p := &poller{
		s:  s,
		pc: pc,
		backoff: resilience.Backoff{
			Base:   pc.Interval,
			Max:    pc.BackoffMax,
			Jitter: 0.25,
			Rand:   rand.New(rand.NewSource(time.Now().UnixNano())),
		},
		known: make(map[string]struct{}),
	}
	p.breaker = resilience.NewBreaker(resilience.BreakerConfig{
		Failures: pc.BreakerFailures,
		OpenFor:  pc.BreakerOpenFor,
		Now:      s.now,
		OnStateChange: func(from, to resilience.State) {
			if to == resilience.Open {
				s.counters.breakerOpens.Add(1)
			}
			s.counters.breakerState.Store(int64(to))
			s.cfg.Logf("server: poll breaker for %s: %s -> %s", pc.URL, from, to)
		},
	})
	return p
}

// StartPoller launches the pull-mode ingestion loop as a supervised
// task: a panic inside a poll restarts the loop (fresh breaker and
// backoff state) instead of silently ending pull ingestion, and a
// wedged fetch shows up on the heartbeat.
func (s *Server) StartPoller(pc PollConfig) error {
	if pc.URL == "" {
		return fmt.Errorf("server: poller needs a gmetad URL")
	}
	p := s.newPoller(pc)
	// The loop sleeps up to BackoffMax between beats and a fetch can
	// hold it for FetchTimeout more; twice that is decisively wedged.
	hb := 2 * (p.pc.BackoffMax + p.pc.FetchTimeout + p.pc.Interval)
	s.sup.Go("poller", supervise.TaskOptions{Heartbeat: hb}, func(stop <-chan struct{}, t *supervise.Task) {
		// The context cancels in-flight fetches the moment the task
		// stops, so no poll outlives Shutdown.
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() {
			<-stop
			cancel()
		}()
		p.run(ctx, t)
	})
	return nil
}

// run is the poll loop: interval cadence while healthy, exponential
// backoff with jitter across consecutive failures, breaker-open ticks
// that skip the fetch entirely but keep accounting the lost coverage.
func (p *poller) run(ctx context.Context, t *supervise.Task) {
	s := p.s
	timer := time.NewTimer(p.pc.Interval)
	defer timer.Stop()
	failures := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		if t != nil {
			t.Beat()
		}
		delay := p.pc.Interval
		if !p.breaker.Allow() {
			// Source known down: skip the fetch, keep the interval cadence
			// so the open->half-open expiry is noticed promptly, and record
			// the skipped interval as a gap on every session this poller
			// feeds.
			s.counters.pollBreakerSkipped.Add(1)
			p.recordGaps(delay)
		} else if err := p.pollOnce(ctx); err != nil {
			if ctx.Err() != nil {
				return // shutdown cancelled the fetch
			}
			p.breaker.Failure()
			failures++
			delay = p.backoff.Next(failures)
			if delay < p.pc.Interval {
				delay = p.pc.Interval
			}
			s.cfg.Logf("server: poll %s: %v (attempt %d, next in %v)", p.pc.URL, err, failures, delay)
			p.recordGaps(delay)
		} else {
			p.breaker.Success()
			failures = 0
		}
		s.counters.breakerState.Store(int64(p.breaker.State()))
		timer.Reset(delay)
	}
}

// recordGaps accounts wall of lost coverage on every session this
// poller is responsible for. Sessions already evicted fall out of the
// known set; push-fed sessions are never in it.
func (p *poller) recordGaps(wall time.Duration) {
	s := p.s
	for vm := range p.known {
		sess, ok := s.reg.get(vm)
		if !ok {
			delete(p.known, vm)
			continue
		}
		sess.mu.Lock()
		if !sess.finalized {
			sess.online.RecordGap(wall)
		}
		sess.mu.Unlock()
		s.counters.sampleGaps.Add(1)
		s.counters.sampleGapNanos.Add(int64(wall))
	}
}

// pollOnce fetches the cluster state once under the per-attempt
// deadline and routes every node that reports the full schema into its
// session. Nodes missing schema metrics (e.g. a gmond that has not
// announced everything yet) are skipped and counted, not fatal; a known
// node absent from a healthy response records a gap instead.
func (p *poller) pollOnce(ctx context.Context) error {
	s := p.s
	s.counters.polls.Add(1)
	actx, cancel := context.WithTimeout(ctx, p.pc.FetchTimeout)
	state, err := ganglia.FetchClusterStateContext(actx, p.pc.Client, p.pc.URL)
	cancel()
	if err != nil {
		s.counters.pollErrors.Add(1)
		return err
	}
	at := s.now().Sub(s.start)
	names := s.cfg.Schema.Names()
	fed := make(map[string]struct{}, len(state))
	for node, nodeMetrics := range state {
		values := make([]float64, len(names))
		complete := true
		for j, name := range names {
			v, ok := nodeMetrics[name]
			if !ok {
				complete = false
				break
			}
			values[j] = v
		}
		if !complete {
			s.counters.pollSkipped.Add(1)
			continue
		}
		if _, err := s.observe(node, at, values); err != nil {
			s.counters.pollErrors.Add(1)
			s.cfg.Logf("server: poll classify %s: %v", node, err)
			continue
		}
		fed[node] = struct{}{}
	}
	// A node the aggregator used to report but no longer does missed
	// this interval: its session goes gappy until the idle-TTL janitor
	// finalizes it (or the node comes back).
	for vm := range p.known {
		if _, ok := fed[vm]; ok {
			continue
		}
		sess, ok := s.reg.get(vm)
		if !ok {
			delete(p.known, vm)
			continue
		}
		sess.mu.Lock()
		if !sess.finalized {
			sess.online.RecordGap(p.pc.Interval)
		}
		sess.mu.Unlock()
		s.counters.sampleGaps.Add(1)
		s.counters.sampleGapNanos.Add(int64(p.pc.Interval))
	}
	for vm := range fed {
		p.known[vm] = struct{}{}
	}
	s.counters.pollLastSuccess.Store(s.now().UnixNano())
	return nil
}
