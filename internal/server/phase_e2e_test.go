package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/metrics"
	"repro/internal/wal"
)

// getJSON issues a GET against the daemon's handler.
func getJSON(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

// decodeJSON unmarshals a recorded 200 response body into v.
func decodeJSON(t *testing.T, w *httptest.ResponseRecorder, v any) {
	t.Helper()
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), v); err != nil {
		t.Fatalf("decode response: %v\n%s", err, w.Body.String())
	}
}

// containsLine reports whether any line of the exposition text starts
// with the given prefix.
func containsLine(text, prefix string) bool {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, prefix) {
			return true
		}
	}
	return false
}

// splicedTrace concatenates profiled traces of the named registry
// entries into one stream on a uniform 5-second cadence, returning the
// spliced trace and the times at which each later segment begins — the
// planted phase boundaries the segmenter must recover.
func splicedTrace(t *testing.T, vm string, names ...string) (*metrics.Trace, []time.Duration) {
	t.Helper()
	const cadence = 5 * time.Second
	out := metrics.NewTrace(metrics.DefaultSchema(), vm)
	var boundaries []time.Duration
	next := cadence
	for si, name := range names {
		tr := profiledTrace(t, name)
		if tr.Len() == 0 {
			t.Fatalf("profiled trace for %s is empty", name)
		}
		if si > 0 {
			boundaries = append(boundaries, next)
		}
		for i := 0; i < tr.Len(); i++ {
			sn := tr.At(i)
			if err := out.Append(metrics.Snapshot{Time: next, Node: vm, Values: sn.Values}); err != nil {
				t.Fatalf("splice %s snapshot %d: %v", name, i, err)
			}
			next += cadence
		}
	}
	return out, boundaries
}

// TestSegmentationRecoversPlantedBoundary splices a profiled
// CPU-intensive trace onto an IO-intensive one and streams the result
// through the daemon: the online segmenter must place a phase boundary
// within one segmentation window of the splice point, label the sides
// with the right classes, and expose the breakdown over the API.
func TestSegmentationRecoversPlantedBoundary(t *testing.T) {
	vm := "spliced-vm"
	trace, boundaries := splicedTrace(t, vm, "SPECseis96_C", "PostMark")
	if len(boundaries) != 1 {
		t.Fatalf("planted %d boundaries, want 1", len(boundaries))
	}

	s := newTestServer(t, Config{})
	ingestTraceRange(t, s, vm, trace, 0, trace.Len())

	view := sessionView(t, s, vm)
	if len(view.Phases) < 2 {
		t.Fatalf("segmenter found %d phases, want at least 2: %+v", len(view.Phases), view.Phases)
	}
	if got := view.Phases[0].Class; got != appclass.CPU {
		t.Errorf("first phase class = %s, want %s", got, appclass.CPU)
	}
	last := view.Phases[len(view.Phases)-1]
	if last.Class != appclass.IO {
		t.Errorf("last phase class = %s, want %s", last.Class, appclass.IO)
	}
	if !last.Open {
		t.Errorf("last phase should still be open on a live session")
	}
	// One detected boundary must land within one window of the splice.
	window := 8 * 5 * time.Second
	planted := boundaries[0]
	found := false
	for _, p := range view.Phases[1:] {
		if d := p.Start - planted; d >= -window && d <= window {
			found = true
		}
	}
	if !found {
		starts := make([]time.Duration, 0, len(view.Phases))
		for _, p := range view.Phases {
			starts = append(starts, p.Start)
		}
		t.Errorf("no phase boundary within %v of planted splice at %v; phase starts: %v", window, planted, starts)
	}

	// The API must expose the same breakdown.
	w := getJSON(t, s, "/v1/vms/"+vm)
	var detail struct {
		Phases    int `json:"phases"`
		PhaseList []struct {
			Class string `json:"class"`
			Open  bool   `json:"open"`
		} `json:"phase_list"`
	}
	decodeJSON(t, w, &detail)
	if detail.Phases != len(view.Phases) || len(detail.PhaseList) != len(view.Phases) {
		t.Errorf("API reports %d/%d phases, session has %d", detail.Phases, len(detail.PhaseList), len(view.Phases))
	}
}

// TestFingerprintMatchesAcrossRuns streams the same spliced workload
// twice under different VM names: the second run's finalized record
// must match the first run's stored fingerprint.
func TestFingerprintMatchesAcrossRuns(t *testing.T) {
	traceA, _ := splicedTrace(t, "fp-a", "SPECseis96_C", "PostMark")
	s := newTestServer(t, Config{})

	ingestTraceRange(t, s, "fp-a", traceA, 0, traceA.Len())
	w := postJSON(t, s.Handler(), "/v1/vms/fp-a/finish", nil)
	if w.Code != 200 {
		t.Fatalf("finish fp-a: %d %s", w.Code, w.Body.String())
	}
	recA, err := s.DB().Latest("fp-a")
	if err != nil {
		t.Fatal(err)
	}
	if recA.Fingerprint == nil || recA.Fingerprint.Empty() {
		t.Fatalf("first run stored no fingerprint: %+v", recA)
	}
	if recA.MatchedApp != "" {
		t.Errorf("first run matched %q with an empty dictionary", recA.MatchedApp)
	}

	// Second run, different VM name, slightly different seed ordering is
	// irrelevant — same trace, so the fingerprints must agree.
	traceB, _ := splicedTrace(t, "fp-b", "SPECseis96_C", "PostMark")
	ingestTraceRange(t, s, "fp-b", traceB, 0, traceB.Len())
	w = postJSON(t, s.Handler(), "/v1/vms/fp-b/finish", nil)
	if w.Code != 200 {
		t.Fatalf("finish fp-b: %d %s", w.Code, w.Body.String())
	}
	recB, err := s.DB().Latest("fp-b")
	if err != nil {
		t.Fatal(err)
	}
	if recB.MatchedApp != "fp-a" {
		t.Errorf("second run matched %q (score %.2f), want fp-a; fingerprints: a=%s b=%s",
			recB.MatchedApp, recB.MatchScore, recA.Fingerprint, recB.Fingerprint)
	}

	// The dictionary endpoint lists both runs.
	var fps struct {
		Count        int `json:"count"`
		Fingerprints []struct {
			App        string `json:"app"`
			MatchedApp string `json:"matched_app"`
		} `json:"fingerprints"`
	}
	decodeJSON(t, getJSON(t, s, "/v1/fingerprints"), &fps)
	if fps.Count != 2 {
		t.Errorf("fingerprint dictionary has %d entries, want 2", fps.Count)
	}
}

// TestCrashRecoveryPreservesPhases kills a journaled daemon mid-stream
// and recovers on the same journal: the recovered session's phase list
// after ingesting the rest must equal an uninterrupted run's.
func TestCrashRecoveryPreservesPhases(t *testing.T) {
	vm := "phase-crash-vm"
	trace, _ := splicedTrace(t, vm, "SPECseis96_C", "PostMark")
	half := trace.Len() / 2

	ref := newTestServer(t, Config{})
	ingestTraceRange(t, ref, vm, trace, 0, trace.Len())
	want := sessionView(t, ref, vm)
	if len(want.Phases) < 2 {
		t.Fatalf("reference run found %d phases, want at least 2", len(want.Phases))
	}

	dir := t.TempDir()
	a := crashServer(t, crashJournal(t, dir))
	ingestTraceRange(t, a, vm, trace, 0, half/2)
	if err := a.Checkpoint(); err != nil {
		t.Fatalf("mid-run checkpoint: %v", err)
	}
	ingestTraceRange(t, a, vm, trace, half/2, half)
	// kill -9: a is abandoned, journal left open.

	jb, err := wal.Open(wal.Config{Dir: dir, Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jb.Close() })
	b := newTestServer(t, Config{Journal: jb})
	if _, err := b.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	ingestTraceRange(t, b, vm, trace, half, trace.Len())

	got := sessionView(t, b, vm)
	if len(got.Phases) != len(want.Phases) {
		t.Fatalf("recovered run has %d phases, uninterrupted run %d:\n got %+v\nwant %+v",
			len(got.Phases), len(want.Phases), got.Phases, want.Phases)
	}
	for i := range want.Phases {
		g, w := got.Phases[i], want.Phases[i]
		if g.Class != w.Class || g.Start != w.Start || g.End != w.End || g.Snapshots != w.Snapshots {
			t.Errorf("phase %d diverged after crash recovery:\n got %+v\nwant %+v", i, g, w)
		}
	}
	if got.Unknown != want.Unknown {
		t.Errorf("recovered unknown count %d, want %d", got.Unknown, want.Unknown)
	}
}

// TestOpenSetVerdictsEndToEnd streams the adversarial Mimic workload
// and all five training-class traces through a daemon with the open-set
// test on: Mimic must finalize UNKNOWN while every training trace keeps
// its label.
func TestOpenSetVerdictsEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{})

	mimic := profiledTrace(t, "Mimic")
	ingestTraceRange(t, s, "mimic-vm", mimic, 0, mimic.Len())
	view := sessionView(t, s, "mimic-vm")
	if view.Verdict != appclass.Unknown {
		t.Errorf("Mimic verdict = %q (unknown fraction %.2f), want %q",
			view.Verdict, view.UnknownFraction, appclass.Unknown)
	}
	w := postJSON(t, s.Handler(), "/v1/vms/mimic-vm/finish", nil)
	if w.Code != 200 {
		t.Fatalf("finish mimic-vm: %d %s", w.Code, w.Body.String())
	}
	rec, err := s.DB().Latest("mimic-vm")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Verdict != appclass.Unknown {
		t.Errorf("Mimic record verdict = %q, want %q", rec.Verdict, appclass.Unknown)
	}
	if !appclass.Valid(rec.Class) {
		t.Errorf("Mimic record class %q should still be a trained class", rec.Class)
	}

	for i, tc := range []struct {
		entry string
		want  appclass.Class
	}{
		{"SPECseis96_train", appclass.CPU},
		{"PostMark_train", appclass.IO},
		{"PageBench_train", appclass.Mem},
		{"Ettcp_train", appclass.Net},
		{"Idle_train", appclass.Idle},
	} {
		vm := fmt.Sprintf("train-vm-%d", i)
		tr := profiledTrace(t, tc.entry)
		ingestTraceRange(t, s, vm, tr, 0, tr.Len())
		view := sessionView(t, s, vm)
		if view.Verdict != tc.want {
			t.Errorf("%s verdict = %q (unknown fraction %.2f), want %q",
				tc.entry, view.Verdict, view.UnknownFraction, tc.want)
		}
	}

	// The daemon's counters must have seen the unknowns.
	metricsW := getJSON(t, s, "/metricsz")
	if metricsW.Code != 200 {
		t.Fatalf("metricsz: %d", metricsW.Code)
	}
	out := metricsW.Body.String()
	for _, want := range []string{
		"appclassd_unknown_snapshots_total",
		"appclassd_unknown_sessions_total 1",
		"appclassd_phase_boundaries_total",
		"appclassd_fingerprint_matches_total",
	} {
		if !containsLine(out, want) {
			t.Errorf("metricsz missing %q", want)
		}
	}
}
