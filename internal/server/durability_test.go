package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/metrics"
	"repro/internal/wal"
)

// crashJournal opens a journal that is deliberately NOT closed by the
// test: crash tests abandon the server mid-stream to simulate kill -9,
// and an abandoned journal's writes are already visible to a fresh
// Open on the same directory.
func crashJournal(t *testing.T, dir string) *wal.Journal {
	t.Helper()
	j, err := wal.Open(wal.Config{Dir: dir, Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	return j
}

// crashServer builds a journaled server without registering a Shutdown
// cleanup, so "crashing" it is just dropping it on the floor.
func crashServer(t *testing.T, j *wal.Journal) *Server {
	t.Helper()
	s, err := New(Config{Classifier: classifier(t), Journal: j})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	return s
}

// ingestTraceRange pushes trace snapshots [start, end) for vm through
// the HTTP ingest API in fixed-size batches.
func ingestTraceRange(t *testing.T, s *Server, vm string, trace *metrics.Trace, start, end int) {
	t.Helper()
	const batchSize = 25
	for lo := start; lo < end; lo += batchSize {
		hi := lo + batchSize
		if hi > end {
			hi = end
		}
		var snaps []any
		for i := lo; i < hi; i++ {
			sn := trace.At(i)
			snaps = append(snaps, map[string]any{"vm": vm, "time_s": sn.Time.Seconds(), "values": sn.Values})
		}
		w := postJSON(t, s.Handler(), "/v1/ingest", map[string]any{"snapshots": snaps})
		if w.Code != 200 {
			t.Fatalf("ingest batch at %d: %d %s", lo, w.Code, w.Body.String())
		}
	}
}

// sessionView snapshots a live session's online state.
func sessionView(t *testing.T, s *Server, vm string) classify.View {
	t.Helper()
	sess, ok := s.reg.get(vm)
	if !ok {
		t.Fatalf("no live session for %s", vm)
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.online.Snapshot()
}

// TestCrashRecoveryMatchesUninterruptedRun is the acceptance path for
// durable ingest: stream half a labeled testbed trace into a journaled
// daemon, checkpoint partway, kill it mid-stream (no shutdown), start a
// fresh daemon on the same journal directory, recover, stream the rest
// — the final class, composition, and snapshot count must equal an
// uninterrupted run's.
func TestCrashRecoveryMatchesUninterruptedRun(t *testing.T) {
	trace := profiledTrace(t, "Stream")
	vm := "crash-vm"
	half := trace.Len() / 2

	// Reference: the same trace through an uninterrupted daemon.
	ref := newTestServer(t, Config{})
	ingestTraceRange(t, ref, vm, trace, 0, trace.Len())
	refSess, ok := ref.reg.get(vm)
	if !ok {
		t.Fatal("no reference session")
	}
	refSess.mu.Lock()
	want := refSess.online.Snapshot()
	refSess.mu.Unlock()

	// Crash run: ingest a quarter, checkpoint, ingest to half, die.
	dir := t.TempDir()
	a := crashServer(t, crashJournal(t, dir))
	ingestTraceRange(t, a, vm, trace, 0, half/2)
	if err := a.Checkpoint(); err != nil {
		t.Fatalf("mid-run checkpoint: %v", err)
	}
	ingestTraceRange(t, a, vm, trace, half/2, half)
	// kill -9: server a is abandoned with sessions live and journal open.

	// Recovery run: fresh server, same journal directory.
	jb, err := wal.Open(wal.Config{Dir: dir, Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jb.Close() })
	b := newTestServer(t, Config{Journal: jb})
	rs, err := b.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rs.Sessions != 1 {
		t.Errorf("recovered %d sessions from checkpoint, want 1", rs.Sessions)
	}
	if rs.Records == 0 || rs.Snapshots == 0 {
		t.Errorf("replayed %d records / %d snapshots, want a journal tail past the checkpoint", rs.Records, rs.Snapshots)
	}
	if rs.Snapshots+half/2 != half {
		t.Errorf("checkpoint covered %d + replayed %d snapshots, want %d total", half/2, rs.Snapshots, half)
	}
	if rs.Errors != 0 || rs.Truncated {
		t.Errorf("recovery stats %+v: want no errors, no torn tail", rs)
	}

	ingestTraceRange(t, b, vm, trace, half, trace.Len())

	sess, ok := b.reg.get(vm)
	if !ok {
		t.Fatal("no recovered session")
	}
	sess.mu.Lock()
	got := sess.online.Snapshot()
	sess.mu.Unlock()
	if got.Class != want.Class {
		t.Errorf("recovered class %q, uninterrupted %q", got.Class, want.Class)
	}
	if got.Total != want.Total {
		t.Errorf("recovered total %d, uninterrupted %d", got.Total, want.Total)
	}
	if got.FirstAt != want.FirstAt || got.LastAt != want.LastAt {
		t.Errorf("recovered span [%v, %v], uninterrupted [%v, %v]", got.FirstAt, got.LastAt, want.FirstAt, want.LastAt)
	}
	for c, f := range want.Composition {
		if g := got.Composition[c]; math.Abs(g-f) > 1e-12 {
			t.Errorf("composition[%s] = %v, uninterrupted %v", c, g, f)
		}
	}
	if math.Abs(got.Drift-want.Drift) > 1e-9 {
		t.Errorf("recovered drift %v, uninterrupted %v", got.Drift, want.Drift)
	}
}

// TestCrashRecoveryFromJournalOnly recovers with no checkpoint on disk:
// everything comes from replaying the journal from the start.
func TestCrashRecoveryFromJournalOnly(t *testing.T) {
	dir := t.TempDir()
	a := crashServer(t, crashJournal(t, dir))
	for i := 0; i < 6; i++ {
		w := postJSON(t, a.Handler(), "/v1/ingest", map[string]any{"snapshots": []any{
			zeroSnapshot("j-vm", float64(i*5)),
		}})
		if w.Code != 200 {
			t.Fatalf("ingest: %d", w.Code)
		}
	}
	// Crash with no checkpoint ever taken.

	jb, err := wal.Open(wal.Config{Dir: dir, Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jb.Close() })
	b := newTestServer(t, Config{Journal: jb})
	rs, err := b.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rs.CheckpointSeq != 0 || rs.Sessions != 0 {
		t.Errorf("recovery used checkpoint %d with %d sessions, want none", rs.CheckpointSeq, rs.Sessions)
	}
	if rs.Snapshots != 6 {
		t.Errorf("replayed %d snapshots, want 6", rs.Snapshots)
	}
	view := sessionView(t, b, "j-vm")
	if view.Total != 6 {
		t.Errorf("recovered session saw %d snapshots, want 6", view.Total)
	}
}

// TestRecoverHonorsFinalizeRecords replays a journal whose tail ends a
// session: the VM must not come back live, and its record must land in
// the (restarted, empty) application database again.
func TestRecoverHonorsFinalizeRecords(t *testing.T) {
	dir := t.TempDir()
	a := crashServer(t, crashJournal(t, dir))
	for _, vm := range []string{"done-vm", "live-vm"} {
		w := postJSON(t, a.Handler(), "/v1/ingest", map[string]any{"snapshots": []any{
			zeroSnapshot(vm, 0), zeroSnapshot(vm, 5),
		}})
		if w.Code != 200 {
			t.Fatalf("ingest %s: %d", vm, w.Code)
		}
	}
	w := postJSON(t, a.Handler(), "/v1/vms/done-vm/finish", nil)
	if w.Code != 200 {
		t.Fatalf("finish: %d %s", w.Code, w.Body.String())
	}
	// Crash after the finish: its db record (in-memory) is lost.

	jb, err := wal.Open(wal.Config{Dir: dir, Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jb.Close() })
	b := newTestServer(t, Config{Journal: jb})
	rs, err := b.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rs.Finalized != 1 {
		t.Errorf("recovery finalized %d sessions, want 1 (stats %+v)", rs.Finalized, rs)
	}
	if _, ok := b.reg.get("done-vm"); ok {
		t.Error("finished vm resurrected by replay")
	}
	if _, ok := b.reg.get("live-vm"); !ok {
		t.Error("live vm not recovered")
	}
	rec, err := b.DB().Latest("done-vm")
	if err != nil {
		t.Fatalf("replay did not re-finalize into db: %v", err)
	}
	if rec.Samples != 2 {
		t.Errorf("re-finalized record has %d samples, want 2", rec.Samples)
	}
}

// TestShutdownWritesFinalCheckpoint: after a clean shutdown, recovery
// is a no-op — the final checkpoint has no sessions and covers every
// journal record (including the shutdown flush markers).
func TestShutdownWritesFinalCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ja := crashJournal(t, dir)
	a := crashServer(t, ja)
	w := postJSON(t, a.Handler(), "/v1/ingest", map[string]any{"snapshots": []any{
		zeroSnapshot("clean-vm", 0), zeroSnapshot("clean-vm", 5),
	}})
	if w.Code != 200 {
		t.Fatalf("ingest: %d", w.Code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := ja.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}

	cp, err := wal.LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("clean shutdown left no checkpoint")
	}
	var payload checkpointPayload
	if err := json.Unmarshal(cp.Payload, &payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Sessions) != 0 {
		t.Errorf("final checkpoint holds %d sessions, want 0", len(payload.Sessions))
	}

	jb, err := wal.Open(wal.Config{Dir: dir, Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jb.Close() })
	b := newTestServer(t, Config{Journal: jb})
	rs, err := b.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rs.Sessions != 0 || rs.Records != 0 {
		t.Errorf("clean restart replayed %d sessions + %d records, want nothing (stats %+v)", rs.Sessions, rs.Records, rs)
	}
}

// TestRecoverSurvivesTornTail cuts the abandoned journal's active
// segment mid-record, as a crash during a write would; recovery stops
// at the last valid record instead of failing.
func TestRecoverSurvivesTornTail(t *testing.T) {
	dir := t.TempDir()
	a := crashServer(t, crashJournal(t, dir))
	for i := 0; i < 4; i++ {
		w := postJSON(t, a.Handler(), "/v1/ingest", map[string]any{"snapshots": []any{
			zeroSnapshot("torn-vm", float64(i*5)),
		}})
		if w.Code != 200 {
			t.Fatalf("ingest: %d", w.Code)
		}
	}
	// Tear the last record: chop 3 bytes off the only segment.
	segs, err := filepath.Glob(filepath.Join(dir, "journal-*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments %v (err %v), want exactly one", segs, err)
	}
	st, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], st.Size()-3); err != nil {
		t.Fatal(err)
	}

	jb, err := wal.Open(wal.Config{Dir: dir, Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jb.Close() })
	b := newTestServer(t, Config{Journal: jb})
	rs, err := b.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if !rs.Truncated {
		t.Error("recovery did not report the torn tail")
	}
	if rs.Snapshots != 3 {
		t.Errorf("replayed %d snapshots, want 3 (last record torn)", rs.Snapshots)
	}
	view := sessionView(t, b, "torn-vm")
	if view.Total != 3 {
		t.Errorf("recovered session saw %d snapshots, want 3", view.Total)
	}
}

// TestDoubleCrashRecovery is the double-crash hole: crash #1 leaves a
// torn tail, the restart recovers and appends new records into a fresh
// segment, then crash #2 hits before any periodic checkpoint. Recovery
// must deliver BOTH the pre-tear records and everything appended after
// the first restart — an unrepaired tear in the now-non-final segment
// would silently swallow the post-restart records.
func TestDoubleCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	vm := "dc-vm"

	// Run A: 4 snapshots, then kill -9 with a torn tail.
	a := crashServer(t, crashJournal(t, dir))
	for i := 0; i < 4; i++ {
		w := postJSON(t, a.Handler(), "/v1/ingest", map[string]any{"snapshots": []any{
			zeroSnapshot(vm, float64(i*5)),
		}})
		if w.Code != 200 {
			t.Fatalf("ingest: %d", w.Code)
		}
	}
	segs, err := filepath.Glob(filepath.Join(dir, "journal-*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments %v (err %v), want exactly one", segs, err)
	}
	st, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], st.Size()-3); err != nil {
		t.Fatal(err)
	}

	// Run B: recover (repairs the tear, 3 of 4 snapshots survive), then
	// ingest 2 more — these land in B's fresh segment — and kill -9
	// again before any periodic checkpoint could run.
	jb := crashJournal(t, dir)
	b := crashServer(t, jb)
	rs, err := b.Recover()
	if err != nil {
		t.Fatalf("recover B: %v", err)
	}
	if !rs.Truncated || rs.Snapshots != 3 {
		t.Fatalf("recovery B stats %+v, want torn tail repaired and 3 snapshots", rs)
	}
	if cp, err := wal.LatestCheckpoint(dir); err != nil || cp == nil {
		t.Fatalf("recovery left no post-recovery checkpoint (cp %v, err %v)", cp, err)
	}
	for i := 4; i < 6; i++ {
		w := postJSON(t, b.Handler(), "/v1/ingest", map[string]any{"snapshots": []any{
			zeroSnapshot(vm, float64(i*5)),
		}})
		if w.Code != 200 {
			t.Fatalf("ingest B: %d", w.Code)
		}
	}

	// Run C: everything must come back — 3 surviving pre-tear snapshots
	// plus the 2 appended after the first restart.
	jc := crashJournal(t, dir)
	t.Cleanup(func() { jc.Close() })
	c := newTestServer(t, Config{Journal: jc})
	rsc, err := c.Recover()
	if err != nil {
		t.Fatalf("recover C: %v", err)
	}
	if len(rsc.GapSegments) != 0 {
		t.Errorf("recovery C reported gaps %v, want none", rsc.GapSegments)
	}
	if view := sessionView(t, c, vm); view.Total != 5 {
		t.Errorf("recovered session saw %d snapshots, want 5 (3 pre-tear + 2 post-restart)", view.Total)
	}

	// The repaired journal alone (no checkpoints at all) must tell the
	// same story: the tear was cut on disk, not merely skipped over.
	ckpts, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ckpts {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}
	jd := crashJournal(t, dir)
	t.Cleanup(func() { jd.Close() })
	d := newTestServer(t, Config{Journal: jd})
	rsd, err := d.Recover()
	if err != nil {
		t.Fatalf("recover D: %v", err)
	}
	if rsd.Snapshots != 5 {
		t.Errorf("checkpoint-free replay delivered %d snapshots, want 5", rsd.Snapshots)
	}
}

// TestFinalizeIsWriteAhead: when the finalize marker cannot be
// journaled, the finalization must not proceed — no registry removal,
// no database record — so the in-memory state never outruns the
// journal.
func TestFinalizeIsWriteAhead(t *testing.T) {
	dir := t.TempDir()
	j := crashJournal(t, dir)
	// crashServer, not newTestServer: the deliberately-broken journal
	// would (correctly) make the cleanup Shutdown report a sync error.
	s := crashServer(t, j)
	w := postJSON(t, s.Handler(), "/v1/ingest", map[string]any{"snapshots": []any{
		zeroSnapshot("wa-vm", 0),
	}})
	if w.Code != 200 {
		t.Fatalf("ingest: %d", w.Code)
	}
	// Break the journal: every append now fails.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	w = postJSON(t, s.Handler(), "/v1/vms/wa-vm/finish", nil)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("finish with broken journal = %d, want 500 (%s)", w.Code, w.Body.String())
	}
	if _, ok := s.reg.get("wa-vm"); !ok {
		t.Error("session finalized despite unjournaled marker")
	}
	if _, err := s.DB().Latest("wa-vm"); err == nil {
		t.Error("database record written despite unjournaled finalize marker")
	}
}

// TestCheckpointQuiesceUnderConcurrentIngest hammers a journaled daemon
// from many goroutines while checkpoints race the stream, then crashes
// it and recovers: the checkpoint cut plus the journal tail must
// account for every snapshot exactly once. Run under -race this is the
// ckptMu torture test.
func TestCheckpointQuiesceUnderConcurrentIngest(t *testing.T) {
	const (
		goroutines = 20
		perG       = 10
		vmPool     = 5
	)
	dir := t.TempDir()
	a := crashServer(t, crashJournal(t, dir))
	ts := httptest.NewServer(a.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	errc := make(chan error, goroutines+1)
	stop := make(chan struct{})
	ckptDone := make(chan struct{})
	go func() {
		defer close(ckptDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := a.Checkpoint(); err != nil {
				errc <- err
				return
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vm := fmt.Sprintf("quiesce-vm-%d", g%vmPool)
			for i := 0; i < perG; i++ {
				w := postJSON(t, a.Handler(), "/v1/ingest", map[string]any{"snapshots": []any{
					zeroSnapshot(vm, float64(g*perG+i)),
				}})
				if w.Code != 200 {
					errc <- fmt.Errorf("vm %s: status %d", vm, w.Code)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-ckptDone
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	// Crash; recover on a fresh server.

	jb, err := wal.Open(wal.Config{Dir: dir, Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jb.Close() })
	b := newTestServer(t, Config{Journal: jb})
	if _, err := b.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	total := 0
	for _, sess := range b.reg.all() {
		sess.mu.Lock()
		total += sess.online.Seen()
		sess.mu.Unlock()
	}
	if total != goroutines*perG {
		t.Errorf("recovered sessions hold %d snapshots, want %d (checkpoint/replay double-apply or loss)", total, goroutines*perG)
	}
	if b.Sessions() != vmPool {
		t.Errorf("recovered %d sessions, want %d", b.Sessions(), vmPool)
	}
}

// TestMetricszExposesDurabilityGauges checks the journal-depth and
// history-retention gauges appear once a journal is configured.
func TestMetricszExposesDurabilityGauges(t *testing.T) {
	dir := t.TempDir()
	j, err := wal.Open(wal.Config{Dir: dir, Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	s := newTestServer(t, Config{Journal: j})
	w := postJSON(t, s.Handler(), "/v1/ingest", map[string]any{"snapshots": []any{zeroSnapshot("g-vm", 0)}})
	if w.Code != 200 {
		t.Fatalf("ingest: %d", w.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/metricsz", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		"appclassd_journal_records_total 1",
		"appclassd_journal_errors_total 0",
		"appclassd_journal_segments 1",
		"appclassd_journal_bytes ",
		"appclassd_journal_last_fsync_age_seconds ",
		"appclassd_journal_truncated_segments_total 0",
		"appclassd_journal_gap_segments_total 0",
		"appclassd_history_dropped 0",
		"appclassd_checkpoints_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metricsz missing %q", want)
		}
	}
	if strings.Contains(body, "appclassd_journal_last_fsync_age_seconds -1") {
		t.Error("fsync=always reported no fsync yet")
	}
}

// TestCheckpointerLoopTakesCheckpoints runs the background checkpointer
// on a short cadence and waits for a checkpoint file to appear, then
// confirms finalization kicks one promptly.
func TestCheckpointerLoopTakesCheckpoints(t *testing.T) {
	dir := t.TempDir()
	j, err := wal.Open(wal.Config{Dir: dir, Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	s := newTestServer(t, Config{Journal: j, CheckpointEvery: 10 * time.Millisecond})
	s.StartCheckpointer()
	w := postJSON(t, s.Handler(), "/v1/ingest", map[string]any{"snapshots": []any{zeroSnapshot("tick-vm", 0)}})
	if w.Code != 200 {
		t.Fatalf("ingest: %d", w.Code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		cp, err := wal.LatestCheckpoint(dir)
		if err != nil {
			t.Fatal(err)
		}
		if cp != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpointer never wrote a checkpoint")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.counters.checkpoints.Load(); got == 0 {
		t.Error("checkpoints counter still zero")
	}
}
