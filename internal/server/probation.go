package server

import (
	"fmt"
	"time"

	"repro/internal/modelreg"
	"repro/internal/supervise"
)

// Guarded promotion: a freshly promoted model does not get unconditional
// trust. For a probation window after the swap, the model it displaced
// keeps shadow-classifying live traffic in reverse — the same shadowEval
// machinery that vets candidates, with the roles flipped: the new model
// serves verdicts, the old one watches. If the new model's open-set
// unknown rate spikes relative to the guard, or it collapses a class the
// guard still recognizes (per-class disagreement above threshold), the
// daemon rolls back automatically through the same atomic hot swap that
// promoted it — the displaced model is retired, not removed, so it is
// always there to return to. A rollback is an incident: it is counted,
// logged loudly, and recorded in the application database's event log.

const (
	// defaultProbationUnknownFactor: the new model breaches when its
	// unknown rate is at least this multiple of the guard's.
	defaultProbationUnknownFactor = 3.0
	// defaultProbationDisagreeThreshold: a class breaches when the guard
	// disagrees with at least this fraction of the new model's votes for
	// it.
	defaultProbationDisagreeThreshold = 0.9
	// defaultProbationMinSnapshots gates the unknown-rate test; the
	// per-class test uses a tenth of it.
	defaultProbationMinSnapshots = 50
	// probationUnknownFloor is the absolute unknown-rate excess the new
	// model must show before the ratio test can breach — a 3× spike from
	// 0.1% to 0.3% is noise, not an incident.
	probationUnknownFloor = 0.05
)

// probationEval is the state of one probation window. It is published
// through Server.probation and cleared (CAS, so racing checks cannot
// double-fire) on breach, pass, or any subsequent promote.
type probationEval struct {
	// eval shadow-runs the DISPLACED model against live traffic. Role
	// reversal: observe() is fed the NEW model's votes as the "active"
	// side, so in its view UnknownRateActive is the new model's unknown
	// rate and UnknownRateCandidate is the guard's.
	eval   *shadowEval
	prevID string // the displaced model — the rollback target
	newID  string // the model under probation
	startedAt,
	deadline time.Time
}

// probationView is the JSON/metrics snapshot of a running probation.
type probationView struct {
	// Model is the model under probation (currently serving).
	Model string `json:"model"`
	// Guard is the displaced model shadow-classifying in reverse.
	Guard string `json:"guard"`
	// RemainingSeconds until the window closes (clamped at 0).
	RemainingSeconds float64 `json:"remaining_s"`
	// Shadow is the guard's evaluation. UnknownRateActive is the NEW
	// model's unknown rate, UnknownRateCandidate the guard's.
	Shadow shadowView `json:"shadow"`
}

func (pb *probationEval) viewAt(now time.Time) probationView {
	rem := pb.deadline.Sub(now).Seconds()
	if rem < 0 {
		rem = 0
	}
	return probationView{
		Model:            pb.newID,
		Guard:            pb.prevID,
		RemainingSeconds: rem,
		Shadow:           pb.eval.view(),
	}
}

// probationView returns the running probation's snapshot, nil when none
// is active.
func (s *Server) probationView() *probationView {
	pb := s.probation.Load()
	if pb == nil {
		return nil
	}
	v := pb.viewAt(s.now())
	return &v
}

// startProbation arms the probation window after a forward promote:
// prev is the displaced active pair (model + calibrated thresholds),
// m the model that displaced it. Caller holds swapMu. Failure to build
// the guard is loud but not fatal — the promote stands, unguarded.
func (s *Server) startProbation(prev *activeModel, m *modelreg.Model) {
	se, err := newShadowEval(prev.model, prev.openset, s.cfg.Schema)
	if err != nil {
		s.cfg.Logf("server: promote %s: PROBATION DISARMED — guard %s cannot shadow-classify: %v", m.ID, prev.model.ID, err)
		return
	}
	now := s.now()
	s.probation.Store(&probationEval{
		eval:      se,
		prevID:    prev.model.ID,
		newID:     m.ID,
		startedAt: now,
		deadline:  now.Add(s.cfg.ProbationWindow),
	})
	s.cfg.Logf("server: model %s on probation for %s; displaced %s shadow-guards and breaches trigger auto-rollback",
		m.ID, s.cfg.ProbationWindow, prev.model.ID)
}

// probationBreach decides whether the guard's evidence condemns the new
// model, returning the reason when it does.
func (s *Server) probationBreach(v shadowView) (string, bool) {
	sv := &v
	if sv.Snapshots >= s.cfg.ProbationMinSnapshots {
		// Role reversal: "active" is the new serving model.
		newRate, guardRate := sv.UnknownRateActive, sv.UnknownRateCandidate
		if newRate >= s.cfg.ProbationUnknownFactor*guardRate && newRate-guardRate >= probationUnknownFloor {
			return fmt.Sprintf("unknown rate %.3f is ≥%.1f× the displaced model's %.3f over %d snapshots",
				newRate, s.cfg.ProbationUnknownFactor, guardRate, sv.Snapshots), true
		}
	}
	perClassMin := s.cfg.ProbationMinSnapshots / 10
	if perClassMin < 1 {
		perClassMin = 1
	}
	for cl, pair := range sv.PerClass {
		if pair.Snapshots < perClassMin {
			continue
		}
		if rate := float64(pair.Disagree) / float64(pair.Snapshots); rate >= s.cfg.ProbationDisagreeThreshold {
			return fmt.Sprintf("displaced model disagrees with %.0f%% of the %d snapshots voted %s",
				rate*100, pair.Snapshots, cl), true
		}
	}
	return "", false
}

// checkProbation runs one probation evaluation: breach → auto-rollback,
// deadline passed without breach → the model graduates. The CAS on the
// probation pointer makes both outcomes fire exactly once even if a
// promote races in (the promote swaps the pointer first).
func (s *Server) checkProbation() {
	pb := s.probation.Load()
	if pb == nil {
		return
	}
	v := pb.eval.view()
	if reason, bad := s.probationBreach(v); bad {
		if !s.probation.CompareAndSwap(pb, nil) {
			return
		}
		s.counters.modelRollbacks.Add(1)
		s.cfg.Logf("server: PROBATION BREACH for model %s: %s; rolling back to %s", pb.newID, reason, pb.prevID)
		s.putEvent("model_rollback", map[string]string{
			"from":   pb.newID,
			"to":     pb.prevID,
			"reason": reason,
		})
		if _, err := s.promote(pb.prevID, true); err != nil {
			s.cfg.Logf("server: probation rollback to %s FAILED: %v — model %s keeps serving", pb.prevID, err, pb.newID)
		}
		return
	}
	if !s.now().Before(pb.deadline) {
		if !s.probation.CompareAndSwap(pb, nil) {
			return
		}
		s.counters.probationPasses.Add(1)
		s.putEvent("model_probation_passed", map[string]string{
			"model":     pb.newID,
			"guard":     pb.prevID,
			"snapshots": fmt.Sprintf("%d", v.Snapshots),
		})
		s.cfg.Logf("server: model %s passed probation (%d snapshots guarded by %s)", pb.newID, v.Snapshots, pb.prevID)
	}
}

// StartProbationWatcher launches the supervised loop that evaluates the
// running probation. No-op unless Config.ProbationWindow > 0 — without
// a window no probation is ever armed, so there is nothing to watch.
func (s *Server) StartProbationWatcher() {
	if s.cfg.ProbationWindow <= 0 {
		return
	}
	tick := s.cfg.ProbationWindow / 10
	if tick < 100*time.Millisecond {
		tick = 100 * time.Millisecond
	}
	if tick > 5*time.Second {
		tick = 5 * time.Second
	}
	s.sup.Go("probation", supervise.TaskOptions{Heartbeat: 8 * tick}, func(stop <-chan struct{}, t *supervise.Task) {
		tk := time.NewTicker(tick)
		defer tk.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tk.C:
				t.Beat()
				s.checkProbation()
			}
		}
	})
}
