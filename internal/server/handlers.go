package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"

	"repro/internal/appclass"
	"repro/internal/appstore"
	"repro/internal/classify"
	"repro/internal/metrics"
	"repro/internal/phase"
	"repro/internal/placement"
)

// routes builds the daemon's API surface. Method-qualified patterns
// make the mux answer 405 (with an Allow header) for wrong-method
// requests on known paths.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	if !s.cfg.DisableBinaryIngest {
		mux.HandleFunc("POST /v1/ingest.bin", s.handleIngestBin)
	}
	mux.HandleFunc("GET /v1/vms", s.handleVMs)
	mux.HandleFunc("GET /v1/vms/{name}", s.handleVM)
	mux.HandleFunc("POST /v1/vms/{name}/finish", s.handleFinish)
	mux.HandleFunc("GET /v1/classes", s.handleClasses)
	mux.HandleFunc("GET /v1/fingerprints", s.handleFingerprints)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("POST /v1/models", s.handleModelLoad)
	mux.HandleFunc("POST /v1/models/{id}/promote", s.handleModelPromote)
	mux.HandleFunc("DELETE /v1/models/{id}", s.handleModelDelete)
	mux.HandleFunc("POST /v1/placements", s.handlePlace)
	mux.HandleFunc("GET /v1/placements", s.handlePlacements)
	mux.HandleFunc("GET /v1/placements/advice", s.handleAdvice)
	mux.HandleFunc("DELETE /v1/placements/{id}", s.handleRelease)
	mux.HandleFunc("GET /v1/hosts", s.handleHosts)
	mux.HandleFunc("GET /v1/hosts/{name}", s.handleHost)
	mux.HandleFunc("GET /v1/runs", s.handleRuns)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	if s.cfg.Dashboard {
		mux.Handle("GET /dashboard/", http.StripPrefix("/dashboard/", http.FileServerFS(dashboardAssets())))
		mux.HandleFunc("GET /dashboard", func(w http.ResponseWriter, r *http.Request) {
			http.Redirect(w, r, "/dashboard/", http.StatusMovedPermanently)
		})
	}
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	if s.cfg.EnablePprof {
		// Unqualified patterns: pprof's symbol endpoint accepts GET and
		// POST, and the index serves every named profile below it.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// jsonEnc pairs a response buffer with an encoder permanently aimed at
// it, so writeJSON builds responses without constructing a fresh
// json.Encoder (and its indent state) per call.
type jsonEnc struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonEncPool = sync.Pool{New: func() any {
	e := &jsonEnc{}
	e.enc = json.NewEncoder(&e.buf)
	e.enc.SetIndent("", "  ")
	return e
}}

func writeJSON(w http.ResponseWriter, code int, v any) {
	e := jsonEncPool.Get().(*jsonEnc)
	defer jsonEncPool.Put(e)
	e.buf.Reset()
	err := e.enc.Encode(v)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err == nil {
		_, _ = w.Write(e.buf.Bytes())
	}
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// ingestSnapshot is one pushed sample. Values carries the full metric
// vector in schema order; Metrics names each value instead, for
// clients that do not know the canonical order. Exactly one must be
// set.
type ingestSnapshot struct {
	VM          string             `json:"vm"`
	TimeSeconds float64            `json:"time_s"`
	Values      []float64          `json:"values,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type ingestRequest struct {
	Snapshots []ingestSnapshot `json:"snapshots"`
}

type ingestResult struct {
	VM    string `json:"vm"`
	Class string `json:"class"`
}

type ingestResponse struct {
	Accepted int            `json:"accepted"`
	Results  []ingestResult `json:"results"`
}

// ingestResultsPool recycles the per-request results slice of
// handleIngest; entries are fully overwritten before use.
var ingestResultsPool = sync.Pool{New: func() any { return new([]ingestResult) }}

// maxIngestBody caps one ingest request's body; it doubles as the
// admission-control reservation for requests that do not declare a
// Content-Length.
const maxIngestBody = 8 << 20

// handleIngest accepts a batch of snapshots. Admission control runs
// first: a request over the in-flight byte/request budget is shed with
// 429 Retry-After before it takes any lock — the checkpoint quiesce can
// therefore never accumulate a backlog of over-budget requests. The
// whole batch is then validated against the schema before any snapshot
// is applied, so a 400 never leaves a half-ingested batch behind.
// Validated snapshots are grouped by VM and each group is classified
// under a single session-lock acquisition; results come back in input
// order regardless of grouping. By-name snapshots decode into pooled
// schema-length buffers that are returned once their group is observed.
// With IngestTimeout set, a batch that cannot finish classifying by the
// deadline is abandoned with 503 between VM groups.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	reserve := r.ContentLength
	if reserve < 0 || reserve > maxIngestBody {
		reserve = maxIngestBody
	}
	if !s.admit.tryAdmit(reserve) {
		s.counters.shedRequests.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "ingest over the in-flight budget; retry later")
		return
	}
	defer s.admit.release(reserve)
	var deadline time.Time
	if s.cfg.IngestTimeout > 0 {
		deadline = s.now().Add(s.cfg.IngestTimeout)
	}
	var req ingestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed ingest body: %v", err)
		return
	}
	if len(req.Snapshots) == 0 {
		writeError(w, http.StatusBadRequest, "ingest batch has no snapshots")
		return
	}
	schema := s.cfg.Schema
	batch := make([]metrics.Snapshot, len(req.Snapshots))
	var pooled []*[]float64
	defer func() {
		for _, b := range pooled {
			s.valuesPool.Put(b)
		}
	}()
	for i, snap := range req.Snapshots {
		if snap.VM == "" {
			writeError(w, http.StatusBadRequest, "snapshot %d has no vm", i)
			return
		}
		o := metrics.Snapshot{Node: snap.VM, Time: time.Duration(snap.TimeSeconds * float64(time.Second))}
		switch {
		case len(snap.Values) > 0 && len(snap.Metrics) > 0:
			writeError(w, http.StatusBadRequest, "snapshot %d (%s) sets both values and metrics", i, snap.VM)
			return
		case len(snap.Values) > 0:
			if len(snap.Values) != schema.Len() {
				writeError(w, http.StatusBadRequest, "snapshot %d (%s) has %d values, schema has %d metrics",
					i, snap.VM, len(snap.Values), schema.Len())
				return
			}
			o.Values = snap.Values
		case len(snap.Metrics) > 0:
			bp := s.valuesPool.Get().(*[]float64)
			pooled = append(pooled, bp)
			vals := *bp
			for name := range snap.Metrics {
				if !schema.Contains(name) {
					writeError(w, http.StatusBadRequest, "snapshot %d (%s) has unknown metric %q", i, snap.VM, name)
					return
				}
			}
			for j, name := range schema.Names() {
				v, ok := snap.Metrics[name]
				if !ok {
					writeError(w, http.StatusBadRequest, "snapshot %d (%s) is missing metric %q", i, snap.VM, name)
					return
				}
				vals[j] = v
			}
			o.Values = vals
		default:
			writeError(w, http.StatusBadRequest, "snapshot %d (%s) has neither values nor metrics", i, snap.VM)
			return
		}
		batch[i] = o
	}

	// Group the validated batch by VM, preserving first-appearance order
	// so single-VM batches (the common case) stay one contiguous group.
	groups := make(map[string][]int)
	var order []string
	for i := range batch {
		vm := batch[i].Node
		if _, ok := groups[vm]; !ok {
			order = append(order, vm)
		}
		groups[vm] = append(groups[vm], i)
	}

	rp := ingestResultsPool.Get().(*[]ingestResult)
	if cap(*rp) < len(batch) {
		*rp = make([]ingestResult, len(batch))
	}
	results := (*rp)[:len(batch)]
	// The pooled slice goes back only after writeJSON has serialized it
	// into the response buffer; the deferred put below runs after every
	// return path, including the final success write.
	defer func() {
		*rp = results[:0]
		ingestResultsPool.Put(rp)
	}()
	var snaps []metrics.Snapshot
	var classes []appclass.Class
	var durable int64
	for gi, vm := range order {
		if !deadline.IsZero() && s.now().After(deadline) {
			s.counters.deadlineExceeded.Add(1)
			writeError(w, http.StatusServiceUnavailable, "ingest deadline exceeded after %d of %d vm groups", gi, len(order))
			return
		}
		if err := r.Context().Err(); err != nil {
			// The client is gone; stop classifying for nobody.
			s.counters.deadlineExceeded.Add(1)
			writeError(w, http.StatusServiceUnavailable, "ingest request cancelled: %v", err)
			return
		}
		idxs := groups[vm]
		snaps = snaps[:0]
		for _, i := range idxs {
			snaps = append(snaps, batch[i])
		}
		var err error
		var token int64
		classes, token, err = s.observeBatch(vm, snaps, classes, true)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "classify %s: %v", vm, err)
			return
		}
		if token > durable {
			durable = token
		}
		for g, i := range idxs {
			results[i] = ingestResult{VM: vm, Class: string(classes[g])}
		}
	}
	// One durability wait covers every group's journal record: under
	// group commit the appends above coalesce behind a shared fsync.
	if err := s.waitJournalDurable(durable); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ingestResponse{Accepted: len(results), Results: results})
}

// vmSummary is one row of GET /v1/vms.
type vmSummary struct {
	VM        string  `json:"vm"`
	Class     string  `json:"class"`
	LastClass string  `json:"last_class"`
	Snapshots int     `json:"snapshots"`
	Drift     float64 `json:"drift"`
	LastSeen  string  `json:"last_seen"`
	// Gaps and GapSeconds flag sessions whose stream had known holes
	// (missed polls, breaker-open windows): composition and drift are
	// then estimates over partial coverage.
	Gaps       int     `json:"gaps,omitempty"`
	GapSeconds float64 `json:"gap_s,omitempty"`
	// Verdict is the open-set session verdict ("unknown" when most
	// snapshots fell outside the trained classes; omitted with the
	// open-set test off or before any snapshot). UnknownFraction is the
	// fraction of snapshots beyond their class's threshold, and Phases
	// counts phases detected so far (including the open one).
	Verdict         string  `json:"verdict,omitempty"`
	UnknownFraction float64 `json:"unknown_fraction,omitempty"`
	Phases          int     `json:"phases,omitempty"`
	// Model is the ID of the model serving this session (verdict
	// provenance; changes when a promote rebinds the session).
	Model string `json:"model,omitempty"`
}

func (s *Server) summarize(sess *session) vmSummary {
	sess.mu.Lock()
	view := sess.online.Snapshot()
	lastSeen := sess.lastSeen
	model := sess.model
	sess.mu.Unlock()
	return vmSummary{
		VM:              sess.vm,
		Class:           string(view.Class),
		LastClass:       string(view.LastClass),
		Snapshots:       view.Total,
		Drift:           view.Drift,
		LastSeen:        lastSeen.UTC().Format(time.RFC3339),
		Gaps:            view.Gaps,
		GapSeconds:      view.GapTime.Seconds(),
		Verdict:         string(view.Verdict),
		UnknownFraction: view.UnknownFraction,
		Phases:          len(view.Phases),
		Model:           model,
	}
}

func (s *Server) handleVMs(w http.ResponseWriter, r *http.Request) {
	names := s.reg.names()
	out := struct {
		Count int         `json:"count"`
		VMs   []vmSummary `json:"vms"`
	}{VMs: make([]vmSummary, 0, len(names))}
	for _, vm := range names {
		sess, ok := s.reg.get(vm)
		if !ok {
			continue // evicted between listing and lookup
		}
		out.VMs = append(out.VMs, s.summarize(sess))
	}
	out.Count = len(out.VMs)
	writeJSON(w, http.StatusOK, out)
}

// vmDetail is GET /v1/vms/{name}.
type vmDetail struct {
	vmSummary
	Composition  map[appclass.Class]float64 `json:"composition"`
	FirstSeconds float64                    `json:"first_s"`
	LastSeconds  float64                    `json:"last_s"`
	Stages       []stageJSON                `json:"stages"`
	// PhaseList is the segmenter's phase breakdown (empty with
	// segmentation disabled). Unlike Stages, which merges the label
	// history, phases come from change-point detection over the fused
	// feature stream, so they survive label flicker inside one regime.
	PhaseList []phaseJSON `json:"phase_list,omitempty"`
}

type stageJSON struct {
	Class        string  `json:"class"`
	StartSeconds float64 `json:"start_s"`
	EndSeconds   float64 `json:"end_s"`
	Snapshots    int     `json:"snapshots"`
	// Partial marks a stage whose beginning was trimmed by the history
	// retention cap.
	Partial bool `json:"partial,omitempty"`
}

type phaseJSON struct {
	Class        string                     `json:"class"`
	StartSeconds float64                    `json:"start_s"`
	EndSeconds   float64                    `json:"end_s"`
	Snapshots    int                        `json:"snapshots"`
	Composition  map[appclass.Class]float64 `json:"composition,omitempty"`
	Open         bool                       `json:"open,omitempty"`
}

func (s *Server) handleVM(w http.ResponseWriter, r *http.Request) {
	vm := r.PathValue("name")
	sess, ok := s.reg.get(vm)
	if !ok {
		writeError(w, http.StatusNotFound, "no live session for vm %q", vm)
		return
	}
	sess.mu.Lock()
	view := sess.online.Snapshot()
	history := sess.online.History()
	dropped := sess.online.HistoryDropped()
	lastSeen := sess.lastSeen
	model := sess.model
	sess.mu.Unlock()

	stages, err := classify.StagesFromHistory(history, 1, dropped)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "stage history: %v", err)
		return
	}
	detail := vmDetail{
		vmSummary: vmSummary{
			VM:              vm,
			Class:           string(view.Class),
			LastClass:       string(view.LastClass),
			Snapshots:       view.Total,
			Drift:           view.Drift,
			LastSeen:        lastSeen.UTC().Format(time.RFC3339),
			Gaps:            view.Gaps,
			GapSeconds:      view.GapTime.Seconds(),
			Verdict:         string(view.Verdict),
			UnknownFraction: view.UnknownFraction,
			Phases:          len(view.Phases),
			Model:           model,
		},
		Composition:  view.Composition,
		FirstSeconds: view.FirstAt.Seconds(),
		LastSeconds:  view.LastAt.Seconds(),
		Stages:       make([]stageJSON, 0, len(stages)),
	}
	for _, st := range stages {
		detail.Stages = append(detail.Stages, stageJSON{
			Class:        string(st.Class),
			StartSeconds: st.Start.Seconds(),
			EndSeconds:   st.End.Seconds(),
			Snapshots:    st.Snapshots,
			Partial:      st.Partial,
		})
	}
	for _, p := range view.Phases {
		detail.PhaseList = append(detail.PhaseList, phaseJSON{
			Class:        string(p.Class),
			StartSeconds: p.Start.Seconds(),
			EndSeconds:   p.End.Seconds(),
			Snapshots:    p.Snapshots,
			Composition:  p.Composition,
			Open:         p.Open,
		})
	}
	writeJSON(w, http.StatusOK, detail)
}

// fingerprintEntry is one row of GET /v1/fingerprints: an application's
// most recent phase fingerprint from the application database.
type fingerprintEntry struct {
	App string `json:"app"`
	// Summary is the human-readable form, e.g. "cpu:0.62 io:0.38".
	Summary string `json:"summary"`
	// Phases is the canonicalized phase signature sequence.
	Phases []phase.PhaseSig `json:"phases"`
	// MatchedApp and MatchScore echo the dictionary match recorded when
	// the run finalized, if any.
	MatchedApp string  `json:"matched_app,omitempty"`
	MatchScore float64 `json:"match_score,omitempty"`
}

// handleFingerprints serves the fingerprint dictionary: each
// application's latest fingerprinted run, the corpus finalizing
// sessions are matched against.
func (s *Server) handleFingerprints(w http.ResponseWriter, r *http.Request) {
	db := s.cfg.DB
	out := struct {
		Count        int                `json:"count"`
		Fingerprints []fingerprintEntry `json:"fingerprints"`
	}{}
	for _, app := range db.Apps() {
		rs := db.Runs(app)
		for i := len(rs) - 1; i >= 0; i-- {
			fp := rs[i].Fingerprint
			if fp == nil || fp.Empty() {
				continue
			}
			out.Fingerprints = append(out.Fingerprints, fingerprintEntry{
				App:        app,
				Summary:    fp.String(),
				Phases:     fp.Phases,
				MatchedApp: rs[i].MatchedApp,
				MatchScore: rs[i].MatchScore,
			})
			break
		}
	}
	out.Count = len(out.Fingerprints)
	writeJSON(w, http.StatusOK, out)
}

// finishResponse is POST /v1/vms/{name}/finish: the application-database
// record the session was finalized into.
type finishResponse struct {
	VM             string                     `json:"vm"`
	Class          string                     `json:"class"`
	Composition    map[appclass.Class]float64 `json:"composition"`
	ExecutionSecs  float64                    `json:"execution_s"`
	Samples        int                        `json:"samples"`
	HistoricalRuns int                        `json:"historical_runs"`
	// Verdict is the open-set verdict the run finalized with; MatchedApp
	// and MatchScore report the fingerprint-dictionary match, if any.
	Verdict    string  `json:"verdict,omitempty"`
	Phases     int     `json:"phases,omitempty"`
	MatchedApp string  `json:"matched_app,omitempty"`
	MatchScore float64 `json:"match_score,omitempty"`
}

func (s *Server) handleFinish(w http.ResponseWriter, r *http.Request) {
	vm := r.PathValue("name")
	sess, ok := s.reg.get(vm)
	if !ok {
		writeError(w, http.StatusNotFound, "no live session for vm %q", vm)
		return
	}
	if !s.finalize(sess, true) {
		if _, live := s.reg.get(vm); live {
			// The finalize marker could not be journaled; the session was
			// deliberately kept live so no state outruns the journal.
			writeError(w, http.StatusInternalServerError, "journaling finalize for vm %q failed; session kept live", vm)
			return
		}
		// Another finisher or the janitor got here first.
		writeError(w, http.StatusNotFound, "session for vm %q already finalized", vm)
		return
	}
	s.counters.finishes.Add(1)
	rec, err := s.cfg.DB.Latest(vm)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "finalized %s but no record: %v", vm, err)
		return
	}
	writeJSON(w, http.StatusOK, finishResponse{
		VM:             vm,
		Class:          string(rec.Class),
		Composition:    rec.Composition,
		ExecutionSecs:  rec.ExecutionTime.Seconds(),
		Samples:        rec.Samples,
		HistoricalRuns: len(s.cfg.DB.Runs(vm)),
		Verdict:        string(rec.Verdict),
		Phases:         len(rec.Phases),
		MatchedApp:     rec.MatchedApp,
		MatchScore:     rec.MatchScore,
	})
}

// handleClasses reports how many live VMs currently vote each class —
// the cluster-wide composition a class-aware scheduler consults before
// placing new work.
func (s *Server) handleClasses(w http.ResponseWriter, r *http.Request) {
	out := struct {
		VMs     int            `json:"vms"`
		Classes map[string]int `json:"classes"`
	}{Classes: make(map[string]int)}
	for _, sess := range s.reg.all() {
		sess.mu.Lock()
		view := sess.online.Snapshot()
		sess.mu.Unlock()
		if view.Total == 0 {
			continue
		}
		out.VMs++
		out.Classes[string(view.Class)]++
	}
	writeJSON(w, http.StatusOK, out)
}

// readiness splits health into live vs ready: the process being up
// (live) is not the same as it honoring its durability contract
// (ready). Degraded durability makes the daemon not-ready — a load
// balancer should drain it, an operator should look at the disk — while
// ingest keeps working so no samples are lost on top of the journal
// outage.
func (s *Server) readiness() (ready bool, reason string) {
	if s.cfg.Journal != nil && s.DurabilityDegraded() {
		return false, "durability degraded: journal failing, ingest is memory-only"
	}
	if wedged, escalated := s.sup.Unhealthy(); len(wedged) > 0 || len(escalated) > 0 {
		var parts []string
		if len(wedged) > 0 {
			parts = append(parts, "supervised task(s) wedged: "+strings.Join(wedged, ", "))
		}
		if len(escalated) > 0 {
			parts = append(parts, "supervised task(s) escalated after repeated panics: "+strings.Join(escalated, ", "))
		}
		return false, strings.Join(parts, "; ")
	}
	return true, ""
}

// handleHealthz is the liveness view: it always answers 200 while the
// process serves, and carries the readiness verdict as data.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ready, reason := s.readiness()
	durability := "none"
	if s.cfg.Journal != nil {
		durability = "journaled"
		if s.DurabilityDegraded() {
			durability = "degraded"
		}
	}
	body := map[string]any{
		"status":     "ok",
		"ready":      ready,
		"durability": durability,
		"sessions":   s.reg.len(),
		"ingested":   s.counters.ingested.Load(),
		"uptime_s":   s.now().Sub(s.start).Seconds(),
		"metrics_n":  s.cfg.Schema.Len(),
	}
	if reason != "" {
		body["reason"] = reason
	}
	writeJSON(w, http.StatusOK, body)
}

// handleReadyz is the readiness probe: 200 while the daemon honors its
// durability contract, 503 while degraded.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready, reason := s.readiness()
	if !ready {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": reason})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var pstats *placement.Stats
	if s.cfg.Placement != nil {
		st := s.cfg.Placement.Stat()
		pstats = &st
	}
	var historyDropped int64
	for _, sess := range s.reg.all() {
		sess.mu.Lock()
		historyDropped += int64(sess.online.HistoryDropped())
		sess.mu.Unlock()
	}
	var dg *durabilityGauges
	if j := s.cfg.Journal; j != nil {
		st := j.Stats()
		age := -1.0
		if !st.LastSync.IsZero() {
			age = s.now().Sub(st.LastSync).Seconds()
		}
		dg = &durabilityGauges{journal: st, fsyncAgeSeconds: age, degraded: s.DurabilityDegraded()}
	}
	var rg resilienceGauges
	rg.inflightBytes, rg.inflightRequests = s.admit.inflight()
	rg.binStreams = int64(s.binStreams.len())
	mg := modelGauges{
		activeID:      s.ActiveModelID(),
		swapLastNanos: s.counters.swapLastNanos.Load(),
	}
	if se := s.shadow.Load(); se != nil {
		v := se.view()
		mg.shadow = &v
	}
	mg.probation = s.probationView()
	var sg *appstore.Stats
	if st, ok := s.cfg.DB.StoreStats(); ok {
		sg = &st
	}
	tg := superviseGauges{
		tasks:       s.sup.Snapshot(),
		panics:      s.sup.Panics(),
		escalations: s.sup.Escalations(),
		wedges:      s.sup.Wedges(),
	}
	s.counters.writeMetrics(w, s.reg.counts(), s.now().Sub(s.start).Seconds(), pstats, historyDropped, dg, rg, mg, sg, tg)
}
