package server

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/appclass"
	"repro/internal/metrics"
	"repro/internal/modelreg"
	"repro/internal/wire"
)

// maxBinStreams caps the binary-ingest stream registry; past it, new
// handshakes first evict idle streams and then answer 503. Streams are
// tiny (a column table and a VM intern map), so the cap is generous.
const maxBinStreams = 8192

// maxBinVMIntern caps one stream's VM-name intern map; batches naming
// more distinct VMs than this still work, their names just allocate.
const maxBinVMIntern = 4096

// binClassTable is the class-ID table negotiated in every HelloAck:
// the Table-3 classes in canonical order plus the open-set UNKNOWN
// verdict. Batch acks index into it.
var binClassTable = append(appclass.All(), appclass.Unknown)

// binClassID maps a classification to its table index. The table has
// six entries, so a linear scan beats any map.
func binClassID(cl appclass.Class) byte {
	for i, c := range binClassTable {
		if c == cl {
			return byte(i)
		}
	}
	return 0 // unreachable: observeBatch only returns table classes
}

// binStream is one negotiated binary-ingest stream: the column table
// mapping wire column index to schema index, the model hash the table
// was validated under, and a VM-name intern map so steady-state
// batches never allocate a name string.
type binStream struct {
	id uint64
	// cols[i] is the schema index of wire column i.
	cols []int
	// hash pins the stream to the model generation it was negotiated
	// under; a hot swap makes every batch on the stream answer 409
	// until the client re-handshakes.
	hash modelreg.Hash
	// lastUsed is unix nanos of the stream's last batch (or its
	// creation), read by the janitor's idle sweep.
	lastUsed atomic.Int64

	mu  sync.RWMutex
	vms map[string]string
}

// internVM returns the stream's canonical string for a wire VM name,
// allocating it at most once per stream. The map lookup keyed by
// string(b) compiles allocation-free.
func (st *binStream) internVM(b []byte) string {
	st.mu.RLock()
	vm, ok := st.vms[string(b)]
	st.mu.RUnlock()
	if ok {
		return vm
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if vm, ok = st.vms[string(b)]; ok {
		return vm
	}
	if len(st.vms) >= maxBinVMIntern {
		return string(b)
	}
	vm = string(b)
	st.vms[vm] = vm
	return vm
}

// binRegistry holds the live binary-ingest streams.
type binRegistry struct {
	mu     sync.RWMutex
	m      map[uint64]*binStream
	nextID uint64
}

func (r *binRegistry) get(id uint64) (*binStream, bool) {
	r.mu.RLock()
	st, ok := r.m[id]
	r.mu.RUnlock()
	return st, ok
}

// add registers st under a fresh ID; false means the registry is full.
func (r *binRegistry) add(st *binStream) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = make(map[uint64]*binStream)
	}
	if len(r.m) >= maxBinStreams {
		return false
	}
	r.nextID++
	st.id = r.nextID
	r.m[st.id] = st
	return true
}

func (r *binRegistry) remove(id uint64) {
	r.mu.Lock()
	delete(r.m, id)
	r.mu.Unlock()
}

func (r *binRegistry) len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}

// expire removes streams whose last batch predates cutoff (unix
// nanos), returning how many were dropped.
func (r *binRegistry) expire(cutoff int64) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for id, st := range r.m {
		if st.lastUsed.Load() < cutoff {
			delete(r.m, id)
			n++
		}
	}
	return n
}

// binGroup is one decoded, validated, scattered VM group awaiting
// classification: sc.snaps[start:end] under the interned name.
type binGroup struct {
	vm         string
	start, end int
}

// binScratch is the pooled per-request workspace of the binary ingest
// handler. Every slice keeps its capacity across requests, so a warm
// handler processes a steady-state batch without allocating: the body
// lands in body, groups scatter into rows, and the framed acks build
// up in resp.
type binScratch struct {
	body    []byte
	resp    []byte
	ids     []byte
	groups  []binGroup
	snaps   []metrics.Snapshot
	classes []appclass.Class
	// rows are the schema-length value buffers snapshots scatter into;
	// observeBatch does not retain them (sessions copy what they keep),
	// so the scratch owns them outright.
	rows [][]float64
}

// rowbuf returns the i'th schema-length row buffer, growing the pool
// on first use.
func (sc *binScratch) rowbuf(i, n int) []float64 {
	for len(sc.rows) <= i {
		sc.rows = append(sc.rows, make([]float64, n))
	}
	return sc.rows[i]
}

// writeBinError answers a binary-ingest request with an Error frame
// carrying the HTTP status; hash is the serving model's hash on a
// stale-model 409 (zero otherwise).
func writeBinError(w http.ResponseWriter, code int, hash modelreg.Hash, format string, args ...any) {
	var e wire.ErrorFrame
	e.Code = code
	copy(e.ModelHash[:], hash[:])
	e.Message = fmt.Sprintf(format, args...)
	buf, start := wire.BeginFrame(nil)
	buf = wire.AppendError(buf, e)
	buf = wire.EndFrame(buf, start)
	w.Header().Set("Content-Type", wire.ContentType)
	w.WriteHeader(code)
	_, _ = w.Write(buf)
}

// readBinBody reads the whole request body into buf (reusing its
// capacity), enforcing the ingest body cap.
func readBinBody(r io.Reader, buf []byte) ([]byte, error) {
	buf = buf[:0]
	if cap(buf) == 0 {
		buf = make([]byte, 0, 4096)
	}
	for {
		if len(buf) == cap(buf) {
			if len(buf) >= maxIngestBody {
				return buf, fmt.Errorf("body exceeds %d bytes", maxIngestBody)
			}
			nb := make([]byte, len(buf), 2*cap(buf))
			copy(nb, buf)
			buf = nb
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// handleIngestBin is POST /v1/ingest.bin: the binary columnar fast
// path. A request is either one Hello frame (handshake: negotiate the
// column table, open a stream) or a run of Batch frames on an open
// stream, each answered by one BatchAck frame. Admission control,
// validation-before-application, per-VM-group session locking,
// write-ahead journaling, and deadline handling all match the JSON
// path — the two are equivalence-tested — but the steady state decodes
// zero-copy out of a pooled body buffer and answers from a pooled
// response buffer, in single-digit allocations per batch.
func (s *Server) handleIngestBin(w http.ResponseWriter, r *http.Request) {
	reserve := r.ContentLength
	if reserve < 0 || reserve > maxIngestBody {
		reserve = maxIngestBody
	}
	if !s.admit.tryAdmit(reserve) {
		s.counters.shedRequests.Add(1)
		w.Header().Set("Retry-After", "1")
		writeBinError(w, http.StatusTooManyRequests, modelreg.Hash{}, "ingest over the in-flight budget; retry later")
		return
	}
	defer s.admit.release(reserve)
	var deadline time.Time
	if s.cfg.IngestTimeout > 0 {
		deadline = s.now().Add(s.cfg.IngestTimeout)
	}

	sc := s.binScratch.Get().(*binScratch)
	defer s.binScratch.Put(sc)
	var err error
	sc.body, err = readBinBody(r.Body, sc.body)
	if err != nil {
		s.counters.binDecodeErrors.Add(1)
		writeBinError(w, http.StatusRequestEntityTooLarge, modelreg.Hash{}, "read body: %v", err)
		return
	}

	buf := sc.body
	sc.resp = sc.resp[:0]
	frames := 0
	var durable int64
	for {
		payload, rest, ferr := wire.NextFrame(buf)
		if ferr != nil {
			s.counters.binDecodeErrors.Add(1)
			writeBinError(w, http.StatusBadRequest, modelreg.Hash{}, "frame %d: %v", frames, ferr)
			return
		}
		if payload == nil {
			break
		}
		switch payload[0] {
		case wire.FrameHello:
			if frames != 0 || len(rest) != 0 {
				s.counters.binDecodeErrors.Add(1)
				writeBinError(w, http.StatusBadRequest, modelreg.Hash{}, "hello must be the only frame in its request")
				return
			}
			s.handleBinHello(w, payload)
			return
		case wire.FrameBatch:
			token, ok := s.handleBinBatch(w, r, sc, payload, deadline)
			if !ok {
				return
			}
			if token > durable {
				durable = token
			}
		default:
			s.counters.binDecodeErrors.Add(1)
			writeBinError(w, http.StatusBadRequest, modelreg.Hash{}, "frame %d has unexpected type %d", frames, payload[0])
			return
		}
		buf = rest
		frames++
	}
	if frames == 0 {
		s.counters.binDecodeErrors.Add(1)
		writeBinError(w, http.StatusBadRequest, modelreg.Hash{}, "request carries no frames")
		return
	}
	// One durability wait covers every batch frame in the request: the
	// per-group journal appends above coalesce behind a shared fsync.
	if err := s.waitJournalDurable(durable); err != nil {
		writeBinError(w, http.StatusInternalServerError, modelreg.Hash{}, "%v", err)
		return
	}
	w.Header().Set("Content-Type", wire.ContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(sc.resp)
}

// handleBinHello negotiates a stream: the client's column table must
// cover the schema exactly (every metric named once, nothing else —
// the JSON by-name contract), validated against the serving model's
// gather cache, and the stream is stamped with the model hash.
func (s *Server) handleBinHello(w http.ResponseWriter, payload []byte) {
	h, err := wire.ParseHello(payload)
	if err != nil {
		s.counters.binDecodeErrors.Add(1)
		writeBinError(w, http.StatusBadRequest, modelreg.Hash{}, "%v", err)
		return
	}
	if h.Version != wire.Version {
		writeBinError(w, http.StatusBadRequest, modelreg.Hash{}, "unsupported wire version %d (server speaks %d)", h.Version, wire.Version)
		return
	}
	schema := s.cfg.Schema
	if len(h.Metrics) != schema.Len() {
		writeBinError(w, http.StatusBadRequest, modelreg.Hash{}, "hello names %d metrics, schema has %d", len(h.Metrics), schema.Len())
		return
	}
	cols := make([]int, len(h.Metrics))
	seen := make([]bool, schema.Len())
	for i, name := range h.Metrics {
		idx, ok := schema.Index(name)
		if !ok {
			writeBinError(w, http.StatusBadRequest, modelreg.Hash{}, "hello names unknown metric %q", name)
			return
		}
		if seen[idx] {
			writeBinError(w, http.StatusBadRequest, modelreg.Hash{}, "hello names metric %q twice", name)
			return
		}
		seen[idx] = true
		cols[i] = idx
	}
	am := s.active.Load()
	// The gather cache is what steady-state classification reads the
	// negotiated columns through; refusing the handshake on a mismatch
	// turns a misconfigured model into one clear error instead of a
	// failure on the first batch.
	if _, err := am.model.Classifier.GatherIndices(schema); err != nil {
		writeBinError(w, http.StatusInternalServerError, modelreg.Hash{}, "model rejects schema: %v", err)
		return
	}
	var pinned modelreg.Hash
	copy(pinned[:], h.ModelHash[:])
	if !pinned.IsZero() && pinned != am.model.Hash {
		s.counters.binStaleStreams.Add(1)
		writeBinError(w, http.StatusConflict, am.model.Hash, "pinned model %x is not serving (active %s)", h.ModelHash[:6], am.model.ID)
		return
	}
	st := &binStream{cols: cols, hash: am.model.Hash, vms: make(map[string]string)}
	st.lastUsed.Store(s.now().UnixNano())
	if !s.binStreams.add(st) {
		if n := s.binStreams.expire(s.now().Add(-s.cfg.IdleTTL).UnixNano()); n > 0 {
			s.counters.binStreamsExpired.Add(int64(n))
		}
		if !s.binStreams.add(st) {
			writeBinError(w, http.StatusServiceUnavailable, modelreg.Hash{}, "stream registry full (%d streams)", maxBinStreams)
			return
		}
	}
	s.counters.binHandshakes.Add(1)

	ack := wire.HelloAck{Version: wire.Version, StreamID: st.id}
	copy(ack.ModelHash[:], am.model.Hash[:])
	ack.Classes = make([]string, len(binClassTable))
	for i, cl := range binClassTable {
		ack.Classes[i] = string(cl)
	}
	buf, start := wire.BeginFrame(nil)
	buf = wire.AppendHelloAck(buf, ack)
	buf = wire.EndFrame(buf, start)
	w.Header().Set("Content-Type", wire.ContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf)
}

// handleBinBatch decodes, validates, scatters, and classifies one
// Batch frame, appending its framed BatchAck to sc.resp. It returns
// the frame's largest group-commit durability token and whether the
// caller should keep processing frames; on false the response has
// already been written.
func (s *Server) handleBinBatch(w http.ResponseWriter, r *http.Request, sc *binScratch, payload []byte, deadline time.Time) (int64, bool) {
	id, err := wire.PeekStreamID(payload)
	if err != nil {
		s.counters.binDecodeErrors.Add(1)
		writeBinError(w, http.StatusBadRequest, modelreg.Hash{}, "%v", err)
		return 0, false
	}
	st, ok := s.binStreams.get(id)
	if !ok {
		writeBinError(w, http.StatusConflict, s.active.Load().model.Hash, "unknown stream %d (expired or never opened); re-handshake", id)
		return 0, false
	}
	// A hot swap since the handshake invalidates the stream: the column
	// table was validated against a model that is no longer serving.
	// 409 with the new hash tells the client to re-handshake rather
	// than let the batch be decoded under stale assumptions.
	if am := s.active.Load(); st.hash != am.model.Hash {
		s.counters.binStaleStreams.Add(1)
		s.binStreams.remove(id)
		writeBinError(w, http.StatusConflict, am.model.Hash, "stream %d was negotiated under model %s; active is %s", id, st.hash.Short(), am.model.ID)
		return 0, false
	}
	v, err := wire.ParseBatchHeader(payload, len(st.cols))
	if err != nil {
		s.counters.binDecodeErrors.Add(1)
		writeBinError(w, http.StatusBadRequest, modelreg.Hash{}, "%v", err)
		return 0, false
	}

	// Decode, validate, and scatter every group before classifying any
	// of them, so a 400 never leaves a half-ingested frame behind (the
	// JSON path's whole-batch-validation contract, per frame). NaN and
	// Inf are rejected exactly as on the JSON path, where they are
	// unrepresentable.
	schemaLen := s.cfg.Schema.Len()
	sc.groups = sc.groups[:0]
	sc.snaps = sc.snaps[:0]
	var durable int64
	nrows := 0
	for gi := 0; gi < v.Groups(); gi++ {
		g, gerr := v.Next()
		if gerr != nil {
			s.counters.binDecodeErrors.Add(1)
			writeBinError(w, http.StatusBadRequest, modelreg.Hash{}, "%v", gerr)
			return 0, false
		}
		vm := st.internVM(g.VM)
		start := len(sc.snaps)
		for row := 0; row < g.Rows; row++ {
			ts := g.TimeSeconds(row)
			if ts-ts != 0 { // NaN or ±Inf
				s.counters.binDecodeErrors.Add(1)
				writeBinError(w, http.StatusBadRequest, modelreg.Hash{}, "group %d (%s) row %d has non-finite time", gi, vm, row)
				return 0, false
			}
			vals := sc.rowbuf(nrows, schemaLen)
			nrows++
			for c, idx := range st.cols {
				x := g.Value(c, row)
				if x-x != 0 { // NaN or ±Inf
					s.counters.binDecodeErrors.Add(1)
					writeBinError(w, http.StatusBadRequest, modelreg.Hash{}, "group %d (%s) row %d column %d has non-finite value", gi, vm, row, c)
					return 0, false
				}
				vals[idx] = x
			}
			sc.snaps = append(sc.snaps, metrics.Snapshot{
				Time:   time.Duration(ts * float64(time.Second)),
				Node:   vm,
				Values: vals,
			})
		}
		sc.groups = append(sc.groups, binGroup{vm: vm, start: start, end: len(sc.snaps)})
	}

	sc.ids = sc.ids[:0]
	for gi := range sc.groups {
		gr := &sc.groups[gi]
		if !deadline.IsZero() && s.now().After(deadline) {
			s.counters.deadlineExceeded.Add(1)
			writeBinError(w, http.StatusServiceUnavailable, modelreg.Hash{}, "ingest deadline exceeded after %d of %d vm groups", gi, len(sc.groups))
			return 0, false
		}
		if cerr := r.Context().Err(); cerr != nil {
			s.counters.deadlineExceeded.Add(1)
			writeBinError(w, http.StatusServiceUnavailable, modelreg.Hash{}, "ingest request cancelled: %v", cerr)
			return 0, false
		}
		classes, token, oerr := s.observeBatch(gr.vm, sc.snaps[gr.start:gr.end], sc.classes[:0], true)
		if oerr != nil {
			writeBinError(w, http.StatusInternalServerError, modelreg.Hash{}, "classify %s: %v", gr.vm, oerr)
			return 0, false
		}
		if token > durable {
			durable = token
		}
		sc.classes = classes
		for _, cl := range classes {
			sc.ids = append(sc.ids, binClassID(cl))
		}
	}
	st.lastUsed.Store(s.now().UnixNano())
	s.counters.binBatches.Add(1)

	resp, start := wire.BeginFrame(sc.resp)
	resp = wire.AppendBatchAck(resp, sc.ids)
	sc.resp = wire.EndFrame(resp, start)
	return durable, true
}
