package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/appclass"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// trainedClassifier trains the classification center once for the whole
// package; training profiles five applications on the simulated testbed
// and is by far the slowest step.
var (
	trainOnce      sync.Once
	trainedService *core.Service
	trainErr       error
)

func classifier(t *testing.T) *classify.Classifier {
	t.Helper()
	trainOnce.Do(func() {
		trainedService, trainErr = core.NewService(core.Options{Seed: 1})
	})
	if trainErr != nil {
		t.Fatalf("train: %v", trainErr)
	}
	return trainedService.Classifier()
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Classifier == nil {
		cfg.Classifier = classifier(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

func zeroSnapshot(vm string, at float64) map[string]any {
	return map[string]any{
		"vm":     vm,
		"time_s": at,
		"values": make([]float64, metrics.DefaultSchema().Len()),
	}
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestHandlerStatusCodes(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	tests := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"ingest happy path", "POST", "/v1/ingest",
			mustJSON(map[string]any{"snapshots": []any{zeroSnapshot("vm-ok", 0)}}), 200},
		{"malformed body", "POST", "/v1/ingest", "{not json", 400},
		{"empty batch", "POST", "/v1/ingest", `{"snapshots":[]}`, 400},
		{"missing vm name", "POST", "/v1/ingest",
			mustJSON(map[string]any{"snapshots": []any{map[string]any{"time_s": 0, "values": []float64{1}}}}), 400},
		{"wrong value count", "POST", "/v1/ingest",
			mustJSON(map[string]any{"snapshots": []any{map[string]any{"vm": "v", "values": []float64{1, 2}}}}), 400},
		{"neither values nor metrics", "POST", "/v1/ingest",
			mustJSON(map[string]any{"snapshots": []any{map[string]any{"vm": "v"}}}), 400},
		{"unknown metric name", "POST", "/v1/ingest",
			mustJSON(map[string]any{"snapshots": []any{map[string]any{"vm": "v", "metrics": map[string]float64{"bogus": 1}}}}), 400},
		{"unknown vm", "GET", "/v1/vms/nope", "", 404},
		{"finish unknown vm", "POST", "/v1/vms/nope/finish", "", 404},
		{"method not allowed on ingest", "GET", "/v1/ingest", "", 405},
		{"method not allowed on vms", "POST", "/v1/vms", "", 405},
		{"method not allowed on finish", "GET", "/v1/vms/x/finish", "", 405},
		{"vms list", "GET", "/v1/vms", "", 200},
		{"classes", "GET", "/v1/classes", "", 200},
		{"healthz", "GET", "/healthz", "", 200},
		{"metricsz", "GET", "/metricsz", "", 200},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != tc.want {
				t.Errorf("%s %s = %d, want %d (body %s)", tc.method, tc.path, w.Code, tc.want, w.Body.String())
			}
		})
	}
}

func mustJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return string(b)
}

// TestIngestBatchIsAtomic verifies a batch with one invalid snapshot
// applies nothing.
func TestIngestBatchIsAtomic(t *testing.T) {
	s := newTestServer(t, Config{})
	body := map[string]any{"snapshots": []any{
		zeroSnapshot("vm-atomic", 0),
		map[string]any{"vm": "vm-atomic", "values": []float64{1, 2, 3}},
	}}
	w := postJSON(t, s.Handler(), "/v1/ingest", body)
	if w.Code != 400 {
		t.Fatalf("mixed batch = %d, want 400", w.Code)
	}
	if _, ok := s.reg.get("vm-atomic"); ok {
		t.Error("invalid batch still created a session")
	}
}

// TestMetricsMapModeMatchesValuesMode ingests the same snapshot via the
// ordered-array and named-map encodings and expects identical classes.
func TestMetricsMapModeMatchesValuesMode(t *testing.T) {
	s := newTestServer(t, Config{})
	trace := profiledTrace(t, "XSpim")
	snap := trace.At(trace.Len() / 2)
	names := trace.Schema().Names()
	byName := make(map[string]float64, len(names))
	for j, n := range names {
		byName[n] = snap.Values[j]
	}
	w := postJSON(t, s.Handler(), "/v1/ingest", map[string]any{"snapshots": []any{
		map[string]any{"vm": "by-values", "time_s": 1, "values": snap.Values},
		map[string]any{"vm": "by-name", "time_s": 1, "metrics": byName},
	}})
	if w.Code != 200 {
		t.Fatalf("ingest = %d: %s", w.Code, w.Body.String())
	}
	var resp ingestResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 2 || len(resp.Results) != 2 {
		t.Fatalf("accepted %d results %d", resp.Accepted, len(resp.Results))
	}
	if resp.Results[0].Class != resp.Results[1].Class {
		t.Errorf("values-mode class %q != metrics-mode class %q", resp.Results[0].Class, resp.Results[1].Class)
	}
}

var (
	traceCache = map[string]*metrics.Trace{}
	traceMu    sync.Mutex
)

func profiledTrace(t *testing.T, app string) *metrics.Trace {
	t.Helper()
	traceMu.Lock()
	defer traceMu.Unlock()
	if tr, ok := traceCache[app]; ok {
		return tr
	}
	entry, err := workload.Find(app)
	if err != nil {
		t.Fatal(err)
	}
	res, err := testbed.ProfileEntry(entry, 7)
	if err != nil {
		t.Fatalf("profile %s: %v", app, err)
	}
	traceCache[app] = res.Trace
	return res.Trace
}

// TestServerMatchesBatchClassifier is the acceptance path: a profiled
// trace replayed over the HTTP push API must end with the same class
// and composition as the one-shot batch classifier, and finishing the
// session must land that record in the application database.
func TestServerMatchesBatchClassifier(t *testing.T) {
	cl := classifier(t)
	trace := profiledTrace(t, "Stream")
	want, err := cl.ClassifyTrace(trace)
	if err != nil {
		t.Fatalf("batch classify: %v", err)
	}

	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	vm := "stream-vm"
	const batchSize = 25
	for start := 0; start < trace.Len(); start += batchSize {
		end := start + batchSize
		if end > trace.Len() {
			end = trace.Len()
		}
		var snaps []any
		for i := start; i < end; i++ {
			sn := trace.At(i)
			snaps = append(snaps, map[string]any{"vm": vm, "time_s": sn.Time.Seconds(), "values": sn.Values})
		}
		b, _ := json.Marshal(map[string]any{"snapshots": snaps})
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("ingest batch at %d: status %d", start, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Query the live session and compare against the batch result.
	resp, err := http.Get(ts.URL + "/v1/vms/" + vm)
	if err != nil {
		t.Fatal(err)
	}
	var detail struct {
		Class       string             `json:"class"`
		Snapshots   int                `json:"snapshots"`
		Composition map[string]float64 `json:"composition"`
		Stages      []stageJSON        `json:"stages"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&detail); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if detail.Class != string(want.Class) {
		t.Errorf("daemon class %q, batch class %q", detail.Class, want.Class)
	}
	if detail.Snapshots != trace.Len() {
		t.Errorf("daemon saw %d snapshots, trace has %d", detail.Snapshots, trace.Len())
	}
	for c, f := range want.Composition {
		if got := detail.Composition[string(c)]; math.Abs(got-f) > 1e-9 {
			t.Errorf("composition[%s] = %v, batch %v", c, got, f)
		}
	}
	if len(detail.Stages) == 0 {
		t.Error("no stage history reported")
	}

	// Finish the session: the record must reach the database with the
	// same class and the session must disappear.
	resp, err = http.Post(ts.URL+"/v1/vms/"+vm+"/finish", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var fin finishResponse
	if err := json.NewDecoder(resp.Body).Decode(&fin); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if fin.Class != string(want.Class) || fin.Samples != trace.Len() {
		t.Errorf("finish record class %q samples %d, want %q %d", fin.Class, fin.Samples, want.Class, trace.Len())
	}
	rec, err := s.DB().Latest(vm)
	if err != nil {
		t.Fatalf("db record: %v", err)
	}
	if rec.Class != want.Class {
		t.Errorf("db class %q, want %q", rec.Class, want.Class)
	}
	if s.Sessions() != 0 {
		t.Errorf("%d sessions live after finish", s.Sessions())
	}
	resp, err = http.Get(ts.URL + "/v1/vms/" + vm)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("finished vm still served: %d", resp.StatusCode)
	}
}

// TestConcurrentIngest hammers the daemon from 50 goroutines with
// overlapping VM names; run under -race this exercises the striped
// registry and per-session locking.
func TestConcurrentIngest(t *testing.T) {
	s := newTestServer(t, Config{Shards: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const (
		goroutines = 50
		perG       = 8
		vmPool     = 10
	)
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vm := fmt.Sprintf("vm-%d", g%vmPool)
			for i := 0; i < perG; i++ {
				b, _ := json.Marshal(map[string]any{"snapshots": []any{zeroSnapshot(vm, float64(g*perG+i))}})
				resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(b))
				if err != nil {
					errc <- err
					return
				}
				if resp.StatusCode != 200 {
					errc <- fmt.Errorf("vm %s: status %d", vm, resp.StatusCode)
					resp.Body.Close()
					return
				}
				resp.Body.Close()
				// Interleave reads with writes.
				if i%3 == 0 {
					r, err := http.Get(ts.URL + "/v1/vms/" + vm)
					if err != nil {
						errc <- err
						return
					}
					r.Body.Close()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if got := s.counters.ingested.Load(); got != goroutines*perG {
		t.Errorf("ingested %d snapshots, want %d", got, goroutines*perG)
	}
	if got := s.Sessions(); got != vmPool {
		t.Errorf("%d sessions, want %d", got, vmPool)
	}
	total := 0
	for _, sess := range s.reg.all() {
		sess.mu.Lock()
		total += sess.online.Seen()
		sess.mu.Unlock()
	}
	if total != goroutines*perG {
		t.Errorf("sessions hold %d snapshots, want %d", total, goroutines*perG)
	}
}

// fakeClock is a mutable wall clock for eviction tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestIdleEvictionFinalizesToDB(t *testing.T) {
	clk := &fakeClock{t: time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)}
	s := newTestServer(t, Config{IdleTTL: time.Minute, Now: clk.now})

	w := postJSON(t, s.Handler(), "/v1/ingest", map[string]any{"snapshots": []any{
		zeroSnapshot("old-vm", 0), zeroSnapshot("old-vm", 5),
	}})
	if w.Code != 200 {
		t.Fatalf("ingest: %d %s", w.Code, w.Body.String())
	}
	clk.advance(30 * time.Second)
	w = postJSON(t, s.Handler(), "/v1/ingest", map[string]any{"snapshots": []any{zeroSnapshot("fresh-vm", 0)}})
	if w.Code != 200 {
		t.Fatalf("ingest: %d", w.Code)
	}

	// 31s later old-vm is 61s idle (past TTL), fresh-vm 31s (within).
	clk.advance(31 * time.Second)
	if n := s.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}
	if _, ok := s.reg.get("old-vm"); ok {
		t.Error("old-vm still live after eviction")
	}
	if _, ok := s.reg.get("fresh-vm"); !ok {
		t.Error("fresh-vm was evicted early")
	}
	rec, err := s.DB().Latest("old-vm")
	if err != nil {
		t.Fatalf("evicted session not in db: %v", err)
	}
	if rec.Samples != 2 || rec.ExecutionTime != 5*time.Second {
		t.Errorf("record samples=%d exec=%v, want 2, 5s", rec.Samples, rec.ExecutionTime)
	}
	if s.counters.evictions.Load() != 1 {
		t.Errorf("evictions counter = %d", s.counters.evictions.Load())
	}
}

func TestShutdownFlushesAllSessions(t *testing.T) {
	s, err := New(Config{Classifier: classifier(t)})
	if err != nil {
		t.Fatal(err)
	}
	for _, vm := range []string{"a", "b", "c"} {
		w := postJSON(t, s.Handler(), "/v1/ingest", map[string]any{"snapshots": []any{zeroSnapshot(vm, 0)}})
		if w.Code != 200 {
			t.Fatalf("ingest %s: %d", vm, w.Code)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if s.Sessions() != 0 {
		t.Errorf("%d sessions live after shutdown", s.Sessions())
	}
	if got := s.DB().Len(); got != 3 {
		t.Errorf("db has %d records after flush, want 3", got)
	}
	// Idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}

func TestMetricszExposesCounters(t *testing.T) {
	s := newTestServer(t, Config{Shards: 4})
	w := postJSON(t, s.Handler(), "/v1/ingest", map[string]any{"snapshots": []any{zeroSnapshot("m-vm", 0)}})
	if w.Code != 200 {
		t.Fatalf("ingest: %d", w.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/metricsz", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		"appclassd_snapshots_ingested_total 1",
		"appclassd_sessions_active 1",
		`appclassd_shard_sessions{shard="0"}`,
		"appclassd_classifications_total{class=",
		"appclassd_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metricsz missing %q", want)
		}
	}
	if got := rec.Header().Get("Content-Type"); !strings.HasPrefix(got, "text/plain") {
		t.Errorf("metricsz content type %q", got)
	}
}

func TestClassesEndpointCountsLiveVMs(t *testing.T) {
	s := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		w := postJSON(t, s.Handler(), "/v1/ingest", map[string]any{"snapshots": []any{
			zeroSnapshot(fmt.Sprintf("cls-vm-%d", i), 0),
		}})
		if w.Code != 200 {
			t.Fatalf("ingest: %d", w.Code)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/classes", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	var out struct {
		VMs     int            `json:"vms"`
		Classes map[string]int `json:"classes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.VMs != 3 {
		t.Errorf("classes reports %d vms, want 3", out.VMs)
	}
	total := 0
	for c, n := range out.Classes {
		if _, err := appclass.Parse(c); err != nil {
			t.Errorf("unknown class %q in /v1/classes", c)
		}
		total += n
	}
	if total != 3 {
		t.Errorf("class counts sum to %d, want 3", total)
	}
}

func TestNewRejectsNilClassifier(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil classifier: want error")
	}
}
