package server

import (
	"fmt"
	"time"

	"repro/internal/appdb"
	"repro/internal/supervise"
	"repro/internal/wal"
)

// The self-healing loops: background storage maintenance and scrubbing,
// both supervised — a panic mid-compaction restarts the task instead of
// silently ending maintenance for the life of the process.

// putEvent records an operational incident (rollback, scrub repair,
// task escalation) in the application database's event log. Best-effort:
// a failure to record is logged, never propagated — the incident
// response must not depend on the incident log.
func (s *Server) putEvent(typ string, detail map[string]string) {
	if s.cfg.DB == nil {
		return
	}
	if err := s.cfg.DB.PutEvent(appdb.Event{
		AtUnixNS: s.now().UnixNano(),
		Type:     typ,
		Detail:   detail,
	}); err != nil {
		s.cfg.Logf("server: record %s event: %v", typ, err)
	}
}

// StartStoreMaint launches the supervised application-database
// maintenance loop: every StoreMaintEvery it compacts the segmented
// store (rewriting segments whose dead fraction crossed the store's
// threshold — a no-op when nothing qualifies). No-op unless
// Config.StoreMaintEvery > 0 and the database is store-backed.
func (s *Server) StartStoreMaint() {
	if s.cfg.StoreMaintEvery <= 0 || s.cfg.DB == nil || s.cfg.DB.Store() == nil {
		return
	}
	s.sup.Go("store-maint", supervise.TaskOptions{Heartbeat: 4 * s.cfg.StoreMaintEvery}, func(stop <-chan struct{}, t *supervise.Task) {
		tick := time.NewTicker(s.cfg.StoreMaintEvery)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				t.Beat()
				if err := s.cfg.DB.Store().Compact(); err != nil {
					s.cfg.Logf("server: store maintenance: %v", err)
				}
			}
		}
	})
}

// StartScrubber launches the supervised storage scrubber: every
// ScrubEvery it verifies one sealed journal segment and one closed
// application-database segment frame-by-frame, repairing any latent
// corruption it finds (quarantining the damaged original as .corrupt).
// The low rate — one segment per side per tick — keeps the read cost
// negligible next to ingest; the per-side cursors cycle the whole store
// across ticks. No-op unless Config.ScrubEvery > 0.
func (s *Server) StartScrubber() {
	if s.cfg.ScrubEvery <= 0 {
		return
	}
	s.sup.Go("scrubber", supervise.TaskOptions{Heartbeat: 4 * s.cfg.ScrubEvery}, func(stop <-chan struct{}, t *supervise.Task) {
		tick := time.NewTicker(s.cfg.ScrubEvery)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				t.Beat()
				s.scrubTick()
			}
		}
	})
}

// scrubTick runs one scrub pass over both stores. Split out for tests.
func (s *Server) scrubTick() {
	if j := s.cfg.Journal; j != nil {
		sum, err := j.Scrub(wal.ScrubConfig{
			MaxSegments: 1,
			// Repair rewrites byte offsets, which is only safe once no
			// checkpoint still points into the damaged segment. The hook
			// runs outside the journal lock, so checkpointing here cannot
			// deadlock.
			PreRepair: func(seq uint64, uncheckpointed bool) error {
				if !uncheckpointed {
					return nil
				}
				s.cfg.Logf("server: scrub: journal segment %d damage overlaps un-checkpointed state; checkpointing before repair", seq)
				return s.Checkpoint()
			},
		})
		if err != nil {
			s.cfg.Logf("server: journal scrub: %v", err)
		}
		for _, rep := range sum.Damaged {
			detail := map[string]string{
				"store":      "journal",
				"segment":    fmt.Sprintf("%d", rep.Seq),
				"bad_frames": fmt.Sprintf("%d", rep.BadFrames),
			}
			switch {
			case rep.Repaired:
				detail["quarantined"] = rep.Quarantined
				s.cfg.Logf("server: scrub: REPAIRED journal segment %d: %d bad frame(s) dropped, original quarantined at %s",
					rep.Seq, rep.BadFrames, rep.Quarantined)
			case rep.SkipReason != "":
				detail["skipped"] = rep.SkipReason
				s.cfg.Logf("server: scrub: journal segment %d damaged (%d bad frame(s)) but NOT repaired: %s",
					rep.Seq, rep.BadFrames, rep.SkipReason)
			default:
				// Torn tail only: replay already stops cleanly there.
				detail["torn_tail"] = rep.TornReason
				s.cfg.Logf("server: scrub: journal segment %d has a torn tail (%s); left for the operator", rep.Seq, rep.TornReason)
			}
			s.putEvent("scrub_repair", detail)
		}
	}
	if s.cfg.DB != nil && s.cfg.DB.Store() != nil {
		sum, err := s.cfg.DB.Store().Scrub(1)
		if err != nil {
			s.cfg.Logf("server: application-database scrub: %v", err)
		}
		for _, rep := range sum.Damaged {
			detail := map[string]string{
				"store":        "appdb",
				"segment":      fmt.Sprintf("%d", rep.Seg),
				"bad_frames":   fmt.Sprintf("%d", rep.BadFrames),
				"lost_records": fmt.Sprintf("%d", rep.LostRecords),
			}
			if rep.Repaired {
				detail["quarantined"] = rep.Quarantined
				s.cfg.Logf("server: scrub: REPAIRED application-database segment %d: %d bad frame(s), %d live record(s) lost, original quarantined at %s",
					rep.Seg, rep.BadFrames, rep.LostRecords, rep.Quarantined)
			} else {
				detail["skipped"] = rep.SkipReason
				s.cfg.Logf("server: scrub: application-database segment %d damaged but NOT repaired: %s", rep.Seg, rep.SkipReason)
			}
			s.putEvent("scrub_repair", detail)
		}
	}
}
