package server

import "sync/atomic"

// admission is the push-path load shedder: a bounded in-flight budget
// of ingest request bytes and concurrent ingest requests. A request
// over either budget is shed with 429 Retry-After before it takes any
// lock — in particular before the checkpoint quiesce (ckptMu), so an
// overload can pile requests up at the front door but never on the
// quiesce barrier itself. The accounting is two atomics, adding zero
// allocations to the under-budget ingest path.
type admission struct {
	maxBytes    int64 // 0 disables the byte budget
	maxRequests int64 // 0 disables the request budget

	bytes    atomic.Int64
	requests atomic.Int64
}

// defaultMaxInflightBytes and defaultMaxInflightRequests bound the
// ingest budget when the config leaves it zero: 64 MiB of request
// bodies (eight maximum-size batches) and 256 concurrent requests.
const (
	defaultMaxInflightBytes    = 64 << 20
	defaultMaxInflightRequests = 256
)

// tryAdmit reserves n bytes and one request slot, reporting whether the
// request fits the budget. On false nothing is reserved.
func (a *admission) tryAdmit(n int64) bool {
	if a.maxRequests > 0 {
		if r := a.requests.Add(1); r > a.maxRequests {
			a.requests.Add(-1)
			return false
		}
	}
	if a.maxBytes > 0 {
		if b := a.bytes.Add(n); b > a.maxBytes {
			a.bytes.Add(-n)
			if a.maxRequests > 0 {
				a.requests.Add(-1)
			}
			return false
		}
	}
	return true
}

// release returns a tryAdmit reservation.
func (a *admission) release(n int64) {
	if a.maxBytes > 0 {
		a.bytes.Add(-n)
	}
	if a.maxRequests > 0 {
		a.requests.Add(-1)
	}
}

// inflight reports the budget currently reserved, for the /metricsz
// gauges.
func (a *admission) inflight() (bytes, requests int64) {
	return a.bytes.Load(), a.requests.Load()
}
