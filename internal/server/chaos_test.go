package server

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/faultinject"
	"repro/internal/ganglia"
	"repro/internal/metrics"
	"repro/internal/wal"
)

// newChaosSource serves a gmetad XML dump of one node ("poll-vm") whose
// metric values come from the trace sample the driver last selected.
// The aggregator state is rebuilt per request under the same mutex the
// driver uses to advance the index, so the whole thing is race-free.
func newChaosSource(t *testing.T, trace *metrics.Trace) (*httptest.Server, func(i int)) {
	t.Helper()
	names := metrics.DefaultNames()
	var mu sync.Mutex
	idx := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		bus := ganglia.NewBus()
		gm, err := ganglia.NewGmetad("chaos", bus)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		sn := trace.At(idx)
		for j, name := range names {
			bus.Announce(ganglia.Announcement{Node: "poll-vm", Metric: name, Value: sn.Values[j], At: sn.Time})
		}
		w.Header().Set("Content-Type", "application/xml")
		gm.WriteXML(w, sn.Time+time.Second)
	}))
	t.Cleanup(srv.Close)
	return srv, func(i int) {
		mu.Lock()
		idx = i
		mu.Unlock()
	}
}

// chaosResult is what one scenario run produced for the polled VM.
type chaosResult struct {
	view classify.View
}

// driveChaos replays the Stream trace through a poll-fed session while
// a second VM pushes the same trace over the HTTP API, optionally under
// the scripted fault timeline from the ISSUE: a steady 30% injected
// fetch-error rate, one 60-second gmetad blackout mid-run, and a
// transient ENOSPC window on the journal. It returns the polled
// session's final view; every push must answer 200 throughout.
func driveChaos(t *testing.T, faulted bool) (*Server, chaosResult) {
	t.Helper()
	trace := profiledTrace(t, "Stream")
	n := trace.Len()
	const interval = 5 * time.Second
	total := time.Duration(n) * interval

	clk := &fakeClock{t: time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)}
	start := clk.now()

	cfg := Config{Now: clk.now, DegradedProbeEvery: interval}
	var fs *faultinject.FS
	if faulted {
		fs = faultinject.NewFS()
		j, err := wal.Open(wal.Config{
			Dir:             t.TempDir(),
			Fsync:           wal.FsyncNever,
			Now:             clk.now,
			OpenSegmentFile: fs.OpenSegmentFile,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { j.Close() }) // after the server's shutdown cleanup
		cfg.Journal = j
		cfg.DegradeOnWALError = true
	}
	s := newTestServer(t, cfg)
	src, setIdx := newChaosSource(t, trace)

	rt := faultinject.NewRoundTripper(src.Client().Transport, 7)
	client := &http.Client{Transport: rt}
	p := s.newPoller(PollConfig{
		URL:             src.URL,
		Interval:        interval,
		Client:          client,
		FetchTimeout:    time.Second,
		BackoffMax:      4 * interval,
		BreakerFailures: 3,
		// Longer than BackoffMax, so an open breaker actually skips
		// interval ticks instead of expiring inside one backoff sleep.
		BreakerOpenFor: 6 * interval,
	})

	// Fault timeline over the scenario's ideal duration.
	enospcFrom, enospcTo := total/8, total/3
	blackoutFrom := total / 2
	blackoutTo := blackoutFrom + time.Minute

	h := s.Handler()
	pushed := 0
	pushNext := func() {
		t.Helper()
		if pushed >= n {
			return
		}
		sn := trace.At(pushed)
		w := postJSON(t, h, "/v1/ingest", map[string]any{
			"snapshots": []map[string]any{{
				"vm": "push-vm", "time_s": sn.Time.Seconds(), "values": sn.Values,
			}},
		})
		if w.Code != http.StatusOK {
			t.Fatalf("healthy push %d answered %d (%s); pushes must never fail during chaos", pushed, w.Code, w.Body.String())
		}
		pushed++
	}

	ctx := context.Background()
	failures := 0
	for {
		elapsed := clk.now().Sub(start)
		i := int(elapsed / interval)
		if i >= n {
			break
		}
		if faulted {
			if elapsed < blackoutTo {
				rt.SetErrorRate(0.3)
			} else {
				rt.SetErrorRate(0)
			}
			rt.SetBlackout(elapsed >= blackoutFrom && elapsed < blackoutTo)
			if elapsed >= enospcFrom && elapsed < enospcTo {
				fs.FailWrites(syscall.ENOSPC)
				fs.FailOpens(syscall.ENOSPC)
			} else {
				fs.FailWrites(nil)
				fs.FailOpens(nil)
			}
		}
		setIdx(i)
		// One scheduling step of the poll loop, with the fake clock
		// advanced by the same delay the timer would have waited.
		delay := interval
		if !p.breaker.Allow() {
			s.counters.pollBreakerSkipped.Add(1)
			p.recordGaps(delay)
		} else if err := p.pollOnce(ctx); err != nil {
			p.breaker.Failure()
			failures++
			delay = p.backoff.Next(failures)
			if delay < interval {
				delay = interval
			}
			p.recordGaps(delay)
		} else {
			p.breaker.Success()
			failures = 0
		}
		pushNext()
		clk.advance(delay)
	}
	// Drain the push stream so the push VM always sees the full trace.
	for pushed < n {
		pushNext()
	}

	sess, ok := s.reg.get("poll-vm")
	if !ok {
		t.Fatal("no session for the polled VM")
	}
	sess.mu.Lock()
	view := sess.online.Snapshot()
	sess.mu.Unlock()
	return s, chaosResult{view: view}
}

// TestChaosScenario is the PR's acceptance test: under 30% injected
// fetch errors, a 60-second gmetad blackout, and a transient ENOSPC
// window on the journal, the daemon keeps answering healthy pushes with
// 200, the breaker opens and recovers, degraded durability enters and
// exits, and the polled session still converges to the fault-free
// run's class with composition inside a gap-adjusted tolerance.
func TestChaosScenario(t *testing.T) {
	cl := classifier(t)
	trace := profiledTrace(t, "Stream")
	want, err := cl.ClassifyTrace(trace)
	if err != nil {
		t.Fatal(err)
	}

	_, clean := driveChaos(t, false)
	if clean.view.Gaps != 0 {
		t.Errorf("fault-free run recorded %d gaps", clean.view.Gaps)
	}
	if clean.view.Total != trace.Len() {
		t.Errorf("fault-free run observed %d of %d samples", clean.view.Total, trace.Len())
	}

	s, faulted := driveChaos(t, true)

	// The breaker tripped during the blackout and recovered after it.
	if got := s.counters.breakerOpens.Load(); got == 0 {
		t.Error("the blackout never opened the breaker")
	}
	if got := s.counters.pollBreakerSkipped.Load(); got == 0 {
		t.Error("an open breaker never skipped a poll")
	}
	if got := s.counters.polls.Load(); got == 0 || s.counters.pollErrors.Load() == 0 {
		t.Errorf("polls=%d pollErrors=%d; the fault injector never bit", got, s.counters.pollErrors.Load())
	}

	// Degraded durability entered during the ENOSPC window and exited
	// after it healed.
	if got := s.counters.degradedEntries.Load(); got == 0 {
		t.Error("transient ENOSPC never entered degraded durability")
	}
	if got := s.counters.degradedExits.Load(); got == 0 {
		t.Error("degraded durability never exited after the disk healed")
	}
	if s.DurabilityDegraded() {
		t.Error("daemon still degraded at the end of the scenario")
	}

	// The faulted session knows its coverage was partial.
	if faulted.view.Gaps == 0 || faulted.view.GapTime == 0 {
		t.Errorf("faulted run recorded gaps=%d gapTime=%v, want both nonzero",
			faulted.view.Gaps, faulted.view.GapTime)
	}
	if faulted.view.Total >= clean.view.Total {
		t.Errorf("faulted run observed %d samples, clean run %d; chaos lost nothing?",
			faulted.view.Total, clean.view.Total)
	}

	// Same majority class despite the chaos.
	if faulted.view.Class != clean.view.Class {
		t.Errorf("faulted class %q != fault-free class %q", faulted.view.Class, clean.view.Class)
	}
	// Composition within a gap-adjusted tolerance: the faulted run can
	// be off by at most the fraction of the stream it missed (plus
	// slack for which samples the misses landed on).
	missed := 1 - float64(faulted.view.Total)/float64(clean.view.Total)
	tol := missed + 0.10
	for c, f := range clean.view.Composition {
		if got := faulted.view.Composition[c]; math.Abs(got-f) > tol {
			t.Errorf("composition[%s] = %.3f faulted vs %.3f clean (missed %.0f%%, tolerance %.3f)",
				c, got, f, 100*missed, tol)
		}
	}

	// The push VM saw the full trace over healthy HTTP and must agree
	// with the batch classifier exactly, chaos or not.
	sess, ok := s.reg.get("push-vm")
	if !ok {
		t.Fatal("no session for the push VM")
	}
	sess.mu.Lock()
	pushView := sess.online.Snapshot()
	sess.mu.Unlock()
	if pushView.Class != want.Class {
		t.Errorf("push VM class %q, batch classifier %q", pushView.Class, want.Class)
	}
	if pushView.Total != trace.Len() {
		t.Errorf("push VM observed %d of %d samples", pushView.Total, trace.Len())
	}
	for c, f := range want.Composition {
		if got := pushView.Composition[c]; math.Abs(got-f) > 1e-9 {
			t.Errorf("push composition[%s] = %v, batch %v", c, got, f)
		}
	}
}
