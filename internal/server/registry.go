package server

import (
	"sort"
	"sync"
	"time"

	"repro/internal/classify"
)

// session is one VM's live classification state: an online classifier
// plus bookkeeping for eviction. The mutex guards every field; the
// registry's shard lock is never held while a session is classifying,
// so slow snapshots on one VM do not stall ingest for its shard
// neighbours.
type session struct {
	vm string

	mu       sync.Mutex
	online   *classify.Online
	lastSeen time.Time
	// finalized marks a session whose record has been (or is being)
	// written to the application database. A finalized session is dead:
	// ingest must not observe into it, and a concurrent writer that
	// raced an eviction retries against the registry instead.
	finalized bool
	// model is the ID (short hash) of the model currently serving this
	// session — verdict provenance, stamped into the session's appdb
	// record at finalization and updated when a promote rebinds the
	// session.
	model string
}

// shard is one stripe of the registry.
type shard struct {
	mu       sync.RWMutex
	sessions map[string]*session
}

// registry is a mutex-striped map of live sessions keyed by VM name.
// Striping keeps ingest from many VMs from serializing on one lock.
type registry struct {
	shards []*shard
}

const defaultShards = 16

func newRegistry(n int) *registry {
	if n <= 0 {
		n = defaultShards
	}
	r := &registry{shards: make([]*shard, n)}
	for i := range r.shards {
		r.shards[i] = &shard{sessions: make(map[string]*session)}
	}
	return r
}

// shardIndex is FNV-1a over the VM name, inlined so the per-ingest
// shard lookup never allocates (hash/fnv's interface-shaped hasher
// escapes to the heap).
func (r *registry) shardIndex(vm string) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(vm); i++ {
		h ^= uint32(vm[i])
		h *= prime32
	}
	return int(h % uint32(len(r.shards)))
}

func (r *registry) shardFor(vm string) *shard {
	return r.shards[r.shardIndex(vm)]
}

// get returns the live session for vm, if any.
func (r *registry) get(vm string) (*session, bool) {
	sh := r.shardFor(vm)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s, ok := sh.sessions[vm]
	return s, ok
}

// getOrCreate returns the live session for vm, building one with build
// if absent. The second return reports whether a session was created.
func (r *registry) getOrCreate(vm string, build func() (*session, error)) (*session, bool, error) {
	sh := r.shardFor(vm)
	sh.mu.RLock()
	s, ok := sh.sessions[vm]
	sh.mu.RUnlock()
	if ok {
		return s, false, nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s, ok := sh.sessions[vm]; ok {
		return s, false, nil
	}
	s, err := build()
	if err != nil {
		return nil, false, err
	}
	sh.sessions[vm] = s
	return s, true, nil
}

// remove unmaps vm only if it still resolves to s, so an evictor that
// raced a fresh session for the same name does not tear the new one
// down.
func (r *registry) remove(vm string, s *session) bool {
	sh := r.shardFor(vm)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if cur, ok := sh.sessions[vm]; !ok || cur != s {
		return false
	}
	delete(sh.sessions, vm)
	return true
}

// names returns all live VM names, sorted.
func (r *registry) names() []string {
	var out []string
	for _, sh := range r.shards {
		sh.mu.RLock()
		for vm := range sh.sessions {
			out = append(out, vm)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// all returns every live session.
func (r *registry) all() []*session {
	var out []*session
	for _, sh := range r.shards {
		sh.mu.RLock()
		for _, s := range sh.sessions {
			out = append(out, s)
		}
		sh.mu.RUnlock()
	}
	return out
}

// counts returns the per-shard session counts.
func (r *registry) counts() []int {
	out := make([]int, len(r.shards))
	for i, sh := range r.shards {
		sh.mu.RLock()
		out[i] = len(sh.sessions)
		sh.mu.RUnlock()
	}
	return out
}

// len returns the total number of live sessions.
func (r *registry) len() int {
	n := 0
	for _, c := range r.counts() {
		n += c
	}
	return n
}
